// Package greem is a pure-Go reproduction of GreeM, the massively parallel
// TreePM cosmological N-body code of Ishiyama, Nitadori & Makino (SC12,
// "4.45 Pflops Astrophysical N-Body Simulation on K computer — The
// Gravitational Trillion-Body Problem").
//
// The package re-exports the library's public surface:
//
//   - the serial TreePM force solver (tree short-range with the S2 cutoff of
//     eq. 3 + particle-mesh long-range) and its P3M baseline;
//   - the distributed simulation driver, which runs MPI-style ranks as
//     goroutines: sampling-based 3-D multisection domain decomposition, ghost
//     exchange, parallel PM with the naive or the relay-mesh conversion, and
//     the multiple-stepsize KDK integrator;
//   - cosmological initial conditions (Gaussian fields with the neutralino
//     free-streaming cutoff, Zel'dovich displacements) and background
//     evolution;
//   - analysis tools (power spectra, friends-of-friends halos, projections)
//     and snapshot I/O;
//   - the K computer performance model that regenerates the paper's Table I
//     and §II-B communication timings from operation and message counts.
//
// See the examples directory for runnable entry points and DESIGN.md for the
// system inventory.
package greem

import (
	"greem/internal/analysis"
	"greem/internal/cosmo"
	"greem/internal/domain"
	"greem/internal/ewald"
	"greem/internal/ic"
	"greem/internal/mpi"
	"greem/internal/perfmodel"
	"greem/internal/sim"
	"greem/internal/snapshot"
	"greem/internal/tree"
	"greem/internal/treepm"
)

// --- Serial TreePM ---

// TreePMConfig parameterizes the serial TreePM solver; see treepm.Config.
type TreePMConfig = treepm.Config

// TreePM is the serial TreePM force solver.
type TreePM = treepm.Solver

// NewTreePM creates a serial TreePM solver. Zero fields select the paper's
// defaults (rcut = 3·L/NMesh, θ = 0.5, ⟨Ni⟩ = 100).
func NewTreePM(cfg TreePMConfig) (*TreePM, error) { return treepm.New(cfg) }

// TreeStats aggregates interaction statistics (⟨Ni⟩, ⟨Nj⟩, interaction
// counts) from tree traversals.
type TreeStats = tree.Stats

// --- Distributed simulation ---

// Comm is a communicator handle for one rank of an in-process world.
type Comm = mpi.Comm

// Run executes body on n ranks (goroutines) sharing one world, the
// stand-in for launching n MPI processes.
func Run(n int, body func(*Comm)) error { return mpi.Run(n, body) }

// KillHook is a fault-injection hook consulted at every Comm.FaultPoint; see
// mpi.KillHook.
type KillHook = mpi.KillHook

// RunWithKillHook is Run with a fault-injection hook that can kill ranks at
// fault points, for crash-restart testing and chaos drills.
func RunWithKillHook(n int, hook KillHook, body func(*Comm)) error {
	return mpi.RunWithKillHook(n, hook, body)
}

// IsAborted reports whether a panic value or error (e.g. the error returned
// by Run) stems from a killed rank or an aborted world, so drivers can
// degrade gracefully — restart from a checkpoint — instead of treating the
// loss of a rank like a code bug.
func IsAborted(v any) bool { return mpi.IsAborted(v) }

// Particle is the migratable per-particle state of the simulation.
type Particle = sim.Particle

// SimConfig parameterizes a distributed simulation; see sim.Config.
type SimConfig = sim.Config

// Simulation is one rank's handle on a distributed TreePM N-body run.
type Simulation = sim.Sim

// NewSimulation creates the per-rank simulation state; collective over c.
func NewSimulation(c *Comm, cfg SimConfig, parts []Particle) (*Simulation, error) {
	return sim.New(c, cfg, parts)
}

// Geometry is a 3-D multisection domain decomposition.
type Geometry = domain.Geometry

// --- Cosmology and initial conditions ---

// Cosmology is an FLRW background model (it implements sim.TimeStepper, so
// it can be passed as SimConfig.Stepper for comoving integration).
type Cosmology = cosmo.Model

// NewCosmology creates a background model with the given density parameters
// and Hubble rate (in simulation units; see HubbleForBox).
func NewCosmology(omegaM, omegaL, h0 float64) (*Cosmology, error) {
	return cosmo.New(omegaM, omegaL, h0)
}

// HubbleForBox returns the H0 consistent with a box of side l containing
// total mass totalM at matter density parameter omegaM.
func HubbleForBox(g, totalM, l, omegaM float64) float64 {
	return cosmo.HubbleForBox(g, totalM, l, omegaM)
}

// ScaleFactor converts redshift to scale factor; Redshift inverts it.
func ScaleFactor(z float64) float64 { return cosmo.ScaleFactor(z) }

// Redshift converts a scale factor to redshift.
func Redshift(a float64) float64 { return cosmo.Redshift(a) }

// ICConfig parameterizes Zel'dovich initial conditions; see ic.Config.
type ICConfig = ic.Config

// PowerSpectrum is a linear matter power spectrum.
type PowerSpectrum = ic.PowerSpectrum

// NeutralinoCutoff is the paper's §III-A spectrum: a power law with the
// Gaussian free-streaming cutoff of a 100 GeV neutralino.
type NeutralinoCutoff = ic.NeutralinoCutoff

// GenerateIC lays particles on a lattice and applies Zel'dovich
// displacements drawn from the configured power spectrum.
func GenerateIC(cfg ICConfig) ([]Particle, error) { return ic.Generate(cfg) }

// --- Analysis and I/O ---

// MeasurePowerSpectrum bins the matter power spectrum of a particle set.
func MeasurePowerSpectrum(x, y, z, m []float64, nmesh int, l float64, nbins int) (ks, ps []float64, counts []int, err error) {
	return analysis.PowerSpectrum(x, y, z, m, nmesh, l, nbins)
}

// FindHalos runs the periodic friends-of-friends group finder.
func FindHalos(x, y, z []float64, l, linkingLength float64, minSize int) [][]int {
	return analysis.FoF(x, y, z, l, linkingLength, minSize)
}

// Halo summarizes one bound structure (mass, periodic center, radii).
type Halo = analysis.Halo

// HaloCatalog converts FoF groups into halo summaries, most massive first.
func HaloCatalog(x, y, z, m []float64, l float64, groups [][]int) []Halo {
	return analysis.Catalog(x, y, z, m, l, groups)
}

// HaloMassFunction returns the cumulative mass function N(>M).
func HaloMassFunction(halos []Halo, nbins int) (mass []float64, count []int) {
	return analysis.MassFunction(halos, nbins)
}

// SaveSnapshot writes a binary snapshot file.
func SaveSnapshot(path string, l, time, g float64, step uint64, parts []Particle) error {
	return snapshot.Save(path, snapshot.Header{L: l, Time: time, G: g, StepIdx: step}, parts)
}

// LoadSnapshot reads a binary snapshot file, returning box side, time and
// the particles.
func LoadSnapshot(path string) (l, time float64, parts []Particle, err error) {
	hdr, parts, err := snapshot.Load(path)
	if err != nil {
		return 0, 0, nil, err
	}
	return hdr.L, hdr.Time, parts, nil
}

// --- Reference solvers and performance model ---

// NewEwald creates the exact periodic force reference (O(N²)).
func NewEwald(l, g float64) *ewald.Solver { return ewald.New(l, g) }

// KComputer returns the calibrated K computer machine model used to
// regenerate the paper's Table I and communication timings.
func KComputer() perfmodel.Machine { return perfmodel.KComputer() }
