module greem

go 1.22
