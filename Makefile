GO ?= go

.PHONY: verify build vet test race fuzz-smoke bench bench-fft bench-kernel bench-insitu bench-overlap bench-scaling bench-record bench-compare smoke-restart smoke-serve smoke-chaos

# verify is the tier-1 gate: full build, vet, tests, plus a short race pass
# over the packages where ranks-as-goroutines concurrency lives.
verify:
	./scripts/verify.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./internal/sim/ ./internal/telemetry/ ./internal/mpi/ ./internal/checkpoint/ ./internal/snapshot/ ./internal/fft/ ./internal/pfft/ ./internal/par/ ./internal/mesh/ ./internal/treepm/ ./internal/serve/ ./internal/store/ ./internal/ppkern/ ./internal/tree/ ./internal/pmpar/ ./internal/analysis/ ./internal/analysis/dist/

# fuzz-smoke: a few seconds of native Go fuzzing per fuzzer — enough to shake
# out decoder panics and ghost-selection invariant breaks without turning the
# gate into a coverage campaign. Part of scripts/verify.sh.
fuzz-smoke:
	$(GO) test -run NONE -fuzz FuzzDecodeFlat -fuzztime 4s ./internal/domain/
	$(GO) test -run NONE -fuzz FuzzGhostSelection -fuzztime 4s ./internal/sim/
	$(GO) test -run NONE -fuzz FuzzUnionFindStitch -fuzztime 4s ./internal/analysis/dist/

# smoke-restart: end-to-end crash-restart drill — hard-kill the driver after
# a checkpoint, rerun the same command, require a byte-identical final
# snapshot versus an uninterrupted run.
smoke-restart:
	./scripts/smoke_restart.sh

# smoke-serve: end-to-end service-plane drill — boot the greemd daemon on a
# filesystem store, submit a tiny checkpointed run over HTTP, poll it to
# completion, fetch a product of every kind and verify run integrity.
smoke-serve:
	./scripts/smoke_serve.sh

# smoke-chaos: durability drill for the service plane — run a job cleanly for
# a control content address, then kill -9 greemd mid-job with store faults
# injected, restart, and require the journal-replayed resume to produce the
# bit-identical snapshot; repeat with a SIGTERM drain. Part of verify.
smoke-chaos:
	./scripts/smoke_chaos.sh

bench:
	$(GO) test -run NONE -bench . -benchmem .

# bench-fft: the r2c before/after evidence — 1-D/3-D kernel rates, the
# distributed transpose byte ledgers, and the PM solve Gflops.
bench-fft:
	$(GO) test -run NONE -bench 'RealFFT' -benchmem ./internal/fft/
	$(GO) test -run NONE -bench 'Solve(64|128)' -benchmem ./internal/mesh/
	$(GO) test -run NONE -bench 'PencilVsSlabFFT|Fig5RelayVsNaive' -benchmem .

# bench-kernel: the PP force-kernel throughput ladder — scalar and unrolled
# float64, scalar and SIMD-batched float32 — in Gflops at the 51-op ledger.
# BenchmarkKernelGflops also feeds bench-record/bench-compare, so a >10%
# kernel regression fails the comparison gate.
bench-kernel:
	$(GO) test -run NONE -bench 'KernelGflops' -benchmem .

# bench-record: run the canonical kernel/solve/exchange/checkpoint
# benchmarks and persist them as bench_records/BENCH_<timestamp>.json;
# bench-compare diffs the two newest records and fails on a >10% regression
# in any cost metric (ns/op, B/op, allocs/op, byte ledgers).
# bench-overlap: the overlapped step pipeline before/after — one warm 64³
# step on 8 ranks with the PM solve sequential vs hidden behind the tree walk
# (rank0-step-s is the wall-clock evidence, hidden-s the covered PM share).
bench-overlap:
	$(GO) test -run NONE -bench 'StepOverlap64' -benchmem .

# bench-insitu: the in-situ analysis plane — the distributed FoF end to end
# on the 64³/8-rank clustered bench case, and the marginal per-mode cost of
# the on-the-fly P(k) tap on a 128³ mesh. Both feed bench-record.
bench-insitu:
	$(GO) test -run NONE -bench 'DistFoF64$$' -benchmem ./internal/analysis/dist/
	$(GO) test -run NONE -bench 'InSituPk128$$' -benchmem ./internal/analysis/

bench-record:
	./scripts/bench_record.sh

bench-compare:
	$(GO) run ./cmd/benchrecord compare -dir bench_records

# bench-scaling: intra-rank worker-pool strong scaling of the 128³ PM solve
# (assignment + r2c FFT + convolution + differencing) at 1/2/4/8 workers.
# Meaningful only on a multi-core host (GOMAXPROCS caps real parallelism).
bench-scaling:
	$(GO) test -run NONE -bench 'Solve128Workers' -benchmem ./internal/mesh/
