GO ?= go

.PHONY: verify build vet test race bench bench-fft

# verify is the tier-1 gate: full build, vet, tests, plus a short race pass
# over the packages where ranks-as-goroutines concurrency lives.
verify:
	./scripts/verify.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./internal/sim/ ./internal/telemetry/ ./internal/mpi/ ./internal/fft/ ./internal/pfft/

bench:
	$(GO) test -run NONE -bench . -benchmem .

# bench-fft: the r2c before/after evidence — 1-D/3-D kernel rates, the
# distributed transpose byte ledgers, and the PM solve Gflops.
bench-fft:
	$(GO) test -run NONE -bench 'RealFFT' -benchmem ./internal/fft/
	$(GO) test -run NONE -bench 'Solve(64|128)' -benchmem ./internal/mesh/
	$(GO) test -run NONE -bench 'PencilVsSlabFFT|Fig5RelayVsNaive' -benchmem .
