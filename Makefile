GO ?= go

.PHONY: verify build vet test race bench

# verify is the tier-1 gate: full build, vet, tests, plus a short race pass
# over the packages where ranks-as-goroutines concurrency lives.
verify:
	./scripts/verify.sh

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race -count=1 ./internal/sim/ ./internal/telemetry/ ./internal/mpi/

bench:
	$(GO) test -run NONE -bench . -benchmem .
