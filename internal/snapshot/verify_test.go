package snapshot

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestReadVerifiedReportsVerified(t *testing.T) {
	var buf bytes.Buffer
	parts := randomParts(17)
	if err := Write(&buf, Header{L: 1, Time: 0.25, G: 1}, parts); err != nil {
		t.Fatal(err)
	}
	hdr, gp, ver, err := ReadVerified(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if ver != Verified {
		t.Errorf("verification = %v, want Verified", ver)
	}
	if hdr.N != 17 || len(gp) != 17 {
		t.Errorf("round trip: %d particles", len(gp))
	}
}

func TestBitFlipDetected(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{L: 1}, randomParts(9)); err != nil {
		t.Fatal(err)
	}
	// Flip one payload byte mid-particle-section: the CRC32C footer must
	// catch it even though the header still parses.
	b := append([]byte(nil), buf.Bytes()...)
	b[headerBytes+3*particleBytes+5] ^= 0x10
	_, _, _, err := ReadSizedVerified(bytes.NewReader(b), int64(len(b)))
	if err == nil {
		t.Fatal("bit-flipped snapshot accepted")
	}
	if !strings.Contains(err.Error(), "CRC32C mismatch") {
		t.Errorf("want CRC mismatch error, got: %v", err)
	}
}

func TestFooterStrippedDetected(t *testing.T) {
	// Truncation that removes exactly the footer: version 2 declares the
	// footer mandatory, so this cannot masquerade as a clean footerless file.
	var buf bytes.Buffer
	if err := Write(&buf, Header{L: 1}, randomParts(4)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()[:buf.Len()-footerBytes]
	_, _, _, err := ReadVerified(bytes.NewReader(b))
	if err == nil {
		t.Fatal("footer-stripped snapshot accepted")
	}
	if !strings.Contains(err.Error(), "missing CRC footer") {
		t.Errorf("want missing-footer error, got: %v", err)
	}
}

// legacyV1Bytes hand-crafts a version-1 (footerless) snapshot from a current
// one: patch the version field and strip the footer. The payload bytes of
// the two formats are otherwise identical.
func legacyV1Bytes(t *testing.T, parts int) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := Write(&buf, Header{L: 1, Time: 0.125}, randomParts(parts)); err != nil {
		t.Fatal(err)
	}
	b := append([]byte(nil), buf.Bytes()[:buf.Len()-footerBytes]...)
	binary.LittleEndian.PutUint32(b[4:], 1) // version field
	return b
}

func TestLegacyV1LoadsUnverified(t *testing.T) {
	b := legacyV1Bytes(t, 6)
	hdr, gp, ver, err := ReadSizedVerified(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		t.Fatalf("legacy file rejected: %v", err)
	}
	if ver != Legacy {
		t.Errorf("verification = %v, want Legacy", ver)
	}
	if got := ver.String(); got != "legacy, unverified" {
		t.Errorf("Legacy.String() = %q", got)
	}
	if hdr.Version != 1 || len(gp) != 6 {
		t.Errorf("legacy load: version %d, %d particles", hdr.Version, len(gp))
	}
	// And through the file path, so Load keeps accepting old archives.
	path := filepath.Join(t.TempDir(), "v1.bin")
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, ver, err = LoadVerified(path)
	if err != nil {
		t.Fatalf("LoadVerified(v1): %v", err)
	}
	if ver != Legacy {
		t.Errorf("LoadVerified verification = %v, want Legacy", ver)
	}
}

func TestLegacyV1TruncationStillDetected(t *testing.T) {
	// No footer on v1, but the header count check still catches short files.
	b := legacyV1Bytes(t, 6)
	b = b[:len(b)-particleBytes]
	if _, _, _, err := ReadSizedVerified(bytes.NewReader(b), int64(len(b))); err == nil {
		t.Error("truncated v1 accepted")
	}
}

func TestSaveIsAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.bin")
	if err := Save(path, Header{L: 1}, randomParts(11)); err != nil {
		t.Fatal(err)
	}
	// Overwrite with new content: the temp file must be gone, the final file
	// verified-readable.
	if err := Save(path, Header{L: 1, Time: 0.5}, randomParts(13)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
	hdr, gp, ver, err := LoadVerified(path)
	if err != nil {
		t.Fatal(err)
	}
	if ver != Verified || hdr.N != 13 || len(gp) != 13 || hdr.Time != 0.5 {
		t.Errorf("replaced snapshot: ver=%v n=%d time=%v", ver, hdr.N, hdr.Time)
	}
}
