package snapshot

import (
	"encoding/binary"
	"testing"

	"greem/internal/sim"
)

func TestOnDiskSizes(t *testing.T) {
	if got := binary.Size(Header{}); got != headerBytes {
		t.Errorf("headerBytes = %d, binary.Size(Header{}) = %d", headerBytes, got)
	}
	if got := binary.Size(sim.Particle{}); got != particleBytes {
		t.Errorf("particleBytes = %d, binary.Size(Particle{}) = %d", particleBytes, got)
	}
}
