package snapshot

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"greem/internal/sim"
)

func randomParts(n int) []sim.Particle {
	rng := rand.New(rand.NewSource(1))
	out := make([]sim.Particle, n)
	for i := range out {
		out[i] = sim.Particle{
			X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64(),
			VX: rng.NormFloat64(), VY: rng.NormFloat64(), VZ: rng.NormFloat64(),
			M: rng.Float64(), ID: int64(i),
		}
	}
	return out
}

func TestRoundTrip(t *testing.T) {
	parts := randomParts(137)
	hdr := Header{L: 2.5, Time: 0.031, G: 1, StepIdx: 42}
	var buf bytes.Buffer
	if err := Write(&buf, hdr, parts); err != nil {
		t.Fatal(err)
	}
	got, gp, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 137 || got.L != 2.5 || got.Time != 0.031 || got.StepIdx != 42 {
		t.Errorf("header mismatch: %+v", got)
	}
	if got.Magic != Magic || got.Version != Version {
		t.Errorf("magic/version not set: %+v", got)
	}
	for i := range parts {
		if gp[i] != parts[i] {
			t.Fatalf("particle %d mismatch", i)
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snap.bin")
	parts := randomParts(10)
	if err := Save(path, Header{L: 1, Time: 0.5, G: 1}, parts); err != nil {
		t.Fatal(err)
	}
	hdr, gp, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.N != 10 || len(gp) != 10 {
		t.Errorf("loaded %d particles", len(gp))
	}
}

func TestRejectsGarbage(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("not a snapshot at all, just text padding to header size....")
	if _, _, err := Read(&buf); err == nil {
		t.Error("garbage accepted")
	}
	// Truncated particle section.
	var buf2 bytes.Buffer
	if err := Write(&buf2, Header{L: 1}, randomParts(5)); err != nil {
		t.Fatal(err)
	}
	trunc := bytes.NewReader(buf2.Bytes()[:buf2.Len()-8])
	if _, _, err := Read(trunc); err == nil {
		t.Error("truncated file accepted")
	}
}

// corruptN rewrites the little-endian N field (offset 8) of a serialized
// snapshot to claim a bogus particle count.
func corruptN(b []byte, n uint64) {
	binary.LittleEndian.PutUint64(b[8:], n)
}

func TestSizedRejectsOverclaimedCount(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{L: 1}, randomParts(5)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Header claims a billion particles but the payload holds five: ReadSized
	// must fail on the header check, before decoding (or allocating) anything.
	corruptN(b, 1_000_000_000)
	_, _, err := ReadSized(bytes.NewReader(b), int64(len(b)))
	if err == nil {
		t.Fatal("over-claimed count accepted")
	}
	if !strings.Contains(err.Error(), "holds at most 5") {
		t.Errorf("want size-validation error, got: %v", err)
	}
}

func TestLoadRejectsTruncatedFile(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{L: 1}, randomParts(50)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trunc.bin")
	if err := os.WriteFile(path, buf.Bytes()[:headerBytes+7*particleBytes], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Load(path); err == nil {
		t.Error("truncated file accepted by Load")
	}
}

func TestSizedAcceptsTrailingSlack(t *testing.T) {
	// A size larger than needed (e.g. preallocated file) must not reject.
	var buf bytes.Buffer
	parts := randomParts(3)
	if err := Write(&buf, Header{L: 1}, parts); err != nil {
		t.Fatal(err)
	}
	hdr, gp, err := ReadSized(bytes.NewReader(buf.Bytes()), int64(buf.Len())+1000)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.N != 3 || len(gp) != 3 {
		t.Errorf("round trip with slack: %d", len(gp))
	}
}

func TestEmptySnapshot(t *testing.T) {
	var buf bytes.Buffer
	if err := Write(&buf, Header{L: 1}, nil); err != nil {
		t.Fatal(err)
	}
	hdr, parts, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.N != 0 || len(parts) != 0 {
		t.Errorf("empty snapshot round trip: %d", len(parts))
	}
}
