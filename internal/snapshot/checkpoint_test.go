package snapshot_test

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"greem/internal/mpi"
	"greem/internal/sim"
	"greem/internal/snapshot"
)

type Particle = sim.Particle

func makeParticles(seed int64, n int, vscale float64) []Particle {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Particle, n)
	for i := range out {
		out[i] = Particle{
			X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64(),
			VX: vscale * rng.NormFloat64(), VY: vscale * rng.NormFloat64(), VZ: vscale * rng.NormFloat64(),
			M: 1.0 / float64(n), ID: int64(i),
		}
	}
	return out
}

func sliceFor(parts []Particle, rank, size int) []Particle {
	n := len(parts)
	return parts[rank*n/size : (rank+1)*n/size]
}

func baseConfig(grid [3]int) sim.Config {
	return sim.Config{
		L: 1, G: 1, NMesh: 16, Theta: 0.3, Ni: 32, Eps2: 1e-9,
		Grid: grid, DT: 0.01,
	}
}

// TestCheckpointRestartEquivalence: running 4 steps straight must equal
// running 2 steps, snapshotting, restoring into a fresh simulation (even
// with a different rank count), and running 2 more — the property a
// production run's restart machinery must have. Positions/velocities are
// exactly carried by the snapshot; forces are recomputed, so trajectories
// agree to the determinism of the force evaluation (exact here: the same
// tree code runs, but domain boundaries depend on sampling history, so we
// allow tree-θ-level tolerance).
func TestCheckpointRestartEquivalence(t *testing.T) {
	n := 150
	parts := makeParticles(20, n, 0.05)
	cfg := baseConfig([3]int{2, 1, 1})
	cfg.Theta = 0.2 // tight opening angle to shrink decomposition sensitivity
	cfg.DT = 0.01

	run := func(init []Particle, ranks, steps int, startTime float64) []Particle {
		c2 := cfg
		if ranks == 4 {
			c2.Grid = [3]int{2, 2, 1}
		}
		c2.Time = startTime
		var out []Particle
		err := mpi.Run(ranks, func(c *mpi.Comm) {
			s, err := sim.New(c, c2, sliceFor(init, c.Rank(), ranks))
			if err != nil {
				panic(err)
			}
			for i := 0; i < steps; i++ {
				if err := s.Step(); err != nil {
					panic(err)
				}
			}
			all := s.GatherAll(0)
			if c.Rank() == 0 {
				out = all
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		sort.Slice(out, func(a, b int) bool { return out[a].ID < out[b].ID })
		return out
	}

	straight := run(parts, 2, 4, 0)

	half := run(parts, 2, 2, 0)
	// Round-trip through the snapshot format.
	var buf bytes.Buffer
	if err := snapshot.Write(&buf, snapshot.Header{L: 1, Time: 0.02, G: 1}, half); err != nil {
		t.Fatal(err)
	}
	_, restored, err := snapshot.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	resumed := run(restored, 4, 2, 0.02) // different rank count on resume

	var worst float64
	for i := range straight {
		if straight[i].ID != resumed[i].ID {
			t.Fatalf("ID order mismatch at %d", i)
		}
		dx := math.Abs(straight[i].X - resumed[i].X)
		dy := math.Abs(straight[i].Y - resumed[i].Y)
		dz := math.Abs(straight[i].Z - resumed[i].Z)
		// Periodic wrap of the difference.
		for _, d := range []*float64{&dx, &dy, &dz} {
			if *d > 0.5 {
				*d = 1 - *d
			}
		}
		worst = math.Max(worst, dx+dy+dz)
	}
	t.Logf("worst position difference straight-vs-restart: %.3e", worst)
	// The force difference between decompositions is bounded by the tree
	// approximation error (θ = 0.2); over two 0.01 steps that integrates to
	// far less than a cell.
	if worst > 5e-4 {
		t.Errorf("restart diverged: worst |Δx| = %v", worst)
	}
}
