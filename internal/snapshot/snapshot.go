// Package snapshot provides versioned binary I/O for simulation states, the
// bookkeeping layer a 200 TB production run needs (the paper's run writes
// snapshots at selected redshifts; Fig. 6 is rendered from them).
//
// Since format version 2 every snapshot carries a CRC32C (Castagnoli)
// footer over the header and particle payload, so torn writes and bit rot
// are detected at load time instead of silently corrupting a restart.
// Version-1 files (no footer) still load, flagged Legacy ("legacy,
// unverified") by the *Verified readers. Save is atomic: it writes to a
// temp file in the destination directory and renames it into place, so a
// crash mid-write can never leave a half-written file under the final name.
package snapshot

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"

	"greem/internal/sim"
)

// Magic identifies greem snapshot files.
const Magic = 0x4752454D // "GREM"

// Version is the current format version: 2 appends the CRC32C footer.
// Version-1 files are still accepted (Legacy).
const Version = 2

// Header describes the stored system.
type Header struct {
	Magic    uint32
	Version  uint32
	N        uint64  // particle count
	L        float64 // box side
	Time     float64 // simulation time or scale factor
	G        float64
	StepIdx  uint64
	Reserved [4]uint64 // room for forward-compatible extensions
}

// headerBytes and particleBytes are the on-disk sizes of the fixed-layout
// little-endian records; used to validate hdr.N against the input size.
// footerBytes is the version-2 trailer: a 4-byte magic plus the CRC32C of
// every preceding byte.
const (
	headerBytes   = 80 // 2×uint32 + uint64 + 3×float64 + uint64 + 4×uint64
	particleBytes = 64 // 7×float64 + int64
	footerBytes   = 8  // footer magic + CRC32C
)

// footerMagic marks the CRC32C footer ("CRC1").
const footerMagic = 0x43524331

// castagnoli is the CRC32C polynomial table (hardware-accelerated on the
// platforms that matter; the same checksum the checkpoint manifests use).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Verification reports how much integrity checking a load performed.
type Verification int

const (
	// Verified: the CRC32C footer was present and matched the payload.
	Verified Verification = iota
	// Legacy: a version-1 file with no footer — loaded, but unverified.
	Legacy
)

func (v Verification) String() string {
	if v == Verified {
		return "verified"
	}
	return "legacy, unverified"
}

// crcWriter tees a CRC32C over everything written through it.
type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

// crcReader tees a CRC32C over exactly the bytes consumed through it (the
// underlying bufio.Reader may buffer ahead; only decoded bytes are hashed).
type crcReader struct {
	r   io.Reader
	crc uint32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	c.crc = crc32.Update(c.crc, castagnoli, p[:n])
	return n, err
}

// Write stores a header, particle set and CRC32C footer.
func Write(w io.Writer, hdr Header, parts []sim.Particle) error {
	hdr.Magic = Magic
	hdr.Version = Version
	hdr.N = uint64(len(parts))
	cw := &crcWriter{w: w}
	bw := bufio.NewWriter(cw)
	if err := binary.Write(bw, binary.LittleEndian, &hdr); err != nil {
		return fmt.Errorf("snapshot: header: %w", err)
	}
	for i := range parts {
		if err := binary.Write(bw, binary.LittleEndian, &parts[i]); err != nil {
			return fmt.Errorf("snapshot: particle %d: %w", i, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return err
	}
	// The footer is written past the CRC tee: it covers, not includes, itself.
	var foot [footerBytes]byte
	binary.LittleEndian.PutUint32(foot[0:], footerMagic)
	binary.LittleEndian.PutUint32(foot[4:], cw.crc)
	if _, err := w.Write(foot[:]); err != nil {
		return fmt.Errorf("snapshot: footer: %w", err)
	}
	return nil
}

// Read loads a snapshot. The particle slice grows in bounded chunks as records
// are decoded, so a corrupt or hostile header cannot force an allocation
// proportional to hdr.N before any payload has been seen; use ReadSized when
// the total input size is known (Load does) for an up-front check.
func Read(r io.Reader) (Header, []sim.Particle, error) {
	hdr, parts, _, err := readLimited(r, -1)
	return hdr, parts, err
}

// ReadVerified is Read plus the integrity status: Verified when the CRC32C
// footer was present and matched, Legacy for footerless version-1 files.
func ReadVerified(r io.Reader) (Header, []sim.Particle, Verification, error) {
	return readLimited(r, -1)
}

// ReadSized is Read with a known total input size in bytes: hdr.N is validated
// against the payload that can actually be present before anything is
// allocated, so truncated files fail fast instead of mid-decode.
func ReadSized(r io.Reader, size int64) (Header, []sim.Particle, error) {
	hdr, parts, _, err := readLimited(r, size)
	return hdr, parts, err
}

// ReadSizedVerified is ReadSized plus the integrity status (see ReadVerified).
func ReadSizedVerified(r io.Reader, size int64) (Header, []sim.Particle, Verification, error) {
	return readLimited(r, size)
}

func readLimited(r io.Reader, size int64) (Header, []sim.Particle, Verification, error) {
	br := bufio.NewReader(r)
	cr := &crcReader{r: br}
	var hdr Header
	if err := binary.Read(cr, binary.LittleEndian, &hdr); err != nil {
		return hdr, nil, Legacy, fmt.Errorf("snapshot: header: %w", err)
	}
	if hdr.Magic != Magic {
		return hdr, nil, Legacy, fmt.Errorf("snapshot: bad magic %#x", hdr.Magic)
	}
	if hdr.Version != 1 && hdr.Version != Version {
		return hdr, nil, Legacy, fmt.Errorf("snapshot: unsupported version %d", hdr.Version)
	}
	if hdr.N > 1<<40 {
		return hdr, nil, Legacy, fmt.Errorf("snapshot: implausible particle count %d", hdr.N)
	}
	if size >= 0 {
		overhead := int64(headerBytes)
		if hdr.Version >= 2 {
			overhead += footerBytes
		}
		avail := uint64(0)
		if size > overhead {
			avail = uint64(size-overhead) / particleBytes
		}
		if hdr.N > avail {
			return hdr, nil, Legacy, fmt.Errorf("snapshot: header claims %d particles but input holds at most %d (%d bytes)", hdr.N, avail, size)
		}
	}
	// Grow in chunks rather than trusting hdr.N wholesale: the largest
	// allocation ahead of decoded data stays bounded even on unsized readers.
	const chunk = 1 << 16
	parts := make([]sim.Particle, 0, min(hdr.N, chunk))
	for i := uint64(0); i < hdr.N; i++ {
		var p sim.Particle
		if err := binary.Read(cr, binary.LittleEndian, &p); err != nil {
			return hdr, nil, Legacy, fmt.Errorf("snapshot: particle %d: %w", i, err)
		}
		parts = append(parts, p)
	}
	if hdr.Version == 1 {
		return hdr, parts, Legacy, nil
	}
	// Version ≥ 2 declares the footer mandatory, so a file truncated at
	// exactly the footer boundary is still detected.
	want := cr.crc
	var foot [footerBytes]byte
	if _, err := io.ReadFull(br, foot[:]); err != nil {
		return hdr, nil, Legacy, fmt.Errorf("snapshot: missing CRC footer (truncated file): %w", err)
	}
	if m := binary.LittleEndian.Uint32(foot[0:]); m != footerMagic {
		return hdr, nil, Legacy, fmt.Errorf("snapshot: bad footer magic %#x", m)
	}
	if got := binary.LittleEndian.Uint32(foot[4:]); got != want {
		return hdr, nil, Legacy, fmt.Errorf("snapshot: CRC32C mismatch: payload %#08x, footer %#08x (corrupt file)", want, got)
	}
	return hdr, parts, Verified, nil
}

// Encode renders a snapshot (header, particles, CRC32C footer) to bytes —
// the form the content-addressed store takes.
func Encode(hdr Header, parts []sim.Particle) ([]byte, error) {
	var buf bytes.Buffer
	buf.Grow(headerBytes + len(parts)*particleBytes + footerBytes)
	if err := Write(&buf, hdr, parts); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode parses an encoded snapshot, requiring the verified footer.
func Decode(b []byte) (Header, []sim.Particle, error) {
	hdr, parts, ver, err := ReadSizedVerified(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		return hdr, nil, err
	}
	if ver != Verified {
		return hdr, nil, fmt.Errorf("snapshot: %s payload; stored snapshots require a verified footer", ver)
	}
	return hdr, parts, nil
}

// Sink persists one encoded blob under a name and returns its content
// address. store.Store satisfies it; the indirection keeps this package
// free of a store dependency while letting snapshots write through the
// service plane's blob store instead of bare files.
type Sink interface {
	PutNamed(name string, data []byte) (ref string, err error)
}

// SaveTo encodes the snapshot and writes it through a blob sink,
// returning the content address. The store's put is atomic the same way
// Save's rename is: the name either resolves to the complete snapshot or
// to its previous target, never to torn bytes.
func SaveTo(sink Sink, name string, hdr Header, parts []sim.Particle) (string, error) {
	b, err := Encode(hdr, parts)
	if err != nil {
		return "", err
	}
	return sink.PutNamed(name, b)
}

// Save writes a snapshot to a file atomically: the bytes go to a temp file
// in the same directory, are synced, and renamed into place, so path either
// holds the complete previous content or the complete new content — never a
// torn write.
func Save(path string, hdr Header, parts []sim.Particle) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := Write(f, hdr, parts); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Load reads a snapshot from a file, validating the header's particle count
// against the file's actual size before allocating and verifying the CRC
// footer when present.
func Load(path string) (Header, []sim.Particle, error) {
	hdr, parts, _, err := LoadVerified(path)
	return hdr, parts, err
}

// LoadVerified is Load plus the integrity status (see ReadVerified).
func LoadVerified(path string) (Header, []sim.Particle, Verification, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, Legacy, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return Header{}, nil, Legacy, err
	}
	return readLimited(f, st.Size())
}
