// Package snapshot provides versioned binary I/O for simulation states, the
// bookkeeping layer a 200 TB production run needs (the paper's run writes
// snapshots at selected redshifts; Fig. 6 is rendered from them).
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"greem/internal/sim"
)

// Magic identifies greem snapshot files.
const Magic = 0x4752454D // "GREM"

// Version is the current format version.
const Version = 1

// Header describes the stored system.
type Header struct {
	Magic    uint32
	Version  uint32
	N        uint64  // particle count
	L        float64 // box side
	Time     float64 // simulation time or scale factor
	G        float64
	StepIdx  uint64
	Reserved [4]uint64 // room for forward-compatible extensions
}

// Write stores a header and particle set.
func Write(w io.Writer, hdr Header, parts []sim.Particle) error {
	hdr.Magic = Magic
	hdr.Version = Version
	hdr.N = uint64(len(parts))
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, &hdr); err != nil {
		return fmt.Errorf("snapshot: header: %w", err)
	}
	for i := range parts {
		if err := binary.Write(bw, binary.LittleEndian, &parts[i]); err != nil {
			return fmt.Errorf("snapshot: particle %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read loads a snapshot.
func Read(r io.Reader) (Header, []sim.Particle, error) {
	br := bufio.NewReader(r)
	var hdr Header
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return hdr, nil, fmt.Errorf("snapshot: header: %w", err)
	}
	if hdr.Magic != Magic {
		return hdr, nil, fmt.Errorf("snapshot: bad magic %#x", hdr.Magic)
	}
	if hdr.Version != Version {
		return hdr, nil, fmt.Errorf("snapshot: unsupported version %d", hdr.Version)
	}
	if hdr.N > 1<<40 {
		return hdr, nil, fmt.Errorf("snapshot: implausible particle count %d", hdr.N)
	}
	parts := make([]sim.Particle, hdr.N)
	for i := range parts {
		if err := binary.Read(br, binary.LittleEndian, &parts[i]); err != nil {
			return hdr, nil, fmt.Errorf("snapshot: particle %d: %w", i, err)
		}
	}
	return hdr, parts, nil
}

// Save writes a snapshot to a file.
func Save(path string, hdr Header, parts []sim.Particle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, hdr, parts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a snapshot from a file.
func Load(path string) (Header, []sim.Particle, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer f.Close()
	return Read(f)
}
