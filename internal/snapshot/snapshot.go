// Package snapshot provides versioned binary I/O for simulation states, the
// bookkeeping layer a 200 TB production run needs (the paper's run writes
// snapshots at selected redshifts; Fig. 6 is rendered from them).
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"greem/internal/sim"
)

// Magic identifies greem snapshot files.
const Magic = 0x4752454D // "GREM"

// Version is the current format version.
const Version = 1

// Header describes the stored system.
type Header struct {
	Magic    uint32
	Version  uint32
	N        uint64  // particle count
	L        float64 // box side
	Time     float64 // simulation time or scale factor
	G        float64
	StepIdx  uint64
	Reserved [4]uint64 // room for forward-compatible extensions
}

// headerBytes and particleBytes are the on-disk sizes of the fixed-layout
// little-endian records; used to validate hdr.N against the input size.
const (
	headerBytes   = 80 // 2×uint32 + uint64 + 3×float64 + uint64 + 4×uint64
	particleBytes = 64 // 7×float64 + int64
)

// Write stores a header and particle set.
func Write(w io.Writer, hdr Header, parts []sim.Particle) error {
	hdr.Magic = Magic
	hdr.Version = Version
	hdr.N = uint64(len(parts))
	bw := bufio.NewWriter(w)
	if err := binary.Write(bw, binary.LittleEndian, &hdr); err != nil {
		return fmt.Errorf("snapshot: header: %w", err)
	}
	for i := range parts {
		if err := binary.Write(bw, binary.LittleEndian, &parts[i]); err != nil {
			return fmt.Errorf("snapshot: particle %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read loads a snapshot. The particle slice grows in bounded chunks as records
// are decoded, so a corrupt or hostile header cannot force an allocation
// proportional to hdr.N before any payload has been seen; use ReadSized when
// the total input size is known (Load does) for an up-front check.
func Read(r io.Reader) (Header, []sim.Particle, error) {
	return readLimited(r, -1)
}

// ReadSized is Read with a known total input size in bytes: hdr.N is validated
// against the payload that can actually be present before anything is
// allocated, so truncated files fail fast instead of mid-decode.
func ReadSized(r io.Reader, size int64) (Header, []sim.Particle, error) {
	return readLimited(r, size)
}

func readLimited(r io.Reader, size int64) (Header, []sim.Particle, error) {
	br := bufio.NewReader(r)
	var hdr Header
	if err := binary.Read(br, binary.LittleEndian, &hdr); err != nil {
		return hdr, nil, fmt.Errorf("snapshot: header: %w", err)
	}
	if hdr.Magic != Magic {
		return hdr, nil, fmt.Errorf("snapshot: bad magic %#x", hdr.Magic)
	}
	if hdr.Version != Version {
		return hdr, nil, fmt.Errorf("snapshot: unsupported version %d", hdr.Version)
	}
	if hdr.N > 1<<40 {
		return hdr, nil, fmt.Errorf("snapshot: implausible particle count %d", hdr.N)
	}
	if size >= 0 {
		avail := uint64(0)
		if size > headerBytes {
			avail = uint64(size-headerBytes) / particleBytes
		}
		if hdr.N > avail {
			return hdr, nil, fmt.Errorf("snapshot: header claims %d particles but input holds at most %d (%d bytes)", hdr.N, avail, size)
		}
	}
	// Grow in chunks rather than trusting hdr.N wholesale: the largest
	// allocation ahead of decoded data stays bounded even on unsized readers.
	const chunk = 1 << 16
	parts := make([]sim.Particle, 0, min(hdr.N, chunk))
	for i := uint64(0); i < hdr.N; i++ {
		var p sim.Particle
		if err := binary.Read(br, binary.LittleEndian, &p); err != nil {
			return hdr, nil, fmt.Errorf("snapshot: particle %d: %w", i, err)
		}
		parts = append(parts, p)
	}
	return hdr, parts, nil
}

// Save writes a snapshot to a file.
func Save(path string, hdr Header, parts []sim.Particle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, hdr, parts); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a snapshot from a file, validating the header's particle count
// against the file's actual size before allocating.
func Load(path string) (Header, []sim.Particle, error) {
	f, err := os.Open(path)
	if err != nil {
		return Header{}, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return Header{}, nil, err
	}
	return ReadSized(f, st.Size())
}
