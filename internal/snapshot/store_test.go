package snapshot

import (
	"testing"

	"greem/internal/sim"
	"greem/internal/store"
)

func testParts(n int) []sim.Particle {
	out := make([]sim.Particle, n)
	for i := range out {
		out[i] = sim.Particle{
			X: float64(i) * 0.01, Y: float64(i) * 0.02, Z: float64(i) * 0.03,
			VX: 0.1, VY: -0.2, VZ: 0.3, M: 1.0 / float64(n), ID: int64(i),
		}
	}
	return out
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	parts := testParts(17)
	hdr := Header{L: 1, Time: 0.25, G: 1, StepIdx: 4}
	b, err := Encode(hdr, parts)
	if err != nil {
		t.Fatal(err)
	}
	got, gparts, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != 17 || got.L != 1 || got.Time != 0.25 || got.StepIdx != 4 {
		t.Fatalf("header %+v", got)
	}
	for i := range parts {
		if gparts[i] != parts[i] {
			t.Fatalf("particle %d: %+v != %+v", i, gparts[i], parts[i])
		}
	}
	// Determinism: the same state encodes to the same bytes, so snapshots
	// are cacheable by content hash.
	b2, err := Encode(hdr, parts)
	if err != nil {
		t.Fatal(err)
	}
	if store.HashRef(b) != store.HashRef(b2) {
		t.Fatal("encode is not deterministic")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	b, err := Encode(Header{L: 1, Time: 0.5, G: 1}, testParts(9))
	if err != nil {
		t.Fatal(err)
	}
	b[headerBytes+8] ^= 0x40 // flip one bit in a particle record
	if _, _, err := Decode(b); err == nil {
		t.Fatal("Decode accepted a flipped bit")
	}
	if _, _, err := Decode(b[:len(b)-1]); err == nil {
		t.Fatal("Decode accepted a truncated snapshot")
	}
}

func TestSaveToStore(t *testing.T) {
	st := store.NewMem()
	parts := testParts(23)
	ref, err := SaveTo(st, "runs/1/snapshot/final", Header{L: 1, Time: 0.5, G: 1, StepIdx: 8}, parts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.Resolve("runs/1/snapshot/final")
	if err != nil || got != ref {
		t.Fatalf("resolve: %s, %v", got, err)
	}
	b, err := st.Get(ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := store.Verify(ref, b); err != nil {
		t.Fatal(err)
	}
	hdr, gparts, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.StepIdx != 8 || len(gparts) != 23 {
		t.Fatalf("loaded hdr %+v, %d particles", hdr, len(gparts))
	}
}
