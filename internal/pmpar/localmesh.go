// Package pmpar implements the parallel particle-mesh solver of §II-B: each
// process keeps a *local mesh* covering its own rectangular domain plus ghost
// layers, while the FFT runs on 1-D slabs held by a subset of processes. The
// package provides both mesh-conversion algorithms between those two layouts:
//
//   - Naive: one global MPI_Alltoallv over the world communicator, in which
//     every process sends its local-mesh contributions straight to the slab
//     owners. With p processes an FFT process receives ~p/NFFT·(overlap)
//     messages — ~4000 at the paper's full-system scale — and the incast
//     congestion dominates.
//
//   - Relay mesh: processes are divided into groups (size ≥ the number of
//     FFT processes). Each group first builds *partial* density slabs with an
//     Alltoallv closed inside the group (COMM_SMALLA2A), then the partial
//     slabs are summed across groups onto the root group with MPI_Reduce
//     (COMM_REDUCE). After the FFT (COMM_FFT), the potential slabs are
//     broadcast back over COMM_REDUCE and scattered inside each group.
//
// Both paths produce identical numerics; only the communication pattern
// differs, which the mpi traffic ledger records for the perfmodel replay.
package pmpar

import (
	"fmt"
	"math"

	"greem/internal/par"
	"greem/internal/vec"
)

// ghostAssign is the ghost width needed for TSC mass assignment (a particle
// touches its nearest cell ±1, and the nearest cell of a particle at the
// domain edge can lie one cell outside).
const ghostAssign = 2

// ghostPot is the ghost width of the potential mesh: force interpolation
// needs the force mesh on ±1 cells beyond the particle's nearest cell, and
// the four-point finite difference needs φ two cells beyond that.
const ghostPot = 4

// LocalMesh is one process's rectangular window of the global n³ mesh,
// including ghost layers. Global cell indices (X0 …) may be negative or
// exceed n; they wrap modulo n. If a window would cover the whole axis it is
// clamped to exactly [0, n), and indexing wraps.
type LocalMesh struct {
	N int     // global mesh size per dimension
	H float64 // cell size L/N

	X0, Y0, Z0 int // global index of local origin
	NX, NY, NZ int // local extent per axis (≤ N)

	Rho        []float64
	Phi        []float64
	Fx, Fy, Fz []float64

	// pool batches the assignment, differencing, and interpolation loops
	// across intra-rank workers (SetPool; nil = serial). Decompositions are
	// deterministic — plane ownership for the scatter, disjoint ranges for
	// the rest — so results are bit-identical to serial at any worker count.
	pool *par.Pool

	// Hoisted per-call scratch for the two-pass parallel assignment (pass A
	// precomputes local stencil indices and weights per particle; pass B
	// deposits by local-x-plane ownership). Grown amortized, never shrunk.
	wix, wiy, wiz [][3]int32
	wwx, wwy, wwz [][3]float64

	// Current batch state for the bound range tasks.
	tx, ty, tz, tm []float64
	tax, tay, taz  []float64
	tpot           []float64
	np             int
	tvinv          float64
	tx0            int

	taskPrep, taskDeposit, taskDiff, taskInterp, taskPot func(w, lo, hi int)
}

// NewLocalMesh creates the local window for the domain [lo, hi) of a box of
// side l with an n³ global mesh.
func NewLocalMesh(n int, l float64, lo, hi vec.V3) (*LocalMesh, error) {
	if n < 1 {
		return nil, fmt.Errorf("pmpar: bad mesh size %d", n)
	}
	h := l / float64(n)
	m := &LocalMesh{N: n, H: h}
	m.X0, m.NX = axisRange(lo.X, hi.X, h, n)
	m.Y0, m.NY = axisRange(lo.Y, hi.Y, h, n)
	m.Z0, m.NZ = axisRange(lo.Z, hi.Z, h, n)
	sz := m.NX * m.NY * m.NZ
	m.Rho = make([]float64, sz)
	m.Phi = make([]float64, sz)
	m.Fx = make([]float64, sz)
	m.Fy = make([]float64, sz)
	m.Fz = make([]float64, sz)
	m.taskPrep = m.assignPrep
	m.taskDeposit = m.assignDeposit
	m.taskDiff = m.diffTask
	m.taskInterp = m.interpRange
	m.taskPot = m.potRange
	return m, nil
}

// SetPool attaches a worker pool to the mesh loops (nil restores serial).
// The pool is shared, not owned: the caller closes it.
func (m *LocalMesh) SetPool(pool *par.Pool) { m.pool = pool }

func axisRange(lo, hi, h float64, n int) (origin, extent int) {
	c0 := int(math.Floor(lo/h)) - ghostPot
	c1 := int(math.Ceil(hi/h)) + ghostPot
	if c1-c0 >= n {
		return 0, n
	}
	return c0, c1 - c0
}

func (m *LocalMesh) idx(lx, ly, lz int) int { return (lx*m.NY+ly)*m.NZ + lz }

// wrapAxis maps a global index to a local index for one axis, or −1 if the
// cell is outside the window.
func wrapAxis(g, origin, extent, n int) int {
	l := g - origin
	if extent == n {
		l %= n
		if l < 0 {
			l += n
		}
		return l
	}
	if l < 0 || l >= extent {
		return -1
	}
	return l
}

// Clear zeroes the density array.
func (m *LocalMesh) Clear() {
	for i := range m.Rho {
		m.Rho[i] = 0
	}
}

// tsc returns the global base cell index and TSC weights for coordinate x.
func (m *LocalMesh) tsc(x float64) (g0 int, w [3]float64) {
	u := x / m.H
	ng := math.Round(u)
	d := u - ng
	w[0] = 0.5 * (0.5 - d) * (0.5 - d)
	w[1] = 0.75 - d*d
	w[2] = 0.5 * (0.5 + d) * (0.5 + d)
	return int(ng) - 1, w
}

// growScratch sizes the per-particle assignment scratch (amortized).
func (m *LocalMesh) growScratch(np int) {
	if cap(m.wix) < np {
		m.wix = make([][3]int32, np)
		m.wiy = make([][3]int32, np)
		m.wiz = make([][3]int32, np)
		m.wwx = make([][3]float64, np)
		m.wwy = make([][3]float64, np)
		m.wwz = make([][3]float64, np)
	}
	m.wix = m.wix[:np]
	m.wiy = m.wiy[:np]
	m.wiz = m.wiz[:np]
	m.wwx = m.wwx[:np]
	m.wwy = m.wwy[:np]
	m.wwz = m.wwz[:np]
}

// assignPrep (pass A) precomputes each particle's local stencil indices and
// weights, with the mass folded into the x weights exactly as the serial
// loop multiplied (wx[a]·mv). Particles are independent; the split is
// race-free.
func (m *LocalMesh) assignPrep(w, lo, hi int) {
	for p := lo; p < hi; p++ {
		gx, wx := m.tsc(m.tx[p])
		gy, wy := m.tsc(m.ty[p])
		gz, wz := m.tsc(m.tz[p])
		mv := m.tm[p] * m.tvinv
		for a := 0; a < 3; a++ {
			m.wix[p][a] = int32(wrapAxis(gx+a, m.X0, m.NX, m.N))
			m.wiy[p][a] = int32(wrapAxis(gy+a, m.Y0, m.NY, m.N))
			m.wiz[p][a] = int32(wrapAxis(gz+a, m.Z0, m.NZ, m.N))
			m.wwx[p][a] = wx[a] * mv
			m.wwy[p][a] = wy[a]
			m.wwz[p][a] = wz[a]
		}
	}
}

// assignDeposit (pass B) deposits by local-x-plane ownership: worker w owns
// the contiguous plane range [lo, hi) and scans every particle, depositing
// only stencil planes it owns. Each cell receives its contributions in the
// serial particle-and-stencil order, so the parallel density is bit-identical
// to the serial one for any worker count.
func (m *LocalMesh) assignDeposit(w, lo, hi int) {
	for p := 0; p < m.np; p++ {
		for a := 0; a < 3; a++ {
			lx := int(m.wix[p][a])
			if lx < lo || lx >= hi {
				continue
			}
			wxa := m.wwx[p][a]
			for b := 0; b < 3; b++ {
				wab := wxa * m.wwy[p][b]
				base := (lx*m.NY + int(m.wiy[p][b])) * m.NZ
				for c := 0; c < 3; c++ {
					m.Rho[base+int(m.wiz[p][c])] += wab * m.wwz[p][c]
				}
			}
		}
	}
}

// AssignTSC deposits particle masses onto the local density mesh. Particles
// must lie inside this process's domain so all 27 touched cells fall within
// the ghost window.
func (m *LocalMesh) AssignTSC(x, y, z, mass []float64) {
	m.growScratch(len(x))
	m.tx, m.ty, m.tz, m.tm = x, y, z, mass
	m.np = len(x)
	m.tvinv = 1 / (m.H * m.H * m.H)
	m.pool.Run(len(x), m.taskPrep)
	m.pool.Run(m.NX, m.taskDeposit)
	m.tx, m.ty, m.tz, m.tm = nil, nil, nil, nil
}

// DiffForce computes the acceleration meshes from the potential with the
// four-point finite difference on every cell that has two φ neighbours in
// each direction (all cells when the window wraps the whole axis).
func (m *LocalMesh) DiffForce() {
	x0, x1 := 2, m.NX-2
	if m.NX == m.N {
		x0, x1 = 0, m.NX
	}
	m.tx0 = x0
	m.pool.Run(x1-x0, m.taskDiff)
}

// diffTask maps the pool's [lo, hi) onto the clipped x-plane range; planes
// are written by exactly one worker each.
func (m *LocalMesh) diffTask(w, lo, hi int) {
	m.diffForceRange(m.tx0+lo, m.tx0+hi)
}

// diffForceRange computes the force meshes for local x indices [lx0, lx1).
func (m *LocalMesh) diffForceRange(lx0, lx1 int) {
	c := 1 / (12 * m.H)
	y0, y1 := 2, m.NY-2
	z0, z1 := 2, m.NZ-2
	if m.NY == m.N {
		y0, y1 = 0, m.NY
	}
	if m.NZ == m.N {
		z0, z1 = 0, m.NZ
	}
	at := func(lx, ly, lz int) float64 {
		if m.NX == m.N {
			lx = (lx%m.N + m.N) % m.N
		}
		if m.NY == m.N {
			ly = (ly%m.N + m.N) % m.N
		}
		if m.NZ == m.N {
			lz = (lz%m.N + m.N) % m.N
		}
		return m.Phi[m.idx(lx, ly, lz)]
	}
	for lx := lx0; lx < lx1; lx++ {
		for ly := y0; ly < y1; ly++ {
			for lz := z0; lz < z1; lz++ {
				i := m.idx(lx, ly, lz)
				m.Fx[i] = -c * (8*(at(lx+1, ly, lz)-at(lx-1, ly, lz)) - (at(lx+2, ly, lz) - at(lx-2, ly, lz)))
				m.Fy[i] = -c * (8*(at(lx, ly+1, lz)-at(lx, ly-1, lz)) - (at(lx, ly+2, lz) - at(lx, ly-2, lz)))
				m.Fz[i] = -c * (8*(at(lx, ly, lz+1)-at(lx, ly, lz-1)) - (at(lx, ly, lz+2) - at(lx, ly, lz-2)))
			}
		}
	}
}

// InterpolateTSC adds the TSC-interpolated mesh accelerations at the particle
// positions into ax/ay/az. Particles must lie inside the domain.
func (m *LocalMesh) InterpolateTSC(x, y, z []float64, ax, ay, az []float64) {
	m.tx, m.ty, m.tz = x, y, z
	m.tax, m.tay, m.taz = ax, ay, az
	m.pool.Run(len(x), m.taskInterp)
	m.tx, m.ty, m.tz = nil, nil, nil
	m.tax, m.tay, m.taz = nil, nil, nil
}

// interpRange interpolates forces for particles [lo, hi); each particle's
// accumulators are written by exactly one worker.
func (m *LocalMesh) interpRange(w, lo, hi int) {
	for p := lo; p < hi; p++ {
		gx, wx := m.tsc(m.tx[p])
		gy, wy := m.tsc(m.ty[p])
		gz, wz := m.tsc(m.tz[p])
		var fx, fy, fz float64
		for a := 0; a < 3; a++ {
			lx := wrapAxis(gx+a, m.X0, m.NX, m.N)
			for b := 0; b < 3; b++ {
				ly := wrapAxis(gy+b, m.Y0, m.NY, m.N)
				wab := wx[a] * wy[b]
				base := (lx*m.NY + ly) * m.NZ
				for c := 0; c < 3; c++ {
					lz := wrapAxis(gz+c, m.Z0, m.NZ, m.N)
					wc := wab * wz[c]
					fx += wc * m.Fx[base+lz]
					fy += wc * m.Fy[base+lz]
					fz += wc * m.Fz[base+lz]
				}
			}
		}
		m.tax[p] += fx
		m.tay[p] += fy
		m.taz[p] += fz
	}
}

// seg is a wrapped contiguous run of global cells on one axis: global start
// g0 (already wrapped into [0,n)), local start l0, and length n.
type seg struct {
	g0, l0, n int
}

// axisSegs decomposes the window [origin, origin+extent) into at most two
// wrapped segments. (When extent == n the origin is 0 by construction, so
// the general path yields the single full segment.)
func axisSegs(origin, extent, n int) []seg {
	g := ((origin % n) + n) % n
	if g+extent <= n {
		return []seg{{g0: g, l0: 0, n: extent}}
	}
	first := n - g
	return []seg{
		{g0: g, l0: 0, n: first},
		{g0: 0, l0: first, n: extent - first},
	}
}

// InterpolatePot adds the TSC-interpolated long-range potential at the
// particle positions into pot (energy diagnostics).
func (m *LocalMesh) InterpolatePot(x, y, z []float64, pot []float64) {
	m.tx, m.ty, m.tz, m.tpot = x, y, z, pot
	m.pool.Run(len(x), m.taskPot)
	m.tx, m.ty, m.tz, m.tpot = nil, nil, nil, nil
}

// potRange interpolates the potential for particles [lo, hi).
func (m *LocalMesh) potRange(w, lo, hi int) {
	for p := lo; p < hi; p++ {
		gx, wx := m.tsc(m.tx[p])
		gy, wy := m.tsc(m.ty[p])
		gz, wz := m.tsc(m.tz[p])
		var s float64
		for a := 0; a < 3; a++ {
			lx := wrapAxis(gx+a, m.X0, m.NX, m.N)
			for b := 0; b < 3; b++ {
				ly := wrapAxis(gy+b, m.Y0, m.NY, m.N)
				wab := wx[a] * wy[b]
				base := (lx*m.NY + ly) * m.NZ
				for c := 0; c < 3; c++ {
					lz := wrapAxis(gz+c, m.Z0, m.NZ, m.N)
					s += wab * wz[c] * m.Phi[base+lz]
				}
			}
		}
		m.tpot[p] += s
	}
}
