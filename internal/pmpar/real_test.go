package pmpar

import (
	"testing"

	"greem/internal/mpi"
)

func TestRealMatchesComplexNaive(t *testing.T) {
	x, y, z, m, geo, owner := makeSystem(11, 300, 2, 2, 2)
	cfg := Config{N: 16, L: 1, G: 1, Rcut: 3.0 / 16, NFFT: 4}
	rx, ry, rz := runParallelPM(t, cfg, x, y, z, m, geo, owner)
	cfg.ComplexFFT = true
	cx, cy, cz := runParallelPM(t, cfg, x, y, z, m, geo, owner)
	if d := maxRelDiff(rx, cx, ry, cy, rz, cz); d > 1e-12 {
		t.Errorf("naive r2c vs complex: max rel diff %g > 1e-12", d)
	}
}

func TestRealMatchesComplexRelay(t *testing.T) {
	x, y, z, m, geo, owner := makeSystem(12, 300, 2, 2, 2)
	cfg := Config{N: 16, L: 1, G: 1, Rcut: 3.0 / 16, NFFT: 2, Relay: true, Groups: 2}
	rx, ry, rz := runParallelPM(t, cfg, x, y, z, m, geo, owner)
	cfg.ComplexFFT = true
	cx, cy, cz := runParallelPM(t, cfg, x, y, z, m, geo, owner)
	if d := maxRelDiff(rx, cx, ry, cy, rz, cz); d > 1e-12 {
		t.Errorf("relay r2c vs complex: max rel diff %g > 1e-12", d)
	}
}

func TestRealMatchesComplexPencil(t *testing.T) {
	x, y, z, m, geo, owner := makeSystem(13, 300, 2, 2, 2)
	cfg := Config{N: 16, L: 1, G: 1, Rcut: 3.0 / 16, Pencil: true, PY: 4, PZ: 2}
	rx, ry, rz := runParallelPM(t, cfg, x, y, z, m, geo, owner)
	cfg.ComplexFFT = true
	cx, cy, cz := runParallelPM(t, cfg, x, y, z, m, geo, owner)
	if d := maxRelDiff(rx, cx, ry, cy, rz, cz); d > 1e-12 {
		t.Errorf("pencil r2c vs complex: max rel diff %g > 1e-12", d)
	}
}

// TestExchangePackZeroAllocs is the regression test for the per-step
// send-buffer allocations the conversions used to make: after one warm-up
// cycle, packing density and potential must not allocate.
func TestExchangePackZeroAllocs(t *testing.T) {
	x, y, z, m, geo, owner := makeSystem(14, 200, 2, 2, 1)
	cfg := Config{N: 8, L: 1, G: 1, Rcut: 3.0 / 8, NFFT: 4}
	err := mpi.Run(geo.NumDomains(), func(c *mpi.Comm) {
		lo, hi := geo.Bounds(c.Rank())
		s, err := New(c, cfg, lo, hi)
		if err != nil {
			panic(err)
		}
		ids := owner[c.Rank()]
		lx := make([]float64, len(ids))
		ly := make([]float64, len(ids))
		lz := make([]float64, len(ids))
		lm := make([]float64, len(ids))
		for k, id := range ids {
			lx[k], ly[k], lz[k], lm[k] = x[id], y[id], z[id], m[id]
		}
		ax := make([]float64, len(ids))
		ay := make([]float64, len(ids))
		az := make([]float64, len(ids))
		s.Accel(lx, ly, lz, lm, ax, ay, az) // warm up all buffers
		if allocs := testing.AllocsPerRun(10, func() { s.packDensity() }); allocs != 0 {
			t.Errorf("rank %d: packDensity allocates %v times per run", c.Rank(), allocs)
		}
		if allocs := testing.AllocsPerRun(10, func() { s.packPotential() }); allocs != 0 {
			t.Errorf("rank %d: packPotential allocates %v times per run", c.Rank(), allocs)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRealReducesAlltoallBytes: at the full solver level the r2c path must
// move fewer all-to-all bytes than the complex path (the FFT transposes
// halve; the window conversions are unchanged).
func TestRealReducesAlltoallBytes(t *testing.T) {
	x, y, z, m, geo, owner := makeSystem(15, 300, 2, 2, 2)
	bytesFor := func(complexFFT bool) int64 {
		cfg := Config{N: 16, L: 1, G: 1, Rcut: 3.0 / 16, NFFT: 8, ComplexFFT: complexFFT}
		var total int64
		err := mpi.Run(geo.NumDomains(), func(c *mpi.Comm) {
			lo, hi := geo.Bounds(c.Rank())
			s, err := New(c, cfg, lo, hi)
			if err != nil {
				panic(err)
			}
			ids := owner[c.Rank()]
			lx := make([]float64, len(ids))
			ly := make([]float64, len(ids))
			lz := make([]float64, len(ids))
			lm := make([]float64, len(ids))
			for k, id := range ids {
				lx[k], ly[k], lz[k], lm[k] = x[id], y[id], z[id], m[id]
			}
			ax := make([]float64, len(ids))
			ay := make([]float64, len(ids))
			az := make([]float64, len(ids))
			c.Traffic().Reset()
			s.Accel(lx, ly, lz, lm, ax, ay, az)
			c.Barrier()
			if c.Rank() == 0 {
				total = c.Traffic().TotalsByOp()["Alltoallv"].Bytes
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	full := bytesFor(true)
	half := bytesFor(false)
	if half >= full {
		t.Errorf("r2c Accel moved %d all-to-all bytes, complex %d — expected a reduction", half, full)
	}
	// The window conversions (unchanged between paths, and ghost-inflated at
	// this toy size) dominate the total, so only a modest end-to-end saving
	// shows here; the exact (n/2+1)/n transpose ratio is asserted in
	// pfft.TestRealTransposeBytesHalved. Still require a real dent, not a
	// rounding error.
	if float64(half) > 0.9*float64(full) {
		t.Errorf("r2c saved only %d of %d all-to-all bytes", full-half, full)
	}
}
