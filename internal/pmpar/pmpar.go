package pmpar

import (
	"fmt"
	"time"

	"greem/internal/mesh"
	"greem/internal/mpi"
	"greem/internal/par"
	"greem/internal/pfft"
	"greem/internal/telemetry"
	"greem/internal/vec"
)

// Config parameterizes the parallel PM solver.
type Config struct {
	N          int     // global PM mesh size per dimension (power of two)
	L, G, Rcut float64 // box side, gravitational constant, split radius
	// NFFT is the number of FFT (slab-holding) processes; it must satisfy
	// 1 ≤ NFFT ≤ min(N, p) — the 1-D slab decomposition limit of §II-B.
	NFFT int
	// Relay selects the relay mesh method with the given number of Groups
	// (each group must have at least NFFT members); otherwise the naive
	// global-Alltoallv conversion is used.
	Relay  bool
	Groups int
	// Interleaved assigns ranks to groups round-robin instead of in
	// contiguous blocks; each group then samples the whole volume, which
	// spreads the per-holder incast across groups (see perfmodel.ConvSpec).
	Interleaved bool
	// NoDeconvolve disables TSC window deconvolution (ablation).
	NoDeconvolve bool
	// ComplexFFT keeps the Poisson solve on the full complex-to-complex
	// transform instead of the default real-to-complex half-spectrum path —
	// the reference/ablation configuration with twice the FFT arithmetic and
	// all-to-all transpose volume.
	ComplexFFT bool
	// Pencil replaces the 1-D slab FFT with the 2-D pencil decomposition of
	// §IV (future work): the FFT runs on PY×PZ processes (NFFT = PY·PZ),
	// lifting the NFFT ≤ N_PM slab limit to N_PM². The relay mesh method
	// composes with it unchanged ("this novel technique should be also
	// applicable", §II-B).
	Pencil bool
	PY, PZ int
	// Workers threads every PM hot loop — assignment, FFT lines, transpose
	// pack/unpack, convolution, differencing, interpolation — through an
	// intra-rank worker pool (the OpenMP half of the hybrid). The knob
	// resolves through par.Resolve (0 ⇒ serial, par.Auto ⇒ GOMAXPROCS per
	// rank); ignored when Pool is set. Results are bit-identical to serial
	// for any worker count.
	Workers int
	// Pool is an injected shared worker pool (the sim driver owns one per
	// rank and passes it here so PM, tree, and integrator loops share the
	// same workers). nil ⇒ the solver creates its own from Workers and
	// Close releases it.
	Pool *par.Pool
	// Recorder receives the per-phase spans (pm/density, pm/comm, pm/fft,
	// pm/mesh_force, pm/interp). nil creates a private recorder, so Times
	// stays populated either way; the sim driver injects its own so PM
	// phases land on the same per-rank timeline as PP and DD.
	Recorder *telemetry.Recorder
}

// Timings accumulates per-phase wall-clock, matching the PM rows of Table I:
// density assignment, communication (both mesh conversions), FFT,
// acceleration on mesh, and force interpolation.
type Timings struct {
	Density   time.Duration
	Comm      time.Duration
	FFT       time.Duration
	MeshForce time.Duration
	Interp    time.Duration
}

// Add accumulates o into t.
func (t *Timings) Add(o Timings) {
	t.Density += o.Density
	t.Comm += o.Comm
	t.FFT += o.FFT
	t.MeshForce += o.MeshForce
	t.Interp += o.Interp
}

// Total returns the summed phase time.
func (t Timings) Total() time.Duration {
	return t.Density + t.Comm + t.FFT + t.MeshForce + t.Interp
}

type boxDesc [6]int32 // X0, NX, Y0, NY, Z0, NZ

// Solver is one rank's handle on the distributed PM computation.
type Solver struct {
	comm *mpi.Comm
	cfg  Config
	lm   *LocalMesh
	lay  pfft.Layout

	myBox boxDesc
	// convComm is the communicator on which mesh conversions run (world for
	// naive, COMM_SMALLA2A for relay); convBoxes are its members' windows.
	convComm  *mpi.Comm
	convBoxes []boxDesc

	// relay only
	commReduce *mpi.Comm
	group      int

	isHolder bool // holds (partial) slab q = convComm rank
	slab     []float64

	isFFT   bool
	commFFT *mpi.Comm
	plan    *pfft.Plan
	pencil  *pfft.PencilPlan

	// green is the cached Green's multiplier table (nil → direct KGreenW,
	// e.g. N == 1); spec is the persistent half-spectrum slab of the r2c
	// path, cwork the lazily allocated full complex slab of the reference
	// path.
	green *mesh.GreenTab
	spec  []complex128
	cwork []complex128

	// Cached exchange geometry and buffers: the block lists depend only on
	// the domain decomposition, so both sides precompute them in New, and
	// the pack buffers are reused every step (no steady-state allocation in
	// the conversions).
	sendBlocks [][]blk     // per destination holder q < NFFT
	recvBlocks [][]blk     // holder only: per source rank of convComm
	sendF      [][]float64 // per-destination pack buffers, reused

	// rec receives the per-phase spans; never nil after New.
	rec *telemetry.Recorder

	// pool drives the intra-rank hot loops; ownPool marks a pool created
	// (and therefore closed) by this solver rather than injected.
	pool    *par.Pool
	ownPool bool

	// Per-phase busy/idle counters for the pool (interned once; recording is
	// allocation-free). Indexed by the poolPhase* constants.
	poolBusy [nPoolPhases]*telemetry.Counter
	poolIdle [nPoolPhases]*telemetry.Counter

	taskConv, taskConvC func(w, lo, hi int)

	// pending is the in-flight background solve between AccelStart and
	// AccelWait; nil otherwise.
	pending *pendingSolve

	// specTap is the armed one-shot spectrum visitor (ArmSpectrumTap);
	// tapSeconds the wall-clock its last visitation took. Both are touched
	// only by the solve flow (solveStage and its callers), so the overlap
	// mode's background goroutine is synchronized by the pendingSolve join.
	specTap    SpecVisitor
	tapSeconds float64

	// Times accumulates phase timings across Accel calls.
	Times Timings
}

// Pool-phase indices for the busy/idle counter pairs.
const (
	poolPhaseDensity = iota
	poolPhaseFFT
	poolPhaseMeshForce
	poolPhaseInterp
	nPoolPhases
)

// groupOf returns the group of world rank w among g groups over p ranks:
// contiguous balanced blocks, or round-robin when interleaved.
func groupOf(w, p, g int, interleaved bool) int {
	if interleaved {
		return w % g
	}
	return w * g / p
}

// New creates the per-rank solver. lo/hi is this rank's domain. Collective
// over c.
func New(c *mpi.Comm, cfg Config, lo, hi vec.V3) (*Solver, error) {
	p := c.Size()
	if cfg.Pencil {
		if cfg.PY < 1 || cfg.PZ < 1 || cfg.PY > cfg.N || cfg.PZ > cfg.N {
			return nil, fmt.Errorf("pmpar: pencil grid %d×%d invalid for N=%d", cfg.PY, cfg.PZ, cfg.N)
		}
		cfg.NFFT = cfg.PY * cfg.PZ
	}
	if cfg.NFFT < 1 || cfg.NFFT > p || (!cfg.Pencil && cfg.NFFT > cfg.N) {
		return nil, fmt.Errorf("pmpar: NFFT=%d invalid for p=%d, N=%d", cfg.NFFT, p, cfg.N)
	}
	if cfg.Relay {
		if cfg.Groups < 1 || cfg.Groups > p {
			return nil, fmt.Errorf("pmpar: bad group count %d", cfg.Groups)
		}
		// Balanced contiguous partition: smallest group size is ⌊p/G⌋.
		if p/cfg.Groups < cfg.NFFT {
			return nil, fmt.Errorf("pmpar: groups of ~%d ranks cannot hold %d slabs", p/cfg.Groups, cfg.NFFT)
		}
	}
	lm, err := NewLocalMesh(cfg.N, cfg.L, lo, hi)
	if err != nil {
		return nil, err
	}
	s := &Solver{comm: c, cfg: cfg, lm: lm, lay: pfft.Layout{N: cfg.N, P: cfg.NFFT}, rec: cfg.Recorder}
	if s.rec == nil {
		s.rec = telemetry.NewRecorder(c.Rank(), nil)
	}
	s.myBox = boxDesc{int32(lm.X0), int32(lm.NX), int32(lm.Y0), int32(lm.NY), int32(lm.Z0), int32(lm.NZ)}

	if cfg.Relay {
		s.group = groupOf(c.Rank(), p, cfg.Groups, cfg.Interleaved)
		small := c.Split(s.group, c.Rank())
		s.convComm = small
		s.commReduce = c.Split(small.Rank(), s.group)
		s.isHolder = small.Rank() < cfg.NFFT
		s.isFFT = s.group == 0 && s.isHolder
	} else {
		s.convComm = c
		s.isHolder = c.Rank() < cfg.NFFT
		s.isFFT = s.isHolder
	}
	// COMM_FFT: the paper creates it with MPI_Comm_split so that only the
	// FFT processes participate in the transform.
	fftColor := 1
	if s.isFFT {
		fftColor = 0
	}
	fc := c.Split(fftColor, c.Rank())
	if s.isFFT {
		s.commFFT = fc
		if cfg.Pencil {
			plan, err := pfft.NewPencilPlan(fc, cfg.N, cfg.PY, cfg.PZ)
			if err != nil {
				return nil, err
			}
			s.pencil = plan
		} else {
			plan, err := pfft.NewPlan(fc, cfg.N)
			if err != nil {
				return nil, err
			}
			s.plan = plan
		}
	}
	if s.isHolder {
		r := s.holderRegion(s.convComm.Rank())
		s.slab = make([]float64, r.size())
	}
	// Exchange local-window descriptors once (they change only when the
	// domain decomposition changes, i.e. when New is called again).
	gathered := mpi.Allgather(s.convComm, s.myBox[:])
	s.convBoxes = make([]boxDesc, len(gathered))
	for i, g := range gathered {
		copy(s.convBoxes[i][:], g)
	}
	// Precompute the exchange block lists (deterministic on both sides) and
	// the pack buffers they fill.
	s.sendBlocks = make([][]blk, cfg.NFFT)
	for q := 0; q < cfg.NFFT; q++ {
		s.sendBlocks[q] = blocksFor(s.myBox, s.holderRegion(q), cfg.N)
	}
	if s.isHolder {
		r := s.holderRegion(s.convComm.Rank())
		s.recvBlocks = make([][]blk, s.convComm.Size())
		for src := 0; src < s.convComm.Size(); src++ {
			s.recvBlocks[src] = blocksFor(s.convBoxes[src], r, cfg.N)
		}
	}
	s.sendF = make([][]float64, s.convComm.Size())
	s.green = mesh.GreenTable(cfg.N, cfg.L, cfg.G, cfg.Rcut, !cfg.NoDeconvolve, 3)
	if s.isFFT && !cfg.Pencil && !cfg.ComplexFFT {
		s.spec = make([]complex128, s.plan.LocalSpecSize())
	}
	// Intra-rank worker pool: injected (shared with tree and integrator
	// loops) or owned. Every hot loop below — local mesh, slab/pencil FFT,
	// convolution — batches over it with deterministic decompositions.
	s.pool = cfg.Pool
	if s.pool == nil {
		s.pool = par.New(par.Resolve(cfg.Workers, 1))
		s.ownPool = s.pool != nil
	}
	s.lm.SetPool(s.pool)
	if s.pool != nil {
		if s.plan != nil {
			s.plan.SetPool(s.pool)
		}
		if s.pencil != nil {
			s.pencil.SetPool(s.pool)
		}
	}
	s.taskConv = s.convRows
	s.taskConvC = s.convRowsComplex
	for i, name := range [nPoolPhases]string{
		telemetry.PhasePMDensity, telemetry.PhasePMFFT,
		telemetry.PhasePMMeshForce, telemetry.PhasePMInterp,
	} {
		s.poolBusy[i] = s.rec.Registry().SecondsCounter(telemetry.MetricPoolBusySeconds, telemetry.L("phase", name))
		s.poolIdle[i] = s.rec.Registry().SecondsCounter(telemetry.MetricPoolIdleSeconds, telemetry.L("phase", name))
	}
	return s, nil
}

// Close releases the solver's worker pool when it owns one (injected pools
// belong to the caller).
func (s *Solver) Close() {
	if s.ownPool {
		s.pool.Close()
		s.pool = nil
		s.ownPool = false
	}
}

// notePool attributes the pool time accumulated since the last call to the
// given pool phase's busy/idle counters.
func (s *Solver) notePool(phase int) {
	busy, idle := s.pool.TakeBusy()
	if busy == 0 && idle == 0 {
		return
	}
	s.poolBusy[phase].Add(busy.Seconds())
	s.poolIdle[phase].Add(idle.Seconds())
}

// greenAt returns the Green's multiplier for a full-range mode, from the
// cached table when one exists.
func (s *Solver) greenAt(jx, jy, jz int) float64 {
	if s.green != nil {
		return s.green.AtFull(jx, jy, jz)
	}
	return mesh.KGreenW(jx, jy, jz, s.cfg.N, s.cfg.L, s.cfg.G, s.cfg.Rcut, !s.cfg.NoDeconvolve, 3)
}

// growF resizes buf to n elements, reusing its backing array when possible.
func growF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// LocalMesh exposes the rank's mesh window (diagnostics and tests).
func (s *Solver) LocalMesh() *LocalMesh { return s.lm }

// IsFFTProcess reports whether this rank performs the FFT.
func (s *Solver) IsFFTProcess() bool { return s.isFFT }

// region is the rectangular set of global cells owned by one (partial-)mesh
// holder: x∈[x0,x1), y∈[y0,y1), z∈[z0,z1), stored row-major in that order.
// For 1-D slabs it is a full (y,z) cross-section of some x-planes; for 2-D
// pencils it is a (y,z) rectangle through every x-plane.
type region struct {
	x0, x1, y0, y1, z0, z1 int
}

func (r region) size() int { return (r.x1 - r.x0) * (r.y1 - r.y0) * (r.z1 - r.z0) }

// holderRegion returns the cells held by convComm rank q.
func (s *Solver) holderRegion(q int) region {
	n := s.cfg.N
	if s.cfg.Pencil {
		a, b := q/s.cfg.PZ, q%s.cfg.PZ
		layY := pfft.Layout{N: n, P: s.cfg.PY}
		layZ := pfft.Layout{N: n, P: s.cfg.PZ}
		return region{
			x0: 0, x1: n,
			y0: layY.Offset(a), y1: layY.Offset(a) + layY.Count(a),
			z0: layZ.Offset(b), z1: layZ.Offset(b) + layZ.Count(b),
		}
	}
	return region{
		x0: s.lay.Offset(q), x1: s.lay.Offset(q) + s.lay.Count(q),
		y0: 0, y1: n, z0: 0, z1: n,
	}
}

// blk is one rectangular exchange block between a local window and a
// holder's region: local x-plane lx (global plane gx) restricted to wrapped
// y/z segments clipped to the region.
type blk struct {
	lx, gx int
	ys, zs seg
}

// clipSeg intersects a wrapped segment with the global range [lo, hi),
// returning ok = false when empty.
func clipSeg(sg seg, lo, hi int) (seg, bool) {
	g0 := sg.g0
	g1 := sg.g0 + sg.n
	if g0 < lo {
		g0 = lo
	}
	if g1 > hi {
		g1 = hi
	}
	if g1 <= g0 {
		return seg{}, false
	}
	return seg{g0: g0, l0: sg.l0 + (g0 - sg.g0), n: g1 - g0}, true
}

// blocksFor enumerates, in deterministic order, the blocks of window b that
// land on the holder region r. Both the sender and the receiver compute this
// list, so the data stream needs no headers.
func blocksFor(b boxDesc, r region, n int) []blk {
	var out []blk
	ysegs := axisSegs(int(b[2]), int(b[3]), n)
	zsegs := axisSegs(int(b[4]), int(b[5]), n)
	for lx := 0; lx < int(b[1]); lx++ {
		gx := ((int(b[0])+lx)%n + n) % n
		if gx < r.x0 || gx >= r.x1 {
			continue
		}
		for _, ys0 := range ysegs {
			ys, ok := clipSeg(ys0, r.y0, r.y1)
			if !ok {
				continue
			}
			for _, zs0 := range zsegs {
				zs, ok := clipSeg(zs0, r.z0, r.z1)
				if !ok {
					continue
				}
				out = append(out, blk{lx: lx, gx: gx, ys: ys, zs: zs})
			}
		}
	}
	return out
}

func blocksLen(bs []blk) int {
	n := 0
	for _, b := range bs {
		n += b.ys.n * b.zs.n
	}
	return n
}

// packDensity fills the reused per-destination send buffers from the local
// density window using the precomputed block lists. Allocation-free in
// steady state (buffers keep their high-water capacity).
func (s *Solver) packDensity() {
	for q := range s.sendF {
		if q >= s.cfg.NFFT || len(s.sendBlocks[q]) == 0 {
			s.sendF[q] = nil
			continue
		}
		bs := s.sendBlocks[q]
		buf := growF(s.sendF[q], blocksLen(bs))[:0]
		for _, b := range bs {
			for iy := 0; iy < b.ys.n; iy++ {
				ly := b.ys.l0 + iy
				base := (b.lx*s.lm.NY + ly) * s.lm.NZ
				buf = append(buf, s.lm.Rho[base+b.zs.l0:base+b.zs.l0+b.zs.n]...)
			}
		}
		s.sendF[q] = buf
	}
}

// unpackDensity accumulates received window pieces into this holder's slab.
func (s *Solver) unpackDensity(recv [][]float64) {
	for i := range s.slab {
		s.slab[i] = 0
	}
	r := s.holderRegion(s.convComm.Rank())
	ny := r.y1 - r.y0
	nz := r.z1 - r.z0
	for src := range recv {
		data := recv[src]
		if len(data) == 0 {
			continue
		}
		t := 0
		for _, b := range s.recvBlocks[src] {
			for iy := 0; iy < b.ys.n; iy++ {
				gy := b.ys.g0 + iy
				base := ((b.gx-r.x0)*ny+(gy-r.y0))*nz + (b.zs.g0 - r.z0)
				for iz := 0; iz < b.zs.n; iz++ {
					s.slab[base+iz] += data[t]
					t++
				}
			}
		}
	}
}

// densityToSlabs converts the 3-D distributed local density meshes into the
// holders' regions — 1-D slabs or 2-D pencils — on convComm (steps 1–2 of
// the straightforward method; step 1 of the relay method).
func (s *Solver) densityToSlabs() {
	s.packDensity()
	recv := mpi.Alltoall(s.convComm, s.sendF)
	if s.isHolder {
		s.unpackDensity(recv)
	}
}

// potentialToLocal converts the holders' potential regions back to each
// rank's local window (steps 4–5 of the straightforward method; step 5 of
// relay).
func (s *Solver) potentialToLocal() {
	s.packPotential()
	recv := mpi.Alltoall(s.convComm, s.sendF)
	s.unpackPotential(recv)
}

// packPotential fills the reused send buffers with each destination's piece
// of this holder's potential slab (no-op buffers on non-holders).
func (s *Solver) packPotential() {
	if !s.isHolder {
		for i := range s.sendF {
			s.sendF[i] = nil
		}
		return
	}
	r := s.holderRegion(s.convComm.Rank())
	ny := r.y1 - r.y0
	nz := r.z1 - r.z0
	for dst := range s.sendF {
		bs := s.recvBlocks[dst]
		if len(bs) == 0 {
			s.sendF[dst] = nil
			continue
		}
		buf := growF(s.sendF[dst], blocksLen(bs))[:0]
		for _, b := range bs {
			for iy := 0; iy < b.ys.n; iy++ {
				gy := b.ys.g0 + iy
				base := ((b.gx-r.x0)*ny+(gy-r.y0))*nz + (b.zs.g0 - r.z0)
				buf = append(buf, s.slab[base:base+b.zs.n]...)
			}
		}
		s.sendF[dst] = buf
	}
}

// unpackPotential copies received potential pieces into the local window.
func (s *Solver) unpackPotential(recv [][]float64) {
	for q := 0; q < s.cfg.NFFT; q++ {
		data := recv[q]
		if len(data) == 0 {
			continue
		}
		t := 0
		for _, b := range s.sendBlocks[q] {
			for iy := 0; iy < b.ys.n; iy++ {
				ly := b.ys.l0 + iy
				base := (b.lx*s.lm.NY + ly) * s.lm.NZ
				copy(s.lm.Phi[base+b.zs.l0:base+b.zs.l0+b.zs.n], data[t:t+b.zs.n])
				t += b.zs.n
			}
		}
	}
}

// SpecVisitor observes one stored mode of the transformed density spectrum
// ρ̂ before the Green's convolution touches it. jx, jy, jz are full-range
// mode indices in [0, N); w is the Hermitian multiplicity of the stored mode
// (2 when a compressed-axis entry stands in for its conjugate as well, 1
// otherwise), so Σ w over all visits across the FFT ranks is exactly N³ —
// every mode of the full cube counted once.
type SpecVisitor func(jx, jy, jz, w int, re, im float64)

// ArmSpectrumTap arms a one-shot visitor over the density spectrum of the
// next solve: each FFT rank visits every stored mode of its spectrum portion
// between the forward transform and the convolution (zero extra transforms,
// zero extra communication). The tap is consumed by the solve on every rank
// — arm it collectively before each solve that should observe the spectrum.
// In-situ P(k) rides on this (see internal/sim and analysis.PkBinner). Must
// not be called while a background solve is pending.
func (s *Solver) ArmSpectrumTap(v SpecVisitor) {
	if s.pending != nil {
		panic("pmpar: ArmSpectrumTap while a solve is pending")
	}
	s.specTap = v
}

// TakeTapSeconds returns the wall-clock the last armed spectrum visitation
// took on this rank and resets it. Valid after the solve completed (after
// Accel or AccelWait).
func (s *Solver) TakeTapSeconds() float64 {
	d := s.tapSeconds
	s.tapSeconds = 0
	return d
}

// visitSpec dispatches the armed tap over this rank's stored spectrum with
// the layout-appropriate index mapping and Hermitian multiplicities.
func (s *Solver) visitSpec(spec []complex128, pencil, halfZ bool) {
	t0 := time.Now()
	n := s.cfg.N
	v := s.specTap
	if pencil {
		var xc, xo, yc2, yo2 int
		if halfZ {
			// Real pencil path: x is the compressed axis (kx ∈ [0, n/2]).
			xc, xo, yc2, yo2 = s.pencil.SpecDims()
		} else {
			xc, xo, yc2, yo2 = s.pencil.OutDims()
		}
		for ix := 0; ix < xc; ix++ {
			jx := xo + ix
			w := 1
			if halfZ && jx != 0 && jx != n/2 {
				w = 2
			}
			for iy := 0; iy < yc2; iy++ {
				jy := yo2 + iy
				base := (ix*yc2 + iy) * n
				for jz := 0; jz < n; jz++ {
					d := spec[base+jz]
					v(jx, jy, jz, w, real(d), imag(d))
				}
			}
		}
	} else {
		nh := n
		if halfZ {
			nh = s.plan.NZSpec() // n/2 + 1: z is the compressed axis
		}
		off := s.plan.LocalOffset()
		for lx := 0; lx < s.plan.LocalCount(); lx++ {
			jx := off + lx
			for jy := 0; jy < n; jy++ {
				base := (lx*n + jy) * nh
				for jz := 0; jz < nh; jz++ {
					w := 1
					if halfZ && jz != 0 && jz != n/2 {
						w = 2
					}
					d := spec[base+jz]
					v(jx, jy, jz, w, real(d), imag(d))
				}
			}
		}
	}
	s.tapSeconds += time.Since(t0).Seconds()
}

// fftAndGreen runs the parallel FFT and the Green's-function convolution on
// the FFT processes, turning the density region into the potential region.
//
// The default path is real-to-complex: the slab density transforms into its
// Hermitian half-spectrum (n/2+1 z modes), the real, even Green's multiplier
// scales it in place on the persistent spec buffer — conjugate symmetry at
// the jz = 0 and jz = n/2 planes survives because the multiplier is real —
// and c2r brings the potential back. Both transposes inside the plan carry
// roughly half the complex path's bytes.
func (s *Solver) fftAndGreen() {
	if s.cfg.Pencil {
		s.fftAndGreenPencil()
		return
	}
	if s.cfg.ComplexFFT {
		s.fftAndGreenComplex()
		return
	}
	s.plan.ForwardReal(s.slab, s.spec)
	if s.specTap != nil {
		s.visitSpec(s.spec, false, true)
	}
	s.pool.Run(s.plan.LocalCount(), s.taskConv)
	s.plan.InverseReal(s.spec, s.slab)
}

// convRows multiplies half-spectrum planes lx ∈ [lo, hi) of this rank's slab
// by the Green's multiplier; planes are disjoint, so the parallel
// convolution is bit-identical to serial.
func (s *Solver) convRows(w, lo, hi int) {
	n := s.cfg.N
	nh := s.plan.NZSpec()
	off := s.plan.LocalOffset()
	for lx := lo; lx < hi; lx++ {
		jx := off + lx
		for jy := 0; jy < n; jy++ {
			base := (lx*n + jy) * nh
			if s.green != nil {
				row := s.green.Row(jx, jy)
				for jz := 0; jz < nh; jz++ {
					s.spec[base+jz] *= complex(row[jz], 0)
				}
			} else {
				for jz := 0; jz < nh; jz++ {
					s.spec[base+jz] *= complex(s.greenAt(jx, jy, jz), 0)
				}
			}
		}
	}
}

// convRowsComplex is the full-spectrum counterpart for the complex path.
func (s *Solver) convRowsComplex(w, lo, hi int) {
	n := s.cfg.N
	off := s.plan.LocalOffset()
	for lx := lo; lx < hi; lx++ {
		jx := off + lx
		for jy := 0; jy < n; jy++ {
			base := (lx*n + jy) * n
			for jz := 0; jz < n; jz++ {
				s.cwork[base+jz] *= complex(s.greenAt(jx, jy, jz), 0)
			}
		}
	}
}

// fftAndGreenComplex is the full complex-to-complex reference path
// (Config.ComplexFFT), kept for parity tests and before/after benchmarks.
func (s *Solver) fftAndGreenComplex() {
	if s.cwork == nil {
		s.cwork = make([]complex128, len(s.slab))
	}
	work := s.cwork
	for i, v := range s.slab {
		work[i] = complex(v, 0)
	}
	s.plan.Forward(work)
	if s.specTap != nil {
		s.visitSpec(work, false, false)
	}
	s.pool.Run(s.plan.LocalCount(), s.taskConvC)
	s.plan.Inverse(work)
	for i := range s.slab {
		s.slab[i] = real(work[i])
	}
}

// fftAndGreenPencil is fftAndGreen with the 2-D pencil plan: forward to the
// C layout, convolve there (where z is complete), and come back to A. On the
// default real path the compressed axis is x (the one transformed before any
// communication), so the convolution runs over kx ∈ [0, n/2] and full ky/kz.
func (s *Solver) fftAndGreenPencil() {
	n := s.cfg.N
	if s.cfg.ComplexFFT {
		in := make([]complex128, len(s.slab))
		for i, v := range s.slab {
			in[i] = complex(v, 0)
		}
		out := s.pencil.Forward(in)
		if s.specTap != nil {
			s.visitSpec(out, true, false)
		}
		xc, xo, yc2, yo2 := s.pencil.OutDims()
		s.pool.Run(xc, func(w, lo, hi int) {
			for ix := lo; ix < hi; ix++ {
				for iy := 0; iy < yc2; iy++ {
					base := (ix*yc2 + iy) * n
					for jz := 0; jz < n; jz++ {
						out[base+jz] *= complex(s.greenAt(xo+ix, yo2+iy, jz), 0)
					}
				}
			}
		})
		back := s.pencil.Inverse(out)
		for i := range s.slab {
			s.slab[i] = real(back[i])
		}
		return
	}
	spec := s.pencil.ForwardReal(s.slab)
	if s.specTap != nil {
		s.visitSpec(spec, true, true)
	}
	xc, xo, yc2, yo2 := s.pencil.SpecDims()
	s.pool.Run(xc, func(w, lo, hi int) {
		for ix := lo; ix < hi; ix++ {
			for iy := 0; iy < yc2; iy++ {
				base := (ix*yc2 + iy) * n
				for jz := 0; jz < n; jz++ {
					// xo+ix ≤ n/2, a valid full-range index; greenAt folds jz.
					spec[base+jz] *= complex(s.greenAt(xo+ix, yo2+iy, jz), 0)
				}
			}
		}
	})
	back := s.pencil.InverseReal(spec)
	copy(s.slab, back)
}

// assignDensity is stage 1 of the PM cycle: clear the local window and
// TSC-assign the particles onto it. Runs on the caller's goroutine (it owns
// the recorder and the pool accounting).
func (s *Solver) assignDensity(x, y, z, m []float64) {
	sp := s.rec.Start(telemetry.PhasePMDensity)
	s.lm.Clear()
	s.lm.AssignTSC(x, y, z, m)
	s.Times.Density += sp.End()
	s.notePool(poolPhaseDensity)
}

// solveStage is stage 2: mesh-to-slab conversion, the parallel FFT + Green's
// convolution, and the potential return conversion. It is the part the async
// API runs on a background goroutine, so it must not touch the recorder or
// the pool counters (both are rank-local and not thread-safe) — it returns
// the raw comm and FFT durations for the owner to attribute at the join
// (attributeSolve). It does drive the worker pool (FFT lines, convolution):
// during the overlap window the background solve is the pool's sole user.
func (s *Solver) solveStage() (comm, fft time.Duration) {
	// Conversion to slabs.
	t0 := time.Now()
	s.densityToSlabs()
	if s.cfg.Relay && s.isHolder {
		// Sum partial slabs across groups onto the root group.
		sum := mpi.Reduce(s.commReduce, 0, s.slab, mpi.Sum[float64])
		if s.commReduce.Rank() == 0 {
			copy(s.slab, sum)
		}
	}
	comm = time.Since(t0)

	// FFT + Green's function on the FFT processes; others wait (paper step 3).
	t0 = time.Now()
	if s.isFFT {
		s.fftAndGreen()
	}
	fft = time.Since(t0)

	t0 = time.Now()
	if s.cfg.Relay && s.isHolder {
		// Broadcast complete potential slabs back to every group (into the
		// persistent slab, not a fresh allocation).
		copy(s.slab, mpi.Bcast(s.commReduce, 0, s.slab))
	}
	s.potentialToLocal()
	comm += time.Since(t0)
	// The tap is one-shot: consumed by this solve on every rank (FFT ranks
	// visited it above; the others simply drop it).
	s.specTap = nil
	return comm, fft
}

// attributeSolve books solveStage's durations into the recorder's phase
// counters/histograms (no trace events — the spans didn't run on the
// recorder's timeline), the Times ledger, and the FFT pool-phase counters.
// Must run on the owner goroutine.
func (s *Solver) attributeSolve(comm, fft time.Duration) {
	s.rec.AddPhase(telemetry.PhasePMComm, comm)
	s.rec.AddPhase(telemetry.PhasePMFFT, fft)
	s.Times.Comm += comm
	s.Times.FFT += fft
	s.notePool(poolPhaseFFT)
}

// finishForces is stage 3: differentiate the potential window and interpolate
// accelerations back onto the particles. Owner goroutine only.
func (s *Solver) finishForces(x, y, z, ax, ay, az []float64) {
	sp := s.rec.Start(telemetry.PhasePMMeshForce)
	s.lm.DiffForce()
	s.Times.MeshForce += sp.End()
	s.notePool(poolPhaseMeshForce)

	sp = s.rec.Start(telemetry.PhasePMInterp)
	s.lm.InterpolateTSC(x, y, z, ax, ay, az)
	s.Times.Interp += sp.End()
	s.notePool(poolPhaseInterp)
}

// Accel runs one full parallel PM cycle for this rank's particles (which
// must lie inside its domain), accumulating long-range accelerations into
// ax/ay/az (indexed like x/y/z). Collective over the world communicator.
// Identical to AccelStart immediately followed by AccelWait — both modes run
// the same stage functions in the same order, which is why the overlapped
// step pipeline is bit-identical to the sequential one.
func (s *Solver) Accel(x, y, z, m []float64, ax, ay, az []float64) {
	s.assignDensity(x, y, z, m)
	comm, fft := s.solveStage()
	s.attributeSolve(comm, fft)
	s.finishForces(x, y, z, ax, ay, az)
}

// pendingSolve tracks one in-flight background solve.
type pendingSolve struct {
	done      chan struct{}
	comm, fft time.Duration
	solve     time.Duration // wall-clock of the whole background stage
	panicked  any           // recovered panic, re-raised at the join
}

// AsyncStats reports how an overlapped PM solve went: Solve is the background
// stage's wall-clock, Wait how long AccelWait blocked on it. Solve − Wait is
// the PM time the caller's concurrent work actually hid.
type AsyncStats struct {
	Solve time.Duration
	Wait  time.Duration
}

// AccelStart begins an overlapped PM cycle: density assignment runs
// synchronously (it reads the particle arrays, which the caller is free to
// keep using afterwards — the solve stage only touches mesh state), then the
// comm+FFT solve stage launches on a dedicated goroutine. The caller must not
// drive this solver's worker pool or issue collectives on this solver's
// communicator until AccelWait; construct the solver over a duplicated
// communicator (mpi.Comm.Dup) so concurrent traffic elsewhere (ghost/LET
// exchange on the world comm) stays on its own sequence space. Collective:
// every rank must pair AccelStart with AccelWait in the same order.
func (s *Solver) AccelStart(x, y, z, m []float64) {
	if s.pending != nil {
		panic("pmpar: AccelStart while a solve is already pending")
	}
	s.assignDensity(x, y, z, m)
	ps := &pendingSolve{done: make(chan struct{})}
	s.pending = ps
	go func() {
		defer close(ps.done)
		defer func() { ps.panicked = recover() }()
		t0 := time.Now()
		ps.comm, ps.fft = s.solveStage()
		ps.solve = time.Since(t0)
	}()
}

// AccelWait joins the background solve started by AccelStart, attributes its
// phase timings, and runs the force finish (differencing + interpolation)
// into ax/ay/az. A panic in the background stage — including an mpi abort
// waking a blocked collective — is re-raised here on the owner goroutine so
// the rank's abort handling sees it.
func (s *Solver) AccelWait(x, y, z, ax, ay, az []float64) AsyncStats {
	ps := s.pending
	if ps == nil {
		panic("pmpar: AccelWait without a pending AccelStart")
	}
	t0 := time.Now()
	<-ps.done
	wait := time.Since(t0)
	s.pending = nil
	if ps.panicked != nil {
		panic(ps.panicked)
	}
	s.attributeSolve(ps.comm, ps.fft)
	s.finishForces(x, y, z, ax, ay, az)
	return AsyncStats{Solve: ps.solve, Wait: wait}
}
