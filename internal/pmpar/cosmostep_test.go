// External test package: the in-package tests cannot import internal/ic
// (ic → sim → pmpar would be a cycle), but a clustered Zel'dovich
// realization is exactly the density contrast the r2c/complex parity claim
// must hold under, so this lives in pmpar_test instead.
package pmpar_test

import (
	"math"
	"testing"

	"greem/internal/cosmo"
	"greem/internal/domain"
	"greem/internal/ic"
	"greem/internal/mpi"
	"greem/internal/pmpar"
	"greem/internal/vec"
)

// TestRealMatchesComplexCosmologicalStep checks that the default r2c solve
// reproduces the complex reference path's accelerations to ≤1e-12 relative
// on a small cosmological step: a Zel'dovich-displaced 8³ lattice pushed
// through the relay solver on 8 ranks.
func TestRealMatchesComplexCosmologicalStep(t *testing.T) {
	parts, err := ic.Generate(ic.Config{
		NP: 8, NGrid: 16, L: 1,
		PS:    ic.PowerLaw{Amp: 1e-3, N: -1},
		Seed:  99,
		Model: cosmo.EdS(1), AInit: 0.1, TotalMass: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	np := len(parts)
	x := make([]float64, np)
	y := make([]float64, np)
	z := make([]float64, np)
	m := make([]float64, np)
	geo := domain.Uniform(2, 2, 2, 1.0)
	owner := make([][]int, geo.NumDomains())
	for i, p := range parts {
		x[i], y[i], z[i], m[i] = p.X, p.Y, p.Z, p.M
		r := geo.Find(vec.V3{X: x[i], Y: y[i], Z: z[i]})
		owner[r] = append(owner[r], i)
	}
	run := func(cfg pmpar.Config) (ax, ay, az []float64) {
		ax = make([]float64, np)
		ay = make([]float64, np)
		az = make([]float64, np)
		err := mpi.Run(geo.NumDomains(), func(c *mpi.Comm) {
			lo, hi := geo.Bounds(c.Rank())
			s, err := pmpar.New(c, cfg, lo, hi)
			if err != nil {
				panic(err)
			}
			ids := owner[c.Rank()]
			lx := make([]float64, len(ids))
			ly := make([]float64, len(ids))
			lz := make([]float64, len(ids))
			lm := make([]float64, len(ids))
			for k, id := range ids {
				lx[k], ly[k], lz[k], lm[k] = x[id], y[id], z[id], m[id]
			}
			lax := make([]float64, len(ids))
			lay := make([]float64, len(ids))
			laz := make([]float64, len(ids))
			s.Accel(lx, ly, lz, lm, lax, lay, laz)
			c.Barrier()
			for k, id := range ids {
				ax[id], ay[id], az[id] = lax[k], lay[k], laz[k]
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return
	}
	cfg := pmpar.Config{N: 16, L: 1, G: 1, Rcut: 3.0 / 16, NFFT: 4, Relay: true, Groups: 2}
	rx, ry, rz := run(cfg)
	cfg.ComplexFFT = true
	cx, cy, cz := run(cfg)
	var scale, worst float64
	for i := range rx {
		scale = math.Max(scale, math.Abs(cx[i])+math.Abs(cy[i])+math.Abs(cz[i]))
	}
	for i := range rx {
		d := math.Abs(rx[i]-cx[i]) + math.Abs(ry[i]-cy[i]) + math.Abs(rz[i]-cz[i])
		worst = math.Max(worst, d/scale)
	}
	if worst > 1e-12 {
		t.Errorf("cosmological step r2c vs complex: max rel diff %g > 1e-12", worst)
	}
}
