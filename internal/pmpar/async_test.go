package pmpar

import (
	"testing"

	"greem/internal/mpi"
)

// runAsyncPM is runParallelPM's overlapped twin: the solver runs over a
// duplicated communicator via AccelStart/AccelWait, with a world-comm
// Allreduce issued between the two to prove the duplicated comm's sequence
// space really is independent of concurrent world traffic.
func runAsyncPM(t *testing.T, cfg Config, x, y, z, m []float64, geoSeed int64, n, nx, ny, nz int) (ax, ay, az []float64) {
	t.Helper()
	_, _, _, _, geo, owner := makeSystem(geoSeed, n, nx, ny, nz)
	ax = make([]float64, n)
	ay = make([]float64, n)
	az = make([]float64, n)
	err := mpi.Run(geo.NumDomains(), func(c *mpi.Comm) {
		lo, hi := geo.Bounds(c.Rank())
		s, err := New(c.Dup(), cfg, lo, hi)
		if err != nil {
			panic(err)
		}
		ids := owner[c.Rank()]
		lx := make([]float64, len(ids))
		ly := make([]float64, len(ids))
		lz := make([]float64, len(ids))
		lm := make([]float64, len(ids))
		for k, id := range ids {
			lx[k], ly[k], lz[k], lm[k] = x[id], y[id], z[id], m[id]
		}
		lax := make([]float64, len(ids))
		lay := make([]float64, len(ids))
		laz := make([]float64, len(ids))
		s.AccelStart(lx, ly, lz, lm)
		// Concurrent world-comm traffic while the solve is in flight — the
		// PP side of the overlapped step does exactly this.
		mpi.Allreduce(c, []float64{float64(len(ids))}, mpi.Sum[float64])
		st := s.AccelWait(lx, ly, lz, lax, lay, laz)
		if st.Solve <= 0 {
			panic("async solve reported non-positive wall-clock")
		}
		c.Barrier()
		for k, id := range ids {
			ax[id], ay[id], az[id] = lax[k], lay[k], laz[k]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return
}

// TestAsyncMatchesSync pins the overlap contract at the solver level: the
// AccelStart/AccelWait pair produces bit-identical accelerations to the
// synchronous Accel, for both the naive and the relay conversion, with world
// collectives interleaved during the solve.
func TestAsyncMatchesSync(t *testing.T) {
	nmesh := 16
	rcut := 3.0 / 16
	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"naive", Config{N: nmesh, L: 1, G: 1, Rcut: rcut, NFFT: 4}},
		{"relay", Config{N: nmesh, L: 1, G: 1, Rcut: rcut, NFFT: 4, Relay: true, Groups: 2}},
		{"workers", Config{N: nmesh, L: 1, G: 1, Rcut: rcut, NFFT: 4, Workers: 3}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			x, y, z, m, geo, owner := makeSystem(7, 400, 2, 2, 2)
			sx, sy, sz := runParallelPM(t, tc.cfg, x, y, z, m, geo, owner)
			ax, ay, az := runAsyncPM(t, tc.cfg, x, y, z, m, 7, 400, 2, 2, 2)
			for i := range sx {
				if sx[i] != ax[i] || sy[i] != ay[i] || sz[i] != az[i] {
					t.Fatalf("async acceleration differs from sync at particle %d", i)
				}
			}
		})
	}
}

// TestAsyncPairingPanics pins the misuse contract: a second AccelStart with a
// solve pending, and AccelWait without one, both panic.
func TestAsyncPairingPanics(t *testing.T) {
	x, y, z, m, geo, owner := makeSystem(8, 100, 1, 1, 1)
	err := mpi.Run(1, func(c *mpi.Comm) {
		lo, hi := geo.Bounds(0)
		s, err := New(c, Config{N: 8, L: 1, G: 1, Rcut: 3.0 / 8, NFFT: 1}, lo, hi)
		if err != nil {
			panic(err)
		}
		mustPanic := func(f func()) {
			defer func() {
				if recover() == nil {
					panic("expected panic")
				}
			}()
			f()
		}
		_ = owner
		mustPanic(func() {
			s.AccelWait(x, y, z, make([]float64, len(x)), make([]float64, len(x)), make([]float64, len(x)))
		})
		s.AccelStart(x, y, z, m)
		mustPanic(func() { s.AccelStart(x, y, z, m) })
		s.AccelWait(x, y, z, make([]float64, len(x)), make([]float64, len(x)), make([]float64, len(x)))
	})
	if err != nil {
		t.Fatal(err)
	}
}
