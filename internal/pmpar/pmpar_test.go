package pmpar

import (
	"math"
	"math/rand"
	"testing"

	"greem/internal/domain"
	"greem/internal/mesh"
	"greem/internal/mpi"
	"greem/internal/vec"
)

// makeSystem builds a random particle set and a uniform nx×ny×nz domain
// decomposition, returning per-rank particle index lists.
func makeSystem(seed int64, n int, nx, ny, nz int) (x, y, z, m []float64, geo *domain.Geometry, owner [][]int) {
	rng := rand.New(rand.NewSource(seed))
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	m = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i], y[i], z[i] = rng.Float64(), rng.Float64(), rng.Float64()
		m[i] = rng.Float64() + 0.5
	}
	geo = domain.Uniform(nx, ny, nz, 1.0)
	owner = make([][]int, geo.NumDomains())
	for i := 0; i < n; i++ {
		r := geo.Find(vec.V3{X: x[i], Y: y[i], Z: z[i]})
		owner[r] = append(owner[r], i)
	}
	return
}

// runParallelPM executes the distributed PM and scatters accelerations back
// into global arrays.
func runParallelPM(t *testing.T, cfg Config, x, y, z, m []float64, geo *domain.Geometry, owner [][]int) (ax, ay, az []float64) {
	t.Helper()
	n := len(x)
	ax = make([]float64, n)
	ay = make([]float64, n)
	az = make([]float64, n)
	err := mpi.Run(geo.NumDomains(), func(c *mpi.Comm) {
		lo, hi := geo.Bounds(c.Rank())
		s, err := New(c, cfg, lo, hi)
		if err != nil {
			panic(err)
		}
		ids := owner[c.Rank()]
		lx := make([]float64, len(ids))
		ly := make([]float64, len(ids))
		lz := make([]float64, len(ids))
		lm := make([]float64, len(ids))
		for k, id := range ids {
			lx[k], ly[k], lz[k], lm[k] = x[id], y[id], z[id], m[id]
		}
		lax := make([]float64, len(ids))
		lay := make([]float64, len(ids))
		laz := make([]float64, len(ids))
		s.Accel(lx, ly, lz, lm, lax, lay, laz)
		c.Barrier()
		for k, id := range ids {
			ax[id], ay[id], az[id] = lax[k], lay[k], laz[k]
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return
}

func serialPM(t *testing.T, nmesh int, rcut float64, x, y, z, m []float64) (ax, ay, az []float64) {
	t.Helper()
	pm, err := mesh.New(nmesh, 1, 1, rcut)
	if err != nil {
		t.Fatal(err)
	}
	n := len(x)
	ax = make([]float64, n)
	ay = make([]float64, n)
	az = make([]float64, n)
	pm.Accel(x, y, z, m, ax, ay, az)
	return
}

func maxRelDiff(a1, a2, b1, b2, c1, c2 []float64) float64 {
	var scale float64
	for i := range a1 {
		scale = math.Max(scale, math.Abs(a1[i])+math.Abs(b1[i])+math.Abs(c1[i]))
	}
	if scale == 0 {
		scale = 1
	}
	var worst float64
	for i := range a1 {
		d := math.Abs(a1[i]-a2[i]) + math.Abs(b1[i]-b2[i]) + math.Abs(c1[i]-c2[i])
		worst = math.Max(worst, d/scale)
	}
	return worst
}

func TestNaiveMatchesSerial(t *testing.T) {
	nmesh := 16
	rcut := 3.0 / 16
	x, y, z, m, geo, owner := makeSystem(1, 300, 2, 2, 2)
	cfg := Config{N: nmesh, L: 1, G: 1, Rcut: rcut, NFFT: 4}
	ax, ay, az := runParallelPM(t, cfg, x, y, z, m, geo, owner)
	sx, sy, sz := serialPM(t, nmesh, rcut, x, y, z, m)
	if d := maxRelDiff(sx, ax, sy, ay, sz, az); d > 1e-11 {
		t.Errorf("naive parallel PM differs from serial by %v", d)
	}
}

func TestRelayMatchesSerial(t *testing.T) {
	nmesh := 16
	rcut := 3.0 / 16
	x, y, z, m, geo, owner := makeSystem(2, 300, 2, 2, 2) // p = 8
	cfg := Config{N: nmesh, L: 1, G: 1, Rcut: rcut, NFFT: 4, Relay: true, Groups: 2}
	ax, ay, az := runParallelPM(t, cfg, x, y, z, m, geo, owner)
	sx, sy, sz := serialPM(t, nmesh, rcut, x, y, z, m)
	if d := maxRelDiff(sx, ax, sy, ay, sz, az); d > 1e-11 {
		t.Errorf("relay parallel PM differs from serial by %v", d)
	}
}

func TestRelayEqualsNaive(t *testing.T) {
	nmesh := 16
	rcut := 3.0 / 16
	x, y, z, m, geo, owner := makeSystem(3, 500, 3, 2, 2) // p = 12
	axN, ayN, azN := runParallelPM(t, Config{N: nmesh, L: 1, G: 1, Rcut: rcut, NFFT: 4}, x, y, z, m, geo, owner)
	axR, ayR, azR := runParallelPM(t, Config{N: nmesh, L: 1, G: 1, Rcut: rcut, NFFT: 4, Relay: true, Groups: 3}, x, y, z, m, geo, owner)
	if d := maxRelDiff(axN, axR, ayN, ayR, azN, azR); d > 1e-11 {
		t.Errorf("relay differs from naive by %v", d)
	}
}

func TestRelaySingleGroupDegeneratesToNaive(t *testing.T) {
	nmesh := 16
	rcut := 3.0 / 16
	x, y, z, m, geo, owner := makeSystem(4, 200, 2, 2, 1)
	axN, ayN, azN := runParallelPM(t, Config{N: nmesh, L: 1, G: 1, Rcut: rcut, NFFT: 2}, x, y, z, m, geo, owner)
	axR, ayR, azR := runParallelPM(t, Config{N: nmesh, L: 1, G: 1, Rcut: rcut, NFFT: 2, Relay: true, Groups: 1}, x, y, z, m, geo, owner)
	if d := maxRelDiff(axN, axR, ayN, ayR, azN, azR); d > 1e-12 {
		t.Errorf("single-group relay differs from naive by %v", d)
	}
}

func TestFig5Configuration(t *testing.T) {
	// Paper Fig. 5: 36 processes (6×6 in 2-D), N_PM = 8³, 8 FFT processes,
	// 4 groups of 9. We decompose 6×6×1 and verify against the serial PM.
	nmesh := 8
	rcut := 3.0 / 8
	x, y, z, m, geo, owner := makeSystem(5, 600, 6, 6, 1)
	cfg := Config{N: nmesh, L: 1, G: 1, Rcut: rcut, NFFT: 8, Relay: true, Groups: 4}
	ax, ay, az := runParallelPM(t, cfg, x, y, z, m, geo, owner)
	sx, sy, sz := serialPM(t, nmesh, rcut, x, y, z, m)
	if d := maxRelDiff(sx, ax, sy, ay, sz, az); d > 1e-11 {
		t.Errorf("Fig. 5 configuration differs from serial by %v", d)
	}
}

func TestAdaptiveDomainsMatchSerial(t *testing.T) {
	// Non-uniform (sampled) domains exercise windows of unequal size and
	// wrapped ghost ranges.
	rng := rand.New(rand.NewSource(6))
	n := 400
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	pts := make([]vec.V3, n)
	for i := 0; i < n; i++ {
		// clumped distribution
		if i%2 == 0 {
			x[i], y[i], z[i] = rng.Float64(), rng.Float64(), rng.Float64()
		} else {
			p := vec.Wrap(vec.V3{X: 0.1 + 0.05*rng.NormFloat64(), Y: 0.9 + 0.05*rng.NormFloat64(), Z: 0.5 + 0.05*rng.NormFloat64()}, 1)
			x[i], y[i], z[i] = p.X, p.Y, p.Z
		}
		m[i] = 1
		pts[i] = vec.V3{X: x[i], Y: y[i], Z: z[i]}
	}
	geo, err := domain.FromSamples(2, 2, 2, 1, append([]vec.V3(nil), pts...))
	if err != nil {
		t.Fatal(err)
	}
	owner := make([][]int, geo.NumDomains())
	for i := 0; i < n; i++ {
		r := geo.Find(pts[i])
		owner[r] = append(owner[r], i)
	}
	cfg := Config{N: 16, L: 1, G: 1, Rcut: 3.0 / 16, NFFT: 4, Relay: true, Groups: 2}
	ax, ay, az := runParallelPM(t, cfg, x, y, z, m, geo, owner)
	sx, sy, sz := serialPM(t, 16, 3.0/16, x, y, z, m)
	if d := maxRelDiff(sx, ax, sy, ay, sz, az); d > 1e-11 {
		t.Errorf("adaptive-domain PM differs from serial by %v", d)
	}
}

func TestRelayReducesIncast(t *testing.T) {
	// The point of the relay mesh: the maximum number of distinct senders
	// into any single FFT process in one conversion drops from ~p to the
	// group size.
	nmesh := 16
	rcut := 3.0 / 16
	x, y, z, m, geo, owner := makeSystem(7, 800, 4, 2, 2) // p = 16
	incast := func(cfg Config) int {
		var ops []mpi.Op
		n := len(x)
		_ = n
		err := mpi.Run(geo.NumDomains(), func(c *mpi.Comm) {
			lo, hi := geo.Bounds(c.Rank())
			s, err := New(c, cfg, lo, hi)
			if err != nil {
				panic(err)
			}
			c.Traffic().Reset()
			ids := owner[c.Rank()]
			lx := make([]float64, len(ids))
			ly := make([]float64, len(ids))
			lz := make([]float64, len(ids))
			lm := make([]float64, len(ids))
			for k, id := range ids {
				lx[k], ly[k], lz[k], lm[k] = x[id], y[id], z[id], m[id]
			}
			la := make([]float64, len(ids))
			lb := make([]float64, len(ids))
			lc := make([]float64, len(ids))
			s.Accel(lx, ly, lz, lm, la, lb, lc)
			c.Barrier()
			if c.Rank() == 0 {
				ops = c.Traffic().Ops()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		// Max distinct senders to any destination within a single Alltoallv.
		worst := 0
		for _, op := range ops {
			if op.Name != "Alltoallv" {
				continue
			}
			senders := map[int]map[int]bool{}
			for _, msg := range op.Msgs {
				if senders[msg.Dst] == nil {
					senders[msg.Dst] = map[int]bool{}
				}
				senders[msg.Dst][msg.Src] = true
			}
			for _, set := range senders {
				if len(set) > worst {
					worst = len(set)
				}
			}
		}
		return worst
	}
	naive := incast(Config{N: nmesh, L: 1, G: 1, Rcut: rcut, NFFT: 4})
	relay := incast(Config{N: nmesh, L: 1, G: 1, Rcut: rcut, NFFT: 4, Relay: true, Groups: 4})
	t.Logf("max senders per destination: naive=%d relay=%d", naive, relay)
	if relay >= naive {
		t.Errorf("relay incast %d not smaller than naive %d", relay, naive)
	}
}

func TestNewValidation(t *testing.T) {
	err := mpi.Run(4, func(c *mpi.Comm) {
		lo, hi := vec.V3{}, vec.V3{X: 0.5, Y: 0.5, Z: 0.5}
		if _, err := New(c, Config{N: 16, L: 1, G: 1, Rcut: 0.2, NFFT: 5}, lo, hi); err == nil {
			panic("NFFT > p accepted")
		}
		if _, err := New(c, Config{N: 2, L: 1, G: 1, Rcut: 0.2, NFFT: 4}, lo, hi); err == nil {
			panic("NFFT > N accepted")
		}
		if _, err := New(c, Config{N: 16, L: 1, G: 1, Rcut: 0.2, NFFT: 4, Relay: true, Groups: 3}, lo, hi); err == nil {
			panic("groups smaller than NFFT accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTimingsAccumulate(t *testing.T) {
	x, y, z, m, geo, owner := makeSystem(8, 100, 2, 1, 1)
	var total Timings
	err := mpi.Run(2, func(c *mpi.Comm) {
		lo, hi := geo.Bounds(c.Rank())
		s, err := New(c, Config{N: 8, L: 1, G: 1, Rcut: 3.0 / 8, NFFT: 2}, lo, hi)
		if err != nil {
			panic(err)
		}
		ids := owner[c.Rank()]
		lx := make([]float64, len(ids))
		ly := make([]float64, len(ids))
		lz := make([]float64, len(ids))
		lm := make([]float64, len(ids))
		for k, id := range ids {
			lx[k], ly[k], lz[k], lm[k] = x[id], y[id], z[id], m[id]
		}
		la := make([]float64, len(ids))
		lb := make([]float64, len(ids))
		lc := make([]float64, len(ids))
		s.Accel(lx, ly, lz, lm, la, lb, lc)
		if c.Rank() == 0 {
			total = s.Times
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if total.Total() <= 0 || total.Density <= 0 || total.Comm <= 0 {
		t.Errorf("timings not populated: %+v", total)
	}
}

func TestLocalMeshMassConservation(t *testing.T) {
	lm, err := NewLocalMesh(16, 1, vec.V3{X: 0.25, Y: 0.25, Z: 0.25}, vec.V3{X: 0.5, Y: 0.5, Z: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.3, 0.49, 0.251}
	y := []float64{0.26, 0.4, 0.3}
	z := []float64{0.45, 0.33, 0.26}
	m := []float64{1, 2, 3}
	lm.AssignTSC(x, y, z, m)
	var sum float64
	for _, v := range lm.Rho {
		sum += v
	}
	sum *= lm.H * lm.H * lm.H
	if math.Abs(sum-6) > 1e-12 {
		t.Errorf("assigned mass %v, want 6", sum)
	}
}

func TestAxisSegs(t *testing.T) {
	// In-range window: one segment.
	s := axisSegs(3, 4, 16)
	if len(s) != 1 || s[0] != (seg{g0: 3, l0: 0, n: 4}) {
		t.Errorf("in-range: %+v", s)
	}
	// Negative origin wraps into two segments.
	s = axisSegs(-2, 6, 16)
	if len(s) != 2 || s[0] != (seg{g0: 14, l0: 0, n: 2}) || s[1] != (seg{g0: 0, l0: 2, n: 4}) {
		t.Errorf("neg origin: %+v", s)
	}
	// Overflowing window wraps at the top.
	s = axisSegs(14, 5, 16)
	if len(s) != 2 || s[0] != (seg{g0: 14, l0: 0, n: 2}) || s[1] != (seg{g0: 0, l0: 2, n: 3}) {
		t.Errorf("overflow: %+v", s)
	}
	// Full axis.
	s = axisSegs(0, 16, 16)
	if len(s) != 1 || s[0] != (seg{g0: 0, l0: 0, n: 16}) {
		t.Errorf("full: %+v", s)
	}
}

func TestRelayInterleavedMatchesNaive(t *testing.T) {
	nmesh := 16
	rcut := 3.0 / 16
	x, y, z, m, geo, owner := makeSystem(9, 400, 4, 2, 2) // p = 16
	axN, ayN, azN := runParallelPM(t, Config{N: nmesh, L: 1, G: 1, Rcut: rcut, NFFT: 4}, x, y, z, m, geo, owner)
	axI, ayI, azI := runParallelPM(t, Config{N: nmesh, L: 1, G: 1, Rcut: rcut, NFFT: 4, Relay: true, Groups: 4, Interleaved: true}, x, y, z, m, geo, owner)
	if d := maxRelDiff(axN, axI, ayN, ayI, azN, azI); d > 1e-11 {
		t.Errorf("interleaved relay differs from naive by %v", d)
	}
}

func TestGroupOf(t *testing.T) {
	// Contiguous: ranks 0..5 over 2 groups → 000111; interleaved → 010101.
	wantC := []int{0, 0, 0, 1, 1, 1}
	wantI := []int{0, 1, 0, 1, 0, 1}
	for w := 0; w < 6; w++ {
		if g := groupOf(w, 6, 2, false); g != wantC[w] {
			t.Errorf("contiguous groupOf(%d) = %d, want %d", w, g, wantC[w])
		}
		if g := groupOf(w, 6, 2, true); g != wantI[w] {
			t.Errorf("interleaved groupOf(%d) = %d, want %d", w, g, wantI[w])
		}
	}
}

func TestPencilMatchesSerial(t *testing.T) {
	nmesh := 16
	rcut := 3.0 / 16
	x, y, z, m, geo, owner := makeSystem(10, 300, 2, 2, 2)
	cfg := Config{N: nmesh, L: 1, G: 1, Rcut: rcut, Pencil: true, PY: 2, PZ: 2}
	ax, ay, az := runParallelPM(t, cfg, x, y, z, m, geo, owner)
	sx, sy, sz := serialPM(t, nmesh, rcut, x, y, z, m)
	if d := maxRelDiff(sx, ax, sy, ay, sz, az); d > 1e-11 {
		t.Errorf("pencil PM differs from serial by %v", d)
	}
}

func TestPencilRelayMatchesSerial(t *testing.T) {
	// The paper's §IV combination: relay mesh + 2-D parallel FFT.
	nmesh := 16
	rcut := 3.0 / 16
	x, y, z, m, geo, owner := makeSystem(11, 400, 3, 2, 2) // p = 12
	cfg := Config{N: nmesh, L: 1, G: 1, Rcut: rcut, Pencil: true, PY: 2, PZ: 2, Relay: true, Groups: 3}
	ax, ay, az := runParallelPM(t, cfg, x, y, z, m, geo, owner)
	sx, sy, sz := serialPM(t, nmesh, rcut, x, y, z, m)
	if d := maxRelDiff(sx, ax, sy, ay, sz, az); d > 1e-11 {
		t.Errorf("pencil+relay PM differs from serial by %v", d)
	}
}

func TestPencilBreaksSlabLimit(t *testing.T) {
	// The point of §IV: more FFT processes than mesh planes. An 8³ mesh can
	// use at most 8 slab processes, but 4×4 = 16 pencil processes work.
	nmesh := 8
	rcut := 3.0 / 8
	x, y, z, m, geo, owner := makeSystem(12, 400, 4, 2, 2) // p = 16
	if _, err := NewLocalMesh(nmesh, 1, vec.V3{}, vec.V3{X: 0.25, Y: 0.5, Z: 0.5}); err != nil {
		t.Fatal(err)
	}
	slabCfg := Config{N: nmesh, L: 1, G: 1, Rcut: rcut, NFFT: 16}
	err := mpi.Run(16, func(c *mpi.Comm) {
		lo, hi := geo.Bounds(c.Rank())
		if _, err := New(c, slabCfg, lo, hi); err == nil {
			panic("slab mode accepted NFFT=16 > N=8")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{N: nmesh, L: 1, G: 1, Rcut: rcut, Pencil: true, PY: 4, PZ: 4}
	ax, ay, az := runParallelPM(t, cfg, x, y, z, m, geo, owner)
	sx, sy, sz := serialPM(t, nmesh, rcut, x, y, z, m)
	if d := maxRelDiff(sx, ax, sy, ay, sz, az); d > 1e-11 {
		t.Errorf("16-process pencil PM on 8³ mesh differs from serial by %v", d)
	}
}

func TestPencilValidationInSolver(t *testing.T) {
	err := mpi.Run(4, func(c *mpi.Comm) {
		lo, hi := vec.V3{}, vec.V3{X: 0.5, Y: 0.5, Z: 0.5}
		if _, err := New(c, Config{N: 16, L: 1, G: 1, Rcut: 0.2, Pencil: true, PY: 0, PZ: 2}, lo, hi); err == nil {
			panic("PY=0 accepted")
		}
		if _, err := New(c, Config{N: 16, L: 1, G: 1, Rcut: 0.2, Pencil: true, PY: 3, PZ: 2}, lo, hi); err == nil {
			panic("PY*PZ > ranks accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorkersMatchSerialPM(t *testing.T) {
	nmesh := 16
	rcut := 3.0 / 16
	x, y, z, m, geo, owner := makeSystem(13, 300, 2, 2, 1)
	a1, b1, c1 := runParallelPM(t, Config{N: nmesh, L: 1, G: 1, Rcut: rcut, NFFT: 4}, x, y, z, m, geo, owner)
	a2, b2, c2 := runParallelPM(t, Config{N: nmesh, L: 1, G: 1, Rcut: rcut, NFFT: 4, Workers: 4}, x, y, z, m, geo, owner)
	for i := range a1 {
		if a1[i] != a2[i] || b1[i] != b2[i] || c1[i] != c2[i] {
			t.Fatalf("threaded PM differs at %d", i)
		}
	}
}
