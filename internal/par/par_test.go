package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestResolve(t *testing.T) {
	if got := Resolve(7, 1); got != 7 {
		t.Errorf("Resolve(7, 1) = %d, want 7", got)
	}
	if got := Resolve(0, 1); got != 1 {
		t.Errorf("Resolve(0, 1) = %d, want 1 (serial default)", got)
	}
	gmp := runtime.GOMAXPROCS(0)
	if got := Resolve(Auto, 1); got != gmp {
		t.Errorf("Resolve(Auto, 1) = %d, want GOMAXPROCS = %d", got, gmp)
	}
	if got := Resolve(Auto, 2*gmp); got != 1 {
		t.Errorf("Resolve(Auto, %d) = %d, want 1 (capped per rank)", 2*gmp, got)
	}
}

func TestNilPoolRunsSerial(t *testing.T) {
	var p *Pool
	if p.Workers() != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", p.Workers())
	}
	sum := 0
	p.Run(10, func(w, lo, hi int) {
		if w != 0 || lo != 0 || hi != 10 {
			t.Errorf("nil pool ran fn(%d, %d, %d), want (0, 0, 10)", w, lo, hi)
		}
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 45 {
		t.Errorf("sum = %d, want 45", sum)
	}
	p.Close() // must not panic
}

func TestNewSerialIsNil(t *testing.T) {
	for _, w := range []int{-3, 0, 1} {
		if New(w) != nil {
			t.Errorf("New(%d) should be nil (serial)", w)
		}
	}
}

func TestRunCoversRangeOnce(t *testing.T) {
	for _, nw := range []int{2, 3, 7} {
		p := New(nw)
		defer p.Close()
		const total = 1001
		hits := make([]int32, total)
		p.Run(total, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("nw=%d: index %d covered %d times", nw, i, h)
			}
		}
	}
}

func TestRunRangesAreContiguousAndOrdered(t *testing.T) {
	p := New(4)
	defer p.Close()
	const total = 37
	var lows, highs [4]int64
	p.Run(total, func(w, lo, hi int) {
		atomic.StoreInt64(&lows[w], int64(lo))
		atomic.StoreInt64(&highs[w], int64(hi))
	})
	if lows[0] != 0 || highs[3] != total {
		t.Fatalf("range does not span [0, %d): %v %v", total, lows, highs)
	}
	for w := 1; w < 4; w++ {
		if lows[w] != highs[w-1] {
			t.Fatalf("worker %d starts at %d, previous ended at %d", w, lows[w], highs[w-1])
		}
	}
}

func TestRunReusableAcrossTasks(t *testing.T) {
	p := New(3)
	defer p.Close()
	a := make([]float64, 100)
	p.Run(len(a), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] = float64(i)
		}
	})
	p.Run(len(a), func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i] *= 2
		}
	})
	for i := range a {
		if a[i] != 2*float64(i) {
			t.Fatalf("a[%d] = %v, want %v", i, a[i], 2*float64(i))
		}
	}
}

func TestTakeBusyAccumulatesAndResets(t *testing.T) {
	p := New(2)
	defer p.Close()
	var sink [2]float64
	p.Run(1000, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			sink[w] += float64(i) * float64(i)
		}
	})
	busy, idle := p.TakeBusy()
	if busy <= 0 {
		t.Errorf("busy = %v, want > 0", busy)
	}
	if idle < 0 {
		t.Errorf("idle = %v, want ≥ 0", idle)
	}
	b2, i2 := p.TakeBusy()
	if b2 != 0 || i2 != 0 {
		t.Errorf("TakeBusy did not reset: %v, %v", b2, i2)
	}
	_ = sink
}

func TestRunZeroAllocs(t *testing.T) {
	p := New(4)
	defer p.Close()
	a := make([]float64, 4096)
	fn := func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			a[i]++
		}
	}
	p.Run(len(a), fn) // warm up: start the workers
	allocs := testing.AllocsPerRun(100, func() {
		p.Run(len(a), fn)
	})
	if allocs != 0 {
		t.Errorf("Run allocates %v objects per call, want 0", allocs)
	}
}
