// Package par provides the intra-rank worker pool that threads the PM
// pipeline and the integrator loops — the stand-in for the OpenMP threads
// inside each MPI process of the paper's hybrid parallelization (GreeM on K
// computer runs one process per node with 8 threads). Ranks are goroutines in
// this reproduction, so each rank owns one Pool and drives every O(N)/O(M³)
// hot loop through it.
//
// # Workers semantics (the one place this is documented)
//
// Every Workers knob in the tree — sim.Config.Workers, treepm.Config.Workers,
// pmpar.Config.Workers, tree.ForceOpts.Workers — resolves through Resolve:
//
//	w > 0  ⇒ exactly w workers
//	w == 0 ⇒ 1 worker (serial; the default, so existing configurations keep
//	         their single-threaded behaviour)
//	w < 0  ⇒ Auto: GOMAXPROCS capped per rank (GOMAXPROCS / ranks, min 1),
//	         so a many-core host is saturated without oversubscribing when
//	         several ranks-as-goroutines share it
//
// # Determinism
//
// The pool is a scheduler, not an algorithm: every loop driven through it is
// decomposed so the floating-point result is bit-identical to the serial
// loop for any worker count (disjoint index ranges for pure per-element work;
// owner-computes plane decomposition for the TSC scatter — see
// mesh.PM.AssignTSC). Run itself only splits [0, total) into one contiguous
// range per worker, deterministically.
package par

import (
	"runtime"
	"sync"
	"time"
)

// Auto is the Workers knob value selecting GOMAXPROCS-capped-per-rank
// resolution (see the package comment).
const Auto = -1

// Resolve maps a Workers knob to a concrete worker count for a rank that
// shares the host with `ranks` peer ranks (pass 1 for a standalone solver).
func Resolve(w, ranks int) int {
	if w > 0 {
		return w
	}
	if w == 0 {
		return 1
	}
	if ranks < 1 {
		ranks = 1
	}
	n := runtime.GOMAXPROCS(0) / ranks
	if n < 1 {
		n = 1
	}
	return n
}

// Pool is a fixed set of worker goroutines executing index-range tasks for
// one rank. The zero steady-state-allocation discipline of the PM hot loops
// extends through Run: dispatch is channel signals and a WaitGroup, and the
// task function is expected to be a hoisted (struct-bound) func value, so a
// Run costs no heap allocation.
//
// A Pool is owned by a single goroutine (its rank): Run, TakeBusy and Close
// must not be called concurrently. Worker goroutines start lazily on the
// first parallel Run and park on a channel receive between tasks; Close
// releases them. A nil *Pool is valid and runs everything serially inline.
type Pool struct {
	nw int

	// Task state for the current Run; written before the start signals,
	// read by workers, and not touched again until wg.Wait returns.
	fn    func(w, lo, hi int)
	total int

	started bool
	closed  bool
	work    []chan struct{}
	wg      sync.WaitGroup

	// dur[w] is worker w's execution time in the current Run (written only
	// by worker w, read after wg.Wait). busy/idle accumulate across Runs
	// until TakeBusy: idle is Σ_w (span − dur[w]) per Run with span the
	// slowest worker, so busy/(busy+idle) is the pool utilization and
	// (busy+idle)/busy the max/mean intra-rank imbalance.
	dur  []time.Duration
	busy time.Duration
	idle time.Duration
}

// New creates a pool of exactly workers workers (callers resolve knobs with
// Resolve first). workers ≤ 1 returns nil: the nil pool runs serially.
func New(workers int) *Pool {
	if workers <= 1 {
		return nil
	}
	p := &Pool{nw: workers}
	p.work = make([]chan struct{}, workers)
	p.dur = make([]time.Duration, workers)
	return p
}

// Workers returns the worker count (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.nw
}

// start launches the parked worker goroutines (workers 1..nw-1; worker 0 is
// the calling goroutine).
func (p *Pool) start() {
	p.started = true
	for w := 1; w < p.nw; w++ {
		ch := make(chan struct{}, 1)
		p.work[w] = ch
		go p.worker(w, ch)
	}
}

func (p *Pool) worker(w int, ch chan struct{}) {
	for range ch {
		t0 := time.Now()
		lo := w * p.total / p.nw
		hi := (w + 1) * p.total / p.nw
		if hi > lo {
			p.fn(w, lo, hi)
		}
		p.dur[w] = time.Since(t0)
		p.wg.Done()
	}
}

// Run executes fn over the index range [0, total), split into one contiguous
// sub-range per worker: fn(w, lo, hi) covers [lo, hi). Workers run
// concurrently; Run returns when all are done. On a nil pool (or total ≤ 0,
// degenerate) fn runs inline as fn(0, 0, total).
func (p *Pool) Run(total int, fn func(w, lo, hi int)) {
	if p == nil || p.nw <= 1 || total <= 1 {
		if total > 0 {
			t0 := time.Now()
			fn(0, 0, total)
			if p != nil {
				p.busy += time.Since(t0)
			}
		}
		return
	}
	if !p.started {
		p.start()
	}
	p.fn, p.total = fn, total
	p.wg.Add(p.nw - 1)
	for w := 1; w < p.nw; w++ {
		p.work[w] <- struct{}{}
	}
	t0 := time.Now()
	if hi := total / p.nw; hi > 0 {
		fn(0, 0, hi)
	}
	p.dur[0] = time.Since(t0)
	p.wg.Wait()
	p.fn = nil

	span := time.Duration(0)
	for _, d := range p.dur[:p.nw] {
		if d > span {
			span = d
		}
	}
	for _, d := range p.dur[:p.nw] {
		p.busy += d
		p.idle += span - d
	}
}

// TakeBusy returns the busy and idle time accumulated by Runs since the last
// TakeBusy, and resets both. Busy is the summed per-worker execution time;
// idle is the summed time workers waited on the slowest worker of each Run.
// (busy+idle)/busy is therefore the max/mean intra-rank imbalance, the
// within-rank analogue of telemetry's cross-rank phase imbalance.
func (p *Pool) TakeBusy() (busy, idle time.Duration) {
	if p == nil {
		return 0, 0
	}
	busy, idle = p.busy, p.idle
	p.busy, p.idle = 0, 0
	return busy, idle
}

// Close releases the worker goroutines. The pool must not be used after
// Close. Safe to call on a nil or never-started pool, and idempotent.
func (p *Pool) Close() {
	if p == nil || p.closed {
		return
	}
	p.closed = true
	if !p.started {
		return
	}
	for w := 1; w < p.nw; w++ {
		close(p.work[w])
	}
}
