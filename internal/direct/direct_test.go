package direct

import (
	"math"
	"math/rand"
	"testing"
)

func TestAccelPlainTwoBody(t *testing.T) {
	x := []float64{0, 1}
	y := []float64{0, 0}
	z := []float64{0, 0}
	m := []float64{2, 3}
	ax := make([]float64, 2)
	ay := make([]float64, 2)
	az := make([]float64, 2)
	n := AccelPlain(x, y, z, m, 1, 0, ax, ay, az)
	if n != 4 {
		t.Errorf("interactions = %d, want 4", n)
	}
	if math.Abs(ax[0]-3) > 1e-13 || math.Abs(ax[1]+2) > 1e-13 {
		t.Errorf("accels %v, %v; want 3, -2", ax[0], ax[1])
	}
	// Momentum: m0·a0 + m1·a1 = 0.
	if math.Abs(m[0]*ax[0]+m[1]*ax[1]) > 1e-12 {
		t.Errorf("momentum violated")
	}
}

func TestEnergyPlainVirialUnits(t *testing.T) {
	// Two unit masses at rest, separation 2: E = −G·1·1/2 = −0.5.
	x := []float64{0, 2}
	zero := []float64{0, 0}
	m := []float64{1, 1}
	kin, pot := EnergyPlain(x, zero, zero, zero, zero, zero, m, 1, 0)
	if kin != 0 {
		t.Errorf("kin = %v", kin)
	}
	if math.Abs(pot+0.5) > 1e-13 {
		t.Errorf("pot = %v, want -0.5", pot)
	}
}

func TestAccelCutoffPeriodicWrap(t *testing.T) {
	// Particles at 0.05 and 0.95 in a unit box are 0.1 apart through the
	// boundary; with rcut = 0.3 they interact across it.
	l, rcut := 1.0, 0.3
	x := []float64{0.05, 0.95}
	y := []float64{0.5, 0.5}
	z := []float64{0.5, 0.5}
	m := []float64{1, 1}
	ax := make([]float64, 2)
	ay := make([]float64, 2)
	az := make([]float64, 2)
	AccelCutoff(x, y, z, m, 1, l, rcut, 0, ax, ay, az)
	if ax[0] >= 0 {
		t.Errorf("particle at 0.05 should be pulled in −x (through boundary): ax=%v", ax[0])
	}
	if math.Abs(ax[0]+ax[1]) > 1e-12*math.Abs(ax[0]) {
		t.Errorf("pair antisymmetry violated: %v vs %v", ax[0], ax[1])
	}
}

func TestAccelCutoffBeyondRcutZero(t *testing.T) {
	x := []float64{0.1, 0.6}
	y := []float64{0.5, 0.5}
	z := []float64{0.5, 0.5}
	m := []float64{1, 1}
	ax := make([]float64, 2)
	ay := make([]float64, 2)
	az := make([]float64, 2)
	AccelCutoff(x, y, z, m, 1, 1.0, 0.2, 0, ax, ay, az) // separation 0.5 > 2·rcut? rcut=0.2 ⇒ zero force
	for i, v := range ax {
		if v != 0 || ay[i] != 0 || az[i] != 0 {
			t.Errorf("force beyond cutoff: particle %d gets (%v,%v,%v)", i, v, ay[i], az[i])
		}
	}
}

func TestAccelCutoffMomentumConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 40
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	for i := range x {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()+0.5
	}
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	AccelCutoff(x, y, z, m, 1, 1, 0.25, 1e-8, ax, ay, az)
	var px, py, pz, scale float64
	for i := range x {
		px += m[i] * ax[i]
		py += m[i] * ay[i]
		pz += m[i] * az[i]
		scale += m[i] * (math.Abs(ax[i]) + math.Abs(ay[i]) + math.Abs(az[i]))
	}
	if scale == 0 {
		t.Fatal("no interactions")
	}
	if math.Abs(px)+math.Abs(py)+math.Abs(pz) > 1e-11*scale {
		t.Errorf("net momentum (%v,%v,%v) scale %v", px, py, pz, scale)
	}
}

func TestAccelCutoffCellsMatchesAllPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 300
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	for i := range x {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()+0.5
	}
	l, rcut, eps2 := 1.0, 0.15, 1e-9
	a1 := make([]float64, n)
	b1 := make([]float64, n)
	c1 := make([]float64, n)
	a2 := make([]float64, n)
	b2 := make([]float64, n)
	c2 := make([]float64, n)
	AccelCutoff(x, y, z, m, 1, l, rcut, eps2, a1, b1, c1)
	pairs := AccelCutoffCells(x, y, z, m, 1, l, rcut, eps2, a2, b2, c2)
	if pairs == 0 || pairs >= uint64(n)*uint64(n) {
		t.Errorf("cell pair count implausible: %d", pairs)
	}
	for i := 0; i < n; i++ {
		if math.Abs(a1[i]-a2[i])+math.Abs(b1[i]-b2[i])+math.Abs(c1[i]-c2[i]) > 1e-10*(1+math.Abs(a1[i])) {
			t.Fatalf("cell-based P3M differs at %d: %v vs %v", i, a1[i], a2[i])
		}
	}
}

func TestAccelCutoffCellsClusteringBlowup(t *testing.T) {
	// The paper's motivation for TreePM: P3M's short-range pair count
	// explodes when particles cluster.
	rng := rand.New(rand.NewSource(3))
	n := 2000
	mkUniform := func() ([]float64, []float64, []float64) {
		x := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		for i := range x {
			x[i], y[i], z[i] = rng.Float64(), rng.Float64(), rng.Float64()
		}
		return x, y, z
	}
	mkClustered := func() ([]float64, []float64, []float64) {
		x := make([]float64, n)
		y := make([]float64, n)
		z := make([]float64, n)
		for i := range x {
			x[i] = math.Mod(0.5+0.01*rng.NormFloat64()+1, 1)
			y[i] = math.Mod(0.5+0.01*rng.NormFloat64()+1, 1)
			z[i] = math.Mod(0.5+0.01*rng.NormFloat64()+1, 1)
		}
		return x, y, z
	}
	m := make([]float64, n)
	for i := range m {
		m[i] = 1
	}
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	ux, uy, uz := mkUniform()
	cx, cy, cz := mkClustered()
	pu := AccelCutoffCells(ux, uy, uz, m, 1, 1, 0.1, 1e-9, ax, ay, az)
	pc := AccelCutoffCells(cx, cy, cz, m, 1, 1, 0.1, 1e-9, ax, ay, az)
	if pc < pu*10 {
		t.Errorf("clustered pair count %d should dwarf uniform %d", pc, pu)
	}
}
