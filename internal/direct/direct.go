// Package direct implements O(N²) direct-summation gravity. It serves three
// roles from the paper: the naive baseline of §I (unpractical beyond ~10⁶
// particles), the short-range component of the P3M method (whose O(n²) cost
// inside clustered cutoff spheres motivates TreePM, Fig. 2's comparison),
// and the reference against which the tree's multipole approximation is
// measured.
package direct

import (
	"math"

	"greem/internal/ppkern"
	"greem/internal/vec"
)

// AccelPlain adds open-boundary Newtonian accelerations (softening ε²) into
// (ax, ay, az); every particle attracts every other.
func AccelPlain(x, y, z, m []float64, g, eps2 float64, ax, ay, az []float64) uint64 {
	src := &ppkern.Source{X: x, Y: y, Z: z, M: m}
	return ppkern.AccelPlain(x, y, z, src, g, eps2, ax, ay, az)
}

// PotPlain adds open-boundary potentials into pot.
func PotPlain(x, y, z, m []float64, g, eps2 float64, pot []float64) {
	src := &ppkern.Source{X: x, Y: y, Z: z, M: m}
	ppkern.PotPlain(x, y, z, src, g, eps2, pot)
}

// EnergyPlain returns kinetic + potential energy of an open-boundary system.
func EnergyPlain(x, y, z, vx, vy, vz, m []float64, g, eps2 float64) (kin, pot float64) {
	p := make([]float64, len(x))
	PotPlain(x, y, z, m, g, eps2, p)
	for i := range x {
		kin += 0.5 * m[i] * (vx[i]*vx[i] + vy[i]*vy[i] + vz[i]*vz[i])
		pot += 0.5 * m[i] * p[i]
	}
	return kin, pot
}

// AccelCutoff adds short-range (eq. 2 + eq. 3 cutoff) accelerations in a
// periodic box of side l into (ax, ay, az), evaluating every pair directly
// with minimum-image displacements. This is the P3M short-range method: cost
// O(n²) within each cutoff sphere, which is what the tree replaces. Returns
// the number of pairwise interactions inside the cutoff bookkeeping
// (all pairs are evaluated).
func AccelCutoff(x, y, z, m []float64, g, l, rcut, eps2 float64, ax, ay, az []float64) uint64 {
	n := len(x)
	var count uint64
	for i := 0; i < n; i++ {
		var fx, fy, fz float64
		pi := vec.V3{X: x[i], Y: y[i], Z: z[i]}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			d := vec.MinImage(pi, vec.V3{X: x[j], Y: y[j], Z: z[j]}, l)
			r2 := d.Norm2() + eps2
			if r2 == 0 {
				continue
			}
			count++
			rinv := 1 / math.Sqrt(r2)
			xi := r2 * rinv * 2 / rcut
			gp := ppkern.GP3M(xi)
			if gp == 0 {
				continue
			}
			w := g * m[j] * gp * rinv * rinv * rinv
			fx += w * d.X
			fy += w * d.Y
			fz += w * d.Z
		}
		ax[i] += fx
		ay[i] += fy
		az[i] += fz
	}
	return count
}

// AccelCutoffCells is the production P3M short-range method: a chaining
// mesh with cells of side ≥ rcut so only the 27 neighbouring cells need
// pair evaluation. The returned pair count is Σ over neighbouring cell
// pairs of n_i·n_j — the quantity that explodes as O(n²) inside collapsed
// structures (a cell 1000× overdense costs 10⁶× more, §I), which is what
// motivates replacing P3M's direct summation with the tree.
func AccelCutoffCells(x, y, z, m []float64, g, l, rcut, eps2 float64, ax, ay, az []float64) uint64 {
	n := len(x)
	nc := int(l / rcut)
	if nc < 1 {
		nc = 1
	}
	if nc > 128 {
		nc = 128
	}
	cs := l / float64(nc)
	cellOf := func(i int) int {
		cx := int(x[i] / cs)
		cy := int(y[i] / cs)
		cz := int(z[i] / cs)
		if cx >= nc {
			cx = nc - 1
		}
		if cy >= nc {
			cy = nc - 1
		}
		if cz >= nc {
			cz = nc - 1
		}
		return (cx*nc+cy)*nc + cz
	}
	cells := make([][]int32, nc*nc*nc)
	for i := 0; i < n; i++ {
		c := cellOf(i)
		cells[c] = append(cells[c], int32(i))
	}
	cinv := 2 / rcut
	var count uint64
	for c, members := range cells {
		if len(members) == 0 {
			continue
		}
		cz := c % nc
		cy := (c / nc) % nc
		cx := c / (nc * nc)
		seen := map[int]bool{}
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for dz := -1; dz <= 1; dz++ {
					nb := (((cx+dx+nc)%nc)*nc+(cy+dy+nc)%nc)*nc + (cz+dz+nc)%nc
					if seen[nb] {
						continue // small grids alias neighbours
					}
					seen[nb] = true
					other := cells[nb]
					if len(other) == 0 {
						continue
					}
					count += uint64(len(members)) * uint64(len(other))
					for _, ii := range members {
						i := int(ii)
						var fx, fy, fz float64
						for _, jj := range other {
							j := int(jj)
							if i == j {
								continue
							}
							dxv := minImage1(x[j]-x[i], l)
							dyv := minImage1(y[j]-y[i], l)
							dzv := minImage1(z[j]-z[i], l)
							r2 := dxv*dxv + dyv*dyv + dzv*dzv + eps2
							if r2 == 0 {
								continue
							}
							rinv := 1 / math.Sqrt(r2)
							xi := r2 * rinv * cinv
							gp := ppkern.GP3M(xi)
							if gp == 0 {
								continue
							}
							w := g * m[j] * gp * rinv * rinv * rinv
							fx += w * dxv
							fy += w * dyv
							fz += w * dzv
						}
						ax[i] += fx
						ay[i] += fy
						az[i] += fz
					}
				}
			}
		}
	}
	return count
}

func minImage1(d, l float64) float64 {
	d -= l * math.Round(d/l)
	return d
}
