// Package pfft implements the 1-D slab-decomposed parallel 3-D FFT used for
// the PM part, the stand-in for FFTW 3.3's MPI transform (paper §II-B). The
// mesh is distributed in x-slabs over the ranks of a communicator (the
// paper's COMM_FFT); the transform does local y/z FFTs, an all-to-all block
// transpose, x FFTs, and a transpose back, so both the real-space and
// k-space arrays live in the same x-slab layout.
//
// The slab decomposition is what limits the number of FFT processes to at
// most N_PM planes — the constraint that motivates both the relay mesh
// method and the COMM_FFT process selection.
//
// Real meshes should use ForwardReal/InverseReal: the z axis is compressed
// to n/2+1 Hermitian modes before any communication, so the all-to-all
// transposes ship roughly half the complex values of the full transform.
package pfft

import (
	"fmt"

	"greem/internal/fft"
	"greem/internal/mpi"
	"greem/internal/par"
)

// Layout describes balanced x-slab ownership of an n³ mesh over p ranks:
// plane counts differ by at most one, with the first n mod p ranks holding
// one extra plane. Ranks beyond n hold zero planes.
type Layout struct {
	N, P int
}

// Count returns the number of x-planes owned by rank r.
func (l Layout) Count(r int) int {
	base := l.N / l.P
	if r < l.N%l.P {
		return base + 1
	}
	return base
}

// Offset returns the first x-plane owned by rank r.
func (l Layout) Offset(r int) int {
	base := l.N / l.P
	rem := l.N % l.P
	if r < rem {
		return r * (base + 1)
	}
	return rem*(base+1) + (r-rem)*base
}

// OwnerOf returns the rank owning x-plane ix.
func (l Layout) OwnerOf(ix int) int {
	base := l.N / l.P
	rem := l.N % l.P
	if base == 0 {
		return ix // one plane per rank for the first N ranks
	}
	if ix < rem*(base+1) {
		return ix / (base + 1)
	}
	return rem + (ix-rem*(base+1))/base
}

// Plan is a parallel FFT plan bound to one communicator. All ranks of the
// communicator must call Forward/Inverse collectively. A Plan owns reusable
// scratch buffers, so it must not be shared between goroutines (each rank
// builds its own); an attached par.Pool (SetPool) batches the local
// per-line work and the transpose pack/unpack across the rank's workers,
// with each line (or peer-rank block) handled by exactly one worker so the
// parallel transform is bit-identical to the serial one.
type Plan struct {
	comm *mpi.Comm
	n    int
	nh   int // n/2+1: compressed z extent of the real path
	lay  Layout

	cnt, off int // this rank's slab

	line  *fft.Plan       // length-n 1-D plan for the complex passes (scratch-free, shared)
	rline []*fft.RealPlan // per-worker z-axis r2c/c2r plans; nil when n < 2
	ycnt  int
	yoff  int

	pool *par.Pool
	wmid [][]complex128 // per-worker mid-axis line gather scratch, len n each

	send  [][]complex128 // per-destination transpose blocks, reused
	trBuf []complex128   // y-slab transpose target, reused

	// Current batch state for the bound range tasks (hoisted so the hot
	// path allocates nothing in steady state).
	ta     []complex128
	tinv   bool
	trow   int
	treal  []float64
	tspec  []complex128
	tlocal []complex128
	ttr    []complex128
	trecv  [][]complex128

	taskZ, taskMid, taskFZ, taskIZ                     func(w, lo, hi int)
	taskPackXY, taskUnpackXY, taskPackYX, taskUnpackYX func(w, lo, hi int)
}

// NewPlan creates a slab FFT plan for an n³ mesh (n a power of two) on the
// given communicator.
func NewPlan(c *mpi.Comm, n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("pfft: mesh size %d is not a power of two", n)
	}
	lay := Layout{N: n, P: c.Size()}
	p := &Plan{comm: c, n: n, nh: n/2 + 1, lay: lay}
	p.cnt = lay.Count(c.Rank())
	p.off = lay.Offset(c.Rank())
	p.ycnt = lay.Count(c.Rank())
	p.yoff = lay.Offset(c.Rank())
	pl, err := fft.NewPlan(n)
	if err != nil {
		return nil, err
	}
	p.line = pl
	if n >= 2 {
		rl, err := fft.NewRealPlan(n)
		if err != nil {
			return nil, err
		}
		p.rline = []*fft.RealPlan{rl}
	}
	p.send = make([][]complex128, c.Size())
	p.taskZ = p.zLines
	p.taskMid = p.midLines
	p.taskFZ = p.fzLines
	p.taskIZ = p.izLines
	p.taskPackXY = p.packXY
	p.taskUnpackXY = p.unpackXY
	p.taskPackYX = p.packYX
	p.taskUnpackYX = p.unpackYX
	p.sizeScratch(1)
	return p, nil
}

// SetPool attaches a worker pool for batching local line work (nil restores
// serial). The pool is shared, not owned: the caller closes it.
func (p *Plan) SetPool(pool *par.Pool) {
	p.pool = pool
	p.sizeScratch(pool.Workers())
}

func (p *Plan) sizeScratch(workers int) {
	for len(p.wmid) < workers {
		p.wmid = append(p.wmid, make([]complex128, p.n))
	}
	if p.rline != nil {
		for len(p.rline) < workers {
			p.rline = append(p.rline, p.rline[0].Clone())
		}
	}
}

// growC resizes buf to n elements, reusing its backing array when possible.
func growC(buf []complex128, n int) []complex128 {
	if cap(buf) < n {
		return make([]complex128, n)
	}
	return buf[:n]
}

// zLines transforms contiguous z lines [lo, hi) of the current batch.
func (p *Plan) zLines(w, lo, hi int) {
	n := p.n
	for i := lo; i < hi; i++ {
		line := p.ta[i*n : (i+1)*n]
		if p.tinv {
			p.line.Inverse(line)
		} else {
			p.line.Forward(line)
		}
	}
}

// midLines transforms strided middle-axis lines; line li of nslab·rowLen is
// (s, iz) with s = li/rowLen, iz = li%rowLen.
func (p *Plan) midLines(w, lo, hi int) {
	n, rowLen := p.n, p.trow
	buf := p.wmid[w][:n]
	for li := lo; li < hi; li++ {
		base := (li/rowLen)*n*rowLen + li%rowLen
		for im := 0; im < n; im++ {
			buf[im] = p.ta[base+im*rowLen]
		}
		if p.tinv {
			p.line.Inverse(buf)
		} else {
			p.line.Forward(buf)
		}
		for im := 0; im < n; im++ {
			p.ta[base+im*rowLen] = buf[im]
		}
	}
}

// fzLines r2c-transforms contiguous z lines with worker-private real plans.
func (p *Plan) fzLines(w, lo, hi int) {
	n, nh := p.n, p.nh
	for i := lo; i < hi; i++ {
		p.rline[w].Forward(p.treal[i*n:(i+1)*n], p.tspec[i*nh:(i+1)*nh])
	}
}

// izLines c2r-transforms contiguous z lines with worker-private real plans.
func (p *Plan) izLines(w, lo, hi int) {
	n, nh := p.n, p.nh
	for i := lo; i < hi; i++ {
		p.rline[w].Inverse(p.tspec[i*nh:(i+1)*nh], p.treal[i*n:(i+1)*n])
	}
}

// transformZ applies the 1-D transform along z for every line of an
// (nslab, n, n) slab.
func (p *Plan) transformZ(a []complex128, nslab int, inverse bool) {
	p.ta, p.tinv = a, inverse
	p.pool.Run(nslab*p.n, p.taskZ)
	p.ta = nil
}

// transformMid applies the 1-D transform along the middle axis of an
// (nslab, n, rowLen) slab; rowLen is n on the complex path and n/2+1 on the
// compressed real path.
func (p *Plan) transformMid(a []complex128, nslab, rowLen int, inverse bool) {
	p.ta, p.trow, p.tinv = a, rowLen, inverse
	p.pool.Run(nslab*rowLen, p.taskMid)
	p.ta = nil
}

// Layout returns the slab layout.
func (p *Plan) Layout() Layout { return p.lay }

// LocalCount returns this rank's number of x-planes.
func (p *Plan) LocalCount() int { return p.cnt }

// LocalOffset returns this rank's first x-plane.
func (p *Plan) LocalOffset() int { return p.off }

// LocalSize returns the length of this rank's slab array (cnt·n·n).
func (p *Plan) LocalSize() int { return p.cnt * p.n * p.n }

// LocalSpecSize returns the length of this rank's half-spectrum slab for the
// real path: cnt·n·(n/2+1).
func (p *Plan) LocalSpecSize() int { return p.cnt * p.n * p.nh }

// NZSpec returns the compressed z extent n/2+1.
func (p *Plan) NZSpec() int { return p.nh }

// Forward transforms the distributed mesh in place. local is this rank's
// x-slab, indexed (ixLocal·n + iy)·n + iz; on return it holds the k-space
// slab in the same layout (kx-slabs).
func (p *Plan) Forward(local []complex128) {
	p.check(local)
	p.transformZ(local, p.cnt, false)
	p.transformMid(local, p.cnt, p.n, false)
	tr := p.transposeXY(local, p.n)
	// In transposed layout the array is (yLocal, x, z); x is the middle
	// axis, so transformMid performs the x-direction FFT.
	p.transformMid(tr, p.ycnt, p.n, false)
	p.transposeYX(tr, local, p.n)
}

// Inverse applies the inverse transform (scaled by 1/n³), mirroring Forward.
func (p *Plan) Inverse(local []complex128) {
	p.check(local)
	tr := p.transposeXY(local, p.n)
	p.transformMid(tr, p.ycnt, p.n, true)
	p.transposeYX(tr, local, p.n)
	p.transformZ(local, p.cnt, true)
	p.transformMid(local, p.cnt, p.n, true)
}

// ForwardReal transforms this rank's real x-slab (cnt·n·n, same indexing as
// Forward) into its Hermitian half-spectrum slab spec, indexed
// (ixLocal·n + iy)·(n/2+1) + iz with iz ∈ [0, n/2]. The z axis is compressed
// before the transposes, so the all-to-alls carry (n/2+1)/n of the complex
// path's bytes.
func (p *Plan) ForwardReal(real []float64, spec []complex128) {
	if len(real) != p.LocalSize() || len(spec) != p.LocalSpecSize() {
		panic(fmt.Sprintf("pfft: real forward lengths (%d, %d) do not match plan (%d, %d)",
			len(real), len(spec), p.LocalSize(), p.LocalSpecSize()))
	}
	nh := p.nh
	if p.rline == nil { // n == 1: every pass is the identity
		for i := range spec {
			spec[i] = complex(real[i], 0)
		}
		return
	}
	p.treal, p.tspec = real, spec
	p.pool.Run(p.cnt*p.n, p.taskFZ)
	p.treal, p.tspec = nil, nil
	p.transformMid(spec, p.cnt, nh, false) // y FFT over the compressed rows
	tr := p.transposeXY(spec, nh)
	p.transformMid(tr, p.ycnt, nh, false) // x FFT
	p.transposeYX(tr, spec, nh)
}

// InverseReal is the exact inverse of ForwardReal (1/n³ scaling included):
// it reconstructs the real x-slab from the half-spectrum. spec is used as
// workspace and clobbered.
func (p *Plan) InverseReal(spec []complex128, real []float64) {
	if len(real) != p.LocalSize() || len(spec) != p.LocalSpecSize() {
		panic(fmt.Sprintf("pfft: real inverse lengths (%d, %d) do not match plan (%d, %d)",
			len(spec), len(real), p.LocalSpecSize(), p.LocalSize()))
	}
	nh := p.nh
	if p.rline == nil {
		for i := range real {
			real[i] = realPart(spec[i])
		}
		return
	}
	tr := p.transposeXY(spec, nh)
	p.transformMid(tr, p.ycnt, nh, true)
	p.transposeYX(tr, spec, nh)
	p.transformMid(spec, p.cnt, nh, true)
	p.treal, p.tspec = real, spec
	p.pool.Run(p.cnt*p.n, p.taskIZ)
	p.treal, p.tspec = nil, nil
}

func realPart(z complex128) float64 { return real(z) }

func (p *Plan) check(local []complex128) {
	if len(local) != p.LocalSize() {
		panic(fmt.Sprintf("pfft: local slab has %d elements, want %d", len(local), p.LocalSize()))
	}
}

// packXY fills the per-destination send blocks for ranks [lo, hi); each
// destination's block is private to one worker, so writes are disjoint.
func (p *Plan) packXY(w, lo, hi int) {
	n, rowLen := p.n, p.trow
	for s := lo; s < hi; s++ {
		yc, yo := p.lay.Count(s), p.lay.Offset(s)
		if yc == 0 || p.cnt == 0 {
			p.send[s] = nil
			continue
		}
		blk := growC(p.send[s], p.cnt*yc*rowLen)
		t := 0
		for ix := 0; ix < p.cnt; ix++ {
			for iy := yo; iy < yo+yc; iy++ {
				base := (ix*n + iy) * rowLen
				copy(blk[t:t+rowLen], p.tlocal[base:base+rowLen])
				t += rowLen
			}
		}
		p.send[s] = blk
	}
}

// unpackXY scatters received blocks from source ranks [lo, hi) into the
// y-slab target; sources own disjoint ix ranges, so writes are disjoint.
func (p *Plan) unpackXY(w, lo, hi int) {
	n, rowLen := p.n, p.trow
	out := p.ttr
	for r := lo; r < hi; r++ {
		xc, xo := p.lay.Count(r), p.lay.Offset(r)
		blk := p.trecv[r]
		if len(blk) == 0 {
			continue
		}
		t := 0
		for ix := xo; ix < xo+xc; ix++ {
			for iy := 0; iy < p.ycnt; iy++ {
				base := (iy*n + ix) * rowLen
				copy(out[base:base+rowLen], blk[t:t+rowLen])
				t += rowLen
			}
		}
	}
}

// packYX fills the per-destination send blocks for the inverse transpose.
func (p *Plan) packYX(w, lo, hi int) {
	n, rowLen := p.n, p.trow
	for s := lo; s < hi; s++ {
		xc, xo := p.lay.Count(s), p.lay.Offset(s)
		if xc == 0 || p.ycnt == 0 {
			p.send[s] = nil
			continue
		}
		blk := growC(p.send[s], p.ycnt*xc*rowLen)
		t := 0
		for ix := xo; ix < xo+xc; ix++ {
			for iy := 0; iy < p.ycnt; iy++ {
				base := (iy*n + ix) * rowLen
				copy(blk[t:t+rowLen], p.ttr[base:base+rowLen])
				t += rowLen
			}
		}
		p.send[s] = blk
	}
}

// unpackYX scatters received blocks back into the x-slab array; sources own
// disjoint iy ranges, so writes are disjoint.
func (p *Plan) unpackYX(w, lo, hi int) {
	n, rowLen := p.n, p.trow
	for r := lo; r < hi; r++ {
		yc, yo := p.lay.Count(r), p.lay.Offset(r)
		blk := p.trecv[r]
		if len(blk) == 0 {
			continue
		}
		t := 0
		for ix := 0; ix < p.cnt; ix++ {
			for iy := yo; iy < yo+yc; iy++ {
				base := (ix*n + iy) * rowLen
				copy(p.tlocal[base:base+rowLen], blk[t:t+rowLen])
				t += rowLen
			}
		}
	}
}

// transposeXY redistributes the x-slab array into y-slabs: the result is
// indexed (iyLocal·n + ix)·rowLen + iz. The returned slice is plan-owned
// scratch, valid until the next transpose. The mpi.Alltoall double-barrier
// copies every received block before returning, so reusing the send blocks
// on the next call is safe.
func (p *Plan) transposeXY(local []complex128, rowLen int) []complex128 {
	p.tlocal, p.trow = local, rowLen
	p.pool.Run(p.comm.Size(), p.taskPackXY)
	recv := mpi.Alltoall(p.comm, p.send)
	p.trBuf = growC(p.trBuf, p.ycnt*p.n*rowLen)
	p.ttr, p.trecv = p.trBuf, recv
	p.pool.Run(p.comm.Size(), p.taskUnpackXY)
	p.tlocal, p.ttr, p.trecv = nil, nil, nil
	return p.trBuf
}

// transposeYX is the inverse redistribution, filling local from the y-slab
// array tr.
func (p *Plan) transposeYX(tr []complex128, local []complex128, rowLen int) {
	p.ttr, p.trow = tr, rowLen
	p.pool.Run(p.comm.Size(), p.taskPackYX)
	recv := mpi.Alltoall(p.comm, p.send)
	p.tlocal, p.trecv = local, recv
	p.pool.Run(p.comm.Size(), p.taskUnpackYX)
	p.tlocal, p.ttr, p.trecv = nil, nil, nil
}
