// Package pfft implements the 1-D slab-decomposed parallel 3-D FFT used for
// the PM part, the stand-in for FFTW 3.3's MPI transform (paper §II-B). The
// mesh is distributed in x-slabs over the ranks of a communicator (the
// paper's COMM_FFT); the transform does local y/z FFTs, an all-to-all block
// transpose, x FFTs, and a transpose back, so both the real-space and
// k-space arrays live in the same x-slab layout.
//
// The slab decomposition is what limits the number of FFT processes to at
// most N_PM planes — the constraint that motivates both the relay mesh
// method and the COMM_FFT process selection.
package pfft

import (
	"fmt"

	"greem/internal/fft"
	"greem/internal/mpi"
)

// Layout describes balanced x-slab ownership of an n³ mesh over p ranks:
// plane counts differ by at most one, with the first n mod p ranks holding
// one extra plane. Ranks beyond n hold zero planes.
type Layout struct {
	N, P int
}

// Count returns the number of x-planes owned by rank r.
func (l Layout) Count(r int) int {
	base := l.N / l.P
	if r < l.N%l.P {
		return base + 1
	}
	return base
}

// Offset returns the first x-plane owned by rank r.
func (l Layout) Offset(r int) int {
	base := l.N / l.P
	rem := l.N % l.P
	if r < rem {
		return r * (base + 1)
	}
	return rem*(base+1) + (r-rem)*base
}

// OwnerOf returns the rank owning x-plane ix.
func (l Layout) OwnerOf(ix int) int {
	base := l.N / l.P
	rem := l.N % l.P
	if base == 0 {
		return ix // one plane per rank for the first N ranks
	}
	if ix < rem*(base+1) {
		return ix / (base + 1)
	}
	return rem + (ix-rem*(base+1))/base
}

// Plan is a parallel FFT plan bound to one communicator. All ranks of the
// communicator must call Forward/Inverse collectively.
type Plan struct {
	comm *mpi.Comm
	n    int
	lay  Layout

	cnt, off int // this rank's slab

	line *fft.Plan // length-n 1-D plan for all three passes
	ycnt int
	yoff int
}

// NewPlan creates a slab FFT plan for an n³ mesh (n a power of two) on the
// given communicator.
func NewPlan(c *mpi.Comm, n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("pfft: mesh size %d is not a power of two", n)
	}
	lay := Layout{N: n, P: c.Size()}
	p := &Plan{comm: c, n: n, lay: lay}
	p.cnt = lay.Count(c.Rank())
	p.off = lay.Offset(c.Rank())
	p.ycnt = lay.Count(c.Rank())
	p.yoff = lay.Offset(c.Rank())
	pl, err := fft.NewPlan(n)
	if err != nil {
		return nil, err
	}
	p.line = pl
	return p, nil
}

// transformZ applies the 1-D transform along z for every line of an
// (nslab, n, n) slab.
func (p *Plan) transformZ(a []complex128, nslab int, inverse bool) {
	n := p.n
	for i := 0; i < nslab*n; i++ {
		line := a[i*n : (i+1)*n]
		if inverse {
			p.line.Inverse(line)
		} else {
			p.line.Forward(line)
		}
	}
}

// transformMid applies the 1-D transform along the middle axis of an
// (nslab, n, n) slab.
func (p *Plan) transformMid(a []complex128, nslab int, inverse bool) {
	n := p.n
	buf := make([]complex128, n)
	for s := 0; s < nslab; s++ {
		for iz := 0; iz < n; iz++ {
			base := s*n*n + iz
			for im := 0; im < n; im++ {
				buf[im] = a[base+im*n]
			}
			if inverse {
				p.line.Inverse(buf)
			} else {
				p.line.Forward(buf)
			}
			for im := 0; im < n; im++ {
				a[base+im*n] = buf[im]
			}
		}
	}
}

// Layout returns the slab layout.
func (p *Plan) Layout() Layout { return p.lay }

// LocalCount returns this rank's number of x-planes.
func (p *Plan) LocalCount() int { return p.cnt }

// LocalOffset returns this rank's first x-plane.
func (p *Plan) LocalOffset() int { return p.off }

// LocalSize returns the length of this rank's slab array (cnt·n·n).
func (p *Plan) LocalSize() int { return p.cnt * p.n * p.n }

// Forward transforms the distributed mesh in place. local is this rank's
// x-slab, indexed (ixLocal·n + iy)·n + iz; on return it holds the k-space
// slab in the same layout (kx-slabs).
func (p *Plan) Forward(local []complex128) {
	p.check(local)
	p.transformZ(local, p.cnt, false)
	p.transformMid(local, p.cnt, false)
	tr := p.transposeXY(local)
	// In transposed layout the array is (yLocal, x, z); x is the middle
	// axis, so transformMid performs the x-direction FFT.
	p.transformMid(tr, p.ycnt, false)
	p.transposeYX(tr, local)
}

// Inverse applies the inverse transform (scaled by 1/n³), mirroring Forward.
func (p *Plan) Inverse(local []complex128) {
	p.check(local)
	tr := p.transposeXY(local)
	p.transformMid(tr, p.ycnt, true)
	p.transposeYX(tr, local)
	p.transformZ(local, p.cnt, true)
	p.transformMid(local, p.cnt, true)
}

func (p *Plan) check(local []complex128) {
	if len(local) != p.LocalSize() {
		panic(fmt.Sprintf("pfft: local slab has %d elements, want %d", len(local), p.LocalSize()))
	}
}

// transposeXY redistributes the x-slab array into y-slabs: the result is
// indexed (iyLocal·n + ix)·n + iz.
func (p *Plan) transposeXY(local []complex128) []complex128 {
	n := p.n
	send := make([][]complex128, p.comm.Size())
	for s := 0; s < p.comm.Size(); s++ {
		yc, yo := p.lay.Count(s), p.lay.Offset(s)
		if yc == 0 || p.cnt == 0 {
			continue
		}
		blk := make([]complex128, p.cnt*yc*n)
		t := 0
		for ix := 0; ix < p.cnt; ix++ {
			for iy := yo; iy < yo+yc; iy++ {
				base := (ix*n + iy) * n
				copy(blk[t:t+n], local[base:base+n])
				t += n
			}
		}
		send[s] = blk
	}
	recv := mpi.Alltoall(p.comm, send)
	out := make([]complex128, p.ycnt*n*n)
	for r := 0; r < p.comm.Size(); r++ {
		xc, xo := p.lay.Count(r), p.lay.Offset(r)
		blk := recv[r]
		if len(blk) == 0 {
			continue
		}
		t := 0
		for ix := xo; ix < xo+xc; ix++ {
			for iy := 0; iy < p.ycnt; iy++ {
				base := (iy*n + ix) * n
				copy(out[base:base+n], blk[t:t+n])
				t += n
			}
		}
	}
	return out
}

// transposeYX is the inverse redistribution, filling local from the y-slab
// array tr.
func (p *Plan) transposeYX(tr []complex128, local []complex128) {
	n := p.n
	send := make([][]complex128, p.comm.Size())
	for s := 0; s < p.comm.Size(); s++ {
		xc, xo := p.lay.Count(s), p.lay.Offset(s)
		if xc == 0 || p.ycnt == 0 {
			continue
		}
		blk := make([]complex128, p.ycnt*xc*n)
		t := 0
		for ix := xo; ix < xo+xc; ix++ {
			for iy := 0; iy < p.ycnt; iy++ {
				base := (iy*n + ix) * n
				copy(blk[t:t+n], tr[base:base+n])
				t += n
			}
		}
		send[s] = blk
	}
	recv := mpi.Alltoall(p.comm, send)
	for r := 0; r < p.comm.Size(); r++ {
		yc, yo := p.lay.Count(r), p.lay.Offset(r)
		blk := recv[r]
		if len(blk) == 0 {
			continue
		}
		t := 0
		for ix := 0; ix < p.cnt; ix++ {
			for iy := yo; iy < yo+yc; iy++ {
				base := (ix*n + iy) * n
				copy(local[base:base+n], blk[t:t+n])
				t += n
			}
		}
	}
}
