package pfft

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"greem/internal/fft"
	"greem/internal/mpi"
)

func TestLayoutInvariants(t *testing.T) {
	for _, c := range []struct{ n, p int }{{8, 1}, {8, 2}, {8, 3}, {8, 8}, {8, 12}, {16, 5}} {
		l := Layout{N: c.n, P: c.p}
		total := 0
		for r := 0; r < c.p; r++ {
			cnt := l.Count(r)
			if cnt < 0 {
				t.Fatalf("n=%d p=%d r=%d: negative count", c.n, c.p, r)
			}
			if l.Offset(r) != total {
				t.Fatalf("n=%d p=%d r=%d: offset %d, want %d", c.n, c.p, r, l.Offset(r), total)
			}
			for ix := l.Offset(r); ix < l.Offset(r)+cnt; ix++ {
				if l.OwnerOf(ix) != r {
					t.Fatalf("n=%d p=%d: OwnerOf(%d) = %d, want %d", c.n, c.p, ix, l.OwnerOf(ix), r)
				}
			}
			total += cnt
		}
		if total != c.n {
			t.Fatalf("n=%d p=%d: planes sum to %d", c.n, c.p, total)
		}
	}
}

// scatterGather runs the parallel transform on p ranks and compares against
// the serial 3-D FFT.
func runParallelForward(t *testing.T, n, p int, inverse bool) {
	rng := rand.New(rand.NewSource(int64(n*100 + p)))
	full := make([]complex128, n*n*n)
	for i := range full {
		full[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := append([]complex128(nil), full...)
	serial := fft.MustPlan3(n, n, n)
	if inverse {
		serial.Inverse(want)
	} else {
		serial.Forward(want)
	}

	got := make([]complex128, n*n*n)
	err := mpi.Run(p, func(c *mpi.Comm) {
		plan, err := NewPlan(c, n)
		if err != nil {
			panic(err)
		}
		local := make([]complex128, plan.LocalSize())
		off := plan.LocalOffset() * n * n
		copy(local, full[off:off+len(local)])
		if inverse {
			plan.Inverse(local)
		} else {
			plan.Forward(local)
		}
		copy(got[off:off+len(local)], local)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("n=%d p=%d: mismatch at %d: %v vs %v", n, p, i, got[i], want[i])
		}
	}
}

func TestForwardMatchesSerial(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		runParallelForward(t, 8, p, false)
	}
	runParallelForward(t, 16, 5, false)
}

func TestInverseMatchesSerial(t *testing.T) {
	for _, p := range []int{1, 3, 8} {
		runParallelForward(t, 8, p, true)
	}
}

func TestMorePlanesThanRanksRoundTrip(t *testing.T) {
	// p > n leaves some ranks with zero planes; they must still participate.
	n, p := 4, 7
	rng := rand.New(rand.NewSource(1))
	full := make([]complex128, n*n*n)
	for i := range full {
		full[i] = complex(rng.NormFloat64(), 0)
	}
	got := make([]complex128, n*n*n)
	err := mpi.Run(p, func(c *mpi.Comm) {
		plan, err := NewPlan(c, n)
		if err != nil {
			panic(err)
		}
		local := make([]complex128, plan.LocalSize())
		off := plan.LocalOffset() * n * n
		copy(local, full[off:off+len(local)])
		plan.Forward(local)
		plan.Inverse(local)
		copy(got[off:off+len(local)], local)
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if cmplx.Abs(got[i]-full[i]) > 1e-10 {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestNewPlanRejectsBadMesh(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) {
		if _, err := NewPlan(c, 12); err == nil {
			panic("accepted non-power-of-two")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
