package pfft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"

	"greem/internal/fft"
	"greem/internal/mpi"
)

// refSpectrum returns the full complex 3-D transform of a real mesh.
func refSpectrum(x []float64, n int) []complex128 {
	full := make([]complex128, len(x))
	for i, v := range x {
		full[i] = complex(v, 0)
	}
	fft.MustPlan3(n, n, n).Forward(full)
	return full
}

// runSlabForwardReal runs the distributed r2c slab transform on p ranks and
// checks it against the non-negative-kz half of the serial complex spectrum.
func runSlabForwardReal(t *testing.T, n, p int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n*1000 + p)))
	x := make([]float64, n*n*n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := refSpectrum(x, n)
	nh := n/2 + 1
	got := make([]complex128, n*n*nh)
	back := make([]float64, n*n*n)
	err := mpi.Run(p, func(c *mpi.Comm) {
		plan, err := NewPlan(c, n)
		if err != nil {
			panic(err)
		}
		local := make([]float64, plan.LocalSize())
		off := plan.LocalOffset() * n * n
		copy(local, x[off:off+len(local)])
		spec := make([]complex128, plan.LocalSpecSize())
		plan.ForwardReal(local, spec)
		copy(got[plan.LocalOffset()*n*nh:], spec)
		plan.InverseReal(spec, local)
		copy(back[off:off+len(local)], local)
	})
	if err != nil {
		t.Fatal(err)
	}
	for jx := 0; jx < n; jx++ {
		for jy := 0; jy < n; jy++ {
			for jz := 0; jz < nh; jz++ {
				g := got[(jx*n+jy)*nh+jz]
				w := want[(jx*n+jy)*n+jz]
				if cmplx.Abs(g-w) > 1e-9 {
					t.Fatalf("n=%d p=%d (%d,%d,%d): r2c %v vs complex %v", n, p, jx, jy, jz, g, w)
				}
			}
		}
	}
	for i := range back {
		if math.Abs(back[i]-x[i]) > 1e-10 {
			t.Fatalf("n=%d p=%d: real round trip mismatch at %d: %v vs %v", n, p, i, back[i], x[i])
		}
	}
}

func TestSlabForwardRealMatchesSerialHalf(t *testing.T) {
	for _, p := range []int{1, 2, 3, 4, 8} {
		runSlabForwardReal(t, 8, p)
	}
	runSlabForwardReal(t, 16, 5)
}

func TestSlabRealZeroPlaneRanks(t *testing.T) {
	// p > n leaves some ranks with zero planes; they must still take part in
	// every collective of the real path.
	runSlabForwardReal(t, 4, 7)
}

// TestRealTransposeBytesHalved verifies the headline claim: the r2c path's
// all-to-all transposes ship exactly (n/2+1)/n of the complex path's bytes.
func TestRealTransposeBytesHalved(t *testing.T) {
	n, p := 8, 4
	a2aBytes := func(realPath bool) int64 {
		var bytes int64
		err := mpi.Run(p, func(c *mpi.Comm) {
			plan, err := NewPlan(c, n)
			if err != nil {
				panic(err)
			}
			if realPath {
				local := make([]float64, plan.LocalSize())
				spec := make([]complex128, plan.LocalSpecSize())
				plan.ForwardReal(local, spec)
				plan.InverseReal(spec, local)
			} else {
				local := make([]complex128, plan.LocalSize())
				plan.Forward(local)
				plan.Inverse(local)
			}
			if c.Rank() == 0 {
				bytes = c.Traffic().TotalsByOp()["Alltoallv"].Bytes
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return bytes
	}
	full := a2aBytes(false)
	half := a2aBytes(true)
	if full == 0 || half == 0 {
		t.Fatalf("no all-to-all traffic recorded (full=%d half=%d)", full, half)
	}
	// Every transpose row shrinks from n to n/2+1 complex values, so the
	// byte ratio is exactly (n/2+1)/n.
	nh := n/2 + 1
	if half*int64(n) != full*int64(nh) {
		t.Errorf("transpose bytes: real %d vs complex %d, want exact ratio %d/%d", half, full, nh, n)
	}
}

// TestSlabSteadyStateAllocs is the regression test for the per-call buffer
// allocations that used to live in transformMid and the transpose pack
// stage: after a warm-up call, the locally controlled parts of the plan
// must not allocate.
func TestSlabSteadyStateAllocs(t *testing.T) {
	n := 16
	err := mpi.Run(1, func(c *mpi.Comm) {
		plan, err := NewPlan(c, n)
		if err != nil {
			panic(err)
		}
		a := make([]complex128, plan.LocalSize())
		plan.transformMid(a, plan.LocalCount(), n, false)
		if allocs := testing.AllocsPerRun(20, func() {
			plan.transformMid(a, plan.LocalCount(), n, false)
		}); allocs != 0 {
			t.Errorf("transformMid allocates %v times per run", allocs)
		}
		spec := make([]complex128, plan.LocalSpecSize())
		x := make([]float64, plan.LocalSize())
		plan.ForwardReal(x, spec)
		if allocs := testing.AllocsPerRun(20, func() {
			for i := 0; i < plan.LocalCount()*n; i++ {
				plan.rline[0].Forward(x[i*n:(i+1)*n], spec[i*plan.nh:(i+1)*plan.nh])
			}
			plan.transformMid(spec, plan.LocalCount(), plan.nh, false)
		}); allocs != 0 {
			t.Errorf("real local stages allocate %v times per run", allocs)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestPencilFFTLinesZeroAllocs: the pencil plan's line-gather scratch is
// plan-owned, so fftLines must not allocate in steady state.
func TestPencilFFTLinesZeroAllocs(t *testing.T) {
	n := 16
	err := mpi.Run(1, func(c *mpi.Comm) {
		plan, err := NewPencilPlan(c, n, 1, 1)
		if err != nil {
			panic(err)
		}
		a := make([]complex128, plan.InSize())
		nlines := plan.yc * plan.zc
		stride := nlines
		plan.fftLines(a, nlines, func(li int) int { return li }, stride, false)
		if allocs := testing.AllocsPerRun(20, func() {
			plan.fftLines(a, nlines, func(li int) int { return li }, stride, false)
		}); allocs != 0 {
			t.Errorf("fftLines allocates %v times per run", allocs)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// runPencilForwardReal checks the distributed pencil r2c transform against
// the non-negative-kx half of the serial complex spectrum, plus round trip.
func runPencilForwardReal(t *testing.T, n, py, pz int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n*100 + py*10 + pz)))
	x := make([]float64, n*n*n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	want := refSpectrum(x, n)
	nxh := n/2 + 1
	got := make([]complex128, nxh*n*n) // (jx·n + jy)·n + jz, jx ≤ n/2
	back := make([]float64, n*n*n)
	err := mpi.Run(py*pz, func(c *mpi.Comm) {
		plan, err := NewPencilPlan(c, n, py, pz)
		if err != nil {
			panic(err)
		}
		yc, yo, zc, zo := plan.InDims()
		in := make([]float64, plan.InSize())
		for ix := 0; ix < n; ix++ {
			for iy := 0; iy < yc; iy++ {
				for iz := 0; iz < zc; iz++ {
					in[(ix*yc+iy)*zc+iz] = x[(ix*n+(yo+iy))*n+(zo+iz)]
				}
			}
		}
		spec := plan.ForwardReal(in)
		xc, xo, yc2, yo2 := plan.SpecDims()
		for ix := 0; ix < xc; ix++ {
			for iy := 0; iy < yc2; iy++ {
				for iz := 0; iz < n; iz++ {
					got[((xo+ix)*n+(yo2+iy))*n+iz] = spec[(ix*yc2+iy)*n+iz]
				}
			}
		}
		out := plan.InverseReal(spec)
		for ix := 0; ix < n; ix++ {
			for iy := 0; iy < yc; iy++ {
				for iz := 0; iz < zc; iz++ {
					back[(ix*n+(yo+iy))*n+(zo+iz)] = out[(ix*yc+iy)*zc+iz]
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for jx := 0; jx < nxh; jx++ {
		for jy := 0; jy < n; jy++ {
			for jz := 0; jz < n; jz++ {
				g := got[(jx*n+jy)*n+jz]
				w := want[(jx*n+jy)*n+jz]
				if cmplx.Abs(g-w) > 1e-9 {
					t.Fatalf("n=%d %d×%d (%d,%d,%d): pencil r2c %v vs complex %v", n, py, pz, jx, jy, jz, g, w)
				}
			}
		}
	}
	for i := range back {
		if math.Abs(back[i]-x[i]) > 1e-10 {
			t.Fatalf("n=%d %d×%d: pencil real round trip mismatch at %d", n, py, pz, i)
		}
	}
}

func TestPencilForwardRealMatchesSerialHalf(t *testing.T) {
	runPencilForwardReal(t, 8, 1, 1)
	runPencilForwardReal(t, 8, 2, 2)
	runPencilForwardReal(t, 8, 4, 2)
	runPencilForwardReal(t, 8, 3, 3) // uneven split of both y/z and compressed x
	runPencilForwardReal(t, 4, 4, 4) // more row ranks than compressed x modes
}

// TestPencilRealTransposeBytesReduced: the pencil real path compresses x
// before either transpose, cutting the all-to-all volume by ~(n/2+1)/n.
func TestPencilRealTransposeBytesReduced(t *testing.T) {
	n, py, pz := 8, 2, 2
	a2aBytes := func(realPath bool) int64 {
		var bytes int64
		err := mpi.Run(py*pz, func(c *mpi.Comm) {
			plan, err := NewPencilPlan(c, n, py, pz)
			if err != nil {
				panic(err)
			}
			if realPath {
				in := make([]float64, plan.InSize())
				plan.InverseReal(plan.ForwardReal(in))
			} else {
				in := make([]complex128, plan.InSize())
				plan.Inverse(plan.Forward(in))
			}
			// The pencil transposes run inside row/column subcommunicators,
			// each recorded by that subcomm's rank 0 — sync before rank 0
			// reads the world ledger or a late subcomm's bytes are missed.
			c.Barrier()
			if c.Rank() == 0 {
				bytes = c.Traffic().TotalsByOp()["Alltoallv"].Bytes
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return bytes
	}
	full := a2aBytes(false)
	half := a2aBytes(true)
	if full == 0 || half == 0 {
		t.Fatalf("no all-to-all traffic recorded (full=%d half=%d)", full, half)
	}
	if float64(half) > 0.7*float64(full) {
		t.Errorf("pencil real transposes moved %d bytes vs complex %d — expected ~%d/%d ratio",
			half, full, n/2+1, n)
	}
}
