package pfft

import (
	"math/cmplx"
	"math/rand"
	"testing"

	"greem/internal/fft"
	"greem/internal/mpi"
)

// runPencil scatters a full cube into A pencils, transforms on py×pz ranks,
// gathers the C pencils, and compares with the serial transform.
func runPencil(t *testing.T, n, py, pz int) {
	t.Helper()
	rng := rand.New(rand.NewSource(int64(n*1000 + py*10 + pz)))
	full := make([]complex128, n*n*n)
	for i := range full {
		full[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := append([]complex128(nil), full...)
	fft.MustPlan3(n, n, n).Forward(want)

	got := make([]complex128, n*n*n)
	roundTrip := make([]complex128, n*n*n)
	err := mpi.Run(py*pz, func(c *mpi.Comm) {
		plan, err := NewPencilPlan(c, n, py, pz)
		if err != nil {
			panic(err)
		}
		yc, yo, zc, zo := plan.InDims()
		in := make([]complex128, plan.InSize())
		for ix := 0; ix < n; ix++ {
			for iy := 0; iy < yc; iy++ {
				for iz := 0; iz < zc; iz++ {
					in[(ix*yc+iy)*zc+iz] = full[(ix*n+(yo+iy))*n+(zo+iz)]
				}
			}
		}
		out := plan.Forward(in)
		xc, xo, yc2, yo2 := plan.OutDims()
		c.Barrier()
		for ix := 0; ix < xc; ix++ {
			for iy := 0; iy < yc2; iy++ {
				for iz := 0; iz < n; iz++ {
					got[((xo+ix)*n+(yo2+iy))*n+iz] = out[(ix*yc2+iy)*n+iz]
				}
			}
		}
		back := plan.Inverse(out)
		for ix := 0; ix < n; ix++ {
			for iy := 0; iy < yc; iy++ {
				for iz := 0; iz < zc; iz++ {
					roundTrip[(ix*n+(yo+iy))*n+(zo+iz)] = back[(ix*yc+iy)*zc+iz]
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if cmplx.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("n=%d %dx%d: forward mismatch at %d: %v vs %v", n, py, pz, i, got[i], want[i])
		}
	}
	for i := range roundTrip {
		if cmplx.Abs(roundTrip[i]-full[i]) > 1e-10 {
			t.Fatalf("n=%d %dx%d: round-trip mismatch at %d", n, py, pz, i)
		}
	}
}

func TestPencilMatchesSerial(t *testing.T) {
	for _, c := range []struct{ n, py, pz int }{
		{8, 1, 1}, {8, 2, 2}, {8, 4, 2}, {8, 3, 2}, {8, 2, 3}, {16, 4, 4},
	} {
		runPencil(t, c.n, c.py, c.pz)
	}
}

func TestPencilMoreRanksThanSlabCould(t *testing.T) {
	// The point of pencils: more processes than mesh planes. n = 4 supports
	// at most 4 slab processes, but 4×4 = 16 pencil processes work.
	runPencil(t, 4, 4, 4)
}

func TestPencilValidation(t *testing.T) {
	err := mpi.Run(4, func(c *mpi.Comm) {
		if _, err := NewPencilPlan(c, 12, 2, 2); err == nil {
			panic("non-power-of-two accepted")
		}
		if _, err := NewPencilPlan(c, 8, 3, 2); err == nil {
			panic("grid mismatch accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
