package pfft

import (
	"fmt"

	"greem/internal/fft"
	"greem/internal/mpi"
	"greem/internal/par"
)

// PencilPlan is a 2-D ("pencil") decomposed parallel 3-D FFT — the paper's
// stated future work: the 1-D slab decomposition caps the FFT at N_PM
// processes (4096 for a 4096³ mesh), whereas pencils allow up to N_PM²,
// removing the fixed ~4 s FFT floor of Table I ("we believe the combination
// of our novel relay mesh method and a 3-D parallel FFT library will
// significantly improve the performance and the scalability", §IV).
//
// The process grid is py×pz (rank r ↔ (a, b) = (r/pz, r%pz)). Data moves
// through three pencil orientations:
//
//	A (input):  full x, y-slice a (over py), z-slice b (over pz)
//	B:          x-slice a, full y, z-slice b      (transpose within a row)
//	C (output): x-slice a, y-slice b (over pz), full z   (within a column)
//
// Forward runs FFT(x) in A, transposes to B, FFT(y), transposes to C,
// FFT(z); the k-space result lives in C. Inverse reverses the path.
//
// ForwardReal/InverseReal compress the x axis — the one transformed before
// any communication — to n/2+1 Hermitian modes, so both transposes ship
// roughly half the complex values.
type PencilPlan struct {
	comm    *mpi.Comm
	n       int
	py, pz  int
	a, b    int
	rowComm *mpi.Comm // peers with the same b, ordered by a
	colComm *mpi.Comm // peers with the same a, ordered by b

	layY Layout // y over py (layout A), also x over py (layouts B, C)
	layZ Layout // z over pz (layouts A, B), also y over pz (layout C)
	yc   int    // A: local y extent
	zc   int    // A and B: local z extent
	xc   int    // B and C: local x extent
	yc2  int    // C: local y extent
	line *fft.Plan

	// Real (half-spectrum) path: x compressed to nxh = n/2+1 modes.
	nxh   int
	layXh Layout          // compressed x over py (layouts B, C)
	xch   int             // B and C: local compressed-x extent
	rline []*fft.RealPlan // per-worker r2c/c2r plans; nil when n < 2

	pool  *par.Pool
	wline [][]complex128 // per-worker fftLines gather scratch, len n
	wreal [][]float64    // per-worker strided r2c/c2r line scratch, len n
	wspec [][]complex128 // per-worker strided r2c/c2r line scratch, len nxh

	sendRow [][]complex128 // reused row-transpose send blocks
	sendCol [][]complex128 // reused column-transpose send blocks

	// Current fftLines batch state for the bound range task (hoisted so the
	// per-line loop allocates nothing in steady state).
	tfa       []complex128
	tfbase    func(int) int
	tfstride  int
	tfinv     bool
	taskLines func(w, lo, hi int)
}

// NewPencilPlan creates a pencil FFT plan on a communicator of exactly
// py·pz ranks for an n³ mesh (n a power of two).
func NewPencilPlan(c *mpi.Comm, n, py, pz int) (*PencilPlan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("pfft: mesh size %d is not a power of two", n)
	}
	if py < 1 || pz < 1 || py*pz != c.Size() {
		return nil, fmt.Errorf("pfft: pencil grid %d×%d does not match %d ranks", py, pz, c.Size())
	}
	p := &PencilPlan{
		comm: c, n: n, py: py, pz: pz,
		a: c.Rank() / pz, b: c.Rank() % pz,
		layY: Layout{N: n, P: py}, layZ: Layout{N: n, P: pz},
	}
	p.rowComm = c.Split(p.b, p.a)
	p.colComm = c.Split(p.a, p.b)
	p.yc = p.layY.Count(p.a)
	p.zc = p.layZ.Count(p.b)
	p.xc = p.layY.Count(p.a)
	p.yc2 = p.layZ.Count(p.b)
	pl, err := fft.NewPlan(n)
	if err != nil {
		return nil, err
	}
	p.line = pl
	p.nxh = n/2 + 1
	p.layXh = Layout{N: p.nxh, P: py}
	p.xch = p.layXh.Count(p.a)
	if n >= 2 {
		rl, err := fft.NewRealPlan(n)
		if err != nil {
			return nil, err
		}
		p.rline = []*fft.RealPlan{rl}
	}
	p.taskLines = p.lineRange
	p.sizeScratch(1)
	p.sendRow = make([][]complex128, py)
	p.sendCol = make([][]complex128, pz)
	return p, nil
}

// SetPool attaches a worker pool for batching the local line work (nil
// restores serial). The pool is shared, not owned: the caller closes it.
func (p *PencilPlan) SetPool(pool *par.Pool) {
	p.pool = pool
	p.sizeScratch(pool.Workers())
}

func (p *PencilPlan) sizeScratch(workers int) {
	for len(p.wline) < workers {
		p.wline = append(p.wline, make([]complex128, p.n))
		p.wreal = append(p.wreal, make([]float64, p.n))
		p.wspec = append(p.wspec, make([]complex128, p.nxh))
	}
	if p.rline != nil {
		for len(p.rline) < workers {
			p.rline = append(p.rline, p.rline[0].Clone())
		}
	}
}

// InDims returns the input (A) pencil extents: full x, y ∈ [yoff, yoff+yc),
// z ∈ [zoff, zoff+zc); element (ix, iy, iz) at (ix·yc+iy)·zc+iz.
func (p *PencilPlan) InDims() (yc, yoff, zc, zoff int) {
	return p.yc, p.layY.Offset(p.a), p.zc, p.layZ.Offset(p.b)
}

// OutDims returns the output (C) pencil extents: x ∈ [xoff, xoff+xc),
// y ∈ [yoff, yoff+yc), full z; element (ix, iy, iz) at (ix·yc+iy)·n+iz.
func (p *PencilPlan) OutDims() (xc, xoff, yc, yoff int) {
	return p.xc, p.layY.Offset(p.a), p.yc2, p.layZ.Offset(p.b)
}

// SpecDims returns the real-path output (C) pencil extents: compressed
// kx ∈ [xoff, xoff+xc) with global kx ≤ n/2, ky ∈ [yoff, yoff+yc), full kz;
// element (ix, iy, iz) at (ix·yc+iy)·n+iz.
func (p *PencilPlan) SpecDims() (xc, xoff, yc, yoff int) {
	return p.xch, p.layXh.Offset(p.a), p.yc2, p.layZ.Offset(p.b)
}

// InSize returns the input array length n·yc·zc.
func (p *PencilPlan) InSize() int { return p.n * p.yc * p.zc }

// OutSize returns the output array length xc·yc2·n.
func (p *PencilPlan) OutSize() int { return p.xc * p.yc2 * p.n }

// SpecSize returns the real-path output array length xch·yc2·n.
func (p *PencilPlan) SpecSize() int { return p.xch * p.yc2 * p.n }

// fftLines transforms count lines of length n with the given stride,
// starting at base indices base(i). Lines batch across the pool workers,
// each line handled by exactly one worker with private scratch, so the
// parallel result is bit-identical to serial.
func (p *PencilPlan) fftLines(a []complex128, nlines int, base func(int) int, stride int, inverse bool) {
	p.tfa, p.tfbase, p.tfstride, p.tfinv = a, base, stride, inverse
	p.pool.Run(nlines, p.taskLines)
	p.tfa, p.tfbase = nil, nil
}

// lineRange is the bound fftLines range task.
func (p *PencilPlan) lineRange(w, lo, hi int) {
	a, base, stride := p.tfa, p.tfbase, p.tfstride
	buf := p.wline[w]
	for li := lo; li < hi; li++ {
		b0 := base(li)
		for k := 0; k < p.n; k++ {
			buf[k] = a[b0+k*stride]
		}
		if p.tfinv {
			p.line.Inverse(buf)
		} else {
			p.line.Forward(buf)
		}
		for k := 0; k < p.n; k++ {
			a[b0+k*stride] = buf[k]
		}
	}
}

// zLines runs the contiguous C-layout z transforms over the pool.
func (p *PencilPlan) zLines(a []complex128, nlines int, inverse bool) {
	p.pool.Run(nlines, func(w, lo, hi int) {
		for li := lo; li < hi; li++ {
			line := a[li*p.n : (li+1)*p.n]
			if inverse {
				p.line.Inverse(line)
			} else {
				p.line.Forward(line)
			}
		}
	})
}

// Forward transforms the A-layout input into the C-layout k-space output.
func (p *PencilPlan) Forward(in []complex128) []complex128 {
	if len(in) != p.InSize() {
		panic(fmt.Sprintf("pfft: pencil input %d, want %d", len(in), p.InSize()))
	}
	work := append([]complex128(nil), in...)
	// FFT along x: lines indexed by (iy, iz), stride yc·zc.
	p.fftLines(work, p.yc*p.zc, func(li int) int { return li }, p.yc*p.zc, false)
	bArr := p.transposeAB(work, p.layY, p.xc)
	// FFT along y in B: (iy·xc + ix)·zc + iz; lines by (ix, iz), stride xc·zc.
	p.fftLines(bArr, p.xc*p.zc, func(li int) int {
		ix := li / p.zc
		iz := li % p.zc
		return ix*p.zc + iz
	}, p.xc*p.zc, false)
	cArr := p.transposeBC(bArr, p.xc)
	// FFT along z in C: contiguous lines.
	p.zLines(cArr, p.xc*p.yc2, false)
	return cArr
}

// Inverse transforms a C-layout k-space array back to the A layout.
func (p *PencilPlan) Inverse(c []complex128) []complex128 {
	if len(c) != p.OutSize() {
		panic(fmt.Sprintf("pfft: pencil input %d, want %d", len(c), p.OutSize()))
	}
	cArr := append([]complex128(nil), c...)
	p.zLines(cArr, p.xc*p.yc2, true)
	bArr := p.transposeCB(cArr, p.xc)
	p.fftLines(bArr, p.xc*p.zc, func(li int) int {
		ix := li / p.zc
		iz := li % p.zc
		return ix*p.zc + iz
	}, p.xc*p.zc, true)
	aArr := p.transposeBA(bArr, p.layY, p.xc)
	p.fftLines(aArr, p.yc*p.zc, func(li int) int { return li }, p.yc*p.zc, true)
	return aArr
}

// ForwardReal transforms a real A-layout input (same indexing as Forward)
// into its C-layout Hermitian half-spectrum: x is compressed to kx ∈
// [0, n/2] before either transpose, halving the all-to-all volume.
func (p *PencilPlan) ForwardReal(in []float64) []complex128 {
	if len(in) != p.InSize() {
		panic(fmt.Sprintf("pfft: pencil real input %d, want %d", len(in), p.InSize()))
	}
	if p.rline == nil { // n == 1: the transform is the identity
		out := make([]complex128, p.SpecSize())
		for i := range out {
			out[i] = complex(in[i], 0)
		}
		return out
	}
	// r2c along x: strided lines indexed by (iy, iz), stride yc·zc.
	yczc := p.yc * p.zc
	ha := make([]complex128, p.nxh*yczc)
	p.pool.Run(yczc, func(w, lo, hi int) {
		realBuf, specBuf := p.wreal[w], p.wspec[w]
		for li := lo; li < hi; li++ {
			for k := 0; k < p.n; k++ {
				realBuf[k] = in[li+k*yczc]
			}
			p.rline[w].Forward(realBuf, specBuf)
			for k := 0; k < p.nxh; k++ {
				ha[li+k*yczc] = specBuf[k]
			}
		}
	})
	bArr := p.transposeAB(ha, p.layXh, p.xch)
	// FFT along y over the compressed-x extent.
	p.fftLines(bArr, p.xch*p.zc, func(li int) int {
		ix := li / p.zc
		iz := li % p.zc
		return ix*p.zc + iz
	}, p.xch*p.zc, false)
	cArr := p.transposeBC(bArr, p.xch)
	p.zLines(cArr, p.xch*p.yc2, false)
	return cArr
}

// InverseReal is the exact inverse of ForwardReal (1/n³ scaling included),
// reconstructing the real A-layout array from the half-spectrum.
func (p *PencilPlan) InverseReal(spec []complex128) []float64 {
	if len(spec) != p.SpecSize() {
		panic(fmt.Sprintf("pfft: pencil real input %d, want %d", len(spec), p.SpecSize()))
	}
	out := make([]float64, p.InSize())
	if p.rline == nil {
		for i := range out {
			out[i] = real(spec[i])
		}
		return out
	}
	cArr := append([]complex128(nil), spec...)
	p.zLines(cArr, p.xch*p.yc2, true)
	bArr := p.transposeCB(cArr, p.xch)
	p.fftLines(bArr, p.xch*p.zc, func(li int) int {
		ix := li / p.zc
		iz := li % p.zc
		return ix*p.zc + iz
	}, p.xch*p.zc, true)
	ha := p.transposeBA(bArr, p.layXh, p.xch)
	yczc := p.yc * p.zc
	p.pool.Run(yczc, func(w, lo, hi int) {
		realBuf, specBuf := p.wreal[w], p.wspec[w]
		for li := lo; li < hi; li++ {
			for k := 0; k < p.nxh; k++ {
				specBuf[k] = ha[li+k*yczc]
			}
			p.rline[w].Inverse(specBuf, realBuf)
			for k := 0; k < p.n; k++ {
				out[li+k*yczc] = realBuf[k]
			}
		}
	})
	return out
}

// transposeAB exchanges the full-x dimension for full-y within the row:
// A (full x = layX.N, yc, zc) → B (full y, xcl, zc) with B indexed
// (iy·xcl+ix)·zc+iz. layX describes how the x axis splits over the row
// (layY for the complex path, layXh for the compressed real path) and xcl
// is this rank's share of it. Send blocks are plan-owned and reused.
func (p *PencilPlan) transposeAB(a []complex128, layX Layout, xcl int) []complex128 {
	for ap := 0; ap < p.py; ap++ {
		xc, xo := layX.Count(ap), layX.Offset(ap)
		if xc == 0 || p.yc == 0 || p.zc == 0 {
			p.sendRow[ap] = nil
			continue
		}
		blk := growC(p.sendRow[ap], xc*p.yc*p.zc)
		t := 0
		for ix := xo; ix < xo+xc; ix++ {
			for iy := 0; iy < p.yc; iy++ {
				base := (ix*p.yc + iy) * p.zc
				copy(blk[t:t+p.zc], a[base:base+p.zc])
				t += p.zc
			}
		}
		p.sendRow[ap] = blk
	}
	recv := mpi.Alltoall(p.rowComm, p.sendRow)
	out := make([]complex128, p.n*xcl*p.zc)
	for ap := 0; ap < p.py; ap++ {
		ycp, yop := p.layY.Count(ap), p.layY.Offset(ap)
		blk := recv[ap]
		if len(blk) == 0 {
			continue
		}
		t := 0
		for ix := 0; ix < xcl; ix++ {
			for iy := yop; iy < yop+ycp; iy++ {
				base := (iy*xcl + ix) * p.zc
				copy(out[base:base+p.zc], blk[t:t+p.zc])
				t += p.zc
			}
		}
	}
	return out
}

// transposeBA is the inverse of transposeAB.
func (p *PencilPlan) transposeBA(bArr []complex128, layX Layout, xcl int) []complex128 {
	for ap := 0; ap < p.py; ap++ {
		ycp, yop := p.layY.Count(ap), p.layY.Offset(ap)
		if ycp == 0 || xcl == 0 || p.zc == 0 {
			p.sendRow[ap] = nil
			continue
		}
		blk := growC(p.sendRow[ap], xcl*ycp*p.zc)
		t := 0
		for ix := 0; ix < xcl; ix++ {
			for iy := yop; iy < yop+ycp; iy++ {
				base := (iy*xcl + ix) * p.zc
				copy(blk[t:t+p.zc], bArr[base:base+p.zc])
				t += p.zc
			}
		}
		p.sendRow[ap] = blk
	}
	recv := mpi.Alltoall(p.rowComm, p.sendRow)
	out := make([]complex128, layX.N*p.yc*p.zc)
	for ap := 0; ap < p.py; ap++ {
		xc, xo := layX.Count(ap), layX.Offset(ap)
		blk := recv[ap]
		if len(blk) == 0 {
			continue
		}
		t := 0
		for ix := xo; ix < xo+xc; ix++ {
			for iy := 0; iy < p.yc; iy++ {
				base := (ix*p.yc + iy) * p.zc
				copy(out[base:base+p.zc], blk[t:t+p.zc])
				t += p.zc
			}
		}
	}
	return out
}

// transposeBC exchanges the full-y dimension for full-z within the column:
// B (full y, xcl, zc) → C (xcl, yc2, full z) with C indexed (ix·yc2+iy)·n+iz.
// The x extent xcl rides along unchanged (xc or xch).
func (p *PencilPlan) transposeBC(bArr []complex128, xcl int) []complex128 {
	for bp := 0; bp < p.pz; bp++ {
		ycp, yop := p.layZ.Count(bp), p.layZ.Offset(bp)
		if ycp == 0 || xcl == 0 || p.zc == 0 {
			p.sendCol[bp] = nil
			continue
		}
		blk := growC(p.sendCol[bp], ycp*xcl*p.zc)
		t := 0
		for iy := yop; iy < yop+ycp; iy++ {
			for ix := 0; ix < xcl; ix++ {
				base := (iy*xcl + ix) * p.zc
				copy(blk[t:t+p.zc], bArr[base:base+p.zc])
				t += p.zc
			}
		}
		p.sendCol[bp] = blk
	}
	recv := mpi.Alltoall(p.colComm, p.sendCol)
	out := make([]complex128, xcl*p.yc2*p.n)
	for bp := 0; bp < p.pz; bp++ {
		zcp, zop := p.layZ.Count(bp), p.layZ.Offset(bp)
		blk := recv[bp]
		if len(blk) == 0 {
			continue
		}
		t := 0
		for iy := 0; iy < p.yc2; iy++ {
			for ix := 0; ix < xcl; ix++ {
				base := (ix*p.yc2+iy)*p.n + zop
				copy(out[base:base+zcp], blk[t:t+zcp])
				t += zcp
			}
		}
	}
	return out
}

// transposeCB is the inverse of transposeBC.
func (p *PencilPlan) transposeCB(cArr []complex128, xcl int) []complex128 {
	for bp := 0; bp < p.pz; bp++ {
		zcp, zop := p.layZ.Count(bp), p.layZ.Offset(bp)
		if zcp == 0 || xcl == 0 || p.yc2 == 0 {
			p.sendCol[bp] = nil
			continue
		}
		blk := growC(p.sendCol[bp], p.yc2*xcl*zcp)
		t := 0
		for iy := 0; iy < p.yc2; iy++ {
			for ix := 0; ix < xcl; ix++ {
				base := (ix*p.yc2+iy)*p.n + zop
				copy(blk[t:t+zcp], cArr[base:base+zcp])
				t += zcp
			}
		}
		p.sendCol[bp] = blk
	}
	recv := mpi.Alltoall(p.colComm, p.sendCol)
	out := make([]complex128, p.n*xcl*p.zc)
	for bp := 0; bp < p.pz; bp++ {
		ycp, yop := p.layZ.Count(bp), p.layZ.Offset(bp)
		blk := recv[bp]
		if len(blk) == 0 {
			continue
		}
		t := 0
		for iy := yop; iy < yop+ycp; iy++ {
			for ix := 0; ix < xcl; ix++ {
				base := (iy*xcl + ix) * p.zc
				copy(out[base:base+p.zc], blk[t:t+p.zc])
				t += p.zc
			}
		}
	}
	return out
}
