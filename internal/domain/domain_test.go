package domain

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"greem/internal/vec"
)

func TestUniformGeometry(t *testing.T) {
	g := Uniform(4, 3, 2, 1.0)
	if g.NumDomains() != 24 {
		t.Fatalf("NumDomains = %d", g.NumDomains())
	}
	lo, hi := g.Bounds(g.RankOf(1, 2, 0))
	if math.Abs(lo.X-0.25) > 1e-15 || math.Abs(hi.X-0.5) > 1e-15 {
		t.Errorf("x bounds %v %v", lo.X, hi.X)
	}
	if math.Abs(lo.Y-2.0/3) > 1e-15 {
		t.Errorf("y lo %v", lo.Y)
	}
	if lo.Z != 0 || math.Abs(hi.Z-0.5) > 1e-15 {
		t.Errorf("z bounds %v %v", lo.Z, hi.Z)
	}
}

func TestRankCellRoundTrip(t *testing.T) {
	g := Uniform(3, 4, 5, 1)
	for r := 0; r < g.NumDomains(); r++ {
		i, j, k := g.Cell(r)
		if g.RankOf(i, j, k) != r {
			t.Fatalf("round trip broken at %d", r)
		}
	}
}

func TestFindConsistentWithBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]vec.V3, 2000)
	for i := range pts {
		// Clustered: half uniform, half in a tight clump.
		if i%2 == 0 {
			pts[i] = vec.V3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		} else {
			pts[i] = vec.Wrap(vec.V3{X: 0.7 + 0.05*rng.NormFloat64(), Y: 0.3 + 0.05*rng.NormFloat64(), Z: 0.5 + 0.05*rng.NormFloat64()}, 1)
		}
	}
	g, err := FromSamples(4, 4, 2, 1, append([]vec.V3(nil), pts...))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pts {
		r := g.Find(p)
		lo, hi := g.Bounds(r)
		if p.X < lo.X || p.X > hi.X || p.Y < lo.Y || p.Y > hi.Y || p.Z < lo.Z || p.Z > hi.Z {
			t.Fatalf("point %v assigned to %d with bounds %v..%v", p, r, lo, hi)
		}
	}
}

func TestFromSamplesEqualizesCounts(t *testing.T) {
	// The decomposition must put nearly equal numbers of the *sampled*
	// points into every domain even for a strongly clustered distribution —
	// that is Fig. 3's point.
	rng := rand.New(rand.NewSource(2))
	n := 64000
	pts := make([]vec.V3, n)
	for i := range pts {
		switch i % 4 {
		case 0, 1:
			pts[i] = vec.V3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
		default: // two dense clumps, one hundred times denser than background
			c := vec.V3{X: 0.2, Y: 0.8, Z: 0.4}
			if i%4 == 3 {
				c = vec.V3{X: 0.75, Y: 0.25, Z: 0.6}
			}
			pts[i] = vec.Wrap(c.Add(vec.V3{X: 0.02 * rng.NormFloat64(), Y: 0.02 * rng.NormFloat64(), Z: 0.02 * rng.NormFloat64()}), 1)
		}
	}
	g, err := FromSamples(4, 4, 4, 1, append([]vec.V3(nil), pts...))
	if err != nil {
		t.Fatal(err)
	}
	loads := CountLoads(g, pts)
	imb := Imbalance(loads)
	if imb > 1.15 {
		t.Errorf("sampled decomposition imbalance %v, want ≤ 1.15", imb)
	}
	// Compare to the static uniform decomposition, which must be much worse.
	static := Imbalance(CountLoads(Uniform(4, 4, 4, 1), pts))
	if static < 3 {
		t.Errorf("clustered distribution should overload static domains (imb %v)", static)
	}
	t.Logf("imbalance: adaptive %.3f vs static %.1f", imb, static)
}

func TestEqualCountSplitDegenerate(t *testing.T) {
	// All points at the same coordinate must still give monotone boundaries.
	pts := make([]vec.V3, 100)
	for i := range pts {
		pts[i] = vec.V3{X: 0.5, Y: 0.5, Z: 0.5}
	}
	g, err := FromSamples(4, 2, 2, 1, pts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(g.BX); i++ {
		if g.BX[i] <= g.BX[i-1] {
			t.Fatalf("non-monotone BX: %v", g.BX)
		}
	}
}

func TestFromSamplesValidation(t *testing.T) {
	if _, err := FromSamples(0, 1, 1, 1, make([]vec.V3, 10)); err == nil {
		t.Error("accepted zero divisions")
	}
	if _, err := FromSamples(4, 4, 4, 1, make([]vec.V3, 10)); err == nil {
		t.Error("accepted too few samples")
	}
}

func TestMovingAverageConverges(t *testing.T) {
	// Averaging identical geometries returns the same geometry; averaging a
	// jump sequence lands between the extremes, weighted toward the recent.
	a := Uniform(2, 2, 2, 1)
	b := Uniform(2, 2, 2, 1)
	b.BX[1] = 0.7 // jumped boundary (a has 0.5)
	avg, err := MovingAverage([]*Geometry{a, a, a, a, b})
	if err != nil {
		t.Fatal(err)
	}
	// weights 1..5: (0.5·(1+2+3+4) + 0.7·5)/15 = (5 + 3.5)/15 ≈ 0.5667
	want := (0.5*10 + 0.7*5) / 15
	if math.Abs(avg.BX[1]-want) > 1e-12 {
		t.Errorf("BX[1] = %v, want %v", avg.BX[1], want)
	}
	// Outer faces stay pinned.
	if avg.BX[0] != 0 || avg.BX[2] != 1 {
		t.Errorf("outer faces moved: %v", avg.BX)
	}
	// The averaged jump is smaller than the raw jump (the smoothing claim).
	if math.Abs(avg.BX[1]-0.5) >= math.Abs(b.BX[1]-0.5) {
		t.Error("moving average did not damp the jump")
	}
}

func TestMovingAverageValidation(t *testing.T) {
	if _, err := MovingAverage(nil); err == nil {
		t.Error("accepted empty history")
	}
	if _, err := MovingAverage([]*Geometry{Uniform(2, 2, 2, 1), Uniform(2, 2, 4, 1)}); err == nil {
		t.Error("accepted mismatched divisions")
	}
}

func TestImbalance(t *testing.T) {
	if v := Imbalance([]float64{1, 1, 1, 1}); v != 1 {
		t.Errorf("uniform imbalance = %v", v)
	}
	if v := Imbalance([]float64{4, 0, 0, 0}); v != 4 {
		t.Errorf("concentrated imbalance = %v", v)
	}
	if v := Imbalance(nil); v != 1 {
		t.Errorf("empty imbalance = %v", v)
	}
	if v := Imbalance([]float64{0, 0}); v != 1 {
		t.Errorf("zero imbalance = %v", v)
	}
}

func TestSampleCounts(t *testing.T) {
	// Ranks with twice the cost get twice the samples.
	counts := SampleCounts(1000, []float64{1, 2, 1}, []int{10000, 10000, 10000})
	if counts[1] != 2*counts[0] {
		t.Errorf("cost-proportionality broken: %v", counts)
	}
	// Bounded by particle count and floor of 1.
	counts = SampleCounts(1000, []float64{1, 1000}, []int{5, 10000})
	if counts[0] < 1 || counts[0] > 5 {
		t.Errorf("bounds broken: %v", counts)
	}
	// Empty ranks get zero.
	counts = SampleCounts(100, []float64{1, 1}, []int{0, 50})
	if counts[0] != 0 {
		t.Errorf("empty rank sampled: %v", counts)
	}
	// All-zero costs fall back to uniform.
	counts = SampleCounts(100, []float64{0, 0}, []int{50, 50})
	if counts[0] == 0 || counts[1] == 0 {
		t.Errorf("zero-cost fallback broken: %v", counts)
	}
}

func TestLocateEdgeCases(t *testing.T) {
	b := []float64{0, 0.25, 0.5, 1}
	cases := []struct {
		x    float64
		want int
	}{
		{0, 0}, {0.1, 0}, {0.25, 1}, {0.3, 1}, {0.5, 2}, {0.99, 2}, {1.0, 2},
	}
	for _, c := range cases {
		if got := locate(b, c.x); got != c.want {
			t.Errorf("locate(%v) = %d, want %d", c.x, got, c.want)
		}
	}
}

func TestFromSamplesBoundariesMonotoneProperty(t *testing.T) {
	// testing/quick: for arbitrary point clouds, all boundary arrays are
	// strictly increasing and every point maps into a consistent domain.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 200 + rng.Intn(400)
		pts := make([]vec.V3, n)
		for i := range pts {
			// Mix of uniform and tightly clumped points, some duplicated.
			switch i % 3 {
			case 0:
				pts[i] = vec.V3{X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64()}
			case 1:
				pts[i] = vec.V3{X: 0.5, Y: 0.5, Z: 0.5}
			default:
				pts[i] = vec.Wrap(vec.V3{X: 0.2 + 0.01*rng.NormFloat64(), Y: 0.8 + 0.01*rng.NormFloat64(), Z: 0.5}, 1)
			}
		}
		g, err := FromSamples(3, 3, 2, 1, append([]vec.V3(nil), pts...))
		if err != nil {
			return false
		}
		mono := func(b []float64) bool {
			for i := 1; i < len(b); i++ {
				if b[i] <= b[i-1] {
					return false
				}
			}
			return true
		}
		if !mono(g.BX) {
			return false
		}
		for i := 0; i < g.Nx; i++ {
			if !mono(g.BY[i]) {
				return false
			}
			for j := 0; j < g.Ny; j++ {
				if !mono(g.BZ[i][j]) {
					return false
				}
			}
		}
		for _, p := range pts {
			r := g.Find(p)
			if r < 0 || r >= g.NumDomains() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
