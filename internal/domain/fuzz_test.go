package domain

import (
	"encoding/binary"
	"math"
	"testing"
)

// FuzzDecodeFlat feeds arbitrary float payloads (raw bytes reinterpreted in
// 8-byte chunks) through DecodeFlat. The decoder travels over mpi broadcast,
// so it must reject any malformed payload with an error — never panic, never
// allocate unboundedly — and anything it does accept must round-trip:
// re-encoding the decoded geometry and decoding again reproduces the exact
// same flat payload, bit for bit (NaN boundary planes included, hence the
// Float64bits comparison).
func FuzzDecodeFlat(f *testing.F) {
	// Seed with real geometries and near-miss corruptions of them.
	toBytes := func(data []float64) []byte {
		out := make([]byte, 8*len(data))
		for i, v := range data {
			binary.LittleEndian.PutUint64(out[8*i:], math.Float64bits(v))
		}
		return out
	}
	uni := Uniform(2, 2, 2, 1).EncodeFlat()
	f.Add(toBytes(uni))
	f.Add(toBytes(Uniform(1, 1, 1, 1).EncodeFlat()))
	f.Add(toBytes(Uniform(4, 2, 1, 2.5).EncodeFlat()))
	trunc := uni[:len(uni)-1]
	f.Add(toBytes(trunc))
	huge := append([]float64(nil), uni...)
	huge[0] = 1e300 // header overflow attempt
	f.Add(toBytes(huge))
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3}) // not a multiple of 8

	f.Fuzz(func(t *testing.T, raw []byte) {
		data := make([]float64, len(raw)/8)
		for i := range data {
			data[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		g, err := DecodeFlat(data)
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		re := g.EncodeFlat()
		g2, err := DecodeFlat(re)
		if err != nil {
			t.Fatalf("re-decode of accepted geometry failed: %v", err)
		}
		re2 := g2.EncodeFlat()
		if len(re) != len(re2) {
			t.Fatalf("round-trip length drift: %d vs %d", len(re), len(re2))
		}
		for i := range re {
			if math.Float64bits(re[i]) != math.Float64bits(re2[i]) {
				t.Fatalf("round-trip bit drift at %d: %x vs %x", i, math.Float64bits(re[i]), math.Float64bits(re2[i]))
			}
		}
		// Structural sanity on whatever was accepted.
		if g.NumDomains() != g.Nx*g.Ny*g.Nz {
			t.Fatalf("NumDomains %d != %d×%d×%d", g.NumDomains(), g.Nx, g.Ny, g.Nz)
		}
	})
}
