// Package domain implements the 3-D multi-section domain decomposition
// (Makino 2004) with the sampling method (Blackston & Suel 1997) and the
// cost-proportional load balancing of the paper (§II, Fig. 3):
//
//   - the box is cut into nx slabs in x, each slab independently into ny
//     bars in y, each bar independently into nz boxes in z, so every domain
//     is rectangular but boundaries adapt to the mass distribution;
//   - boundaries are placed so every domain holds the same number of
//     *sampled* particles, and each process's sampling rate is proportional
//     to its measured force-calculation time, which equalizes cost rather
//     than particle count;
//   - boundaries are smoothed with a linear weighted moving average over the
//     last five steps to suppress sampling-noise jumps.
package domain

import (
	"fmt"
	"sort"

	"greem/internal/vec"
)

// Geometry is a 3-D multisection decomposition of the periodic cube [0,L)³
// into Nx×Ny×Nz rectangular domains. BX has Nx+1 planes; BY[i] are the Ny+1
// y-planes inside x-slab i; BZ[i][j] are the Nz+1 z-planes inside bar (i,j).
type Geometry struct {
	Nx, Ny, Nz int
	L          float64
	BX         []float64
	BY         [][]float64
	BZ         [][][]float64
}

// NumDomains returns Nx·Ny·Nz.
func (g *Geometry) NumDomains() int { return g.Nx * g.Ny * g.Nz }

// RankOf maps a cell index triple to a rank.
func (g *Geometry) RankOf(i, j, k int) int { return (i*g.Ny+j)*g.Nz + k }

// Cell maps a rank to its cell index triple.
func (g *Geometry) Cell(rank int) (i, j, k int) {
	k = rank % g.Nz
	j = (rank / g.Nz) % g.Ny
	i = rank / (g.Ny * g.Nz)
	return
}

// Bounds returns the rectangular extent of a domain.
func (g *Geometry) Bounds(rank int) (lo, hi vec.V3) {
	i, j, k := g.Cell(rank)
	lo = vec.V3{X: g.BX[i], Y: g.BY[i][j], Z: g.BZ[i][j][k]}
	hi = vec.V3{X: g.BX[i+1], Y: g.BY[i][j+1], Z: g.BZ[i][j][k+1]}
	return
}

// Find returns the rank of the domain containing point p (components must be
// in [0, L)).
func (g *Geometry) Find(p vec.V3) int {
	i := locate(g.BX, p.X)
	j := locate(g.BY[i], p.Y)
	k := locate(g.BZ[i][j], p.Z)
	return g.RankOf(i, j, k)
}

// locate returns the interval index of x within ascending boundaries b
// (len ≥ 2), clamped to [0, len(b)-2].
func locate(b []float64, x float64) int {
	// sort.SearchFloat64s returns the first i with b[i] >= x.
	i := sort.SearchFloat64s(b, x)
	if i > 0 && (i >= len(b) || b[i] != x) {
		i--
	}
	if i > len(b)-2 {
		i = len(b) - 2
	}
	return i
}

// Uniform returns the static equal-volume decomposition (the baseline whose
// load imbalance motivates the sampling method).
func Uniform(nx, ny, nz int, l float64) *Geometry {
	g := &Geometry{Nx: nx, Ny: ny, Nz: nz, L: l}
	g.BX = linspace(0, l, nx+1)
	g.BY = make([][]float64, nx)
	g.BZ = make([][][]float64, nx)
	for i := 0; i < nx; i++ {
		g.BY[i] = linspace(0, l, ny+1)
		g.BZ[i] = make([][]float64, ny)
		for j := 0; j < ny; j++ {
			g.BZ[i][j] = linspace(0, l, nz+1)
		}
	}
	return g
}

func linspace(a, b float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = a + (b-a)*float64(i)/float64(n-1)
	}
	out[n-1] = b
	return out
}

// FromSamples builds a decomposition in which every domain contains (as
// nearly as possible) the same number of sample points. Sample points whose
// sampling rate was proportional to cost make this a cost-equalizing
// decomposition. Samples are consumed (reordered).
func FromSamples(nx, ny, nz int, l float64, pts []vec.V3) (*Geometry, error) {
	if nx < 1 || ny < 1 || nz < 1 {
		return nil, fmt.Errorf("domain: bad division %d×%d×%d", nx, ny, nz)
	}
	if len(pts) < nx*ny*nz {
		return nil, fmt.Errorf("domain: %d samples for %d domains", len(pts), nx*ny*nz)
	}
	g := &Geometry{Nx: nx, Ny: ny, Nz: nz, L: l}
	sort.Slice(pts, func(a, b int) bool { return pts[a].X < pts[b].X })
	xParts, bx := equalCountSplit(pts, nx, 0, l, func(p vec.V3) float64 { return p.X })
	g.BX = bx
	g.BY = make([][]float64, nx)
	g.BZ = make([][][]float64, nx)
	for i, slab := range xParts {
		sort.Slice(slab, func(a, b int) bool { return slab[a].Y < slab[b].Y })
		yParts, by := equalCountSplit(slab, ny, 0, l, func(p vec.V3) float64 { return p.Y })
		g.BY[i] = by
		g.BZ[i] = make([][]float64, ny)
		for j, bar := range yParts {
			sort.Slice(bar, func(a, b int) bool { return bar[a].Z < bar[b].Z })
			_, bz := equalCountSplit(bar, nz, 0, l, func(p vec.V3) float64 { return p.Z })
			g.BZ[i][j] = bz
		}
	}
	return g, nil
}

// equalCountSplit cuts sorted points into n consecutive groups of (almost)
// equal size, returning the groups and the n+1 boundary coordinates spanning
// [lo, hi]. Cuts fall midway between adjacent sample coordinates.
func equalCountSplit(pts []vec.V3, n int, lo, hi float64, coord func(vec.V3) float64) ([][]vec.V3, []float64) {
	parts := make([][]vec.V3, n)
	bounds := make([]float64, n+1)
	bounds[0] = lo
	bounds[n] = hi
	m := len(pts)
	prev := 0
	for k := 1; k < n; k++ {
		cut := (m*k + n/2) / n
		if cut <= prev {
			cut = prev + 1
		}
		if cut > m-(n-k) {
			cut = m - (n - k)
		}
		parts[k-1] = pts[prev:cut]
		if cut <= 0 || cut >= m {
			bounds[k] = lo + (hi-lo)*float64(k)/float64(n)
		} else {
			bounds[k] = 0.5 * (coord(pts[cut-1]) + coord(pts[cut]))
		}
		// Guard against non-monotonic boundaries from duplicate coordinates.
		if bounds[k] <= bounds[k-1] {
			bounds[k] = bounds[k-1] + 1e-12*(hi-lo)
		}
		prev = cut
	}
	parts[n-1] = pts[prev:]
	return parts, bounds
}

// MovingAverage returns a geometry whose boundary planes are the linear
// weighted moving average of the given history (most recent last, weights
// 1, 2, …, n as in the paper's five-step smoothing). All geometries must
// share the same division counts.
func MovingAverage(history []*Geometry) (*Geometry, error) {
	if len(history) == 0 {
		return nil, fmt.Errorf("domain: empty history")
	}
	ref := history[len(history)-1]
	for _, h := range history {
		if h.Nx != ref.Nx || h.Ny != ref.Ny || h.Nz != ref.Nz {
			return nil, fmt.Errorf("domain: mismatched divisions in history")
		}
	}
	g := &Geometry{Nx: ref.Nx, Ny: ref.Ny, Nz: ref.Nz, L: ref.L}
	var wsum float64
	for w := 1; w <= len(history); w++ {
		wsum += float64(w)
	}
	avg := func(get func(*Geometry) float64) float64 {
		var s float64
		for idx, h := range history {
			s += float64(idx+1) * get(h)
		}
		return s / wsum
	}
	g.BX = make([]float64, ref.Nx+1)
	for i := range g.BX {
		i := i
		g.BX[i] = avg(func(h *Geometry) float64 { return h.BX[i] })
	}
	g.BY = make([][]float64, ref.Nx)
	g.BZ = make([][][]float64, ref.Nx)
	for i := 0; i < ref.Nx; i++ {
		g.BY[i] = make([]float64, ref.Ny+1)
		for j := range g.BY[i] {
			i, j := i, j
			g.BY[i][j] = avg(func(h *Geometry) float64 { return h.BY[i][j] })
		}
		g.BZ[i] = make([][]float64, ref.Ny)
		for j := 0; j < ref.Ny; j++ {
			g.BZ[i][j] = make([]float64, ref.Nz+1)
			for k := range g.BZ[i][j] {
				i, j, k := i, j, k
				g.BZ[i][j][k] = avg(func(h *Geometry) float64 { return h.BZ[i][j][k] })
			}
		}
	}
	// Pin the outer faces exactly.
	g.BX[0], g.BX[ref.Nx] = 0, ref.L
	for i := 0; i < ref.Nx; i++ {
		g.BY[i][0], g.BY[i][ref.Ny] = 0, ref.L
		for j := 0; j < ref.Ny; j++ {
			g.BZ[i][j][0], g.BZ[i][j][ref.Nz] = 0, ref.L
		}
	}
	return g, nil
}

// Imbalance returns max(load)/mean(load) for per-domain loads; 1 is perfect.
func Imbalance(loads []float64) float64 {
	if len(loads) == 0 {
		return 1
	}
	var max, sum float64
	for _, v := range loads {
		if v > max {
			max = v
		}
		sum += v
	}
	if sum == 0 {
		return 1
	}
	return max / (sum / float64(len(loads)))
}

// CountLoads tallies how many of the given points fall in each domain.
func CountLoads(g *Geometry, pts []vec.V3) []float64 {
	loads := make([]float64, g.NumDomains())
	for _, p := range pts {
		loads[g.Find(p)]++
	}
	return loads
}

// SampleCounts allocates a total sample budget across ranks proportionally
// to their measured costs (the paper's cost-proportional sampling rate),
// guaranteeing at least one sample per non-empty rank and never more than
// the rank's particle count.
func SampleCounts(total int, costs []float64, nParticles []int) []int {
	n := len(costs)
	out := make([]int, n)
	var csum float64
	for i, c := range costs {
		if nParticles[i] > 0 && c > 0 {
			csum += c
		}
	}
	for i := range out {
		if nParticles[i] == 0 {
			continue
		}
		if csum == 0 {
			out[i] = total / n
		} else {
			out[i] = int(float64(total) * costs[i] / csum)
		}
		if out[i] < 1 {
			out[i] = 1
		}
		if out[i] > nParticles[i] {
			out[i] = nParticles[i]
		}
	}
	return out
}
