package domain

import "fmt"

// EncodeFlat serializes a geometry into a flat float64 slice (header of
// division counts and box size, then all boundary planes), so it can travel
// through an mpi broadcast.
func (g *Geometry) EncodeFlat() []float64 {
	out := []float64{float64(g.Nx), float64(g.Ny), float64(g.Nz), g.L}
	out = append(out, g.BX...)
	for i := 0; i < g.Nx; i++ {
		out = append(out, g.BY[i]...)
	}
	for i := 0; i < g.Nx; i++ {
		for j := 0; j < g.Ny; j++ {
			out = append(out, g.BZ[i][j]...)
		}
	}
	return out
}

// maxDivisions bounds the per-axis division count DecodeFlat accepts. Real
// geometries carry one division per process-grid axis; the bound keeps a
// corrupt header (huge or non-finite counts) from overflowing the expected
// payload length or provoking giant allocations.
const maxDivisions = 1 << 16

// DecodeFlat reverses EncodeFlat.
func DecodeFlat(data []float64) (*Geometry, error) {
	if len(data) < 4 {
		return nil, fmt.Errorf("domain: truncated geometry")
	}
	g := &Geometry{Nx: int(data[0]), Ny: int(data[1]), Nz: int(data[2]), L: data[3]}
	if g.Nx < 1 || g.Ny < 1 || g.Nz < 1 ||
		g.Nx > maxDivisions || g.Ny > maxDivisions || g.Nz > maxDivisions {
		return nil, fmt.Errorf("domain: bad divisions %d×%d×%d", g.Nx, g.Ny, g.Nz)
	}
	nx, ny, nz := int64(g.Nx), int64(g.Ny), int64(g.Nz)
	want := 4 + (nx + 1) + nx*(ny+1) + nx*ny*(nz+1)
	if int64(len(data)) != want {
		return nil, fmt.Errorf("domain: geometry payload %d, want %d", len(data), want)
	}
	pos := 4
	take := func(n int) []float64 {
		s := append([]float64(nil), data[pos:pos+n]...)
		pos += n
		return s
	}
	g.BX = take(g.Nx + 1)
	g.BY = make([][]float64, g.Nx)
	for i := 0; i < g.Nx; i++ {
		g.BY[i] = take(g.Ny + 1)
	}
	g.BZ = make([][][]float64, g.Nx)
	for i := 0; i < g.Nx; i++ {
		g.BZ[i] = make([][]float64, g.Ny)
		for j := 0; j < g.Ny; j++ {
			g.BZ[i][j] = take(g.Nz + 1)
		}
	}
	return g, nil
}
