package store

import (
	"errors"
	"syscall"
	"testing"
	"time"
)

// TestFaultPlanDeterministic: the same (Seed, Every) produces the same
// fault schedule — same ops fail, same kinds — across two fresh plans.
func TestFaultPlanDeterministic(t *testing.T) {
	run := func() []string {
		plan := &FaultPlan{Every: 3, Seed: 42, Sleep: func(time.Duration) {}}
		st := NewFaulty(NewMem(), plan.Hook)
		var outcomes []string
		for i := 0; i < 30; i++ {
			_, err := st.Put([]byte{byte(i)})
			switch {
			case err == nil:
				outcomes = append(outcomes, "ok")
			case errors.Is(err, syscall.EIO):
				outcomes = append(outcomes, "eio")
			case errors.Is(err, syscall.ENOSPC):
				outcomes = append(outcomes, "enospc")
			default:
				outcomes = append(outcomes, "other")
			}
		}
		return outcomes
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: %s vs %s — schedule not deterministic", i, a[i], b[i])
		}
	}
	errs := 0
	for _, o := range a {
		if o != "ok" {
			errs++
		}
	}
	if errs == 0 {
		t.Fatal("plan injected no errors in 30 ops at Every=3")
	}
}

// TestFaultPlanNeverConsecutive: with Every ≥ 2 two consecutive ops never
// both fail, so any retry layer with ≥ 2 attempts is guaranteed to recover.
func TestFaultPlanNeverConsecutive(t *testing.T) {
	plan := &FaultPlan{Every: 2, Seed: 7, Sleep: func(time.Duration) {}}
	st := NewFaulty(NewMem(), plan.Hook)
	prevFailed := false
	for i := 0; i < 200; i++ {
		_, err := st.Put([]byte{byte(i), byte(i >> 8)})
		failed := err != nil
		if failed && prevFailed {
			t.Fatalf("ops %d and %d both failed", i-1, i)
		}
		prevFailed = failed
	}
}

// TestFaultyTornPutNamed: failing the Link half of PutNamed leaves the blob
// committed but the name absent — the torn composite write recovery code
// must tolerate — and a plain retry of PutNamed repairs it.
func TestFaultyTornPutNamed(t *testing.T) {
	mem := NewMem()
	failLink := true
	st := NewFaulty(mem, func(op Op, key string) error {
		if op == OpLink && failLink {
			failLink = false
			return errors.New("injected link failure")
		}
		return nil
	})

	data := []byte("torn composite")
	if _, err := st.PutNamed("runs/x/blob", data); err == nil {
		t.Fatal("torn PutNamed reported success")
	}
	// Blob landed, name did not.
	if ok, _ := mem.Has(HashRef(data)); !ok {
		t.Fatal("blob missing after torn PutNamed")
	}
	if _, err := mem.Resolve("runs/x/blob"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("name resolved after torn PutNamed: %v", err)
	}
	// The retry repairs the tear idempotently.
	ref, err := st.PutNamed("runs/x/blob", data)
	if err != nil {
		t.Fatalf("repair PutNamed: %v", err)
	}
	if got, _ := mem.Resolve("runs/x/blob"); got != ref {
		t.Fatalf("name points at %.12s, want %.12s", got, ref)
	}
}

// TestFaultyLatencyInjection: latency-kind injections delay but succeed.
func TestFaultyLatencyInjection(t *testing.T) {
	var slept int
	plan := &FaultPlan{Every: 1, Seed: 0, Latency: time.Millisecond,
		Sleep: func(d time.Duration) { slept++ }}
	st := NewFaulty(NewMem(), plan.Hook)
	okCount := 0
	for i := 0; i < 50; i++ {
		if _, err := st.Put([]byte{byte(i), 0xff}); err == nil {
			okCount++
		}
	}
	if slept == 0 {
		t.Fatal("no latency injections in 50 always-fault ops")
	}
	if okCount != slept {
		t.Fatalf("ok ops %d != latency injections %d (latency must not error)", okCount, slept)
	}
	if plan.Injected() != 50 {
		t.Fatalf("injected %d, want 50 at Every=1", plan.Injected())
	}
}
