package store

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// FS is the filesystem-backed Store: blobs live under
// <root>/objects/<hex[:2]>/<hex[2:]> and names are plain files under
// <root>/names/<name> whose content is the linked ref. Every write is
// temp-file + rename in the destination directory, the same atomicity
// argument the checkpoint layer makes: a crash can never leave a
// half-written blob or link visible under its final name.
//
// The layout is deliberately object-store shaped (flat immutable objects,
// a separate name index, no partial writes), so an S3/MinIO-backed
// implementation of Store can replace it without changing callers.
type FS struct {
	root string
	// mu serializes link mutations; blob writes need no lock (a blob's
	// final path is a pure function of its content, and rename is atomic).
	mu sync.Mutex
}

// NewFS opens (creating if needed) a filesystem store rooted at root.
func NewFS(root string) (*FS, error) {
	for _, d := range []string{filepath.Join(root, "objects"), filepath.Join(root, "names")} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
	}
	return &FS{root: root}, nil
}

func (s *FS) objectPath(ref Ref) string {
	return filepath.Join(s.root, "objects", ref[:2], ref[2:])
}

func (s *FS) namePath(name string) string {
	return filepath.Join(s.root, "names", filepath.FromSlash(name))
}

// fsyncDir makes a directory entry mutation (a rename into dir) durable:
// on ext4 and friends, temp+fsync+rename alone guarantees the *file
// contents* survive a power cut, but the new directory entry itself lives
// in the parent directory's metadata and needs its own fsync. A var so the
// crash-point tests can count calls and inject failures.
var fsyncDir = func(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeCrashPoint, when non-nil, is consulted at named points inside
// writeAtomic; returning an error makes writeAtomic stop dead — no cleanup,
// no further syscalls — simulating the process (or the power) dying right
// there. Points: "fs/before-rename", "fs/after-rename". Test-only; nil in
// production costs one predicate.
var writeCrashPoint func(point string) error

// writeAtomic writes data to path via temp + fsync + rename + parent-dir
// fsync, creating parent directories as needed. The dir fsync is what makes
// the commit durable, not just atomic: without it a power cut after rename
// can roll the directory back to a state where the entry never existed.
func writeAtomic(path string, data []byte) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(err)
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if writeCrashPoint != nil {
		if err := writeCrashPoint("fs/before-rename"); err != nil {
			return err
		}
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	if writeCrashPoint != nil {
		if err := writeCrashPoint("fs/after-rename"); err != nil {
			return err
		}
	}
	// The rename landed; now pin the directory entry. On failure the caller
	// must treat the write as not committed (blobs are content-addressed and
	// links idempotent, so a retry re-commits the same state).
	if err := fsyncDir(filepath.Dir(path)); err != nil {
		return fmt.Errorf("sync parent dir: %w", err)
	}
	return nil
}

// Put stores data under its content address; already-present blobs are not
// rewritten (content addressing makes the existing bytes equivalent).
func (s *FS) Put(data []byte) (Ref, error) {
	ref := HashRef(data)
	path := s.objectPath(ref)
	if _, err := os.Stat(path); err == nil {
		return ref, nil
	}
	if err := writeAtomic(path, data); err != nil {
		return "", fmt.Errorf("store: put %.12s…: %w", ref, err)
	}
	return ref, nil
}

// Get returns the blob at ref.
func (s *FS) Get(ref Ref) ([]byte, error) {
	if err := checkRef(ref); err != nil {
		return nil, err
	}
	b, err := os.ReadFile(s.objectPath(ref))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, fmt.Errorf("blob %.12s…: %w", ref, ErrNotFound)
	}
	return b, err
}

// Has reports blob presence.
func (s *FS) Has(ref Ref) (bool, error) {
	if err := checkRef(ref); err != nil {
		return false, err
	}
	_, err := os.Stat(s.objectPath(ref))
	if err == nil {
		return true, nil
	}
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	return false, err
}

// Link points name at ref atomically.
func (s *FS) Link(name string, ref Ref) error {
	if err := checkName(name); err != nil {
		return err
	}
	if err := checkRef(ref); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := writeAtomic(s.namePath(name), []byte(ref)); err != nil {
		return fmt.Errorf("store: link %s: %w", name, err)
	}
	return nil
}

// Resolve returns the ref behind name.
func (s *FS) Resolve(name string) (Ref, error) {
	if err := checkName(name); err != nil {
		return "", err
	}
	b, err := os.ReadFile(s.namePath(name))
	if errors.Is(err, fs.ErrNotExist) {
		return "", fmt.Errorf("name %q: %w", name, ErrNotFound)
	}
	if err != nil {
		return "", err
	}
	ref := strings.TrimSpace(string(b))
	if err := checkRef(ref); err != nil {
		return "", fmt.Errorf("store: name %q holds a malformed ref: %w", name, err)
	}
	return ref, nil
}

// Unlink removes name; empty parent directories are pruned best-effort.
func (s *FS) Unlink(name string) error {
	if err := checkName(name); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.namePath(name)
	if err := os.Remove(path); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return fmt.Errorf("name %q: %w", name, ErrNotFound)
		}
		return err
	}
	root := filepath.Join(s.root, "names")
	for dir := filepath.Dir(path); dir != root; dir = filepath.Dir(dir) {
		if os.Remove(dir) != nil { // non-empty or still in use: stop
			break
		}
	}
	return nil
}

// List returns the linked names with the given prefix, sorted.
func (s *FS) List(prefix string) ([]string, error) {
	root := filepath.Join(s.root, "names")
	var out []string
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			// A concurrently pruned directory is not an error.
			if errors.Is(err, fs.ErrNotExist) {
				return nil
			}
			return err
		}
		if d.IsDir() || strings.HasPrefix(d.Name(), ".tmp-") {
			return nil
		}
		rel, rerr := filepath.Rel(root, path)
		if rerr != nil {
			return rerr
		}
		name := filepath.ToSlash(rel)
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	return out, nil
}

// PutNamed stores data and links name at it.
func (s *FS) PutNamed(name string, data []byte) (Ref, error) {
	ref, err := s.Put(data)
	if err != nil {
		return "", err
	}
	return ref, s.Link(name, ref)
}
