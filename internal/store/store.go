// Package store is the content-addressed product store behind the
// simulation service plane: every blob (checkpoint shard, manifest,
// snapshot, analysis product) is stored under the SHA-256 of its content,
// and human-meaningful names ("runs/<id>/snapshot/final") are mutable links
// onto those immutable refs. The split buys three properties the serving
// layer leans on:
//
//   - integrity is checkable end-to-end: a ref IS the hash, so a flipped
//     bit anywhere between disk and client is detectable by re-hashing
//     (Verify, VerifyNamed), independent of the CRC layers above;
//   - identical content deduplicates for free (a rerun that produces the
//     same snapshot bytes stores nothing new), and products cached by
//     content-derived names are safe to serve forever;
//   - the interface is object-store shaped (put/get/link/list — no seeks,
//     no partial writes), so a later S3/MinIO backend slots in without
//     touching callers.
//
// Implementations must be safe for concurrent use; the serving layer hits
// one Store from many HTTP handler goroutines at once.
package store

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"strings"
)

// Ref is a content address: the lowercase hex SHA-256 of the blob. It is a
// plain string alias so adjacent packages can accept refs without importing
// this package's type identity.
type Ref = string

// ErrNotFound reports a missing blob or name. Implementations wrap it, so
// callers test with errors.Is.
var ErrNotFound = errors.New("store: not found")

// ErrMalformed reports a request the store can never satisfy — a bad name
// or a non-hex ref. It is permanent by construction: retrying changes
// nothing, so the Retry wrapper refuses to.
var ErrMalformed = errors.New("store: malformed request")

// ErrUnavailable reports a backend that is failing fast instead of trying:
// the circuit breaker is open. Callers degrade (serve cached data, shed
// load) rather than retry into a sick disk.
var ErrUnavailable = errors.New("store: backend unavailable")

// Transient reports whether err is worth retrying: anything except a
// definitive miss (ErrNotFound), a request that can never succeed
// (ErrMalformed), a breaker that is already failing fast (ErrUnavailable),
// and an expired context. EIO, ENOSPC, latency-induced deadline slips on
// individual syscalls — everything a sick-but-recovering disk produces —
// count as transient.
func Transient(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrNotFound) || errors.Is(err, ErrMalformed) || errors.Is(err, ErrUnavailable) {
		return false
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	return true
}

// ContextStore is implemented by stores that can bind request contexts —
// deadline and cancellation propagation — to their operations. The base
// Store interface stays context-free so object-store-shaped backends and
// wrappers compose without threading ctx through every layer; callers that
// hold a request context use ForContext at the edge.
type ContextStore interface {
	Store
	// WithContext returns a view of the store whose operations observe ctx:
	// they fail fast once ctx is done and abort retry backoff sleeps early.
	WithContext(ctx context.Context) Store
}

// ForContext binds ctx to s when s supports it, else returns s unchanged.
func ForContext(ctx context.Context, s Store) Store {
	if cs, ok := s.(ContextStore); ok && ctx != nil {
		return cs.WithContext(ctx)
	}
	return s
}

// Store is a content-addressed blob store plus a mutable name→ref link
// layer. Blobs are immutable and keyed by content; names are the only
// mutable state.
type Store interface {
	// Put stores data and returns its content address. Storing the same
	// bytes twice is idempotent.
	Put(data []byte) (Ref, error)
	// Get returns the blob at ref, or an error wrapping ErrNotFound.
	Get(ref Ref) ([]byte, error)
	// Has reports whether the blob at ref is present.
	Has(ref Ref) (bool, error)

	// Link points name at ref, replacing any previous target.
	Link(name string, ref Ref) error
	// Resolve returns the ref name points at, or ErrNotFound.
	Resolve(name string) (Ref, error)
	// Unlink removes name (not the blob), or returns ErrNotFound.
	Unlink(name string) error
	// List returns every linked name with the given prefix, sorted.
	List(prefix string) ([]string, error)

	// PutNamed is Put followed by Link(name, ref) — the one-call path the
	// snapshot and product writers use.
	PutNamed(name string, data []byte) (Ref, error)
}

// HashRef returns the content address of data.
func HashRef(data []byte) Ref {
	h := sha256.Sum256(data)
	return hex.EncodeToString(h[:])
}

// Verify re-hashes data against ref, returning a descriptive error on
// mismatch — the last line of defense against bit rot between store and
// client.
func Verify(ref Ref, data []byte) error {
	if got := HashRef(data); got != ref {
		return fmt.Errorf("store: content of %.12s… hashes to %.12s… (corrupt blob)", ref, got)
	}
	return nil
}

// VerifyNamed re-walks every name under prefix, fetches its blob and
// re-hashes it against the linked ref. It returns the number of blobs
// checked and the first corruption or store error encountered — the
// store-level half of the run-integrity endpoint.
func VerifyNamed(s Store, prefix string) (checked int, err error) {
	names, err := s.List(prefix)
	if err != nil {
		return 0, err
	}
	for _, name := range names {
		ref, err := s.Resolve(name)
		if err != nil {
			return checked, fmt.Errorf("store: %s: %w", name, err)
		}
		data, err := s.Get(ref)
		if err != nil {
			return checked, fmt.Errorf("store: %s: %w", name, err)
		}
		if err := Verify(ref, data); err != nil {
			return checked, fmt.Errorf("store: %s: %w", name, err)
		}
		checked++
	}
	return checked, nil
}

// checkName rejects names that could escape a filesystem-backed name tree
// or alias each other after cleaning. Names use "/" separators.
func checkName(name string) error {
	if name == "" {
		return fmt.Errorf("%w: empty name", ErrMalformed)
	}
	if strings.HasPrefix(name, "/") || strings.HasSuffix(name, "/") {
		return fmt.Errorf("%w: name %q must not begin or end with '/'", ErrMalformed, name)
	}
	for _, part := range strings.Split(name, "/") {
		if part == "" || part == "." || part == ".." {
			return fmt.Errorf("%w: name %q has an empty or dot path element", ErrMalformed, name)
		}
	}
	return nil
}

// checkRef rejects malformed content addresses before they touch a
// filesystem path.
func checkRef(ref Ref) error {
	if len(ref) != sha256.Size*2 {
		return fmt.Errorf("%w: ref %q is not a SHA-256 hex digest", ErrMalformed, ref)
	}
	if _, err := hex.DecodeString(ref); err != nil {
		return fmt.Errorf("%w: ref %q is not hex: %v", ErrMalformed, ref, err)
	}
	return nil
}
