package store

import (
	"fmt"
	"sync"
	"syscall"
	"time"
)

// Op names one Store operation at a fault point, mirroring the named fault
// points of mpi.Comm.FaultPoint: a hook sees "which operation, on which
// key" and decides deterministically whether the disk is sick right now.
type Op string

const (
	OpPut     Op = "store/put"
	OpGet     Op = "store/get"
	OpHas     Op = "store/has"
	OpLink    Op = "store/link"
	OpResolve Op = "store/resolve"
	OpUnlink  Op = "store/unlink"
	OpList    Op = "store/list"
)

// Faulty wraps a Store with injectable failures, the storage-plane analogue
// of checkpoint.FaultFS and mpi.Comm.FaultPoint: every operation consults
// Hook before touching the base store, and a non-nil error aborts the
// operation as if the backend had failed. PutNamed decomposes into
// Put + Link through the wrapper, so a hook that fails the Link after the
// Put succeeded models a *partial* composite write — blob committed, name
// lost — exactly the torn state crash-recovery code must tolerate.
type Faulty struct {
	Base Store
	// Hook is called before each operation with the op and its key (ref,
	// name, or prefix). Safe-for-concurrent-use is the hook's problem;
	// FaultPlan.Hook qualifies.
	Hook func(op Op, key string) error
}

// NewFaulty wraps base with the given hook (nil hook passes everything).
func NewFaulty(base Store, hook func(op Op, key string) error) *Faulty {
	return &Faulty{Base: base, Hook: hook}
}

func (f *Faulty) fault(op Op, key string) error {
	if f.Hook == nil {
		return nil
	}
	return f.Hook(op, key)
}

func (f *Faulty) Put(data []byte) (Ref, error) {
	if err := f.fault(OpPut, HashRef(data)); err != nil {
		return "", err
	}
	return f.Base.Put(data)
}

func (f *Faulty) Get(ref Ref) ([]byte, error) {
	if err := f.fault(OpGet, ref); err != nil {
		return nil, err
	}
	return f.Base.Get(ref)
}

func (f *Faulty) Has(ref Ref) (bool, error) {
	if err := f.fault(OpHas, ref); err != nil {
		return false, err
	}
	return f.Base.Has(ref)
}

func (f *Faulty) Link(name string, ref Ref) error {
	if err := f.fault(OpLink, name); err != nil {
		return err
	}
	return f.Base.Link(name, ref)
}

func (f *Faulty) Resolve(name string) (Ref, error) {
	if err := f.fault(OpResolve, name); err != nil {
		return "", err
	}
	return f.Base.Resolve(name)
}

func (f *Faulty) Unlink(name string) error {
	if err := f.fault(OpUnlink, name); err != nil {
		return err
	}
	return f.Base.Unlink(name)
}

func (f *Faulty) List(prefix string) ([]string, error) {
	if err := f.fault(OpList, prefix); err != nil {
		return nil, err
	}
	return f.Base.List(prefix)
}

// PutNamed goes through the wrapper's own Put and Link so each half is a
// separate fault point: failing the Link after the Put models a torn
// composite write (blob present, name absent).
func (f *Faulty) PutNamed(name string, data []byte) (Ref, error) {
	ref, err := f.Put(data)
	if err != nil {
		return "", err
	}
	return ref, f.Link(name, ref)
}

// FaultPlan is a deterministic seeded fault schedule: it fails every Nth
// operation it sees, cycling the failure mode (EIO, ENOSPC, latency spike)
// by a splitmix64 stream over the seed. Determinism is the point — a chaos
// drill that fails is replayable bit for bit from (Seed, Every) — and the
// every-Nth shape guarantees failures are never consecutive (for Every ≥ 2),
// so a retry layer with ≥ 2 attempts always recovers: the drill proves
// retries mask faults, not that faults were lucky enough to miss.
type FaultPlan struct {
	Every   int           // fail every Nth op; 0 or 1-with-no-seed ⇒ never
	Seed    uint64        // selects the failure mode per injection
	Latency time.Duration // sleep for latency-spike injections (0 ⇒ 2ms)
	// Sleep is the latency injector, injectable for tests (nil ⇒ time.Sleep).
	Sleep func(time.Duration)

	mu       sync.Mutex
	n        int64 // operations seen
	injected int64 // faults injected (latency spikes included)
}

// Injected returns the number of faults injected so far.
func (p *FaultPlan) Injected() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.injected
}

// splitmix64 is the same tiny PRNG the sim's RNG state machinery uses.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hook is the fault decision: plug into Faulty.Hook.
func (p *FaultPlan) Hook(op Op, key string) error {
	if p.Every <= 0 {
		return nil
	}
	p.mu.Lock()
	p.n++
	fire := p.n%int64(p.Every) == 0
	var kind uint64
	if fire {
		p.injected++
		kind = splitmix64(p.Seed+uint64(p.n)) % 3
	}
	lat := p.Latency
	if lat == 0 {
		lat = 2 * time.Millisecond
	}
	sleep := p.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	p.mu.Unlock()
	if !fire {
		return nil
	}
	switch kind {
	case 0:
		return fmt.Errorf("store: %s %.24q: injected %w", op, key, syscall.EIO)
	case 1:
		return fmt.Errorf("store: %s %.24q: injected %w", op, key, syscall.ENOSPC)
	default:
		sleep(lat) // latency spike: slow, but not an error
		return nil
	}
}
