package store

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Mem is the in-memory Store used by tests and by daemon configurations
// that do not need persistence. Safe for concurrent use.
type Mem struct {
	mu    sync.RWMutex
	blobs map[Ref][]byte
	names map[string]Ref
}

// NewMem returns an empty in-memory store.
func NewMem() *Mem {
	return &Mem{blobs: make(map[Ref][]byte), names: make(map[string]Ref)}
}

// Put stores data under its content address.
func (m *Mem) Put(data []byte) (Ref, error) {
	ref := HashRef(data)
	m.mu.Lock()
	if _, ok := m.blobs[ref]; !ok {
		m.blobs[ref] = append([]byte(nil), data...)
	}
	m.mu.Unlock()
	return ref, nil
}

// Get returns a copy of the blob at ref.
func (m *Mem) Get(ref Ref) ([]byte, error) {
	m.mu.RLock()
	b, ok := m.blobs[ref]
	m.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("blob %.12s…: %w", ref, ErrNotFound)
	}
	return append([]byte(nil), b...), nil
}

// Has reports blob presence.
func (m *Mem) Has(ref Ref) (bool, error) {
	m.mu.RLock()
	_, ok := m.blobs[ref]
	m.mu.RUnlock()
	return ok, nil
}

// Link points name at ref.
func (m *Mem) Link(name string, ref Ref) error {
	if err := checkName(name); err != nil {
		return err
	}
	m.mu.Lock()
	m.names[name] = ref
	m.mu.Unlock()
	return nil
}

// Resolve returns the ref behind name.
func (m *Mem) Resolve(name string) (Ref, error) {
	m.mu.RLock()
	ref, ok := m.names[name]
	m.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("name %q: %w", name, ErrNotFound)
	}
	return ref, nil
}

// Unlink removes name.
func (m *Mem) Unlink(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.names[name]; !ok {
		return fmt.Errorf("name %q: %w", name, ErrNotFound)
	}
	delete(m.names, name)
	return nil
}

// List returns the linked names with the given prefix, sorted.
func (m *Mem) List(prefix string) ([]string, error) {
	m.mu.RLock()
	var out []string
	for name := range m.names {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	m.mu.RUnlock()
	sort.Strings(out)
	return out, nil
}

// PutNamed stores data and links name at it.
func (m *Mem) PutNamed(name string, data []byte) (Ref, error) {
	ref, err := m.Put(data)
	if err != nil {
		return "", err
	}
	return ref, m.Link(name, ref)
}

// Mutate applies fn to the stored bytes of ref in place, deliberately
// desynchronizing content from address. It exists for fault-injection
// tests (the integrity endpoint must reject a store blob with one flipped
// bit) in the same spirit as checkpoint.FaultFS; production code has no
// business calling it. Returns ErrNotFound if the blob is absent.
func (m *Mem) Mutate(ref Ref, fn func(data []byte)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	b, ok := m.blobs[ref]
	if !ok {
		return fmt.Errorf("blob %.12s…: %w", ref, ErrNotFound)
	}
	fn(b)
	return nil
}
