package store

import (
	"errors"
	"testing"
	"time"
)

// sickStore fails every op with a transient error while sick is true.
type sickStore struct {
	Store
	sick  bool
	calls int
}

func (s *sickStore) Get(ref Ref) ([]byte, error) {
	s.calls++
	if s.sick {
		return nil, errors.New("disk on fire")
	}
	return s.Store.Get(ref)
}

func TestBreakerTripsAndFailsFast(t *testing.T) {
	now := time.Unix(0, 0)
	sick := &sickStore{Store: NewMem(), sick: true}
	b := NewBreaker(sick, BreakerConfig{Threshold: 3, Cooldown: time.Second,
		Now: func() time.Time { return now }})

	ref := HashRef([]byte("x"))
	for i := 0; i < 3; i++ {
		if _, err := b.Get(ref); err == nil {
			t.Fatalf("sick op %d succeeded", i)
		}
	}
	if b.State() != BreakerOpen || b.Trips() != 1 {
		t.Fatalf("state %v trips %d after threshold, want open/1", b.State(), b.Trips())
	}

	// Open: operations fail fast with ErrUnavailable, never touching the disk.
	base := sick.calls
	for i := 0; i < 10; i++ {
		if _, err := b.Get(ref); !errors.Is(err, ErrUnavailable) {
			t.Fatalf("open breaker returned %v", err)
		}
	}
	if sick.calls != base {
		t.Fatalf("open breaker let %d ops through", sick.calls-base)
	}
	if b.FastFails() != 10 {
		t.Fatalf("fast fails %d, want 10", b.FastFails())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	now := time.Unix(0, 0)
	sick := &sickStore{Store: NewMem(), sick: true}
	b := NewBreaker(sick, BreakerConfig{Threshold: 2, Cooldown: time.Second,
		Now: func() time.Time { return now }})
	ref, _ := sick.Store.Put([]byte("payload"))

	b.Get(ref)
	b.Get(ref) // trips
	if b.State() != BreakerOpen {
		t.Fatalf("state %v, want open", b.State())
	}

	// Cooldown passes; the next op probes — disk still sick → reopen.
	now = now.Add(time.Second)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown %v, want half-open", b.State())
	}
	if _, err := b.Get(ref); err == nil || errors.Is(err, ErrUnavailable) {
		t.Fatalf("probe should hit the disk and fail honestly: %v", err)
	}
	if b.State() != BreakerOpen || b.Trips() != 2 {
		t.Fatalf("failed probe: state %v trips %d, want open/2", b.State(), b.Trips())
	}

	// Second cooldown; the disk recovers; probe succeeds → closed.
	now = now.Add(time.Second)
	sick.sick = false
	got, err := b.Get(ref)
	if err != nil || string(got) != "payload" {
		t.Fatalf("recovered probe: %q, %v", got, err)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state after good probe %v, want closed", b.State())
	}
}

// TestBreakerNotFoundIsHealthy: a definitive miss never counts toward the
// trip threshold — a healthy disk saying "no" is not a failure.
func TestBreakerNotFoundIsHealthy(t *testing.T) {
	b := NewBreaker(NewMem(), BreakerConfig{Threshold: 2})
	for i := 0; i < 20; i++ {
		if _, err := b.Get(HashRef([]byte{byte(i)})); !errors.Is(err, ErrNotFound) {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if b.State() != BreakerClosed || b.Trips() != 0 {
		t.Fatalf("misses tripped the breaker: state %v trips %d", b.State(), b.Trips())
	}
}

// TestRetryOverBreakerFailsFastWhenOpen: the production stack order —
// Retry(Breaker(backend)) — does not burn its attempt budget against an
// open breaker.
func TestRetryOverBreakerFailsFastWhenOpen(t *testing.T) {
	now := time.Unix(0, 0)
	sick := &sickStore{Store: NewMem(), sick: true}
	b := NewBreaker(sick, BreakerConfig{Threshold: 1, Cooldown: time.Hour,
		Now: func() time.Time { return now }})
	r := NewRetry(b, RetryConfig{Attempts: 5, Sleep: noSleep})

	r.Get(HashRef([]byte("x"))) // trips the breaker (and burns retries)
	base := sick.calls
	retries := r.Retries()
	if _, err := r.Get(HashRef([]byte("y"))); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("want ErrUnavailable through the stack, got %v", err)
	}
	if sick.calls != base {
		t.Fatal("open breaker let the retry layer reach the disk")
	}
	if r.Retries() != retries {
		t.Fatalf("retry layer re-attempted an open breaker %d times", r.Retries()-retries)
	}
}
