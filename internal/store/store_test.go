package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// implementations returns one fresh store per implementation, so every
// conformance test runs against both.
func implementations(t *testing.T) map[string]Store {
	t.Helper()
	fsStore, err := NewFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{"mem": NewMem(), "fs": fsStore}
}

func TestPutGetRoundTrip(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			data := []byte("snapshot payload")
			ref, err := s.Put(data)
			if err != nil {
				t.Fatal(err)
			}
			want := sha256.Sum256(data)
			if ref != hex.EncodeToString(want[:]) {
				t.Fatalf("ref %s is not the sha256 of the content", ref)
			}
			got, err := s.Get(ref)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, data) {
				t.Fatalf("got %q, want %q", got, data)
			}
			// Idempotent re-put.
			ref2, err := s.Put(data)
			if err != nil || ref2 != ref {
				t.Fatalf("re-put: ref %s err %v", ref2, err)
			}
			if ok, err := s.Has(ref); err != nil || !ok {
				t.Fatalf("Has(%s) = %v, %v", ref, ok, err)
			}
			if ok, err := s.Has(HashRef([]byte("absent"))); err != nil || ok {
				t.Fatalf("Has(absent) = %v, %v", ok, err)
			}
		})
	}
}

func TestGetMissing(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			if _, err := s.Get(HashRef([]byte("nope"))); !errors.Is(err, ErrNotFound) {
				t.Fatalf("want ErrNotFound, got %v", err)
			}
			if _, err := s.Resolve("no/such/name"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("want ErrNotFound, got %v", err)
			}
			if err := s.Unlink("no/such/name"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("want ErrNotFound, got %v", err)
			}
		})
	}
}

func TestLinkResolveList(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			refA, _ := s.Put([]byte("a"))
			refB, _ := s.Put([]byte("b"))
			if _, err := s.PutNamed("runs/1/snapshot/final", []byte("snap")); err != nil {
				t.Fatal(err)
			}
			if err := s.Link("runs/1/ckpt/MANIFEST", refA); err != nil {
				t.Fatal(err)
			}
			if err := s.Link("runs/2/ckpt/MANIFEST", refB); err != nil {
				t.Fatal(err)
			}
			got, err := s.List("runs/1/")
			if err != nil {
				t.Fatal(err)
			}
			want := []string{"runs/1/ckpt/MANIFEST", "runs/1/snapshot/final"}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("List = %v, want %v", got, want)
			}
			// Relink replaces the target.
			if err := s.Link("runs/1/ckpt/MANIFEST", refB); err != nil {
				t.Fatal(err)
			}
			if ref, _ := s.Resolve("runs/1/ckpt/MANIFEST"); ref != refB {
				t.Fatalf("after relink: %s, want %s", ref, refB)
			}
			if err := s.Unlink("runs/1/ckpt/MANIFEST"); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Resolve("runs/1/ckpt/MANIFEST"); !errors.Is(err, ErrNotFound) {
				t.Fatalf("resolve after unlink: %v", err)
			}
			// The blob outlives the link.
			if ok, _ := s.Has(refA); !ok {
				t.Fatal("unlink must not remove the blob")
			}
		})
	}
}

func TestBadNamesRejected(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			ref, _ := s.Put([]byte("x"))
			for _, bad := range []string{"", "/abs", "trail/", "a//b", "a/../b", "."} {
				if err := s.Link(bad, ref); err == nil {
					t.Errorf("Link(%q) accepted", bad)
				}
			}
		})
	}
}

func TestVerifyNamedDetectsTamper(t *testing.T) {
	m := NewMem()
	ref, err := m.PutNamed("runs/1/shard", []byte("precious bits"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.PutNamed("runs/1/manifest", []byte("meta")); err != nil {
		t.Fatal(err)
	}
	if n, err := VerifyNamed(m, "runs/1/"); err != nil || n != 2 {
		t.Fatalf("clean store: checked %d, err %v", n, err)
	}
	// One flipped bit must be rejected.
	if err := m.Mutate(ref, func(b []byte) { b[3] ^= 0x10 }); err != nil {
		t.Fatal(err)
	}
	if _, err := VerifyNamed(m, "runs/1/"); err == nil {
		t.Fatal("VerifyNamed accepted a flipped bit")
	}
}

func TestFSSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := s1.PutNamed("runs/1/snapshot/final", []byte("persist me"))
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Resolve("runs/1/snapshot/final")
	if err != nil || got != ref {
		t.Fatalf("after reopen: %s, %v", got, err)
	}
	if b, err := s2.Get(ref); err != nil || string(b) != "persist me" {
		t.Fatalf("after reopen: %q, %v", b, err)
	}
}

func TestConcurrentPutLink(t *testing.T) {
	for name, s := range implementations(t) {
		t.Run(name, func(t *testing.T) {
			var wg sync.WaitGroup
			for i := 0; i < 16; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					data := []byte(fmt.Sprintf("blob %d", i%4))
					if _, err := s.PutNamed(fmt.Sprintf("n/%d", i), data); err != nil {
						t.Error(err)
					}
				}(i)
			}
			wg.Wait()
			names, err := s.List("n/")
			if err != nil || len(names) != 16 {
				t.Fatalf("List: %d names, err %v", len(names), err)
			}
		})
	}
}

func TestCountingCounts(t *testing.T) {
	c := NewCounting(NewMem())
	ref, _ := c.PutNamed("a", []byte("x"))
	c.Get(ref)
	c.Get(ref)
	c.Resolve("a")
	c.List("")
	if c.Puts() != 1 || c.Gets() != 2 || c.Resolves() != 1 || c.Lists() != 1 {
		t.Fatalf("counts: puts=%d gets=%d resolves=%d lists=%d", c.Puts(), c.Gets(), c.Resolves(), c.Lists())
	}
}
