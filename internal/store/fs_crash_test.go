package store

import (
	"errors"
	"path/filepath"
	"strings"
	"testing"
)

// The crash-point seams are package globals; these tests must not run in
// parallel with each other or with anything that writes through FS.

func withCrashPoint(t *testing.T, hook func(point string) error) {
	t.Helper()
	writeCrashPoint = hook
	t.Cleanup(func() { writeCrashPoint = nil })
}

func withFsyncDir(t *testing.T, hook func(dir string) error) {
	t.Helper()
	prev := fsyncDir
	fsyncDir = hook
	t.Cleanup(func() { fsyncDir = prev })
}

// TestFSCrashBeforeRename: dying before the rename leaves nothing visible —
// the reopened store has neither the blob nor the name, and a plain retry
// commits cleanly.
func TestFSCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("power cut")
	withCrashPoint(t, func(point string) error {
		if point == "fs/before-rename" {
			return boom
		}
		return nil
	})

	data := []byte("doomed write")
	if _, err := st.PutNamed("runs/x/snapshot", data); !errors.Is(err, boom) {
		t.Fatalf("PutNamed through a crash: %v", err)
	}

	// "Reboot": a fresh store over the same directory.
	writeCrashPoint = nil
	st2, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ok, _ := st2.Has(HashRef(data)); ok {
		t.Fatal("blob visible after pre-rename crash")
	}
	if _, err := st2.Resolve("runs/x/snapshot"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("name after pre-rename crash: %v", err)
	}
	ref, err := st2.PutNamed("runs/x/snapshot", data)
	if err != nil {
		t.Fatalf("retry after crash: %v", err)
	}
	if got, err := st2.Resolve("runs/x/snapshot"); err != nil || got != ref {
		t.Fatalf("retry resolve: %q, %v", got, err)
	}
}

// TestFSCrashAfterRename: dying between the rename and the parent-dir fsync
// reports failure to the caller (the commit is not yet durable), but the
// reopened store sees a fully valid blob+name — the retry is a no-op rather
// than a corruption.
func TestFSCrashAfterRename(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("power cut")
	withCrashPoint(t, func(point string) error {
		if point == "fs/after-rename" {
			return boom
		}
		return nil
	})

	data := []byte("almost durable")
	if _, err := st.Put(data); !errors.Is(err, boom) {
		t.Fatalf("Put through a post-rename crash: %v", err)
	}

	writeCrashPoint = nil
	st2, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := st2.Get(HashRef(data))
	if err != nil || string(got) != string(data) {
		t.Fatalf("blob after post-rename crash: %q, %v", got, err)
	}
}

// TestFSFsyncDirOnCommit: both halves of PutNamed — the blob write under
// objects/ and the link write under names/ — fsync their parent directory,
// and an fsync failure surfaces as an error (the caller must not treat the
// write as committed).
func TestFSFsyncDirOnCommit(t *testing.T) {
	dir := t.TempDir()
	st, err := NewFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	var synced []string
	withFsyncDir(t, func(d string) error {
		rel, _ := filepath.Rel(dir, d)
		synced = append(synced, filepath.ToSlash(rel))
		return nil
	})

	if _, err := st.PutNamed("runs/y/blob", []byte("pin me")); err != nil {
		t.Fatal(err)
	}
	var objectDirs, nameDirs int
	for _, d := range synced {
		switch {
		case strings.HasPrefix(d, "objects/"):
			objectDirs++
		case strings.HasPrefix(d, "names/"):
			nameDirs++
		default:
			t.Fatalf("fsync of unexpected directory %q", d)
		}
	}
	if objectDirs != 1 || nameDirs != 1 {
		t.Fatalf("fsyncs: %v — want one under objects/ and one under names/", synced)
	}

	withFsyncDir(t, func(string) error { return errors.New("journal full") })
	if _, err := st.Put([]byte("unpinned")); err == nil || !strings.Contains(err.Error(), "sync parent dir") {
		t.Fatalf("Put with failing dir fsync: %v", err)
	}
	if err := st.Link("runs/y/blob2", HashRef([]byte("pin me"))); err == nil {
		t.Fatal("Link with failing dir fsync reported success")
	}
}
