package store

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// BreakerState is the circuit breaker's state machine position.
type BreakerState int32

const (
	BreakerClosed   BreakerState = iota // healthy: operations pass through
	BreakerHalfOpen                     // cooling down: one probe in flight
	BreakerOpen                         // sick: fail fast with ErrUnavailable
)

// String returns the conventional breaker-state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	return "unknown"
}

// BreakerConfig tunes the Breaker. Zero values select defaults.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that trips the
	// breaker open (0 ⇒ 5).
	Threshold int
	// Cooldown is how long the breaker stays open before letting one probe
	// through (0 ⇒ 2s).
	Cooldown time.Duration
	// Now is the clock, injectable for tests (nil ⇒ time.Now).
	Now func() time.Time
}

// Breaker is a circuit breaker around a Store backend. Closed, it passes
// operations through and counts consecutive failures; at Threshold it trips
// Open and every operation fails fast with ErrUnavailable — a sick disk
// costs callers nanoseconds instead of hanging the whole request herd on
// queued I/O. After Cooldown one probe operation is admitted (HalfOpen):
// success closes the breaker, failure re-opens it for another cooldown.
//
// Failures counted are the Transient kind only: an ErrNotFound is a
// definitive answer from a healthy disk, not a symptom.
type Breaker struct {
	base Store
	cfg  BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	fails    int       // consecutive transient failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight

	trips     atomic.Int64
	fastFails atomic.Int64
}

// NewBreaker wraps base.
func NewBreaker(base Store, cfg BreakerConfig) *Breaker {
	if cfg.Threshold == 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown == 0 {
		cfg.Cooldown = 2 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{base: base, cfg: cfg}
}

// State returns the current breaker state (the greem_store_breaker_state
// gauge: 0 closed, 1 half-open, 2 open).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	// An expired cooldown reads as half-open: the next operation will probe.
	if b.state == BreakerOpen && b.cfg.Now().Sub(b.openedAt) >= b.cfg.Cooldown {
		return BreakerHalfOpen
	}
	return b.state
}

// Trips returns how many times the breaker has tripped open.
func (b *Breaker) Trips() int64 { return b.trips.Load() }

// FastFails returns how many operations were refused while open.
func (b *Breaker) FastFails() int64 { return b.fastFails.Load() }

// admit decides whether an operation may touch the backend; the returned
// probe flag marks the single half-open probe.
func (b *Breaker) admit() (probe bool, err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return false, nil
	case BreakerOpen:
		if b.cfg.Now().Sub(b.openedAt) < b.cfg.Cooldown {
			b.fastFails.Add(1)
			return false, fmt.Errorf("%w: circuit breaker open (%d consecutive failures)", ErrUnavailable, b.cfg.Threshold)
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true, nil
	case BreakerHalfOpen:
		if b.probing {
			b.fastFails.Add(1)
			return false, fmt.Errorf("%w: circuit breaker half-open, probe in flight", ErrUnavailable)
		}
		b.probing = true
		return true, nil
	}
	return false, nil
}

// settle records an operation outcome.
func (b *Breaker) settle(probe bool, err error) {
	failed := Transient(err) // nil and definitive answers are successes
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		if failed {
			b.state = BreakerOpen
			b.openedAt = b.cfg.Now()
			b.trips.Add(1)
		} else {
			b.state = BreakerClosed
			b.fails = 0
		}
		return
	}
	if b.state != BreakerClosed {
		return // a straggler from before the trip; the probe owns recovery
	}
	if failed {
		b.fails++
		if b.fails >= b.cfg.Threshold {
			b.state = BreakerOpen
			b.openedAt = b.cfg.Now()
			b.trips.Add(1)
		}
	} else {
		b.fails = 0
	}
}

func (b *Breaker) do(op func() error) error {
	probe, err := b.admit()
	if err != nil {
		return err
	}
	err = op()
	b.settle(probe, err)
	return err
}

func (b *Breaker) Put(data []byte) (Ref, error) {
	var ref Ref
	err := b.do(func() (e error) { ref, e = b.base.Put(data); return })
	return ref, err
}

func (b *Breaker) Get(ref Ref) ([]byte, error) {
	var out []byte
	err := b.do(func() (e error) { out, e = b.base.Get(ref); return })
	return out, err
}

func (b *Breaker) Has(ref Ref) (bool, error) {
	var ok bool
	err := b.do(func() (e error) { ok, e = b.base.Has(ref); return })
	return ok, err
}

func (b *Breaker) Link(name string, ref Ref) error {
	return b.do(func() error { return b.base.Link(name, ref) })
}

func (b *Breaker) Resolve(name string) (Ref, error) {
	var ref Ref
	err := b.do(func() (e error) { ref, e = b.base.Resolve(name); return })
	return ref, err
}

func (b *Breaker) Unlink(name string) error {
	return b.do(func() error { return b.base.Unlink(name) })
}

func (b *Breaker) List(prefix string) ([]string, error) {
	var names []string
	err := b.do(func() (e error) { names, e = b.base.List(prefix); return })
	return names, err
}

func (b *Breaker) PutNamed(name string, data []byte) (Ref, error) {
	var ref Ref
	err := b.do(func() (e error) { ref, e = b.base.PutNamed(name, data); return })
	return ref, err
}
