package store

import "sync/atomic"

// Counting wraps a Store and counts operations, so tests (and the serving
// layer's metrics) can assert properties like "N concurrent identical
// product fetches cost exactly one underlying store read" — the contract
// the singleflight batching in internal/serve exists to provide.
type Counting struct {
	Base Store

	gets, puts, resolves, lists atomic.Int64
}

// NewCounting wraps base with zeroed counters.
func NewCounting(base Store) *Counting { return &Counting{Base: base} }

// Gets returns the number of Get calls observed.
func (c *Counting) Gets() int64 { return c.gets.Load() }

// Puts returns the number of Put/PutNamed blob writes observed.
func (c *Counting) Puts() int64 { return c.puts.Load() }

// Resolves returns the number of Resolve calls observed.
func (c *Counting) Resolves() int64 { return c.resolves.Load() }

// Lists returns the number of List calls observed.
func (c *Counting) Lists() int64 { return c.lists.Load() }

func (c *Counting) Put(data []byte) (Ref, error) {
	c.puts.Add(1)
	return c.Base.Put(data)
}

func (c *Counting) Get(ref Ref) ([]byte, error) {
	c.gets.Add(1)
	return c.Base.Get(ref)
}

func (c *Counting) Has(ref Ref) (bool, error) { return c.Base.Has(ref) }

func (c *Counting) Link(name string, ref Ref) error { return c.Base.Link(name, ref) }

func (c *Counting) Resolve(name string) (Ref, error) {
	c.resolves.Add(1)
	return c.Base.Resolve(name)
}

func (c *Counting) Unlink(name string) error { return c.Base.Unlink(name) }

func (c *Counting) List(prefix string) ([]string, error) {
	c.lists.Add(1)
	return c.Base.List(prefix)
}

func (c *Counting) PutNamed(name string, data []byte) (Ref, error) {
	c.puts.Add(1)
	return c.Base.PutNamed(name, data)
}
