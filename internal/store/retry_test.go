package store

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// flaky fails the first n calls of each op with a transient error.
type flaky struct {
	Store
	mu    sync.Mutex
	fails int
	calls int
}

func (f *flaky) tick() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.fails > 0 {
		f.fails--
		return errors.New("transient disk error")
	}
	return nil
}

func (f *flaky) Get(ref Ref) ([]byte, error) {
	if err := f.tick(); err != nil {
		return nil, err
	}
	return f.Store.Get(ref)
}

func (f *flaky) PutNamed(name string, data []byte) (Ref, error) {
	if err := f.tick(); err != nil {
		return "", err
	}
	return f.Store.PutNamed(name, data)
}

func noSleep(context.Context, time.Duration) {}

func TestRetryRecoversTransientFailures(t *testing.T) {
	mem := NewMem()
	ref, _ := mem.Put([]byte("payload"))
	f := &flaky{Store: mem, fails: 3}
	r := NewRetry(f, RetryConfig{Attempts: 4, Sleep: noSleep})

	b, err := r.Get(ref)
	if err != nil || string(b) != "payload" {
		t.Fatalf("Get after 3 transient failures: %q, %v", b, err)
	}
	if r.Retries() != 3 {
		t.Fatalf("retries = %d, want 3", r.Retries())
	}
	if r.GiveUps() != 0 {
		t.Fatalf("giveups = %d, want 0", r.GiveUps())
	}
}

func TestRetryGivesUpAfterBudget(t *testing.T) {
	f := &flaky{Store: NewMem(), fails: 100}
	r := NewRetry(f, RetryConfig{Attempts: 3, Sleep: noSleep})
	if _, err := r.PutNamed("a/b", []byte("x")); err == nil {
		t.Fatal("persistent failure reported success")
	}
	if f.calls != 3 {
		t.Fatalf("backend saw %d calls, want exactly 3 attempts", f.calls)
	}
	if r.GiveUps() != 1 || r.Retries() != 2 {
		t.Fatalf("giveups=%d retries=%d, want 1/2", r.GiveUps(), r.Retries())
	}
}

// TestRetryDoesNotRetryDefinitiveErrors: a miss, a malformed request, and
// an open breaker each fail immediately — one backend call, no sleeps.
func TestRetryDoesNotRetryDefinitiveErrors(t *testing.T) {
	mem := NewMem()
	counting := NewCounting(mem)
	r := NewRetry(counting, RetryConfig{Attempts: 5, Sleep: func(context.Context, time.Duration) {
		t.Fatal("slept for a non-transient error")
	}})

	if _, err := r.Get(HashRef([]byte("absent"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing blob: %v", err)
	}
	if counting.Gets() != 1 {
		t.Fatalf("missing blob cost %d backend gets, want 1", counting.Gets())
	}
	if err := r.Link("/bad//name", HashRef([]byte("x"))); !errors.Is(err, ErrMalformed) {
		t.Fatalf("malformed name: %v", err)
	}
	if r.Retries() != 0 {
		t.Fatalf("retries = %d, want 0", r.Retries())
	}
}

// TestRetryContextDeadline: a WithContext view stops retrying the moment
// the context dies, and reports the context error.
func TestRetryContextDeadline(t *testing.T) {
	f := &flaky{Store: NewMem(), fails: 1000}
	ctx, cancel := context.WithCancel(context.Background())
	r := NewRetry(f, RetryConfig{Attempts: 1000, Sleep: func(c context.Context, d time.Duration) {
		cancel() // the deadline expires during the first backoff
	}})
	view := r.WithContext(ctx)

	_, err := view.Get(HashRef([]byte("x")))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if f.calls > 2 {
		t.Fatalf("backend saw %d calls after cancellation, want ≤ 2", f.calls)
	}
	// The root store is unaffected by the view's dead context.
	if _, err := r.Put([]byte("alive")); err != nil {
		t.Fatalf("root store after view cancellation: %v", err)
	}
}

// TestRetryBackoffBoundedAndJittered: backoff grows geometrically, stays
// under Max, and jitter keeps it within [d/2, 3d/2).
func TestRetryBackoffBoundedAndJittered(t *testing.T) {
	var slept []time.Duration
	f := &flaky{Store: NewMem(), fails: 1000}
	r := NewRetry(f, RetryConfig{
		Attempts: 8, Base: 10 * time.Millisecond, Max: 40 * time.Millisecond, Seed: 1,
		Sleep: func(_ context.Context, d time.Duration) { slept = append(slept, d) },
	})
	r.Get(HashRef([]byte("x")))
	if len(slept) != 7 {
		t.Fatalf("slept %d times, want 7", len(slept))
	}
	for i, d := range slept {
		nominal := 10 * time.Millisecond << uint(i)
		if nominal > 40*time.Millisecond {
			nominal = 40 * time.Millisecond
		}
		if d < nominal/2 || d >= nominal*3/2 {
			t.Fatalf("backoff %d = %v outside [%v, %v)", i, d, nominal/2, nominal*3/2)
		}
	}
}

// TestRetryMasksEveryNthFault: the drill guarantee — an odd-period
// every-Nth fault plan under a ≥2-attempt retry is invisible to callers,
// even for the two-op PutNamed composite (after a fault at hook position
// ≡0 mod 3, the next attempt's Put and Link land on safe positions).
func TestRetryMasksEveryNthFault(t *testing.T) {
	plan := &FaultPlan{Every: 3, Seed: 99, Sleep: func(time.Duration) {}}
	r := NewRetry(NewFaulty(NewMem(), plan.Hook), RetryConfig{Attempts: 3, Sleep: noSleep})
	for i := 0; i < 100; i++ {
		name := "runs/r/blob-" + string(rune('a'+i%26))
		if _, err := r.PutNamed(name, []byte{byte(i)}); err != nil {
			t.Fatalf("op %d leaked a fault through retry: %v", i, err)
		}
	}
	if plan.Injected() == 0 {
		t.Fatal("no faults injected — the test proved nothing")
	}
	if r.Retries() == 0 {
		t.Fatal("no retries recorded despite injected faults")
	}
}
