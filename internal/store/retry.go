package store

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"
)

// RetryConfig tunes the Retry wrapper. Zero values select defaults.
type RetryConfig struct {
	Attempts int           // max attempts per operation (0 ⇒ 4)
	Base     time.Duration // backoff before the 2nd attempt (0 ⇒ 5ms)
	Max      time.Duration // backoff cap (0 ⇒ 250ms)
	Seed     uint64        // jitter PRNG seed (deterministic jitter stream)
	// Sleep waits between attempts, aborting early when ctx is done.
	// Injectable for tests; nil ⇒ a timer-based sleep.
	Sleep func(ctx context.Context, d time.Duration)
}

func (c RetryConfig) withDefaults() RetryConfig {
	if c.Attempts == 0 {
		c.Attempts = 4
	}
	if c.Base == 0 {
		c.Base = 5 * time.Millisecond
	}
	if c.Max == 0 {
		c.Max = 250 * time.Millisecond
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	return c
}

func sleepCtx(ctx context.Context, d time.Duration) {
	if ctx == nil {
		time.Sleep(d)
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// Retry wraps a Store with bounded exponential backoff: every operation is
// attempted up to Attempts times, sleeping Base·2^i with ±50% deterministic
// jitter (capped at Max) between attempts, but only while the error is
// Transient — a definitive miss, a malformed request, an open breaker, or
// an expired context fails immediately. It implements ContextStore: a
// WithContext view checks the context before every attempt and aborts
// backoff sleeps the moment the context dies, so a request deadline set at
// the HTTP edge propagates all the way into the storage plane.
//
// Retry sits outermost in the production stack — Retry(Breaker(FS)) — so
// the breaker observes raw per-attempt outcomes while callers see only the
// final result.
type Retry struct {
	base Store
	cfg  RetryConfig
	ctx  context.Context // nil for the root; set on WithContext views

	// Shared across context views.
	stats *retryStats
}

type retryStats struct {
	retries atomic.Int64 // re-attempts after a transient failure
	giveups atomic.Int64 // operations that exhausted their attempts
	jitter  atomic.Uint64
}

// NewRetry wraps base.
func NewRetry(base Store, cfg RetryConfig) *Retry {
	c := cfg.withDefaults()
	r := &Retry{base: base, cfg: c, stats: &retryStats{}}
	r.stats.jitter.Store(cfg.Seed)
	return r
}

// WithContext returns a view bound to ctx, sharing the retry counters.
func (r *Retry) WithContext(ctx context.Context) Store {
	return &Retry{base: r.base, cfg: r.cfg, ctx: ctx, stats: r.stats}
}

// Retries returns the number of re-attempts performed after transient
// failures (the greem_store_retries_total metric).
func (r *Retry) Retries() int64 { return r.stats.retries.Load() }

// GiveUps returns the number of operations that failed even after their
// full attempt budget.
func (r *Retry) GiveUps() int64 { return r.stats.giveups.Load() }

// backoff returns the sleep before attempt i (i ≥ 1), Base·2^(i-1) with
// ±50% jitter from a deterministic splitmix64 stream, capped at Max.
func (r *Retry) backoff(i int) time.Duration {
	d := r.cfg.Base << uint(i-1)
	if d > r.cfg.Max || d <= 0 {
		d = r.cfg.Max
	}
	word := splitmix64(r.stats.jitter.Add(1))
	// jitter in [0.5, 1.5): d/2 + frac·d
	frac := float64(word>>11) / (1 << 53)
	return d/2 + time.Duration(frac*float64(d))
}

// do runs op with the retry policy. op must be idempotent — every Store
// operation is: Put/Link are content-addressed or last-writer-wins, reads
// have no side effects.
func (r *Retry) do(op func() error) error {
	var err error
	for i := 1; ; i++ {
		if r.ctx != nil {
			if cerr := r.ctx.Err(); cerr != nil {
				if err != nil {
					return fmt.Errorf("store: %w (after %v)", cerr, err)
				}
				return fmt.Errorf("store: %w", cerr)
			}
		}
		err = op()
		if err == nil || !Transient(err) {
			return err
		}
		if i >= r.cfg.Attempts {
			r.stats.giveups.Add(1)
			return fmt.Errorf("store: gave up after %d attempts: %w", i, err)
		}
		r.stats.retries.Add(1)
		r.cfg.Sleep(r.ctx, r.backoff(i))
	}
}

func (r *Retry) Put(data []byte) (Ref, error) {
	var ref Ref
	err := r.do(func() (e error) { ref, e = r.base.Put(data); return })
	return ref, err
}

func (r *Retry) Get(ref Ref) ([]byte, error) {
	var b []byte
	err := r.do(func() (e error) { b, e = r.base.Get(ref); return })
	return b, err
}

func (r *Retry) Has(ref Ref) (bool, error) {
	var ok bool
	err := r.do(func() (e error) { ok, e = r.base.Has(ref); return })
	return ok, err
}

func (r *Retry) Link(name string, ref Ref) error {
	return r.do(func() error { return r.base.Link(name, ref) })
}

func (r *Retry) Resolve(name string) (Ref, error) {
	var ref Ref
	err := r.do(func() (e error) { ref, e = r.base.Resolve(name); return })
	return ref, err
}

func (r *Retry) Unlink(name string) error {
	return r.do(func() error { return r.base.Unlink(name) })
}

func (r *Retry) List(prefix string) ([]string, error) {
	var names []string
	err := r.do(func() (e error) { names, e = r.base.List(prefix); return })
	return names, err
}

// PutNamed retries the whole composite, not the halves: a torn
// Put-succeeded/Link-failed attempt is repaired by the next attempt
// re-putting identical bytes (free, content-addressed) and re-linking.
func (r *Retry) PutNamed(name string, data []byte) (Ref, error) {
	var ref Ref
	err := r.do(func() (e error) { ref, e = r.base.PutNamed(name, data); return })
	return ref, err
}
