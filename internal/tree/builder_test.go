package tree

import (
	"math/rand"
	"testing"
)

// sameTree checks that a and b are structurally identical: same tree-order
// particle data and Perm, same node count, and same moments at the root. (Node
// numbering is allowed to differ in general; the serial builds compared here
// are deterministic, so the data arrays must match exactly.)
func sameTree(t *testing.T, a, b *Tree) {
	t.Helper()
	if a.NumParticles() != b.NumParticles() {
		t.Fatalf("particle count %d vs %d", a.NumParticles(), b.NumParticles())
	}
	if a.NumNodes() != b.NumNodes() {
		t.Fatalf("node count %d vs %d", a.NumNodes(), b.NumNodes())
	}
	for i := range a.X {
		if a.X[i] != b.X[i] || a.Y[i] != b.Y[i] || a.Z[i] != b.Z[i] ||
			a.M[i] != b.M[i] || a.Perm[i] != b.Perm[i] {
			t.Fatalf("tree-order particle %d differs", i)
		}
	}
	if a.TotalMass() != b.TotalMass() {
		t.Fatalf("total mass %v vs %v", a.TotalMass(), b.TotalMass())
	}
}

// TestRebuildMatchesBuild pins Rebuild's contract: identical structure and
// forces to a fresh Build, across repeated rebuilds over shrinking and
// growing particle sets (exercising arena reuse in both directions).
func TestRebuildMatchesBuild(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBuilder()
	opt := Options{LeafCap: 8, MaxDepth: 40}
	fopt := ForceOpts{G: 1, Theta: 0.5, Eps2: 1e-6}
	for _, n := range []int{900, 300, 1500, 0, 700} {
		x, y, z, m := plummer(rng, n, 0.1)
		want, err := Build(x, y, z, m, opt)
		if err != nil {
			t.Fatal(err)
		}
		got, err := b.Rebuild(x, y, z, m, opt)
		if err != nil {
			t.Fatal(err)
		}
		sameTree(t, want, got)
		if n == 0 {
			continue
		}
		ax1 := make([]float64, n)
		ay1 := make([]float64, n)
		az1 := make([]float64, n)
		ax2 := make([]float64, n)
		ay2 := make([]float64, n)
		az2 := make([]float64, n)
		Accel(want, want, 32, fopt, ax1, ay1, az1)
		Accel(got, got, 32, fopt, ax2, ay2, az2)
		for i := 0; i < n; i++ {
			if ax1[i] != ax2[i] || ay1[i] != ay2[i] || az1[i] != az2[i] {
				t.Fatalf("n=%d: force on particle %d differs", n, i)
			}
		}
	}
}

// TestRebuildQuadrupoleModes checks the quadrupole arena across mode flips:
// quadrupole on → off must drop the moments (monopole traversal), off → on
// must recompute them.
func TestRebuildQuadrupoleModes(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	x, y, z, m := randParticles(rng, 400)
	b := NewBuilder()
	tr, err := b.Rebuild(x, y, z, m, Options{LeafCap: 8, Quadrupole: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.RootQuadrupole() == ([6]float64{}) {
		t.Fatal("quadrupole build has zero root moments")
	}
	want := tr.RootQuadrupole()
	tr, err = b.Rebuild(x, y, z, m, Options{LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	if tr.quads != nil {
		t.Fatal("monopole rebuild retained quadrupole moments")
	}
	tr, err = b.Rebuild(x, y, z, m, Options{LeafCap: 8, Quadrupole: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.RootQuadrupole() != want {
		t.Fatal("quadrupole moments differ after mode round-trip")
	}
}

// TestRebuildAllocs asserts the zero-alloc steady state: once the arena has
// grown, serial Rebuild over a same-sized particle set allocates nothing.
func TestRebuildAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x, y, z, m := plummer(rng, 2000, 0.1)
	b := NewBuilder()
	opt := Options{LeafCap: 8, MaxDepth: 40}
	if _, err := b.Rebuild(x, y, z, m, opt); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := b.Rebuild(x, y, z, m, opt); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("warm Rebuild allocates %v times per run, want 0", allocs)
	}
}

// TestWalkerAccelAllocs pins the group-buffer reuse: a warm Walker.Accel pass
// (which now reuses the Walker-owned group slice) allocates nothing.
func TestWalkerAccelAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	n := 1500
	x, y, z, m := plummer(rng, n, 0.1)
	tr, err := Build(x, y, z, m, Options{LeafCap: 8})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWalker()
	opt := ForceOpts{G: 1, Theta: 0.5, Eps2: 1e-6, Cutoff: true, Rcut: 0.2, FastKernel: true}
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	w.Accel(tr, tr, 64, opt, ax, ay, az)
	allocs := testing.AllocsPerRun(5, func() {
		w.Accel(tr, tr, 64, opt, ax, ay, az)
	})
	if allocs != 0 {
		t.Fatalf("warm Walker.Accel allocates %v times per run, want 0", allocs)
	}
}
