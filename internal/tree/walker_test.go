package tree

import (
	"math"
	"math/rand"
	"testing"
)

// cutoffOpts is the standard TreePM short-range configuration the float32
// walk targets: periodic box of unit side, cutoff at 3/32, softened.
func cutoffOpts() ForceOpts {
	return ForceOpts{
		G: 1, Theta: 0.5, Eps2: 1e-10,
		Cutoff: true, Rcut: 3.0 / 32,
		Periodic: true, L: 1,
		FastKernel: true,
	}
}

// TestFloat32KernelMatchesFloat64InTree runs the full grouped cutoff walk
// with the float64 kernel and with the float32 batch path on the same tree
// and asserts the accelerations agree to float32 accuracy relative to the
// short-range force scale. This is the in-tree parity check for the whole
// chain: collectF32's group-relative emission, the rebased targets, and the
// float32 kernel (SIMD where available).
func TestFloat32KernelMatchesFloat64InTree(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	x, y, z, m := plummer(rng, 3000, 0.05)
	tr, err := Build(x, y, z, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := cutoffOpts()
	n := len(x)

	ax64 := make([]float64, n)
	ay64 := make([]float64, n)
	az64 := make([]float64, n)
	st64 := Accel(tr, tr, 64, opt, ax64, ay64, az64)

	opt.Float32Kernel = true
	ax32 := make([]float64, n)
	ay32 := make([]float64, n)
	az32 := make([]float64, n)
	st32 := Accel(tr, tr, 64, opt, ax32, ay32, az32)

	// Identical traversal: same lists, same ledger.
	if st32.Interactions != st64.Interactions {
		t.Errorf("interactions: f32 %d, f64 %d", st32.Interactions, st64.Interactions)
	}
	if st32.ListParticles != st64.ListParticles || st32.ListNodes != st64.ListNodes {
		t.Errorf("list entries: f32 (%d,%d), f64 (%d,%d)",
			st32.ListParticles, st32.ListNodes, st64.ListParticles, st64.ListNodes)
	}
	if st32.Groups != st64.Groups || st32.SumNi != st64.SumNi {
		t.Errorf("groups: f32 (%d,%d), f64 (%d,%d)", st32.Groups, st32.SumNi, st64.Groups, st64.SumNi)
	}

	// Force agreement: float32 relative accuracy against the RMS force.
	var sum2 float64
	for i := 0; i < n; i++ {
		sum2 += ax64[i]*ax64[i] + ay64[i]*ay64[i] + az64[i]*az64[i]
	}
	rms := math.Sqrt(sum2 / float64(n))
	var maxErr float64
	for i := 0; i < n; i++ {
		dx := ax32[i] - ax64[i]
		dy := ay32[i] - ay64[i]
		dz := az32[i] - az64[i]
		e := math.Sqrt(dx*dx + dy*dy + dz*dz)
		if e > maxErr {
			maxErr = e
		}
	}
	// Float32 carries ~1e-7 relative resolution; near-cutoff polynomial
	// cancellation and list-length-√Nj noise accumulation leave a few
	// decades of headroom.
	if maxErr > 2e-4*rms {
		t.Errorf("max |a32-a64| = %g, rms(a64) = %g (ratio %g)", maxErr, rms, maxErr/rms)
	}
}

// TestFloat32KernelWorkersBitIdentical asserts the float32 walk is
// bit-identical across worker counts: groups own disjoint output ranges and
// each group's batch is built and evaluated identically regardless of which
// sub-Walker handles it.
func TestFloat32KernelWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x, y, z, m := plummer(rng, 4000, 0.04)
	tr, err := Build(x, y, z, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opt := cutoffOpts()
	opt.Float32Kernel = true
	n := len(x)

	ref := make([]float64, 3*n)
	st1 := Accel(tr, tr, 64, opt, ref[:n], ref[n:2*n], ref[2*n:])

	for _, workers := range []int{2, 7} {
		o := opt
		o.Workers = workers
		got := make([]float64, 3*n)
		st := Accel(tr, tr, 64, o, got[:n], got[n:2*n], got[2*n:])
		if st.Interactions != st1.Interactions {
			t.Errorf("workers=%d: interactions %d, serial %d", workers, st.Interactions, st1.Interactions)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: component %d differs: %v vs %v", workers, i, got[i], ref[i])
				break
			}
		}
	}
}

// TestWalkerZeroAllocSteadyState pins the acceptance criterion that the
// batched walk allocates nothing in steady state: after a warm-up pass, a
// reused Walker with a precomputed group decomposition must run both the
// float64 and the float32 cutoff walks with zero allocations per pass.
func TestWalkerZeroAllocSteadyState(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y, z, m := plummer(rng, 2000, 0.05)
	tr, err := Build(x, y, z, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	groups := tr.Groups(64)
	n := len(x)
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)

	for _, tc := range []struct {
		name string
		f32  bool
	}{
		{"float64", false},
		{"float32", true},
	} {
		opt := cutoffOpts()
		opt.Float32Kernel = tc.f32
		w := NewWalker()
		w.AccelGroups(tr, tr, groups, opt, ax, ay, az) // warm-up: buffers grow here
		allocs := testing.AllocsPerRun(5, func() {
			w.AccelGroups(tr, tr, groups, opt, ax, ay, az)
		})
		if allocs != 0 {
			t.Errorf("%s walk: %v allocs/pass in steady state, want 0", tc.name, allocs)
		}
	}
}

// TestFloat32KernelScalarVariantMatchesFast covers the Float32Kernel ×
// FastKernel=false corner: the scalar float32 reference kernel through the
// same batch walk, agreeing with the fast path to float32 noise.
func TestFloat32KernelScalarVariantMatchesFast(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, y, z, m := plummer(rng, 1500, 0.05)
	tr, err := Build(x, y, z, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	n := len(x)
	opt := cutoffOpts()
	opt.Float32Kernel = true

	axF := make([]float64, n)
	ayF := make([]float64, n)
	azF := make([]float64, n)
	Accel(tr, tr, 64, opt, axF, ayF, azF)

	opt.FastKernel = false
	axS := make([]float64, n)
	ayS := make([]float64, n)
	azS := make([]float64, n)
	Accel(tr, tr, 64, opt, axS, ayS, azS)

	var sum2 float64
	for i := 0; i < n; i++ {
		sum2 += axS[i]*axS[i] + ayS[i]*ayS[i] + azS[i]*azS[i]
	}
	rms := math.Sqrt(sum2 / float64(n))
	for i := 0; i < n; i++ {
		dx := axF[i] - axS[i]
		dy := ayF[i] - ayS[i]
		dz := azF[i] - azS[i]
		if e := math.Sqrt(dx*dx + dy*dy + dz*dz); e > 2e-4*rms {
			t.Fatalf("particle %d: fast vs scalar f32 differ by %g (rms %g)", i, e, rms)
		}
	}
}
