// Package tree implements the hierarchical oct-tree force calculation
// (Barnes & Hut 1986) with Barnes' modified algorithm (Barnes 1990), in which
// the tree traversal is performed once per *group* of particles rather than
// once per particle: a shared interaction list of tree nodes and particles is
// built for each group and then evaluated directly with the ppkern kernels.
//
// Grouping reduces the traversal cost by a factor of ⟨Ni⟩ (the mean group
// size) while lengthening the interaction list ⟨Nj⟩, since group members
// interact with each other directly; the optimum ⟨Ni⟩ is machine dependent
// (≈100 on K computer, ≈500 on GPU clusters — paper §II). The package exposes
// both the grouped and the classic per-particle traversal so the trade-off
// can be measured.
//
// For the TreePM short-range force the traversal prunes every node farther
// than rcut from the group (the PM part carries the remainder), which keeps
// ⟨Nj⟩ about six times shorter than in a pure tree code (paper §III-B).
package tree

import (
	"fmt"
	"math"
	"sync"
	"time"

	"greem/internal/ppkern"
)

// Options controls tree construction.
type Options struct {
	// LeafCap is the maximum number of particles in a leaf node.
	LeafCap int
	// MaxDepth bounds recursion for pathological (coincident) inputs.
	MaxDepth int
	// Quadrupole computes traceless quadrupole moments for every node so
	// traversals can use them (ForceOpts.Quadrupole). The paper's production
	// configuration is monopole-only; this is the accuracy/cost ablation.
	Quadrupole bool
	// Workers parallelizes construction: the top of the tree is split
	// serially, then the resulting subtrees are built concurrently into
	// private arenas and merged (subtrees own disjoint particle ranges, so
	// the reordering is race-free and the resulting structure is identical
	// to a serial build up to node numbering). 0/1 = serial.
	Workers int
}

// DefaultOptions are reasonable construction parameters.
func DefaultOptions() Options { return Options{LeafCap: 16, MaxDepth: 40} }

type node struct {
	cx, cy, cz       float64 // geometric center of the cell
	half             float64 // half side length
	mass             float64
	comx, comy, comz float64
	start, count     int32 // contiguous particle range in tree order
	firstChild       int32 // index of first child; children are contiguous; -1 for leaf
	nChild           int8
}

// Tree is an oct-tree over a particle set. Particles are copied into tree
// order internally; Perm maps tree order back to the caller's indices.
type Tree struct {
	X, Y, Z, M []float64 // particle data in tree order
	Perm       []int32   // Perm[i] = original index of tree-order particle i

	nodes []node
	// quads[i] holds node i's traceless quadrupole (xx, yy, zz, xy, xz, yz)
	// when Options.Quadrupole is set; nil otherwise.
	quads [][6]float64
	opt   Options

	// Bounding cube.
	minX, minY, minZ, size float64
}

// buildScratch holds the octant-partition temporaries splitLevel needs (one
// scatter buffer per particle array plus the octant tags). A fresh Build
// allocates one; a Builder retains one across Rebuilds so the steady-state
// construction path is allocation-free.
type buildScratch struct {
	tx, ty, tz, tm []float64
	tp             []int32
	oct            []int8
}

// grow sizes every scratch buffer to at least count elements.
func (sc *buildScratch) grow(count int) {
	if cap(sc.tx) < count {
		sc.tx = make([]float64, count)
		sc.ty = make([]float64, count)
		sc.tz = make([]float64, count)
		sc.tm = make([]float64, count)
		sc.tp = make([]int32, count)
		sc.oct = make([]int8, count)
	}
	sc.tx = sc.tx[:count]
	sc.ty = sc.ty[:count]
	sc.tz = sc.tz[:count]
	sc.tm = sc.tm[:count]
	sc.tp = sc.tp[:count]
	sc.oct = sc.oct[:count]
}

// Build constructs an oct-tree over the given particles. The bounding cube is
// computed from the data. Build does not modify its inputs. Hot paths that
// rebuild trees every step should hold a Builder and call Rebuild instead.
func Build(x, y, z, m []float64, opt Options) (*Tree, error) {
	t := &Tree{}
	var sc buildScratch
	if err := buildInto(t, &sc, x, y, z, m, opt); err != nil {
		return nil, err
	}
	return t, nil
}

// buildInto (re)constructs t over the given particles, reusing whatever
// capacity t's arrays and the scratch already hold. Shared by Build (fresh
// Tree and scratch) and Builder.Rebuild (both retained).
func buildInto(t *Tree, sc *buildScratch, x, y, z, m []float64, opt Options) error {
	n := len(x)
	if len(y) != n || len(z) != n || len(m) != n {
		return fmt.Errorf("tree: mismatched slice lengths")
	}
	if opt.LeafCap < 1 {
		opt.LeafCap = DefaultOptions().LeafCap
	}
	if opt.MaxDepth < 1 {
		opt.MaxDepth = DefaultOptions().MaxDepth
	}
	t.X = append(t.X[:0], x...)
	t.Y = append(t.Y[:0], y...)
	t.Z = append(t.Z[:0], z...)
	t.M = append(t.M[:0], m...)
	t.Perm = growInt32(t.Perm, n)
	for i := range t.Perm {
		t.Perm[i] = int32(i)
	}
	t.nodes = t.nodes[:0]
	t.opt = opt
	t.minX, t.minY, t.minZ, t.size = 0, 0, 0, 0
	if n == 0 {
		t.quads = nil
		return nil
	}
	minX, maxX := minMax(x)
	minY, maxY := minMax(y)
	minZ, maxZ := minMax(z)
	size := math.Max(maxX-minX, math.Max(maxY-minY, maxZ-minZ))
	if size == 0 {
		size = 1e-12
	}
	// Grow slightly so boundary particles are strictly inside.
	size *= 1 + 1e-12
	t.minX, t.minY, t.minZ, t.size = minX, minY, minZ, size

	root := node{
		cx: minX + size/2, cy: minY + size/2, cz: minZ + size/2,
		half: size / 2, start: 0, count: int32(n), firstChild: -1,
	}
	t.nodes = append(t.nodes, root)
	if opt.Workers > 1 && n > 4096 {
		t.splitParallel(opt.Workers, sc)
	} else {
		t.split(0, 0, sc)
	}
	t.computeMoments(0)
	if opt.Quadrupole {
		if cap(t.quads) < len(t.nodes) {
			t.quads = make([][6]float64, len(t.nodes))
		}
		t.quads = t.quads[:len(t.nodes)]
		t.computeQuadrupoles(0)
	} else {
		// Traversals key the quadrupole path off quads != nil, so a
		// monopole-only (re)build must drop the arena entirely.
		t.quads = nil
	}
	return nil
}

// computeQuadrupoles fills the traceless quadrupole moments bottom-up:
// leaves directly from their particles, internal nodes from their children
// via the parallel-axis shift Q += m·(3 δᵢδⱼ − δᵢⱼ|δ|²) with δ the child
// center-of-mass offset. Must run after computeMoments.
func (t *Tree) computeQuadrupoles(i int) {
	nd := &t.nodes[i]
	var q [6]float64
	add := func(m, dx, dy, dz float64) {
		d2 := dx*dx + dy*dy + dz*dz
		q[0] += m * (3*dx*dx - d2)
		q[1] += m * (3*dy*dy - d2)
		q[2] += m * (3*dz*dz - d2)
		q[3] += m * 3 * dx * dy
		q[4] += m * 3 * dx * dz
		q[5] += m * 3 * dy * dz
	}
	if nd.firstChild < 0 {
		for p := nd.start; p < nd.start+nd.count; p++ {
			add(t.M[p], t.X[p]-nd.comx, t.Y[p]-nd.comy, t.Z[p]-nd.comz)
		}
	} else {
		for c := nd.firstChild; c < nd.firstChild+int32(nd.nChild); c++ {
			t.computeQuadrupoles(int(c))
			ch := &t.nodes[c]
			cq := t.quads[c]
			for k := 0; k < 6; k++ {
				q[k] += cq[k]
			}
			add(ch.mass, ch.comx-nd.comx, ch.comy-nd.comy, ch.comz-nd.comz)
		}
	}
	t.quads[i] = q
}

// RootQuadrupole returns the root node's traceless quadrupole moments
// (xx, yy, zz, xy, xz, yz); zero value if quadrupoles were not built.
func (t *Tree) RootQuadrupole() [6]float64 {
	if t.quads == nil || len(t.nodes) == 0 {
		return [6]float64{}
	}
	return t.quads[0]
}

func minMax(a []float64) (lo, hi float64) {
	lo, hi = a[0], a[0]
	for _, v := range a[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// splitParallel builds the tree with concurrent subtree construction: a
// serial top phase subdivides until at least ~4·workers oversized nodes
// exist, then each is completed in its own goroutine and arena. The parallel
// path allocates (goroutine arenas, bookkeeping) — the zero-alloc Rebuild
// guarantee holds for the serial path only.
func (t *Tree) splitParallel(workers int, sc *buildScratch) {
	// Top phase: breadth-first serial splitting of oversized nodes.
	pending := []int{0}
	depth := map[int]int{0: 0}
	for len(pending) < 4*workers {
		// Pick the largest pending oversized node to split next.
		best := -1
		for idx, ni := range pending {
			if int(t.nodes[ni].count) > t.opt.LeafCap &&
				(best < 0 || t.nodes[ni].count > t.nodes[pending[best]].count) {
				best = idx
			}
		}
		if best < 0 {
			break // everything fits in leaves already
		}
		ni := pending[best]
		d := depth[ni]
		pending = append(pending[:best], pending[best+1:]...)
		if d < t.opt.MaxDepth {
			t.splitLevel(ni, sc)
		}
		nd := &t.nodes[ni]
		if nd.firstChild < 0 {
			continue // MaxDepth or degenerate: stays a leaf
		}
		for c := nd.firstChild; c < nd.firstChild+int32(nd.nChild); c++ {
			pending = append(pending, int(c))
			depth[int(c)] = d + 1
		}
	}
	// Bottom phase: finish each pending subtree in a private arena.
	type arena struct {
		root  int
		nodes []node
	}
	arenas := make([]arena, len(pending))
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for k, ni := range pending {
		wg.Add(1)
		go func(k, ni int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sub := &Tree{X: t.X, Y: t.Y, Z: t.Z, M: t.M, Perm: t.Perm, opt: t.opt}
			sub.nodes = append(sub.nodes, t.nodes[ni])
			var ssc buildScratch
			sub.split(0, depth[ni], &ssc)
			arenas[k] = arena{root: ni, nodes: sub.nodes}
		}(k, ni)
	}
	wg.Wait()
	// Merge arenas: arena-local index 0 replaces the pending node; locals
	// j ≥ 1 land at offset + j − 1.
	for _, a := range arenas {
		if len(a.nodes) == 1 {
			t.nodes[a.root] = a.nodes[0]
			continue
		}
		offset := int32(len(t.nodes))
		remap := func(nd node) node {
			if nd.firstChild >= 1 {
				nd.firstChild += offset - 1
			}
			return nd
		}
		t.nodes[a.root] = remap(a.nodes[0])
		for _, nd := range a.nodes[1:] {
			t.nodes = append(t.nodes, remap(nd))
		}
	}
}

// split recursively subdivides node i until leaves hold at most LeafCap
// particles, reordering the particle arrays so each node owns a contiguous
// range.
func (t *Tree) split(i int, depth int, sc *buildScratch) {
	nd := &t.nodes[i]
	if int(nd.count) <= t.opt.LeafCap || depth >= t.opt.MaxDepth {
		return
	}
	t.splitLevel(i, sc)
	n := &t.nodes[i]
	for c := n.firstChild; c >= 0 && c < n.firstChild+int32(n.nChild); c++ {
		t.split(int(c), depth+1, sc)
	}
}

// splitLevel performs the one-level octant partition of node i: bucket the
// particles, reorder them in place, and create the child nodes (no
// recursion). The scratch is free for reuse on return (the copy-back happens
// before the caller recurses into the children).
func (t *Tree) splitLevel(i int, sc *buildScratch) {
	nd := &t.nodes[i]
	start, count := int(nd.start), int(nd.count)
	cx, cy, cz := nd.cx, nd.cy, nd.cz

	// Bucket particles by octant with a counting pass + cycle of copies.
	var cnt [8]int
	sc.grow(count)
	oct := sc.oct
	for k := 0; k < count; k++ {
		p := start + k
		o := int8(0)
		if t.X[p] >= cx {
			o |= 1
		}
		if t.Y[p] >= cy {
			o |= 2
		}
		if t.Z[p] >= cz {
			o |= 4
		}
		oct[k] = o
		cnt[o]++
	}
	var off [8]int
	sum := 0
	for o := 0; o < 8; o++ {
		off[o] = sum
		sum += cnt[o]
	}
	// Stable scatter into the scratch, then copy back.
	tx, ty, tz, tm, tp := sc.tx, sc.ty, sc.tz, sc.tm, sc.tp
	pos := off
	for k := 0; k < count; k++ {
		d := pos[oct[k]]
		pos[oct[k]]++
		p := start + k
		tx[d], ty[d], tz[d], tm[d], tp[d] = t.X[p], t.Y[p], t.Z[p], t.M[p], t.Perm[p]
	}
	copy(t.X[start:start+count], tx)
	copy(t.Y[start:start+count], ty)
	copy(t.Z[start:start+count], tz)
	copy(t.M[start:start+count], tm)
	copy(t.Perm[start:start+count], tp)

	// Create child nodes for non-empty octants.
	h := nd.half / 2
	firstChild := int32(len(t.nodes))
	nChild := int8(0)
	for o := 0; o < 8; o++ {
		if cnt[o] == 0 {
			continue
		}
		dx, dy, dz := -h, -h, -h
		if o&1 != 0 {
			dx = h
		}
		if o&2 != 0 {
			dy = h
		}
		if o&4 != 0 {
			dz = h
		}
		t.nodes = append(t.nodes, node{
			cx: cx + dx, cy: cy + dy, cz: cz + dz, half: h,
			start: int32(start + off[o]), count: int32(cnt[o]), firstChild: -1,
		})
		nChild++
	}
	// nd may be stale after append; reload.
	t.nodes[i].firstChild = firstChild
	t.nodes[i].nChild = nChild
}

// computeMoments fills mass and center-of-mass bottom-up.
func (t *Tree) computeMoments(i int) {
	nd := &t.nodes[i]
	if nd.firstChild < 0 {
		var m, mx, my, mz float64
		for p := nd.start; p < nd.start+nd.count; p++ {
			m += t.M[p]
			mx += t.M[p] * t.X[p]
			my += t.M[p] * t.Y[p]
			mz += t.M[p] * t.Z[p]
		}
		nd.mass = m
		if m > 0 {
			nd.comx, nd.comy, nd.comz = mx/m, my/m, mz/m
		} else {
			nd.comx, nd.comy, nd.comz = nd.cx, nd.cy, nd.cz
		}
		return
	}
	var m, mx, my, mz float64
	for c := nd.firstChild; c < nd.firstChild+int32(nd.nChild); c++ {
		t.computeMoments(int(c))
		ch := &t.nodes[c]
		m += ch.mass
		mx += ch.mass * ch.comx
		my += ch.mass * ch.comy
		mz += ch.mass * ch.comz
	}
	nd.mass = m
	if m > 0 {
		nd.comx, nd.comy, nd.comz = mx/m, my/m, mz/m
	} else {
		nd.comx, nd.comy, nd.comz = nd.cx, nd.cy, nd.cz
	}
}

// NumNodes returns the number of tree nodes (for diagnostics).
func (t *Tree) NumNodes() int { return len(t.nodes) }

// NumParticles returns the number of particles in the tree.
func (t *Tree) NumParticles() int { return len(t.X) }

// TotalMass returns the root node's mass.
func (t *Tree) TotalMass() float64 {
	if len(t.nodes) == 0 {
		return 0
	}
	return t.nodes[0].mass
}

// Group is a set of particles (a contiguous tree-order range of a target
// tree) that shares one interaction list, per Barnes' modified algorithm.
type Group struct {
	Start, Count int32
	// Tight axis-aligned bounding box of the member particles.
	MinX, MinY, MinZ float64
	MaxX, MaxY, MaxZ float64
}

// Groups partitions the tree's particles into groups of at most cap
// particles by walking down from the root; subtrees with ≤ cap particles
// become groups. cap = 1 reproduces the original per-particle Barnes-Hut
// traversal (each particle its own group).
func (t *Tree) Groups(cap int) []Group {
	return t.AppendGroups(nil, cap)
}

// AppendGroups is Groups with a caller-supplied buffer: the decomposition is
// appended to buf (pass buf[:0] to reuse its backing array across passes) and
// the possibly-regrown slice returned. Hot paths use this to keep repeated
// force passes allocation-free.
func (t *Tree) AppendGroups(buf []Group, cap int) []Group {
	if cap < 1 {
		cap = 1
	}
	if len(t.nodes) == 0 {
		return buf
	}
	return t.appendGroups(buf, 0, cap)
}

// appendGroups is AppendGroups' method-recursive walk (method recursion, not
// a closure, so the traversal itself allocates nothing).
func (t *Tree) appendGroups(buf []Group, i, cap int) []Group {
	nd := &t.nodes[i]
	if int(nd.count) <= cap {
		return append(buf, t.makeGroup(nd.start, nd.count))
	}
	if nd.firstChild < 0 {
		// Leaf larger than cap (cap < LeafCap): split evenly.
		for s := nd.start; s < nd.start+nd.count; s += int32(cap) {
			c := int32(cap)
			if s+c > nd.start+nd.count {
				c = nd.start + nd.count - s
			}
			buf = append(buf, t.makeGroup(s, c))
		}
		return buf
	}
	for c := nd.firstChild; c < nd.firstChild+int32(nd.nChild); c++ {
		buf = t.appendGroups(buf, int(c), cap)
	}
	return buf
}

func (t *Tree) makeGroup(start, count int32) Group {
	g := Group{Start: start, Count: count,
		MinX: math.Inf(1), MinY: math.Inf(1), MinZ: math.Inf(1),
		MaxX: math.Inf(-1), MaxY: math.Inf(-1), MaxZ: math.Inf(-1)}
	for p := start; p < start+count; p++ {
		g.MinX = math.Min(g.MinX, t.X[p])
		g.MaxX = math.Max(g.MaxX, t.X[p])
		g.MinY = math.Min(g.MinY, t.Y[p])
		g.MaxY = math.Max(g.MaxY, t.Y[p])
		g.MinZ = math.Min(g.MinZ, t.Z[p])
		g.MaxZ = math.Max(g.MaxZ, t.Z[p])
	}
	return g
}

// Stats aggregates traversal and interaction-count statistics; the paper's
// Table I reports ⟨Ni⟩ (mean group size), ⟨Nj⟩ (mean interaction-list
// length) and the total interaction count.
type Stats struct {
	Groups        int
	SumNi         uint64 // Σ group sizes
	ListParticles uint64 // Σ particle entries over all lists
	ListNodes     uint64 // Σ multipole entries over all lists
	Interactions  uint64 // Σ Ni·Nj
	NodesVisited  uint64 // traversal work
	// KernelSeconds is the wall-clock spent inside the force kernel, so the
	// caller can split fused traversal+force time into Table I's separate
	// "tree traversal" and "force calculation" rows.
	KernelSeconds float64
}

// Flops returns the floating-point operations implied by the interaction
// count under the kernel's 51-op ledger (§II-A) — the number the telemetry
// flop counter accumulates to report modeled Gflops.
func (s Stats) Flops() uint64 {
	return s.Interactions * uint64(ppkern.FlopsPerInteraction)
}

// MeanNi returns ⟨Ni⟩.
func (s Stats) MeanNi() float64 {
	if s.Groups == 0 {
		return 0
	}
	return float64(s.SumNi) / float64(s.Groups)
}

// MeanNj returns ⟨Nj⟩.
func (s Stats) MeanNj() float64 {
	if s.Groups == 0 {
		return 0
	}
	return float64(s.ListParticles+s.ListNodes) / float64(s.Groups)
}

// Add accumulates other into s.
func (s *Stats) Add(o Stats) {
	s.Groups += o.Groups
	s.SumNi += o.SumNi
	s.ListParticles += o.ListParticles
	s.ListNodes += o.ListNodes
	s.Interactions += o.Interactions
	s.NodesVisited += o.NodesVisited
	s.KernelSeconds += o.KernelSeconds
}

// ForceOpts parameterizes a force evaluation pass.
type ForceOpts struct {
	G     float64 // gravitational constant
	Theta float64 // opening angle; a node of side s at distance d is accepted if s < θ·d
	Eps2  float64 // Plummer softening squared
	// Cutoff enables the TreePM short-range mode with radius Rcut; nodes and
	// particles beyond Rcut of a group are pruned (their force is the PM's).
	Cutoff bool
	Rcut   float64
	// Periodic enables minimum-image traversal over a cube of side L
	// (serial whole-box mode; parallel mode passes pre-shifted ghosts).
	Periodic bool
	L        float64
	// FastKernel selects the unrolled Phantom-GRAPE style kernel (requires
	// Eps2 > 0 when groups appear in their own lists, which they do).
	FastKernel bool
	// Float32Kernel evaluates the cutoff kernel in single precision, the
	// Phantom-GRAPE arrangement (§II-A): the walk emits interaction lists
	// into float32 SoA batches with positions *relative to the group
	// center*, so every coordinate the kernel sees is bounded by
	// Rcut + the group radius and float32 resolution is spent where the
	// force lives; per-target partials still accumulate in float64. Honored
	// only in cutoff mode — the open (pure-tree) walk has no distance bound,
	// so it stays float64, as does the quadrupole ablation. With FastKernel
	// it selects the SIMD/unrolled float32 kernel; without, the scalar
	// float32 reference.
	Float32Kernel bool
	// Quadrupole evaluates accepted nodes with monopole+quadrupole moments
	// instead of monopole only. Requires a source tree built with
	// Options.Quadrupole, and is only supported in the open (non-cutoff)
	// mode: the eq. 3 cutoff shapes the pair force, and shaping higher
	// multipoles is not implemented (the paper's code is monopole-only).
	Quadrupole bool
	// Workers runs the traversal+kernel over groups on this many goroutines
	// — the stand-in for the paper's OpenMP threads inside each MPI process
	// (GreeM is an MPI/OpenMP hybrid; K computer has 8 cores per node).
	// 0 or 1 means serial.
	Workers int
}

// Walker owns all the scratch a grouped traversal+kernel pass needs — the
// interaction-list batch buffers (float64 and float32 SoA), per-group
// accumulators, the traversal stack, and the periodic shift table — so that
// repeated force passes allocate nothing in steady state. A Walker is not
// safe for concurrent use; with ForceOpts.Workers > 1 it lazily grows one
// private sub-Walker per worker goroutine and reuses them across passes.
type Walker struct {
	list   ppkern.Source
	list32 ppkern.SourceF32
	quads  ppkern.QuadSource
	// Per-group accumulators (float64) and float32 group-relative targets.
	gax, gay, gaz []float64
	tix, tiy, tiz []float32
	stack         []int32
	shifts        [][3]float64
	groups        []Group
	subs          []*Walker
	stats         []Stats
}

// NewWalker returns an empty Walker; buffers grow on first use.
func NewWalker() *Walker { return &Walker{} }

// Accel computes tree accelerations on the particles of tgt using src as the
// source tree (src and tgt may be the same tree): the TreePM short-range
// force when opt.Cutoff is set, the plain Barnes-Hut force otherwise. The
// result is accumulated into ax/ay/az, which are indexed by the *original*
// particle order of tgt. Group size cap ni controls Barnes' modified
// algorithm (ni=1 for the original per-particle traversal).
func (w *Walker) Accel(src, tgt *Tree, ni int, opt ForceOpts, ax, ay, az []float64) Stats {
	w.groups = tgt.AppendGroups(w.groups[:0], ni)
	return w.AccelGroups(src, tgt, w.groups, opt, ax, ay, az)
}

// AccelGroups is Accel with a caller-supplied group decomposition. With
// opt.Workers > 1 the groups are processed concurrently on per-worker
// sub-Walkers; groups own disjoint particle ranges (and hence disjoint
// output indices through Perm), so no synchronization of the accumulators is
// needed, and the result is bit-identical to a serial pass.
// Stats.KernelSeconds then aggregates CPU seconds across workers, not
// wall-clock.
func (w *Walker) AccelGroups(src, tgt *Tree, groups []Group, opt ForceOpts, ax, ay, az []float64) Stats {
	if opt.Workers > 1 && len(groups) > 1 {
		nw := opt.Workers
		if nw > len(groups) {
			nw = len(groups)
		}
		for len(w.subs) < nw {
			w.subs = append(w.subs, NewWalker())
		}
		if cap(w.stats) < nw {
			w.stats = make([]Stats, nw)
		}
		stats := w.stats[:nw]
		var wg sync.WaitGroup
		for k := 0; k < nw; k++ {
			lo := k * len(groups) / nw
			hi := (k + 1) * len(groups) / nw
			wg.Add(1)
			go func(k, lo, hi int) {
				defer wg.Done()
				sub := opt
				sub.Workers = 1
				stats[k] = w.subs[k].AccelGroups(src, tgt, groups[lo:hi], sub, ax, ay, az)
			}(k, lo, hi)
		}
		wg.Wait()
		var st Stats
		for _, s := range stats {
			st.Add(s)
		}
		return st
	}
	if opt.Quadrupole && opt.Cutoff {
		panic("tree: quadrupole moments are only supported in open (non-cutoff) mode")
	}
	// The float32 batch path needs the cutoff's distance bound for its
	// precision argument; everywhere else the float64 walk stands.
	if opt.Float32Kernel && opt.Cutoff {
		return w.accelGroupsF32(src, tgt, groups, opt, ax, ay, az)
	}
	var st Stats
	var quads *ppkern.QuadSource
	if opt.Quadrupole {
		quads = &w.quads
	}
	w.shifts = src.appendShifts(w.shifts[:0], opt)
	for _, g := range groups {
		w.list.Reset()
		w.quads.Reset()
		var nodesVisited, nPart, nNode uint64
		for _, sh := range w.shifts {
			var v, p, nn uint64
			w.stack, v, p, nn = src.collect(w.stack, &w.list, quads, g, sh, opt)
			nodesVisited += v
			nPart += p
			nNode += nn
		}
		ni := int(g.Count)
		st.Groups++
		st.SumNi += uint64(ni)
		st.ListParticles += nPart
		st.ListNodes += nNode
		st.NodesVisited += nodesVisited

		w.gax = resize(w.gax, ni)
		w.gay = resize(w.gay, ni)
		w.gaz = resize(w.gaz, ni)
		xi := tgt.X[g.Start : g.Start+g.Count]
		yi := tgt.Y[g.Start : g.Start+g.Count]
		zi := tgt.Z[g.Start : g.Start+g.Count]
		tKernel := time.Now()
		// The kernels are the single source of the interaction count
		// (n × Nj each); the Stats ledger sums their returns.
		if opt.Cutoff {
			if opt.FastKernel {
				st.Interactions += ppkern.AccelCutoffFast(xi, yi, zi, &w.list, opt.G, opt.Rcut, opt.Eps2, w.gax, w.gay, w.gaz)
			} else {
				st.Interactions += ppkern.AccelCutoff(xi, yi, zi, &w.list, opt.G, opt.Rcut, opt.Eps2, w.gax, w.gay, w.gaz)
			}
		} else {
			st.Interactions += ppkern.AccelPlain(xi, yi, zi, &w.list, opt.G, opt.Eps2, w.gax, w.gay, w.gaz)
		}
		if opt.Quadrupole && w.quads.Len() > 0 {
			st.Interactions += ppkern.AccelQuad(xi, yi, zi, &w.quads, opt.G, opt.Eps2, w.gax, w.gay, w.gaz)
		}
		st.KernelSeconds += time.Since(tKernel).Seconds()
		for k := 0; k < ni; k++ {
			orig := tgt.Perm[int(g.Start)+k]
			ax[orig] += w.gax[k]
			ay[orig] += w.gay[k]
			az[orig] += w.gaz[k]
		}
	}
	return st
}

// accelGroupsF32 is the float32 batch walk: collectF32 emits each group's
// interaction list into the reusable float32 SoA buffer with positions
// relative to the group's bounding-box center, the group's own targets are
// rebased the same way, and the float32 cutoff kernel accumulates into the
// float64 per-group buffers. Serial — the Workers split happens above.
func (w *Walker) accelGroupsF32(src, tgt *Tree, groups []Group, opt ForceOpts, ax, ay, az []float64) Stats {
	var st Stats
	w.shifts = src.appendShifts(w.shifts[:0], opt)
	g32 := float32(opt.G)
	rcut32 := float32(opt.Rcut)
	eps232 := float32(opt.Eps2)
	for _, g := range groups {
		// Group center: the bounding-box midpoint. Every emitted coordinate
		// is then bounded by Rcut plus the half-diagonal of the group box.
		cx := 0.5 * (g.MinX + g.MaxX)
		cy := 0.5 * (g.MinY + g.MaxY)
		cz := 0.5 * (g.MinZ + g.MaxZ)
		w.list32.Reset()
		var nodesVisited, nPart, nNode uint64
		for _, sh := range w.shifts {
			var v, p, nn uint64
			w.stack, v, p, nn = src.collectF32(w.stack, &w.list32, g, sh, cx, cy, cz, opt)
			nodesVisited += v
			nPart += p
			nNode += nn
		}
		ni := int(g.Count)
		st.Groups++
		st.SumNi += uint64(ni)
		st.ListParticles += nPart
		st.ListNodes += nNode
		st.NodesVisited += nodesVisited

		w.gax = resize(w.gax, ni)
		w.gay = resize(w.gay, ni)
		w.gaz = resize(w.gaz, ni)
		w.tix = resize32(w.tix, ni)
		w.tiy = resize32(w.tiy, ni)
		w.tiz = resize32(w.tiz, ni)
		for k := 0; k < ni; k++ {
			p := int(g.Start) + k
			w.tix[k] = float32(tgt.X[p] - cx)
			w.tiy[k] = float32(tgt.Y[p] - cy)
			w.tiz[k] = float32(tgt.Z[p] - cz)
		}
		tKernel := time.Now()
		if opt.FastKernel {
			st.Interactions += ppkern.AccelCutoffF32Fast(w.tix, w.tiy, w.tiz, &w.list32, g32, rcut32, eps232, w.gax, w.gay, w.gaz)
		} else {
			st.Interactions += ppkern.AccelCutoffF32(w.tix, w.tiy, w.tiz, &w.list32, g32, rcut32, eps232, w.gax, w.gay, w.gaz)
		}
		st.KernelSeconds += time.Since(tKernel).Seconds()
		for k := 0; k < ni; k++ {
			orig := tgt.Perm[int(g.Start)+k]
			ax[orig] += w.gax[k]
			ay[orig] += w.gay[k]
			az[orig] += w.gaz[k]
		}
	}
	return st
}

// Accel is the package-level convenience wrapper: a throwaway Walker. Hot
// paths (sim steps, benchmarks) should hold a Walker and reuse it.
func Accel(src, tgt *Tree, ni int, opt ForceOpts, ax, ay, az []float64) Stats {
	return NewWalker().Accel(src, tgt, ni, opt, ax, ay, az)
}

// AccelGroups is the package-level wrapper over a throwaway Walker.
func AccelGroups(src, tgt *Tree, groups []Group, opt ForceOpts, ax, ay, az []float64) Stats {
	return NewWalker().AccelGroups(src, tgt, groups, opt, ax, ay, az)
}

func resize(s []float64, n int) []float64 {
	if cap(s) < n {
		s = make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

// resize32 grows s to length n without zeroing — callers overwrite every
// element.
func resize32(s []float32, n int) []float32 {
	if cap(s) < n {
		s = make([]float32, n)
	}
	return s[:n]
}

// growInt32 grows s to length n without zeroing — callers overwrite every
// element.
func growInt32(s []int32, n int) []int32 {
	if cap(s) < n {
		s = make([]int32, n)
	}
	return s[:n]
}

// appendShifts appends the periodic image offsets that could matter to buf
// (pass buf[:0] to reuse) and returns it nearest-image-first. In open mode
// just {0}.
func (t *Tree) appendShifts(buf [][3]float64, opt ForceOpts) [][3]float64 {
	if !opt.Periodic {
		return append(buf, [3]float64{0, 0, 0})
	}
	for ix := -1; ix <= 1; ix++ {
		for iy := -1; iy <= 1; iy++ {
			for iz := -1; iz <= 1; iz++ {
				buf = append(buf, [3]float64{float64(ix) * opt.L, float64(iy) * opt.L, float64(iz) * opt.L})
			}
		}
	}
	// Insertion sort by squared norm puts the primary image first for
	// cache-friendliness (27 entries; sort.Slice would allocate its closure).
	for i := 1; i < len(buf); i++ {
		v := buf[i]
		nv := v[0]*v[0] + v[1]*v[1] + v[2]*v[2]
		j := i - 1
		for j >= 0 {
			u := buf[j]
			if u[0]*u[0]+u[1]*u[1]+u[2]*u[2] <= nv {
				break
			}
			buf[j+1] = u
			j--
		}
		buf[j+1] = v
	}
	return buf
}

// collect walks the tree and appends interaction-list entries for group g
// whose coordinates are shifted by sh (i.e. sources are taken at position −sh
// relative to the group frame). The traversal stack is threaded through so
// the caller's buffer is reused; collect returns it (possibly regrown) along
// with the number of nodes visited and the number of particle and multipole
// entries appended.
func (t *Tree) collect(stack []int32, list *ppkern.Source, quads *ppkern.QuadSource, g Group, sh [3]float64, opt ForceOpts) (_ []int32, visited, nPart, nNode uint64) {
	if len(t.nodes) == 0 {
		return stack, 0, 0, 0
	}
	useQuad := quads != nil && t.quads != nil
	// Shift the group box into the source frame.
	gminx, gmaxx := g.MinX+sh[0], g.MaxX+sh[0]
	gminy, gmaxy := g.MinY+sh[1], g.MaxY+sh[1]
	gminz, gmaxz := g.MinZ+sh[2], g.MaxZ+sh[2]

	stack = append(stack[:0], 0)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &t.nodes[i]
		visited++

		// Minimum distance from group box to the node cell.
		dx := axisDist(gminx, gmaxx, nd.cx-nd.half, nd.cx+nd.half)
		dy := axisDist(gminy, gmaxy, nd.cy-nd.half, nd.cy+nd.half)
		dz := axisDist(gminz, gmaxz, nd.cz-nd.half, nd.cz+nd.half)
		dmin2 := dx*dx + dy*dy + dz*dz
		if opt.Cutoff && dmin2 > opt.Rcut*opt.Rcut {
			continue
		}

		// Opening criterion against the node's center of mass: distance from
		// the group box to the COM.
		cdx := axisDistPoint(gminx, gmaxx, nd.comx)
		cdy := axisDistPoint(gminy, gmaxy, nd.comy)
		cdz := axisDistPoint(gminz, gmaxz, nd.comz)
		d2 := cdx*cdx + cdy*cdy + cdz*cdz
		s := 2 * nd.half
		if d2 > 0 && s*s < opt.Theta*opt.Theta*d2 {
			if useQuad {
				q := t.quads[i]
				quads.Append(nd.comx-sh[0], nd.comy-sh[1], nd.comz-sh[2], nd.mass,
					q[0], q[1], q[2], q[3], q[4], q[5])
			} else {
				list.Append(nd.comx-sh[0], nd.comy-sh[1], nd.comz-sh[2], nd.mass)
			}
			nNode++
			continue
		}
		if nd.firstChild < 0 {
			for p := nd.start; p < nd.start+nd.count; p++ {
				list.Append(t.X[p]-sh[0], t.Y[p]-sh[1], t.Z[p]-sh[2], t.M[p])
				nPart++
			}
			continue
		}
		for c := nd.firstChild; c < nd.firstChild+int32(nd.nChild); c++ {
			stack = append(stack, c)
		}
	}
	return stack, visited, nPart, nNode
}

// collectF32 is collect's float32 batch twin for the cutoff walk: identical
// float64 traversal (same pruning, same opening criterion, so the emitted
// list has exactly the same entries as collect's), but every accepted entry
// is appended in float32 with its position taken relative to the group
// center (cx, cy, cz) — the Phantom-GRAPE arrangement. Each coordinate is
// computed in float64 (raw − shift − center) and rounded once to float32,
// so its magnitude is bounded by Rcut plus the group's half-diagonal and
// carries full float32 resolution at that scale. Multipole-accepted nodes
// are appended the same way (monopole only — the cutoff walk has no
// quadrupole mode).
func (t *Tree) collectF32(stack []int32, list *ppkern.SourceF32, g Group, sh [3]float64, cx, cy, cz float64, opt ForceOpts) (_ []int32, visited, nPart, nNode uint64) {
	if len(t.nodes) == 0 {
		return stack, 0, 0, 0
	}
	// Shift the group box into the source frame.
	gminx, gmaxx := g.MinX+sh[0], g.MaxX+sh[0]
	gminy, gmaxy := g.MinY+sh[1], g.MaxY+sh[1]
	gminz, gmaxz := g.MinZ+sh[2], g.MaxZ+sh[2]
	// Fold the shift into the rebase offset: emitted = raw − (sh + center).
	ox, oy, oz := sh[0]+cx, sh[1]+cy, sh[2]+cz

	stack = append(stack[:0], 0)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &t.nodes[i]
		visited++

		dx := axisDist(gminx, gmaxx, nd.cx-nd.half, nd.cx+nd.half)
		dy := axisDist(gminy, gmaxy, nd.cy-nd.half, nd.cy+nd.half)
		dz := axisDist(gminz, gmaxz, nd.cz-nd.half, nd.cz+nd.half)
		dmin2 := dx*dx + dy*dy + dz*dz
		if dmin2 > opt.Rcut*opt.Rcut {
			continue
		}

		cdx := axisDistPoint(gminx, gmaxx, nd.comx)
		cdy := axisDistPoint(gminy, gmaxy, nd.comy)
		cdz := axisDistPoint(gminz, gmaxz, nd.comz)
		d2 := cdx*cdx + cdy*cdy + cdz*cdz
		s := 2 * nd.half
		if d2 > 0 && s*s < opt.Theta*opt.Theta*d2 {
			list.Append(float32(nd.comx-ox), float32(nd.comy-oy), float32(nd.comz-oz), float32(nd.mass))
			nNode++
			continue
		}
		if nd.firstChild < 0 {
			for p := nd.start; p < nd.start+nd.count; p++ {
				list.Append(float32(t.X[p]-ox), float32(t.Y[p]-oy), float32(t.Z[p]-oz), float32(t.M[p]))
				nPart++
			}
			continue
		}
		for c := nd.firstChild; c < nd.firstChild+int32(nd.nChild); c++ {
			stack = append(stack, c)
		}
	}
	return stack, visited, nPart, nNode
}

// axisDist returns the 1-D distance between intervals [alo, ahi] and
// [blo, bhi] (0 if they overlap).
func axisDist(alo, ahi, blo, bhi float64) float64 {
	if ahi < blo {
		return blo - ahi
	}
	if bhi < alo {
		return alo - bhi
	}
	return 0
}

// axisDistPoint returns the 1-D distance from interval [lo, hi] to point p.
func axisDistPoint(lo, hi, p float64) float64 {
	if p < lo {
		return lo - p
	}
	if p > hi {
		return p - hi
	}
	return 0
}

// PotentialCutoff accumulates the short-range (cutoff) potential of tgt's
// particles into pot (indexed by original order), using the same grouped
// traversal as Accel. The energy diagnostic counterpart of the force pass:
// total short-range potential energy is ½·Σ m_i·Φ_i.
func PotentialCutoff(src, tgt *Tree, ni int, opt ForceOpts, tab *ppkern.PotTable, pot []float64) Stats {
	groups := tgt.Groups(ni)
	var st Stats
	var list ppkern.Source
	var stack []int32
	buf := make([]float64, 0, 256)
	shifts := src.appendShifts(nil, opt)
	for _, g := range groups {
		list.Reset()
		var visited, nPart, nNode uint64
		for _, sh := range shifts {
			var v, p, nn uint64
			stack, v, p, nn = src.collect(stack, &list, nil, g, sh, opt)
			visited += v
			nPart += p
			nNode += nn
		}
		n := int(g.Count)
		st.Groups++
		st.SumNi += uint64(n)
		st.ListParticles += nPart
		st.ListNodes += nNode
		st.Interactions += uint64(n) * uint64(list.Len())
		st.NodesVisited += visited
		buf = resize(buf, n)
		xi := tgt.X[g.Start : g.Start+g.Count]
		yi := tgt.Y[g.Start : g.Start+g.Count]
		zi := tgt.Z[g.Start : g.Start+g.Count]
		ppkern.PotCutoff(xi, yi, zi, &list, tab, opt.G, opt.Rcut, opt.Eps2, buf)
		for k := 0; k < n; k++ {
			pot[tgt.Perm[int(g.Start)+k]] += buf[k]
		}
	}
	return st
}
