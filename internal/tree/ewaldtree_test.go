package tree

import (
	"math"
	"math/rand"
	"testing"

	"greem/internal/ewald"
	"greem/internal/ewtab"
)

func TestPureTreePeriodicMatchesEwald(t *testing.T) {
	// The pure periodic tree (min-image traversal + tabulated image
	// correction) must reproduce exact Ewald forces to tree-θ +
	// table-interpolation accuracy.
	l := 1.0
	solver := ewald.New(l, 1)
	tab, err := ewtab.New(l, 32, solver)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	n := 200
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), 1.0/float64(n)
	}
	tr, err := Build(x, y, z, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	st := AccelPeriodicTree(tr, tr, 16, ForceOpts{G: 1, Theta: 0.3, Eps2: 0, L: l}, tab, ax, ay, az)
	if st.Groups == 0 || st.Interactions == 0 {
		t.Fatalf("empty stats: %+v", st)
	}
	rx := make([]float64, n)
	ry := make([]float64, n)
	rz := make([]float64, n)
	solver.Accel(x, y, z, m, rx, ry, rz)
	var e2, r2 float64
	for i := 0; i < n; i++ {
		dx := ax[i] - rx[i]
		dy := ay[i] - ry[i]
		dz := az[i] - rz[i]
		e2 += dx*dx + dy*dy + dz*dz
		r2 += rx[i]*rx[i] + ry[i]*ry[i] + rz[i]*rz[i]
	}
	rms := math.Sqrt(e2 / r2)
	t.Logf("pure periodic tree vs Ewald RMS: %.3e", rms)
	if rms > 0.02 {
		t.Errorf("RMS %v too large", rms)
	}
}

func TestPureTreeThetaZeroIsNearExact(t *testing.T) {
	// θ = 0 opens everything: the only residual is table interpolation.
	l := 1.0
	solver := ewald.New(l, 1)
	tab, _ := ewtab.New(l, 32, solver)
	rng := rand.New(rand.NewSource(2))
	n := 40
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), 1.0
	}
	tr, _ := Build(x, y, z, m, DefaultOptions())
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	AccelPeriodicTree(tr, tr, 8, ForceOpts{G: 1, Theta: 0, Eps2: 0, L: l}, tab, ax, ay, az)
	rx := make([]float64, n)
	ry := make([]float64, n)
	rz := make([]float64, n)
	solver.Accel(x, y, z, m, rx, ry, rz)
	var e2, r2 float64
	for i := 0; i < n; i++ {
		dx := ax[i] - rx[i]
		dy := ay[i] - ry[i]
		dz := az[i] - rz[i]
		e2 += dx*dx + dy*dy + dz*dz
		r2 += rx[i]*rx[i] + ry[i]*ry[i] + rz[i]*rz[i]
	}
	rms := math.Sqrt(e2 / r2)
	if rms > 5e-3 {
		t.Errorf("θ=0 RMS %v should be interpolation-limited", rms)
	}
}

func TestTreePMListsShorterThanPureTree(t *testing.T) {
	// The paper's §I operation-count argument: at comparable accuracy the
	// TreePM short-range walk has far shorter interaction lists than the
	// pure tree, because the cutoff prunes all distant cells (their force is
	// the PM's) while the pure tree must keep opening them.
	l := 1.0
	rng := rand.New(rand.NewSource(3))
	n := 20000
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), 1.0/float64(n)
	}
	tr, _ := Build(x, y, z, m, DefaultOptions())
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)

	tab, _ := ewtab.New(l, 16, nil)
	pure := AccelPeriodicTree(tr, tr, 100, ForceOpts{G: 1, Theta: 0.5, Eps2: 1e-9, L: l}, tab, ax, ay, az)
	// TreePM short-range walk at the paper's operating point (rcut for a
	// 32³ mesh) and the *same* opening angle — the TreePM tree can even
	// afford a larger θ at equal total-force accuracy, which would widen the
	// gap further (§I).
	cut := Accel(tr, tr, 100, ForceOpts{
		G: 1, Theta: 0.5, Eps2: 1e-9, Cutoff: true, Rcut: 3.0 / 32, Periodic: true, L: l,
	}, ax, ay, az)
	ratio := pure.MeanNj() / cut.MeanNj()
	t.Logf("⟨Nj⟩: pure periodic tree %.0f, TreePM short-range %.0f (ratio %.1f; paper reports ~6× vs the 2009 pure-tree winner)",
		pure.MeanNj(), cut.MeanNj(), ratio)
	// The gap scales with log N (the pure tree keeps adding shells of distant
	// cells); at this small N≈2·10⁴ it is ≈2×, at the paper's 10¹² it is ~6×.
	if ratio < 1.8 {
		t.Errorf("TreePM lists should be much shorter: ratio %.2f", ratio)
	}
	if 10*pure.Interactions < 18*cut.Interactions {
		t.Errorf("pure tree should cost far more interactions: %d vs %d", pure.Interactions, cut.Interactions)
	}
}
