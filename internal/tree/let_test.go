package tree

import (
	"math"
	"math/rand"
	"testing"

	"greem/internal/vec"
)

// letBruteSelect is the raw-particle reference selection: every particle
// within periodic distance rcut of the box, shifted by its closest image —
// exactly the sim package's baseline ghost scan.
func letBruteSelect(x, y, z, m []float64, lo, hi vec.V3, l, rcut float64) []LETParticle {
	var out []LETParticle
	for i := range x {
		sx, dx := BestShift(x[i], lo.X, hi.X, l)
		sy, dy := BestShift(y[i], lo.Y, hi.Y, l)
		sz, dz := BestShift(z[i], lo.Z, hi.Z, l)
		if dx*dx+dy*dy+dz*dz > rcut*rcut {
			continue
		}
		out = append(out, LETParticle{X: x[i] + sx, Y: y[i] + sy, Z: z[i] + sz, M: m[i]})
	}
	return out
}

// minPeriodicBoxDist is an independent check of a point's distance to a box
// under the 27-image torus, avoiding the per-axis BestShift factorization.
func minPeriodicBoxDist(p vec.V3, lo, hi vec.V3, l float64) float64 {
	best := math.Inf(1)
	clamp := func(v, a, b float64) float64 { return math.Max(a, math.Min(b, v)) }
	for kx := -1; kx <= 1; kx++ {
		for ky := -1; ky <= 1; ky++ {
			for kz := -1; kz <= 1; kz++ {
				q := vec.V3{X: p.X + float64(kx)*l, Y: p.Y + float64(ky)*l, Z: p.Z + float64(kz)*l}
				dx := q.X - clamp(q.X, lo.X, hi.X)
				dy := q.Y - clamp(q.Y, lo.Y, hi.Y)
				dz := q.Z - clamp(q.Z, lo.Z, hi.Z)
				if d := math.Sqrt(dx*dx + dy*dy + dz*dz); d < best {
					best = d
				}
			}
		}
	}
	return best
}

// TestLETThetaZeroMatchesBruteSelection: with θ = 0 no node is ever accepted
// as a monopole, so the LET walk must ship exactly the brute-force particle
// selection (order aside): same multiset of positions and masses.
func TestLETThetaZeroMatchesBruteSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x, y, z, m := plummer(rng, 600, 0.1)
	tr, err := Build(x, y, z, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	l := 1.0
	boxes := []struct{ lo, hi vec.V3 }{
		{vec.V3{X: 0.9, Y: 0, Z: 0}, vec.V3{X: 1.0, Y: 1, Z: 1}}, // wrap-adjacent slab
		{vec.V3{X: 0.6, Y: 0.6, Z: 0.6}, vec.V3{X: 0.8, Y: 0.8, Z: 0.8}},
		{vec.V3{X: 0, Y: 0, Z: 0}, vec.V3{X: 0.05, Y: 1, Z: 1}}, // thin slab at the wrap
	}
	var col LETCollector
	for bi, b := range boxes {
		for _, rcut := range []float64{0.05, 0.2} {
			got, st := col.Collect(tr, b.lo, b.hi, l, rcut, 0, nil)
			want := letBruteSelect(x, y, z, m, b.lo, b.hi, l, rcut)
			if st.Monopoles != 0 {
				t.Fatalf("box %d: θ=0 walk emitted %d monopoles", bi, st.Monopoles)
			}
			if len(got) != len(want) {
				t.Fatalf("box %d rcut %v: LET shipped %d sources, brute %d", bi, rcut, len(got), len(want))
			}
			// Compare as multisets keyed on the exact float values.
			seen := make(map[LETParticle]int, len(want))
			for _, p := range want {
				seen[p]++
			}
			for _, p := range got {
				if seen[p] == 0 {
					t.Fatalf("box %d rcut %v: LET shipped %+v not in brute selection", bi, rcut, p)
				}
				seen[p]--
			}
		}
	}
}

// TestLETInvariants checks the walk's contract at a production θ: total
// shipped mass never exceeds the mass within reach, every leaf source lies
// within rcut of the box, every monopole lies within rcut/(1−√3·θ) — the
// bound implied by d_com ≤ d_cell + √3·s with s < θ·d_com — and the walk
// visits at most the whole tree.
func TestLETInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y, z, m := plummer(rng, 800, 0.08)
	tr, err := Build(x, y, z, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The receiver box sits 0.2 from the dense Plummer core: inside rcut, so
	// the core is not pruned, and far enough that its small cells satisfy
	// s < θ·d and ship as monopoles.
	l, rcut, theta := 1.0, 0.25, 0.3
	lo := vec.V3{X: 0.7, Y: 0.1, Z: 0.1}
	hi := vec.V3{X: 1.0, Y: 0.9, Z: 0.9}
	var col LETCollector
	out, st := col.Collect(tr, lo, hi, l, rcut, theta, nil)
	if st.Leaves+st.Monopoles != uint64(len(out)) {
		t.Fatalf("stats %+v inconsistent with %d emitted", st, len(out))
	}
	if st.Monopoles == 0 {
		t.Fatalf("expected some pruned monopoles at θ=%v (clustered source)", theta)
	}
	monoBound := rcut / (1 - math.Sqrt(3)*theta)
	for _, p := range out {
		// Emitted positions are pre-shifted, so plain (non-periodic) distance
		// to the box must already be minimal.
		d := minPeriodicBoxDist(vec.V3{X: p.X, Y: p.Y, Z: p.Z}, lo, hi, l)
		if d > monoBound+1e-12 {
			t.Fatalf("source %+v at distance %v beyond monopole bound %v", p, d, monoBound)
		}
		if p.M <= 0 {
			t.Fatalf("non-positive shipped mass: %+v", p)
		}
	}
	var shipped float64
	for _, p := range out {
		shipped += p.M
	}
	var total float64
	for _, v := range m {
		total += v
	}
	if shipped > total+1e-12 {
		t.Fatalf("shipped mass %v exceeds total %v", shipped, total)
	}
	if st.NodesVisited > uint64(len(tr.nodes)) {
		t.Fatalf("visited %d nodes of %d", st.NodesVisited, len(tr.nodes))
	}
}

// TestLETCollectorReuse: a second walk with the same collector and a
// recycled output slice must produce identical output without allocating.
func TestLETCollectorReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	x, y, z, m := plummer(rng, 500, 0.1)
	tr, err := Build(x, y, z, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	l, rcut, theta := 1.0, 0.2, 0.4
	lo := vec.V3{X: 0.7, Y: 0.2, Z: 0.2}
	hi := vec.V3{X: 0.95, Y: 0.6, Z: 0.6}
	var col LETCollector
	first, _ := col.Collect(tr, lo, hi, l, rcut, theta, nil)
	buf := make([]LETParticle, 0, len(first))
	allocs := testing.AllocsPerRun(20, func() {
		buf, _ = col.Collect(tr, lo, hi, l, rcut, theta, buf[:0])
	})
	if allocs != 0 {
		t.Fatalf("warm Collect allocates %.1f/run", allocs)
	}
	if len(buf) != len(first) {
		t.Fatalf("reused walk emitted %d, first %d", len(buf), len(first))
	}
	for i := range buf {
		if buf[i] != first[i] {
			t.Fatalf("walk not deterministic at %d: %+v vs %+v", i, buf[i], first[i])
		}
	}
}

// TestLETEmptyTree: walking an empty or tiny tree must not panic and must
// ship nothing beyond what exists.
func TestLETEmptyTree(t *testing.T) {
	empty, err := Build(nil, nil, nil, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var col LETCollector
	out, st := col.Collect(empty, vec.V3{}, vec.V3{X: 1, Y: 1, Z: 1}, 1, 0.5, 0.5, nil)
	if len(out) != 0 || st.Leaves+st.Monopoles != 0 {
		t.Fatalf("empty tree shipped %d sources (%+v)", len(out), st)
	}
	one, err := Build([]float64{0.5}, []float64{0.5}, []float64{0.5}, []float64{2}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	out, _ = col.Collect(one, vec.V3{X: 0.4, Y: 0.4, Z: 0.4}, vec.V3{X: 0.6, Y: 0.6, Z: 0.6}, 1, 0.3, 0.5, nil)
	if len(out) != 1 || out[0].M != 2 {
		t.Fatalf("single-particle tree shipped %+v", out)
	}
}
