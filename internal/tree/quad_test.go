package tree

import (
	"math"
	"math/rand"
	"testing"

	"greem/internal/direct"
	"greem/internal/ppkern"
)

func TestQuadKernelTwoParticleAnalytic(t *testing.T) {
	// Two unit masses at z = ±s about the origin: Q = diag(−2s², −2s², 4s²).
	// On-axis field at distance r: a_z = −2G/r² − 6G·s²/r⁴ + O(s⁴)
	// (derived from φ = −Gm/(r−s) − Gm/(r+s)).
	s := 0.01
	q := &ppkern.QuadSource{}
	q.Append(0, 0, 0, 2, -2*s*s, -2*s*s, 4*s*s, 0, 0, 0)
	r := 1.0
	az := make([]float64, 1)
	ppkern.AccelQuad([]float64{0}, []float64{0}, []float64{r}, q, 1, 0, make([]float64, 1), make([]float64, 1), az)
	want := -2/(r*r) - 6*s*s/(r*r*r*r)
	if math.Abs(az[0]-want) > 1e-7*math.Abs(want) {
		t.Errorf("on-axis accel %v, want %v", az[0], want)
	}
	// Off-axis (equatorial plane): exact a_x = −2G·r/(r²+s²)^(3/2);
	// multipole: −2G/r² + 3G·(−2s²)·... evaluate via the kernel and compare
	// against the exact two-body sum.
	ax := make([]float64, 1)
	ppkern.AccelQuad([]float64{r}, []float64{0}, []float64{0}, q, 1, 0, ax, make([]float64, 1), make([]float64, 1))
	exact := -2 * r / math.Pow(r*r+s*s, 1.5)
	if math.Abs(ax[0]-exact) > 1e-6*math.Abs(exact) {
		t.Errorf("equatorial accel %v, want %v", ax[0], exact)
	}
}

func TestRootQuadrupoleIndependentOfTreeShape(t *testing.T) {
	// The root's moments are a property of the particles; LeafCap (and hence
	// the parallel-axis recursion depth) must not change them.
	rng := rand.New(rand.NewSource(1))
	x, y, z, m := randParticles(rng, 500)
	q1, err := Build(x, y, z, m, Options{LeafCap: 1, Quadrupole: true})
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Build(x, y, z, m, Options{LeafCap: 64, Quadrupole: true})
	if err != nil {
		t.Fatal(err)
	}
	a, b := q1.RootQuadrupole(), q2.RootQuadrupole()
	scale := 0.0
	for k := 0; k < 6; k++ {
		scale = math.Max(scale, math.Abs(a[k]))
	}
	for k := 0; k < 6; k++ {
		if math.Abs(a[k]-b[k]) > 1e-10*scale {
			t.Errorf("moment %d differs with tree shape: %v vs %v", k, a[k], b[k])
		}
	}
	// Tracelessness: xx + yy + zz = 0.
	if math.Abs(a[0]+a[1]+a[2]) > 1e-10*scale {
		t.Errorf("trace = %v", a[0]+a[1]+a[2])
	}
}

func TestQuadrupoleImprovesAccuracy(t *testing.T) {
	// The ablation claim: at fixed θ, monopole+quadrupole beats monopole.
	rng := rand.New(rand.NewSource(2))
	x, y, z, m := plummer(rng, 2000, 0.05)
	n := len(x)
	dirX := make([]float64, n)
	dirY := make([]float64, n)
	dirZ := make([]float64, n)
	direct.AccelPlain(x, y, z, m, 1, 1e-10, dirX, dirY, dirZ)

	rms := func(quad bool) float64 {
		tr, err := Build(x, y, z, m, Options{LeafCap: 16, Quadrupole: quad})
		if err != nil {
			t.Fatal(err)
		}
		ax := make([]float64, n)
		ay := make([]float64, n)
		az := make([]float64, n)
		Accel(tr, tr, 32, ForceOpts{G: 1, Theta: 0.7, Eps2: 1e-10, Quadrupole: quad}, ax, ay, az)
		var e2, r2 float64
		for i := 0; i < n; i++ {
			dx := ax[i] - dirX[i]
			dy := ay[i] - dirY[i]
			dz := az[i] - dirZ[i]
			e2 += dx*dx + dy*dy + dz*dz
			r2 += dirX[i]*dirX[i] + dirY[i]*dirY[i] + dirZ[i]*dirZ[i]
		}
		return math.Sqrt(e2 / r2)
	}
	mono := rms(false)
	quad := rms(true)
	t.Logf("θ=0.7 RMS error: monopole %.3e, quadrupole %.3e (ratio %.1f)", mono, quad, mono/quad)
	if quad >= mono/2 {
		t.Errorf("quadrupole (%v) should clearly beat monopole (%v)", quad, mono)
	}
}

func TestQuadrupolePanicsInCutoffMode(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y, z, m := randParticles(rng, 50)
	tr, _ := Build(x, y, z, m, Options{LeafCap: 8, Quadrupole: true})
	defer func() {
		if recover() == nil {
			t.Error("expected panic for quadrupole + cutoff")
		}
	}()
	ax := make([]float64, 50)
	Accel(tr, tr, 8, ForceOpts{G: 1, Theta: 0.5, Cutoff: true, Rcut: 0.1, Quadrupole: true}, ax, ax, ax)
}

func TestQuadWithoutMomentsFallsBackToMonopole(t *testing.T) {
	// A tree built without quadrupoles traversed with Quadrupole on must
	// still produce the monopole answer (useQuad is false).
	rng := rand.New(rand.NewSource(4))
	x, y, z, m := randParticles(rng, 300)
	tr, _ := Build(x, y, z, m, DefaultOptions())
	n := len(x)
	a1 := make([]float64, n)
	b1 := make([]float64, n)
	c1 := make([]float64, n)
	Accel(tr, tr, 32, ForceOpts{G: 1, Theta: 0.6, Eps2: 1e-9}, a1, b1, c1)
	a2 := make([]float64, n)
	b2 := make([]float64, n)
	c2 := make([]float64, n)
	Accel(tr, tr, 32, ForceOpts{G: 1, Theta: 0.6, Eps2: 1e-9, Quadrupole: true}, a2, b2, c2)
	for i := 0; i < n; i++ {
		if a1[i] != a2[i] {
			t.Fatalf("fallback differs at %d", i)
		}
	}
}
