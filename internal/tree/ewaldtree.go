package tree

import (
	"greem/internal/ewtab"
	"greem/internal/ppkern"
)

// AccelPeriodicTree computes fully periodic accelerations with the *pure
// tree* method — the approach of the pre-TreePM Gordon-Bell codes, adapted
// to periodic boundaries GADGET-style: one traversal with minimum-image
// distances, every accepted entry evaluated as min-image Newton plus the
// tabulated Ewald image correction. No cutoff prunes the walk, so the
// interaction lists must resolve the force at all scales; comparing its
// ⟨Nj⟩ with the TreePM short-range walk at matched accuracy reproduces the
// paper's §I/§III-B operation-count argument for TreePM.
//
// Groups are formed on tgt as usual; src supplies moments (monopole only).
// opt.L must be the periodic box side; opt.Cutoff/Periodic are ignored.
// Group extents must be small against L/2 (guaranteed for sensible ni).
func AccelPeriodicTree(src, tgt *Tree, ni int, opt ForceOpts, tab *ewtab.Table, ax, ay, az []float64) Stats {
	groups := tgt.Groups(ni)
	var st Stats
	var list ppkern.Source
	gax := make([]float64, 0, 256)
	gay := make([]float64, 0, 256)
	gaz := make([]float64, 0, 256)
	for _, g := range groups {
		list.Reset()
		visited, nPart, nNode := src.collectEwald(&list, g, opt)
		n := int(g.Count)
		st.Groups++
		st.SumNi += uint64(n)
		st.ListParticles += nPart
		st.ListNodes += nNode
		st.Interactions += uint64(n) * uint64(list.Len())
		st.NodesVisited += visited

		gax = resize(gax, n)
		gay = resize(gay, n)
		gaz = resize(gaz, n)
		xi := tgt.X[g.Start : g.Start+g.Count]
		yi := tgt.Y[g.Start : g.Start+g.Count]
		zi := tgt.Z[g.Start : g.Start+g.Count]
		ewtab.Accel(xi, yi, zi, &list, tab, opt.G, opt.Eps2, gax, gay, gaz)
		for k := 0; k < n; k++ {
			orig := tgt.Perm[int(g.Start)+k]
			ax[orig] += gax[k]
			ay[orig] += gay[k]
			az[orig] += gaz[k]
		}
	}
	return st
}

// collectEwald is the minimum-image traversal: distances to the group are
// taken modulo the box, and accepted entries are appended at the image
// closest to the group's center.
func (t *Tree) collectEwald(list *ppkern.Source, g Group, opt ForceOpts) (visited, nPart, nNode uint64) {
	if len(t.nodes) == 0 {
		return 0, 0, 0
	}
	l := opt.L

	stack := make([]int32, 0, 64)
	stack = append(stack, 0)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &t.nodes[i]
		visited++

		cdx := axisDistPointPeriodic(g.MinX, g.MaxX, nd.comx, l)
		cdy := axisDistPointPeriodic(g.MinY, g.MaxY, nd.comy, l)
		cdz := axisDistPointPeriodic(g.MinZ, g.MaxZ, nd.comz, l)
		d2 := cdx*cdx + cdy*cdy + cdz*cdz
		s := 2 * nd.half
		if d2 > 0 && s*s < opt.Theta*opt.Theta*d2 {
			// Positions are appended unwrapped; the ewtab kernel minimum-
			// images each pair displacement itself.
			list.Append(nd.comx, nd.comy, nd.comz, nd.mass)
			nNode++
			continue
		}
		if nd.firstChild < 0 {
			for p := nd.start; p < nd.start+nd.count; p++ {
				list.Append(t.X[p], t.Y[p], t.Z[p], t.M[p])
				nPart++
			}
			continue
		}
		for c := nd.firstChild; c < nd.firstChild+int32(nd.nChild); c++ {
			stack = append(stack, c)
		}
	}
	return visited, nPart, nNode
}

// axisDistPointPeriodic returns the minimum periodic 1-D distance from the
// interval [lo, hi] to point p in a box of period l.
func axisDistPointPeriodic(lo, hi, p, l float64) float64 {
	best := -1.0
	for k := -1; k <= 1; k++ {
		d := axisDistPoint(lo, hi, p+float64(k)*l)
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}
