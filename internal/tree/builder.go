package tree

// Builder owns a reusable tree arena: the particle arrays, Perm, node and
// quadrupole storage, and the octant-partition scratch all persist across
// Rebuild calls, so steady-state tree construction (the simulation rebuilds
// 2–3 trees per substep) allocates nothing once the buffers have grown to
// the working-set size. The serial construction path is zero-alloc; the
// parallel path (Options.Workers > 1 over > 4096 particles) still allocates
// its goroutine arenas.
//
// A Builder is not safe for concurrent use, and the *Tree returned by
// Rebuild aliases the arena: it is valid only until the next Rebuild.
type Builder struct {
	t  Tree
	sc buildScratch
}

// NewBuilder returns an empty Builder; the arena grows on first use.
func NewBuilder() *Builder { return &Builder{} }

// Rebuild constructs an oct-tree over the given particles into the retained
// arena. Semantics are identical to Build — same structure, same particle
// ordering, same moments, up to internal node numbering (which Build also
// leaves unspecified with Workers > 1). The returned tree is owned by the
// Builder and valid until the next Rebuild.
func (b *Builder) Rebuild(x, y, z, m []float64, opt Options) (*Tree, error) {
	if err := buildInto(&b.t, &b.sc, x, y, z, m, opt); err != nil {
		return nil, err
	}
	return &b.t, nil
}
