// Locally-essential-tree (LET) export: the structure-aware boundary exchange
// of GreeM (Ishiyama, Fukushige & Makino 2009) and TPM-style codes (Bode &
// Ostriker 2000). Instead of scanning every local particle against every near
// process, the local tree is walked once per neighbour against that
// neighbour's (periodic-shifted) domain box: subtrees farther than rcut are
// pruned outright (their force is the PM's), subtrees satisfying the opening
// criterion size/dist < θ are shipped as a single pruned monopole
// (superparticle), and only the remainder ships raw leaf particles. Both the
// O(n·p_near) selection scan and the wire bytes collapse, and the error
// introduced by pruning is bounded by the same θ criterion the receiver's own
// traversal enforces: the distance from a neighbour's whole domain box lower-
// bounds the distance from any target group inside it, so an accepted node
// satisfies size < θ·d(group) for every group the receiver will ever form.
package tree

import (
	"math"

	"greem/internal/vec"
)

// LETParticle is one boundary source shipped to a neighbour — either a raw
// leaf particle or a pruned node monopole — with its position already shifted
// into the receiver's periodic frame. It is the ghost wire format.
type LETParticle struct {
	X, Y, Z, M float64
}

// LETStats counts what one LET walk emitted.
type LETStats struct {
	NodesVisited uint64
	Monopoles    uint64 // pruned superparticles emitted
	Leaves       uint64 // raw leaf particles emitted
}

// Add accumulates other into s.
func (s *LETStats) Add(o LETStats) {
	s.NodesVisited += o.NodesVisited
	s.Monopoles += o.Monopoles
	s.Leaves += o.Leaves
}

// BestShift returns the periodic shift k·L (k ∈ {−1,0,1}) that brings
// coordinate c closest to the interval [lo, hi], and the resulting distance.
// Exactly one image ships per source and axis — the closest — which is the
// selection contract the raw particle-ghost exchange has always used (see the
// sim package's table-driven edge-case tests locking it in).
func BestShift(c, lo, hi, l float64) (shift, dist float64) {
	best := -1.0
	bestShift := 0.0
	for k := -1; k <= 1; k++ {
		cc := c + float64(k)*l
		var d float64
		switch {
		case cc < lo:
			d = lo - cc
		case cc > hi:
			d = cc - hi
		}
		if best < 0 || d < best {
			best = d
			bestShift = float64(k) * l
		}
	}
	return bestShift, best
}

// AxisDistPeriodic returns the 1-D distance between intervals [alo, ahi] and
// [blo, bhi] minimized over the periodic images k·L of the first (0 if any
// image overlaps).
func AxisDistPeriodic(alo, ahi, blo, bhi, l float64) float64 {
	best := -1.0
	for k := -1; k <= 1; k++ {
		lo := alo + float64(k)*l
		hi := ahi + float64(k)*l
		var d float64
		switch {
		case hi < blo:
			d = blo - hi
		case lo > bhi:
			d = lo - bhi
		}
		if best < 0 || d < best {
			best = d
		}
	}
	return best
}

// BoxDistPeriodic returns the minimum periodic distance between two boxes.
// Axes are independent under a rectangular period, so the minimum over the 27
// shift vectors factors into per-axis minima.
func BoxDistPeriodic(alo, ahi, blo, bhi vec.V3, l float64) float64 {
	dx := AxisDistPeriodic(alo.X, ahi.X, blo.X, bhi.X, l)
	dy := AxisDistPeriodic(alo.Y, ahi.Y, blo.Y, bhi.Y, l)
	dz := AxisDistPeriodic(alo.Z, ahi.Z, blo.Z, bhi.Z, l)
	return math.Sqrt(dx*dx + dy*dy + dz*dz)
}

// LETCollector owns the traversal scratch for LET walks so repeated walks
// (one per near neighbour per substep) run without steady-state allocation.
// The zero value is ready to use. Not safe for concurrent walks.
type LETCollector struct {
	stack []int32
}

// Collect walks t against the receiver domain box [lo, hi] under periodic
// wrap of side l and appends the locally-essential source set to out:
//   - subtrees whose cell is farther than rcut from every periodic image of
//     the box are pruned (zero contribution under the cutoff kernel);
//   - nodes satisfying the opening criterion s < θ·d — s the cell side, d the
//     periodic distance from the box to the node's center of mass — ship as a
//     single monopole at the COM;
//   - remaining leaves ship their particles, individually filtered by the
//     same within-rcut periodic predicate the raw exchange applies.
//
// Emitted positions are pre-shifted into the receiver's frame by the closest
// periodic image per axis (BestShift). The receiver box must not be the box
// containing t's own particles: a source set for one's own domain would
// duplicate every local particle at shift zero.
func (c *LETCollector) Collect(t *Tree, lo, hi vec.V3, l, rcut, theta float64, out []LETParticle) ([]LETParticle, LETStats) {
	var st LETStats
	if len(t.nodes) == 0 {
		return out, st
	}
	r2 := rcut * rcut
	th2 := theta * theta
	stack := c.stack[:0]
	stack = append(stack, 0)
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nd := &t.nodes[i]
		if nd.count == 0 {
			continue
		}
		st.NodesVisited++

		// Prune: periodic distance from the node cell to the receiver box.
		dx := AxisDistPeriodic(nd.cx-nd.half, nd.cx+nd.half, lo.X, hi.X, l)
		dy := AxisDistPeriodic(nd.cy-nd.half, nd.cy+nd.half, lo.Y, hi.Y, l)
		dz := AxisDistPeriodic(nd.cz-nd.half, nd.cz+nd.half, lo.Z, hi.Z, l)
		if dx*dx+dy*dy+dz*dz > r2 {
			continue
		}

		// Opening criterion against the whole receiver box: d lower-bounds the
		// distance from any target group the receiver forms inside it.
		sx, cdx := BestShift(nd.comx, lo.X, hi.X, l)
		sy, cdy := BestShift(nd.comy, lo.Y, hi.Y, l)
		sz, cdz := BestShift(nd.comz, lo.Z, hi.Z, l)
		d2 := cdx*cdx + cdy*cdy + cdz*cdz
		s := 2 * nd.half
		if d2 > 0 && s*s < th2*d2 {
			out = append(out, LETParticle{X: nd.comx + sx, Y: nd.comy + sy, Z: nd.comz + sz, M: nd.mass})
			st.Monopoles++
			continue
		}
		if nd.firstChild < 0 {
			for p := nd.start; p < nd.start+nd.count; p++ {
				px, pdx := BestShift(t.X[p], lo.X, hi.X, l)
				py, pdy := BestShift(t.Y[p], lo.Y, hi.Y, l)
				pz, pdz := BestShift(t.Z[p], lo.Z, hi.Z, l)
				if pdx*pdx+pdy*pdy+pdz*pdz > r2 {
					continue
				}
				out = append(out, LETParticle{X: t.X[p] + px, Y: t.Y[p] + py, Z: t.Z[p] + pz, M: t.M[p]})
				st.Leaves++
			}
			continue
		}
		for ch := nd.firstChild; ch < nd.firstChild+int32(nd.nChild); ch++ {
			stack = append(stack, ch)
		}
	}
	c.stack = stack[:0]
	return out, st
}
