package tree

import (
	"math"
	"math/rand"
	"testing"

	"greem/internal/direct"
)

func randParticles(rng *rand.Rand, n int) (x, y, z, m []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	m = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i], y[i], z[i] = rng.Float64(), rng.Float64(), rng.Float64()
		m[i] = rng.Float64() + 0.5
	}
	return
}

// plummer generates a centrally concentrated distribution (clustered like
// collapsed dark-matter structures).
func plummer(rng *rand.Rand, n int, scale float64) (x, y, z, m []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	m = make([]float64, n)
	for i := 0; i < n; i++ {
		r := scale / math.Sqrt(math.Pow(rng.Float64()*0.99+1e-6, -2.0/3.0)-1)
		ct := 2*rng.Float64() - 1
		st := math.Sqrt(1 - ct*ct)
		ph := 2 * math.Pi * rng.Float64()
		x[i] = 0.5 + r*st*math.Cos(ph)
		y[i] = 0.5 + r*st*math.Sin(ph)
		z[i] = 0.5 + r*ct
		m[i] = 1.0 / float64(n)
	}
	return
}

func TestBuildBasicInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, y, z, m := randParticles(rng, 500)
	tr, err := Build(x, y, z, m, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumParticles() != 500 {
		t.Errorf("NumParticles = %d", tr.NumParticles())
	}
	var want float64
	for _, v := range m {
		want += v
	}
	if math.Abs(tr.TotalMass()-want) > 1e-10 {
		t.Errorf("TotalMass = %v, want %v", tr.TotalMass(), want)
	}
	// Perm must be a permutation and tree-order data must match originals.
	seen := make([]bool, 500)
	for i, p := range tr.Perm {
		if seen[p] {
			t.Fatalf("Perm repeats index %d", p)
		}
		seen[p] = true
		if tr.X[i] != x[p] || tr.Y[i] != y[p] || tr.Z[i] != z[p] || tr.M[i] != m[p] {
			t.Fatalf("tree-order particle %d does not match original %d", i, p)
		}
	}
}

func TestBuildEmptyAndSingle(t *testing.T) {
	tr, err := Build(nil, nil, nil, nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumParticles() != 0 {
		t.Error("empty tree has particles")
	}
	tr, err = Build([]float64{0.5}, []float64{0.5}, []float64{0.5}, []float64{2}, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalMass() != 2 {
		t.Errorf("single mass = %v", tr.TotalMass())
	}
}

func TestBuildCoincidentParticles(t *testing.T) {
	// All particles at the same point must not recurse forever (MaxDepth).
	n := 50
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	for i := range x {
		x[i], y[i], z[i], m[i] = 0.3, 0.3, 0.3, 1
	}
	tr, err := Build(x, y, z, m, Options{LeafCap: 4, MaxDepth: 10})
	if err != nil {
		t.Fatal(err)
	}
	if tr.TotalMass() != 50 {
		t.Errorf("mass = %v", tr.TotalMass())
	}
}

func TestBuildMismatchedLengths(t *testing.T) {
	if _, err := Build(make([]float64, 3), make([]float64, 2), make([]float64, 3), make([]float64, 3), DefaultOptions()); err == nil {
		t.Error("mismatched lengths accepted")
	}
}

func TestGroupsCoverAllParticlesOnce(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x, y, z, m := randParticles(rng, 777)
	tr, _ := Build(x, y, z, m, DefaultOptions())
	for _, cap := range []int{1, 8, 64, 1000} {
		groups := tr.Groups(cap)
		covered := make([]bool, 777)
		for _, g := range groups {
			if int(g.Count) > cap && cap >= 1 {
				t.Errorf("cap=%d: group of size %d", cap, g.Count)
			}
			for p := g.Start; p < g.Start+g.Count; p++ {
				if covered[p] {
					t.Fatalf("particle %d in two groups", p)
				}
				covered[p] = true
				if tr.X[p] < g.MinX || tr.X[p] > g.MaxX ||
					tr.Y[p] < g.MinY || tr.Y[p] > g.MaxY ||
					tr.Z[p] < g.MinZ || tr.Z[p] > g.MaxZ {
					t.Fatalf("particle outside its group box")
				}
			}
		}
		for p, ok := range covered {
			if !ok {
				t.Fatalf("cap=%d: particle %d not covered", cap, p)
			}
		}
	}
}

func TestAccelPlainMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x, y, z, m := plummer(rng, 600, 0.05)
	tr, _ := Build(x, y, z, m, DefaultOptions())
	n := len(x)

	dirX := make([]float64, n)
	dirY := make([]float64, n)
	dirZ := make([]float64, n)
	direct.AccelPlain(x, y, z, m, 1, 1e-8, dirX, dirY, dirZ)

	for _, theta := range []float64{0.2, 0.5, 0.8} {
		ax := make([]float64, n)
		ay := make([]float64, n)
		az := make([]float64, n)
		st := Accel(tr, tr, 32, ForceOpts{G: 1, Theta: theta, Eps2: 1e-8}, ax, ay, az)
		var e2, r2 float64
		for i := 0; i < n; i++ {
			dx := ax[i] - dirX[i]
			dy := ay[i] - dirY[i]
			dz := az[i] - dirZ[i]
			e2 += dx*dx + dy*dy + dz*dz
			r2 += dirX[i]*dirX[i] + dirY[i]*dirY[i] + dirZ[i]*dirZ[i]
		}
		rms := math.Sqrt(e2 / r2)
		// Monopole BH error scales roughly like θ²; generous envelopes.
		bound := 0.05 * theta * theta
		if theta == 0.2 {
			bound = 0.005 // small-θ regime dominated by rare marginal cells
		}
		if rms > bound {
			t.Errorf("θ=%v: RMS error %v > %v", theta, rms, bound)
		}
		if st.Groups == 0 || st.Interactions == 0 {
			t.Errorf("θ=%v: empty stats %+v", theta, st)
		}
	}
}

func TestAccelThetaZeroIsExact(t *testing.T) {
	// θ = 0 forbids multipole acceptance entirely: pure direct summation.
	rng := rand.New(rand.NewSource(4))
	x, y, z, m := randParticles(rng, 200)
	tr, _ := Build(x, y, z, m, DefaultOptions())
	n := len(x)
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	st := Accel(tr, tr, 16, ForceOpts{G: 1, Theta: 0, Eps2: 1e-9}, ax, ay, az)
	if st.ListNodes != 0 {
		t.Errorf("θ=0 accepted %d multipoles", st.ListNodes)
	}
	dirX := make([]float64, n)
	dirY := make([]float64, n)
	dirZ := make([]float64, n)
	direct.AccelPlain(x, y, z, m, 1, 1e-9, dirX, dirY, dirZ)
	for i := 0; i < n; i++ {
		if math.Abs(ax[i]-dirX[i]) > 1e-9*(1+math.Abs(dirX[i])) {
			t.Fatalf("θ=0 differs from direct at %d: %v vs %v", i, ax[i], dirX[i])
		}
	}
}

func TestAccelCutoffMatchesDirectCutoff(t *testing.T) {
	// TreePM short-range mode vs direct cutoff summation, periodic box.
	rng := rand.New(rand.NewSource(5))
	x, y, z, m := randParticles(rng, 400)
	tr, _ := Build(x, y, z, m, DefaultOptions())
	n := len(x)
	l, rcut := 1.0, 0.15

	dirX := make([]float64, n)
	dirY := make([]float64, n)
	dirZ := make([]float64, n)
	direct.AccelCutoff(x, y, z, m, 1, l, rcut, 1e-10, dirX, dirY, dirZ)

	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	st := Accel(tr, tr, 32, ForceOpts{
		G: 1, Theta: 0.3, Eps2: 1e-10, Cutoff: true, Rcut: rcut, Periodic: true, L: l,
	}, ax, ay, az)
	var e2, r2 float64
	for i := 0; i < n; i++ {
		dx := ax[i] - dirX[i]
		dy := ay[i] - dirY[i]
		dz := az[i] - dirZ[i]
		e2 += dx*dx + dy*dy + dz*dz
		r2 += dirX[i]*dirX[i] + dirY[i]*dirY[i] + dirZ[i]*dirZ[i]
	}
	rms := math.Sqrt(e2 / r2)
	if rms > 0.005 {
		t.Errorf("cutoff tree vs direct RMS %v", rms)
	}
	if st.MeanNi() <= 0 || st.MeanNj() <= 0 {
		t.Errorf("bad stats: %+v", st)
	}
	t.Logf("cutoff tree RMS %v, ⟨Ni⟩=%.1f ⟨Nj⟩=%.1f", rms, st.MeanNi(), st.MeanNj())
}

func TestCutoffShortensInteractionLists(t *testing.T) {
	// Paper §III-B: the cutoff makes ⟨Nj⟩ much shorter than a pure tree's.
	rng := rand.New(rand.NewSource(6))
	x, y, z, m := randParticles(rng, 3000)
	tr, _ := Build(x, y, z, m, DefaultOptions())
	n := len(x)
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	pure := Accel(tr, tr, 64, ForceOpts{G: 1, Theta: 0.5, Eps2: 1e-10}, ax, ay, az)
	cut := Accel(tr, tr, 64, ForceOpts{G: 1, Theta: 0.5, Eps2: 1e-10, Cutoff: true, Rcut: 0.08, Periodic: true, L: 1}, ax, ay, az)
	if cut.MeanNj() >= pure.MeanNj() {
		t.Errorf("cutoff list (%.1f) not shorter than pure tree list (%.1f)", cut.MeanNj(), pure.MeanNj())
	}
	t.Logf("⟨Nj⟩ pure=%.1f cutoff=%.1f (ratio %.2f)", pure.MeanNj(), cut.MeanNj(), pure.MeanNj()/cut.MeanNj())
}

func TestGroupingReducesTraversalCost(t *testing.T) {
	// Barnes' modified algorithm: traversal node visits per particle drop
	// roughly by ⟨Ni⟩ compared to per-particle traversal, while ⟨Nj⟩ grows.
	rng := rand.New(rand.NewSource(7))
	x, y, z, m := randParticles(rng, 4000)
	tr, _ := Build(x, y, z, m, DefaultOptions())
	n := len(x)
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	per := Accel(tr, tr, 1, ForceOpts{G: 1, Theta: 0.5, Eps2: 1e-10}, ax, ay, az)
	grp := Accel(tr, tr, 128, ForceOpts{G: 1, Theta: 0.5, Eps2: 1e-10}, ax, ay, az)
	if grp.NodesVisited*4 > per.NodesVisited {
		t.Errorf("grouping did not reduce traversal: %d vs %d visits", grp.NodesVisited, per.NodesVisited)
	}
	if grp.MeanNj() < per.MeanNj() {
		t.Errorf("grouped list (%.1f) should be longer than per-particle list (%.1f)", grp.MeanNj(), per.MeanNj())
	}
	t.Logf("visits: per-particle %d, grouped %d; ⟨Nj⟩ %.1f → %.1f",
		per.NodesVisited, grp.NodesVisited, per.MeanNj(), grp.MeanNj())
}

func TestAccelMomentumConservationClustered(t *testing.T) {
	// With θ > 0 the tree force is not exactly antisymmetric, but group
	// self-interactions are direct, so residual momentum drift stays small.
	rng := rand.New(rand.NewSource(8))
	x, y, z, m := plummer(rng, 1000, 0.03)
	tr, _ := Build(x, y, z, m, DefaultOptions())
	n := len(x)
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	Accel(tr, tr, 48, ForceOpts{G: 1, Theta: 0.4, Eps2: 1e-8}, ax, ay, az)
	var px, py, pz, scale float64
	for i := 0; i < n; i++ {
		px += m[i] * ax[i]
		py += m[i] * ay[i]
		pz += m[i] * az[i]
		scale += m[i] * (math.Abs(ax[i]) + math.Abs(ay[i]) + math.Abs(az[i]))
	}
	if (math.Abs(px)+math.Abs(py)+math.Abs(pz))/scale > 1e-3 {
		t.Errorf("momentum drift %v %v %v vs scale %v", px, py, pz, scale)
	}
}

func TestFastKernelMatchesScalarInTree(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	x, y, z, m := randParticles(rng, 300)
	tr, _ := Build(x, y, z, m, DefaultOptions())
	n := len(x)
	base := ForceOpts{G: 1, Theta: 0.4, Eps2: 1e-8, Cutoff: true, Rcut: 0.2, Periodic: true, L: 1}
	a1x := make([]float64, n)
	a1y := make([]float64, n)
	a1z := make([]float64, n)
	Accel(tr, tr, 32, base, a1x, a1y, a1z)
	fast := base
	fast.FastKernel = true
	a2x := make([]float64, n)
	a2y := make([]float64, n)
	a2z := make([]float64, n)
	Accel(tr, tr, 32, fast, a2x, a2y, a2z)
	for i := 0; i < n; i++ {
		if math.Abs(a1x[i]-a2x[i]) > 1e-5*(1+math.Abs(a1x[i])) {
			t.Fatalf("fast kernel differs at %d: %v vs %v", i, a1x[i], a2x[i])
		}
	}
}

func BenchmarkTreeBuild10k(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	x, y, z, m := randParticles(rng, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(x, y, z, m, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreeForce10k(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	x, y, z, m := randParticles(rng, 10000)
	tr, _ := Build(x, y, z, m, DefaultOptions())
	n := len(x)
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	opt := ForceOpts{G: 1, Theta: 0.5, Eps2: 1e-8, Cutoff: true, Rcut: 0.1, Periodic: true, L: 1, FastKernel: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Accel(tr, tr, 100, opt, ax, ay, az)
	}
}

func TestWorkersMatchSerial(t *testing.T) {
	// The MPI/OpenMP hybrid: multi-goroutine traversal must reproduce the
	// serial result exactly (groups own disjoint outputs).
	rng := rand.New(rand.NewSource(12))
	x, y, z, m := randParticles(rng, 3000)
	tr, _ := Build(x, y, z, m, DefaultOptions())
	n := len(x)
	base := ForceOpts{G: 1, Theta: 0.5, Eps2: 1e-9, Cutoff: true, Rcut: 0.12, Periodic: true, L: 1}
	a1 := make([]float64, n)
	b1 := make([]float64, n)
	c1 := make([]float64, n)
	st1 := Accel(tr, tr, 64, base, a1, b1, c1)
	par := base
	par.Workers = 4
	a2 := make([]float64, n)
	b2 := make([]float64, n)
	c2 := make([]float64, n)
	st2 := Accel(tr, tr, 64, par, a2, b2, c2)
	for i := 0; i < n; i++ {
		if a1[i] != a2[i] || b1[i] != b2[i] || c1[i] != c2[i] {
			t.Fatalf("threaded result differs at %d", i)
		}
	}
	if st1.Interactions != st2.Interactions || st1.Groups != st2.Groups ||
		st1.ListParticles != st2.ListParticles || st1.ListNodes != st2.ListNodes {
		t.Errorf("stats differ: %+v vs %+v", st1, st2)
	}
}

func TestWorkersMoreThanGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x, y, z, m := randParticles(rng, 40)
	tr, _ := Build(x, y, z, m, DefaultOptions())
	ax := make([]float64, 40)
	ay := make([]float64, 40)
	az := make([]float64, 40)
	st := Accel(tr, tr, 1000, ForceOpts{G: 1, Theta: 0.5, Eps2: 1e-9, Workers: 16}, ax, ay, az)
	if st.Groups == 0 {
		t.Error("no groups processed")
	}
}

func TestParallelBuildMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x, y, z, m := plummer(rng, 30000, 0.05)
	serial, err := Build(x, y, z, m, Options{LeafCap: 16})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Build(x, y, z, m, Options{LeafCap: 16, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Identical structure: node count, total mass, root COM, and the exact
	// particle reordering (the same deterministic octant partition runs,
	// just concurrently per subtree).
	if serial.NumNodes() != par.NumNodes() {
		t.Errorf("node counts differ: %d vs %d", serial.NumNodes(), par.NumNodes())
	}
	if serial.TotalMass() != par.TotalMass() {
		t.Errorf("mass differs")
	}
	for i := range serial.Perm {
		if serial.Perm[i] != par.Perm[i] {
			t.Fatalf("particle ordering differs at %d", i)
		}
	}
	// Forces agree to summation-order roundoff.
	n := len(x)
	a1 := make([]float64, n)
	b1 := make([]float64, n)
	c1 := make([]float64, n)
	a2 := make([]float64, n)
	b2 := make([]float64, n)
	c2 := make([]float64, n)
	opt := ForceOpts{G: 1, Theta: 0.5, Eps2: 1e-8}
	Accel(serial, serial, 64, opt, a1, b1, c1)
	Accel(par, par, 64, opt, a2, b2, c2)
	for i := 0; i < n; i++ {
		if math.Abs(a1[i]-a2[i]) > 1e-9*(1+math.Abs(a1[i])) {
			t.Fatalf("forces differ at %d: %v vs %v", i, a1[i], a2[i])
		}
	}
}

func TestParallelBuildSmallFallsBack(t *testing.T) {
	// Small inputs use the serial path; behaviour must be unchanged.
	rng := rand.New(rand.NewSource(15))
	x, y, z, m := randParticles(rng, 500)
	s1, _ := Build(x, y, z, m, Options{LeafCap: 8})
	s2, _ := Build(x, y, z, m, Options{LeafCap: 8, Workers: 8})
	if s1.NumNodes() != s2.NumNodes() {
		t.Errorf("node counts differ: %d vs %d", s1.NumNodes(), s2.NumNodes())
	}
}
