package treepm

import (
	"math"
	"math/rand"
	"testing"

	"greem/internal/ewald"
)

func randSystem(rng *rand.Rand, n int) (x, y, z, m []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	m = make([]float64, n)
	for i := 0; i < n; i++ {
		x[i], y[i], z[i] = rng.Float64(), rng.Float64(), rng.Float64()
		m[i] = 1
	}
	return
}

func rmsErr(ax, ay, az, rx, ry, rz []float64) float64 {
	var e2, r2 float64
	for i := range ax {
		dx := ax[i] - rx[i]
		dy := ay[i] - ry[i]
		dz := az[i] - rz[i]
		e2 += dx*dx + dy*dy + dz*dz
		r2 += rx[i]*rx[i] + ry[i]*ry[i] + rz[i]*rz[i]
	}
	return math.Sqrt(e2 / r2)
}

func TestDefaults(t *testing.T) {
	s, err := New(Config{L: 1, G: 1, NMesh: 32})
	if err != nil {
		t.Fatal(err)
	}
	cfg := s.Config()
	if cfg.Rcut != 3.0/32 {
		t.Errorf("default Rcut = %v, want 3/32", cfg.Rcut)
	}
	if cfg.Theta != 0.5 || cfg.Ni != 100 || cfg.LeafCap != 16 {
		t.Errorf("defaults: %+v", cfg)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{L: 0, G: 1, NMesh: 32}); err == nil {
		t.Error("L=0 accepted")
	}
	if _, err := New(Config{L: 1, G: 1, NMesh: 1}); err == nil {
		t.Error("NMesh=1 accepted")
	}
	if _, err := New(Config{L: 1, G: 1, NMesh: 33}); err == nil {
		t.Error("non-power-of-two NMesh accepted")
	}
}

func TestTreePMMatchesEwald(t *testing.T) {
	// End-to-end: total TreePM force vs exact Ewald summation at the paper's
	// operating point (rcut = 3 mesh cells). Error budget is the PM
	// mesh-scale discretization (~6% RMS for a sparse random configuration;
	// see the mesh package tests), plus the θ = 0.4 tree error (<0.5%).
	rng := rand.New(rand.NewSource(1))
	n := 32
	x, y, z, m := randSystem(rng, n)
	s, err := New(Config{L: 1, G: 1, NMesh: 32, Theta: 0.4, Ni: 16})
	if err != nil {
		t.Fatal(err)
	}
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	if _, err := s.Accel(x, y, z, m, ax, ay, az); err != nil {
		t.Fatal(err)
	}
	rx := make([]float64, n)
	ry := make([]float64, n)
	rz := make([]float64, n)
	ewald.New(1, 1).Accel(x, y, z, m, rx, ry, rz)
	rms := rmsErr(ax, ay, az, rx, ry, rz)
	t.Logf("TreePM vs Ewald RMS: %.3e", rms)
	if rms > 0.10 {
		t.Errorf("RMS error %v too large", rms)
	}
}

func TestTreePMMatchesP3M(t *testing.T) {
	// TreePM and P3M share the PM part; with a small opening angle their
	// totals must agree tightly (the tree error is the only difference).
	rng := rand.New(rand.NewSource(2))
	n := 300
	x, y, z, m := randSystem(rng, n)
	s, _ := New(Config{L: 1, G: 1, NMesh: 16, Theta: 0.3, Ni: 32, Eps2: 1e-10})
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	if _, err := s.Accel(x, y, z, m, ax, ay, az); err != nil {
		t.Fatal(err)
	}
	px := make([]float64, n)
	py := make([]float64, n)
	pz := make([]float64, n)
	pairs := s.AccelP3M(x, y, z, m, px, py, pz)
	if pairs == 0 {
		t.Fatal("P3M evaluated no pairs")
	}
	if rms := rmsErr(ax, ay, az, px, py, pz); rms > 0.005 {
		t.Errorf("TreePM vs P3M RMS %v", rms)
	}
}

func TestSpectralAblationAtLeastAsAccurate(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 24
	x, y, z, m := randSystem(rng, n)
	rx := make([]float64, n)
	ry := make([]float64, n)
	rz := make([]float64, n)
	ewald.New(1, 1).Accel(x, y, z, m, rx, ry, rz)
	run := func(spectral bool) float64 {
		s, _ := New(Config{L: 1, G: 1, NMesh: 32, Theta: 0.3, Ni: 16, SpectralPM: spectral})
		ax := make([]float64, n)
		ay := make([]float64, n)
		az := make([]float64, n)
		if _, err := s.Accel(x, y, z, m, ax, ay, az); err != nil {
			t.Fatal(err)
		}
		return rmsErr(ax, ay, az, rx, ry, rz)
	}
	fd, sp := run(false), run(true)
	t.Logf("FD RMS %.3e, spectral RMS %.3e", fd, sp)
	if sp > fd*1.2 {
		t.Errorf("spectral (%v) much worse than FD (%v)", sp, fd)
	}
}

func TestMomentumConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 200
	x, y, z, m := randSystem(rng, n)
	s, _ := New(Config{L: 1, G: 1, NMesh: 16, Ni: 32, Eps2: 1e-9, FastKernel: true})
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	if _, err := s.Accel(x, y, z, m, ax, ay, az); err != nil {
		t.Fatal(err)
	}
	var px, py, pz, scale float64
	for i := 0; i < n; i++ {
		px += m[i] * ax[i]
		py += m[i] * ay[i]
		pz += m[i] * az[i]
		scale += m[i] * (math.Abs(ax[i]) + math.Abs(ay[i]) + math.Abs(az[i]))
	}
	if (math.Abs(px)+math.Abs(py)+math.Abs(pz))/scale > 1e-3 {
		t.Errorf("momentum drift (%v,%v,%v), scale %v", px, py, pz, scale)
	}
}

func TestStatsPopulated(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 100
	x, y, z, m := randSystem(rng, n)
	s, _ := New(Config{L: 1, G: 1, NMesh: 16, Ni: 16})
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	st, err := s.Accel(x, y, z, m, ax, ay, az)
	if err != nil {
		t.Fatal(err)
	}
	if st.Tree.Groups == 0 || st.Tree.Interactions == 0 {
		t.Errorf("tree stats empty: %+v", st.Tree)
	}
	if st.TreeBuild <= 0 || st.TreeTraverse <= 0 || st.PMTime <= 0 {
		t.Errorf("timings not populated: %+v", st)
	}
}
