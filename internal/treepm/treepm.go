// Package treepm composes the tree short-range force (package tree) and the
// particle-mesh long-range force (package mesh) into the serial TreePM
// solver — the core method of the paper. It also provides the P3M variant
// (direct summation short-range) that TreePM supersedes: P3M's short-range
// cost inside a clustered cutoff sphere is O(n²) versus the tree's
// O(n log n), which is the Fig. 2 comparison.
package treepm

import (
	"fmt"
	"time"

	"greem/internal/direct"
	"greem/internal/mesh"
	"greem/internal/tree"
)

// Config parameterizes a TreePM solver.
type Config struct {
	L     float64 // periodic box side
	G     float64 // gravitational constant
	NMesh int     // PM mesh size per dimension (power of two)
	// Rcut is the force-split radius; 0 selects the paper's choice
	// rcut = 3·L/NMesh (§III-A: rcut = 3/N_PM^(1/3) with L = 1).
	Rcut  float64
	Theta float64 // tree opening angle (0 ⇒ 0.5)
	// Ni is the Barnes group-size cap ⟨Ni⟩; 0 selects 100, the optimum the
	// paper reports for K computer.
	Ni   int
	Eps2 float64 // Plummer softening squared
	// LeafCap for tree construction (0 ⇒ 16).
	LeafCap int
	// FastKernel selects the Phantom-GRAPE style unrolled kernel.
	FastKernel bool
	// Float32Kernel evaluates the short-range kernel in single precision on
	// group-center-relative float32 batches (tree.ForceOpts.Float32Kernel).
	Float32Kernel bool
	// SpectralPM switches PM differentiation to k-space (ablation).
	SpectralPM bool
	// NoDeconvolution disables TSC window deconvolution (ablation).
	NoDeconvolution bool
	// Workers threads the tree traversal+kernel AND every PM hot loop
	// (assignment, FFT lines, convolution, differencing, interpolation) —
	// the OpenMP-within-a-process half of the paper's hybrid parallelism.
	// The knob resolves through par.Resolve (0 ⇒ serial, par.Auto ⇒
	// GOMAXPROCS); PM results are bit-identical to serial at any worker
	// count. Call Solver.Close to release the pool.
	Workers int
}

func (c *Config) setDefaults() error {
	if c.L <= 0 || c.G <= 0 {
		return fmt.Errorf("treepm: L and G must be positive")
	}
	if c.NMesh < 2 {
		return fmt.Errorf("treepm: NMesh %d too small", c.NMesh)
	}
	if c.Rcut == 0 {
		c.Rcut = 3 * c.L / float64(c.NMesh)
	}
	if c.Theta == 0 {
		c.Theta = 0.5
	}
	if c.Ni == 0 {
		c.Ni = 100
	}
	if c.LeafCap == 0 {
		c.LeafCap = 16
	}
	return nil
}

// Solver evaluates total gravitational accelerations with the TreePM method.
type Solver struct {
	cfg    Config
	pm     *mesh.PM
	walker *tree.Walker
	build  *tree.Builder
}

// Stats reports per-component work and wall-clock for one force evaluation.
type Stats struct {
	Tree         tree.Stats
	TreeBuild    time.Duration
	TreeTraverse time.Duration // traversal + PP force together
	PMTime       time.Duration
}

// New creates a TreePM solver.
func New(cfg Config) (*Solver, error) {
	if err := cfg.setDefaults(); err != nil {
		return nil, err
	}
	var opts []mesh.Option
	if cfg.SpectralPM {
		opts = append(opts, mesh.WithSpectralDifferentiation())
	}
	if cfg.NoDeconvolution {
		opts = append(opts, mesh.WithoutDeconvolution())
	}
	if cfg.Workers != 0 {
		opts = append(opts, mesh.WithWorkers(cfg.Workers))
	}
	pm, err := mesh.New(cfg.NMesh, cfg.L, cfg.G, cfg.Rcut, opts...)
	if err != nil {
		return nil, err
	}
	return &Solver{cfg: cfg, pm: pm, walker: tree.NewWalker(), build: tree.NewBuilder()}, nil
}

// Close releases the PM solver's worker pool (no-op when serial).
func (s *Solver) Close() { s.pm.Close() }

// Config returns the solver's resolved configuration.
func (s *Solver) Config() Config { return s.cfg }

// Accel adds total (short + long range) accelerations into ax/ay/az.
// Positions must lie in [0, L).
func (s *Solver) Accel(x, y, z, m []float64, ax, ay, az []float64) (Stats, error) {
	var st Stats
	t0 := time.Now()
	// Builder arena: repeated force evaluations rebuild the tree without
	// allocating (the tree is valid until the next Accel call).
	tr, err := s.build.Rebuild(x, y, z, m, tree.Options{LeafCap: s.cfg.LeafCap})
	if err != nil {
		return st, err
	}
	st.TreeBuild = time.Since(t0)

	t1 := time.Now()
	st.Tree = s.walker.Accel(tr, tr, s.cfg.Ni, tree.ForceOpts{
		G: s.cfg.G, Theta: s.cfg.Theta, Eps2: s.cfg.Eps2,
		Cutoff: true, Rcut: s.cfg.Rcut, Periodic: true, L: s.cfg.L,
		FastKernel: s.cfg.FastKernel, Float32Kernel: s.cfg.Float32Kernel,
		Workers: s.cfg.Workers,
	}, ax, ay, az)
	st.TreeTraverse = time.Since(t1)

	t2 := time.Now()
	s.pm.Accel(x, y, z, m, ax, ay, az)
	st.PMTime = time.Since(t2)
	return st, nil
}

// AccelP3M adds total accelerations computed with the P3M method: chaining-
// mesh direct short-range summation plus the same PM long-range force.
// Returns the number of short-range pair evaluations (the O(n²)-in-clusters
// cost that Fig. 2 charts and that motivates TreePM).
func (s *Solver) AccelP3M(x, y, z, m []float64, ax, ay, az []float64) uint64 {
	n := direct.AccelCutoffCells(x, y, z, m, s.cfg.G, s.cfg.L, s.cfg.Rcut, s.cfg.Eps2, ax, ay, az)
	s.pm.Accel(x, y, z, m, ax, ay, az)
	return n
}

// PMPotential exposes the interpolated long-range potential (diagnostics).
func (s *Solver) PMPotential(x, y, z, m []float64, pot []float64) {
	s.pm.Clear()
	s.pm.AssignTSC(x, y, z, m)
	s.pm.Solve()
	s.pm.InterpolatePot(x, y, z, pot)
}
