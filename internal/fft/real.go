// Real-input transforms. The PM density mesh is purely real, so its spectrum
// is Hermitian: X[n−k] = conj(X[k]). Storing only the non-negative-frequency
// half (n/2+1 entries) halves the arithmetic, the buffer memory, and — in the
// slab/pencil parallel transforms built on top — the bytes moved through the
// all-to-all transposes. This is the stdlib substitute for FFTW's r2c/c2r
// interface (the paper's PM phase runs FFTW 3.3 real transforms, §II-B).
//
// Conventions match Plan: Forward computes the unscaled DFT
// X[k] = Σ_j x[j]·exp(−2πi·kj/N) for k ∈ [0, N/2], and Inverse is its exact
// inverse (the 1/N scaling folded in), so Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"

	"greem/internal/par"
)

// RealPlan computes length-n transforms of real input via one half-length
// complex FFT: the n reals are packed as n/2 complex numbers, transformed,
// and untangled into the n/2+1 Hermitian half-spectrum. A RealPlan carries
// scratch state and must not be used from multiple goroutines concurrently.
type RealPlan struct {
	n, m int   // m = n/2
	half *Plan // length-m complex plan
	// w[k] = exp(−2πi·k/n) for k ≤ m: the untangling twiddles.
	w    []complex128
	pack []complex128 // scratch: packed half-length signal
}

// NewRealPlan creates a plan for length-n real transforms. n must be a power
// of two and at least 2 (the packing needs an even length).
func NewRealPlan(n int) (*RealPlan, error) {
	if n < 2 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: real transform length %d is not a power of two ≥ 2", n)
	}
	m := n / 2
	half, err := NewPlan(m)
	if err != nil {
		return nil, err
	}
	p := &RealPlan{n: n, m: m, half: half}
	p.w = make([]complex128, m+1)
	for k := range p.w {
		theta := -2 * math.Pi * float64(k) / float64(n)
		p.w[k] = complex(math.Cos(theta), math.Sin(theta))
	}
	p.pack = make([]complex128, m)
	return p, nil
}

// MustRealPlan is NewRealPlan that panics on error.
func MustRealPlan(n int) *RealPlan {
	p, err := NewRealPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// Clone returns a plan sharing p's immutable twiddle tables but owning
// private scratch, so clones transform different lines concurrently — the
// per-worker handle used by the pooled 3-D and slab transforms.
func (p *RealPlan) Clone() *RealPlan {
	q := *p
	q.pack = make([]complex128, p.m)
	return &q
}

// N returns the real signal length.
func (p *RealPlan) N() int { return p.n }

// NSpec returns the stored half-spectrum length n/2+1.
func (p *RealPlan) NSpec() int { return p.m + 1 }

// Forward computes the half-spectrum of the real signal x into out.
// len(x) must be N() and len(out) must be NSpec(). out[0] and out[N/2] are
// real; the remaining modes k ∈ (N/2, N) are implied by conjugate symmetry.
func (p *RealPlan) Forward(x []float64, out []complex128) {
	if len(x) != p.n || len(out) != p.m+1 {
		panic(fmt.Sprintf("fft: real forward lengths (%d, %d) do not match plan (%d, %d)",
			len(x), len(out), p.n, p.m+1))
	}
	m := p.m
	z := p.pack
	for j := 0; j < m; j++ {
		z[j] = complex(x[2*j], x[2*j+1])
	}
	p.half.Forward(z)
	// Untangle: Z holds FFT(even) + i·FFT(odd) superposed. With
	// E[k] = (Z[k]+conj(Z[m−k]))/2 and O[k] = −i·(Z[k]−conj(Z[m−k]))/2
	// (indices mod m, both Hermitian halves of real subsequences),
	// X[k] = E[k] + w^k·O[k] for k ∈ [0, m].
	for k := 0; k <= m; k++ {
		zk := z[k%m]
		zc := z[(m-k)%m]
		zmk := complex(real(zc), -imag(zc))
		e := (zk + zmk) * 0.5
		o := (zk - zmk) * complex(0, -0.5)
		out[k] = e + p.w[k]*o
	}
}

// Inverse reconstructs the real signal from its half-spectrum: out is the
// exact inverse of Forward (1/N scaling included). in is not modified.
// len(in) must be NSpec() and len(out) must be N().
func (p *RealPlan) Inverse(in []complex128, out []float64) {
	if len(in) != p.m+1 || len(out) != p.n {
		panic(fmt.Sprintf("fft: real inverse lengths (%d, %d) do not match plan (%d, %d)",
			len(in), len(out), p.m+1, p.n))
	}
	m := p.m
	z := p.pack
	// Re-entangle: E[k] = (X[k]+conj(X[m−k]))/2, O[k] = w^{−k}·(X[k]−conj(X[m−k]))/2,
	// Z[k] = E[k] + i·O[k]; then the half-length inverse unpacks the pairs.
	for k := 0; k < m; k++ {
		xk := in[k]
		xc := in[m-k]
		xmk := complex(real(xc), -imag(xc))
		e := (xk + xmk) * 0.5
		wk := p.w[k]
		o := (xk - xmk) * 0.5 * complex(real(wk), -imag(wk))
		z[k] = e + complex(0, 1)*o
	}
	p.half.Inverse(z)
	for j := 0; j < m; j++ {
		out[2*j] = real(z[j])
		out[2*j+1] = imag(z[j])
	}
}

// RealPlan3 is the three-dimensional real transform on a flattened row-major
// (nx, ny, nz) array: r2c along the contiguous z axis compresses it to
// nz/2+1 complex entries per pencil, then ordinary complex transforms run
// along y and x over the half-spectrum. Spectral element (jx, jy, jz),
// jz ∈ [0, nz/2], lives at (jx·ny+jy)·(nz/2+1)+jz. Not safe for concurrent
// use (plans carry scratch), but an attached par.Pool (SetPool) batches the
// independent 1-D lines across workers — each line transformed by exactly
// one worker with private scratch, so parallel output is bit-identical to
// serial.
type RealPlan3 struct {
	nx, ny, nz, nzh int
	pz              []*RealPlan // per-worker clones; pz[0] is the primary
	py, px          *Plan

	pool *par.Pool
	wbuf [][]complex128 // per-worker strided-line scratch, len max(nx, ny)

	// Current batch state for the bound range tasks (hoisted: zero
	// steady-state allocation).
	tsrc                         []float64
	tspec                        []complex128
	tinv                         bool
	taskFZ, taskIZ, taskY, taskX func(w, lo, hi int)
}

// NewRealPlan3 creates a 3-D real plan. All dimensions must be powers of
// two, and nz ≥ 2.
func NewRealPlan3(nx, ny, nz int) (*RealPlan3, error) {
	pz, err := NewRealPlan(nz)
	if err != nil {
		return nil, err
	}
	py, err := NewPlan(ny)
	if err != nil {
		return nil, err
	}
	px, err := NewPlan(nx)
	if err != nil {
		return nil, err
	}
	p := &RealPlan3{nx: nx, ny: ny, nz: nz, nzh: nz/2 + 1, pz: []*RealPlan{pz}, py: py, px: px}
	p.taskFZ = p.forwardZLines
	p.taskIZ = p.inverseZLines
	p.taskY = p.yLines
	p.taskX = p.xLines
	p.sizeScratch(1)
	return p, nil
}

// SetPool attaches a worker pool for line batching (nil restores serial).
// The pool is shared, not owned: the caller closes it.
func (p *RealPlan3) SetPool(pool *par.Pool) {
	p.pool = pool
	p.sizeScratch(pool.Workers())
}

func (p *RealPlan3) sizeScratch(workers int) {
	for len(p.pz) < workers {
		p.pz = append(p.pz, p.pz[0].Clone())
	}
	p.wbuf = make([][]complex128, workers)
	for w := range p.wbuf {
		p.wbuf[w] = make([]complex128, max(p.nx, p.ny))
	}
}

// forwardZLines r2c-transforms contiguous z lines [lo, hi) of nx·ny.
func (p *RealPlan3) forwardZLines(w, lo, hi int) {
	for i := lo; i < hi; i++ {
		p.pz[w].Forward(p.tsrc[i*p.nz:(i+1)*p.nz], p.tspec[i*p.nzh:(i+1)*p.nzh])
	}
}

// inverseZLines c2r-transforms contiguous z lines [lo, hi) of nx·ny.
func (p *RealPlan3) inverseZLines(w, lo, hi int) {
	for i := lo; i < hi; i++ {
		p.pz[w].Inverse(p.tspec[i*p.nzh:(i+1)*p.nzh], p.tsrc[i*p.nz:(i+1)*p.nz])
	}
}

// yLines transforms strided y lines of the compressed array; line i of
// nx·nzh is (ix, iz) with ix = i/nzh, iz = i%nzh.
func (p *RealPlan3) yLines(w, lo, hi int) {
	buf := p.wbuf[w][:p.ny]
	for i := lo; i < hi; i++ {
		base := (i/p.nzh)*p.ny*p.nzh + i%p.nzh
		for iy := 0; iy < p.ny; iy++ {
			buf[iy] = p.tspec[base+iy*p.nzh]
		}
		if p.tinv {
			p.py.Inverse(buf)
		} else {
			p.py.Forward(buf)
		}
		for iy := 0; iy < p.ny; iy++ {
			p.tspec[base+iy*p.nzh] = buf[iy]
		}
	}
}

// xLines transforms strided x lines; line i of ny·nzh starts at base i
// (i = iy·nzh + iz) with stride ny·nzh.
func (p *RealPlan3) xLines(w, lo, hi int) {
	buf := p.wbuf[w][:p.nx]
	stride := p.ny * p.nzh
	for i := lo; i < hi; i++ {
		for ix := 0; ix < p.nx; ix++ {
			buf[ix] = p.tspec[i+ix*stride]
		}
		if p.tinv {
			p.px.Inverse(buf)
		} else {
			p.px.Forward(buf)
		}
		for ix := 0; ix < p.nx; ix++ {
			p.tspec[i+ix*stride] = buf[ix]
		}
	}
}

// MustRealPlan3 is NewRealPlan3 that panics on error.
func MustRealPlan3(nx, ny, nz int) *RealPlan3 {
	p, err := NewRealPlan3(nx, ny, nz)
	if err != nil {
		panic(err)
	}
	return p
}

// Dims returns (nx, ny, nz).
func (p *RealPlan3) Dims() (int, int, int) { return p.nx, p.ny, p.nz }

// NZSpec returns the compressed z extent nz/2+1.
func (p *RealPlan3) NZSpec() int { return p.nzh }

// SpecLen returns the half-spectrum array length nx·ny·(nz/2+1).
func (p *RealPlan3) SpecLen() int { return p.nx * p.ny * p.nzh }

// Forward transforms the real array src (length nx·ny·nz) into the
// half-spectrum dst (length SpecLen()). src is not modified.
func (p *RealPlan3) Forward(src []float64, dst []complex128) {
	if len(src) != p.nx*p.ny*p.nz || len(dst) != p.SpecLen() {
		panic(fmt.Sprintf("fft: real 3-D forward lengths (%d, %d) do not match plan (%d, %d)",
			len(src), len(dst), p.nx*p.ny*p.nz, p.SpecLen()))
	}
	// r2c along contiguous z lines.
	p.tsrc, p.tspec = src, dst
	p.pool.Run(p.nx*p.ny, p.taskFZ)
	p.transformYX(dst, false)
	p.tsrc, p.tspec = nil, nil
}

// Inverse transforms the half-spectrum src back to the real array dst.
// src is used as workspace and clobbered.
func (p *RealPlan3) Inverse(src []complex128, dst []float64) {
	if len(src) != p.SpecLen() || len(dst) != p.nx*p.ny*p.nz {
		panic(fmt.Sprintf("fft: real 3-D inverse lengths (%d, %d) do not match plan (%d, %d)",
			len(src), len(dst), p.SpecLen(), p.nx*p.ny*p.nz))
	}
	p.transformYX(src, true)
	p.tsrc, p.tspec = dst, src
	p.pool.Run(p.nx*p.ny, p.taskIZ)
	p.tsrc, p.tspec = nil, nil
}

// transformYX applies the complex y and x transforms over the compressed
// (nx, ny, nzh) array, batching the independent lines across the pool.
func (p *RealPlan3) transformYX(a []complex128, inverse bool) {
	p.tspec, p.tinv = a, inverse
	p.pool.Run(p.nx*p.nzh, p.taskY)
	p.pool.Run(p.ny*p.nzh, p.taskX)
}
