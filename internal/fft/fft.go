// Package fft implements the fast Fourier transforms the PM (particle-mesh)
// part of the TreePM method needs: power-of-two complex transforms in one and
// three dimensions. It is the stdlib-only substitute for the FFTW 3.3 library
// the paper uses; the slab-parallel transform built on top of it lives in
// package pfft.
//
// Conventions: Forward computes X[k] = Σ_n x[n]·exp(−2πi·kn/N) (no scaling);
// Inverse computes the conjugate transform scaled by 1/N, so
// Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// Plan holds the precomputed twiddle factors and bit-reversal permutation for
// a one-dimensional transform of fixed power-of-two length.
type Plan struct {
	n       int
	logn    int
	rev     []int32
	twiddle []complex128 // twiddle[j] = exp(−2πi·j/n), j < n/2
}

// NewPlan creates a plan for length-n transforms. n must be a power of two
// and at least 1.
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d is not a positive power of two", n)
	}
	p := &Plan{n: n, logn: bits.TrailingZeros(uint(n))}
	p.rev = make([]int32, n)
	for i := 0; i < n; i++ {
		p.rev[i] = int32(bits.Reverse32(uint32(i)) >> (32 - p.logn))
	}
	p.twiddle = make([]complex128, n/2)
	for j := range p.twiddle {
		theta := -2 * math.Pi * float64(j) / float64(n)
		p.twiddle[j] = complex(math.Cos(theta), math.Sin(theta))
	}
	return p, nil
}

// MustPlan is NewPlan that panics on error; for use with lengths known to be
// valid at compile/configuration time.
func MustPlan(n int) *Plan {
	p, err := NewPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

// Forward computes the in-place forward DFT of a. len(a) must equal N().
func (p *Plan) Forward(a []complex128) {
	p.transform(a, false)
}

// Inverse computes the in-place inverse DFT of a, scaled by 1/N.
func (p *Plan) Inverse(a []complex128) {
	p.transform(a, true)
	inv := complex(1/float64(p.n), 0)
	for i := range a {
		a[i] *= inv
	}
}

func (p *Plan) transform(a []complex128, inverse bool) {
	if len(a) != p.n {
		panic(fmt.Sprintf("fft: slice length %d does not match plan length %d", len(a), p.n))
	}
	n := p.n
	if n == 1 {
		return
	}
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(p.rev[i])
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	// Iterative Cooley-Tukey, decimation in time.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[tw]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				t := w * a[k+half]
				a[k+half] = a[k] - t
				a[k] = a[k] + t
				tw += step
			}
		}
	}
}

// Plan3 is a three-dimensional transform on a flattened row-major array with
// dimensions (nx, ny, nz): element (ix, iy, iz) lives at (ix·ny+iy)·nz+iz.
type Plan3 struct {
	nx, ny, nz int
	px, py, pz *Plan
}

// NewPlan3 creates a 3-D plan. All dimensions must be powers of two.
func NewPlan3(nx, ny, nz int) (*Plan3, error) {
	px, err := NewPlan(nx)
	if err != nil {
		return nil, err
	}
	py, err := NewPlan(ny)
	if err != nil {
		return nil, err
	}
	pz, err := NewPlan(nz)
	if err != nil {
		return nil, err
	}
	return &Plan3{nx: nx, ny: ny, nz: nz, px: px, py: py, pz: pz}, nil
}

// MustPlan3 is NewPlan3 that panics on error.
func MustPlan3(nx, ny, nz int) *Plan3 {
	p, err := NewPlan3(nx, ny, nz)
	if err != nil {
		panic(err)
	}
	return p
}

// Dims returns (nx, ny, nz).
func (p *Plan3) Dims() (int, int, int) { return p.nx, p.ny, p.nz }

// Len returns nx·ny·nz.
func (p *Plan3) Len() int { return p.nx * p.ny * p.nz }

// Forward computes the in-place 3-D forward DFT.
func (p *Plan3) Forward(a []complex128) { p.apply(a, false) }

// Inverse computes the in-place 3-D inverse DFT (scaled by 1/(nx·ny·nz)).
func (p *Plan3) Inverse(a []complex128) { p.apply(a, true) }

func (p *Plan3) apply(a []complex128, inverse bool) {
	if len(a) != p.Len() {
		panic(fmt.Sprintf("fft: slice length %d does not match plan size %d", len(a), p.Len()))
	}
	do1 := func(pl *Plan, line []complex128) {
		if inverse {
			pl.Inverse(line)
		} else {
			pl.Forward(line)
		}
	}
	// z lines are contiguous.
	for ix := 0; ix < p.nx; ix++ {
		for iy := 0; iy < p.ny; iy++ {
			off := (ix*p.ny + iy) * p.nz
			do1(p.pz, a[off:off+p.nz])
		}
	}
	// y lines have stride nz.
	buf := make([]complex128, p.ny)
	for ix := 0; ix < p.nx; ix++ {
		for iz := 0; iz < p.nz; iz++ {
			base := ix*p.ny*p.nz + iz
			for iy := 0; iy < p.ny; iy++ {
				buf[iy] = a[base+iy*p.nz]
			}
			do1(p.py, buf)
			for iy := 0; iy < p.ny; iy++ {
				a[base+iy*p.nz] = buf[iy]
			}
		}
	}
	// x lines have stride ny·nz.
	bufx := make([]complex128, p.nx)
	stride := p.ny * p.nz
	for iy := 0; iy < p.ny; iy++ {
		for iz := 0; iz < p.nz; iz++ {
			base := iy*p.nz + iz
			for ix := 0; ix < p.nx; ix++ {
				bufx[ix] = a[base+ix*stride]
			}
			do1(p.px, bufx)
			for ix := 0; ix < p.nx; ix++ {
				a[base+ix*stride] = bufx[ix]
			}
		}
	}
}

// TransformY applies the 1-D transform along the y axis only, for every
// (x, z) line of the array; TransformZ likewise along z. These are building
// blocks for the slab-parallel 3-D FFT, where the x transform happens after
// an inter-process transpose.
func (p *Plan3) TransformY(a []complex128, inverse bool) {
	buf := make([]complex128, p.ny)
	for ix := 0; ix < p.nx; ix++ {
		for iz := 0; iz < p.nz; iz++ {
			base := ix*p.ny*p.nz + iz
			for iy := 0; iy < p.ny; iy++ {
				buf[iy] = a[base+iy*p.nz]
			}
			if inverse {
				p.py.Inverse(buf)
			} else {
				p.py.Forward(buf)
			}
			for iy := 0; iy < p.ny; iy++ {
				a[base+iy*p.nz] = buf[iy]
			}
		}
	}
}

// TransformZ applies the 1-D transform along the z axis for every (x, y)
// line. See TransformY.
func (p *Plan3) TransformZ(a []complex128, inverse bool) {
	for ix := 0; ix < p.nx; ix++ {
		for iy := 0; iy < p.ny; iy++ {
			off := (ix*p.ny + iy) * p.nz
			if inverse {
				p.pz.Inverse(a[off : off+p.nz])
			} else {
				p.pz.Forward(a[off : off+p.nz])
			}
		}
	}
}
