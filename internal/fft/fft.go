// Package fft implements the fast Fourier transforms the PM (particle-mesh)
// part of the TreePM method needs: power-of-two complex transforms in one and
// three dimensions. It is the stdlib-only substitute for the FFTW 3.3 library
// the paper uses; the slab-parallel transform built on top of it lives in
// package pfft.
//
// Conventions: Forward computes X[k] = Σ_n x[n]·exp(−2πi·kn/N) (no scaling);
// Inverse computes the conjugate transform scaled by 1/N, so
// Inverse(Forward(x)) == x.
package fft

import (
	"fmt"
	"math"
	"math/bits"

	"greem/internal/par"
)

// Plan holds the precomputed twiddle factors and bit-reversal permutation for
// a one-dimensional transform of fixed power-of-two length. A Plan carries no
// scratch state — only immutable tables — so one Plan may transform different
// lines from multiple goroutines concurrently.
type Plan struct {
	n       int
	logn    int
	rev     []int32
	twiddle []complex128 // twiddle[j] = exp(−2πi·j/n), j < n/2
}

// NewPlan creates a plan for length-n transforms. n must be a power of two
// and at least 1.
func NewPlan(n int) (*Plan, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("fft: length %d is not a positive power of two", n)
	}
	p := &Plan{n: n, logn: bits.TrailingZeros(uint(n))}
	p.rev = make([]int32, n)
	for i := 0; i < n; i++ {
		p.rev[i] = int32(bits.Reverse32(uint32(i)) >> (32 - p.logn))
	}
	p.twiddle = make([]complex128, n/2)
	for j := range p.twiddle {
		theta := -2 * math.Pi * float64(j) / float64(n)
		p.twiddle[j] = complex(math.Cos(theta), math.Sin(theta))
	}
	return p, nil
}

// MustPlan is NewPlan that panics on error; for use with lengths known to be
// valid at compile/configuration time.
func MustPlan(n int) *Plan {
	p, err := NewPlan(n)
	if err != nil {
		panic(err)
	}
	return p
}

// N returns the transform length.
func (p *Plan) N() int { return p.n }

// Forward computes the in-place forward DFT of a. len(a) must equal N().
func (p *Plan) Forward(a []complex128) {
	p.transform(a, false)
}

// Inverse computes the in-place inverse DFT of a, scaled by 1/N.
func (p *Plan) Inverse(a []complex128) {
	p.transform(a, true)
	inv := complex(1/float64(p.n), 0)
	for i := range a {
		a[i] *= inv
	}
}

func (p *Plan) transform(a []complex128, inverse bool) {
	if len(a) != p.n {
		panic(fmt.Sprintf("fft: slice length %d does not match plan length %d", len(a), p.n))
	}
	n := p.n
	if n == 1 {
		return
	}
	// Bit-reversal permutation.
	for i := 0; i < n; i++ {
		j := int(p.rev[i])
		if i < j {
			a[i], a[j] = a[j], a[i]
		}
	}
	// Iterative Cooley-Tukey, decimation in time.
	for size := 2; size <= n; size <<= 1 {
		half := size >> 1
		step := n / size
		for start := 0; start < n; start += size {
			tw := 0
			for k := start; k < start+half; k++ {
				w := p.twiddle[tw]
				if inverse {
					w = complex(real(w), -imag(w))
				}
				t := w * a[k+half]
				a[k+half] = a[k] - t
				a[k] = a[k] + t
				tw += step
			}
		}
	}
}

// Plan3 is a three-dimensional transform on a flattened row-major array with
// dimensions (nx, ny, nz): element (ix, iy, iz) lives at (ix·ny+iy)·nz+iz.
// Independent 1-D lines batch across the workers of an attached par.Pool
// (SetPool); each line is transformed by exactly one worker, so the result is
// bit-identical to the serial transform for any worker count.
type Plan3 struct {
	nx, ny, nz int
	px, py, pz *Plan

	pool *par.Pool
	wbuf [][]complex128 // per-worker strided-line gather scratch

	// Current batch state, set by apply and read by the bound range tasks
	// (hoisted so a transform allocates nothing in steady state).
	ta                  []complex128
	tinv                bool
	taskZ, taskY, taskX func(w, lo, hi int)
}

// NewPlan3 creates a 3-D plan. All dimensions must be powers of two.
func NewPlan3(nx, ny, nz int) (*Plan3, error) {
	px, err := NewPlan(nx)
	if err != nil {
		return nil, err
	}
	py, err := NewPlan(ny)
	if err != nil {
		return nil, err
	}
	pz, err := NewPlan(nz)
	if err != nil {
		return nil, err
	}
	p := &Plan3{nx: nx, ny: ny, nz: nz, px: px, py: py, pz: pz}
	p.bindTasks()
	p.sizeScratch(1)
	return p, nil
}

// SetPool attaches a worker pool; subsequent transforms batch their 1-D lines
// across its workers. A nil pool restores serial operation. The pool is
// shared, not owned: the caller closes it.
func (p *Plan3) SetPool(pool *par.Pool) {
	p.pool = pool
	p.sizeScratch(pool.Workers())
}

func (p *Plan3) sizeScratch(workers int) {
	n := p.ny
	if p.nx > n {
		n = p.nx
	}
	p.wbuf = make([][]complex128, workers)
	for w := range p.wbuf {
		p.wbuf[w] = make([]complex128, n)
	}
}

// bindTasks creates the pooled range tasks once, so apply does not allocate.
func (p *Plan3) bindTasks() {
	p.taskZ = p.zLines
	p.taskY = p.yLines
	p.taskX = p.xLines
}

// zLines transforms contiguous z lines with indices [lo, hi) of nx·ny.
func (p *Plan3) zLines(w, lo, hi int) {
	for i := lo; i < hi; i++ {
		line := p.ta[i*p.nz : (i+1)*p.nz]
		if p.tinv {
			p.pz.Inverse(line)
		} else {
			p.pz.Forward(line)
		}
	}
}

// yLines transforms strided y lines; line i of nx·nz is (ix, iz) with
// ix = i/nz, iz = i%nz.
func (p *Plan3) yLines(w, lo, hi int) {
	buf := p.wbuf[w][:p.ny]
	for i := lo; i < hi; i++ {
		base := (i/p.nz)*p.ny*p.nz + i%p.nz
		for iy := 0; iy < p.ny; iy++ {
			buf[iy] = p.ta[base+iy*p.nz]
		}
		if p.tinv {
			p.py.Inverse(buf)
		} else {
			p.py.Forward(buf)
		}
		for iy := 0; iy < p.ny; iy++ {
			p.ta[base+iy*p.nz] = buf[iy]
		}
	}
}

// xLines transforms strided x lines; line i of ny·nz starts at base i
// directly (i = iy·nz + iz) with stride ny·nz.
func (p *Plan3) xLines(w, lo, hi int) {
	buf := p.wbuf[w][:p.nx]
	stride := p.ny * p.nz
	for i := lo; i < hi; i++ {
		for ix := 0; ix < p.nx; ix++ {
			buf[ix] = p.ta[i+ix*stride]
		}
		if p.tinv {
			p.px.Inverse(buf)
		} else {
			p.px.Forward(buf)
		}
		for ix := 0; ix < p.nx; ix++ {
			p.ta[i+ix*stride] = buf[ix]
		}
	}
}

// MustPlan3 is NewPlan3 that panics on error.
func MustPlan3(nx, ny, nz int) *Plan3 {
	p, err := NewPlan3(nx, ny, nz)
	if err != nil {
		panic(err)
	}
	return p
}

// Dims returns (nx, ny, nz).
func (p *Plan3) Dims() (int, int, int) { return p.nx, p.ny, p.nz }

// Len returns nx·ny·nz.
func (p *Plan3) Len() int { return p.nx * p.ny * p.nz }

// Forward computes the in-place 3-D forward DFT.
func (p *Plan3) Forward(a []complex128) { p.apply(a, false) }

// Inverse computes the in-place 3-D inverse DFT (scaled by 1/(nx·ny·nz)).
func (p *Plan3) Inverse(a []complex128) { p.apply(a, true) }

func (p *Plan3) apply(a []complex128, inverse bool) {
	if len(a) != p.Len() {
		panic(fmt.Sprintf("fft: slice length %d does not match plan size %d", len(a), p.Len()))
	}
	p.ta, p.tinv = a, inverse
	p.pool.Run(p.nx*p.ny, p.taskZ)
	p.pool.Run(p.nx*p.nz, p.taskY)
	p.pool.Run(p.ny*p.nz, p.taskX)
	p.ta = nil
}

// TransformY applies the 1-D transform along the y axis only, for every
// (x, z) line of the array; TransformZ likewise along z. These are building
// blocks for the slab-parallel 3-D FFT, where the x transform happens after
// an inter-process transpose.
func (p *Plan3) TransformY(a []complex128, inverse bool) {
	p.ta, p.tinv = a, inverse
	p.pool.Run(p.nx*p.nz, p.taskY)
	p.ta = nil
}

// TransformZ applies the 1-D transform along the z axis for every (x, y)
// line. See TransformY.
func (p *Plan3) TransformZ(a []complex128, inverse bool) {
	p.ta, p.tinv = a, inverse
	p.pool.Run(p.nx*p.ny, p.taskZ)
	p.ta = nil
}
