package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

// naiveDFT is the O(n²) reference transform.
func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var s complex128
		for j := 0; j < n; j++ {
			theta := -2 * math.Pi * float64(k) * float64(j) / float64(n)
			s += x[j] * cmplx.Exp(complex(0, theta))
		}
		out[k] = s
	}
	return out
}

func randComplex(rng *rand.Rand, n int) []complex128 {
	a := make([]complex128, n)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return a
}

func maxDiff(a, b []complex128) float64 {
	m := 0.0
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestNewPlanRejectsBadLengths(t *testing.T) {
	for _, n := range []int{0, -1, 3, 6, 12, 1000} {
		if _, err := NewPlan(n); err == nil {
			t.Errorf("NewPlan(%d) accepted a non-power-of-two", n)
		}
	}
	for _, n := range []int{1, 2, 4, 1024} {
		if _, err := NewPlan(n); err != nil {
			t.Errorf("NewPlan(%d): %v", n, err)
		}
	}
}

func TestForwardMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256} {
		x := randComplex(rng, n)
		want := naiveDFT(x)
		got := append([]complex128(nil), x...)
		MustPlan(n).Forward(got)
		if d := maxDiff(got, want); d > 1e-9*float64(n) {
			t.Errorf("n=%d: max diff %v", n, d)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 32, 512, 4096} {
		p := MustPlan(n)
		x := randComplex(rng, n)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		if d := maxDiff(x, y); d > 1e-10*float64(n) {
			t.Errorf("n=%d: round-trip max diff %v", n, d)
		}
	}
}

func TestDeltaAndConstant(t *testing.T) {
	n := 64
	p := MustPlan(n)
	delta := make([]complex128, n)
	delta[0] = 1
	p.Forward(delta)
	for k := range delta {
		if cmplx.Abs(delta[k]-1) > 1e-12 {
			t.Fatalf("FFT(δ)[%d] = %v, want 1", k, delta[k])
		}
	}
	con := make([]complex128, n)
	for i := range con {
		con[i] = 2
	}
	p.Forward(con)
	if cmplx.Abs(con[0]-complex(2*float64(n), 0)) > 1e-12 {
		t.Errorf("FFT(const)[0] = %v", con[0])
	}
	for k := 1; k < n; k++ {
		if cmplx.Abs(con[k]) > 1e-10 {
			t.Errorf("FFT(const)[%d] = %v, want 0", k, con[k])
		}
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 1024
	x := randComplex(rng, n)
	var eTime float64
	for _, v := range x {
		eTime += real(v)*real(v) + imag(v)*imag(v)
	}
	MustPlan(n).Forward(x)
	var eFreq float64
	for _, v := range x {
		eFreq += real(v)*real(v) + imag(v)*imag(v)
	}
	eFreq /= float64(n)
	if math.Abs(eTime-eFreq)/eTime > 1e-12 {
		t.Errorf("Parseval violated: %v vs %v", eTime, eFreq)
	}
}

func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 128
	p := MustPlan(n)
	x := randComplex(rng, n)
	y := randComplex(rng, n)
	sum := make([]complex128, n)
	for i := range sum {
		sum[i] = 3*x[i] - 2i*y[i]
	}
	p.Forward(x)
	p.Forward(y)
	p.Forward(sum)
	for i := range sum {
		want := 3*x[i] - 2i*y[i]
		if cmplx.Abs(sum[i]-want) > 1e-9 {
			t.Fatalf("linearity at %d: %v vs %v", i, sum[i], want)
		}
	}
}

func TestSingleModeFrequency(t *testing.T) {
	// x[n] = exp(2πi·k0·n/N) transforms to N·δ(k−k0).
	n, k0 := 64, 5
	x := make([]complex128, n)
	for j := range x {
		theta := 2 * math.Pi * float64(k0) * float64(j) / float64(n)
		x[j] = cmplx.Exp(complex(0, theta))
	}
	MustPlan(n).Forward(x)
	for k := range x {
		want := complex128(0)
		if k == k0 {
			want = complex(float64(n), 0)
		}
		if cmplx.Abs(x[k]-want) > 1e-9 {
			t.Errorf("k=%d: %v, want %v", k, x[k], want)
		}
	}
}

func naiveDFT3(x []complex128, nx, ny, nz int) []complex128 {
	out := make([]complex128, len(x))
	for kx := 0; kx < nx; kx++ {
		for ky := 0; ky < ny; ky++ {
			for kz := 0; kz < nz; kz++ {
				var s complex128
				for jx := 0; jx < nx; jx++ {
					for jy := 0; jy < ny; jy++ {
						for jz := 0; jz < nz; jz++ {
							ph := float64(kx*jx)/float64(nx) + float64(ky*jy)/float64(ny) + float64(kz*jz)/float64(nz)
							s += x[(jx*ny+jy)*nz+jz] * cmplx.Exp(complex(0, -2*math.Pi*ph))
						}
					}
				}
				out[(kx*ny+ky)*nz+kz] = s
			}
		}
	}
	return out
}

func TestPlan3MatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nx, ny, nz := 4, 2, 8
	x := randComplex(rng, nx*ny*nz)
	want := naiveDFT3(x, nx, ny, nz)
	got := append([]complex128(nil), x...)
	MustPlan3(nx, ny, nz).Forward(got)
	if d := maxDiff(got, want); d > 1e-9 {
		t.Errorf("3-D FFT max diff %v", d)
	}
}

func TestPlan3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := MustPlan3(8, 16, 4)
	x := randComplex(rng, p.Len())
	y := append([]complex128(nil), x...)
	p.Forward(y)
	p.Inverse(y)
	if d := maxDiff(x, y); d > 1e-10 {
		t.Errorf("3-D round-trip max diff %v", d)
	}
}

func TestTransformYZThenXEqualsFull(t *testing.T) {
	// TransformZ + TransformY + per-line x transforms = full 3-D transform.
	// This is exactly the decomposition the slab-parallel FFT uses.
	rng := rand.New(rand.NewSource(7))
	nx, ny, nz := 8, 4, 16
	p := MustPlan3(nx, ny, nz)
	x := randComplex(rng, p.Len())
	want := append([]complex128(nil), x...)
	p.Forward(want)

	got := append([]complex128(nil), x...)
	p.TransformZ(got, false)
	p.TransformY(got, false)
	px := MustPlan(nx)
	buf := make([]complex128, nx)
	stride := ny * nz
	for iy := 0; iy < ny; iy++ {
		for iz := 0; iz < nz; iz++ {
			base := iy*nz + iz
			for ix := 0; ix < nx; ix++ {
				buf[ix] = got[base+ix*stride]
			}
			px.Forward(buf)
			for ix := 0; ix < nx; ix++ {
				got[base+ix*stride] = buf[ix]
			}
		}
	}
	if d := maxDiff(got, want); d > 1e-9 {
		t.Errorf("decomposed transform differs from full: %v", d)
	}
}

func TestForwardPanicsOnWrongLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on wrong slice length")
		}
	}()
	MustPlan(8).Forward(make([]complex128, 4))
}

func BenchmarkFFT1D(b *testing.B) {
	p := MustPlan(4096)
	x := randComplex(rand.New(rand.NewSource(8)), 4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func BenchmarkFFT3D64(b *testing.B) {
	p := MustPlan3(64, 64, 64)
	x := randComplex(rand.New(rand.NewSource(9)), p.Len())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x)
	}
}

func TestRoundTripProperty(t *testing.T) {
	// testing/quick over random inputs: Inverse∘Forward = identity.
	p := MustPlan(64)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randComplex(rng, 64)
		y := append([]complex128(nil), x...)
		p.Forward(y)
		p.Inverse(y)
		return maxDiff(x, y) < 1e-11
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestShiftTheoremProperty(t *testing.T) {
	// Circular shift in time multiplies the spectrum by a phase:
	// FFT(x shifted by s)[k] = FFT(x)[k]·exp(−2πi·k·s/N).
	n := 32
	p := MustPlan(n)
	f := func(seed int64, rawShift uint8) bool {
		s := int(rawShift) % n
		rng := rand.New(rand.NewSource(seed))
		x := randComplex(rng, n)
		shifted := make([]complex128, n)
		for i := range shifted {
			shifted[i] = x[(i-s+n)%n]
		}
		fx := append([]complex128(nil), x...)
		fs := append([]complex128(nil), shifted...)
		p.Forward(fx)
		p.Forward(fs)
		for k := 0; k < n; k++ {
			ph := cmplx.Exp(complex(0, -2*math.Pi*float64(k)*float64(s)/float64(n)))
			if cmplx.Abs(fs[k]-fx[k]*ph) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
