package fft

import (
	"math"
	"testing"

	"greem/internal/par"
)

// fillDeterministic writes a reproducible pseudo-random pattern.
func fillDeterministic(a []complex128) {
	s := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(int64(s%2000000)-1000000) / 1e6
	}
	for i := range a {
		a[i] = complex(next(), next())
	}
}

// TestPlan3PoolBitIdentical checks the pooled 3-D transform is bit-identical
// to the serial one at several worker counts (satellite: determinism at
// Workers ∈ {1, 2, 7}).
func TestPlan3PoolBitIdentical(t *testing.T) {
	const nx, ny, nz = 8, 4, 16
	ref := make([]complex128, nx*ny*nz)
	fillDeterministic(ref)
	serial := MustPlan3(nx, ny, nz)
	want := append([]complex128(nil), ref...)
	serial.Forward(want)
	serial.Inverse(want)

	for _, w := range []int{1, 2, 7} {
		pool := par.New(w)
		p := MustPlan3(nx, ny, nz)
		p.SetPool(pool)
		got := append([]complex128(nil), ref...)
		p.Forward(got)
		p.Inverse(got)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: element %d = %v, serial %v (not bit-identical)", w, i, got[i], want[i])
			}
		}
		pool.Close()
	}
}

// TestRealPlan3PoolBitIdentical is the r2c counterpart.
func TestRealPlan3PoolBitIdentical(t *testing.T) {
	const nx, ny, nz = 8, 4, 16
	src := make([]float64, nx*ny*nz)
	s := uint64(12345)
	for i := range src {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		src[i] = float64(int64(s%2000000)-1000000) / 1e6
	}

	serial := MustRealPlan3(nx, ny, nz)
	wantSpec := make([]complex128, serial.SpecLen())
	serial.Forward(src, wantSpec)
	wantReal := make([]float64, len(src))
	specCopy := append([]complex128(nil), wantSpec...)
	serial.Inverse(specCopy, wantReal)

	for _, w := range []int{1, 2, 7} {
		pool := par.New(w)
		p := MustRealPlan3(nx, ny, nz)
		p.SetPool(pool)
		spec := make([]complex128, p.SpecLen())
		p.Forward(src, spec)
		for i := range spec {
			if spec[i] != wantSpec[i] {
				t.Fatalf("workers=%d: spectrum element %d = %v, serial %v", w, i, spec[i], wantSpec[i])
			}
		}
		got := make([]float64, len(src))
		p.Inverse(spec, got)
		for i := range got {
			if got[i] != wantReal[i] {
				t.Fatalf("workers=%d: real element %d = %v, serial %v", w, i, got[i], wantReal[i])
			}
		}
		// Sanity: round trip stays close to the input.
		for i := range got {
			if math.Abs(got[i]-src[i]) > 1e-12 {
				t.Fatalf("workers=%d: round trip drifted at %d: %v vs %v", w, i, got[i], src[i])
			}
		}
		pool.Close()
	}
}
