package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randReal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestNewRealPlanRejectsBadLengths(t *testing.T) {
	for _, n := range []int{0, -1, 1, 3, 6, 12, 1000} {
		if _, err := NewRealPlan(n); err == nil {
			t.Errorf("NewRealPlan(%d) accepted an invalid length", n)
		}
	}
	for _, n := range []int{2, 4, 8, 1024} {
		if _, err := NewRealPlan(n); err != nil {
			t.Errorf("NewRealPlan(%d): %v", n, err)
		}
	}
}

// TestRealForwardMatchesComplexHalf: the r2c half-spectrum must equal the
// non-negative-frequency half of the full complex transform of the same
// (real) input.
func TestRealForwardMatchesComplexHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{2, 4, 8, 16, 64, 256} {
		x := randReal(rng, n)
		full := make([]complex128, n)
		for i, v := range x {
			full[i] = complex(v, 0)
		}
		MustPlan(n).Forward(full)
		out := make([]complex128, n/2+1)
		MustRealPlan(n).Forward(x, out)
		for k := 0; k <= n/2; k++ {
			if d := cmplx.Abs(out[k] - full[k]); d > 1e-10*float64(n) {
				t.Errorf("n=%d k=%d: r2c %v vs complex %v", n, k, out[k], full[k])
			}
		}
	}
}

// TestRealHermitianEdges: the k = 0 and k = n/2 modes of a real signal are
// real (their conjugate partners are themselves).
func TestRealHermitianEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 64
	x := randReal(rng, n)
	out := make([]complex128, n/2+1)
	MustRealPlan(n).Forward(x, out)
	if math.Abs(imag(out[0])) > 1e-12 || math.Abs(imag(out[n/2])) > 1e-12 {
		t.Errorf("edge modes not real: X[0]=%v X[n/2]=%v", out[0], out[n/2])
	}
}

// TestRealRoundTripProperty: c2r∘r2c is the identity on random real inputs.
func TestRealRoundTripProperty(t *testing.T) {
	p := MustRealPlan(64)
	spec := make([]complex128, p.NSpec())
	back := make([]float64, 64)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randReal(rng, 64)
		p.Forward(x, spec)
		p.Inverse(spec, back)
		for i := range x {
			if math.Abs(x[i]-back[i]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRealRoundTripAllSizes(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{2, 4, 32, 512, 4096} {
		p := MustRealPlan(n)
		x := randReal(rng, n)
		spec := make([]complex128, p.NSpec())
		back := make([]float64, n)
		p.Forward(x, spec)
		p.Inverse(spec, back)
		for i := range x {
			if math.Abs(x[i]-back[i]) > 1e-11*float64(n) {
				t.Fatalf("n=%d: round trip differs at %d: %v vs %v", n, i, x[i], back[i])
			}
		}
	}
}

// TestRealInverseDoesNotClobberInput: the 1-D c2r leaves its spectrum
// argument intact (the 3-D variant documents clobbering instead).
func TestRealInverseDoesNotClobberInput(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 32
	p := MustRealPlan(n)
	x := randReal(rng, n)
	spec := make([]complex128, p.NSpec())
	p.Forward(x, spec)
	saved := append([]complex128(nil), spec...)
	back := make([]float64, n)
	p.Inverse(spec, back)
	for k := range spec {
		if spec[k] != saved[k] {
			t.Fatalf("Inverse modified its input at %d", k)
		}
	}
}

func TestRealPlan3MatchesComplexHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	nx, ny, nz := 4, 8, 16
	nzh := nz/2 + 1
	x := randReal(rng, nx*ny*nz)
	full := make([]complex128, len(x))
	for i, v := range x {
		full[i] = complex(v, 0)
	}
	MustPlan3(nx, ny, nz).Forward(full)
	spec := make([]complex128, nx*ny*nzh)
	MustRealPlan3(nx, ny, nz).Forward(x, spec)
	for jx := 0; jx < nx; jx++ {
		for jy := 0; jy < ny; jy++ {
			for jz := 0; jz < nzh; jz++ {
				got := spec[(jx*ny+jy)*nzh+jz]
				want := full[(jx*ny+jy)*nz+jz]
				if cmplx.Abs(got-want) > 1e-9 {
					t.Fatalf("(%d,%d,%d): r2c %v vs complex %v", jx, jy, jz, got, want)
				}
			}
		}
	}
}

func TestRealPlan3RoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	p := MustRealPlan3(8, 4, 16)
	x := randReal(rng, 8*4*16)
	spec := make([]complex128, p.SpecLen())
	back := make([]float64, len(x))
	p.Forward(x, spec)
	p.Inverse(spec, back)
	for i := range x {
		if math.Abs(x[i]-back[i]) > 1e-11 {
			t.Fatalf("3-D real round trip differs at %d: %v vs %v", i, x[i], back[i])
		}
	}
}

// TestRealPlan3RoundTripProperty: identity over random inputs, exercising the
// cubic shape the PM solver uses.
func TestRealPlan3RoundTripProperty(t *testing.T) {
	p := MustRealPlan3(8, 8, 8)
	spec := make([]complex128, p.SpecLen())
	back := make([]float64, 8*8*8)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := randReal(rng, 8*8*8)
		p.Forward(x, spec)
		p.Inverse(spec, back)
		for i := range x {
			if math.Abs(x[i]-back[i]) > 1e-11 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestRealForwardSteadyStateAllocs: the 1-D real transform must not allocate
// once the plan exists (plan-owned packing scratch).
func TestRealForwardSteadyStateAllocs(t *testing.T) {
	p := MustRealPlan(256)
	x := randReal(rand.New(rand.NewSource(7)), 256)
	spec := make([]complex128, p.NSpec())
	back := make([]float64, 256)
	p.Forward(x, spec) // warm up
	if a := testing.AllocsPerRun(50, func() { p.Forward(x, spec) }); a != 0 {
		t.Errorf("Forward allocates %v times per run", a)
	}
	if a := testing.AllocsPerRun(50, func() { p.Inverse(spec, back) }); a != 0 {
		t.Errorf("Inverse allocates %v times per run", a)
	}
}

func BenchmarkRealFFT1D(b *testing.B) {
	n := 4096
	p := MustRealPlan(n)
	x := randReal(rand.New(rand.NewSource(8)), n)
	spec := make([]complex128, p.NSpec())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x, spec)
	}
}

func BenchmarkRealFFT3D64(b *testing.B) {
	p := MustRealPlan3(64, 64, 64)
	x := randReal(rand.New(rand.NewSource(9)), 64*64*64)
	spec := make([]complex128, p.SpecLen())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Forward(x, spec)
	}
}
