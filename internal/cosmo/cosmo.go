// Package cosmo provides the cosmological background evolution for comoving
// N-body integration: Friedmann expansion rates, the linear growth factor,
// and the kick/drift coefficients of the comoving symplectic leapfrog.
//
// Conventions (the standard canonical-momentum formulation):
//
//   - positions x are comoving, in box units; masses are constant;
//   - the momentum variable is u ≡ a²·dx/dt;
//   - the force solver works entirely in comoving space: g = −∇ψ with
//     ∇²ψ = 4πG(ρ_c − ρ̄_c) and ρ_c the comoving density — exactly what the
//     TreePM solver computes from comoving positions and constant masses;
//   - the equations of motion are du/dt = g/a and dx/dt = u/a², so with the
//     scale factor a as the time variable the kick and drift coefficients
//     over [a₀, a₁] are K = ∫ da/(a²·H(a)·a... ) — concretely
//     K = ∫ₐ₀^ₐ₁ da / (a³H(a)) · a = ∫ da/(a²H(a)) and
//     D = ∫ₐ₀^ₐ₁ da / (a³H(a)).
//
// The simulation's time variable (sim.Config.Time) is therefore the scale
// factor a, and redshift z = 1/a − 1.
package cosmo

import (
	"fmt"
	"math"
)

// Model is a flat-or-curved FLRW background.
type Model struct {
	OmegaM float64 // matter density parameter at a = 1
	OmegaL float64 // cosmological constant
	H0     float64 // Hubble rate at a = 1, in simulation units
	OmegaK float64 // curvature, derived: 1 − Ωm − ΩΛ
}

// New creates a model; H0 must be expressed in simulation time units
// (see HubbleForBox).
func New(omegaM, omegaL, h0 float64) (*Model, error) {
	if omegaM <= 0 || h0 <= 0 {
		return nil, fmt.Errorf("cosmo: OmegaM and H0 must be positive")
	}
	return &Model{OmegaM: omegaM, OmegaL: omegaL, H0: h0, OmegaK: 1 - omegaM - omegaL}, nil
}

// EdS returns the Einstein-de Sitter model (Ωm = 1) with the given H0.
func EdS(h0 float64) *Model {
	m, _ := New(1, 0, h0)
	return m
}

// HubbleForBox returns the H0 consistent with a box of side l containing
// total comoving mass totalM at matter density parameter omegaM, with
// gravitational constant g: Ωm·3H0²/(8πG) = ρ̄.
func HubbleForBox(g, totalM, l, omegaM float64) float64 {
	rho := totalM / (l * l * l)
	return math.Sqrt(8 * math.Pi * g * rho / (3 * omegaM))
}

// H returns the Hubble rate at scale factor a:
// H(a) = H0·√(Ωm a⁻³ + Ωk a⁻² + ΩΛ).
func (m *Model) H(a float64) float64 {
	return m.H0 * math.Sqrt(m.OmegaM/(a*a*a)+m.OmegaK/(a*a)+m.OmegaL)
}

// Redshift converts a scale factor to redshift.
func Redshift(a float64) float64 { return 1/a - 1 }

// ScaleFactor converts a redshift to a scale factor.
func ScaleFactor(z float64) float64 { return 1 / (1 + z) }

// simpson integrates f over [a, b] with n (even) panels.
func simpson(f func(float64) float64, a, b float64, n int) float64 {
	if n%2 == 1 {
		n++
	}
	h := (b - a) / float64(n)
	sum := f(a) + f(b)
	for i := 1; i < n; i++ {
		w := 2.0
		if i%2 == 1 {
			w = 4.0
		}
		sum += w * f(a+float64(i)*h)
	}
	return sum * h / 3
}

// KickFactor returns ∫ da/(a²H(a)) over [a, a+da] — the multiplier applied
// to comoving accelerations when updating u = a²ẋ.
func (m *Model) KickFactor(a, da float64) float64 {
	return simpson(func(x float64) float64 { return 1 / (x * x * m.H(x)) }, a, a+da, 256)
}

// DriftFactor returns ∫ da/(a³H(a)) over [a, a+da] — the multiplier applied
// to u when updating comoving positions.
func (m *Model) DriftFactor(a, da float64) float64 {
	return simpson(func(x float64) float64 { return 1 / (x * x * x * m.H(x)) }, a, a+da, 256)
}

// GrowthFactor returns the linear growing-mode amplitude
// D(a) ∝ H(a) ∫₀^a da'/(a'H(a'))³, normalized so D(1) = 1. For Ωm = 1 this
// reduces to D(a) = a.
func (m *Model) GrowthFactor(a float64) float64 {
	return m.growthUnnormalized(a) / m.growthUnnormalized(1)
}

func (m *Model) growthUnnormalized(a float64) float64 {
	f := func(x float64) float64 {
		h := m.H(x)
		return 1 / (x * x * x * h * h * h)
	}
	// The integrand ~ x^(-3)·x^(9/2) = x^(3/2) near 0 for matter domination,
	// so starting slightly above zero is safe.
	return m.H(a) * simpson(f, 1e-8, a, 2048)
}

// GrowthRate returns f ≡ dlnD/dlna at a, computed numerically. For Ωm = 1
// it equals 1.
func (m *Model) GrowthRate(a float64) float64 {
	h := a * 1e-4
	dp := m.growthUnnormalized(a + h)
	dm := m.growthUnnormalized(a - h)
	d := m.growthUnnormalized(a)
	return a * (dp - dm) / (2 * h) / d
}

// WMAP7 returns the concordance parameters the paper adopts (Komatsu et al.
// 2011): Ωm = 0.272, ΩΛ = 0.728, with H0 expressed in the caller's
// simulation units.
func WMAP7(h0 float64) *Model {
	m, _ := New(0.272, 0.728, h0)
	return m
}
