package cosmo

import (
	"math"
	"testing"
)

func TestEdSAnalytic(t *testing.T) {
	m := EdS(2.0)
	// H(a) = H0·a^(−3/2).
	for _, a := range []float64{0.01, 0.1, 0.5, 1, 2} {
		want := 2.0 * math.Pow(a, -1.5)
		if got := m.H(a); math.Abs(got-want)/want > 1e-12 {
			t.Errorf("H(%v) = %v, want %v", a, got, want)
		}
	}
	// D(a) = a in EdS.
	for _, a := range []float64{0.01, 0.1, 0.5, 1} {
		if got := m.GrowthFactor(a); math.Abs(got-a)/a > 1e-3 {
			t.Errorf("D(%v) = %v, want %v", a, got, a)
		}
	}
	// f = dlnD/dlna = 1 in EdS.
	for _, a := range []float64{0.1, 0.5, 1} {
		if got := m.GrowthRate(a); math.Abs(got-1) > 1e-3 {
			t.Errorf("f(%v) = %v, want 1", a, got)
		}
	}
}

func TestEdSKickDriftAnalytic(t *testing.T) {
	// EdS: K = ∫ a^(−1/2)/H0 da = 2(√a₁ − √a₀)/H0;
	//      D = ∫ a^(−3/2)/H0 da = 2(1/√a₀ − 1/√a₁)/H0.
	h0 := 1.7
	m := EdS(h0)
	a0, a1 := 0.2, 0.35
	wantK := 2 * (math.Sqrt(a1) - math.Sqrt(a0)) / h0
	wantD := 2 * (1/math.Sqrt(a0) - 1/math.Sqrt(a1)) / h0
	if got := m.KickFactor(a0, a1-a0); math.Abs(got-wantK)/wantK > 1e-9 {
		t.Errorf("Kick = %v, want %v", got, wantK)
	}
	if got := m.DriftFactor(a0, a1-a0); math.Abs(got-wantD)/wantD > 1e-9 {
		t.Errorf("Drift = %v, want %v", got, wantD)
	}
}

func TestLCDMLimits(t *testing.T) {
	m := WMAP7(1.0)
	if m.OmegaM != 0.272 || m.OmegaL != 0.728 {
		t.Fatalf("WMAP7 params: %+v", m)
	}
	if math.Abs(m.OmegaK) > 1e-12 {
		t.Errorf("WMAP7 should be flat, Ωk = %v", m.OmegaK)
	}
	// At high redshift ΛCDM is matter dominated: H ≈ H0·√Ωm·a^(−3/2) and
	// D(a) ∝ a.
	a := 1e-3
	want := math.Sqrt(0.272) * math.Pow(a, -1.5)
	if got := m.H(a); math.Abs(got-want)/want > 1e-3 {
		t.Errorf("high-z H = %v, want %v", got, want)
	}
	r1 := m.GrowthFactor(2e-3) / m.GrowthFactor(1e-3)
	if math.Abs(r1-2) > 0.01 {
		t.Errorf("high-z growth ratio %v, want 2", r1)
	}
	// Growth is suppressed relative to EdS by Λ at late times: D(0.5) > 0.5.
	if d := m.GrowthFactor(0.5); d < 0.5 || d > 0.65 {
		t.Errorf("D(0.5) = %v, expected in (0.5, 0.65)", d)
	}
	// f < 1 today for ΛCDM (≈ Ωm(a)^0.55 ≈ 0.49 at a=1).
	f := m.GrowthRate(1)
	if f < 0.4 || f > 0.6 {
		t.Errorf("f(1) = %v, want ≈ 0.49", f)
	}
}

func TestGrowthFactorNormalization(t *testing.T) {
	m := WMAP7(1)
	if d := m.GrowthFactor(1); math.Abs(d-1) > 1e-12 {
		t.Errorf("D(1) = %v", d)
	}
}

func TestHubbleForBox(t *testing.T) {
	// Ωm·ρ_crit must equal the box density.
	g, totalM, l, om := 1.0, 1.0, 1.0, 0.25
	h0 := HubbleForBox(g, totalM, l, om)
	rhoCrit := 3 * h0 * h0 / (8 * math.Pi * g)
	if math.Abs(om*rhoCrit-1.0) > 1e-12 {
		t.Errorf("Ωm·ρ_crit = %v, want 1", om*rhoCrit)
	}
}

func TestRedshiftConversions(t *testing.T) {
	if z := Redshift(1); z != 0 {
		t.Errorf("z(a=1) = %v", z)
	}
	if a := ScaleFactor(399); math.Abs(a-1.0/400) > 1e-15 {
		t.Errorf("a(z=399) = %v", a)
	}
	// Paper: integrates from z = 400 to z ≈ 31.
	if a := ScaleFactor(400); math.Abs(Redshift(a)-400) > 1e-9 {
		t.Errorf("round trip broken")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 0.7, 1); err == nil {
		t.Error("OmegaM=0 accepted")
	}
	if _, err := New(0.3, 0.7, 0); err == nil {
		t.Error("H0=0 accepted")
	}
}

func TestKickDriftPositiveAndOrdered(t *testing.T) {
	m := WMAP7(1)
	k := m.KickFactor(0.1, 0.01)
	d := m.DriftFactor(0.1, 0.01)
	if k <= 0 || d <= 0 {
		t.Errorf("factors not positive: %v %v", k, d)
	}
	// At a < 1, 1/a³ > 1/a², so drift factor exceeds kick factor.
	if d <= k {
		t.Errorf("drift %v should exceed kick %v at a<1", d, k)
	}
}
