package analysis

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"greem/internal/vec"
)

func testHalos() []Halo {
	return []Halo{
		{N: 40, Mass: 4.0, Center: vec.V3{X: 0.1, Y: 0.2, Z: 0.3}, R50: 0.01, R90: 0.02},
		{N: 10, Mass: 1.0, Center: vec.V3{X: 0.5, Y: 0.5, Z: 0.5}, R50: 0.005, R90: 0.01},
		// Equal masses: the tiebreak chain must still order them uniquely.
		{N: 20, Mass: 2.0, Center: vec.V3{X: 0.9, Y: 0.1, Z: 0.4}, R50: 0.02, R90: 0.04},
		{N: 20, Mass: 2.0, Center: vec.V3{X: 0.2, Y: 0.8, Z: 0.6}, R50: 0.03, R90: 0.05},
	}
}

// TestEncodeCatalogDeterministic: encoding must be byte-identical however
// the input slice is ordered — the property that makes products cacheable
// by content hash.
func TestEncodeCatalogDeterministic(t *testing.T) {
	meta := CatalogFile{L: 1, Time: 0.5, Step: 16, LinkingLength: 0.2, MinSize: 10}
	base := meta
	base.Halos = testHalos()
	want, err := EncodeCatalog(base)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		shuffled := append([]Halo(nil), testHalos()...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		f := meta
		f.Halos = shuffled
		got, err := EncodeCatalog(f)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: shuffled input changed the encoding:\n%s\nvs\n%s", trial, got, want)
		}
	}
}

func TestCatalogRoundTrip(t *testing.T) {
	f := CatalogFile{L: 1, Time: 0.25, Step: 8, LinkingLength: 0.2, MinSize: 10, Halos: testHalos()}
	b, err := EncodeCatalog(f)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCatalog(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.L != 1 || got.Step != 8 || len(got.Halos) != 4 {
		t.Fatalf("decoded %+v", got)
	}
	// IDs are ranks in canonical (mass-descending) order.
	for i, h := range got.Halos {
		if h.ID != i {
			t.Fatalf("halo %d has id %d", i, h.ID)
		}
		if i > 0 && got.Halos[i-1].Mass < h.Mass {
			t.Fatalf("catalog not mass-descending at %d", i)
		}
	}
	// Re-encoding a decoded catalog reproduces the bytes exactly.
	b2, err := EncodeCatalog(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Fatal("decode→encode did not round-trip byte-identically")
	}
}

func TestDecodeCatalogRejectsNonCanonical(t *testing.T) {
	f := CatalogFile{L: 1, Halos: testHalos()}
	b, err := EncodeCatalog(f)
	if err != nil {
		t.Fatal(err)
	}
	// Swap two halos' IDs by hand: decode must refuse.
	tampered := bytes.Replace(b, []byte(`"id":0`), []byte(`"id":9`), 1)
	if _, err := DecodeCatalog(tampered); err == nil {
		t.Fatal("DecodeCatalog accepted non-canonical IDs")
	}
}

func TestPowerRoundTripAndDeterminism(t *testing.T) {
	f := PowerFile{
		L: 1, Time: 0.5, Step: 4, NMesh: 32, NBins: 8,
		K: []float64{6.28, 12.57, 25.13}, P: []float64{1e-4, 3e-5, 8e-6}, Count: []int{6, 30, 150},
	}
	b1, err := EncodePower(f)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodePower(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("EncodePower not deterministic")
	}
	got, err := DecodePower(b1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.K, f.K) || !reflect.DeepEqual(got.P, f.P) || !reflect.DeepEqual(got.Count, f.Count) {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestEncodePowerRejectsMismatchedBins(t *testing.T) {
	if _, err := EncodePower(PowerFile{K: []float64{1, 2}, P: []float64{1}, Count: []int{1, 1}}); err == nil {
		t.Fatal("EncodePower accepted mismatched arrays")
	}
	b, _ := EncodePower(PowerFile{K: []float64{2, 1}, P: []float64{1, 1}, Count: []int{1, 1}})
	if _, err := DecodePower(b); err == nil {
		t.Fatal("DecodePower accepted non-ascending k")
	}
}

// TestCatalogFromFoFDeterministic: the full measurement chain (FoF →
// Catalog → encode) is byte-stable for a fixed particle set.
func TestCatalogFromFoFDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, l = 300, 1.0
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	// Three tight clumps plus background noise.
	for i := 0; i < n; i++ {
		c := float64(i%3)*0.3 + 0.15
		if i < 240 {
			x[i] = c + 0.01*rng.NormFloat64()
			y[i] = c + 0.01*rng.NormFloat64()
			z[i] = c + 0.01*rng.NormFloat64()
		} else {
			x[i], y[i], z[i] = rng.Float64(), rng.Float64(), rng.Float64()
		}
		x[i] -= l * float64(int(x[i]/l))
		m[i] = 1.0 / n
	}
	groups := FoF(x, y, z, l, 0.05, 8)
	if len(groups) == 0 {
		t.Fatal("FoF found no groups in clustered input")
	}
	halos := Catalog(x, y, z, m, l, groups)
	b1, err := EncodeCatalog(CatalogFile{L: l, LinkingLength: 0.05, MinSize: 8, Halos: halos})
	if err != nil {
		t.Fatal(err)
	}
	b2, err := EncodeCatalog(CatalogFile{L: l, LinkingLength: 0.05, MinSize: 8, Halos: Catalog(x, y, z, m, l, groups)})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("FoF→Catalog→encode is not reproducible")
	}
}
