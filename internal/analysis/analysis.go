// Package analysis provides the measurement tools used on simulation
// output: the matter power spectrum (to validate initial conditions and
// track growth), a friends-of-friends halo finder (the paper studies the
// smallest dark-matter structures, resolved by ≥10⁵ particles each), and
// projected-density images (Fig. 6).
package analysis

import (
	"fmt"
	"io"
	"math"

	"greem/internal/fft"
	"greem/internal/mesh"
)

// PowerSpectrum measures the binned matter power spectrum of the particle
// distribution: TSC assignment onto an n³ mesh, FFT, TSC window
// deconvolution, |δ̂|² binned in spherical k shells. Returned are the mean k
// per bin, P(k) = V·⟨|δ̂|²⟩/N⁶, and the mode count per bin (empty bins are
// dropped). Shot noise V/Np is not subtracted; subtract it if the particle
// count is small.
func PowerSpectrum(x, y, z, m []float64, n int, l float64, nbins int) (ks, ps []float64, counts []int, err error) {
	pm, err := mesh.New(n, l, 1, 1)
	if err != nil {
		return nil, nil, nil, err
	}
	pm.Clear()
	pm.AssignTSC(x, y, z, m)
	var totM float64
	for _, v := range m {
		totM += v
	}
	v := l * l * l
	rhoBar := totM / v
	size := n * n * n
	work := make([]complex128, size)
	for i, r := range pm.Rho {
		work[i] = complex(r/rhoBar-1, 0)
	}
	plan, err := fft.NewPlan3(n, n, n)
	if err != nil {
		return nil, nil, nil, err
	}
	plan.Forward(work)

	kNyq := math.Pi * float64(n) / l
	kMin := 2 * math.Pi / l
	binOf := func(k float64) int {
		if k < kMin || k >= kNyq {
			return -1
		}
		return int(float64(nbins) * (k - kMin) / (kNyq - kMin))
	}
	sumK := make([]float64, nbins)
	sumP := make([]float64, nbins)
	cnt := make([]int, nbins)
	twoPiL := 2 * math.Pi / l
	n3 := float64(size)
	for jx := 0; jx < n; jx++ {
		nx := foldMode(jx, n)
		for jy := 0; jy < n; jy++ {
			ny := foldMode(jy, n)
			base := (jx*n + jy) * n
			for jz := 0; jz < n; jz++ {
				nz := foldMode(jz, n)
				if nx == 0 && ny == 0 && nz == 0 {
					continue
				}
				k := twoPiL * math.Sqrt(float64(nx*nx+ny*ny+nz*nz))
				b := binOf(k)
				if b < 0 || b >= nbins {
					continue
				}
				// Deconvolve the TSC assignment window once.
				w := tscW(nx, n) * tscW(ny, n) * tscW(nz, n)
				d := work[base+jz]
				p := (real(d)*real(d) + imag(d)*imag(d)) / (w * w)
				sumK[b] += k
				sumP[b] += p / (n3 * n3) * v
				cnt[b]++
			}
		}
	}
	for b := 0; b < nbins; b++ {
		if cnt[b] == 0 {
			continue
		}
		ks = append(ks, sumK[b]/float64(cnt[b]))
		ps = append(ps, sumP[b]/float64(cnt[b]))
		counts = append(counts, cnt[b])
	}
	return ks, ps, counts, nil
}

func foldMode(j, n int) int {
	if j > n/2 {
		return j - n
	}
	if j == n/2 {
		return -n / 2
	}
	return j
}

func tscW(m, n int) float64 {
	if m == 0 {
		return 1
	}
	x := math.Pi * float64(m) / float64(n)
	s := math.Sin(x) / x
	return s * s * s
}

// ProjectXY accumulates particle mass into an n×n surface-density image over
// the (x, y) plane (NGP binning), as in the paper's Fig. 6 snapshots.
func ProjectXY(x, y, m []float64, n int, l float64) [][]float64 {
	img := make([][]float64, n)
	for i := range img {
		img[i] = make([]float64, n)
	}
	for p := range x {
		i := int(x[p] / l * float64(n))
		j := int(y[p] / l * float64(n))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		if j < 0 {
			j = 0
		}
		if j >= n {
			j = n - 1
		}
		img[i][j] += m[p]
	}
	return img
}

// WritePGM renders an image (arbitrary non-negative values) as an 8-bit PGM
// with logarithmic scaling, the standard way to display projected dark
// matter density.
func WritePGM(w io.Writer, img [][]float64) error {
	n := len(img)
	if n == 0 {
		return fmt.Errorf("analysis: empty image")
	}
	maxV := 0.0
	minPos := math.Inf(1)
	for _, row := range img {
		for _, v := range row {
			if v > maxV {
				maxV = v
			}
			if v > 0 && v < minPos {
				minPos = v
			}
		}
	}
	if maxV == 0 {
		maxV, minPos = 1, 0.1
	}
	lo := math.Log10(minPos)
	hi := math.Log10(maxV)
	if hi <= lo {
		hi = lo + 1
	}
	if _, err := fmt.Fprintf(w, "P2\n%d %d\n255\n", len(img[0]), n); err != nil {
		return err
	}
	for _, row := range img {
		for j, v := range row {
			g := 0
			if v > 0 {
				g = int(255 * (math.Log10(v) - lo) / (hi - lo))
				if g < 0 {
					g = 0
				}
				if g > 255 {
					g = 255
				}
			}
			sep := " "
			if j == len(row)-1 {
				sep = "\n"
			}
			if _, err := fmt.Fprintf(w, "%d%s", g, sep); err != nil {
				return err
			}
		}
	}
	return nil
}

// CorrelationFunction measures the two-point correlation function ξ(r) by
// pair counting against the analytic random expectation: in each radial bin,
// ξ = DD/RR_expected − 1 with RR_expected = N(N−1)/2 · 4πr²Δr/V (periodic
// minimum-image distances; r must stay below L/2). The complementary
// statistic to PowerSpectrum — ξ(r) is its Fourier transform.
func CorrelationFunction(x, y, z []float64, l float64, rmax float64, nbins int) (rs, xi []float64) {
	n := len(x)
	if n < 2 || nbins < 1 || rmax <= 0 {
		return nil, nil
	}
	counts := make([]float64, nbins)
	minImg := func(d float64) float64 {
		d -= l * math.Round(d/l)
		return d
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := minImg(x[i] - x[j])
			dy := minImg(y[i] - y[j])
			dz := minImg(z[i] - z[j])
			r := math.Sqrt(dx*dx + dy*dy + dz*dz)
			if r >= rmax {
				continue
			}
			b := int(float64(nbins) * r / rmax)
			if b < nbins {
				counts[b]++
			}
		}
	}
	v := l * l * l
	npairs := float64(n) * float64(n-1) / 2
	for b := 0; b < nbins; b++ {
		r0 := rmax * float64(b) / float64(nbins)
		r1 := rmax * float64(b+1) / float64(nbins)
		shell := 4 * math.Pi / 3 * (r1*r1*r1 - r0*r0*r0)
		expected := npairs * shell / v
		rs = append(rs, (r0+r1)/2)
		if expected > 0 {
			xi = append(xi, counts[b]/expected-1)
		} else {
			xi = append(xi, 0)
		}
	}
	return rs, xi
}
