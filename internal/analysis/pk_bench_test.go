package analysis

import "testing"

// BenchmarkInSituPk128 is the marginal cost of the on-the-fly spectrum on a
// 128³ mesh: one PkBinner visit per retained r2c mode (the work the spectrum
// tap adds inside the PM solve) plus the analytic Finalize. No FFT — that
// is the point: the tap reuses the solver's own transform.
func BenchmarkInSituPk128(b *testing.B) {
	const n = 128
	for i := 0; i < b.N; i++ {
		pb := NewPkBinner(n, 16, 1.0, 1.0)
		for jx := 0; jx < n; jx++ {
			for jy := 0; jy < n; jy++ {
				for jz := 0; jz <= n/2; jz++ {
					w := 2
					if jz == 0 || jz == n/2 {
						w = 1
					}
					pb.Add(jx, jy, jz, w, 1e-3, -1e-3)
				}
			}
		}
		ks, ps, _ := pb.Finalize()
		if len(ks) == 0 || ps[0] <= 0 {
			b.Fatal("empty spectrum")
		}
	}
}
