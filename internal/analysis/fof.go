package analysis

import (
	"math"
	"sort"
)

// FoF runs a periodic friends-of-friends group finder with linking length
// ll: particles closer than ll (minimum image) belong to the same group.
// Groups with at least minSize members are returned, largest first, each as
// a list of particle indices. The standard cosmological linking length is
// b·(mean interparticle separation) with b ≈ 0.2.
func FoF(x, y, z []float64, l, ll float64, minSize int) [][]int {
	n := len(x)
	if n == 0 {
		return nil
	}
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	LinkPairs(x, y, z, l, ll, union)

	groups := make(map[int][]int)
	for i := 0; i < n; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	var out [][]int
	for _, g := range groups {
		if len(g) >= minSize {
			out = append(out, g)
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if len(out[a]) != len(out[b]) {
			return len(out[a]) > len(out[b])
		}
		return out[a][0] < out[b][0]
	})
	return out
}

// LinkPairs enumerates every particle pair closer than ll under the periodic
// minimum image and calls visit(i, j) for each, using a cell-linked-list grid
// with cells ≥ ll so only the 27-cell neighbourhood needs testing. This is
// the linking kernel shared by the serial FoF above and the distributed
// finder in analysis/dist: both must test exactly the same predicate
// (dx²+dy²+dz² ≤ ll² on minimum-image component differences) so their group
// partitions agree exactly. Each qualifying pair is visited at least once,
// in an unspecified order; on degenerate tiny grids (nc ≤ 2) a pair can be
// visited from both sides, so visit must be idempotent (union is).
func LinkPairs(x, y, z []float64, l, ll float64, visit func(i, j int)) {
	n := len(x)
	if n == 0 {
		return
	}
	// Spatial hash with cells ≥ ll so only 27 neighbour cells matter.
	nc := int(l / ll)
	if nc < 1 {
		nc = 1
	}
	if nc > 256 {
		nc = 256
	}
	cs := l / float64(nc)
	cellOf := func(i int) int {
		cx := int(x[i] / cs)
		cy := int(y[i] / cs)
		cz := int(z[i] / cs)
		if cx >= nc {
			cx = nc - 1
		}
		if cy >= nc {
			cy = nc - 1
		}
		if cz >= nc {
			cz = nc - 1
		}
		return (cx*nc+cy)*nc + cz
	}
	cells := make(map[int][]int)
	for i := 0; i < n; i++ {
		c := cellOf(i)
		cells[c] = append(cells[c], i)
	}

	ll2 := ll * ll
	minImg := func(d float64) float64 {
		d -= l * math.Round(d/l)
		return d
	}
	link := func(i, j int) {
		dx := minImg(x[i] - x[j])
		dy := minImg(y[i] - y[j])
		dz := minImg(z[i] - z[j])
		if dx*dx+dy*dy+dz*dz <= ll2 {
			visit(i, j)
		}
	}
	for c, members := range cells {
		cz := c % nc
		cy := (c / nc) % nc
		cx := c / (nc * nc)
		// Within-cell pairs.
		for a := 0; a < len(members); a++ {
			for b := a + 1; b < len(members); b++ {
				link(members[a], members[b])
			}
		}
		// Half of the 26 neighbours (avoid double visits).
		for _, d := range halfNeighbours {
			nx := (cx + d[0] + nc) % nc
			ny := (cy + d[1] + nc) % nc
			nz := (cz + d[2] + nc) % nc
			nb := (nx*nc+ny)*nc + nz
			if nb == c {
				continue // tiny grids alias onto themselves
			}
			other, ok := cells[nb]
			if !ok {
				continue
			}
			for _, i := range members {
				for _, j := range other {
					link(i, j)
				}
			}
		}
	}
}

// halfNeighbours is one representative of each neighbour pair (13 of 26).
var halfNeighbours = [][3]int{
	{1, 0, 0}, {0, 1, 0}, {0, 0, 1},
	{1, 1, 0}, {1, -1, 0}, {1, 0, 1}, {1, 0, -1},
	{0, 1, 1}, {0, 1, -1},
	{1, 1, 1}, {1, 1, -1}, {1, -1, 1}, {1, -1, -1},
}
