package analysis

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestPowerSpectrumSingleMode(t *testing.T) {
	// Particles sampling δ(x) = ε·cos(k₁·x) must show power concentrated in
	// the lowest-k bin.
	n := 32
	l := 1.0
	np := 32
	eps := 0.2
	var x, y, z, m []float64
	rng := rand.New(rand.NewSource(1))
	// Rejection-sample the modulated density.
	for len(x) < np*np*np {
		px, py, pz := rng.Float64(), rng.Float64(), rng.Float64()
		if rng.Float64() < (1+eps*math.Cos(2*math.Pi*px))/(1+eps) {
			x = append(x, px)
			y = append(y, py)
			z = append(z, pz)
			m = append(m, 1)
		}
	}
	ks, ps, _, err := PowerSpectrum(x, y, z, m, n, l, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) < 3 {
		t.Fatalf("too few bins")
	}
	if ps[0] <= ps[1] || ps[0] <= ps[len(ps)-1] {
		t.Errorf("power not concentrated at low k: %v", ps[:3])
	}
}

func TestPowerSpectrumShotNoiseLevel(t *testing.T) {
	// A Poisson (unclustered) distribution has P(k) ≈ V/Np at all k.
	n := 32
	l := 1.0
	np := 20000
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, np)
	y := make([]float64, np)
	z := make([]float64, np)
	m := make([]float64, np)
	for i := range x {
		x[i], y[i], z[i], m[i] = rng.Float64(), rng.Float64(), rng.Float64(), 1
	}
	ks, ps, counts, err := PowerSpectrum(x, y, z, m, n, l, 8)
	if err != nil {
		t.Fatal(err)
	}
	shot := 1.0 / float64(np) // V/Np with V = 1
	for b := range ks {
		if counts[b] < 50 {
			continue
		}
		if ps[b] < shot/2 || ps[b] > shot*2 {
			t.Errorf("bin k=%.1f: P=%.3e, shot noise %.3e", ks[b], ps[b], shot)
		}
	}
}

func TestFoFTwoClumps(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var x, y, z []float64
	add := func(cx, cy, cz float64, n int, scale float64) {
		for i := 0; i < n; i++ {
			x = append(x, math.Mod(cx+scale*rng.NormFloat64()+1, 1))
			y = append(y, math.Mod(cy+scale*rng.NormFloat64()+1, 1))
			z = append(z, math.Mod(cz+scale*rng.NormFloat64()+1, 1))
		}
	}
	add(0.2, 0.2, 0.2, 100, 0.004)
	add(0.7, 0.7, 0.7, 60, 0.004)
	// Sparse background unlikely to link.
	for i := 0; i < 30; i++ {
		x = append(x, rng.Float64())
		y = append(y, rng.Float64())
		z = append(z, rng.Float64())
	}
	groups := FoF(x, y, z, 1.0, 0.02, 10)
	if len(groups) != 2 {
		t.Fatalf("found %d groups, want 2", len(groups))
	}
	if len(groups[0]) < 90 || len(groups[1]) < 50 {
		t.Errorf("group sizes %d, %d", len(groups[0]), len(groups[1]))
	}
	if len(groups[0]) < len(groups[1]) {
		t.Error("groups not sorted by size")
	}
}

func TestFoFPeriodicLinking(t *testing.T) {
	// A clump straddling the box corner must come out as one group.
	rng := rand.New(rand.NewSource(4))
	var x, y, z []float64
	for i := 0; i < 80; i++ {
		x = append(x, math.Mod(0.003*rng.NormFloat64()+1, 1))
		y = append(y, math.Mod(0.003*rng.NormFloat64()+1, 1))
		z = append(z, math.Mod(0.003*rng.NormFloat64()+1, 1))
	}
	groups := FoF(x, y, z, 1.0, 0.02, 10)
	if len(groups) != 1 {
		t.Fatalf("corner clump split into %d groups", len(groups))
	}
	if len(groups[0]) != 80 {
		t.Errorf("group has %d members, want 80", len(groups[0]))
	}
}

func TestFoFChainLinking(t *testing.T) {
	// FoF links transitively: a chain of particles spaced under the linking
	// length is one group even though its ends are far apart.
	var x, y, z []float64
	for i := 0; i < 50; i++ {
		x = append(x, 0.1+float64(i)*0.008)
		y = append(y, 0.5)
		z = append(z, 0.5)
	}
	groups := FoF(x, y, z, 1.0, 0.01, 2)
	if len(groups) != 1 || len(groups[0]) != 50 {
		t.Errorf("chain not linked: %d groups", len(groups))
	}
	// With a shorter linking length the chain disintegrates.
	groups = FoF(x, y, z, 1.0, 0.005, 2)
	if len(groups) != 0 {
		t.Errorf("sub-linking-length chain linked: %d groups", len(groups))
	}
}

func TestFoFEmptyAndMinSize(t *testing.T) {
	if g := FoF(nil, nil, nil, 1, 0.1, 1); g != nil {
		t.Error("empty input returned groups")
	}
	g := FoF([]float64{0.1, 0.11, 0.5}, []float64{0.5, 0.5, 0.5}, []float64{0.5, 0.5, 0.5}, 1, 0.02, 3)
	if len(g) != 0 {
		t.Error("minSize not enforced")
	}
}

func TestProjectXY(t *testing.T) {
	img := ProjectXY([]float64{0.1, 0.1, 0.9}, []float64{0.1, 0.1, 0.9}, []float64{1, 2, 5}, 10, 1.0)
	if img[1][1] != 3 {
		t.Errorf("cell (1,1) = %v, want 3", img[1][1])
	}
	if img[9][9] != 5 {
		t.Errorf("cell (9,9) = %v, want 5", img[9][9])
	}
	var sum float64
	for _, row := range img {
		for _, v := range row {
			sum += v
		}
	}
	if sum != 8 {
		t.Errorf("mass not conserved: %v", sum)
	}
}

func TestWritePGM(t *testing.T) {
	img := [][]float64{{0, 1}, {10, 100}}
	var buf bytes.Buffer
	if err := WritePGM(&buf, img); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "P2\n2 2\n255\n") {
		t.Errorf("bad header: %q", out[:20])
	}
	fields := strings.Fields(out)
	if len(fields) != 4+4 {
		t.Errorf("pixel count wrong: %v", fields)
	}
	// Monotone mapping: brighter for larger values, zero stays black.
	if fields[4] != "0" {
		t.Errorf("zero pixel = %s", fields[4])
	}
	if fields[7] != "255" {
		t.Errorf("max pixel = %s", fields[7])
	}
}

func TestCorrelationFunctionPoisson(t *testing.T) {
	// An unclustered distribution has ξ(r) ≈ 0 everywhere.
	rng := rand.New(rand.NewSource(10))
	n := 3000
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	for i := range x {
		x[i], y[i], z[i] = rng.Float64(), rng.Float64(), rng.Float64()
	}
	rs, xi := CorrelationFunction(x, y, z, 1, 0.3, 6)
	if len(rs) != 6 {
		t.Fatalf("bins: %d", len(rs))
	}
	for b := range rs {
		if math.Abs(xi[b]) > 0.15 {
			t.Errorf("Poisson ξ(%.2f) = %v, want ≈ 0", rs[b], xi[b])
		}
	}
}

func TestCorrelationFunctionClustered(t *testing.T) {
	// Tight pairs boost ξ at small r and leave large scales unchanged.
	rng := rand.New(rand.NewSource(11))
	var x, y, z []float64
	for i := 0; i < 1000; i++ {
		px, py, pz := rng.Float64(), rng.Float64(), rng.Float64()
		x = append(x, px, math.Mod(px+0.005*rng.NormFloat64()+1, 1))
		y = append(y, py, math.Mod(py+0.005*rng.NormFloat64()+1, 1))
		z = append(z, pz, math.Mod(pz+0.005*rng.NormFloat64()+1, 1))
	}
	rs, xi := CorrelationFunction(x, y, z, 1, 0.2, 8)
	if xi[0] < 5 {
		t.Errorf("small-scale ξ(%.3f) = %v, expected strong clustering", rs[0], xi[0])
	}
	if math.Abs(xi[len(xi)-1]) > 0.3 {
		t.Errorf("large-scale ξ = %v, want ≈ 0", xi[len(xi)-1])
	}
}

func TestCorrelationFunctionDegenerate(t *testing.T) {
	if rs, xi := CorrelationFunction(nil, nil, nil, 1, 0.2, 4); rs != nil || xi != nil {
		t.Error("empty input should return nil")
	}
}
