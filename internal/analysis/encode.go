package analysis

import (
	"encoding/json"
	"fmt"
)

// Deterministic serialized forms for analysis products. The served-product
// cache in the service plane is content-addressed, so these encodings must
// be byte-reproducible: the same measured result always serializes to the
// same bytes. That is guaranteed by (a) canonical ordering — halos are
// sorted by the total order of SortHalos and carry their rank as ID, P(k)
// bins are already in ascending-k order — (b) fixed field order (struct
// fields, never maps), and (c) encoding/json's shortest-form float64
// round-tripping, which is exact and unique per value.

// catalogFormat and powerFormat version the serialized product schemas.
const (
	catalogFormat = 1
	powerFormat   = 1
)

// CatalogFile is the serialized halo catalog product.
type CatalogFile struct {
	Format int     `json:"format"`
	L      float64 `json:"l"`    // box side
	Time   float64 `json:"time"` // scale factor / simulation time
	Step   uint64  `json:"step"`
	// LinkingLength and MinSize record the FoF parameters the catalog was
	// measured with, so a cached product is self-describing.
	LinkingLength float64 `json:"linking_length"`
	MinSize       int     `json:"min_size"`
	Halos         []Halo  `json:"halos"`
}

// EncodeCatalog serializes a halo catalog deterministically. The input
// slice is not modified; the encoded halos are canonically sorted with
// IDs assigned in that order.
func EncodeCatalog(f CatalogFile) ([]byte, error) {
	f.Format = catalogFormat
	halos := append([]Halo(nil), f.Halos...)
	SortHalos(halos)
	f.Halos = halos
	b, err := json.Marshal(&f)
	if err != nil {
		return nil, fmt.Errorf("analysis: encode catalog: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodeCatalog parses a serialized halo catalog and checks its canonical
// invariants (format, ID = rank in the canonical order).
func DecodeCatalog(b []byte) (CatalogFile, error) {
	var f CatalogFile
	if err := json.Unmarshal(b, &f); err != nil {
		return f, fmt.Errorf("analysis: decode catalog: %w", err)
	}
	if f.Format != catalogFormat {
		return f, fmt.Errorf("analysis: unsupported catalog format %d", f.Format)
	}
	for i, h := range f.Halos {
		if h.ID != i {
			return f, fmt.Errorf("analysis: catalog not in canonical order: halo %d has id %d", i, h.ID)
		}
		if i > 0 && haloLess(h, f.Halos[i-1]) {
			return f, fmt.Errorf("analysis: catalog not in canonical order at halo %d", i)
		}
	}
	return f, nil
}

// PowerFile is the serialized power-spectrum product: parallel arrays in
// ascending-k bin order, exactly as PowerSpectrum emits them.
type PowerFile struct {
	Format int       `json:"format"`
	L      float64   `json:"l"`
	Time   float64   `json:"time"`
	Step   uint64    `json:"step"`
	NMesh  int       `json:"nmesh"` // measurement mesh
	NBins  int       `json:"nbins"` // requested bin count (empty bins dropped)
	K      []float64 `json:"k"`
	P      []float64 `json:"p"`
	Count  []int     `json:"count"` // modes per bin
}

// EncodePower serializes a measured power spectrum deterministically.
func EncodePower(f PowerFile) ([]byte, error) {
	f.Format = powerFormat
	if len(f.K) != len(f.P) || len(f.K) != len(f.Count) {
		return nil, fmt.Errorf("analysis: encode power: mismatched bin arrays (%d k, %d p, %d count)",
			len(f.K), len(f.P), len(f.Count))
	}
	b, err := json.Marshal(&f)
	if err != nil {
		return nil, fmt.Errorf("analysis: encode power: %w", err)
	}
	return append(b, '\n'), nil
}

// DecodePower parses a serialized power spectrum and checks its invariants.
func DecodePower(b []byte) (PowerFile, error) {
	var f PowerFile
	if err := json.Unmarshal(b, &f); err != nil {
		return f, fmt.Errorf("analysis: decode power: %w", err)
	}
	if f.Format != powerFormat {
		return f, fmt.Errorf("analysis: unsupported power format %d", f.Format)
	}
	if len(f.K) != len(f.P) || len(f.K) != len(f.Count) {
		return f, fmt.Errorf("analysis: decode power: mismatched bin arrays")
	}
	for i := 1; i < len(f.K); i++ {
		if f.K[i] <= f.K[i-1] {
			return f, fmt.Errorf("analysis: power bins not in ascending-k order at bin %d", i)
		}
	}
	return f, nil
}
