package analysis

import (
	"math"
	"sort"

	"greem/internal/vec"
)

// Halo summarizes one friends-of-friends group: the science object of the
// paper (the smallest dark-matter structures, whose central densities set
// the annihilation signal). The field order here is the canonical field
// order of the serialized catalog (see EncodeCatalog) — do not reorder.
type Halo struct {
	ID     int     `json:"id"` // rank in the canonical catalog order
	N      int     `json:"n"`  // member count
	Mass   float64 `json:"mass"`
	Center vec.V3  `json:"center"` // periodic center of mass
	R50    float64 `json:"r50"`    // half-mass radius
	R90    float64 `json:"r90"`    // radius enclosing 90% of the mass
}

// haloLess is the canonical total order on halos: mass descending, with
// every remaining field as a tiebreak so equal-mass halos still order
// deterministically. A total order (rather than sort-by-mass alone) is
// what makes the serialized catalog byte-reproducible regardless of the
// group order the FoF pass happened to emit.
func haloLess(a, b Halo) bool {
	if a.Mass != b.Mass {
		return a.Mass > b.Mass
	}
	if a.N != b.N {
		return a.N > b.N
	}
	if a.Center.X != b.Center.X {
		return a.Center.X < b.Center.X
	}
	if a.Center.Y != b.Center.Y {
		return a.Center.Y < b.Center.Y
	}
	if a.Center.Z != b.Center.Z {
		return a.Center.Z < b.Center.Z
	}
	if a.R50 != b.R50 {
		return a.R50 < b.R50
	}
	return a.R90 < b.R90
}

// SortHalos orders halos canonically in place and assigns IDs 0..n-1 in
// that order.
func SortHalos(halos []Halo) {
	sort.Slice(halos, func(i, j int) bool { return haloLess(halos[i], halos[j]) })
	for i := range halos {
		halos[i].ID = i
	}
}

// GroupHalo summarizes one FoF group given its member indices into the
// coordinate arrays. Member iteration order fixes the floating-point
// accumulation order, so two callers that present the same members in the
// same order (e.g. ascending global ID) get bitwise-identical halos — the
// property the distributed finder in analysis/dist relies on for canonical
// catalog parity with the serial path.
func GroupHalo(x, y, z, m []float64, l float64, g []int) Halo {
	h := Halo{N: len(g)}
	// Periodic center of mass via the circular mean: map each coordinate
	// to an angle, average the unit vectors, map back.
	var sx, cx, sy, cy, sz, cz float64
	for _, i := range g {
		h.Mass += m[i]
		tx := 2 * math.Pi * x[i] / l
		ty := 2 * math.Pi * y[i] / l
		tz := 2 * math.Pi * z[i] / l
		sx += m[i] * math.Sin(tx)
		cx += m[i] * math.Cos(tx)
		sy += m[i] * math.Sin(ty)
		cy += m[i] * math.Cos(ty)
		sz += m[i] * math.Sin(tz)
		cz += m[i] * math.Cos(tz)
	}
	h.Center = vec.Wrap(vec.V3{
		X: math.Atan2(sx, cx) / (2 * math.Pi) * l,
		Y: math.Atan2(sy, cy) / (2 * math.Pi) * l,
		Z: math.Atan2(sz, cz) / (2 * math.Pi) * l,
	}, l)
	// Mass-weighted radial ordering for R50/R90.
	type rm struct{ r, m float64 }
	rs := make([]rm, 0, len(g))
	for _, i := range g {
		d := vec.MinImage(h.Center, vec.V3{X: x[i], Y: y[i], Z: z[i]}, l).Norm()
		rs = append(rs, rm{d, m[i]})
	}
	sort.Slice(rs, func(a, b int) bool { return rs[a].r < rs[b].r })
	var acc float64
	for _, p := range rs {
		acc += p.m
		if h.R50 == 0 && acc >= 0.5*h.Mass {
			h.R50 = p.r
		}
		if acc >= 0.9*h.Mass {
			h.R90 = p.r
			break
		}
	}
	return h
}

// Catalog converts FoF groups (from FoF) into halo summaries, largest first.
func Catalog(x, y, z, m []float64, l float64, groups [][]int) []Halo {
	out := make([]Halo, 0, len(groups))
	for _, g := range groups {
		if len(g) == 0 {
			continue
		}
		out = append(out, GroupHalo(x, y, z, m, l, g))
	}
	SortHalos(out)
	return out
}

// MassFunction returns the cumulative halo mass function N(>M) on
// logarithmically spaced mass thresholds between the smallest and largest
// halo mass.
func MassFunction(halos []Halo, nbins int) (mass []float64, count []int) {
	if len(halos) == 0 || nbins < 1 {
		return nil, nil
	}
	lo, hi := halos[len(halos)-1].Mass, halos[0].Mass
	if lo <= 0 || hi <= lo {
		lo = hi / 10
	}
	for b := 0; b < nbins; b++ {
		mth := lo * math.Pow(hi/lo, float64(b)/float64(nbins))
		c := 0
		for _, h := range halos {
			if h.Mass >= mth {
				c++
			}
		}
		mass = append(mass, mth)
		count = append(count, c)
	}
	return mass, count
}

// RadialProfile returns the spherically averaged density profile around a
// center: nbins shells out to rmax, returning shell mid-radii and densities.
func RadialProfile(x, y, z, m []float64, l float64, center vec.V3, rmax float64, nbins int) (r, rho []float64) {
	massIn := make([]float64, nbins)
	for i := range x {
		d := vec.MinImage(center, vec.V3{X: x[i], Y: y[i], Z: z[i]}, l).Norm()
		if d >= rmax {
			continue
		}
		b := int(float64(nbins) * d / rmax)
		if b >= nbins {
			b = nbins - 1
		}
		massIn[b] += m[i]
	}
	for b := 0; b < nbins; b++ {
		r0 := rmax * float64(b) / float64(nbins)
		r1 := rmax * float64(b+1) / float64(nbins)
		vol := 4 * math.Pi / 3 * (r1*r1*r1 - r0*r0*r0)
		r = append(r, (r0+r1)/2)
		rho = append(rho, massIn[b]/vol)
	}
	return r, rho
}
