package analysis

import (
	"math"
	"math/rand"
	"testing"

	"greem/internal/vec"
)

// makeClump places n particles in a Gaussian ball at c (possibly straddling
// the periodic boundary).
func makeClump(rng *rand.Rand, c vec.V3, n int, scale float64) (x, y, z, m []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	m = make([]float64, n)
	for i := 0; i < n; i++ {
		p := vec.Wrap(vec.V3{
			X: c.X + scale*rng.NormFloat64(),
			Y: c.Y + scale*rng.NormFloat64(),
			Z: c.Z + scale*rng.NormFloat64(),
		}, 1)
		x[i], y[i], z[i], m[i] = p.X, p.Y, p.Z, 1
	}
	return
}

func TestCatalogCenterAndRadii(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	c := vec.V3{X: 0.3, Y: 0.6, Z: 0.4}
	x, y, z, m := makeClump(rng, c, 500, 0.01)
	groups := [][]int{indices(500)}
	halos := Catalog(x, y, z, m, 1, groups)
	if len(halos) != 1 {
		t.Fatalf("%d halos", len(halos))
	}
	h := halos[0]
	if h.N != 500 || h.Mass != 500 {
		t.Errorf("N=%d Mass=%v", h.N, h.Mass)
	}
	if vec.MinImage(h.Center, c, 1).Norm() > 0.005 {
		t.Errorf("center %v, want ~%v", h.Center, c)
	}
	// For an isotropic Gaussian ball, R50 ≈ 1.54σ and R50 < R90.
	if h.R50 < 0.012 || h.R50 > 0.020 {
		t.Errorf("R50 = %v, want ≈ 1.54σ = 0.0154", h.R50)
	}
	if h.R90 <= h.R50 {
		t.Errorf("R90 (%v) ≤ R50 (%v)", h.R90, h.R50)
	}
}

func TestCatalogPeriodicCenter(t *testing.T) {
	// A clump at the corner: its naive mean would land near the box center;
	// the circular mean must land at the corner.
	rng := rand.New(rand.NewSource(2))
	x, y, z, m := makeClump(rng, vec.V3{}, 300, 0.005)
	halos := Catalog(x, y, z, m, 1, [][]int{indices(300)})
	d := vec.MinImage(halos[0].Center, vec.V3{}, 1).Norm()
	if d > 0.005 {
		t.Errorf("corner clump center off by %v", d)
	}
}

func TestCatalogSortsByMass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x1, y1, z1, m1 := makeClump(rng, vec.V3{X: 0.2, Y: 0.2, Z: 0.2}, 100, 0.01)
	x2, y2, z2, m2 := makeClump(rng, vec.V3{X: 0.8, Y: 0.8, Z: 0.8}, 300, 0.01)
	x := append(x1, x2...)
	y := append(y1, y2...)
	z := append(z1, z2...)
	m := append(m1, m2...)
	g1 := indices(100)
	g2 := make([]int, 300)
	for i := range g2 {
		g2[i] = 100 + i
	}
	halos := Catalog(x, y, z, m, 1, [][]int{g1, g2})
	if len(halos) != 2 || halos[0].N != 300 || halos[1].N != 100 {
		t.Errorf("ordering wrong: %+v", halos)
	}
}

func TestMassFunctionMonotone(t *testing.T) {
	halos := []Halo{{Mass: 100}, {Mass: 50}, {Mass: 20}, {Mass: 10}, {Mass: 10}}
	mass, count := MassFunction(halos, 8)
	if len(mass) != 8 {
		t.Fatalf("bins: %d", len(mass))
	}
	if count[0] != 5 {
		t.Errorf("N(>Mmin) = %d, want 5", count[0])
	}
	for b := 1; b < len(count); b++ {
		if count[b] > count[b-1] {
			t.Errorf("mass function not monotone at %d", b)
		}
		if mass[b] <= mass[b-1] {
			t.Errorf("thresholds not increasing at %d", b)
		}
	}
	if m, c := MassFunction(nil, 4); m != nil || c != nil {
		t.Error("empty catalog should return nil")
	}
}

func TestRadialProfileUniformBall(t *testing.T) {
	// Particles uniform inside radius R: the density profile is flat inside
	// and zero outside.
	rng := rand.New(rand.NewSource(4))
	const R = 0.1
	n := 40000
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	c := vec.V3{X: 0.5, Y: 0.5, Z: 0.5}
	for i := 0; i < n; i++ {
		for {
			dx := (2*rng.Float64() - 1) * R
			dy := (2*rng.Float64() - 1) * R
			dz := (2*rng.Float64() - 1) * R
			if dx*dx+dy*dy+dz*dz <= R*R {
				x[i], y[i], z[i], m[i] = c.X+dx, c.Y+dy, c.Z+dz, 1
				break
			}
		}
	}
	r, rho := RadialProfile(x, y, z, m, 1, c, 2*R, 10)
	meanRho := float64(n) / (4 * math.Pi / 3 * R * R * R)
	for b := range r {
		switch {
		case r[b] < 0.8*R:
			if math.Abs(rho[b]-meanRho)/meanRho > 0.1 {
				t.Errorf("inner shell %d: ρ = %v, want ≈ %v", b, rho[b], meanRho)
			}
		case r[b] > 1.2*R:
			if rho[b] != 0 {
				t.Errorf("outer shell %d: ρ = %v, want 0", b, rho[b])
			}
		}
	}
}

func indices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
