package analysis

import (
	"math"
	"strconv"
)

// PkBinner accumulates the binned matter power spectrum directly from an
// already-transformed density spectrum — the in-situ counterpart of
// PowerSpectrum. The PM solver visits each stored mode of its distributed
// (half-)spectrum exactly once via Add, with the Hermitian multiplicity w
// (2 for a compressed-axis mode standing in for its conjugate, 1 otherwise);
// the partial SumP arrays are then summed across ranks (mpi.Allreduce) and
// Finalize turns them into the same (k, P, count) triple the serial path
// produces.
//
// Two reproducibility properties matter here:
//   - K and Count are pure mode geometry, so Finalize recomputes them
//     analytically in exactly the serial full-cube loop order — they are
//     bitwise identical to PowerSpectrum's, whatever the distributed layout.
//   - SumP depends on the FFT factorization and the cross-rank reduction
//     order, so P agrees with the serial path only to rounding (≲1e-13
//     relative). Callers wanting byte-stable encodings quantize P through
//     CanonicalP on both paths.
//
// The binner consumes the raw mass-density spectrum ρ̂ (unnormalized forward
// FFT of the TSC mass density): for every k ≠ 0, δ̂ = ρ̂/ρ̄, which is exact
// because subtracting the mean density only changes the DC mode.
type PkBinner struct {
	// SumP is the per-bin Σ w·|δ̂|²/W²/N⁶·V partial sum; index by bin.
	SumP []float64

	n, nbins int
	l        float64
	rhoBar   float64
	v        float64 // box volume
	n3       float64 // N³ as float
	kMin     float64
	kNyq     float64
	twoPiL   float64
}

// NewPkBinner sizes a binner for an n³ mesh over a box of side l holding
// total mass totM, with nbins spherical k shells between the fundamental and
// the Nyquist frequency (PowerSpectrum's binning).
func NewPkBinner(n, nbins int, l, totM float64) *PkBinner {
	v := l * l * l
	return &PkBinner{
		SumP: make([]float64, nbins),
		n:    n, nbins: nbins, l: l,
		rhoBar: totM / v,
		v:      v,
		n3:     float64(n * n * n),
		kMin:   2 * math.Pi / l,
		kNyq:   math.Pi * float64(n) / l,
		twoPiL: 2 * math.Pi / l,
	}
}

// binOf maps |k| to its shell, −1 outside [kMin, kNyq) — the serial rule.
func (b *PkBinner) binOf(k float64) int {
	if k < b.kMin || k >= b.kNyq {
		return -1
	}
	return int(float64(b.nbins) * (k - b.kMin) / (b.kNyq - b.kMin))
}

// Add accumulates one stored mode (jx, jy, jz) ∈ [0, n)³ of the raw density
// spectrum with Hermitian multiplicity w. The DC mode is skipped; the TSC
// assignment window is deconvolved here, matching PowerSpectrum.
func (b *PkBinner) Add(jx, jy, jz, w int, re, im float64) {
	nx := foldMode(jx, b.n)
	ny := foldMode(jy, b.n)
	nz := foldMode(jz, b.n)
	if nx == 0 && ny == 0 && nz == 0 {
		return
	}
	k := b.twoPiL * math.Sqrt(float64(nx*nx+ny*ny+nz*nz))
	bin := b.binOf(k)
	if bin < 0 || bin >= b.nbins {
		return
	}
	wt := tscW(nx, b.n) * tscW(ny, b.n) * tscW(nz, b.n)
	// δ̂ = ρ̂/ρ̄ for k ≠ 0.
	dre := re / b.rhoBar
	dim := im / b.rhoBar
	p := (dre*dre + dim*dim) / (wt * wt)
	b.SumP[bin] += float64(w) * (p / (b.n3 * b.n3) * b.v)
}

// Finalize reduces the (already cross-rank-summed) SumP into the serial
// (ks, ps, counts) shape: mean k and mean P per shell, empty shells dropped.
// The k sums and mode counts are recomputed analytically by walking the full
// n³ mode cube in PowerSpectrum's exact jx→jy→jz order, so ks and counts are
// bitwise identical to the serial function's.
func (b *PkBinner) Finalize() (ks, ps []float64, counts []int) {
	sumK := make([]float64, b.nbins)
	cnt := make([]int, b.nbins)
	for jx := 0; jx < b.n; jx++ {
		nx := foldMode(jx, b.n)
		for jy := 0; jy < b.n; jy++ {
			ny := foldMode(jy, b.n)
			for jz := 0; jz < b.n; jz++ {
				nz := foldMode(jz, b.n)
				if nx == 0 && ny == 0 && nz == 0 {
					continue
				}
				k := b.twoPiL * math.Sqrt(float64(nx*nx+ny*ny+nz*nz))
				bin := b.binOf(k)
				if bin < 0 || bin >= b.nbins {
					continue
				}
				sumK[bin] += k
				cnt[bin]++
			}
		}
	}
	for bin := 0; bin < b.nbins; bin++ {
		if cnt[bin] == 0 {
			continue
		}
		ks = append(ks, sumK[bin]/float64(cnt[bin]))
		ps = append(ps, b.SumP[bin]/float64(cnt[bin]))
		counts = append(counts, cnt[bin])
	}
	return ks, ps, counts
}

// ShotNoise returns the Poisson shot-noise level V/Np for np particles in a
// box of volume l³ — the quantity to subtract from P(k) when the sampling
// noise matters. PowerSpectrum (and hence the canonical PowerFile encoding)
// reports the raw spectrum, so the in-situ path exposes the level separately
// instead of folding it in.
func ShotNoise(l float64, np int64) float64 {
	if np <= 0 {
		return 0
	}
	return l * l * l / float64(np)
}

// CanonicalP quantizes power-spectrum values to 10 significant decimal
// digits (round-trip through %.9e). The distributed and serial pipelines
// agree to ≲1e-13 relative but not bitwise — their FFT factorizations and
// summation orders differ — so the canonical product encoding carries the
// quantized values, which both pipelines land on identically. Returns a new
// slice; NaNs and infinities pass through unchanged.
func CanonicalP(p []float64) []float64 {
	out := make([]float64, len(p))
	for i, v := range p {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			out[i] = v
			continue
		}
		q, err := strconv.ParseFloat(strconv.FormatFloat(v, 'e', 9, 64), 64)
		if err != nil {
			q = v
		}
		out[i] = q
	}
	return out
}
