package dist

import (
	"bytes"
	"testing"

	"greem/internal/analysis"
	"greem/internal/mpi"
)

// FuzzUnionFindStitch drives the distributed finder — ghost import, local
// union-find, iterative label-exchange stitch — with arbitrary particle
// configurations against the single-rank serial oracle. The fuzz input is
// decoded deterministically: byte 0 picks the rank count, byte 1 the linking
// length, and every following 3-byte triple is one particle on a 1/64
// lattice (coincident particles, boundary-sitting particles and near-empty
// ranks all arise naturally).
func FuzzUnionFindStitch(f *testing.F) {
	f.Add([]byte{0, 4, 1, 2, 3, 1, 2, 4, 60, 60, 60})
	f.Add([]byte{1, 8, 0, 0, 0, 63, 63, 63, 0, 0, 1, 31, 31, 31})
	f.Add([]byte{2, 2, 10, 10, 10, 10, 10, 11, 10, 11, 10, 11, 10, 10, 40, 40, 40})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 5 {
			return
		}
		ranks := []int{2, 4, 8}[int(data[0])%3]
		ll := float64(1+int(data[1])%8) / 32 // 1/32 .. 8/32
		ps := &pset{}
		for i := 2; i+2 < len(data) && len(ps.x) < 64; i += 3 {
			ps.add(float64(data[i]%64)/64, float64(data[i+1]%64)/64, float64(data[i+2]%64)/64)
		}
		const l, minSize = 1.0, 2

		groups := analysis.FoF(ps.x, ps.y, ps.z, l, ll, minSize)
		halos := analysis.Catalog(ps.x, ps.y, ps.z, ps.m, l, groups)
		want, err := analysis.EncodeCatalog(analysis.CatalogFile{
			Format: 1, L: l, LinkingLength: ll, MinSize: minSize, Halos: halos,
		})
		if err != nil {
			t.Fatal(err)
		}

		var got []byte
		err = mpi.Run(ranks, func(c *mpi.Comm) {
			var x, y, z, m []float64
			var id []int64
			for i := range ps.x {
				if i%ranks != c.Rank() {
					continue
				}
				x = append(x, ps.x[i])
				y = append(y, ps.y[i])
				z = append(z, ps.z[i])
				m = append(m, ps.m[i])
				id = append(id, ps.id[i])
			}
			hs := FoF(c, Config{L: l, LinkLen: ll, MinSize: minSize}, x, y, z, m, id)
			if c.Rank() == 0 {
				b, eerr := analysis.EncodeCatalog(analysis.CatalogFile{
					Format: 1, L: l, LinkingLength: ll, MinSize: minSize, Halos: hs,
				})
				if eerr != nil {
					panic(eerr)
				}
				got = b
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("stitch diverged from serial oracle (%d particles, %d ranks, ll=%g):\nserial: %s\ndist:   %s",
				len(ps.x), ranks, ll, want, got)
		}
	})
}
