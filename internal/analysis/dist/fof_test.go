package dist

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"greem/internal/analysis"
	"greem/internal/mpi"
)

// particle set helpers — positions in [0, 1), IDs 0..n−1, unit total mass.

type pset struct {
	x, y, z, m []float64
	id         []int64
}

func (p *pset) add(x, y, z float64) {
	p.x = append(p.x, x)
	p.y = append(p.y, y)
	p.z = append(p.z, z)
	p.m = append(p.m, 1)
	p.id = append(p.id, int64(len(p.id)))
}

// serialBytes is the oracle: the canonical catalog of the serial finder on
// the full (ID-ordered) particle set.
func serialBytes(t *testing.T, ps *pset, l, ll float64, minSize int) []byte {
	t.Helper()
	groups := analysis.FoF(ps.x, ps.y, ps.z, l, ll, minSize)
	halos := analysis.Catalog(ps.x, ps.y, ps.z, ps.m, l, groups)
	b, err := analysis.EncodeCatalog(analysis.CatalogFile{
		Format: 1, L: l, LinkingLength: ll, MinSize: minSize, Halos: halos,
	})
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// distBytes runs the distributed finder on p ranks (round-robin particle
// placement, so neighbouring IDs land on different ranks) and returns rank
// 0's canonical catalog.
func distBytes(t *testing.T, ps *pset, ranks int, l, ll float64, minSize int) []byte {
	t.Helper()
	var out []byte
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		var x, y, z, m []float64
		var id []int64
		for i := range ps.x {
			if i%ranks != c.Rank() {
				continue
			}
			x = append(x, ps.x[i])
			y = append(y, ps.y[i])
			z = append(z, ps.z[i])
			m = append(m, ps.m[i])
			id = append(id, ps.id[i])
		}
		halos := FoF(c, Config{L: l, LinkLen: ll, MinSize: minSize}, x, y, z, m, id)
		if c.Rank() == 0 {
			b, err := analysis.EncodeCatalog(analysis.CatalogFile{
				Format: 1, L: l, LinkingLength: ll, MinSize: minSize, Halos: halos,
			})
			if err != nil {
				panic(err)
			}
			out = b
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func requireParity(t *testing.T, ps *pset, ranks int, l, ll float64, minSize int) {
	t.Helper()
	want := serialBytes(t, ps, l, ll, minSize)
	got := distBytes(t, ps, ranks, l, ll, minSize)
	if !bytes.Equal(want, got) {
		t.Fatalf("distributed catalog differs from serial:\nserial: %s\ndist:   %s", want, got)
	}
}

func countHalos(t *testing.T, ps *pset, ranks int, l, ll float64, minSize int) int {
	t.Helper()
	var n int
	err := mpi.Run(ranks, func(c *mpi.Comm) {
		halos := FoF(c, Config{L: l, LinkLen: ll, MinSize: minSize}, ps.sliceX(c.Rank(), ranks), ps.sliceY(c.Rank(), ranks), ps.sliceZ(c.Rank(), ranks), ps.sliceM(c.Rank(), ranks), ps.sliceID(c.Rank(), ranks))
		if c.Rank() == 0 {
			n = len(halos)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func (p *pset) sliceX(r, s int) []float64 { return roundRobinF(p.x, r, s) }
func (p *pset) sliceY(r, s int) []float64 { return roundRobinF(p.y, r, s) }
func (p *pset) sliceZ(r, s int) []float64 { return roundRobinF(p.z, r, s) }
func (p *pset) sliceM(r, s int) []float64 { return roundRobinF(p.m, r, s) }
func (p *pset) sliceID(r, s int) []int64 {
	var out []int64
	for i, v := range p.id {
		if i%s == r {
			out = append(out, v)
		}
	}
	return out
}

func roundRobinF(v []float64, r, s int) []float64 {
	var out []float64
	for i, x := range v {
		if i%s == r {
			out = append(out, x)
		}
	}
	return out
}

// TestDistFoFPairAtLinkingLength probes the boundary of the link predicate
// for a pair that straddles a rank boundary (round-robin placement puts IDs
// 0 and 1 on ranks 0 and 1): separation exactly b links, one ulp beyond does
// not, one ulp under does. The chosen coordinates make the minimum-image
// distance exact in binary floating point, so "exactly b" is meaningful.
func TestDistFoFPairAtLinkingLength(t *testing.T) {
	const l, ll = 1.0, 0.25
	at := func(x2 float64) *pset {
		ps := &pset{}
		ps.add(0.25, 0.5, 0.5)
		ps.add(x2, 0.5, 0.5)
		return ps
	}
	exact := at(0.5)                    // distance exactly ll
	over := at(math.Nextafter(0.5, 1))  // one ulp beyond
	under := at(math.Nextafter(0.5, 0)) // one ulp under
	for _, tc := range []struct {
		name string
		ps   *pset
		want int // halos with MinSize 2
	}{
		{"exactly-b", exact, 1},
		{"b-plus-ulp", over, 0},
		{"b-minus-ulp", under, 1},
	} {
		t.Run(tc.name, func(t *testing.T) {
			requireParity(t, tc.ps, 8, l, ll, 2)
			if n := countHalos(t, tc.ps, 8, l, ll, 2); n != tc.want {
				t.Fatalf("got %d halos, want %d", n, tc.want)
			}
		})
	}
}

// TestDistFoFPeriodicWrapPair links a pair across the periodic boundary: the
// unwrapped separation is 0.98, the minimum image 0.02.
func TestDistFoFPeriodicWrapPair(t *testing.T) {
	ps := &pset{}
	ps.add(0.01, 0.3, 0.3)
	ps.add(0.99, 0.3, 0.3)
	requireParity(t, ps, 8, 1.0, 0.05, 2)
	if n := countHalos(t, ps, 8, 1.0, 0.05, 2); n != 1 {
		t.Fatalf("wrap pair not linked: %d halos", n)
	}
}

// TestDistFoFChainSpansEveryRank builds one chain of 16 equally spaced
// particles crossing the whole box (closing on itself through the periodic
// boundary). Round-robin placement puts two links on every one of the 8
// ranks, so the group's fragments must stitch across every rank to converge.
func TestDistFoFChainSpansEveryRank(t *testing.T) {
	ps := &pset{}
	for i := 0; i < 16; i++ {
		ps.add(float64(i)/16, 0.5, 0.5)
	}
	const ll = 0.07 // spacing 0.0625 < ll: a single ring-shaped group
	requireParity(t, ps, 8, 1.0, ll, 2)
	if n := countHalos(t, ps, 8, 1.0, ll, 2); n != 1 {
		t.Fatalf("chain fragmented: %d halos, want 1", n)
	}
}

// TestDistFoFSingletonsBelowMinSize: isolated particles and a under-threshold
// triplet produce an empty catalog, identically to the serial cut.
func TestDistFoFSingletonsBelowMinSize(t *testing.T) {
	ps := &pset{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20; i++ { // isolated singletons
		ps.add(rng.Float64(), rng.Float64(), rng.Float64())
	}
	ps.add(0.5, 0.5, 0.5) // a linked triplet, still below MinSize 8
	ps.add(0.5+1e-3, 0.5, 0.5)
	ps.add(0.5, 0.5+1e-3, 0.5)
	requireParity(t, ps, 8, 1.0, 5e-3, 8)
	if n := countHalos(t, ps, 8, 1.0, 5e-3, 8); n != 0 {
		t.Fatalf("sub-threshold groups leaked into the catalog: %d halos", n)
	}
}

// clusteredSet is the Plummer-like clustered distribution of the parity
// battery: dense Gaussian clusters (wrapped into the box, so clusters sit on
// rank and box boundaries) over a uniform background.
func clusteredSet(seed int64, nclust, perClust, background int) *pset {
	rng := rand.New(rand.NewSource(seed))
	ps := &pset{}
	wrap := func(v float64) float64 {
		v -= math.Floor(v)
		if v >= 1 {
			v = 0
		}
		return v
	}
	for c := 0; c < nclust; c++ {
		cx, cy, cz := rng.Float64(), rng.Float64(), rng.Float64()
		for i := 0; i < perClust; i++ {
			ps.add(wrap(cx+0.02*rng.NormFloat64()),
				wrap(cy+0.02*rng.NormFloat64()),
				wrap(cz+0.02*rng.NormFloat64()))
		}
	}
	for i := 0; i < background; i++ {
		ps.add(rng.Float64(), rng.Float64(), rng.Float64())
	}
	return ps
}

// TestDistFoFParityClustered and TestDistFoFParityUniform are the main
// byte-for-byte parity checks of the distributed finder against the serial
// oracle. Halos straddle two or more rank boundaries by construction: the
// round-robin placement scatters every cluster across all 8 ranks.
func TestDistFoFParityClustered(t *testing.T) {
	ps := clusteredSet(3, 6, 60, 200)
	requireParity(t, ps, 8, 1.0, 0.02, 8)
	if n := countHalos(t, ps, 8, 1.0, 0.02, 8); n == 0 {
		t.Fatal("clustered parity case found no halos — test is vacuous")
	}
}

func TestDistFoFParityUniform(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ps := &pset{}
	for i := 0; i < 600; i++ {
		ps.add(rng.Float64(), rng.Float64(), rng.Float64())
	}
	// ll near the percolation regime, so groups of many shapes appear.
	requireParity(t, ps, 8, 1.0, 0.06, 2)
}

// TestDistFoFRankCounts runs the clustered parity on 2 and 4 ranks too: the
// catalog must not depend on the decomposition width.
func TestDistFoFRankCounts(t *testing.T) {
	ps := clusteredSet(5, 4, 40, 100)
	want := serialBytes(t, ps, 1.0, 0.02, 8)
	for _, ranks := range []int{1, 2, 4} {
		if got := distBytes(t, ps, ranks, 1.0, 0.02, 8); !bytes.Equal(want, got) {
			t.Fatalf("catalog differs on %d ranks", ranks)
		}
	}
}

// TestDistFoFEmptyRank: fewer particles than ranks leaves some ranks with no
// particles at all; the empty-box path must not wedge the collectives.
func TestDistFoFEmptyRank(t *testing.T) {
	ps := &pset{}
	ps.add(0.5, 0.5, 0.5)
	ps.add(0.5+1e-3, 0.5, 0.5)
	ps.add(0.5, 0.5+1e-3, 0.5)
	requireParity(t, ps, 8, 1.0, 5e-3, 2)
	if n := countHalos(t, ps, 8, 1.0, 5e-3, 2); n != 1 {
		t.Fatalf("got %d halos, want 1", n)
	}
}
