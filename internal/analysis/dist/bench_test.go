package dist

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"greem/internal/mpi"
)

var benchSet struct {
	once       sync.Once
	x, y, z, m [][]float64 // per rank
	id         [][]int64
}

// benchParticles builds the 64³ clustered benchmark set once: half the
// particles in Gaussian clusters (the FoF-heavy part), half uniform,
// decomposed into x-slabs — the spatially compact domains the simulation
// hands the finder, so the ghost import stays a boundary shell instead of
// degenerating into an all-pairs broadcast.
func benchParticles() {
	const n = 64 * 64 * 64
	const ranks = 8
	rng := rand.New(rand.NewSource(42))
	wrap := func(v float64) float64 {
		v -= math.Floor(v)
		if v >= 1 {
			v = 0
		}
		return v
	}
	benchSet.x = make([][]float64, ranks)
	benchSet.y = make([][]float64, ranks)
	benchSet.z = make([][]float64, ranks)
	benchSet.m = make([][]float64, ranks)
	benchSet.id = make([][]int64, ranks)
	add := func(i int, x, y, z float64) {
		r := int(x * ranks)
		if r >= ranks {
			r = ranks - 1
		}
		benchSet.x[r] = append(benchSet.x[r], x)
		benchSet.y[r] = append(benchSet.y[r], y)
		benchSet.z[r] = append(benchSet.z[r], z)
		benchSet.m[r] = append(benchSet.m[r], 1.0/n)
		benchSet.id[r] = append(benchSet.id[r], int64(i))
	}
	i := 0
	for c := 0; c < 200; c++ {
		cx, cy, cz := rng.Float64(), rng.Float64(), rng.Float64()
		for k := 0; k < n/2/200; k++ {
			add(i, wrap(cx+0.01*rng.NormFloat64()), wrap(cy+0.01*rng.NormFloat64()), wrap(cz+0.01*rng.NormFloat64()))
			i++
		}
	}
	for ; i < n; i++ {
		add(i, rng.Float64(), rng.Float64(), rng.Float64())
	}
}

// BenchmarkDistFoF64 is the in-situ halo-finding cost on the standard 64³ /
// 8-rank bench case: local cell linking, ghost import, label stitch and
// canonical catalog assembly, end to end.
func BenchmarkDistFoF64(b *testing.B) {
	benchSet.once.Do(benchParticles)
	const ll = 0.2 / 64
	var halos int
	for i := 0; i < b.N; i++ {
		err := mpi.Run(8, func(c *mpi.Comm) {
			r := c.Rank()
			hs := FoF(c, Config{L: 1, LinkLen: ll, MinSize: 8},
				benchSet.x[r], benchSet.y[r], benchSet.z[r], benchSet.m[r], benchSet.id[r])
			if c.Rank() == 0 {
				halos = len(hs)
			}
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(halos), "halos")
}
