// Package dist holds the distributed, in-situ counterparts of the serial
// analysis tools. The flagship is the parallel friends-of-friends finder:
// at the paper's scale (10¹² particles) no rank can hold the global particle
// set, so groups must be found in place on the domain-decomposed data — each
// rank links locally, imports a shell of ghost particles within the linking
// length from nearby ranks (the same periodic box geometry the LET ghost
// exchange uses), and stitches cross-rank fragments by exchanging union-find
// labels to a fixed point. The resulting catalog is identical — bit for bit,
// in the canonical encoding — to running the serial finder on the gathered,
// ID-sorted particle set.
package dist

import (
	"math"
	"sort"

	"greem/internal/analysis"
	"greem/internal/mpi"
	"greem/internal/tree"
	"greem/internal/vec"
)

// TrafficLabel tags the finder's collectives on the mpi traffic ledger.
const TrafficLabel = "analysis/fof"

// ghostSlack inflates the ghost import radius so a pair at exactly the
// linking length is never lost to rounding in the point-to-box distance;
// the link predicate itself stays exact, so extra ghosts are harmless.
const ghostSlack = 1 + 1e-9

// Config parameterizes a distributed FoF pass.
type Config struct {
	L       float64 // periodic box side; positions must lie in [0, L)
	LinkLen float64 // absolute linking length
	MinSize int     // smallest group reported (the serial ≥ rule)
}

// ghost is one imported boundary particle: enough to link against (mass is
// not needed for linking; members ship it later from their home rank).
type ghost struct {
	X, Y, Z float64
	ID      int64
}

// labelMsg carries one (particle, fragment label) pair of the stitch.
type labelMsg struct {
	ID    int64
	Label int64
}

// member is one accepted-group particle routed to its group's owner rank.
type member struct {
	X, Y, Z, M float64
	ID         int64
	Label      int64
}

// FoF runs the distributed friends-of-friends finder over the rank-local
// particle arrays (positions in [0, L), m the masses, id the globally unique
// non-negative particle IDs). Collective over c. Rank 0 returns the complete
// canonical catalog (SortHalos order and IDs); other ranks return nil.
//
// Parity contract: for the same global particle set, the returned catalog is
// bitwise identical to
//
//	analysis.Catalog(x', y', z', m', l, analysis.FoF(x', y', z', l, ll, min))
//
// where the primed arrays are the gathered particles sorted by ID. The three
// ingredients: the link predicate is analysis.LinkPairs on both paths (same
// minimum-image arithmetic), the stitch converges every fragment to the
// group's global minimum ID (a pure lattice descent, order-independent), and
// each group's halo statistics are accumulated in ascending-ID member order
// — the serial path's ascending-index order — by the one rank that owns the
// group.
func FoF(c *mpi.Comm, cfg Config, x, y, z, m []float64, id []int64) []analysis.Halo {
	if c.Rank() == 0 {
		c.SetTrafficLabel(TrafficLabel)
		defer c.SetTrafficLabel("")
	}
	p := c.Size()
	nloc := len(x)
	l, ll := cfg.L, cfg.LinkLen

	// --- 1. Every rank publishes the AABB of its actual particles. The
	// domain geometry would do when particles sit exactly inside their
	// domains, but the bounding box of the data is correct regardless of
	// drift since the last decomposition. An empty rank publishes an
	// inverted box that every distance test rejects.
	box := [6]float64{math.Inf(1), math.Inf(-1), math.Inf(1), math.Inf(-1), math.Inf(1), math.Inf(-1)}
	for i := 0; i < nloc; i++ {
		box[0] = math.Min(box[0], x[i])
		box[1] = math.Max(box[1], x[i])
		box[2] = math.Min(box[2], y[i])
		box[3] = math.Max(box[3], y[i])
		box[4] = math.Min(box[4], z[i])
		box[5] = math.Max(box[5], z[i])
	}
	boxes := mpi.Allgather(c, box[:])

	// --- 2. Ghost import: ship every local particle within the (slightly
	// inflated) linking length of a remote rank's box to that rank, at its
	// original wrapped coordinates — the linking below uses minimum-image
	// differences throughout, so no shifting is ever needed.
	rs := ll * ghostSlack
	rs2 := rs * rs
	sendg := make([][]ghost, p)
	for r := 0; r < p; r++ {
		if r == c.Rank() {
			continue
		}
		b := boxes[r]
		if b[0] > b[1] {
			continue // empty rank
		}
		lo := vec.V3{X: b[0], Y: b[2], Z: b[4]}
		hi := vec.V3{X: b[1], Y: b[3], Z: b[5]}
		mylo := vec.V3{X: box[0], Y: box[2], Z: box[4]}
		myhi := vec.V3{X: box[1], Y: box[3], Z: box[5]}
		if nloc == 0 || tree.BoxDistPeriodic(mylo, myhi, lo, hi, l) > rs {
			continue
		}
		for i := 0; i < nloc; i++ {
			dx := pointAxisDist(x[i], b[0], b[1], l)
			dy := pointAxisDist(y[i], b[2], b[3], l)
			dz := pointAxisDist(z[i], b[4], b[5], l)
			if dx*dx+dy*dy+dz*dz <= rs2 {
				sendg[r] = append(sendg[r], ghost{X: x[i], Y: y[i], Z: z[i], ID: id[i]})
			}
		}
	}
	recvg := mpi.Alltoall(c, sendg)

	// Combined index space: locals [0, nloc), then ghosts in rank order —
	// the deterministic receive order that also keys the stitch messages.
	ax := append([]float64{}, x...)
	ay := append([]float64{}, y...)
	az := append([]float64{}, z...)
	aid := append([]int64{}, id...)
	ghostFrom := make([][2]int, p) // ghost index range [lo, hi) per source rank
	for r := 0; r < p; r++ {
		start := len(ax)
		for _, g := range recvg[r] {
			ax = append(ax, g.X)
			ay = append(ay, g.Y)
			az = append(az, g.Z)
			aid = append(aid, g.ID)
		}
		ghostFrom[r] = [2]int{start, len(ax)}
	}
	ntot := len(ax)

	// --- 3. Local linking over locals+ghosts with the exact serial pair
	// kernel, then per-fragment labels initialized to the fragment's
	// minimum global ID.
	parent := make([]int32, ntot)
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(int) int
	find = func(i int) int {
		for int(parent[i]) != i {
			parent[i] = parent[parent[i]]
			i = int(parent[i])
		}
		return i
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = int32(rb)
		}
	}
	analysis.LinkPairs(ax, ay, az, l, ll, union)

	lab := make([]int64, ntot)
	for i := range lab {
		lab[i] = math.MaxInt64
	}
	for i := 0; i < ntot; i++ {
		r := find(i)
		if aid[i] < lab[r] {
			lab[r] = aid[i]
		}
	}

	// --- 4. Stitch: every ghost's fragment label travels to the ghost's
	// home rank, the home rank merges it into its own fragment (labels only
	// ever decrease, toward the group's global minimum ID), and the
	// post-merge label travels back. Iterate to a global fixed point: each
	// round, a fragment's label becomes the minimum over itself and its
	// neighbours in the fragment graph, so after at most diameter rounds
	// every fragment of a group carries the group minimum (see DESIGN.md).
	idx := make(map[int64]int, nloc)
	for i := 0; i < nloc; i++ {
		idx[id[i]] = i
	}
	for {
		changed := 0
		queries := make([][]labelMsg, p)
		for r := 0; r < p; r++ {
			lo, hi := ghostFrom[r][0], ghostFrom[r][1]
			for g := lo; g < hi; g++ {
				queries[r] = append(queries[r], labelMsg{ID: aid[g], Label: lab[find(g)]})
			}
		}
		recvq := mpi.Alltoall(c, queries)
		replies := make([][]labelMsg, p)
		for r := 0; r < p; r++ {
			for _, q := range recvq[r] {
				li, ok := idx[q.ID]
				if !ok {
					// Cannot happen — a ghost is always a local of its home
					// rank — but keep the reply stream aligned regardless.
					replies[r] = append(replies[r], q)
					continue
				}
				root := find(li)
				if q.Label < lab[root] {
					lab[root] = q.Label
					changed = 1
				}
				replies[r] = append(replies[r], labelMsg{ID: q.ID, Label: lab[root]})
			}
		}
		recvr := mpi.Alltoall(c, replies)
		for r := 0; r < p; r++ {
			lo := ghostFrom[r][0]
			for i, rep := range recvr[r] {
				root := find(lo + i)
				if rep.Label < lab[root] {
					lab[root] = rep.Label
					changed = 1
				}
			}
		}
		if mpi.Allreduce(c, []int{changed}, mpi.Max[int])[0] == 0 {
			break
		}
	}

	// --- 5. Membership: each rank ships every LOCAL particle (exactly once
	// globally) to its group's owner rank — label mod p — which therefore
	// sees the group's complete membership and can apply the ≥ MinSize cut
	// and compute the halo exactly as the serial path does.
	sendm := make([][]member, p)
	for i := 0; i < nloc; i++ {
		lb := lab[find(i)]
		dst := int(lb % int64(p))
		sendm[dst] = append(sendm[dst], member{
			X: x[i], Y: y[i], Z: z[i], M: m[i], ID: id[i], Label: lb,
		})
	}
	recvm := mpi.Alltoall(c, sendm)

	groups := make(map[int64][]member)
	for r := 0; r < p; r++ {
		for _, mb := range recvm[r] {
			groups[mb.Label] = append(groups[mb.Label], mb)
		}
	}
	labels := make([]int64, 0, len(groups))
	for lb := range groups {
		labels = append(labels, lb)
	}
	sort.Slice(labels, func(i, j int) bool { return labels[i] < labels[j] })

	var halos []analysis.Halo
	for _, lb := range labels {
		g := groups[lb]
		if len(g) < cfg.MinSize {
			continue
		}
		// Ascending global ID is the serial path's ascending-index member
		// order — the accumulation order that makes the halo statistics
		// bitwise identical.
		sort.Slice(g, func(i, j int) bool { return g[i].ID < g[j].ID })
		gx := make([]float64, len(g))
		gy := make([]float64, len(g))
		gz := make([]float64, len(g))
		gm := make([]float64, len(g))
		order := make([]int, len(g))
		for i, mb := range g {
			gx[i], gy[i], gz[i], gm[i] = mb.X, mb.Y, mb.Z, mb.M
			order[i] = i
		}
		halos = append(halos, analysis.GroupHalo(gx, gy, gz, gm, l, order))
	}

	// --- 6. Canonical catalog on rank 0.
	gathered := mpi.Gather(c, 0, halos)
	if c.Rank() != 0 {
		return nil
	}
	var all []analysis.Halo
	for _, hs := range gathered {
		all = append(all, hs...)
	}
	analysis.SortHalos(all)
	return all
}

// pointAxisDist is the 1-D distance from point v to the interval [lo, hi]
// under periodicity l: the minimum over the three relevant images.
func pointAxisDist(v, lo, hi, l float64) float64 {
	best := math.Inf(1)
	for k := -1; k <= 1; k++ {
		w := v + float64(k)*l
		d := 0.0
		if w < lo {
			d = lo - w
		} else if w > hi {
			d = w - hi
		}
		if d < best {
			best = d
		}
	}
	return best
}
