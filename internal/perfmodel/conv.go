package perfmodel

import "math"

// ConvSpec describes a parallel PM mesh-conversion problem at any scale, for
// the analytic communication model (the same structural quantities the mpi
// traffic ledger records for executed runs, computed in closed form so paper-
// scale configurations can be evaluated).
type ConvSpec struct {
	P      int    // processes
	Grid   [3]int // domain divisions per axis (product = P)
	N      int    // PM mesh per dimension
	NFFT   int    // FFT (slab) processes
	Groups int    // relay groups; 1 ⇒ naive global conversion
	// Interleaved selects round-robin group membership (each group samples
	// the whole volume, spreading the incast); false means contiguous rank
	// blocks.
	Interleaved bool
}

// ghost is the potential ghost width of the local window (pmpar.ghostPot).
const ghost = 4

// window returns the local-window extent in cells along each axis.
func (s ConvSpec) window() (wx, wy, wz float64) {
	wx = float64(s.N)/float64(s.Grid[0]) + 2*ghost
	wy = float64(s.N)/float64(s.Grid[1]) + 2*ghost
	wz = float64(s.N)/float64(s.Grid[2]) + 2*ghost
	return
}

// ConvTimes is the modeled wall-clock of the two mesh conversions.
type ConvTimes struct {
	DensityToSlab  float64 // local density → 1-D slabs (incl. relay Reduce)
	SlabToLocal    float64 // 1-D potential slabs → local windows (incl. Bcast)
	SendersPerSlab float64 // distinct senders into one (partial-)slab holder
}

// Total returns the summed conversion time.
func (c ConvTimes) Total() float64 { return c.DensityToSlab + c.SlabToLocal }

// MeshConversion models both conversion directions for the given spec.
func (m Machine) MeshConversion(s ConvSpec) ConvTimes {
	wx, wy, wz := s.window()
	slabPlanes := float64(s.N) / float64(s.NFFT)
	ranksPerXSlab := float64(s.P) / float64(s.Grid[0])
	// Expected number of domain x-slabs intersecting one holder's planes.
	overlapSlabs := (slabPlanes + wx) / (float64(s.N) / float64(s.Grid[0]))
	sendersNaive := math.Min(overlapSlabs*ranksPerXSlab, float64(s.P))

	g := float64(s.Groups)
	commSize := float64(s.P) / g
	senders := sendersNaive
	if s.Groups > 1 {
		if s.Interleaved {
			senders = math.Max(1, sendersNaive/g)
		} else {
			// Contiguous groups concentrate the overlapping x-slabs into few
			// groups; the busiest partial holder still sees almost the naive
			// sender count, capped by the group size.
			senders = math.Min(sendersNaive, commSize)
		}
	}

	// Bytes received per (partial-)slab holder: every rank in the conversion
	// communicator ships its whole window, split over NFFT holders.
	windowBytes := wx * wy * wz * 8
	bytesPerHolder := commSize * windowBytes / float64(s.NFFT)
	slabBytes := float64(s.N) * float64(s.N) * float64(s.N) * 8 / float64(s.NFFT)

	incast := func(n float64) float64 {
		if n > float64(m.IncastThreshold) {
			return n * m.IncastLatency
		}
		return n * m.MsgLatency
	}
	a2a := commSize * commSize * m.A2APairCost

	var out ConvTimes
	out.SendersPerSlab = senders
	// Density direction: incast-dominated Alltoallv (+ cross-group Reduce).
	out.DensityToSlab = a2a + incast(senders) + bytesPerHolder/m.LinkBandwidth
	if s.Groups > 1 {
		rounds := math.Ceil(math.Log2(g))
		out.DensityToSlab += rounds * (m.MsgLatency + slabBytes/m.LinkBandwidth)
	}
	// Potential direction: the same Alltoallv pattern reversed; each rank
	// receives only ~wx/slabPlanes messages, so no receive incast — the cost
	// is the algorithmic term plus holder send streams (+ cross-group Bcast).
	out.SlabToLocal = a2a + senders*m.MsgLatency + bytesPerHolder/m.LinkBandwidth
	if s.Groups > 1 {
		rounds := math.Ceil(math.Log2(g))
		out.SlabToLocal += rounds * (m.MsgLatency + slabBytes/m.LinkBandwidth)
	}
	return out
}
