// Package perfmodel models K computer — the SPARC64 VIIIfx nodes and the
// Tofu interconnect — so that the paper's performance numbers (Table I, the
// kernel Gflops of §II-A, and the relay-mesh communication timings of §II-B)
// can be regenerated from the algorithm's operation and message counts.
//
// Two kinds of rows appear in Table I:
//
//   - Rows derivable from first principles: the force calculation follows
//     from the interaction count and the kernel's instruction mix (17 FMA +
//     17 non-FMA per two interactions ⇒ a 12 Gflops/core ceiling of the 16
//     Gflops peak, reached to 97%), and the FFT from the flop count of a
//     4096³ transform over 4096 slab processes.
//
//   - Rows with machine-dependent constants (tree construction, traversal,
//     sampling, exchanges): these are calibrated against the published
//     24576-node column (and, for rows whose cost has both an N/p and a p
//     term, against both columns); the model then *predicts* the other
//     column, which tests the scaling shape.
//
// All constants and their provenance are documented on the fields below and
// recorded in EXPERIMENTS.md.
package perfmodel

import (
	"math"

	"greem/internal/mpi"
	"greem/internal/ppkern"
)

// Machine describes the modeled hardware.
type Machine struct {
	CoresPerNode int     // 8 (SPARC64 VIIIfx)
	ClockHz      float64 // 2.0 GHz
	FMAPerCycle  float64 // 4 FMA units per core

	// KernelCeiling is the fraction of peak the PP inner loop can reach:
	// 17 FMA + 17 non-FMA slots issue in 17 cycles on 2 pipelines, giving
	// 102 flops / 17 cycles = 6 flops/cycle of the 8 peak ⇒ 0.75.
	KernelCeiling float64
	// KernelEff is the measured fraction of the ceiling the tuned loop
	// reaches (11.65 of 12 Gflops/core ⇒ 0.97, §II-A).
	KernelEff float64

	// FFTNodeFlops is the effective per-process FFT rate, calibrated from
	// the paper's own in-text figure: a 4096³ transform takes ~4.1 s on
	// 4096 processes ⇒ 5·N³·log₂(N³)/ (4096·4.1 s) ≈ 0.74 Gflops.
	FFTNodeFlops float64

	// Interconnect (Tofu-like) parameters.
	LinkBandwidth float64 // bytes/s per node injection (Tofu: ~5 GB/s)
	MsgLatency    float64 // per-message latency, uncongested

	// IncastLatency is the effective per-message cost at a receiver inside a
	// large many-to-one mesh conversion (rendezvous stalls, receive-side
	// processing, torus hot links), applied when a destination has more than
	// IncastThreshold distinct senders in one Alltoallv. Calibrated from the
	// paper's naive density-conversion time (~10 s with ~800 senders per
	// FFT process at 12288 nodes, §II-B); see EXPERIMENTS.md.
	IncastLatency   float64
	IncastThreshold int

	// A2APairCost models the super-linear software cost of a global
	// Alltoallv: time ∝ (communicator size)². Calibrated so that a
	// 12288-rank Alltoallv costs ~3 s (the paper's naive potential
	// conversion, which moves little data per rank but still takes seconds)
	// — the term the relay mesh attacks by shrinking the communicator.
	A2APairCost float64
}

// KComputer returns the calibrated K computer model. Calibration targets are
// the paper's in-text §II-B timings: naive conversions ~10 s and ~3 s, relay
// (3 groups) ~3 s and ~0.3 s, FFT itself ~4 s, all for a 4096³ mesh on
// 12288 nodes with 4096 FFT processes.
func KComputer() Machine {
	return Machine{
		CoresPerNode:  8,
		ClockHz:       2.0e9,
		FMAPerCycle:   4,
		KernelCeiling: 0.75,
		KernelEff:     11.65 / 12.0,
		FFTNodeFlops:  0.74e9,
		LinkBandwidth: 5.0e9,
		MsgLatency:    5e-6,

		IncastLatency:   8e-3,
		IncastThreshold: 64,
		A2APairCost:     2.0e-8,
	}
}

// PeakCoreFlops returns the per-core peak (16 Gflops on K).
func (m Machine) PeakCoreFlops() float64 { return m.ClockHz * m.FMAPerCycle * 2 }

// PeakNodeFlops returns the per-node peak (128 Gflops on K).
func (m Machine) PeakNodeFlops() float64 { return m.PeakCoreFlops() * float64(m.CoresPerNode) }

// KernelCoreFlops returns the effective per-core rate of the PP force loop
// (11.65 Gflops on K: ceiling × measured efficiency).
func (m Machine) KernelCoreFlops() float64 {
	return m.PeakCoreFlops() * m.KernelCeiling * m.KernelEff
}

// ForceTime returns the modeled wall-clock of the PP force evaluation:
// interactions · 51 flops on p nodes running the kernel flat out.
func (m Machine) ForceTime(interactions float64, nodes int) float64 {
	flops := interactions * float64(ppkern.FlopsPerInteraction)
	return flops / (float64(nodes) * float64(m.CoresPerNode) * m.KernelCoreFlops())
}

// FFTTime returns the modeled wall-clock of the Table I "FFT" row — the
// n³ transform work over nfft slab processes, as timed by the paper
// ("the calculation time of FFT itself was ~4 seconds" for 4096³ on 4096
// processes). The 5·n³·log₂(n³) flop count is the standard complex-FFT
// figure; the effective rate (FFTNodeFlops) is memory/transpose bound, far
// below the compute peak.
func (m Machine) FFTTime(n, nfft int) float64 {
	n3 := float64(n) * float64(n) * float64(n)
	flops := 5 * n3 * math.Log2(n3)
	return flops / (float64(nfft) * m.FFTNodeFlops)
}

// Pflops converts interactions per step and seconds per step into Pflops,
// using the paper's 51-operation count.
func Pflops(interactions, seconds float64) float64 {
	return interactions * float64(ppkern.FlopsPerInteraction) / seconds / 1e15
}

// Efficiency returns achieved/peak for a run on the given node count.
func (m Machine) Efficiency(interactions, seconds float64, nodes int) float64 {
	return Pflops(interactions, seconds) * 1e15 / (float64(nodes) * m.PeakNodeFlops())
}

// OpTime is the modeled duration of one recorded communication op.
type OpTime struct {
	Name    string
	Label   string
	Seconds float64
}

// ReplayOps models a recorded traffic ledger: each op costs the maximum over
// destinations of the serialized incoming stream (per-message latency plus
// payload over the injection bandwidth), plus the per-member algorithmic
// term for all-to-all style ops. Ops are assumed sequential (they are, per
// rank, in the PM cycle).
func (m Machine) ReplayOps(ops []mpi.Op) (float64, []OpTime) {
	var total float64
	out := make([]OpTime, 0, len(ops))
	for _, op := range ops {
		recvCost := map[int]float64{}
		sendCost := map[int]float64{}
		nsenders := map[int]int{}
		for _, msg := range op.Msgs {
			nsenders[msg.Dst]++
		}
		for _, msg := range op.Msgs {
			lat := m.MsgLatency
			if op.Name == "Alltoallv" && nsenders[msg.Dst] > m.IncastThreshold {
				lat = m.IncastLatency
			}
			recvCost[msg.Dst] += lat + float64(msg.Bytes)/m.LinkBandwidth
			sendCost[msg.Src] += m.MsgLatency + float64(msg.Bytes)/m.LinkBandwidth
		}
		var worst float64
		for _, v := range recvCost {
			worst = math.Max(worst, v)
		}
		for _, v := range sendCost {
			worst = math.Max(worst, v)
		}
		if op.Name == "Alltoallv" || op.Name == "Allgather" {
			worst += float64(op.CommSize) * float64(op.CommSize) * m.A2APairCost
		}
		total += worst
		out = append(out, OpTime{Name: op.Name, Label: op.Label, Seconds: worst})
	}
	return total, out
}
