package perfmodel

import (
	"math"
	"testing"

	"greem/internal/mpi"
)

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if math.Abs(got-want) > relTol*math.Abs(want) {
		t.Errorf("%s = %v, want %v ± %.0f%%", name, got, want, relTol*100)
	}
}

func TestMachineHeadlineNumbers(t *testing.T) {
	m := KComputer()
	within(t, "peak core", m.PeakCoreFlops(), 16e9, 1e-12)
	within(t, "peak node", m.PeakNodeFlops(), 128e9, 1e-12)
	// Full system peak: 82944 × 128 Gflops = 10.6 Pflops.
	within(t, "system peak", 82944*m.PeakNodeFlops(), 10.6e15, 0.02)
	// Kernel: 12 Gflops ceiling reached to 97% ⇒ 11.65 Gflops/core.
	within(t, "kernel ceiling", m.PeakCoreFlops()*m.KernelCeiling, 12e9, 1e-12)
	within(t, "kernel rate", m.KernelCoreFlops(), 11.65e9, 0.001)
}

func TestForceTimeMatchesPaper(t *testing.T) {
	m := KComputer()
	// Paper: 5.35e15 interactions/step, force calculation 122.18 s on 24576
	// nodes and 35.72 s on 82944 (5.30e15). The kernel-rate model lands
	// within 3% of both.
	within(t, "force 24576", m.ForceTime(5.35e15, 24576), 122.18, 0.04)
	within(t, "force 82944", m.ForceTime(5.30e15, 82944), 35.72, 0.04)
}

func TestFFTTimeMatchesPaper(t *testing.T) {
	m := KComputer()
	// In-text: 4096³ FFT on 4096 processes took ~4 s; Table I: 4.06/4.17 s.
	within(t, "FFT 4096³", m.FFTTime(4096, 4096), 4.1, 0.1)
	// FFT time is independent of the total node count — only NFFT matters.
	if m.FFTTime(4096, 4096) != m.FFTTime(4096, 4096) {
		t.Error("FFT time not deterministic")
	}
}

func TestPflopsNumbers(t *testing.T) {
	// Table I bottom: 5.35e15 interactions / 173.84 s = 1.53 Pflops (48.7%);
	// 5.30e15 / 60.20 s = 4.45 Pflops (42.0%).
	m := KComputer()
	within(t, "Pflops 24576", Pflops(5.35e15, 173.84), 1.57, 0.03)
	within(t, "Pflops 82944", Pflops(5.30e15, 60.20), 4.49, 0.03)
	within(t, "efficiency 24576", m.Efficiency(5.35e15, 173.84, 24576), 0.499, 0.03)
	within(t, "efficiency 82944", m.Efficiency(5.30e15, 60.20, 82944), 0.423, 0.03)
}

func TestMeshConversionReproducesRelayTimings(t *testing.T) {
	// §II-B in-text experiment: 4096³ mesh, 12288 nodes, 4096 FFT processes.
	// Naive: ~10 s (density→slab) and ~3 s (slab→local).
	// Relay, 3 groups: ~3 s and ~0.3 s. Speedup "more than a factor of 4".
	m := KComputer()
	spec := ConvSpec{P: 12288, Grid: [3]int{16, 32, 24}, N: 4096, NFFT: 4096, Groups: 1}
	naive := m.MeshConversion(spec)
	spec.Groups = 3
	spec.Interleaved = true
	relay := m.MeshConversion(spec)

	t.Logf("naive: %.2f s + %.2f s (senders %.0f)", naive.DensityToSlab, naive.SlabToLocal, naive.SendersPerSlab)
	t.Logf("relay: %.2f s + %.2f s (senders %.0f)", relay.DensityToSlab, relay.SlabToLocal, relay.SendersPerSlab)

	within(t, "naive density", naive.DensityToSlab, 10, 0.35)
	within(t, "naive potential", naive.SlabToLocal, 3, 0.35)
	within(t, "relay density", relay.DensityToSlab, 3, 0.5)
	within(t, "relay potential", relay.SlabToLocal, 0.3, 0.6)
	speedup := naive.Total() / relay.Total()
	if speedup < 4 {
		t.Errorf("relay speedup %.2f, paper reports more than 4", speedup)
	}
	// The sender count per FFT process at the paper's full-system scale is
	// "~4000" (§II-B); check the same formula at 82944 nodes.
	full := m.MeshConversion(ConvSpec{P: 82944, Grid: [3]int{32, 54, 48}, N: 4096, NFFT: 4096, Groups: 1})
	if full.SendersPerSlab < 2500 || full.SendersPerSlab > 6000 {
		t.Errorf("senders per FFT process at 82944 nodes = %.0f, paper says ~4000", full.SendersPerSlab)
	}
}

func TestContiguousGroupingWorseThanInterleaved(t *testing.T) {
	m := KComputer()
	spec := ConvSpec{P: 12288, Grid: [3]int{16, 32, 24}, N: 4096, NFFT: 4096, Groups: 3, Interleaved: true}
	inter := m.MeshConversion(spec)
	spec.Interleaved = false
	cont := m.MeshConversion(spec)
	if cont.DensityToSlab < inter.DensityToSlab {
		t.Errorf("contiguous grouping (%.2f) should not beat interleaved (%.2f)",
			cont.DensityToSlab, inter.DensityToSlab)
	}
}

func TestModelTableIMatchesPaper(t *testing.T) {
	m := KComputer()
	r := KTableIRates()
	n := 1.073741824e12
	cases := []struct {
		nodes  int
		inter  float64
		grid   [3]int
		groups int
	}{
		{24576, 5.35e15, [3]int{32, 24, 32}, 6},
		{82944, 5.30e15, [3]int{32, 54, 48}, 18},
	}
	for _, c := range cases {
		model := ModelTableI(m, r, c.nodes, n, c.inter, 4096, c.grid, 4096, c.groups)
		paper, ok := PaperTableI(c.nodes)
		if !ok {
			t.Fatal("missing paper column")
		}
		within(t, "force", model.PPForce, paper.PPForce, 0.04)
		within(t, "FFT", model.PMFFT, paper.PMFFT, 0.10)
		within(t, "density", model.PMDensity, paper.PMDensity, 0.10)
		within(t, "interp", model.PMInterp, paper.PMInterp, 0.10)
		within(t, "local tree", model.PPLocalTree, paper.PPLocalTree, 0.10)
		within(t, "traverse", model.PPTraverse, paper.PPTraverse, 0.12)
		within(t, "tree construction", model.PPTreeConstr, paper.PPTreeConstr, 0.05)
		within(t, "pp comm", model.PPComm, paper.PPComm, 0.05)
		within(t, "sampling", model.DDSampling, paper.DDSampling, 0.05)
		within(t, "exchange", model.DDExchange, paper.DDExchange, 0.05)
		within(t, "pos update", model.DDPosUpdate, paper.DDPosUpdate, 0.12)
		// PM communication: modeled from the interconnect, not calibrated
		// per column — allow a factor-band.
		if model.PMComm < paper.PMComm/3 || model.PMComm > paper.PMComm*3 {
			t.Errorf("nodes=%d: PM comm model %.2f vs paper %.2f", c.nodes, model.PMComm, paper.PMComm)
		}
		// Step totals and the headline Pflops figures.
		within(t, "total", model.Total(), paper.Total(), 0.08)
		t.Logf("nodes=%d: model total %.1f s (paper %.2f), %.2f Pflops (paper %.2f), eff %.1f%%",
			c.nodes, model.Total(), paper.Total(), model.Pflops(), paper.Pflops(), 100*model.Efficiency(m))
	}
	// The headline claim: 1.53 Pflops at 24576 nodes and 4.45 at 82944.
	m24 := ModelTableI(m, r, 24576, n, 5.35e15, 4096, [3]int{32, 24, 32}, 4096, 6)
	m82 := ModelTableI(m, r, 82944, n, 5.30e15, 4096, [3]int{32, 54, 48}, 4096, 18)
	within(t, "headline Pflops 24576", m24.Pflops(), 1.53, 0.10)
	within(t, "headline Pflops 82944", m82.Pflops(), 4.45, 0.10)
	within(t, "headline efficiency 24576", m24.Efficiency(m), 0.487, 0.10)
	within(t, "headline efficiency 82944", m82.Efficiency(m), 0.42, 0.10)
}

func TestPaperTableIInternallyConsistent(t *testing.T) {
	// The published rows must sum to the published totals and Pflops.
	p24, _ := PaperTableI(24576)
	within(t, "total 24576", p24.Total(), 173.84, 0.005)
	within(t, "Pflops 24576", p24.Pflops(), 1.53, 0.03)
	p82, _ := PaperTableI(82944)
	within(t, "total 82944", p82.Total(), 60.20, 0.005)
	within(t, "Pflops 82944", p82.Pflops(), 4.45, 0.03)
	if _, ok := PaperTableI(1234); ok {
		t.Error("unknown node count accepted")
	}
}

func TestReplayOpsIncastSensitivity(t *testing.T) {
	m := KComputer()
	// 100 senders → 1 receiver trips the incast penalty; 4 senders don't.
	big := mpi.Op{Name: "Alltoallv", CommSize: 128}
	for s := 1; s <= 100; s++ {
		big.Msgs = append(big.Msgs, mpi.Message{Src: s, Dst: 0, Bytes: 1000})
	}
	small := mpi.Op{Name: "Alltoallv", CommSize: 128}
	for s := 1; s <= 4; s++ {
		small.Msgs = append(small.Msgs, mpi.Message{Src: s, Dst: 0, Bytes: 1000})
	}
	tb, _ := m.ReplayOps([]mpi.Op{big})
	ts, _ := m.ReplayOps([]mpi.Op{small})
	if tb < 100*m.IncastLatency {
		t.Errorf("incast not penalized: %v", tb)
	}
	if ts > float64(128*128)*m.A2APairCost+4*m.MsgLatency+1e-5+4000/m.LinkBandwidth {
		t.Errorf("small op overcharged: %v", ts)
	}
	// Replay returns per-op details.
	_, per := m.ReplayOps([]mpi.Op{big, small})
	if len(per) != 2 || per[0].Seconds <= per[1].Seconds {
		t.Errorf("per-op times wrong: %+v", per)
	}
}

func TestPencilUpgradeProjection(t *testing.T) {
	// §IV: "We believe the combination of our novel relay mesh method and a
	// 3-D parallel FFT library will significantly improve the performance…
	// We aim to achieve peak performance higher than 5 Pflops." With the FFT
	// spread over all 82944 nodes instead of 4096, the 4.2 s FFT floor
	// drops to ~0.2 s and the projected rate approaches the 5 Pflops goal.
	m := KComputer()
	r := KTableIRates()
	base := ModelTableI(m, r, 82944, 1.073741824e12, 5.30e15, 4096, [3]int{32, 54, 48}, 4096, 18)
	up := ProjectPencilUpgrade(m, base, 4096)
	if up.PMFFT >= base.PMFFT/10 {
		t.Errorf("pencil FFT %v should be ≫10× faster than slab %v", up.PMFFT, base.PMFFT)
	}
	if up.Total() >= base.Total() {
		t.Errorf("projected step %v not faster than base %v", up.Total(), base.Total())
	}
	t.Logf("82944 nodes: slab FFT %.2f s → pencil %.2f s; %.2f → %.2f Pflops (goal: >5)",
		base.PMFFT, up.PMFFT, base.Pflops(), up.Pflops())
	if up.Pflops() < 4.6 {
		t.Errorf("projection %.2f Pflops below expected band", up.Pflops())
	}
	// The cap: no more than n² processes can hold pencils.
	if m.FFTTimePencil(4, 1000000) != m.FFTTime(4, 16) {
		t.Error("pencil process cap not applied")
	}
}
