package perfmodel

import "math"

// CPURates are the per-phase cost coefficients of the Table I model. The
// force-calculation and FFT rows come from first principles (see Machine);
// the rows below are calibrated against the published Table I itself —
// single-point fits use only the 24576-node column (so the 82944-node value
// is a prediction), two-point fits use both columns (so what is tested is
// the functional form at other scales). EXPERIMENTS.md records which is
// which.
type CPURates struct {
	DensityAssign float64 // s per particle              (single-point)
	Interp        float64 // s per particle              (single-point)
	MeshAccelBase float64 // s, fixed                    (two-point: b≈0)
	LocalTree     float64 // s per particle              (single-point)
	Traverse      float64 // s per particle              (single-point)
	PosUpdate     float64 // s per particle              (single-point)
	TreeConstrA   float64 // s per particle              (two-point)
	TreeConstrB   float64 // s, fixed
	PPCommA       float64 // s per (N/p)^(2/3)           (two-point, surface)
	PPCommB       float64 // s, fixed
	SamplingA     float64 // s per particle              (two-point)
	SamplingB     float64 // s per process (root gather grows with p!)
	ExchangeA     float64 // s per (N/p)^(2/3)           (two-point, surface)
	ExchangeB     float64 // s, fixed
	// Other covers the gap between the published per-phase rows and the
	// published totals (~4% of the step: barriers, diagnostics, I/O).
	OtherA float64 // s per particle                     (two-point)
	OtherB float64 // s, fixed
}

// KTableIRates returns the coefficients calibrated from Table I
// (N = 10240³; 24576-node column: N/p = 43,690,666; 82944: 12,945,382).
func KTableIRates() CPURates {
	return CPURates{
		DensityAssign: 1.44 / 43690666,
		Interp:        1.64 / 43690666,
		MeshAccelBase: 0.13,
		LocalTree:     4.00 / 43690666,
		Traverse:      17.17 / 43690666,
		PosUpdate:     0.28 / 43690666,
		TreeConstrA:   7.4808e-8,
		TreeConstrB:   0.5516,
		PPCommA:       2.4328e-5,
		PPCommB:       0.6793,
		SamplingA:     4.5517e-8,
		SamplingB:     3.8708e-5,
		ExchangeA:     2.2591e-5,
		ExchangeB:     0.2551,
		OtherA:        1.4474e-7,
		OtherB:        1.0862,
	}
}

// TableIColumn is one column of Table I: seconds per step for every phase.
// One step = one PM cycle + two PP cycles + two domain-decomposition cycles;
// the PP and DD rows are totals over both cycles, as in the paper.
type TableIColumn struct {
	Nodes        int
	NParticles   float64
	Interactions float64 // pairwise interactions per step (both PP cycles)

	PMDensity   float64
	PMComm      float64
	PMFFT       float64
	PMMeshAccel float64
	PMInterp    float64

	PPLocalTree  float64
	PPComm       float64
	PPTreeConstr float64
	PPTraverse   float64
	PPForce      float64

	DDPosUpdate float64
	DDSampling  float64
	DDExchange  float64

	// Other is the remainder between the published per-phase rows and the
	// published step total (untimed barriers, diagnostics, bookkeeping).
	Other float64
}

// PMTotal returns the long-range part's seconds per step.
func (c TableIColumn) PMTotal() float64 {
	return c.PMDensity + c.PMComm + c.PMFFT + c.PMMeshAccel + c.PMInterp
}

// PPTotal returns the short-range part's seconds per step.
func (c TableIColumn) PPTotal() float64 {
	return c.PPLocalTree + c.PPComm + c.PPTreeConstr + c.PPTraverse + c.PPForce
}

// DDTotal returns the domain decomposition's seconds per step.
func (c TableIColumn) DDTotal() float64 {
	return c.DDPosUpdate + c.DDSampling + c.DDExchange
}

// Total returns seconds per step.
func (c TableIColumn) Total() float64 { return c.PMTotal() + c.PPTotal() + c.DDTotal() + c.Other }

// Pflops returns the measured-performance figure the paper reports:
// interactions × 51 ops over the total step time.
func (c TableIColumn) Pflops() float64 { return Pflops(c.Interactions, c.Total()) }

// Efficiency returns achieved/peak on the machine.
func (c TableIColumn) Efficiency(m Machine) float64 {
	return m.Efficiency(c.Interactions, c.Total(), c.Nodes)
}

// ModelTableI produces one Table I column from the machine model: nodes and
// per-step workload (particles, interactions), the domain grid, and the PM
// configuration (mesh, FFT processes, relay groups).
func ModelTableI(m Machine, r CPURates, nodes int, nParticles, interactions float64,
	nmesh int, grid [3]int, nfft, groups int) TableIColumn {

	nop := nParticles / float64(nodes)
	surf := math.Pow(nop, 2.0/3.0)
	conv := m.MeshConversion(ConvSpec{
		P: nodes, Grid: grid, N: nmesh, NFFT: nfft, Groups: groups, Interleaved: true,
	})
	return TableIColumn{
		Nodes:        nodes,
		NParticles:   nParticles,
		Interactions: interactions,

		PMDensity:   r.DensityAssign * nop,
		PMComm:      conv.Total(),
		PMFFT:       m.FFTTime(nmesh, nfft),
		PMMeshAccel: r.MeshAccelBase,
		PMInterp:    r.Interp * nop,

		PPLocalTree:  r.LocalTree * nop,
		PPComm:       r.PPCommA*surf + r.PPCommB,
		PPTreeConstr: r.TreeConstrA*nop + r.TreeConstrB,
		PPTraverse:   r.Traverse * nop,
		PPForce:      m.ForceTime(interactions, nodes),

		DDPosUpdate: r.PosUpdate * nop,
		DDSampling:  r.SamplingA*nop + r.SamplingB*float64(nodes),
		DDExchange:  r.ExchangeA*surf + r.ExchangeB,

		Other: r.OtherA*nop + r.OtherB,
	}
}

// PaperTableI returns the published Table I columns verbatim, for
// side-by-side comparison in EXPERIMENTS.md and the benchmarks.
func PaperTableI(nodes int) (TableIColumn, bool) {
	switch nodes {
	case 24576:
		return TableIColumn{
			Nodes: 24576, NParticles: 1.073741824e12, Interactions: 5.35e15,
			PMDensity: 1.44, PMComm: 2.01, PMFFT: 4.06, PMMeshAccel: 0.13, PMInterp: 1.64,
			PPLocalTree: 4.00, PPComm: 3.70, PPTreeConstr: 3.82, PPTraverse: 17.17, PPForce: 122.18,
			DDPosUpdate: 0.28, DDSampling: 2.94, DDExchange: 3.06,
			// Published total is 173.84 s; the per-phase rows sum to 166.43.
			Other: 173.84 - 166.43,
		}, true
	case 82944:
		return TableIColumn{
			Nodes: 82944, NParticles: 1.073741824e12, Interactions: 5.30e15,
			PMDensity: 0.44, PMComm: 1.50, PMFFT: 4.17, PMMeshAccel: 0.13, PMInterp: 0.50,
			PPLocalTree: 1.26, PPComm: 2.02, PPTreeConstr: 1.52, PPTraverse: 4.60, PPForce: 35.72,
			DDPosUpdate: 0.08, DDSampling: 3.80, DDExchange: 1.50,
			// Published total is 60.20 s; the per-phase rows sum to 57.24.
			Other: 60.20 - 57.24,
		}, true
	}
	return TableIColumn{}, false
}

// FFTTimePencil returns the modeled FFT wall-clock when the 1-D slab
// decomposition is replaced by a 2-D pencil decomposition (the paper's §IV
// future work): up to n² processes can participate instead of n, so on a
// full system every node transforms.
func (m Machine) FFTTimePencil(n, procs int) float64 {
	maxProcs := n * n
	if procs > maxProcs {
		procs = maxProcs
	}
	return m.FFTTime(n, procs)
}

// ProjectPencilUpgrade recomputes a Table I column with the slab FFT
// replaced by a pencil FFT over all nodes — the paper's stated path to
// "peak performance higher than 5 Pflops on the full system" (§IV). Only
// the FFT row changes; the conversion communication is kept (the relay mesh
// remains applicable, as the paper notes).
func ProjectPencilUpgrade(m Machine, c TableIColumn, nmesh int) TableIColumn {
	out := c
	out.PMFFT = m.FFTTimePencil(nmesh, c.Nodes)
	return out
}
