package serve

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"greem/internal/store"
	"greem/internal/telemetry"
)

func validSpec() JobSpec {
	return JobSpec{NP: 4, Ranks: 2, Steps: 3, Seed: 7}
}

// waitJob polls the index until the job reaches a terminal state.
func waitJob(t *testing.T, idx Index, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		job, err := idx.GetJob(id)
		if err != nil {
			t.Fatalf("GetJob: %v", err)
		}
		if job.State.Terminal() {
			return job
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return JobInfo{}
}

func TestManagerLifecycle(t *testing.T) {
	idx := NewMem()
	runner := func(ctx context.Context, id string, spec JobSpec, st store.Store, update func(RunUpdate)) error {
		for step := 1; step <= spec.Steps; step++ {
			update(RunUpdate{
				Step: step, TotalSteps: spec.Steps, Time: float64(step),
				Checkpointed: step == 2,
				Telemetry:    []telemetry.MetricSnapshot{{Name: "steps_total", Value: float64(step)}},
			})
		}
		ref, err := st.PutNamed(snapshotName(id), []byte("snapshot-bytes"))
		if err != nil {
			return err
		}
		update(RunUpdate{Step: spec.Steps, TotalSteps: spec.Steps, SnapshotRef: ref})
		return nil
	}
	m, err := NewManager(ManagerConfig{Store: store.NewMem(), Index: idx, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	info, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateQueued || info.ID == "" {
		t.Fatalf("submit returned %+v", info)
	}

	job := waitJob(t, idx, info.ID)
	if job.State != StateDone {
		t.Fatalf("state %s (error %q), want done", job.State, job.Error)
	}
	if job.Step != 3 || job.TotalSteps != 3 {
		t.Fatalf("progress %d/%d, want 3/3", job.Step, job.TotalSteps)
	}
	if job.LastCheckpointStep != 2 {
		t.Fatalf("last checkpoint step %d, want 2", job.LastCheckpointStep)
	}
	if job.SnapshotRef == "" {
		t.Fatal("no snapshot ref recorded")
	}
	if len(job.Telemetry) == 0 || job.Telemetry[0].Name != "steps_total" {
		t.Fatalf("telemetry not recorded: %+v", job.Telemetry)
	}
	if job.StartedAt.IsZero() || job.FinishedAt.IsZero() {
		t.Fatal("timestamps not recorded")
	}
}

func TestManagerFailureAndRestartCounting(t *testing.T) {
	idx := NewMem()
	runner := func(ctx context.Context, id string, spec JobSpec, st store.Store, update func(RunUpdate)) error {
		update(RunUpdate{Restart: true})
		update(RunUpdate{Restart: true})
		return errors.New("world exploded")
	}
	m, err := NewManager(ManagerConfig{Store: store.NewMem(), Index: idx, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	info, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	job := waitJob(t, idx, info.ID)
	if job.State != StateFailed {
		t.Fatalf("state %s, want failed", job.State)
	}
	if !strings.Contains(job.Error, "world exploded") {
		t.Fatalf("error %q", job.Error)
	}
	if job.Restarts != 2 {
		t.Fatalf("restarts %d, want 2", job.Restarts)
	}
}

func TestManagerRejectsInvalidSpec(t *testing.T) {
	m, err := NewManager(ManagerConfig{Store: store.NewMem(), Index: NewMem(),
		Runner: func(context.Context, string, JobSpec, store.Store, func(RunUpdate)) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	bad := []JobSpec{
		{NP: 1, Ranks: 2, Steps: 1},                       // np too small
		{NP: 4, Ranks: 0, Steps: 1},                       // no ranks
		{NP: 4, Ranks: 2, Steps: 0},                       // no steps
		{NP: 4, Ranks: 2, Steps: 1, NMesh: 3},             // mesh too small
		{NP: 4, Ranks: 2, Steps: 1, ZStart: 10, ZEnd: 20}, // time runs backwards
		{NP: 4, Ranks: 2, Steps: 1, FailRankAtStep: 1},    // chaos without checkpoints
		{NP: 200, Ranks: 2, Steps: 1},                     // np too large
		{NP: 4, Ranks: 2, Steps: 1, CheckpointEvery: -1},  // negative knob
	}
	for i, spec := range bad {
		if _, err := m.Submit(spec); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
}

func TestManagerRunsJobsInOrder(t *testing.T) {
	idx := NewMem()
	var order []string
	runner := func(ctx context.Context, id string, spec JobSpec, st store.Store, update func(RunUpdate)) error {
		order = append(order, id) // executor is single-threaded; no lock needed
		return nil
	}
	m, err := NewManager(ManagerConfig{Store: store.NewMem(), Index: idx, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	var ids []string
	for i := 0; i < 3; i++ {
		info, err := m.Submit(validSpec())
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, info.ID)
	}
	for _, id := range ids {
		waitJob(t, idx, id)
	}
	if strings.Join(order, ",") != strings.Join(ids, ",") {
		t.Fatalf("ran %v, want %v", order, ids)
	}

	jobs, err := idx.ListJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 3 || jobs[0].ID != ids[2] {
		t.Fatalf("ListJobs order wrong: %v", jobs)
	}
}

func TestManagerCloseRejectsSubmissions(t *testing.T) {
	started := make(chan struct{})
	hold := make(chan struct{})
	runner := func(ctx context.Context, id string, spec JobSpec, st store.Store, update func(RunUpdate)) error {
		close(started)
		select {
		case <-hold:
		case <-ctx.Done():
		}
		return ctx.Err()
	}
	idx := NewMem()
	m, err := NewManager(ManagerConfig{Store: store.NewMem(), Index: idx, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-started

	done := make(chan struct{})
	go func() { m.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Close did not cancel the running job")
	}
	if _, err := m.Submit(validSpec()); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit after close: %v", err)
	}
	job := waitJob(t, idx, info.ID)
	if job.State != StateFailed {
		t.Fatalf("cancelled job state %s, want failed", job.State)
	}
}
