package serve

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"greem/internal/store"
	"greem/internal/telemetry"
)

func jobRec(id string, state JobState) journalRecord {
	return journalRecord{Kind: "job", Job: &JobInfo{
		ID: id, State: state, SubmittedAt: time.Unix(100, 0).UTC(),
	}}
}

func TestJournalAppendReplay(t *testing.T) {
	st := store.NewMem()
	j, err := OpenJournal(st)
	if err != nil {
		t.Fatal(err)
	}
	events := []journalRecord{
		jobRec("run-000001", StateQueued),
		jobRec("run-000001", StateRunning),
		{Kind: "product", JobID: "run-000001", Key: "snapshot", Ref: store.HashRef([]byte("x"))},
		jobRec("run-000001", StateDone),
	}
	for _, e := range events {
		if err := j.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if j.Seq() != 4 {
		t.Fatalf("seq = %d, want 4", j.Seq())
	}

	// A second journal over the same store continues the sequence…
	j2, err := OpenJournal(st)
	if err != nil {
		t.Fatal(err)
	}
	if j2.Seq() != 4 {
		t.Fatalf("reopened seq = %d, want 4", j2.Seq())
	}
	// …and replays every record in order.
	var got []string
	err = j2.Replay(func(rec journalRecord) {
		switch rec.Kind {
		case "job":
			got = append(got, fmt.Sprintf("%d:%s:%s", rec.Seq, rec.Job.ID, rec.Job.State))
		case "product":
			got = append(got, fmt.Sprintf("%d:product:%s", rec.Seq, rec.Key))
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"1:run-000001:queued", "2:run-000001:running", "3:product:snapshot", "4:run-000001:done"}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("replay order:\n got %v\nwant %v", got, want)
	}
}

// TestJournalTelemetryStripped: live metrics are not durable state.
func TestJournalTelemetryStripped(t *testing.T) {
	st := store.NewMem()
	j, _ := OpenJournal(st)
	rec := jobRec("run-000001", StateRunning)
	rec.Job.Telemetry = []telemetry.MetricSnapshot{{Name: "x", Value: 1}}
	if err := j.Append(rec); err != nil {
		t.Fatal(err)
	}
	if rec.Job.Telemetry == nil {
		t.Fatal("Append mutated the caller's record")
	}
	var replayed *JobInfo
	j.Replay(func(r journalRecord) { replayed = r.Job })
	if replayed == nil || replayed.Telemetry != nil {
		t.Fatalf("journaled record carries telemetry: %+v", replayed)
	}
}

// TestJournalTornAppendTolerated: a torn PutNamed (blob committed, link
// lost) leaves a sequence gap, which replay skips — later records carry
// full state, so nothing is lost but the superseded intermediate.
func TestJournalTornAppendTolerated(t *testing.T) {
	mem := store.NewMem()
	failLink := false
	st := store.NewFaulty(mem, func(op store.Op, key string) error {
		if op == store.OpLink && failLink && strings.HasPrefix(key, journalPrefix) {
			return fmt.Errorf("injected link failure")
		}
		return nil
	})
	j, _ := OpenJournal(st)
	if err := j.Append(jobRec("run-000001", StateQueued)); err != nil {
		t.Fatal(err)
	}
	failLink = true
	if err := j.Append(jobRec("run-000001", StateRunning)); err == nil {
		t.Fatal("torn append reported success")
	}
	failLink = false
	if err := j.Append(jobRec("run-000001", StateDone)); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(mem)
	if err != nil {
		t.Fatal(err)
	}
	var states []JobState
	if err := j2.Replay(func(rec journalRecord) { states = append(states, rec.Job.State) }); err != nil {
		t.Fatalf("replay over a torn journal: %v", err)
	}
	// The failed append is retried under the same seq, so "running" lands at
	// seq 2 only if retried; here it was not — final state still wins.
	if len(states) == 0 || states[len(states)-1] != StateDone {
		t.Fatalf("replayed states %v, want final done", states)
	}
}

// TestJournalCorruptRecordIsAnError: a bit-flipped record must stop replay
// with an error naming the record, not be skipped silently.
func TestJournalCorruptRecordIsAnError(t *testing.T) {
	mem := store.NewMem()
	j, _ := OpenJournal(mem)
	j.Append(jobRec("run-000001", StateQueued))
	j.Append(jobRec("run-000001", StateDone))

	name := fmt.Sprintf("%s%012d", journalPrefix, 1)
	ref, err := mem.Resolve(name)
	if err != nil {
		t.Fatal(err)
	}
	if err := mem.Mutate(ref, func(b []byte) { b[len(b)-5] ^= 0x40 }); err != nil {
		t.Fatal(err)
	}

	j2, _ := OpenJournal(mem)
	err = j2.Replay(func(journalRecord) {})
	if err == nil || !strings.Contains(err.Error(), name) {
		t.Fatalf("corrupt replay error %v, want one naming %s", err, name)
	}
}
