package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"greem/internal/analysis"
	"greem/internal/sim"
	"greem/internal/snapshot"
	"greem/internal/store"
)

// Product kinds served under /runs/{id}/products/{kind}. Every product
// derives deterministically from the job's final snapshot, so each
// (job, kind, parameters) triple has one canonical byte string — which is
// what makes the content-addressed cache and the singleflight sound.
const (
	ProductSnapshot = "snapshot" // raw snapshot binary, optionally an index slice
	ProductHalos    = "halos"    // FoF halo catalog, canonical JSON
	ProductPk       = "pk"       // matter power spectrum, canonical JSON
	ProductDensity  = "density"  // projected surface density, PGM image
)

// ProductRequest names one product of one run. Zero-valued parameters
// select defaults at compute time; the canonical key encodes the request
// as made, so distinct parameterizations cache independently.
type ProductRequest struct {
	Kind string

	Lo, Hi int // snapshot: particle index range [lo, hi); 0,0 ⇒ all

	B       float64 // halos: linking length in mean-separation units; 0 ⇒ 0.2
	MinSize int     // halos: smallest group reported; 0 ⇒ 8

	NMesh int // pk: assignment mesh per side; 0 ⇒ the run's PM mesh
	NBins int // pk: k bins; 0 ⇒ 16

	NPix int // density: image pixels per side; 0 ⇒ 64
}

// Key returns the canonical cache key for the request, validating the
// parameters. Keys are single store-name path elements.
func (r ProductRequest) Key() (string, error) {
	switch r.Kind {
	case ProductSnapshot:
		if r.Lo < 0 || r.Hi < 0 || (r.Hi != 0 && r.Hi <= r.Lo) {
			return "", fmt.Errorf("serve: bad snapshot slice [%d, %d)", r.Lo, r.Hi)
		}
		return fmt.Sprintf("snapshot-%d-%d", r.Lo, r.Hi), nil
	case ProductHalos:
		if r.B < 0 || r.B > 1 {
			return "", fmt.Errorf("serve: linking parameter b=%g outside (0, 1]", r.B)
		}
		if r.MinSize < 0 || r.MinSize > 1<<20 {
			return "", fmt.Errorf("serve: min_size %d out of range", r.MinSize)
		}
		return "halos-b" + canonFloat(r.B) + "-min" + strconv.Itoa(r.MinSize), nil
	case ProductPk:
		if r.NMesh < 0 || r.NMesh > 512 || r.NBins < 0 || r.NBins > 4096 {
			return "", fmt.Errorf("serve: pk parameters nmesh=%d nbins=%d out of range", r.NMesh, r.NBins)
		}
		return fmt.Sprintf("pk-n%d-b%d", r.NMesh, r.NBins), nil
	case ProductDensity:
		if r.NPix < 0 || r.NPix > 4096 {
			return "", fmt.Errorf("serve: density n %d out of range", r.NPix)
		}
		return fmt.Sprintf("density-n%d", r.NPix), nil
	}
	return "", fmt.Errorf("serve: unknown product kind %q", r.Kind)
}

// ContentType is the HTTP content type of the product bytes.
func (r ProductRequest) ContentType() string {
	switch r.Kind {
	case ProductHalos, ProductPk:
		return "application/json"
	case ProductDensity:
		return "image/x-portable-graymap"
	}
	return "application/octet-stream"
}

// canonFloat formats a parameter float canonically (shortest round-trip
// form), so 0.2 and 0.20 name the same cache entry.
func canonFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Products computes, caches and deduplicates derived data products. All
// requests funnel through a singleflight keyed by (job, product key): the
// leader either fetches the cached blob (one store read) or computes the
// product from the final snapshot and stores it; every concurrent duplicate
// waits and shares the leader's bytes.
type Products struct {
	store  store.Store
	index  Index
	flight *Flight

	// opTimeout bounds the leader's store work. The leader runs detached
	// from any single caller's deadline (its result serves every waiter),
	// so it needs its own bound.
	opTimeout time.Duration

	// The stale cache holds the last known-good bytes per product, served
	// when the store is unavailable (breaker open): a degraded read beats a
	// 5xx for immutable derived data. Bounded FIFO.
	mu          sync.Mutex
	cache       map[string][]byte
	order       []string
	staleServed atomic.Int64
}

// productCacheEntries bounds the stale cache.
const productCacheEntries = 128

// NewProducts wires the product plane over a store and an index.
func NewProducts(st store.Store, idx Index) *Products {
	return &Products{store: st, index: idx, flight: NewFlight(),
		opTimeout: 30 * time.Second, cache: make(map[string][]byte)}
}

// StaleServed returns how many requests were answered from the stale cache
// while the store was unavailable.
func (p *Products) StaleServed() int64 { return p.staleServed.Load() }

func (p *Products) remember(key string, b []byte) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.cache[key]; !ok {
		p.order = append(p.order, key)
		for len(p.order) > productCacheEntries {
			delete(p.cache, p.order[0])
			p.order = p.order[1:]
		}
	}
	p.cache[key] = b
}

func (p *Products) recall(key string) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b, ok := p.cache[key]
	return b, ok
}

// Get returns the product bytes for the request, computing and caching on
// first use. shared reports whether this call rode an in-flight duplicate.
// The returned slice is shared across callers — treat it as read-only.
func (p *Products) Get(job JobInfo, req ProductRequest) (data []byte, shared bool, err error) {
	data, shared, _, err = p.GetCtx(context.Background(), job, req)
	return data, shared, err
}

// GetCtx is Get with caller cancellation and graceful degradation: a caller
// whose ctx dies stops waiting immediately (the leader's work continues for
// the others), and when the store is unavailable the last known-good bytes
// are served with stale=true instead of an error.
func (p *Products) GetCtx(ctx context.Context, job JobInfo, req ProductRequest) (data []byte, shared, stale bool, err error) {
	key, err := req.Key()
	if err != nil {
		return nil, false, false, err
	}
	fkey := job.ID + "|" + key
	data, shared, err = p.flight.DoCtx(ctx, fkey, func() ([]byte, error) {
		opCtx, cancel := context.WithTimeout(context.Background(), p.opTimeout)
		defer cancel()
		st := store.ForContext(opCtx, p.store)
		// An index-registered product (an in-situ emission, or a previous
		// leader's compute) serves straight from the store — no snapshot
		// needed, no particle set materialised.
		if ref, cerr := p.index.GetProduct(job.ID, key); cerr == nil {
			return st.Get(ref)
		}
		// Gather fallback: derive the product from the final snapshot.
		if job.SnapshotRef == "" {
			return nil, fmt.Errorf("serve: job %s has no snapshot yet (state %s)", job.ID, job.State)
		}
		b, cerr := p.computeWith(st, job, req)
		if cerr != nil {
			return nil, cerr
		}
		ref, cerr := st.PutNamed(productName(job.ID, key), b)
		if cerr != nil {
			return nil, cerr
		}
		if cerr := p.index.PutProduct(job.ID, key, ref); cerr != nil {
			return nil, cerr
		}
		return b, nil
	})
	if err == nil {
		p.remember(fkey, data)
		return data, shared, false, nil
	}
	// Degrade only on backend unavailability — a dead caller context or a
	// definitive error propagates honestly.
	if errors.Is(err, store.ErrUnavailable) {
		if b, ok := p.recall(fkey); ok {
			p.staleServed.Add(1)
			return b, shared, true, nil
		}
	}
	return nil, shared, false, err
}

func (p *Products) computeWith(st store.Store, job JobInfo, req ProductRequest) ([]byte, error) {
	raw, err := st.Get(job.SnapshotRef)
	if err != nil {
		return nil, fmt.Errorf("serve: job %s: load snapshot: %w", job.ID, err)
	}
	// The whole-snapshot product is the stored blob itself, bit for bit.
	if req.Kind == ProductSnapshot && req.Lo == 0 && req.Hi == 0 {
		return raw, nil
	}
	hdr, parts, err := snapshot.Decode(raw)
	if err != nil {
		return nil, fmt.Errorf("serve: job %s: decode snapshot: %w", job.ID, err)
	}

	switch req.Kind {
	case ProductSnapshot:
		lo, hi := req.Lo, req.Hi
		if hi == 0 || hi > len(parts) {
			hi = len(parts)
		}
		if lo >= len(parts) {
			return nil, fmt.Errorf("serve: snapshot slice starts at %d but the run has %d particles", lo, len(parts))
		}
		return snapshot.Encode(hdr, parts[lo:hi])

	case ProductHalos:
		b := req.B
		if b == 0 {
			b = 0.2
		}
		minSize := req.MinSize
		if minSize == 0 {
			minSize = 8
		}
		x, y, z, m := columns(parts)
		// Linking length in mean-interparticle-separation units: the run
		// has NP³ particles in a box of side L.
		ll := b * hdr.L / float64(job.Spec.NP)
		groups := analysis.FoF(x, y, z, hdr.L, ll, minSize)
		halos := analysis.Catalog(x, y, z, m, hdr.L, groups)
		return analysis.EncodeCatalog(analysis.CatalogFile{
			Format: 1, L: hdr.L, Time: hdr.Time, Step: hdr.StepIdx,
			LinkingLength: ll, MinSize: minSize, Halos: halos,
		})

	case ProductPk:
		nmesh := req.NMesh
		if nmesh == 0 {
			nmesh = job.Spec.withDefaults().NMesh
		}
		nbins := req.NBins
		if nbins == 0 {
			nbins = 16
		}
		x, y, z, m := columns(parts)
		ks, ps, counts, err := analysis.PowerSpectrum(x, y, z, m, nmesh, hdr.L, nbins)
		if err != nil {
			return nil, fmt.Errorf("serve: job %s: power spectrum: %w", job.ID, err)
		}
		// CanonicalP quantizes the spectrum to 10 significant digits on
		// every path (here and in the in-situ emission), so the served
		// bytes are identical regardless of which FFT factorization
		// computed them.
		return analysis.EncodePower(analysis.PowerFile{
			Format: 1, L: hdr.L, Time: hdr.Time, Step: hdr.StepIdx,
			NMesh: nmesh, NBins: nbins, K: ks, P: analysis.CanonicalP(ps), Count: counts,
		})

	case ProductDensity:
		n := req.NPix
		if n == 0 {
			n = 64
		}
		x, y, _, m := columns(parts)
		img := analysis.ProjectXY(x, y, m, n, hdr.L)
		var buf bytes.Buffer
		if err := analysis.WritePGM(&buf, img); err != nil {
			return nil, fmt.Errorf("serve: job %s: render density: %w", job.ID, err)
		}
		return buf.Bytes(), nil
	}
	return nil, fmt.Errorf("serve: unknown product kind %q", req.Kind)
}

// columns splits particles into the coordinate arrays the analysis package
// consumes.
func columns(parts []sim.Particle) (x, y, z, m []float64) {
	x = make([]float64, len(parts))
	y = make([]float64, len(parts))
	z = make([]float64, len(parts))
	m = make([]float64, len(parts))
	for i, p := range parts {
		x[i], y[i], z[i], m[i] = p.X, p.Y, p.Z, p.M
	}
	return
}
