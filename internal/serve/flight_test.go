package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestFlightWaiterCancellation: a waiter whose context dies returns
// promptly with ctx.Err() and must NOT poison the shared call — the leader
// finishes, other waiters get its payload, and fn runs exactly once.
func TestFlightWaiterCancellation(t *testing.T) {
	f := NewFlight()
	leaderIn := make(chan struct{})
	release := make(chan struct{})
	var calls atomic.Int64

	type result struct {
		val    []byte
		shared bool
		err    error
	}
	leaderDone := make(chan result, 1)
	go func() {
		val, shared, err := f.Do("k", func() ([]byte, error) {
			calls.Add(1)
			close(leaderIn)
			<-release
			return []byte("payload"), nil
		})
		leaderDone <- result{val, shared, err}
	}()
	<-leaderIn

	// A cancelled waiter abandons the flight without waiting for release.
	ctx, cancel := context.WithCancel(context.Background())
	cancelled := make(chan result, 1)
	go func() {
		val, shared, err := f.DoCtx(ctx, "k", func() ([]byte, error) {
			t.Error("waiter ran fn")
			return nil, nil
		})
		cancelled <- result{val, shared, err}
	}()
	// A patient waiter sticks around for the leader's result.
	patient := make(chan result, 1)
	go func() {
		val, shared, err := f.DoCtx(context.Background(), "k", func() ([]byte, error) {
			t.Error("waiter ran fn")
			return nil, nil
		})
		patient <- result{val, shared, err}
	}()

	cancel()
	select {
	case r := <-cancelled:
		if !errors.Is(r.err, context.Canceled) || !r.shared {
			t.Fatalf("cancelled waiter got (%q, %v, %v)", r.val, r.shared, r.err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter stayed blocked behind the leader")
	}

	close(release)
	for _, ch := range []chan result{leaderDone, patient} {
		r := <-ch
		if r.err != nil || string(r.val) != "payload" {
			t.Fatalf("surviving caller got (%q, %v)", r.val, r.err)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("fn ran %d times, want 1", calls.Load())
	}
}

// TestFlightLeaderUnaffectedByOwnDeadContext: DoCtx cancellation applies to
// waiting, not leading — a leader with a dead context still runs fn so the
// herd behind it is served.
func TestFlightLeaderUnaffectedByOwnDeadContext(t *testing.T) {
	f := NewFlight()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	val, shared, err := f.DoCtx(ctx, "k", func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || shared || string(val) != "ok" {
		t.Fatalf("leader with dead ctx got (%q, %v, %v)", val, shared, err)
	}
}

// TestFlightDedup parks a herd behind one blocked leader and checks the
// whole herd shares the leader's single execution.
func TestFlightDedup(t *testing.T) {
	f := NewFlight()
	const herd = 100

	release := make(chan struct{})
	var calls atomic.Int64
	fn := func() ([]byte, error) {
		calls.Add(1)
		<-release
		return []byte("payload"), nil
	}

	// Leader first, so every herd member finds the call in flight.
	leaderIn := make(chan struct{})
	var wg sync.WaitGroup
	var sharedCount atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(leaderIn)
		val, shared, err := f.Do("k", fn)
		if err != nil || string(val) != "payload" {
			t.Errorf("leader: val=%q err=%v", val, err)
		}
		if shared {
			sharedCount.Add(1)
		}
	}()
	<-leaderIn
	// Wait until the leader is actually inside fn before starting the herd.
	for calls.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	for i := 0; i < herd-1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			val, shared, err := f.Do("k", fn)
			if err != nil || string(val) != "payload" {
				t.Errorf("follower: val=%q err=%v", val, err)
			}
			if shared {
				sharedCount.Add(1)
			}
		}()
	}
	// Give the herd time to park, then let the leader finish.
	time.Sleep(50 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := calls.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	if got := sharedCount.Load(); got != herd-1 {
		t.Fatalf("%d callers shared, want %d", got, herd-1)
	}
}

// TestFlightMixedKeysDoNotSerialize blocks one key's leader and checks a
// different key's call completes while the first is still held.
func TestFlightMixedKeysDoNotSerialize(t *testing.T) {
	f := NewFlight()
	hold := make(chan struct{})
	entered := make(chan struct{})

	go f.Do("slow", func() ([]byte, error) {
		close(entered)
		<-hold
		return nil, nil
	})
	<-entered

	done := make(chan struct{})
	go func() {
		defer close(done)
		val, shared, err := f.Do("fast", func() ([]byte, error) { return []byte("hi"), nil })
		if err != nil || shared || string(val) != "hi" {
			t.Errorf("fast key: val=%q shared=%v err=%v", val, shared, err)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("call with a different key serialized behind the blocked leader")
	}
	close(hold)
}

// TestFlightSequential checks that non-overlapping calls each run fn —
// the group batches concurrency, it is not a cache.
func TestFlightSequential(t *testing.T) {
	f := NewFlight()
	calls := 0
	for i := 0; i < 3; i++ {
		val, shared, err := f.Do("k", func() ([]byte, error) {
			calls++
			return []byte(fmt.Sprint(calls)), nil
		})
		if err != nil || shared {
			t.Fatalf("iteration %d: shared=%v err=%v", i, shared, err)
		}
		if string(val) != fmt.Sprint(i+1) {
			t.Fatalf("iteration %d: val=%q", i, val)
		}
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3", calls)
	}
}

// TestFlightErrorShared checks an error propagates to every sharer.
func TestFlightErrorShared(t *testing.T) {
	f := NewFlight()
	boom := fmt.Errorf("boom")
	release := make(chan struct{})
	started := make(chan struct{})

	var wg sync.WaitGroup
	errs := make([]error, 10)
	wg.Add(1)
	go func() {
		defer wg.Done()
		close(started)
		_, _, errs[0] = f.Do("k", func() ([]byte, error) { <-release; return nil, boom })
	}()
	<-started
	time.Sleep(10 * time.Millisecond)
	for i := 1; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = f.Do("k", func() ([]byte, error) { return nil, nil })
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()
	for i, err := range errs {
		if err != boom {
			t.Fatalf("caller %d: err=%v, want boom", i, err)
		}
	}
}
