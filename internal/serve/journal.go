package serve

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"greem/internal/checkpoint"
	"greem/internal/store"
)

// The job journal makes the service plane's promise — an acknowledged
// submit is never lost — survive daemon crashes. Every durable job-state
// transition (created, queued→running→checkpointed→done/failed, a product
// cached) is appended as one CRC-framed record in the content-addressed
// store, under index/journal/<seq>. On startup the journal is replayed in
// sequence order to rebuild the in-memory index; the manager then re-enqueues
// every non-terminal job.
//
// One record per blob (rather than one growing log file) matches the store's
// write model: blobs are immutable and name links are atomic, so an append
// is a single PutNamed and a torn append (blob committed, link lost) is
// simply an invisible record — the sequence gap it leaves is tolerated by
// replay, because every record carries the job's full durable state and a
// later record supersedes the lost one.

// journalMagic frames journal records, versioned like the checkpoint
// manifest magic.
var journalMagic = [8]byte{'G', 'R', 'M', 'J', 'R', 'N', 'L', '1'}

const (
	journalPrefix    = "index/journal/"
	maxJournalRecord = 1 << 20
)

// journalRecord is one appended event. Kind "job" snapshots the job's full
// durable state (not a delta — replay must tolerate lost records); kind
// "product" maps a cached product key to its content address.
type journalRecord struct {
	Seq  uint64 `json:"seq"`
	Kind string `json:"kind"` // "job" | "product"

	Job *JobInfo `json:"job,omitempty"` // kind "job"; Telemetry stripped

	JobID string    `json:"job_id,omitempty"` // kind "product"
	Key   string    `json:"key,omitempty"`
	Ref   store.Ref `json:"ref,omitempty"`
}

// Journal is the append-only job journal over a Store.
type Journal struct {
	st store.Store

	mu  sync.Mutex
	seq uint64 // last successfully appended sequence number
}

// OpenJournal opens the journal in st and positions the append cursor after
// the newest existing record.
func OpenJournal(st store.Store) (*Journal, error) {
	j := &Journal{st: st}
	names, err := st.List(journalPrefix)
	if err != nil {
		return nil, fmt.Errorf("serve: journal scan: %w", err)
	}
	for _, name := range names {
		if seq, ok := journalSeq(name); ok && seq > j.seq {
			j.seq = seq
		}
	}
	return j, nil
}

// journalSeq parses the sequence number out of a journal record name.
func journalSeq(name string) (uint64, bool) {
	tail := strings.TrimPrefix(name, journalPrefix)
	if tail == name || strings.Contains(tail, "/") {
		return 0, false
	}
	seq, err := strconv.ParseUint(tail, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// Append durably records rec and returns nil only once the record is
// committed (on the FS backend: written, renamed, and directory-fsynced).
// The sequence cursor advances only on success, so a failed append is
// retried under the same name and a torn one is superseded in place.
func (j *Journal) Append(rec journalRecord) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	rec.Seq = j.seq + 1
	if rec.Job != nil {
		cp := *rec.Job
		cp.Telemetry = nil // live metrics are not durable state
		rec.Job = &cp
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("serve: journal encode: %w", err)
	}
	if len(payload) > maxJournalRecord {
		return fmt.Errorf("serve: journal record %d bytes exceeds cap %d", len(payload), maxJournalRecord)
	}
	name := fmt.Sprintf("%s%012d", journalPrefix, rec.Seq)
	if _, err := j.st.PutNamed(name, checkpoint.FrameRecord(journalMagic, payload)); err != nil {
		return fmt.Errorf("serve: journal append %s: %w", name, err)
	}
	j.seq = rec.Seq
	return nil
}

// Replay reads every journal record in sequence order and hands it to
// apply. Sequence gaps are tolerated (a torn append leaves one); a record
// that is present but corrupt is an error naming the record — the operator
// decides whether to delete it, because silently skipping could resurrect a
// superseded state.
func (j *Journal) Replay(apply func(journalRecord)) error {
	names, err := j.st.List(journalPrefix)
	if err != nil {
		return fmt.Errorf("serve: journal scan: %w", err)
	}
	// Zero-padded names list lexicographically == numerically; keep only
	// well-formed ones.
	for _, name := range names {
		seq, ok := journalSeq(name)
		if !ok {
			continue
		}
		ref, err := j.st.Resolve(name)
		if err != nil {
			return fmt.Errorf("serve: journal record %s: %w", name, err)
		}
		b, err := j.st.Get(ref)
		if err != nil {
			return fmt.Errorf("serve: journal record %s: %w", name, err)
		}
		payload, err := checkpoint.UnframeRecord(journalMagic, maxJournalRecord, b)
		if err != nil {
			return fmt.Errorf("serve: journal record %s corrupt: %w", name, err)
		}
		var rec journalRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return fmt.Errorf("serve: journal record %s corrupt: %w", name, err)
		}
		if rec.Seq != seq {
			return fmt.Errorf("serve: journal record %s claims seq %d", name, rec.Seq)
		}
		apply(rec)
	}
	return nil
}

// Seq returns the last committed sequence number.
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}
