package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"greem/internal/sim"
	"greem/internal/snapshot"
	"greem/internal/store"
)

// makeSnapshotBlob encodes a tiny valid snapshot for product tests.
func makeSnapshotBlob(t *testing.T) []byte {
	t.Helper()
	parts := []sim.Particle{
		{ID: 0, X: 0.1, Y: 0.2, Z: 0.3, M: 1},
		{ID: 1, X: 0.6, Y: 0.7, Z: 0.8, M: 1},
	}
	b, err := snapshot.Encode(snapshot.Header{L: 1, Time: 1, G: 1}, parts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func postSpec(t *testing.T, url string, spec JobSpec) *http.Response {
	t.Helper()
	b, _ := json.Marshal(spec)
	resp, err := http.Post(url+"/runs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func TestServerShedsOnFullQueue(t *testing.T) {
	started := make(chan struct{})
	hold := make(chan struct{})
	defer close(hold)
	runner := func(ctx context.Context, id string, spec JobSpec, st store.Store, update func(RunUpdate)) error {
		close(started)
		select {
		case <-hold:
		case <-ctx.Done():
		}
		return nil
	}
	idx := NewMem()
	mgr, err := NewManager(ManagerConfig{Store: store.NewMem(), Index: idx, Runner: runner, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv := httptest.NewServer(NewServer(ServerConfig{Manager: mgr, Index: idx, Store: store.NewMem()}).Handler())
	defer srv.Close()

	if resp := postSpec(t, srv.URL, validSpec()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	<-started
	if resp := postSpec(t, srv.URL, validSpec()); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}
	resp := postSpec(t, srv.URL, validSpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overloaded submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	// /readyz reports the full queue.
	rresp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	var rep ReadyReport
	json.NewDecoder(rresp.Body).Decode(&rep)
	if rresp.StatusCode != http.StatusServiceUnavailable || rep.Ready {
		t.Fatalf("readyz with a full queue: %d %+v", rresp.StatusCode, rep)
	}
	// The shed shows up in metrics.
	mresp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(mresp.Body)
	if !strings.Contains(buf.String(), `greem_shed_total{reason="queue_full"} 1`) {
		t.Fatalf("metrics missing shed counter:\n%s", buf.String())
	}
}

func TestServerShedsWhenBreakerOpen(t *testing.T) {
	sick := store.NewFaulty(store.NewMem(), func(store.Op, string) error {
		return errors.New("disk on fire")
	})
	breaker := store.NewBreaker(sick, store.BreakerConfig{Threshold: 1, Cooldown: time.Hour})
	breaker.Get(store.HashRef([]byte("trip"))) // trips it

	idx := NewMem()
	mgr, err := NewManager(ManagerConfig{Store: breaker, Index: idx,
		Runner: func(context.Context, string, JobSpec, store.Store, func(RunUpdate)) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	defer mgr.Close()
	srv := httptest.NewServer(NewServer(ServerConfig{
		Manager: mgr, Index: idx, Store: breaker, Breaker: breaker,
	}).Handler())
	defer srv.Close()

	resp := postSpec(t, srv.URL, validSpec())
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit with open breaker: %d, want 429", resp.StatusCode)
	}
	rresp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp.Body.Close()
	var rep ReadyReport
	json.NewDecoder(rresp.Body).Decode(&rep)
	if rep.Ready || rep.BreakerState != "open" {
		t.Fatalf("readyz with open breaker: %+v", rep)
	}
}

func TestServerReadyzDuringDrain(t *testing.T) {
	idx := NewMem()
	mgr, err := NewManager(ManagerConfig{Store: store.NewMem(), Index: idx,
		Runner: func(context.Context, string, JobSpec, store.Store, func(RunUpdate)) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewServer(ServerConfig{Manager: mgr, Index: idx, Store: store.NewMem()}).Handler())
	defer srv.Close()

	rresp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("readyz before drain: %d", rresp.StatusCode)
	}
	mgr.Drain(5 * time.Second)
	rresp2, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer rresp2.Body.Close()
	var rep ReadyReport
	json.NewDecoder(rresp2.Body).Decode(&rep)
	if rresp2.StatusCode != http.StatusServiceUnavailable || !rep.Draining {
		t.Fatalf("readyz during drain: %d %+v", rresp2.StatusCode, rep)
	}
	if resp := postSpec(t, srv.URL, validSpec()); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during drain: %d, want 503", resp.StatusCode)
	}
}

// TestProductsStaleServeWhenStoreUnavailable: once a product has been
// served, an unavailable store degrades to the cached bytes with
// stale=true instead of failing.
func TestProductsStaleServeWhenStoreUnavailable(t *testing.T) {
	mem := store.NewMem()
	down := false
	st := store.NewFaulty(mem, func(op store.Op, key string) error {
		if down {
			return fmt.Errorf("backend gone: %w", store.ErrUnavailable)
		}
		return nil
	})
	idx := NewMem()
	snapRef, err := mem.Put(makeSnapshotBlob(t))
	if err != nil {
		t.Fatal(err)
	}
	job := JobInfo{ID: "run-000001", State: StateDone, SnapshotRef: snapRef,
		Spec: JobSpec{NP: 4, Ranks: 1, Steps: 1}}
	idx.CreateJob(job)

	p := NewProducts(st, idx)
	req := ProductRequest{Kind: ProductSnapshot}
	warm, _, stale, err := p.GetCtx(context.Background(), job, req)
	if err != nil || stale {
		t.Fatalf("warm get: stale=%v err=%v", stale, err)
	}

	down = true
	data, _, stale, err := p.GetCtx(context.Background(), job, req)
	if err != nil {
		t.Fatalf("degraded get: %v", err)
	}
	if !stale || !bytes.Equal(data, warm) {
		t.Fatalf("degraded get: stale=%v, bytes equal=%v", stale, bytes.Equal(data, warm))
	}
	if p.StaleServed() != 1 {
		t.Fatalf("stale served %d, want 1", p.StaleServed())
	}

	// A product never served before has no stale copy — the error is honest.
	if _, _, _, err := p.GetCtx(context.Background(), job, ProductRequest{Kind: ProductDensity}); !errors.Is(err, store.ErrUnavailable) {
		t.Fatalf("cold degraded get: %v, want ErrUnavailable", err)
	}
}
