// Package serve is the simulation service plane: it manages simulation
// runs as jobs (submit a config, run it with the existing checkpoint and
// telemetry machinery, query progress, fetch products) on behalf of the
// cmd/greemd daemon.
//
// The package composes four pieces:
//
//   - a job Manager with the lifecycle queued → running → checkpointed →
//     done/failed, whose production runner executes the distributed sim
//     in-process with checkpoints written through the content-addressed
//     store (internal/store) and restart-on-abort reusing the checkpoint
//     degradation loop;
//   - an Index — the run/catalog index behind an interface, with the
//     in-memory implementation tests and the daemon use today and a
//     database-shaped surface for later;
//   - a singleflight Flight, so thousands of clients hitting the same
//     snapshot product cost one store read plus one compute;
//   - the HTTP Server exposing runs, products, Prometheus metrics and the
//     checkpoint hash chain as a verifiable run-integrity endpoint.
package serve

import (
	"fmt"
	"time"

	"greem/internal/cosmo"
	"greem/internal/sim"
	"greem/internal/store"
	"greem/internal/telemetry"
)

// JobSpec is the client-submitted configuration of one simulation run. The
// zero value of every optional field selects a sensible default; Validate
// bounds the mandatory ones so a hostile submission cannot OOM the daemon.
type JobSpec struct {
	NP    int   `json:"np"`    // particles per dimension
	Ranks int   `json:"ranks"` // in-process ranks
	Steps int   `json:"steps"` // full PM steps
	Seed  int64 `json:"seed"`  // IC random seed

	ZStart float64 `json:"zstart,omitempty"` // 0 ⇒ 400
	ZEnd   float64 `json:"zend,omitempty"`   // 0 ⇒ 31
	Amp    float64 `json:"amp,omitempty"`    // IC amplitude; 0 ⇒ 5e-5
	NMesh  int     `json:"nmesh,omitempty"`  // PM mesh; 0 ⇒ 2·np rounded up to a power of two
	Theta  float64 `json:"theta,omitempty"`  // tree opening angle; 0 ⇒ 0.5

	Workers         int `json:"workers,omitempty"`          // intra-rank workers; 0 ⇒ serial
	CheckpointEvery int `json:"checkpoint_every,omitempty"` // steps between checkpoints; 0 ⇒ off
	CheckpointKeep  int `json:"checkpoint_keep,omitempty"`  // checkpoints retained; 0 ⇒ all
	MaxRestarts     int `json:"max_restarts,omitempty"`     // restart-on-abort budget; 0 ⇒ 2

	// InSituEvery runs the distributed in-situ analysis pass (parallel FoF
	// catalog, on-the-fly P(k), streaming surface-density projection) every
	// that many steps and at the final step; 0 ⇒ off. The final-step catalog
	// and spectrum are registered as content-addressed products, so the
	// default halos/pk products serve without gathering the particle set.
	InSituEvery int `json:"insitu_every,omitempty"`

	// FailRankAtStep is the chaos-drill knob (mirroring cmd/greem's
	// -fail-rank-at-step): kill the last rank at the start of that step,
	// once, to exercise the checkpoint degradation loop end to end.
	FailRankAtStep int `json:"fail_rank_at_step,omitempty"`
}

// Validate bounds a submitted spec. The limits are service limits, not
// physics ones: the daemon runs jobs in-process, so NP³ particles and
// NMesh³ mesh cells are this process's memory.
func (s JobSpec) Validate() error {
	if s.NP < 2 || s.NP > 128 {
		return fmt.Errorf("serve: np %d outside [2, 128]", s.NP)
	}
	if s.Ranks < 1 || s.Ranks > 64 {
		return fmt.Errorf("serve: ranks %d outside [1, 64]", s.Ranks)
	}
	if _, err := factorGrid(s.Ranks); err != nil {
		return fmt.Errorf("serve: %w", err)
	}
	if s.Steps < 1 || s.Steps > 100000 {
		return fmt.Errorf("serve: steps %d outside [1, 100000]", s.Steps)
	}
	if s.NMesh != 0 && (s.NMesh < 4 || s.NMesh > 512) {
		return fmt.Errorf("serve: nmesh %d outside [4, 512]", s.NMesh)
	}
	if s.ZStart != 0 && s.ZEnd != 0 && s.ZEnd >= s.ZStart {
		return fmt.Errorf("serve: zend %g must be below zstart %g", s.ZEnd, s.ZStart)
	}
	if s.CheckpointEvery < 0 || s.MaxRestarts < 0 || s.InSituEvery < 0 || s.Workers < 0 && s.Workers != -1 {
		return fmt.Errorf("serve: negative knob in spec")
	}
	if s.FailRankAtStep > 0 && s.CheckpointEvery == 0 {
		return fmt.Errorf("serve: fail_rank_at_step needs checkpointing enabled to recover")
	}
	return nil
}

func (s JobSpec) withDefaults() JobSpec {
	if s.ZStart == 0 {
		s.ZStart = 400
	}
	if s.ZEnd == 0 {
		s.ZEnd = 31
	}
	if s.Amp == 0 {
		s.Amp = 5e-5
	}
	if s.NMesh == 0 {
		s.NMesh = nextPow2(2 * s.NP)
	}
	if s.Theta == 0 {
		s.Theta = 0.5
	}
	if s.MaxRestarts == 0 {
		s.MaxRestarts = 2
	}
	return s
}

// JobState is the lifecycle state of a job: queued → running →
// checkpointed → done/failed. "checkpointed" is running-with-a-restart-
// point: the job keeps stepping, but from here on an aborted world resumes
// instead of failing.
type JobState string

const (
	StateQueued       JobState = "queued"
	StateRunning      JobState = "running"
	StateCheckpointed JobState = "checkpointed"
	StateDone         JobState = "done"
	StateFailed       JobState = "failed"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool { return s == StateDone || s == StateFailed }

// JobInfo is the queryable record of one job, as stored in the Index and
// served by GET /runs/{id}.
type JobInfo struct {
	ID    string   `json:"id"`
	Spec  JobSpec  `json:"spec"`
	State JobState `json:"state"`

	Step               int     `json:"step"`        // completed steps
	TotalSteps         int     `json:"total_steps"` //
	Time               float64 `json:"time"`        // scale factor
	LastCheckpointStep int     `json:"last_checkpoint_step,omitempty"`
	Restarts           int     `json:"restarts,omitempty"` // degradation-loop resumes
	Error              string  `json:"error,omitempty"`

	SubmittedAt time.Time `json:"submitted_at"`
	StartedAt   time.Time `json:"started_at,omitempty"`
	FinishedAt  time.Time `json:"finished_at,omitempty"`

	// SnapshotRef is the content address of the final snapshot once the
	// run completes; every product derives from it.
	SnapshotRef store.Ref `json:"snapshot_ref,omitempty"`

	// Telemetry is the rank-0 registry snapshot pushed at the last step
	// boundary (recorders are rank-local and unsynchronized, so the live
	// registry is never read across goroutines).
	Telemetry []telemetry.MetricSnapshot `json:"telemetry,omitempty"`
}

// Store-name scheme (see DESIGN.md): everything a job persists lives under
// runs/<id>/ — checkpoints written through checkpoint.StoreFS, the final
// snapshot, and cached products keyed by their canonical parameters.
func ckptDir(id string) string      { return "runs/" + id + "/ckpt" }
func snapshotName(id string) string { return "runs/" + id + "/snapshot/final" }
func productName(id, key string) string {
	return "runs/" + id + "/products/" + key
}

// runPrefix is the name prefix the integrity endpoint re-hashes.
func runPrefix(id string) string { return "runs/" + id + "/" }

// simConfigFromSpec maps a job spec onto the simulation configuration,
// identically in the runner and the integrity auditor — the checkpoint
// manifests fingerprint this configuration, so both sides must derive it
// from the spec the same way. DeterministicCost is always on: a service
// that restarts jobs from checkpoints needs restarts to be bit-identical.
func simConfigFromSpec(spec JobSpec) (cfg sim.Config, model *cosmo.Model, aStart, aEnd float64, err error) {
	spec = spec.withDefaults()
	const l, g, totalM = 1.0, 1.0, 1.0
	grid, err := factorGrid(spec.Ranks)
	if err != nil {
		return cfg, nil, 0, 0, err
	}
	model = cosmo.EdS(cosmo.HubbleForBox(g, totalM, l, 1.0))
	aStart = cosmo.ScaleFactor(spec.ZStart)
	aEnd = cosmo.ScaleFactor(spec.ZEnd)
	cfg = sim.Config{
		L: l, G: g, NMesh: spec.NMesh, Workers: spec.Workers,
		Theta: spec.Theta, Eps2: 1e-8, FastKernel: true, LETExchange: true,
		Grid: grid, DT: (aEnd - aStart) / float64(spec.Steps),
		Stepper: model, Time: aStart, DeterministicCost: true,
	}
	if spec.InSituEvery > 0 {
		// The in-situ parameters mirror the gather-and-recompute defaults in
		// products.go exactly — same linking-length expression, same min
		// group, same bin count — so the in-situ catalog and spectrum are
		// byte-identical to what a post-hoc request would compute. (These
		// fields are not part of the checkpoint fingerprint; enabling in-situ
		// analysis does not invalidate existing checkpoints.)
		cfg.InSituEvery = spec.InSituEvery
		cfg.InSituFinalStep = spec.Steps
		cfg.InSituLL = 0.2 * l / float64(spec.NP)
		cfg.InSituMinSize = 8
		cfg.InSituBins = 16
		cfg.InSituPix = 64
	}
	return cfg, model, aStart, aEnd, nil
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// factorGrid factors p ranks into the most cubic 3-D grid, as the greem
// driver does.
func factorGrid(p int) ([3]int, error) {
	best := [3]int{}
	found := false
	for a := 1; a*a*a <= p; a++ {
		if p%a != 0 {
			continue
		}
		q := p / a
		for b := a; b*b <= q; b++ {
			if q%b == 0 {
				best = [3]int{q / b, b, a}
				found = true
			}
		}
	}
	if !found {
		return best, fmt.Errorf("cannot factor %d ranks into a grid", p)
	}
	return best, nil
}
