package serve

import (
	"context"
	"sync"
)

// Flight is the request-batching primitive of the serving layer: a
// singleflight group. Concurrent Do calls with the same key share one
// execution of fn — the first caller (the leader) runs it, everyone else
// blocks until the leader finishes and receives the same result — so a
// thundering herd of identical product fetches costs one store read plus
// one compute. Calls with different keys proceed independently; nothing
// serializes behind an unrelated key's leader.
type Flight struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// NewFlight returns an empty group.
func NewFlight() *Flight { return &Flight{m: make(map[string]*flightCall)} }

// Do executes fn once per concurrent set of callers with the same key.
// shared reports whether this caller received the leader's result rather
// than running fn itself. The result slice is shared between callers and
// must be treated as immutable.
func (f *Flight) Do(key string, fn func() ([]byte, error)) (val []byte, shared bool, err error) {
	return f.DoCtx(context.Background(), key, fn)
}

// DoCtx is Do with caller cancellation. A waiter whose context dies stops
// waiting and returns ctx.Err() — without poisoning the shared call: the
// leader keeps running (its result may serve other waiters and warm the
// cache), and every other waiter still receives the leader's result. The
// leader itself is never interrupted by its own context here; callers that
// want bounded leader work put the bound inside fn.
func (f *Flight) DoCtx(ctx context.Context, key string, fn func() ([]byte, error)) (val []byte, shared bool, err error) {
	f.mu.Lock()
	if c, ok := f.m[key]; ok {
		f.mu.Unlock()
		select {
		case <-c.done:
			return c.val, true, c.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	c := &flightCall{done: make(chan struct{})}
	f.m[key] = c
	f.mu.Unlock()

	c.val, c.err = fn()
	close(c.done)

	f.mu.Lock()
	delete(f.m, key)
	f.mu.Unlock()
	return c.val, false, c.err
}
