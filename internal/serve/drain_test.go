package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"greem/internal/store"
)

func TestManagerReplayRequeuesNonTerminal(t *testing.T) {
	idx := NewMem()
	now := time.Unix(100, 0).UTC()
	idx.CreateJob(JobInfo{ID: "run-000001", Spec: validSpec(), State: StateDone,
		SubmittedAt: now, FinishedAt: now})
	idx.CreateJob(JobInfo{ID: "run-000002", Spec: validSpec(), State: StateQueued, SubmittedAt: now})
	idx.CreateJob(JobInfo{ID: "run-000003", Spec: validSpec(), State: StateCheckpointed,
		SubmittedAt: now, LastCheckpointStep: 2})

	var ran []string
	runner := func(ctx context.Context, id string, spec JobSpec, st store.Store, update func(RunUpdate)) error {
		ran = append(ran, id) // single executor; no lock needed
		return nil
	}
	m, err := NewManager(ManagerConfig{Store: store.NewMem(), Index: idx, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if m.Replayed() != 2 {
		t.Fatalf("replayed %d jobs, want 2", m.Replayed())
	}
	waitJob(t, idx, "run-000002")
	waitJob(t, idx, "run-000003")
	if len(ran) != 2 || ran[0] != "run-000002" || ran[1] != "run-000003" {
		t.Fatalf("ran %v, want the two non-terminal jobs oldest first", ran)
	}
	if done, _ := idx.GetJob("run-000001"); done.State != StateDone {
		t.Fatalf("terminal job re-ran: %+v", done)
	}
}

// TestManagerReplayExceedingQueueDepth: replayed backlog rides on top of
// the configured depth — a full queue from the previous life must not shed
// its own replay.
func TestManagerReplayExceedingQueueDepth(t *testing.T) {
	idx := NewMem()
	for i := 0; i < 5; i++ {
		idx.CreateJob(JobInfo{ID: idx.NextID(), Spec: validSpec(), State: StateQueued,
			SubmittedAt: time.Unix(int64(i), 0).UTC()})
	}
	var ran int
	runner := func(ctx context.Context, id string, spec JobSpec, st store.Store, update func(RunUpdate)) error {
		ran++
		return nil
	}
	m, err := NewManager(ManagerConfig{Store: store.NewMem(), Index: idx, Runner: runner, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	jobs, _ := idx.ListJobs()
	for _, j := range jobs {
		waitJob(t, idx, j.ID)
	}
	if ran != 5 {
		t.Fatalf("ran %d of 5 replayed jobs", ran)
	}
}

func TestManagerSubmitShedsWhenQueueFull(t *testing.T) {
	started := make(chan struct{})
	hold := make(chan struct{})
	defer close(hold)
	runner := func(ctx context.Context, id string, spec JobSpec, st store.Store, update func(RunUpdate)) error {
		close(started)
		select {
		case <-hold:
		case <-ctx.Done():
		}
		return nil
	}
	idx := NewMem()
	m, err := NewManager(ManagerConfig{Store: store.NewMem(), Index: idx, Runner: runner, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	if _, err := m.Submit(validSpec()); err != nil { // runs (blocked in runner)
		t.Fatal(err)
	}
	<-started
	if _, err := m.Submit(validSpec()); err != nil { // occupies the queue slot
		t.Fatal(err)
	}
	before, _ := idx.ListJobs()
	if _, err := m.Submit(validSpec()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: %v, want ErrQueueFull", err)
	}
	// The shed submission never created a job record — nothing was acked.
	after, _ := idx.ListJobs()
	if len(after) != len(before) {
		t.Fatalf("shed submission left a job record (%d → %d jobs)", len(before), len(after))
	}
}

// TestManagerDrain: the running job checkpoints and parks non-terminal, a
// queued job stays queued, and a fresh manager over the same index resumes
// both.
func TestManagerDrain(t *testing.T) {
	idx := NewMem()
	stepping := make(chan struct{}, 64)
	runner := func(ctx context.Context, id string, spec JobSpec, st store.Store, update func(RunUpdate)) error {
		for step := 1; ; step++ {
			if DrainRequested(ctx) {
				update(RunUpdate{Step: step, TotalSteps: spec.Steps, Checkpointed: true})
				return ErrDrained
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			select {
			case stepping <- struct{}{}:
			default:
			}
			time.Sleep(time.Millisecond)
		}
	}
	m, err := NewManager(ManagerConfig{Store: store.NewMem(), Index: idx, Runner: runner, QueueDepth: 4})
	if err != nil {
		t.Fatal(err)
	}

	running, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-stepping // the first job is inside its step loop
	queued, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}

	if !m.Drain(10 * time.Second) {
		t.Fatal("drain timed out against a cooperative runner")
	}
	if _, err := m.Submit(validSpec()); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("submit during drain: %v", err)
	}

	rj, _ := idx.GetJob(running.ID)
	if rj.State.Terminal() || rj.State != StateCheckpointed || !rj.FinishedAt.IsZero() {
		t.Fatalf("drained job %+v, want non-terminal checkpointed", rj)
	}
	qj, _ := idx.GetJob(queued.ID)
	if qj.State != StateQueued {
		t.Fatalf("queued job state %s after drain, want queued", qj.State)
	}

	// Next daemon: replays both and finishes them.
	done := func(ctx context.Context, id string, spec JobSpec, st store.Store, update func(RunUpdate)) error {
		return nil
	}
	m2, err := NewManager(ManagerConfig{Store: store.NewMem(), Index: idx, Runner: done})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Replayed() != 2 {
		t.Fatalf("second manager replayed %d, want 2", m2.Replayed())
	}
	if j := waitJob(t, idx, running.ID); j.State != StateDone {
		t.Fatalf("resumed job ended %s", j.State)
	}
	if j := waitJob(t, idx, queued.ID); j.State != StateDone {
		t.Fatalf("requeued job ended %s", j.State)
	}
}

// TestManagerDrainTimeoutCancelsButKeepsJobResumable: an uncooperative
// runner is hard-cancelled at the deadline, yet the job stays non-terminal.
func TestManagerDrainTimeoutCancelsButKeepsJobResumable(t *testing.T) {
	idx := NewMem()
	started := make(chan struct{})
	runner := func(ctx context.Context, id string, spec JobSpec, st store.Store, update func(RunUpdate)) error {
		close(started)
		<-ctx.Done() // ignores the drain request
		return ctx.Err()
	}
	m, err := NewManager(ManagerConfig{Store: store.NewMem(), Index: idx, Runner: runner})
	if err != nil {
		t.Fatal(err)
	}
	info, err := m.Submit(validSpec())
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if m.Drain(50 * time.Millisecond) {
		t.Fatal("drain reported clean against an uncooperative runner")
	}
	job, _ := idx.GetJob(info.ID)
	if job.State.Terminal() {
		t.Fatalf("hard-cancelled drain marked the job %s; it must stay resumable", job.State)
	}
}
