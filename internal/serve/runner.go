package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"greem/internal/checkpoint"
	"greem/internal/ic"
	"greem/internal/mpi"
	"greem/internal/sim"
	"greem/internal/snapshot"
	"greem/internal/store"
	"greem/internal/telemetry"
)

// RunUpdate is one progress push from inside a running job, applied to the
// job's Index record by the manager. Pushes originate on rank 0 at step
// boundaries (and from the degradation loop between attempts), so they
// carry safely copyable state only.
type RunUpdate struct {
	Step       int
	TotalSteps int
	Time       float64 // scale factor

	Checkpointed bool // a checkpoint committed at Step
	Restart      bool // the degradation loop resumed after an abort

	SnapshotRef store.Ref // non-empty once the final snapshot is stored

	// Products are content-addressed in-situ analysis blobs stored by the
	// runner this step, keyed by canonical product key for the manager to
	// register in the index (so product requests serve them without a
	// gather-and-recompute pass).
	Products map[string]store.Ref

	Telemetry []telemetry.MetricSnapshot // rank-0 registry snapshot
}

// Runner executes one job against the store, pushing progress through
// update. The production implementation is SimRunner; tests inject stubs.
type Runner func(ctx context.Context, id string, spec JobSpec, st store.Store, update func(RunUpdate)) error

// errCancelled is the rank-0 panic value that aborts the world when the
// daemon is shutting down; the degradation loop translates it back into
// ctx.Err instead of retrying.
var errCancelled = errors.New("serve: job cancelled")

// SimRunner runs the distributed TreePM simulation in-process: generate
// initial conditions (unless a checkpoint to resume from exists), run
// spec.Ranks ranks as goroutines with checkpoints written through the
// content-addressed store, and on completion store the final ID-ordered
// snapshot as the root of the job's product tree. An aborted world (a lost
// rank) restarts from the last valid checkpoint up to spec.MaxRestarts
// times — the same degradation loop the greem driver uses, pointed at the
// store instead of a filesystem.
func SimRunner(ctx context.Context, id string, spec JobSpec, st store.Store, update func(RunUpdate)) error {
	spec = spec.withDefaults()
	cfg, model, aStart, _, err := simConfigFromSpec(spec)
	if err != nil {
		return err
	}
	fsys := checkpoint.StoreFS(st)
	dir := ckptDir(id)

	// Skip IC generation when a checkpoint will be restored anyway.
	var parts []sim.Particle
	canResume := false
	if spec.CheckpointEvery > 0 {
		if _, ok := checkpoint.LatestStep(checkpoint.Config{Dir: dir, Sim: cfg, FS: fsys}, spec.Ranks); ok {
			canResume = true
		}
	}
	if !canResume {
		ps := ic.NeutralinoCutoff{Amp: spec.Amp, KCut: 2 * math.Pi / cfg.L * float64(spec.NP) / 4}
		parts, err = ic.Generate(ic.Config{
			NP: spec.NP, NGrid: cfg.NMesh, L: cfg.L, PS: ps, Seed: spec.Seed,
			Model: model, AInit: aStart, TotalMass: 1.0,
		})
		if err != nil {
			return fmt.Errorf("serve: job %s: generate ICs: %w", id, err)
		}
	}

	// The chaos-drill hook: kill the last rank at the start of its n-th
	// step, once across restarts.
	var hook mpi.KillHook
	if spec.FailRankAtStep > 0 {
		var mu sync.Mutex
		count, fired := 0, false
		target := spec.Ranks - 1
		hook = func(rank int, point string) bool {
			if rank != target || point != "sim/step" {
				return false
			}
			mu.Lock()
			defer mu.Unlock()
			if fired {
				return false
			}
			count++
			if count == spec.FailRankAtStep {
				fired = true
				return true
			}
			return false
		}
	}

	// drained is set by rank 0 when the job stops at a drain request; read
	// after RunWithKillHook's join, so no lock is needed.
	drained := false
	runOnce := func() error {
		return mpi.RunWithKillHook(spec.Ranks, hook, func(c *mpi.Comm) {
			rec := telemetry.NewRecorder(c.Rank(), nil)
			rcfg := cfg
			rcfg.Recorder = rec
			ckCfg := checkpoint.Config{Dir: dir, Sim: rcfg, FS: fsys, Keep: spec.CheckpointKeep, Recorder: rec}
			var s *sim.Sim
			if spec.CheckpointEvery > 0 {
				var rerr error
				s, rerr = checkpoint.Restore(c, ckCfg)
				if rerr != nil && !errors.Is(rerr, checkpoint.ErrNoCheckpoint) {
					panic(rerr)
				}
			}
			lastCkpt := 0
			if s != nil {
				lastCkpt = s.StepIndex() // restored ⇒ a checkpoint exists here
			}
			if s == nil {
				var mine []sim.Particle
				for i := range parts {
					if i%spec.Ranks == c.Rank() {
						mine = append(mine, parts[i])
					}
				}
				var nerr error
				s, nerr = sim.New(c, rcfg, mine)
				if nerr != nil {
					panic(nerr)
				}
			}
			for s.StepIndex() < spec.Steps {
				if c.Rank() == 0 && ctx.Err() != nil {
					panic(errCancelled)
				}
				// The drain poll is collective: rank 0 reads the signal and
				// broadcasts the verdict, so every rank leaves the step loop
				// together — a lone deserter would abort the world instead
				// of parking it.
				stop := []int{0}
				if c.Rank() == 0 && DrainRequested(ctx) {
					stop[0] = 1
				}
				stop = mpi.Bcast(c, 0, stop)
				if stop[0] == 1 {
					if spec.CheckpointEvery > 0 && s.StepIndex() > lastCkpt {
						if _, err := checkpoint.Write(c, ckCfg, s); err != nil {
							panic(err)
						}
						if c.Rank() == 0 {
							update(RunUpdate{
								Step: s.StepIndex(), TotalSteps: spec.Steps, Time: s.Time(),
								Checkpointed: true, Telemetry: rec.Registry().Snapshot(),
							})
						}
					}
					if c.Rank() == 0 {
						drained = true
					}
					return // park the job; no final snapshot
				}
				if err := s.Step(); err != nil {
					panic(err)
				}
				idx := s.StepIndex()
				ckpt := false
				if spec.CheckpointEvery > 0 && idx%spec.CheckpointEvery == 0 {
					if _, err := checkpoint.Write(c, ckCfg, s); err != nil {
						panic(err)
					}
					ckpt = true
					lastCkpt = idx
				}
				if c.Rank() == 0 {
					var prods map[string]store.Ref
					if res := s.InSituProducts(); res != nil && res.Step == idx {
						prods = storeInSitu(st, id, spec, res, idx == spec.Steps)
					}
					update(RunUpdate{
						Step: idx, TotalSteps: spec.Steps, Time: s.Time(),
						Checkpointed: ckpt, Products: prods,
						Telemetry: rec.Registry().Snapshot(),
					})
				}
			}
			all := s.GatherAll(0)
			if c.Rank() == 0 {
				sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
				hdr := snapshot.Header{L: cfg.L, Time: s.Time(), G: cfg.G, StepIdx: uint64(s.StepIndex())}
				ref, serr := snapshot.SaveTo(st, snapshotName(id), hdr, all)
				if serr != nil {
					panic(serr)
				}
				update(RunUpdate{
					Step: s.StepIndex(), TotalSteps: spec.Steps, Time: s.Time(),
					SnapshotRef: ref, Telemetry: rec.Registry().Snapshot(),
				})
			}
			c.Barrier()
		})
	}

	for attempt := 0; ; attempt++ {
		err := runOnce()
		if err == nil {
			if drained {
				return ErrDrained
			}
			return nil
		}
		if ctx.Err() != nil {
			return fmt.Errorf("serve: job %s: %w", id, ctx.Err())
		}
		if spec.CheckpointEvery > 0 && mpi.IsAborted(err) && attempt < spec.MaxRestarts {
			update(RunUpdate{Restart: true})
			continue
		}
		return fmt.Errorf("serve: job %s: %w", id, err)
	}
}

// storeInSitu persists one in-situ emission through the content-addressed
// store on rank 0 and returns the product keys to register. Every emission
// stores the streaming projection under a step-stamped key; the final step
// additionally registers the catalog and spectrum under the canonical
// product keys (both the zero-request and explicit-default spellings), so
// the default halos/pk products are served from the in-situ bytes without
// ever materialising the gathered particle set. Storage is best-effort: a
// failed put leaves the gather fallback in place rather than aborting the
// run.
func storeInSitu(st store.Store, id string, spec JobSpec, res *sim.InSituResult, final bool) map[string]store.Ref {
	type blob struct {
		key string
		b   []byte
	}
	var blobs []blob
	if res.Density != nil {
		blobs = append(blobs, blob{fmt.Sprintf("density-step%d", res.Step), res.Density})
	}
	if final {
		if res.Catalog != nil {
			blobs = append(blobs,
				blob{"halos-b0-min0", res.Catalog},
				blob{"halos-b0.2-min8", res.Catalog})
		}
		if res.Power != nil {
			nmesh := spec.withDefaults().NMesh
			blobs = append(blobs,
				blob{"pk-n0-b0", res.Power},
				blob{fmt.Sprintf("pk-n%d-b16", nmesh), res.Power})
		}
	}
	out := make(map[string]store.Ref, len(blobs))
	for _, bl := range blobs {
		if ref, err := st.PutNamed(productName(id, bl.key), bl.b); err == nil {
			out[bl.key] = ref
		}
	}
	return out
}
