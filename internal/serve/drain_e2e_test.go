package serve

import (
	"testing"
	"time"

	"greem/internal/store"
)

// TestSimRunnerDrainResume is the drain half of the durability story, run
// against the real simulation runner: a job drained mid-run parks at a
// checkpoint, a fresh manager over the same store and index replays it, and
// the resumed run's final snapshot is bit-identical to an uninterrupted
// control run (DeterministicCost makes restarts exact).
func TestSimRunnerDrainResume(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full simulation twice")
	}
	spec := JobSpec{NP: 8, Ranks: 2, Steps: 6, Seed: 5, CheckpointEvery: 2}

	// Control: one uninterrupted run.
	ctlStore := store.NewMem()
	ctlIdx, err := OpenStoreIndex(ctlStore, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	ctl, err := NewManager(ManagerConfig{Store: ctlStore, Index: ctlIdx, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ctlJob, err := ctl.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	ctlDone := waitJob(t, ctlIdx, ctlJob.ID)
	ctl.Close()
	if ctlDone.State != StateDone || ctlDone.SnapshotRef == "" {
		t.Fatalf("control run: %+v", ctlDone)
	}

	// Interrupted: drain once the job has a checkpoint to park at.
	st := store.NewMem()
	idx, err := OpenStoreIndex(st, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(ManagerConfig{Store: st, Index: idx, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	job, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		j, err := idx.GetJob(job.ID)
		if err != nil {
			t.Fatal(err)
		}
		if j.State.Terminal() {
			t.Fatalf("job finished (%s) before the drain could interrupt it", j.State)
		}
		if j.LastCheckpointStep >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never checkpointed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if !m.Drain(30 * time.Second) {
		t.Fatal("drain timed out against the sim runner")
	}
	parked, err := idx.GetJob(job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if parked.State.Terminal() || !parked.FinishedAt.IsZero() {
		t.Fatalf("drained job %+v, want non-terminal", parked)
	}

	// Next daemon: a fresh index replayed from the same store.
	idx2, err := OpenStoreIndex(st, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := NewManager(ManagerConfig{Store: st, Index: idx2, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Replayed() != 1 {
		t.Fatalf("replayed %d jobs, want 1", m2.Replayed())
	}
	resumed := waitJob(t, idx2, job.ID)
	if resumed.State != StateDone {
		t.Fatalf("resumed job ended %s (error %q)", resumed.State, resumed.Error)
	}
	if resumed.SnapshotRef != ctlDone.SnapshotRef {
		t.Fatalf("resumed snapshot %.12s != control %.12s — restart not bit-identical",
			resumed.SnapshotRef, ctlDone.SnapshotRef)
	}
}
