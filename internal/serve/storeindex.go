package serve

import (
	"fmt"
	"sync"

	"greem/internal/store"
)

// StoreIndex is the durable Index: an in-memory Mem for queries, with every
// durable mutation journaled to the content-addressed store before (or
// alongside) the in-memory apply. Opening it replays the journal, so a
// restarted daemon sees every job it ever acknowledged.
//
// Durability tiers differ by what the record protects:
//
//   - CreateJob journals first and fails the submit if the append fails —
//     an acknowledged job must never be lost, so the ack is gated on the
//     journal.
//   - UpdateJob journals only durable-field changes (state transitions,
//     checkpoint progress, the final snapshot ref, errors, restart counts);
//     per-step progress and telemetry stay in memory only. A failed append
//     degrades: the in-memory index stays current, Healthy() turns sticky-
//     unhealthy (readiness drops), and the checkpoint store — which the
//     runner consults directly on resume — remains the recovery source.
//   - PutProduct journals best-effort: products are recomputable caches.
type StoreIndex struct {
	mem     *Mem
	journal *Journal
	logf    func(string, ...any)

	mu       sync.Mutex // serializes journaled mutations
	lastErr  error      // sticky journal degradation, cleared on next success
	replayed int
}

// OpenStoreIndex opens (replaying if non-empty) the durable index in st.
func OpenStoreIndex(st store.Store, logf func(string, ...any)) (*StoreIndex, error) {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	j, err := OpenJournal(st)
	if err != nil {
		return nil, err
	}
	x := &StoreIndex{mem: NewMem(), journal: j, logf: logf}
	err = j.Replay(func(rec journalRecord) {
		switch rec.Kind {
		case "job":
			if rec.Job != nil {
				x.mem.restoreJob(*rec.Job)
				x.replayed++
			}
		case "product":
			x.mem.restoreProduct(rec.JobID, rec.Key, rec.Ref)
		}
	})
	if err != nil {
		return nil, err
	}
	return x, nil
}

// NextID issues a process-unique job ID, continuing past replayed IDs.
func (x *StoreIndex) NextID() string { return x.mem.NextID() }

// Healthy returns nil when the journal is keeping up, or the sticky error
// from the most recent failed append. The daemon's readiness probe reports
// it: a degraded journal means acks are no longer crash-durable.
func (x *StoreIndex) Healthy() error {
	x.mu.Lock()
	defer x.mu.Unlock()
	return x.lastErr
}

// Records returns how many journal records have been committed.
func (x *StoreIndex) Records() uint64 { return x.journal.Seq() }

func (x *StoreIndex) degrade(err error) {
	if x.lastErr == nil {
		x.logf("serve: journal degraded: %v", err)
	}
	x.lastErr = err
}

func (x *StoreIndex) recovered() {
	if x.lastErr != nil {
		x.logf("serve: journal recovered")
		x.lastErr = nil
	}
}

func (x *StoreIndex) CreateJob(info JobInfo) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if _, err := x.mem.GetJob(info.ID); err == nil {
		return fmt.Errorf("serve: job %s already exists", info.ID)
	}
	// Journal before the in-memory apply: the caller acks the submit only
	// after this returns, and an acked job must survive a crash.
	if err := x.journal.Append(journalRecord{Kind: "job", Job: &info}); err != nil {
		x.degrade(err)
		return err
	}
	x.recovered()
	return x.mem.CreateJob(info)
}

// durableChanged reports whether a and b differ in any journaled field.
func durableChanged(a, b JobInfo) bool {
	return a.State != b.State ||
		a.LastCheckpointStep != b.LastCheckpointStep ||
		a.SnapshotRef != b.SnapshotRef ||
		a.Error != b.Error ||
		a.Restarts != b.Restarts
}

func (x *StoreIndex) UpdateJob(id string, mutate func(*JobInfo)) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	cur, err := x.mem.GetJob(id)
	if err != nil {
		return err
	}
	next := cur
	mutate(&next)
	next.ID = cur.ID // updates must not re-key a job
	if durableChanged(cur, next) {
		if err := x.journal.Append(journalRecord{Kind: "job", Job: &next}); err != nil {
			x.degrade(err) // degrade, don't lose the live update
		} else {
			x.recovered()
		}
	}
	return x.mem.UpdateJob(id, func(j *JobInfo) { *j = next })
}

func (x *StoreIndex) GetJob(id string) (JobInfo, error) { return x.mem.GetJob(id) }
func (x *StoreIndex) ListJobs() ([]JobInfo, error)      { return x.mem.ListJobs() }

func (x *StoreIndex) PutProduct(jobID, key string, ref store.Ref) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if err := x.journal.Append(journalRecord{Kind: "product", JobID: jobID, Key: key, Ref: ref}); err != nil {
		x.degrade(err) // products are recomputable; never fail the cache fill
	} else {
		x.recovered()
	}
	return x.mem.PutProduct(jobID, key, ref)
}

func (x *StoreIndex) GetProduct(jobID, key string) (store.Ref, error) {
	return x.mem.GetProduct(jobID, key)
}

func (x *StoreIndex) ListProducts(jobID string) ([]string, error) {
	return x.mem.ListProducts(jobID)
}
