package serve

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"greem/internal/store"
)

// ErrUnknownJob reports a job ID the index has no record of.
var ErrUnknownJob = errors.New("serve: unknown job")

// Index is the run/catalog index: the queryable record of jobs and of the
// products cached for each. It is deliberately database-shaped — every
// method is a single keyed read or write with no cross-call state — so a
// SQL- or KV-backed implementation can replace Mem without touching the
// manager or the HTTP layer. Implementations must be safe for concurrent
// use.
type Index interface {
	// CreateJob records a new job; the ID must be fresh.
	CreateJob(info JobInfo) error
	// UpdateJob applies mutate to the stored record under the index's
	// lock; mutate must not block.
	UpdateJob(id string, mutate func(*JobInfo)) error
	// GetJob returns a copy of the record, or ErrUnknownJob.
	GetJob(id string) (JobInfo, error)
	// ListJobs returns copies of every record, newest submission first.
	ListJobs() ([]JobInfo, error)

	// PutProduct records that the product with the given canonical key is
	// cached at ref for the job.
	PutProduct(jobID, key string, ref store.Ref) error
	// GetProduct returns the cached ref, or ErrUnknownJob /
	// store.ErrNotFound.
	GetProduct(jobID, key string) (store.Ref, error)
	// ListProducts returns the job's cached product keys, sorted.
	ListProducts(jobID string) ([]string, error)
}

// Mem is the in-memory Index used by tests and the single-node daemon.
type Mem struct {
	mu       sync.RWMutex
	seq      int64
	jobs     map[string]*JobInfo
	order    []string // submission order
	products map[string]map[string]store.Ref
}

// NewMem returns an empty in-memory index.
func NewMem() *Mem {
	return &Mem{jobs: make(map[string]*JobInfo), products: make(map[string]map[string]store.Ref)}
}

// NextID issues a process-unique job ID.
func (m *Mem) NextID() string {
	m.mu.Lock()
	m.seq++
	id := fmt.Sprintf("run-%06d", m.seq)
	m.mu.Unlock()
	return id
}

// restoreJob inserts or replaces a job record during journal replay,
// preserving first-appearance order (journal order == submission order),
// and advances the ID sequence past any run-%06d-shaped ID so NextID never
// reissues a replayed job's ID.
func (m *Mem) restoreJob(info JobInfo) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[info.ID]; !ok {
		m.order = append(m.order, info.ID)
	}
	cp := info
	m.jobs[info.ID] = &cp
	var n int64
	if _, err := fmt.Sscanf(info.ID, "run-%d", &n); err == nil && n > m.seq {
		m.seq = n
	}
}

// restoreProduct re-records a cached product during journal replay. A
// product whose job record was lost is dropped — products are recomputable
// caches, never the source of truth.
func (m *Mem) restoreProduct(jobID, key string, ref store.Ref) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[jobID]; !ok {
		return
	}
	p := m.products[jobID]
	if p == nil {
		p = make(map[string]store.Ref)
		m.products[jobID] = p
	}
	p[key] = ref
}

func (m *Mem) CreateJob(info JobInfo) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[info.ID]; ok {
		return fmt.Errorf("serve: job %s already exists", info.ID)
	}
	cp := info
	m.jobs[info.ID] = &cp
	m.order = append(m.order, info.ID)
	return nil
}

func (m *Mem) UpdateJob(id string, mutate func(*JobInfo)) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	mutate(j)
	return nil
}

func (m *Mem) GetJob(id string) (JobInfo, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	j, ok := m.jobs[id]
	if !ok {
		return JobInfo{}, fmt.Errorf("%w: %s", ErrUnknownJob, id)
	}
	return *j, nil
}

func (m *Mem) ListJobs() ([]JobInfo, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]JobInfo, 0, len(m.order))
	for i := len(m.order) - 1; i >= 0; i-- {
		out = append(out, *m.jobs[m.order[i]])
	}
	return out, nil
}

func (m *Mem) PutProduct(jobID, key string, ref store.Ref) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.jobs[jobID]; !ok {
		return fmt.Errorf("%w: %s", ErrUnknownJob, jobID)
	}
	p := m.products[jobID]
	if p == nil {
		p = make(map[string]store.Ref)
		m.products[jobID] = p
	}
	p[key] = ref
	return nil
}

func (m *Mem) GetProduct(jobID, key string) (store.Ref, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, ok := m.jobs[jobID]; !ok {
		return "", fmt.Errorf("%w: %s", ErrUnknownJob, jobID)
	}
	ref, ok := m.products[jobID][key]
	if !ok {
		return "", fmt.Errorf("product %q: %w", key, store.ErrNotFound)
	}
	return ref, nil
}

func (m *Mem) ListProducts(jobID string) ([]string, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if _, ok := m.jobs[jobID]; !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownJob, jobID)
	}
	keys := make([]string, 0, len(m.products[jobID]))
	for k := range m.products[jobID] {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys, nil
}
