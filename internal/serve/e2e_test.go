package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"greem/internal/analysis"
	"greem/internal/snapshot"
	"greem/internal/store"
)

// gatedGet passes store calls through, except that while armed the first
// Get parks until released — so a test can hold a product computation's
// single store read open while a herd of identical requests piles up.
type gatedGet struct {
	store.Store
	mu      sync.Mutex
	armed   bool
	entered chan struct{}
	release chan struct{}
}

func (g *gatedGet) Get(ref store.Ref) ([]byte, error) {
	g.mu.Lock()
	armed := g.armed
	g.mu.Unlock()
	if armed {
		g.entered <- struct{}{}
		<-g.release
	}
	return g.Store.Get(ref)
}

func (g *gatedGet) arm() {
	g.mu.Lock()
	g.armed = true
	g.mu.Unlock()
}

func (g *gatedGet) disarm() {
	g.mu.Lock()
	g.armed = false
	g.mu.Unlock()
}

type testDaemon struct {
	srv      *httptest.Server
	mem      *store.Mem
	counting *store.Counting
	gate     *gatedGet
	idx      *Mem
	mgr      *Manager
}

func startDaemon(t *testing.T) *testDaemon {
	t.Helper()
	mem := store.NewMem()
	gate := &gatedGet{Store: mem, entered: make(chan struct{}, 256), release: make(chan struct{})}
	counting := store.NewCounting(gate)
	idx := NewMem()
	mgr, err := NewManager(ManagerConfig{Store: counting, Index: idx, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(mgr.Close)
	srv := httptest.NewServer(NewServer(ServerConfig{Manager: mgr, Index: idx, Store: counting}).Handler())
	t.Cleanup(srv.Close)
	return &testDaemon{srv: srv, mem: mem, counting: counting, gate: gate, idx: idx, mgr: mgr}
}

func (d *testDaemon) get(t *testing.T, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(d.srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", path, err)
	}
	return resp.StatusCode, body
}

func (d *testDaemon) submit(t *testing.T, spec JobSpec) JobInfo {
	t.Helper()
	b, _ := json.Marshal(spec)
	resp, err := http.Post(d.srv.URL+"/runs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST /runs: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /runs: status %d: %s", resp.StatusCode, body)
	}
	var info JobInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("POST /runs: decode: %v", err)
	}
	return info
}

// pollDone watches the status endpoint (the way a client would) until the
// job terminates, checking that progress is monotone along the way.
func (d *testDaemon) pollDone(t *testing.T, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	lastStep := -1
	for time.Now().Before(deadline) {
		code, body := d.get(t, "/runs/"+id)
		if code != http.StatusOK {
			t.Fatalf("GET /runs/%s: status %d: %s", id, code, body)
		}
		var job JobInfo
		if err := json.Unmarshal(body, &job); err != nil {
			t.Fatalf("GET /runs/%s: decode: %v", id, err)
		}
		if job.Step < lastStep {
			t.Fatalf("progress went backwards: %d after %d", job.Step, lastStep)
		}
		lastStep = job.Step
		if job.State.Terminal() {
			return job
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return JobInfo{}
}

// TestServeE2E is the acceptance path: submit a small run over HTTP, watch
// it to completion, fetch every product kind, scrape metrics, and check the
// integrity endpoint accepts the untampered run and rejects it after a
// single flipped bit in the store.
func TestServeE2E(t *testing.T) {
	d := startDaemon(t)
	spec := JobSpec{NP: 4, Ranks: 2, Steps: 3, Seed: 42, CheckpointEvery: 1}
	info := d.submit(t, spec)

	job := d.pollDone(t, info.ID)
	if job.State != StateDone {
		t.Fatalf("job state %s (error %q), want done", job.State, job.Error)
	}
	if job.Step != 3 || job.LastCheckpointStep != 3 {
		t.Fatalf("progress step=%d ckpt=%d, want 3/3", job.Step, job.LastCheckpointStep)
	}
	if job.SnapshotRef == "" || len(job.Telemetry) == 0 {
		t.Fatalf("missing snapshot ref or telemetry: ref=%q telemetry=%d", job.SnapshotRef, len(job.Telemetry))
	}

	wantN := spec.NP * spec.NP * spec.NP

	// Full snapshot: decodes, right count, IDs in canonical order.
	code, body := d.get(t, "/runs/"+info.ID+"/products/snapshot")
	if code != http.StatusOK {
		t.Fatalf("snapshot product: status %d: %s", code, body)
	}
	hdr, parts, err := snapshot.Decode(body)
	if err != nil {
		t.Fatalf("snapshot product: %v", err)
	}
	if len(parts) != wantN || hdr.StepIdx != 3 {
		t.Fatalf("snapshot: %d particles at step %d, want %d at 3", len(parts), hdr.StepIdx, wantN)
	}
	for i := 1; i < len(parts); i++ {
		if parts[i].ID <= parts[i-1].ID {
			t.Fatalf("snapshot particle IDs not ascending at %d", i)
		}
	}

	// Index slice of the snapshot.
	code, body = d.get(t, "/runs/"+info.ID+"/products/snapshot?lo=8&hi=16")
	if code != http.StatusOK {
		t.Fatalf("snapshot slice: status %d: %s", code, body)
	}
	if _, sliced, err := snapshot.Decode(body); err != nil || len(sliced) != 8 {
		t.Fatalf("snapshot slice: n=%d err=%v", len(sliced), err)
	}

	// Halo catalog: canonical JSON that round-trips.
	code, body = d.get(t, "/runs/"+info.ID+"/products/halos?b=0.2&min_size=2")
	if code != http.StatusOK {
		t.Fatalf("halos product: status %d: %s", code, body)
	}
	cat, err := analysis.DecodeCatalog(body)
	if err != nil {
		t.Fatalf("halos product: %v", err)
	}
	if cat.MinSize != 2 || cat.Step != 3 {
		t.Fatalf("halos metadata: %+v", cat)
	}

	// Power spectrum.
	code, body = d.get(t, "/runs/"+info.ID+"/products/pk?nbins=8")
	if code != http.StatusOK {
		t.Fatalf("pk product: status %d: %s", code, body)
	}
	pk, err := analysis.DecodePower(body)
	if err != nil {
		t.Fatalf("pk product: %v", err)
	}
	if pk.NBins != 8 || len(pk.K) == 0 {
		t.Fatalf("pk metadata: nbins=%d k=%d", pk.NBins, len(pk.K))
	}

	// Density projection renders a PGM.
	code, body = d.get(t, "/runs/"+info.ID+"/products/density?n=16")
	if code != http.StatusOK || !bytes.HasPrefix(body, []byte("P2")) {
		t.Fatalf("density product: status %d, prefix %q", code, body[:min(len(body), 8)])
	}

	// Identical request twice returns identical bytes (deterministic
	// encoding + content-addressed cache).
	_, again := d.get(t, "/runs/"+info.ID+"/products/halos?b=0.2&min_size=2")
	cat2, err := analysis.DecodeCatalog(again)
	if err != nil {
		t.Fatalf("halos re-fetch: %v", err)
	}
	b1, _ := analysis.EncodeCatalog(cat)
	b2, _ := analysis.EncodeCatalog(cat2)
	if !bytes.Equal(b1, b2) {
		t.Fatal("halo catalog not reproducible across fetches")
	}

	// Product listing shows the cached keys.
	code, body = d.get(t, "/runs/"+info.ID+"/products")
	if code != http.StatusOK || !strings.Contains(string(body), "halos-b0.2-min2") {
		t.Fatalf("product list: status %d: %s", code, body)
	}

	// Metrics: server counters plus per-job sim telemetry.
	code, body = d.get(t, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	metrics := string(body)
	for _, want := range []string{
		"greemd_http_requests_total",
		`job="` + info.ID + `"`,
		"greem_tree_interactions_total",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Integrity: the untampered run verifies...
	code, body = d.get(t, "/runs/"+info.ID+"/integrity")
	if code != http.StatusOK {
		t.Fatalf("integrity: status %d: %s", code, body)
	}
	var rep IntegrityReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if !rep.OK || rep.BlobsVerified == 0 || len(rep.CheckpointSteps) != 3 {
		t.Fatalf("integrity report: %+v", rep)
	}

	// ...and one flipped bit in one checkpoint shard fails it.
	names, err := d.counting.List(runPrefix(info.ID))
	if err != nil {
		t.Fatal(err)
	}
	var shard store.Ref
	for _, n := range names {
		if strings.Contains(n, "shard_") {
			ref, err := d.counting.Resolve(n)
			if err != nil {
				t.Fatal(err)
			}
			shard = ref
			break
		}
	}
	if shard == "" {
		t.Fatalf("no shard blob among %v", names)
	}
	if err := d.mem.Mutate(shard, func(b []byte) { b[37] ^= 0x01 }); err != nil {
		t.Fatal(err)
	}
	code, body = d.get(t, "/runs/"+info.ID+"/integrity")
	if code != http.StatusConflict {
		t.Fatalf("integrity after tamper: status %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.OK || rep.Error == "" {
		t.Fatalf("tampered report: %+v", rep)
	}

	// Unknown run and unknown product kind fail cleanly.
	if code, _ := d.get(t, "/runs/nope"); code != http.StatusNotFound {
		t.Fatalf("unknown run: status %d", code)
	}
	if code, _ := d.get(t, "/runs/"+info.ID+"/products/tarot"); code != http.StatusBadRequest {
		t.Fatalf("unknown product kind: status %d", code)
	}
}

// TestServeBatchingSingleStoreRead holds the store's Get open and fires
// 100 identical uncached product requests: the singleflight must collapse
// them onto the leader so exactly one store read happens.
func TestServeBatchingSingleStoreRead(t *testing.T) {
	d := startDaemon(t)
	info := d.submit(t, JobSpec{NP: 4, Ranks: 2, Steps: 2, Seed: 7})
	job := d.pollDone(t, info.ID)
	if job.State != StateDone {
		t.Fatalf("job state %s (error %q)", job.State, job.Error)
	}

	const herd = 100
	base := d.counting.Gets()
	d.gate.arm()

	type result struct {
		code int
		body []byte
	}
	results := make([]result, herd)
	var wg sync.WaitGroup
	for i := 0; i < herd; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := d.get(t, "/runs/"+info.ID+"/products/snapshot?lo=0&hi=32")
			results[i] = result{code, body}
		}(i)
	}

	// Wait for the leader to reach the store, let the rest of the herd
	// pile up behind the singleflight, then release.
	select {
	case <-d.gate.entered:
	case <-time.After(30 * time.Second):
		t.Fatal("no request ever reached the store")
	}
	time.Sleep(300 * time.Millisecond)
	d.gate.disarm()
	close(d.gate.release)
	wg.Wait()

	reads := d.counting.Gets() - base
	if reads != 1 {
		t.Fatalf("herd of %d caused %d store reads, want exactly 1", herd, reads)
	}
	for i, r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, r.code, r.body)
		}
		if !bytes.Equal(r.body, results[0].body) {
			t.Fatalf("request %d returned different bytes", i)
		}
	}
	if _, parts, err := snapshot.Decode(results[0].body); err != nil || len(parts) != 32 {
		t.Fatalf("shared product: n=%d err=%v", len(parts), err)
	}
}

// TestServeRestartOnAbort kills a rank mid-run and checks the job restarts
// from its checkpoint, completes, and lands on the same content address a
// clean run with the same seed produces.
func TestServeRestartOnAbort(t *testing.T) {
	d := startDaemon(t)
	spec := JobSpec{NP: 4, Ranks: 2, Steps: 3, Seed: 9, CheckpointEvery: 1}

	clean := d.pollDone(t, d.submit(t, spec).ID)
	if clean.State != StateDone {
		t.Fatalf("clean run: %s (%s)", clean.State, clean.Error)
	}

	spec.FailRankAtStep = 2
	killed := d.pollDone(t, d.submit(t, spec).ID)
	if killed.State != StateDone {
		t.Fatalf("killed run: %s (%s)", killed.State, killed.Error)
	}
	if killed.Restarts != 1 {
		t.Fatalf("killed run restarts = %d, want 1", killed.Restarts)
	}
	if killed.SnapshotRef != clean.SnapshotRef {
		t.Fatalf("restarted run diverged: %s vs clean %s", killed.SnapshotRef, clean.SnapshotRef)
	}

	// Both runs' full audit still passes — the abort left no half-written
	// garbage behind the names.
	code, body := d.get(t, "/runs/"+killed.ID+"/integrity")
	if code != http.StatusOK {
		t.Fatalf("killed-run integrity: status %d: %s", code, body)
	}
}
