package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"greem/internal/store"
)

// ErrShuttingDown reports a submission against a closing manager.
var ErrShuttingDown = errors.New("serve: manager is shutting down")

// ManagerConfig wires a Manager.
type ManagerConfig struct {
	Store store.Store
	Index Index
	// Runner executes jobs; nil ⇒ SimRunner.
	Runner Runner
	// QueueDepth bounds the accepted-but-unstarted backlog (0 ⇒ 64);
	// submissions beyond it are rejected rather than buffered unboundedly.
	QueueDepth int
	// NewID issues job IDs; nil ⇒ the Index's NextID when it is a *Mem,
	// else a sequence counter.
	NewID func() string
	// Logf receives job lifecycle diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Manager owns the job lifecycle: Submit validates and queues, a single
// executor goroutine drains the queue (simulation jobs are CPU-bound
// whole-machine affairs — running them one at a time is the point, the
// concurrency budget belongs to the ranks inside a job), and every state
// transition lands in the Index where the HTTP layer reads it.
type Manager struct {
	store  store.Store
	index  Index
	runner Runner
	logf   func(string, ...any)
	newID  func() string

	queue  chan string
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu     sync.Mutex
	seq    int64
	closed bool
}

// NewManager starts a manager and its executor goroutine.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Store == nil || cfg.Index == nil {
		return nil, fmt.Errorf("serve: manager needs a store and an index")
	}
	if cfg.Runner == nil {
		cfg.Runner = SimRunner
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		store: cfg.Store, index: cfg.Index, runner: cfg.Runner, logf: cfg.Logf,
		newID: cfg.NewID,
		queue: make(chan string, cfg.QueueDepth),
		ctx:   ctx, cancel: cancel,
	}
	if m.newID == nil {
		if mem, ok := cfg.Index.(*Mem); ok {
			m.newID = mem.NextID
		} else {
			m.newID = func() string {
				m.mu.Lock()
				m.seq++
				id := fmt.Sprintf("run-%06d", m.seq)
				m.mu.Unlock()
				return id
			}
		}
	}
	m.wg.Add(1)
	go m.executor()
	return m, nil
}

// Submit validates spec, records the job as queued and enqueues it.
func (m *Manager) Submit(spec JobSpec) (JobInfo, error) {
	if err := spec.Validate(); err != nil {
		return JobInfo{}, err
	}
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return JobInfo{}, ErrShuttingDown
	}
	info := JobInfo{
		ID: m.newID(), Spec: spec, State: StateQueued,
		TotalSteps: spec.Steps, SubmittedAt: time.Now().UTC(),
	}
	if err := m.index.CreateJob(info); err != nil {
		return JobInfo{}, err
	}
	select {
	case m.queue <- info.ID:
	default:
		m.index.UpdateJob(info.ID, func(j *JobInfo) {
			j.State = StateFailed
			j.Error = "queue full"
			j.FinishedAt = time.Now().UTC()
		})
		return JobInfo{}, fmt.Errorf("serve: queue full (%d jobs waiting)", cap(m.queue))
	}
	m.logf("serve: job %s queued (np=%d ranks=%d steps=%d)", info.ID, spec.NP, spec.Ranks, spec.Steps)
	return info, nil
}

// Close stops accepting jobs, cancels the running one and waits for the
// executor to drain.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	m.mu.Unlock()
	close(m.queue)
	m.cancel()
	m.wg.Wait()
}

func (m *Manager) executor() {
	defer m.wg.Done()
	for id := range m.queue {
		if m.ctx.Err() != nil {
			m.index.UpdateJob(id, func(j *JobInfo) {
				j.State = StateFailed
				j.Error = "daemon shut down before the job started"
				j.FinishedAt = time.Now().UTC()
			})
			continue
		}
		m.runJob(id)
	}
}

func (m *Manager) runJob(id string) {
	info, err := m.index.GetJob(id)
	if err != nil {
		m.logf("serve: job %s vanished from the index: %v", id, err)
		return
	}
	m.index.UpdateJob(id, func(j *JobInfo) {
		j.State = StateRunning
		j.StartedAt = time.Now().UTC()
	})
	m.logf("serve: job %s running", id)

	update := func(u RunUpdate) {
		m.index.UpdateJob(id, func(j *JobInfo) {
			if u.Restart {
				j.Restarts++
				return
			}
			j.Step = u.Step
			j.TotalSteps = u.TotalSteps
			j.Time = u.Time
			if u.Checkpointed {
				j.LastCheckpointStep = u.Step
				if !j.State.Terminal() {
					j.State = StateCheckpointed
				}
			}
			if u.SnapshotRef != "" {
				j.SnapshotRef = u.SnapshotRef
			}
			if u.Telemetry != nil {
				j.Telemetry = u.Telemetry
			}
		})
	}

	err = m.runner(m.ctx, id, info.Spec, m.store, update)
	m.index.UpdateJob(id, func(j *JobInfo) {
		j.FinishedAt = time.Now().UTC()
		if err != nil {
			j.State = StateFailed
			j.Error = err.Error()
		} else {
			j.State = StateDone
		}
	})
	if err != nil {
		m.logf("serve: job %s failed: %v", id, err)
	} else {
		m.logf("serve: job %s done", id)
	}
}
