package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"greem/internal/store"
)

// ErrShuttingDown reports a submission against a closing manager.
var ErrShuttingDown = errors.New("serve: manager is shutting down")

// ErrQueueFull reports a submission shed because the admission queue is at
// capacity. It is load shedding, not failure: the client should back off
// and resubmit (the HTTP layer maps it to 429 + Retry-After).
var ErrQueueFull = errors.New("serve: queue full")

// ErrDrained is returned by a Runner that stopped cooperatively at a drain
// request after committing a checkpoint. The manager leaves the job
// non-terminal, so the next daemon replays and resumes it.
var ErrDrained = errors.New("serve: job drained")

// drainKey carries the manager's drain signal into the runner's context.
type drainKey struct{}

// DrainRequested reports whether the service wants the running job to
// checkpoint and stop at the next step boundary. Runners poll it between
// steps; it is carried by context value so the Runner signature stays a
// plain (ctx, id, spec, store, update).
func DrainRequested(ctx context.Context) bool {
	f, _ := ctx.Value(drainKey{}).(func() bool)
	return f != nil && f()
}

// ManagerConfig wires a Manager.
type ManagerConfig struct {
	Store store.Store
	Index Index
	// Runner executes jobs; nil ⇒ SimRunner.
	Runner Runner
	// QueueDepth bounds the accepted-but-unstarted backlog (0 ⇒ 64);
	// submissions beyond it are rejected rather than buffered unboundedly.
	QueueDepth int
	// NewID issues job IDs; nil ⇒ the Index's NextID when it is a *Mem,
	// else a sequence counter.
	NewID func() string
	// Logf receives job lifecycle diagnostics; nil discards them.
	Logf func(format string, args ...any)
}

// Manager owns the job lifecycle: Submit validates and queues, a single
// executor goroutine drains the queue (simulation jobs are CPU-bound
// whole-machine affairs — running them one at a time is the point, the
// concurrency budget belongs to the ranks inside a job), and every state
// transition lands in the Index where the HTTP layer reads it.
type Manager struct {
	store  store.Store
	index  Index
	runner Runner
	logf   func(string, ...any)
	newID  func() string

	queue  chan string
	ctx    context.Context
	runCtx context.Context // ctx + the drain signal, handed to runners
	cancel context.CancelFunc
	wg     sync.WaitGroup

	draining  atomic.Bool
	replayed  int
	queueOnce sync.Once

	mu     sync.Mutex
	seq    int64
	closed bool
}

// idIssuer is implemented by indexes that issue job IDs (Mem, StoreIndex).
type idIssuer interface{ NextID() string }

// NewManager starts a manager and its executor goroutine. When the index
// already holds jobs — a durable StoreIndex replayed from the journal —
// every non-terminal job is re-enqueued, oldest first, before the executor
// starts: a job the previous daemon acknowledged (or was running when it
// died) resumes from its newest checkpoint without operator action.
func NewManager(cfg ManagerConfig) (*Manager, error) {
	if cfg.Store == nil || cfg.Index == nil {
		return nil, fmt.Errorf("serve: manager needs a store and an index")
	}
	if cfg.Runner == nil {
		cfg.Runner = SimRunner
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	jobs, err := cfg.Index.ListJobs() // newest first
	if err != nil {
		return nil, fmt.Errorf("serve: manager replay scan: %w", err)
	}
	var replay []string
	for i := len(jobs) - 1; i >= 0; i-- { // oldest first: preserve FIFO fairness
		if !jobs[i].State.Terminal() {
			replay = append(replay, jobs[i].ID)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	m := &Manager{
		store: cfg.Store, index: cfg.Index, runner: cfg.Runner, logf: cfg.Logf,
		newID: cfg.NewID,
		// Replayed jobs ride on top of the configured depth so a full
		// backlog from the previous life cannot make replay itself shed.
		queue: make(chan string, cfg.QueueDepth+len(replay)),
		ctx:   ctx, cancel: cancel,
		replayed: len(replay),
	}
	m.runCtx = context.WithValue(ctx, drainKey{}, func() bool { return m.draining.Load() })
	if m.newID == nil {
		if iss, ok := cfg.Index.(idIssuer); ok {
			m.newID = iss.NextID
		} else {
			m.newID = func() string {
				m.mu.Lock()
				m.seq++
				id := fmt.Sprintf("run-%06d", m.seq)
				m.mu.Unlock()
				return id
			}
		}
	}
	for _, id := range replay {
		m.queue <- id
		m.logf("serve: job %s replayed from the journal", id)
	}
	m.wg.Add(1)
	go m.executor()
	return m, nil
}

// Replayed returns how many non-terminal jobs were re-enqueued at startup
// (the greem_jobs_replayed_total metric).
func (m *Manager) Replayed() int { return m.replayed }

// Draining reports whether a graceful drain is in progress.
func (m *Manager) Draining() bool { return m.draining.Load() }

// Accepting reports whether Submit would be admitted (modulo queue space).
func (m *Manager) Accepting() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return !m.closed
}

// QueueLen and QueueCap expose admission-queue pressure for readiness.
func (m *Manager) QueueLen() int { return len(m.queue) }
func (m *Manager) QueueCap() int { return cap(m.queue) }

// Submit validates spec, records the job as queued and enqueues it.
func (m *Manager) Submit(spec JobSpec) (JobInfo, error) {
	if err := spec.Validate(); err != nil {
		return JobInfo{}, err
	}
	m.mu.Lock()
	closed := m.closed
	m.mu.Unlock()
	if closed {
		return JobInfo{}, ErrShuttingDown
	}
	// Shed BEFORE creating the record: with a durable index, CreateJob is
	// the acknowledgement — journaling a job only to fail it on a full
	// queue would persist an ack the service never honored.
	if len(m.queue) >= cap(m.queue) {
		return JobInfo{}, fmt.Errorf("%w (%d jobs waiting)", ErrQueueFull, len(m.queue))
	}
	info := JobInfo{
		ID: m.newID(), Spec: spec, State: StateQueued,
		TotalSteps: spec.Steps, SubmittedAt: time.Now().UTC(),
	}
	if err := m.index.CreateJob(info); err != nil {
		return JobInfo{}, err
	}
	select {
	case m.queue <- info.ID:
	default:
		// Lost the race for the last slot; fail the record honestly.
		m.index.UpdateJob(info.ID, func(j *JobInfo) {
			j.State = StateFailed
			j.Error = "queue full"
			j.FinishedAt = time.Now().UTC()
		})
		return JobInfo{}, fmt.Errorf("%w (%d jobs waiting)", ErrQueueFull, cap(m.queue))
	}
	m.logf("serve: job %s queued (np=%d ranks=%d steps=%d)", info.ID, spec.NP, spec.Ranks, spec.Steps)
	return info, nil
}

// stopAccepting makes Submit reject and lets the executor run out of queue.
func (m *Manager) stopAccepting() {
	m.mu.Lock()
	m.closed = true
	m.mu.Unlock()
	m.queueOnce.Do(func() { close(m.queue) })
}

// Close stops accepting jobs, cancels the running one and waits for the
// executor to drain.
func (m *Manager) Close() {
	m.stopAccepting()
	m.cancel()
	m.wg.Wait()
}

// Drain is the graceful counterpart of Close: stop accepting, ask the
// running job to checkpoint and stop at its next step boundary, and leave
// everything unfinished in a non-terminal state for the next daemon to
// replay. Returns true if the executor drained within timeout; on timeout
// the running job is hard-cancelled (still non-terminal — the drain intent
// stands) and Drain returns false.
func (m *Manager) Drain(timeout time.Duration) bool {
	m.draining.Store(true)
	m.stopAccepting()
	done := make(chan struct{})
	go func() { m.wg.Wait(); close(done) }()
	select {
	case <-done:
		return true
	case <-time.After(timeout):
		m.logf("serve: drain timed out after %v; cancelling the running job", timeout)
		m.cancel()
		<-done
		return false
	}
}

func (m *Manager) executor() {
	defer m.wg.Done()
	for id := range m.queue {
		if m.draining.Load() {
			// Leave the job queued in the index; the next daemon replays it.
			m.logf("serve: job %s left queued for the next daemon", id)
			continue
		}
		if m.ctx.Err() != nil {
			m.index.UpdateJob(id, func(j *JobInfo) {
				j.State = StateFailed
				j.Error = "daemon shut down before the job started"
				j.FinishedAt = time.Now().UTC()
			})
			continue
		}
		m.runJob(id)
	}
}

func (m *Manager) runJob(id string) {
	info, err := m.index.GetJob(id)
	if err != nil {
		m.logf("serve: job %s vanished from the index: %v", id, err)
		return
	}
	m.index.UpdateJob(id, func(j *JobInfo) {
		j.State = StateRunning
		j.StartedAt = time.Now().UTC()
	})
	m.logf("serve: job %s running", id)

	update := func(u RunUpdate) {
		// Register in-situ products first, so a reader who sees the step
		// advance can already resolve the product refs for that step.
		for k, ref := range u.Products {
			if err := m.index.PutProduct(id, k, ref); err != nil {
				m.logf("serve: job %s: register in-situ product %s: %v", id, k, err)
			}
		}
		m.index.UpdateJob(id, func(j *JobInfo) {
			if u.Restart {
				j.Restarts++
				return
			}
			j.Step = u.Step
			j.TotalSteps = u.TotalSteps
			j.Time = u.Time
			if u.Checkpointed {
				j.LastCheckpointStep = u.Step
				if !j.State.Terminal() {
					j.State = StateCheckpointed
				}
			}
			if u.SnapshotRef != "" {
				j.SnapshotRef = u.SnapshotRef
			}
			if u.Telemetry != nil {
				j.Telemetry = u.Telemetry
			}
		})
	}

	err = m.runner(m.runCtx, id, info.Spec, m.store, update)
	if errors.Is(err, ErrDrained) || (m.draining.Load() && errors.Is(err, context.Canceled)) {
		// The job stopped because the daemon is going away, not because it
		// failed. Leave it non-terminal (running/checkpointed) with no
		// FinishedAt: the journal replays it and the runner resumes from
		// the newest checkpoint.
		m.logf("serve: job %s drained (resumable at next start)", id)
		return
	}
	m.index.UpdateJob(id, func(j *JobInfo) {
		j.FinishedAt = time.Now().UTC()
		if err != nil {
			j.State = StateFailed
			j.Error = err.Error()
		} else {
			j.State = StateDone
		}
	})
	if err != nil {
		m.logf("serve: job %s failed: %v", id, err)
	} else {
		m.logf("serve: job %s done", id)
	}
}
