package serve

import (
	"bytes"
	"testing"
)

// TestServeInSituProductsPreferred is the regression gate for the in-situ
// product plane: a job run with insitu_every registers its final-step
// catalog and spectrum as content-addressed products, the product plane
// serves them WITHOUT materialising the gathered particle set (no snapshot
// needed at all), and the served bytes are identical to what the gather-
// and-recompute fallback derives from the final snapshot.
func TestServeInSituProductsPreferred(t *testing.T) {
	d := startDaemon(t)
	spec := JobSpec{NP: 4, Ranks: 2, Steps: 2, Seed: 7, InSituEvery: 1}
	info := d.submit(t, spec)
	job := d.pollDone(t, info.ID)
	if job.State != StateDone {
		t.Fatalf("job state %s (error %q), want done", job.State, job.Error)
	}

	// The final-step emission registered the canonical product keys, both
	// the zero-request and the explicit-default spellings, plus step-stamped
	// streaming projections for every emission.
	for _, key := range []string{
		"halos-b0-min0", "halos-b0.2-min8",
		"pk-n0-b0", "pk-n8-b16", // NP=4 defaults the PM mesh to 8
		"density-step1", "density-step2",
	} {
		if _, err := d.idx.GetProduct(job.ID, key); err != nil {
			t.Fatalf("in-situ product %q not registered: %v", key, err)
		}
	}

	prods := NewProducts(d.counting, d.idx)
	served := map[string][]byte{}
	for kind, req := range map[string]ProductRequest{
		"halos": {Kind: ProductHalos},
		"pk":    {Kind: ProductPk},
	} {
		// Served without a snapshot: the in-situ ref short-circuits the
		// gather path entirely, so a job record with no SnapshotRef (a run
		// mid-flight, or a snapshot-less service tier) still serves.
		noSnap := job
		noSnap.SnapshotRef = ""
		b, _, err := prods.Get(noSnap, req)
		if err != nil {
			t.Fatalf("%s: serving the in-situ product required the snapshot: %v", kind, err)
		}
		served[kind] = b
	}

	// The gather fallback — a fresh index with no registered products, same
	// store — must recompute byte-identical data and land on the identical
	// content-addressed ref.
	freshIdx := NewMem()
	if err := freshIdx.CreateJob(job); err != nil {
		t.Fatal(err)
	}
	gatherProds := NewProducts(d.counting, freshIdx)
	for kind, req := range map[string]ProductRequest{
		"halos": {Kind: ProductHalos},
		"pk":    {Kind: ProductPk},
	} {
		key, err := req.Key()
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := gatherProds.Get(job, req)
		if err != nil {
			t.Fatalf("%s: gather fallback: %v", kind, err)
		}
		if !bytes.Equal(served[kind], b) {
			t.Fatalf("%s: in-situ and gather-path bytes differ:\nin-situ: %s\ngather:  %s", kind, served[kind], b)
		}
		insituRef, err := d.idx.GetProduct(job.ID, key)
		if err != nil {
			t.Fatal(err)
		}
		gatherRef, err := freshIdx.GetProduct(job.ID, key)
		if err != nil {
			t.Fatal(err)
		}
		if insituRef != gatherRef {
			t.Fatalf("%s: refs differ between paths: in-situ %v, gather %v", kind, insituRef, gatherRef)
		}
	}

	// The gather fallback still demands a snapshot when no product is
	// registered — the precondition moved, it did not vanish.
	noSnap := job
	noSnap.SnapshotRef = ""
	if _, _, err := NewProducts(d.counting, NewMem()).Get(noSnap, ProductRequest{Kind: ProductHalos}); err == nil {
		t.Fatal("gather path served without a snapshot")
	}
}
