package serve

import (
	"errors"
	"strings"
	"testing"
	"time"

	"greem/internal/store"
	"greem/internal/telemetry"
)

func TestStoreIndexPersistsAcrossReopen(t *testing.T) {
	st := store.NewMem()
	x, err := OpenStoreIndex(st, t.Logf)
	if err != nil {
		t.Fatal(err)
	}

	id := x.NextID()
	if err := x.CreateJob(JobInfo{ID: id, State: StateQueued,
		Spec:        JobSpec{NP: 8, Ranks: 2, Steps: 4, Seed: 1},
		SubmittedAt: time.Unix(100, 0).UTC()}); err != nil {
		t.Fatal(err)
	}
	snap := store.HashRef([]byte("final"))
	x.UpdateJob(id, func(j *JobInfo) { j.State = StateRunning; j.StartedAt = time.Unix(101, 0).UTC() })
	x.UpdateJob(id, func(j *JobInfo) { j.State = StateCheckpointed; j.LastCheckpointStep = 2 })
	x.UpdateJob(id, func(j *JobInfo) { j.State = StateDone; j.SnapshotRef = snap })
	x.PutProduct(id, "snapshot", snap)

	y, err := OpenStoreIndex(st, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	job, err := y.GetJob(id)
	if err != nil {
		t.Fatal(err)
	}
	if job.State != StateDone || job.LastCheckpointStep != 2 || job.SnapshotRef != snap {
		t.Fatalf("replayed job %+v", job)
	}
	if job.Spec.NP != 8 || !job.SubmittedAt.Equal(time.Unix(100, 0).UTC()) {
		t.Fatalf("replayed job lost spec/timestamps: %+v", job)
	}
	if ref, err := y.GetProduct(id, "snapshot"); err != nil || ref != snap {
		t.Fatalf("replayed product: %q, %v", ref, err)
	}
	// NextID continues past the replayed job rather than reissuing its ID.
	if next := y.NextID(); next == id {
		t.Fatalf("NextID reissued %s after replay", next)
	}
}

// TestStoreIndexJournalsOnlyDurableChanges: per-step progress and telemetry
// churn must not bloat the journal — only state transitions, checkpoint
// steps, snapshot refs, errors, and restart counts append records.
func TestStoreIndexJournalsOnlyDurableChanges(t *testing.T) {
	x, err := OpenStoreIndex(store.NewMem(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	id := x.NextID()
	x.CreateJob(JobInfo{ID: id, State: StateQueued})
	base := x.Records()
	for step := 1; step <= 50; step++ {
		s := step
		x.UpdateJob(id, func(j *JobInfo) {
			j.Step = s
			j.Time = float64(s)
			j.Telemetry = []telemetry.MetricSnapshot{{Name: "steps", Value: float64(s)}}
		})
	}
	if got := x.Records(); got != base {
		t.Fatalf("%d step-only updates appended %d journal records", 50, got-base)
	}
	x.UpdateJob(id, func(j *JobInfo) { j.State = StateRunning })
	if got := x.Records(); got != base+1 {
		t.Fatalf("state transition appended %d records, want 1", got-base)
	}
	// The in-memory view still has the live progress.
	job, _ := x.GetJob(id)
	if job.Step != 50 || job.State != StateRunning {
		t.Fatalf("live view %+v", job)
	}
}

// TestStoreIndexCreateFailsWhenJournalDown: an unjournaled job must not be
// acknowledged — CreateJob surfaces the append failure and Healthy() turns
// sticky-unhealthy until an append succeeds.
func TestStoreIndexCreateFailsWhenJournalDown(t *testing.T) {
	down := false
	st := store.NewFaulty(store.NewMem(), func(op store.Op, key string) error {
		if down && strings.HasPrefix(key, journalPrefix) {
			return errors.New("journal disk gone")
		}
		return nil
	})
	x, err := OpenStoreIndex(st, t.Logf)
	if err != nil {
		t.Fatal(err)
	}

	down = true
	if err := x.CreateJob(JobInfo{ID: "run-000001", State: StateQueued}); err == nil {
		t.Fatal("CreateJob acked without a journal record")
	}
	if _, err := x.GetJob("run-000001"); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unacked job visible in index: %v", err)
	}
	if x.Healthy() == nil {
		t.Fatal("Healthy() nil with the journal down")
	}

	down = false
	if err := x.CreateJob(JobInfo{ID: "run-000001", State: StateQueued}); err != nil {
		t.Fatal(err)
	}
	if err := x.Healthy(); err != nil {
		t.Fatalf("Healthy() after recovery: %v", err)
	}
}

// TestStoreIndexUpdateDegradesWhenJournalDown: a failed append on update
// keeps the live index current (the checkpoint store is the recovery
// source) but flips readiness.
func TestStoreIndexUpdateDegradesWhenJournalDown(t *testing.T) {
	down := false
	st := store.NewFaulty(store.NewMem(), func(op store.Op, key string) error {
		if down && strings.HasPrefix(key, journalPrefix) {
			return errors.New("journal disk gone")
		}
		return nil
	})
	x, _ := OpenStoreIndex(st, t.Logf)
	x.CreateJob(JobInfo{ID: "run-000001", State: StateQueued})

	down = true
	if err := x.UpdateJob("run-000001", func(j *JobInfo) { j.State = StateRunning }); err != nil {
		t.Fatalf("degraded update returned %v, want nil", err)
	}
	if job, _ := x.GetJob("run-000001"); job.State != StateRunning {
		t.Fatalf("live state %s, want running", job.State)
	}
	if x.Healthy() == nil {
		t.Fatal("Healthy() nil after a dropped journal append")
	}
}
