package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"greem/internal/checkpoint"
	"greem/internal/store"
	"greem/internal/telemetry"
)

// healthReporter is implemented by indexes whose durability can degrade
// (StoreIndex). A non-nil Healthy() drops readiness: acks are no longer
// crash-durable, so a load balancer should stop routing submits here.
type healthReporter interface{ Healthy() error }

// ServerConfig wires the HTTP layer. Manager, Index and Store are
// mandatory; the Retry/Breaker/Faults handles are optional observability
// taps into the store stack (nil when the daemon runs without them).
type ServerConfig struct {
	Manager *Manager
	Index   Index
	Store   store.Store

	Retry   *store.Retry     // store retry layer, for metrics
	Breaker *store.Breaker   // store circuit breaker, for metrics + shedding
	Faults  *store.FaultPlan // fault injection plan, for metrics

	// RequestTimeout bounds every request's context (0 ⇒ 30s). Product
	// computation detaches from it deliberately (the leader's result is
	// shared); everything else — store reads, integrity audits, flight
	// waits — aborts when it expires.
	RequestTimeout time.Duration
}

// Server is the HTTP face of the service plane. Routes:
//
//	GET  /healthz                    liveness probe
//	GET  /readyz                     readiness: drain, queue, breaker and journal state
//	POST /runs                       submit a JobSpec, returns the queued JobInfo
//	GET  /runs                       list jobs, newest first
//	GET  /runs/{id}                  one job's status, progress and telemetry
//	GET  /runs/{id}/products         cached product keys for the job
//	GET  /runs/{id}/products/{kind}  fetch/compute a product (snapshot, halos, pk, density)
//	GET  /runs/{id}/integrity        re-verify the run's checkpoint hash chain and blobs
//	GET  /metrics                    Prometheus text: server counters + store/journal
//	                                 resilience metrics + per-job sim telemetry
//
// Overload and degradation semantics: a full admission queue or an open
// store breaker sheds submits with 429 + Retry-After (the work is safe to
// retry elsewhere or later); a draining daemon answers 503 and drops
// readiness first so balancers stop routing to it.
type Server struct {
	mgr      *Manager
	index    Index
	store    store.Store
	products *Products

	retry   *store.Retry
	breaker *store.Breaker
	faults  *store.FaultPlan
	timeout time.Duration

	// reg holds server-side counters. telemetry.Registry is not safe for
	// concurrent use, so every touch — increment or render — happens under
	// mu; sim telemetry arrives as frozen snapshots through the Index and
	// needs no lock of its own.
	mu  sync.Mutex
	reg *telemetry.Registry
}

// NewServer wires the HTTP layer over a manager, its index and its store.
func NewServer(cfg ServerConfig) *Server {
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	return &Server{
		mgr: cfg.Manager, index: cfg.Index, store: cfg.Store,
		products: NewProducts(cfg.Store, cfg.Index),
		retry:    cfg.Retry, breaker: cfg.Breaker, faults: cfg.Faults,
		timeout: cfg.RequestTimeout,
		reg:     telemetry.NewRegistry(),
	}
}

// Handler returns the routing table, wrapped so every request carries a
// deadline — a wedged store cannot pin handler goroutines forever.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("POST /runs", s.handleSubmit)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleGet)
	mux.HandleFunc("GET /runs/{id}/products", s.handleProductList)
	mux.HandleFunc("GET /runs/{id}/products/{kind}", s.handleProduct)
	mux.HandleFunc("GET /runs/{id}/integrity", s.handleIntegrity)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
		defer cancel()
		mux.ServeHTTP(w, r.WithContext(ctx))
	})
}

func (s *Server) count(name string, labels ...telemetry.Label) {
	s.mu.Lock()
	s.reg.Counter(name, labels...).Add(1)
	s.mu.Unlock()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// jobStatus maps index errors to HTTP codes.
func (s *Server) job(w http.ResponseWriter, r *http.Request) (JobInfo, bool) {
	job, err := s.index.GetJob(r.PathValue("id"))
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrUnknownJob) {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return JobInfo{}, false
	}
	return job, true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.count("greemd_http_requests_total", telemetry.L("route", "healthz"))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// ReadyReport is the body of GET /readyz. Ready=false (with HTTP 503)
// means: stop routing new work here — the daemon is draining, overloaded,
// cut off from its store, or can no longer journal acknowledgements.
type ReadyReport struct {
	Ready   bool     `json:"ready"`
	Reasons []string `json:"reasons,omitempty"`

	Draining     bool   `json:"draining"`
	QueueLen     int    `json:"queue_len"`
	QueueCap     int    `json:"queue_cap"`
	BreakerState string `json:"breaker_state,omitempty"`
	JournalError string `json:"journal_error,omitempty"`
	Replayed     int    `json:"jobs_replayed"`
}

func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.count("greemd_http_requests_total", telemetry.L("route", "readyz"))
	rep := ReadyReport{
		Draining: s.mgr.Draining(),
		QueueLen: s.mgr.QueueLen(), QueueCap: s.mgr.QueueCap(),
		Replayed: s.mgr.Replayed(),
	}
	if !s.mgr.Accepting() {
		rep.Reasons = append(rep.Reasons, "not accepting jobs (draining or closed)")
	}
	if rep.QueueLen >= rep.QueueCap {
		rep.Reasons = append(rep.Reasons, "admission queue full")
	}
	if s.breaker != nil {
		st := s.breaker.State()
		rep.BreakerState = st.String()
		if st == store.BreakerOpen {
			rep.Reasons = append(rep.Reasons, "store circuit breaker open")
		}
	}
	if hr, ok := s.index.(healthReporter); ok {
		if err := hr.Healthy(); err != nil {
			rep.JournalError = err.Error()
			rep.Reasons = append(rep.Reasons, "job journal degraded (acks not crash-durable)")
		}
	}
	rep.Ready = len(rep.Reasons) == 0
	code := http.StatusOK
	if !rep.Ready {
		code = http.StatusServiceUnavailable
	}
	writeJSON(w, code, rep)
}

// shed refuses a submission with 429 + Retry-After: the request is valid,
// the service is the problem, and retrying later (or elsewhere) will work.
func (s *Server) shed(w http.ResponseWriter, reason string, retryAfter int, err error) {
	s.count("greem_shed_total", telemetry.L("reason", reason))
	w.Header().Set("Retry-After", strconv.Itoa(retryAfter))
	writeError(w, http.StatusTooManyRequests, err)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.count("greemd_http_requests_total", telemetry.L("route", "submit"))
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
		return
	}
	// An open breaker means the journal cannot commit the ack — shed before
	// touching the manager rather than failing the create midway.
	if s.breaker != nil && s.breaker.State() == store.BreakerOpen {
		s.shed(w, "breaker_open", 2, errors.New("store unavailable (circuit breaker open)"))
		return
	}
	info, err := s.mgr.Submit(spec)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			s.shed(w, "queue_full", 1, err)
		case errors.Is(err, ErrShuttingDown):
			w.Header().Set("Retry-After", "10")
			writeError(w, http.StatusServiceUnavailable, err)
		default:
			writeError(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.count("greemd_http_requests_total", telemetry.L("route", "list"))
	jobs, err := s.index.ListJobs()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, jobs)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.count("greemd_http_requests_total", telemetry.L("route", "get"))
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleProductList(w http.ResponseWriter, r *http.Request) {
	s.count("greemd_http_requests_total", telemetry.L("route", "product_list"))
	keys, err := s.index.ListProducts(r.PathValue("id"))
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrUnknownJob) {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Products []string `json:"products"`
	}{Products: keys})
}

// productRequest parses the query parameters for one product kind.
func productRequest(r *http.Request) (ProductRequest, error) {
	q := r.URL.Query()
	req := ProductRequest{Kind: r.PathValue("kind")}
	var err error
	getInt := func(name string, dst *int) {
		if err != nil || !q.Has(name) {
			return
		}
		v, perr := strconv.Atoi(q.Get(name))
		if perr != nil {
			err = fmt.Errorf("parameter %s: %w", name, perr)
			return
		}
		*dst = v
	}
	getInt("lo", &req.Lo)
	getInt("hi", &req.Hi)
	getInt("min_size", &req.MinSize)
	getInt("nmesh", &req.NMesh)
	getInt("nbins", &req.NBins)
	getInt("n", &req.NPix)
	if q.Has("b") {
		v, perr := strconv.ParseFloat(q.Get("b"), 64)
		if perr != nil {
			return req, fmt.Errorf("parameter b: %w", perr)
		}
		req.B = v
	}
	return req, err
}

func (s *Server) handleProduct(w http.ResponseWriter, r *http.Request) {
	s.count("greemd_http_requests_total", telemetry.L("route", "product"))
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	req, err := productRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if job.SnapshotRef == "" {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s has no final snapshot yet (state %s)", job.ID, job.State))
		return
	}
	data, shared, stale, err := s.products.GetCtx(r.Context(), job, req)
	if err != nil {
		code := http.StatusInternalServerError
		if _, kerr := req.Key(); kerr != nil {
			code = http.StatusBadRequest
		}
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			code = http.StatusGatewayTimeout
		}
		if errors.Is(err, store.ErrUnavailable) {
			code = http.StatusServiceUnavailable
			w.Header().Set("Retry-After", "2")
		}
		writeError(w, code, err)
		return
	}
	s.count("greemd_product_requests_total", telemetry.L("kind", req.Kind))
	if shared {
		s.count("greemd_product_flight_shared_total", telemetry.L("kind", req.Kind))
	}
	if stale {
		w.Header().Set("Warning", `110 - "response is stale (store unavailable)"`)
	}
	w.Header().Set("Content-Type", req.ContentType())
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// IntegrityReport is the response of GET /runs/{id}/integrity: the result
// of re-walking the run's checkpoint hash chain against store contents and
// re-hashing every blob the run has named.
type IntegrityReport struct {
	RunID string `json:"run_id"`
	OK    bool   `json:"ok"`
	// BlobsVerified counts named blobs whose content re-hashed to their ref
	// (the physical layer of the check).
	BlobsVerified int `json:"blobs_verified"`
	// CheckpointSteps lists the steps whose manifests validated and chained
	// (the semantic layer). Empty when the job never checkpointed.
	CheckpointSteps []uint64 `json:"checkpoint_steps,omitempty"`
	Error           string   `json:"error,omitempty"`
}

func (s *Server) handleIntegrity(w http.ResponseWriter, r *http.Request) {
	s.count("greemd_http_requests_total", telemetry.L("route", "integrity"))
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	rep := IntegrityReport{RunID: job.ID, OK: true}
	// Integrity walks can touch many blobs; bind them to the request's
	// deadline so an abandoned audit stops consuming the store.
	st := store.ForContext(r.Context(), s.store)

	// Physical layer: every blob the run named must hash back to its ref.
	checked, err := store.VerifyNamed(st, runPrefix(job.ID))
	rep.BlobsVerified = checked
	if err != nil {
		rep.OK = false
		rep.Error = err.Error()
		writeJSON(w, http.StatusConflict, rep)
		return
	}

	// Semantic layer: the checkpoint manifests must decode, validate and
	// hash-chain. A job that never checkpointed legitimately has none.
	cfg, _, _, _, err := simConfigFromSpec(job.Spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	steps, err := checkpoint.Audit(checkpoint.Config{
		Dir: ckptDir(job.ID), Sim: cfg, FS: checkpoint.StoreFS(st),
	}, job.Spec.Ranks)
	switch {
	case err == nil:
		rep.CheckpointSteps = steps
	case errors.Is(err, checkpoint.ErrNoCheckpoint) && job.Spec.CheckpointEvery == 0:
		// Nothing to audit, and nothing was promised.
	default:
		rep.OK = false
		rep.Error = err.Error()
		writeJSON(w, http.StatusConflict, rep)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.count("greemd_http_requests_total", telemetry.L("route", "metrics"))

	// Server-side counters, snapshotted under the lock.
	s.mu.Lock()
	all := s.reg.Snapshot()
	s.mu.Unlock()

	// Resilience metrics, synthesized from the store stack and the manager
	// (their owners keep atomic counters; nothing routes through reg).
	all = append(all, telemetry.MetricSnapshot{
		Name: "greem_jobs_replayed_total", Kind: telemetry.KindCounter,
		Value: float64(s.mgr.Replayed()),
	}, telemetry.MetricSnapshot{
		Name: "greem_product_stale_served_total", Kind: telemetry.KindCounter,
		Value: float64(s.products.StaleServed()),
	})
	if s.retry != nil {
		all = append(all, telemetry.MetricSnapshot{
			Name: "greem_store_retries_total", Kind: telemetry.KindCounter,
			Value: float64(s.retry.Retries()),
		}, telemetry.MetricSnapshot{
			Name: "greem_store_giveups_total", Kind: telemetry.KindCounter,
			Value: float64(s.retry.GiveUps()),
		})
	}
	if s.breaker != nil {
		all = append(all, telemetry.MetricSnapshot{
			Name: "greem_store_breaker_state", Kind: telemetry.KindGauge,
			Value: float64(s.breaker.State()),
		}, telemetry.MetricSnapshot{
			Name: "greem_store_breaker_trips_total", Kind: telemetry.KindCounter,
			Value: float64(s.breaker.Trips()),
		}, telemetry.MetricSnapshot{
			Name: "greem_store_breaker_fastfails_total", Kind: telemetry.KindCounter,
			Value: float64(s.breaker.FastFails()),
		})
	}
	if s.faults != nil {
		all = append(all, telemetry.MetricSnapshot{
			Name: "greem_store_faults_injected_total", Kind: telemetry.KindCounter,
			Value: float64(s.faults.Injected()),
		})
	}

	// Per-job simulation telemetry: the frozen rank-0 snapshots pushed at
	// step boundaries, labelled by job.
	jobs, err := s.index.ListJobs()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	for _, job := range jobs {
		for _, m := range job.Telemetry {
			m.Labels = append(append([]telemetry.Label(nil), m.Labels...), telemetry.L("job", job.ID))
			all = append(all, m)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Name != all[j].Name {
			return all[i].Name < all[j].Name
		}
		return all[i].Key() < all[j].Key()
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheusSnapshots(w, all)
}
