package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"

	"greem/internal/checkpoint"
	"greem/internal/store"
	"greem/internal/telemetry"
)

// Server is the HTTP face of the service plane. Routes:
//
//	GET  /healthz                    liveness probe
//	POST /runs                       submit a JobSpec, returns the queued JobInfo
//	GET  /runs                       list jobs, newest first
//	GET  /runs/{id}                  one job's status, progress and telemetry
//	GET  /runs/{id}/products         cached product keys for the job
//	GET  /runs/{id}/products/{kind}  fetch/compute a product (snapshot, halos, pk, density)
//	GET  /runs/{id}/integrity        re-verify the run's checkpoint hash chain and blobs
//	GET  /metrics                    Prometheus text: server counters + per-job sim telemetry
type Server struct {
	mgr      *Manager
	index    Index
	store    store.Store
	products *Products

	// reg holds server-side counters. telemetry.Registry is not safe for
	// concurrent use, so every touch — increment or render — happens under
	// mu; sim telemetry arrives as frozen snapshots through the Index and
	// needs no lock of its own.
	mu  sync.Mutex
	reg *telemetry.Registry
}

// NewServer wires the HTTP layer over a manager, its index and its store.
func NewServer(mgr *Manager, idx Index, st store.Store) *Server {
	return &Server{
		mgr: mgr, index: idx, store: st,
		products: NewProducts(st, idx),
		reg:      telemetry.NewRegistry(),
	}
}

// Handler returns the routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("POST /runs", s.handleSubmit)
	mux.HandleFunc("GET /runs", s.handleList)
	mux.HandleFunc("GET /runs/{id}", s.handleGet)
	mux.HandleFunc("GET /runs/{id}/products", s.handleProductList)
	mux.HandleFunc("GET /runs/{id}/products/{kind}", s.handleProduct)
	mux.HandleFunc("GET /runs/{id}/integrity", s.handleIntegrity)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func (s *Server) count(name string, labels ...telemetry.Label) {
	s.mu.Lock()
	s.reg.Counter(name, labels...).Add(1)
	s.mu.Unlock()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorBody{Error: err.Error()})
}

// jobStatus maps index errors to HTTP codes.
func (s *Server) job(w http.ResponseWriter, r *http.Request) (JobInfo, bool) {
	job, err := s.index.GetJob(r.PathValue("id"))
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrUnknownJob) {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return JobInfo{}, false
	}
	return job, true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.count("greemd_http_requests_total", telemetry.L("route", "healthz"))
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	s.count("greemd_http_requests_total", telemetry.L("route", "submit"))
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("decode spec: %w", err))
		return
	}
	info, err := s.mgr.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrShuttingDown) {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusAccepted, info)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.count("greemd_http_requests_total", telemetry.L("route", "list"))
	jobs, err := s.index.ListJobs()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, jobs)
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	s.count("greemd_http_requests_total", telemetry.L("route", "get"))
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, job)
}

func (s *Server) handleProductList(w http.ResponseWriter, r *http.Request) {
	s.count("greemd_http_requests_total", telemetry.L("route", "product_list"))
	keys, err := s.index.ListProducts(r.PathValue("id"))
	if err != nil {
		code := http.StatusInternalServerError
		if errors.Is(err, ErrUnknownJob) {
			code = http.StatusNotFound
		}
		writeError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, struct {
		Products []string `json:"products"`
	}{Products: keys})
}

// productRequest parses the query parameters for one product kind.
func productRequest(r *http.Request) (ProductRequest, error) {
	q := r.URL.Query()
	req := ProductRequest{Kind: r.PathValue("kind")}
	var err error
	getInt := func(name string, dst *int) {
		if err != nil || !q.Has(name) {
			return
		}
		v, perr := strconv.Atoi(q.Get(name))
		if perr != nil {
			err = fmt.Errorf("parameter %s: %w", name, perr)
			return
		}
		*dst = v
	}
	getInt("lo", &req.Lo)
	getInt("hi", &req.Hi)
	getInt("min_size", &req.MinSize)
	getInt("nmesh", &req.NMesh)
	getInt("nbins", &req.NBins)
	getInt("n", &req.NPix)
	if q.Has("b") {
		v, perr := strconv.ParseFloat(q.Get("b"), 64)
		if perr != nil {
			return req, fmt.Errorf("parameter b: %w", perr)
		}
		req.B = v
	}
	return req, err
}

func (s *Server) handleProduct(w http.ResponseWriter, r *http.Request) {
	s.count("greemd_http_requests_total", telemetry.L("route", "product"))
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	req, err := productRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if job.SnapshotRef == "" {
		writeError(w, http.StatusConflict,
			fmt.Errorf("job %s has no final snapshot yet (state %s)", job.ID, job.State))
		return
	}
	data, shared, err := s.products.Get(job, req)
	if err != nil {
		code := http.StatusInternalServerError
		if _, kerr := req.Key(); kerr != nil {
			code = http.StatusBadRequest
		}
		writeError(w, code, err)
		return
	}
	s.count("greemd_product_requests_total", telemetry.L("kind", req.Kind))
	if shared {
		s.count("greemd_product_flight_shared_total", telemetry.L("kind", req.Kind))
	}
	w.Header().Set("Content-Type", req.ContentType())
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	w.Write(data)
}

// IntegrityReport is the response of GET /runs/{id}/integrity: the result
// of re-walking the run's checkpoint hash chain against store contents and
// re-hashing every blob the run has named.
type IntegrityReport struct {
	RunID string `json:"run_id"`
	OK    bool   `json:"ok"`
	// BlobsVerified counts named blobs whose content re-hashed to their ref
	// (the physical layer of the check).
	BlobsVerified int `json:"blobs_verified"`
	// CheckpointSteps lists the steps whose manifests validated and chained
	// (the semantic layer). Empty when the job never checkpointed.
	CheckpointSteps []uint64 `json:"checkpoint_steps,omitempty"`
	Error           string   `json:"error,omitempty"`
}

func (s *Server) handleIntegrity(w http.ResponseWriter, r *http.Request) {
	s.count("greemd_http_requests_total", telemetry.L("route", "integrity"))
	job, ok := s.job(w, r)
	if !ok {
		return
	}
	rep := IntegrityReport{RunID: job.ID, OK: true}

	// Physical layer: every blob the run named must hash back to its ref.
	checked, err := store.VerifyNamed(s.store, runPrefix(job.ID))
	rep.BlobsVerified = checked
	if err != nil {
		rep.OK = false
		rep.Error = err.Error()
		writeJSON(w, http.StatusConflict, rep)
		return
	}

	// Semantic layer: the checkpoint manifests must decode, validate and
	// hash-chain. A job that never checkpointed legitimately has none.
	cfg, _, _, _, err := simConfigFromSpec(job.Spec)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	steps, err := checkpoint.Audit(checkpoint.Config{
		Dir: ckptDir(job.ID), Sim: cfg, FS: checkpoint.StoreFS(s.store),
	}, job.Spec.Ranks)
	switch {
	case err == nil:
		rep.CheckpointSteps = steps
	case errors.Is(err, checkpoint.ErrNoCheckpoint) && job.Spec.CheckpointEvery == 0:
		// Nothing to audit, and nothing was promised.
	default:
		rep.OK = false
		rep.Error = err.Error()
		writeJSON(w, http.StatusConflict, rep)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.count("greemd_http_requests_total", telemetry.L("route", "metrics"))

	// Server-side counters, snapshotted under the lock.
	s.mu.Lock()
	all := s.reg.Snapshot()
	s.mu.Unlock()

	// Per-job simulation telemetry: the frozen rank-0 snapshots pushed at
	// step boundaries, labelled by job.
	jobs, err := s.index.ListJobs()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	for _, job := range jobs {
		for _, m := range job.Telemetry {
			m.Labels = append(append([]telemetry.Label(nil), m.Labels...), telemetry.L("job", job.ID))
			all = append(all, m)
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Name != all[j].Name {
			return all[i].Name < all[j].Name
		}
		return all[i].Key() < all[j].Key()
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheusSnapshots(w, all)
}
