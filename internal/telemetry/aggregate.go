package telemetry

import (
	"sort"
	"strings"

	"greem/internal/mpi"
)

// PhaseStat is one phase row of a cross-rank profile — exactly the shape of
// the paper's Table I rows: the per-rank wall-clock reduced to min/mean/max,
// plus the load imbalance max/mean (1 is perfect).
type PhaseStat struct {
	Name      string  `json:"name"`
	Min       float64 `json:"min"`
	Mean      float64 `json:"mean"`
	Max       float64 `json:"max"`
	Imbalance float64 `json:"imbalance"`
}

// CounterStat is one counter reduced across ranks.
type CounterStat struct {
	Key  string  `json:"key"` // canonical name{labels}
	Sum  float64 `json:"sum"`
	Min  float64 `json:"min"`
	Mean float64 `json:"mean"`
	Max  float64 `json:"max"`
}

// Profile is the aggregated cross-rank view produced by Aggregate.
type Profile struct {
	Ranks    int           `json:"ranks"`
	Phases   []PhaseStat   `json:"phases"`
	Counters []CounterStat `json:"counters"`
}

// Phase returns the named phase row (zero value if absent).
func (p *Profile) Phase(name string) PhaseStat {
	for _, ph := range p.Phases {
		if ph.Name == name {
			return ph
		}
	}
	return PhaseStat{}
}

// Counter returns the aggregated counter with the given canonical key
// (zero value if absent).
func (p *Profile) Counter(key string) CounterStat {
	for _, c := range p.Counters {
		if c.Key == key {
			return c
		}
	}
	return CounterStat{}
}

// key prefixes distinguishing phases from plain counters in the reduction
// vector.
const (
	aggPhasePrefix   = "p:"
	aggCounterPrefix = "c:"
)

// Aggregate reduces every rank's phase accumulators and counters over the
// communicator — min/mean/max/imbalance per phase via mpi.Reduce, the
// Table I shape. Collective: every rank of c must call it with its own
// recorder. The profile is returned at comm rank 0 and nil elsewhere.
//
// Ranks need not have recorded identical phase sets (a rank that never ran a
// phase contributes 0); the key union is established with an Allgather.
func Aggregate(c *mpi.Comm, rec *Recorder) *Profile {
	local := make(map[string]float64)
	for _, ph := range rec.phases {
		local[aggPhasePrefix+ph.name] = ph.seconds.Value()
	}
	for _, s := range rec.reg.Snapshot() {
		if s.Kind == KindCounter && s.Name != phaseSecondsMetric {
			local[aggCounterPrefix+s.Key()] = s.Value
		}
	}

	mine := make([]string, 0, len(local))
	for k := range local {
		mine = append(mine, k)
	}
	sort.Strings(mine)
	seen := make(map[string]bool)
	var keys []string
	for _, ranks := range mpi.Allgather(c, mine) {
		for _, k := range ranks {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)

	vals := make([]float64, len(keys))
	for i, k := range keys {
		vals[i] = local[k]
	}
	mins := mpi.Reduce(c, 0, vals, mpi.Min[float64])
	maxs := mpi.Reduce(c, 0, vals, mpi.Max[float64])
	sums := mpi.Reduce(c, 0, vals, mpi.Sum[float64])
	if c.Rank() != 0 {
		return nil
	}

	p := &Profile{Ranks: c.Size()}
	for i, k := range keys {
		mean := sums[i] / float64(c.Size())
		if name, ok := strings.CutPrefix(k, aggPhasePrefix); ok {
			imb := 0.0
			if mean > 0 {
				imb = maxs[i] / mean
			}
			p.Phases = append(p.Phases, PhaseStat{
				Name: name, Min: mins[i], Mean: mean, Max: maxs[i], Imbalance: imb,
			})
		} else {
			p.Counters = append(p.Counters, CounterStat{
				Key: strings.TrimPrefix(k, aggCounterPrefix), Sum: sums[i], Min: mins[i], Mean: mean, Max: maxs[i],
			})
		}
	}
	return p
}

// CaptureTraffic folds the world-wide mpi traffic ledger into byte/message
// counters: totals, per collective-op, and per phase label. Call it once,
// from one place (the ledger is global, not per-rank), with whichever
// registry the export will read.
func CaptureTraffic(reg *Registry, t *mpi.Traffic) {
	if t == nil {
		return
	}
	reg.Counter("greem_mpi_messages_total").Add(float64(t.TotalMessages()))
	reg.ByteCounter("greem_mpi_bytes_total").Add(float64(t.TotalBytes()))
	for op, tot := range t.TotalsByOp() {
		reg.ByteCounter("greem_mpi_op_bytes_total", L("op", op)).Add(float64(tot.Bytes))
		reg.Counter("greem_mpi_op_messages_total", L("op", op)).Add(float64(tot.Msgs))
	}
	for label, tot := range t.TotalsByLabel() {
		if label == "" {
			label = "unlabeled"
		}
		reg.ByteCounter("greem_mpi_label_bytes_total", L("label", label)).Add(float64(tot.Bytes))
	}
}
