package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenRecorders builds two ranks' worth of deterministic telemetry: the
// fake clock makes every span duration and timestamp exact, so the exporter
// output is byte-stable.
func goldenRecorders() []*Recorder {
	recs := make([]*Recorder, 2)
	for rank := range recs {
		rec := NewRecorder(rank, stepClock(time.Millisecond))
		rec.EnableTrace(true)
		pp := rec.Start(SpanPP)
		comm := rec.Start(PhasePPComm)
		comm.End()
		walk := rec.Start(PhasePPTreeWalk)
		walk.End()
		pp.End()
		rec.AddPhase(PhasePPForce, time.Duration(rank+1)*2*time.Millisecond)
		rec.Registry().FlopCounter("greem_pp_kernel_flops_total").AddUint(uint64(5100 * (rank + 1)))
		rec.Registry().Gauge("greem_local_particles").Set(float64(1000 + rank))
		recs[rank] = rec
	}
	return recs
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s differs from golden file (run with -update to regenerate)\ngot:\n%s", name, got)
	}
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheusRanks(&buf, goldenRecorders()); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "metrics.golden.prom", buf.Bytes())
}

func TestChromeTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, goldenRecorders()...); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "trace.golden.json", buf.Bytes())
}

// TestChromeTraceShape validates the trace against the format contract rather
// than bytes: valid JSON, one thread-name metadata record per rank, events
// carrying that rank's tid.
func TestChromeTraceShape(t *testing.T) {
	var buf bytes.Buffer
	recs := goldenRecorders()
	if err := WriteChromeTrace(&buf, recs...); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			TS    float64        `json:"ts"`
			Dur   float64        `json:"dur"`
			TID   int            `json:"tid"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}
	meta := map[int]bool{}
	events := map[int]int{}
	for _, ev := range tf.TraceEvents {
		switch ev.Phase {
		case "M":
			if ev.Name != "thread_name" {
				t.Errorf("unexpected metadata record %q", ev.Name)
			}
			meta[ev.TID] = true
		case "X":
			events[ev.TID]++
			if ev.Dur < 0 || ev.TS < 0 {
				t.Errorf("negative timestamp in %+v", ev)
			}
		default:
			t.Errorf("unexpected event phase %q", ev.Phase)
		}
	}
	for _, rec := range recs {
		if !meta[rec.Rank()] {
			t.Errorf("rank %d missing thread_name metadata", rec.Rank())
		}
		if events[rec.Rank()] != len(rec.Events()) {
			t.Errorf("rank %d: %d trace events, recorder holds %d",
				rec.Rank(), events[rec.Rank()], len(rec.Events()))
		}
	}
}

// TestPrometheusShape validates label rendering and histogram series without
// relying on exact bytes.
func TestPrometheusShape(t *testing.T) {
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, goldenRecorders()[0].Registry()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE greem_phase_seconds_total counter",
		"# HELP greem_phase_seconds_total (unit: seconds)",
		"# TYPE greem_span_seconds histogram",
		"# TYPE greem_pp_kernel_flops_total counter",
		"# TYPE greem_local_particles gauge",
		`greem_phase_seconds_total{phase="pp/comm"}`,
		`greem_span_seconds_bucket{phase="PP",le="+Inf"}`,
		`greem_span_seconds_count{phase="PP"} 1`,
		"greem_pp_kernel_flops_total 5100",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q\n%s", want, out)
		}
	}
}

func TestWriteJSONProfile(t *testing.T) {
	p := &Profile{
		Ranks:    2,
		Phases:   []PhaseStat{{Name: PhasePPForce, Min: 1, Mean: 1.5, Max: 2, Imbalance: 2.0 / 1.5}},
		Counters: []CounterStat{{Key: "flops_total", Sum: 3, Min: 1, Mean: 1.5, Max: 2}},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, p); err != nil {
		t.Fatal(err)
	}
	var back Profile
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Ranks != 2 || len(back.Phases) != 1 || back.Phases[0].Name != PhasePPForce {
		t.Errorf("JSON round trip: %+v", back)
	}
}
