package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// --- Prometheus text format ---

func promLabels(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	s := "{"
	for i, l := range labels {
		if i > 0 {
			s += ","
		}
		s += l.Key + "=" + strconv.Quote(l.Value)
	}
	return s + "}"
}

func promFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writePromSnapshots renders snapshots already carrying any rank labels.
// TYPE/HELP headers are emitted once per metric name (snapshots are sorted
// by name).
func writePromSnapshots(w *bufio.Writer, snaps []MetricSnapshot) {
	lastName := ""
	for _, s := range snaps {
		if s.Name != lastName {
			if s.Unit != "" {
				fmt.Fprintf(w, "# HELP %s (unit: %s)\n", s.Name, s.Unit)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", s.Name, s.Kind)
			lastName = s.Name
		}
		switch s.Kind {
		case KindHistogram:
			for _, b := range s.Bucket {
				ls := append(append([]Label(nil), s.Labels...), L("le", promFloat(b.UpperBound)))
				fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, promLabels(ls), b.Count)
			}
			inf := append(append([]Label(nil), s.Labels...), L("le", "+Inf"))
			fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, promLabels(inf), s.Count)
			fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, promLabels(s.Labels), promFloat(s.Sum))
			fmt.Fprintf(w, "%s_count%s %d\n", s.Name, promLabels(s.Labels), s.Count)
		default:
			fmt.Fprintf(w, "%s%s %s\n", s.Name, promLabels(s.Labels), promFloat(s.Value))
		}
	}
}

// WritePrometheus renders one registry in the Prometheus text exposition
// format, deterministically ordered.
func WritePrometheus(w io.Writer, reg *Registry) error {
	bw := bufio.NewWriter(w)
	writePromSnapshots(bw, reg.Snapshot())
	return bw.Flush()
}

// WritePrometheusSnapshots renders pre-captured metric snapshots in the
// Prometheus text exposition format. The serving layer uses this for
// metrics pushed across goroutine boundaries: recorders are rank-local and
// unsynchronized, so a live registry must not be read concurrently with
// the rank that owns it — the rank snapshots at a safe point (a step
// boundary) and the HTTP handler renders the frozen copy. Snapshots must
// arrive sorted by name (Registry.Snapshot order) for TYPE headers to
// group correctly.
func WritePrometheusSnapshots(w io.Writer, snaps []MetricSnapshot) error {
	bw := bufio.NewWriter(w)
	writePromSnapshots(bw, snaps)
	return bw.Flush()
}

// WritePrometheusRanks renders every rank's registry with a rank="<r>" label
// appended, so one scrape shows the whole world.
func WritePrometheusRanks(w io.Writer, recs []*Recorder) error {
	bw := bufio.NewWriter(w)
	var all []MetricSnapshot
	for _, rec := range recs {
		if rec == nil {
			continue
		}
		for _, s := range rec.Registry().Snapshot() {
			s.Labels = append(append([]Label(nil), s.Labels...), L("rank", strconv.Itoa(rec.Rank())))
			all = append(all, s)
		}
	}
	// Snapshots arrive sorted per rank; re-sort globally so names group.
	sort.Slice(all, func(i, j int) bool {
		if all[i].Name != all[j].Name {
			return all[i].Name < all[j].Name
		}
		return all[i].Key() < all[j].Key()
	})
	writePromSnapshots(bw, all)
	return bw.Flush()
}

// --- JSON ---

// WriteJSON renders an aggregated profile as indented JSON.
func WriteJSON(w io.Writer, p *Profile) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// WriteRegistryJSON renders one registry's snapshot as indented JSON.
func WriteRegistryJSON(w io.Writer, reg *Registry) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(reg.Snapshot())
}

// --- Chrome trace-event JSON (Perfetto / chrome://tracing) ---

type traceEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    float64        `json:"ts"` // microseconds
	Dur   float64        `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// WriteChromeTrace renders each rank's span timeline as Chrome trace-event
// JSON: one thread (tid = rank) per rank, complete ("X") events with
// microsecond timestamps relative to each recorder's epoch. Load the file in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
func WriteChromeTrace(w io.Writer, recs ...*Recorder) error {
	tf := traceFile{DisplayTimeUnit: "ms", TraceEvents: []traceEvent{}}
	for _, rec := range recs {
		if rec == nil {
			continue
		}
		tf.TraceEvents = append(tf.TraceEvents, traceEvent{
			Name: "thread_name", Phase: "M", PID: 0, TID: rec.Rank(),
			Args: map[string]any{"name": fmt.Sprintf("rank %d", rec.Rank())},
		})
		for _, ev := range rec.Events() {
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name:  ev.Name,
				Phase: "X",
				TS:    float64(ev.Start.Nanoseconds()) / 1e3,
				Dur:   float64(ev.Dur.Nanoseconds()) / 1e3,
				PID:   0,
				TID:   rec.Rank(),
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(tf)
}
