package telemetry

import (
	"math"
	"testing"
	"time"

	"greem/internal/mpi"
)

// TestAggregateFourRanks reduces known per-rank phase times and counters over
// a 4-rank comm and checks min/mean/max/imbalance exactly.
func TestAggregateFourRanks(t *testing.T) {
	var prof *Profile
	err := mpi.Run(4, func(c *mpi.Comm) {
		rec := NewRecorder(c.Rank(), stepClock(time.Millisecond))
		// Rank r records (r+1)·10ms of pp/force: 10,20,30,40 → mean 25, max 40.
		rec.AddPhase(PhasePPForce, time.Duration(c.Rank()+1)*10*time.Millisecond)
		// Only ranks 0 and 1 ever run pm/fft (non-identical phase sets).
		if c.Rank() < 2 {
			rec.AddPhase(PhasePMFFT, 5*time.Millisecond)
		}
		rec.Registry().FlopCounter("flops_total").AddUint(uint64(100 * (c.Rank() + 1)))
		if p := Aggregate(c, rec); c.Rank() == 0 {
			prof = p
		} else if p != nil {
			t.Errorf("rank %d received a non-nil profile", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if prof == nil {
		t.Fatal("no profile at rank 0")
	}
	if prof.Ranks != 4 {
		t.Errorf("ranks = %d, want 4", prof.Ranks)
	}

	close := func(a, b float64) bool { return math.Abs(a-b) < 1e-12 }

	f := prof.Phase(PhasePPForce)
	if !close(f.Min, 0.01) || !close(f.Mean, 0.025) || !close(f.Max, 0.04) {
		t.Errorf("pp/force stats = %+v, want min 0.01 mean 0.025 max 0.04", f)
	}
	if !close(f.Imbalance, 0.04/0.025) {
		t.Errorf("pp/force imbalance = %v, want 1.6", f.Imbalance)
	}

	// Absent ranks contribute 0 to the union phase.
	fft := prof.Phase(PhasePMFFT)
	if !close(fft.Min, 0) || !close(fft.Max, 0.005) || !close(fft.Mean, 0.0025) {
		t.Errorf("pm/fft stats = %+v, want min 0 mean 0.0025 max 0.005", fft)
	}

	fl := prof.Counter("flops_total")
	if !close(fl.Sum, 1000) || !close(fl.Min, 100) || !close(fl.Max, 400) || !close(fl.Mean, 250) {
		t.Errorf("flops stats = %+v, want sum 1000 min 100 mean 250 max 400", fl)
	}

	// A phase never recorded anywhere returns the zero row.
	if z := prof.Phase("no/such"); z != (PhaseStat{}) {
		t.Errorf("absent phase = %+v", z)
	}
}

func TestCaptureTraffic(t *testing.T) {
	var tr *mpi.Traffic
	err := mpi.Run(2, func(c *mpi.Comm) {
		if c.Rank() == 0 {
			tr = c.Traffic()
			tr.SetLabel("ghosts")
		}
		c.Barrier()
		if c.Rank() == 0 {
			mpi.Send(c, 1, 0, []float64{1, 2})
		} else {
			mpi.Recv[float64](c, 0, 0)
		}
		c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	CaptureTraffic(reg, tr)
	if got := reg.Counter("greem_mpi_messages_total").Value(); got != float64(tr.TotalMessages()) {
		t.Errorf("messages counter = %v, want %v", got, tr.TotalMessages())
	}
	if got := reg.ByteCounter("greem_mpi_bytes_total").Value(); got != float64(tr.TotalBytes()) {
		t.Errorf("bytes counter = %v, want %v", got, tr.TotalBytes())
	}
	if got := reg.ByteCounter("greem_mpi_op_bytes_total", L("op", "Send")).Value(); got != 16 {
		t.Errorf("Send op bytes = %v, want 16", got)
	}
	if got := reg.ByteCounter("greem_mpi_label_bytes_total", L("label", "ghosts")).Value(); got < 16 {
		t.Errorf("ghosts label bytes = %v, want ≥ 16", got)
	}
	// Nil ledger must be a no-op, not a panic.
	CaptureTraffic(NewRegistry(), nil)
}
