package telemetry

import "time"

// Clock supplies the current time. Injectable so span tests and golden-file
// exporter tests are deterministic; nil selects time.Now.
type Clock func() time.Time

// Canonical span and phase names. Top-level spans ("PM", "PP", "DD") carry
// the paper's step-cycle structure (one step = 1 PM + 2 PP + 2 DD) into the
// per-rank trace; the slash-separated phases are the Table I rows.
const (
	SpanPM = "PM"
	SpanPP = "PP"
	SpanDD = "DD"

	PhasePMDensity   = "pm/density"
	PhasePMComm      = "pm/comm"
	PhasePMFFT       = "pm/fft"
	PhasePMMeshForce = "pm/mesh_force"
	PhasePMInterp    = "pm/interp"

	PhasePPLocalTree = "pp/local_tree"
	PhasePPComm      = "pp/comm"
	// PhasePPLET is the locally-essential-tree walk: building each near
	// neighbour's boundary source set (pruned monopoles + leaf particles)
	// from the local tree, before the ghost alltoall (PhasePPComm).
	PhasePPLET        = "pp/let"
	PhasePPTreeConstr = "pp/tree_construction"
	// PhasePPTreeWalk is the fused traversal+force span as it happens on the
	// timeline; the accumulator splits it into PhasePPTraverse and
	// PhasePPForce using the kernel's own clock (tree.Stats.KernelSeconds).
	PhasePPTreeWalk = "pp/tree_walk"
	PhasePPTraverse = "pp/traversal"
	PhasePPForce    = "pp/force"

	PhaseDDPosUpdate = "dd/pos_update"
	PhaseDDSampling  = "dd/sampling"
	PhaseDDExchange  = "dd/exchange"

	// Checkpoint plane: shard+manifest serialization and write on the hot
	// side, validation (CRC / manifest / chain checks) on the restore side.
	PhaseCkptWrite  = "ckpt/write"
	PhaseCkptVerify = "ckpt/verify"

	// Overlapped step pipeline: PhaseOverlapJoin is the time the step spent
	// blocked joining the background PM solve (the un-hidden PM remainder);
	// PhaseOverlapWindow is the critical path of the overlapped
	// density→{solve ‖ PP}→join window.
	PhaseOverlapJoin   = "overlap/join"
	PhaseOverlapWindow = "overlap/window"

	// In-situ analysis plane (sim.Config.InSituEvery): the distributed FoF
	// pass, the P(k) spectrum tap + bin reduction, and the streaming
	// surface-density projection.
	PhaseAnalysisFoF  = "analysis/fof"
	PhaseAnalysisPk   = "analysis/pk"
	PhaseAnalysisProj = "analysis/proj"
)

// phaseSecondsMetric is the registry metric name under which per-phase
// wall-clock accumulates (label phase=<name>).
const phaseSecondsMetric = "greem_phase_seconds_total"

// MetricPoolBusySeconds and MetricPoolIdleSeconds accumulate the intra-rank
// worker-pool busy and idle time attributed to each phase (label
// phase=<name>): busy is summed per-worker execution time, idle the time
// workers waited on the slowest worker of each pool task. Both sum cleanly
// across ranks, so the aggregated (busy+idle)/busy is the fleet-wide
// intra-rank max/mean imbalance — the within-rank analogue of the cross-rank
// phase imbalance column.
const (
	MetricPoolBusySeconds = "greem_pool_busy_seconds_total"
	MetricPoolIdleSeconds = "greem_pool_idle_seconds_total"
)

// Ghost-exchange metrics: sources shipped/received by this rank's boundary
// (ghost) exchange and the resulting payload bytes on the wire, plus the
// composition of the locally-essential-tree export (pruned node monopoles vs
// raw leaf particles). All sum cleanly across ranks.
const (
	MetricGhostSent     = "greem_ghost_sent_total"
	MetricGhostRecv     = "greem_ghost_recv_total"
	MetricGhostBytes    = "greem_ghost_bytes_total"
	MetricLETMonopoles  = "greem_let_monopoles_total"
	MetricLETLeaves     = "greem_let_leaves_total"
	MetricLETNodeVisits = "greem_let_nodes_visited_total"
)

// MetricOverlapHidden accumulates the PM solve wall-clock hidden behind the
// concurrent PP computation by the overlapped step pipeline:
// max(0, solve − join wait) per overlapped window. Sums cleanly across ranks.
const MetricOverlapHidden = "greem_overlap_hidden_seconds_total"

// spanSecondsMetric is the per-phase span-duration histogram.
const spanSecondsMetric = "greem_span_seconds"

// maxTraceEvents bounds the per-rank trace buffer so a long tracing run
// cannot exhaust memory; overflow is counted in DroppedEvents.
const maxTraceEvents = 1 << 20

// SpanEvent is one completed span on a rank's timeline.
type SpanEvent struct {
	Name  string
	Start time.Duration // since the recorder's epoch
	Dur   time.Duration
	Depth int32 // nesting depth at the time the span was open (0 = top level)
}

// phase is one named wall-clock accumulator with its duration histogram.
type phase struct {
	name    string
	seconds *Counter
	hist    *Histogram
}

// Recorder collects spans and metrics for one rank. It is rank-local: all
// methods must be called from the owning goroutine (exporters and Aggregate
// read it only collectively or after the world has finished). The zero
// overhead budget on hot paths is met by doing, per span, two clock reads,
// one slice append (amortized, preallocated) and one float add — no locks,
// no allocation after warm-up.
type Recorder struct {
	rank  int
	clock Clock
	epoch time.Time
	reg   *Registry

	phaseIdx map[string]int
	phases   []phase

	depth int32

	trace  bool
	events []SpanEvent

	// DroppedEvents counts trace events discarded after the buffer filled.
	DroppedEvents int64
}

// NewRecorder creates a recorder for the given rank. A nil clock selects
// time.Now. The epoch (span timestamp zero) is the creation instant.
func NewRecorder(rank int, clock Clock) *Recorder {
	if clock == nil {
		clock = time.Now
	}
	return &Recorder{
		rank:     rank,
		clock:    clock,
		epoch:    clock(),
		reg:      NewRegistry(),
		phaseIdx: make(map[string]int),
	}
}

// Rank returns the rank this recorder belongs to.
func (r *Recorder) Rank() int { return r.rank }

// Registry returns the rank's metrics registry.
func (r *Recorder) Registry() *Registry { return r.reg }

// EnableTrace turns timeline-event recording on or off. Off (the default)
// keeps only the phase accumulators and histograms.
func (r *Recorder) EnableTrace(on bool) {
	if r == nil {
		return
	}
	r.trace = on
}

// TraceEnabled reports whether timeline events are being recorded.
func (r *Recorder) TraceEnabled() bool { return r != nil && r.trace }

// now returns the clock reading relative to the epoch.
func (r *Recorder) now() time.Duration { return r.clock().Sub(r.epoch) }

// PhaseID interns a phase name and returns its id for StartID/AddPhaseID,
// letting hot paths skip the map lookup.
func (r *Recorder) PhaseID(name string) int {
	if id, ok := r.phaseIdx[name]; ok {
		return id
	}
	id := len(r.phases)
	r.phaseIdx[name] = id
	r.phases = append(r.phases, phase{
		name:    name,
		seconds: r.reg.SecondsCounter(phaseSecondsMetric, L("phase", name)),
		hist:    r.reg.Histogram(spanSecondsMetric, L("phase", name)),
	})
	return id
}

// Span is an open interval on a rank's timeline. It is a value type; ending
// it does not allocate. Spans must nest (LIFO) on each recorder.
type Span struct {
	r     *Recorder
	pi    int32
	start time.Duration
	depth int32
}

// Start opens a span for the named phase. Safe on a nil recorder (returns an
// inert span).
func (r *Recorder) Start(name string) Span {
	if r == nil {
		return Span{}
	}
	return r.StartID(r.PhaseID(name))
}

// StartID opens a span for an interned phase id.
func (r *Recorder) StartID(id int) Span {
	if r == nil {
		return Span{}
	}
	s := Span{r: r, pi: int32(id), start: r.now(), depth: r.depth}
	r.depth++
	return s
}

// End closes the span, accumulates its duration into the phase counter and
// histogram, appends a trace event when tracing, and returns the duration.
func (s Span) End() time.Duration {
	r := s.r
	if r == nil {
		return 0
	}
	dur := r.now() - s.start
	if dur < 0 {
		dur = 0
	}
	ph := &r.phases[s.pi]
	sec := dur.Seconds()
	ph.seconds.Add(sec)
	ph.hist.Observe(sec)
	r.depth = s.depth
	if r.trace {
		if len(r.events) < maxTraceEvents {
			r.events = append(r.events, SpanEvent{Name: ph.name, Start: s.start, Dur: dur, Depth: s.depth})
		} else {
			r.DroppedEvents++
		}
	}
	return dur
}

// AddPhase accumulates d into the named phase without emitting a trace
// event — used when an already-measured duration must be attributed to a
// phase (e.g. splitting the fused tree walk into traversal and force).
func (r *Recorder) AddPhase(name string, d time.Duration) {
	if r == nil {
		return
	}
	ph := &r.phases[r.PhaseID(name)]
	sec := d.Seconds()
	ph.seconds.Add(sec)
	ph.hist.Observe(sec)
}

// PhaseSeconds returns the accumulated wall-clock of a phase in seconds
// (0 for a phase never recorded).
func (r *Recorder) PhaseSeconds(name string) float64 {
	if r == nil {
		return 0
	}
	if id, ok := r.phaseIdx[name]; ok {
		return r.phases[id].seconds.Value()
	}
	return 0
}

// PhaseNames returns the recorded phase names in registration order.
func (r *Recorder) PhaseNames() []string {
	out := make([]string, len(r.phases))
	for i, p := range r.phases {
		out[i] = p.name
	}
	return out
}

// Events returns the recorded timeline (shared backing array; treat as
// read-only).
func (r *Recorder) Events() []SpanEvent {
	if r == nil {
		return nil
	}
	return r.events
}
