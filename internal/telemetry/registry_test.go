package telemetry

import (
	"math"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("work_total")
	c.Add(2.5)
	c.AddUint(3)
	if c.Value() != 5.5 {
		t.Errorf("counter = %v, want 5.5", c.Value())
	}
	// Same (name, labels) returns the same instrument.
	if r.Counter("work_total") != c {
		t.Error("re-lookup returned a different counter")
	}

	g := r.Gauge("queue_depth")
	g.Set(7)
	g.Add(-2)
	if g.Value() != 5 {
		t.Errorf("gauge = %v, want 5", g.Value())
	}
}

func TestLabelCanonicalization(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("m", L("b", "2"), L("a", "1"))
	b := r.Counter("m", L("a", "1"), L("b", "2"))
	if a != b {
		t.Error("label order created distinct metrics")
	}
	if r.Counter("m", L("a", "other"), L("b", "2")) == a {
		t.Error("different label values shared a metric")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("m")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("m")
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	h.Observe(0)     // lands in bucket 0
	h.Observe(1e-12) // below the smallest bound → bucket 0
	h.Observe(0.75)  // Ilogb = -1
	h.Observe(1.5)   // Ilogb = 0
	h.Observe(1e300) // beyond the last bucket → clamped
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if want := 0.75 + 1.5 + 1e-12 + 1e300; h.sum != want {
		t.Errorf("sum = %v, want %v", h.sum, want)
	}
	// Every observation must be ≤ its bucket's upper bound.
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		if BucketBound(i) <= 0 {
			t.Errorf("bucket %d has non-positive bound %v", i, BucketBound(i))
		}
	}
	// 0.75 ∈ (0.5, 1]: Ilogb(0.75) = -1, so its bound is 2^0 = 1.
	idx := math.Ilogb(0.75) - histMinExp
	if h.counts[idx] != 1 || BucketBound(idx) != 1 {
		t.Errorf("0.75 in bucket %d (bound %v, count %d), want bound 1",
			idx, BucketBound(idx), h.counts[idx])
	}
}

func TestSnapshotSortedAndCumulative(t *testing.T) {
	r := NewRegistry()
	r.Counter("z_total").Add(1)
	r.Counter("a_total").Add(2)
	h := r.Histogram("lat")
	h.Observe(0.25)
	h.Observe(0.25)
	h.Observe(4)

	snaps := r.Snapshot()
	for i := 1; i < len(snaps); i++ {
		if snaps[i-1].Key() > snaps[i].Key() {
			t.Errorf("snapshot not sorted: %q > %q", snaps[i-1].Key(), snaps[i].Key())
		}
	}
	var hs *MetricSnapshot
	for i := range snaps {
		if snaps[i].Name == "lat" {
			hs = &snaps[i]
		}
	}
	if hs == nil {
		t.Fatal("histogram missing from snapshot")
	}
	if hs.Count != 3 || hs.Sum != 4.5 {
		t.Errorf("histogram snapshot count=%d sum=%v", hs.Count, hs.Sum)
	}
	// Buckets must be cumulative and end at the total count.
	var last uint64
	for _, b := range hs.Bucket {
		if b.Count < last {
			t.Errorf("bucket counts not cumulative: %v", hs.Bucket)
		}
		last = b.Count
	}
	if last != hs.Count {
		t.Errorf("last cumulative bucket %d != count %d", last, hs.Count)
	}
}
