// Package telemetry is the observability layer of the reproduction: a
// per-rank metrics registry (counters, gauges, log-bucketed histograms, and
// dedicated flop/byte counters), lightweight nestable spans for per-phase
// wall-clock, collective cross-rank profile aggregation over an mpi.Comm
// (min/mean/max/imbalance per phase — the shape of the paper's Table I), and
// exporters to Prometheus text format, JSON, and Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing).
//
// The paper derives its headline evidence from the Fujitsu sampling profiler;
// our substitute is this package. Ranks are goroutines, so every Recorder is
// rank-local by design: no locks or atomics are taken on the recording path,
// and cross-rank views are produced only by the collective Aggregate or by
// the exporters after the world has finished.
//
// The clock is injectable so span tests are deterministic.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind discriminates metric types.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Label is one key="value" dimension of a metric.
type Label struct {
	Key, Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing value. Not safe for concurrent use:
// counters belong to one rank (one goroutine).
type Counter struct{ v float64 }

// Add increments the counter by d (d must be ≥ 0).
func (c *Counter) Add(d float64) { c.v += d }

// AddUint increments the counter by n.
func (c *Counter) AddUint(n uint64) { c.v += float64(n) }

// Value returns the current value.
func (c *Counter) Value() float64 { return c.v }

// Gauge is a value that can go up and down.
type Gauge struct{ v float64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Add adjusts the gauge by d.
func (g *Gauge) Add(d float64) { g.v += d }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// histMinExp is the exponent of the smallest histogram bucket: bucket i
// covers [2^(histMinExp+i), 2^(histMinExp+i+1)). With 64 buckets the range
// spans ~1 ns to ~2×10^10 when observing seconds.
const histMinExp = -30

// histBuckets is the number of log2 buckets.
const histBuckets = 64

// Histogram accumulates observations into power-of-two buckets — the
// log-bucketed shape a sampling profiler produces, cheap enough for the
// recording path (one Ilogb + one increment).
type Histogram struct {
	counts [histBuckets]uint64
	sum    float64
	n      uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	idx := 0
	if v > 0 {
		idx = math.Ilogb(v) - histMinExp
		if idx < 0 {
			idx = 0
		} else if idx >= histBuckets {
			idx = histBuckets - 1
		}
	}
	h.counts[idx]++
	h.sum += v
	h.n++
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return h.sum }

// BucketBound returns the inclusive upper bound of bucket i.
func BucketBound(i int) float64 { return math.Ldexp(1, histMinExp+i+1) }

// metric is one registered instrument.
type metric struct {
	name   string
	labels []Label
	kind   Kind
	unit   string // free-form unit hint ("seconds", "flops", "bytes")
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// Registry owns a rank's metrics. Like Recorder it is rank-local: method
// calls must come from the owning goroutine (or after the world finished).
type Registry struct {
	byKey map[string]*metric
	order []*metric // registration order; Snapshot sorts a copy
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byKey: make(map[string]*metric)}
}

// MetricKey returns the canonical name{labels} identity under which a metric
// appears in snapshots and aggregated profiles (labels are sorted by key), so
// consumers like cmd/tableone can look up labelled counters — e.g.
// Profile.Counter(MetricKey(MetricPoolBusySeconds, L("phase", name))) —
// without hand-formatting the key.
func MetricKey(name string, labels ...Label) string {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	return metricKey(name, sorted)
}

// metricKey canonicalizes a (name, labels) pair.
func metricKey(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func (r *Registry) lookup(name string, labels []Label, kind Kind, unit string) *metric {
	sorted := append([]Label(nil), labels...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key < sorted[j].Key })
	key := metricKey(name, sorted)
	if m, ok := r.byKey[key]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %v (was %v)", key, kind, m.kind))
		}
		return m
	}
	m := &metric{name: name, labels: sorted, kind: kind, unit: unit}
	switch kind {
	case KindCounter:
		m.c = &Counter{}
	case KindGauge:
		m.g = &Gauge{}
	case KindHistogram:
		m.h = &Histogram{}
	}
	r.byKey[key] = m
	r.order = append(r.order, m)
	return m
}

// Counter returns (registering on first use) the named counter.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return r.lookup(name, labels, KindCounter, "").c
}

// FlopCounter returns a counter whose unit is floating-point operations.
func (r *Registry) FlopCounter(name string, labels ...Label) *Counter {
	return r.lookup(name, labels, KindCounter, "flops").c
}

// ByteCounter returns a counter whose unit is bytes.
func (r *Registry) ByteCounter(name string, labels ...Label) *Counter {
	return r.lookup(name, labels, KindCounter, "bytes").c
}

// SecondsCounter returns a counter whose unit is seconds.
func (r *Registry) SecondsCounter(name string, labels ...Label) *Counter {
	return r.lookup(name, labels, KindCounter, "seconds").c
}

// Gauge returns (registering on first use) the named gauge.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return r.lookup(name, labels, KindGauge, "").g
}

// Histogram returns (registering on first use) the named histogram.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return r.lookup(name, labels, KindHistogram, "").h
}

// BucketCount is one non-empty histogram bucket in a snapshot.
type BucketCount struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"` // cumulative
}

// MetricSnapshot is the exportable state of one metric.
type MetricSnapshot struct {
	Name   string        `json:"name"`
	Labels []Label       `json:"labels,omitempty"`
	Kind   Kind          `json:"-"`
	Unit   string        `json:"unit,omitempty"`
	Value  float64       `json:"value"`            // counter/gauge
	Sum    float64       `json:"sum,omitempty"`    // histogram
	Count  uint64        `json:"n,omitempty"`      // histogram
	Bucket []BucketCount `json:"bucket,omitempty"` // histogram, cumulative
}

// Key returns the canonical name{labels} identity of the snapshot.
func (s MetricSnapshot) Key() string { return metricKey(s.Name, s.Labels) }

// Snapshot returns the registry state sorted by (name, labels) for
// deterministic export.
func (r *Registry) Snapshot() []MetricSnapshot {
	out := make([]MetricSnapshot, 0, len(r.order))
	for _, m := range r.order {
		s := MetricSnapshot{Name: m.name, Labels: m.labels, Kind: m.kind, Unit: m.unit}
		switch m.kind {
		case KindCounter:
			s.Value = m.c.Value()
		case KindGauge:
			s.Value = m.g.Value()
		case KindHistogram:
			s.Sum = m.h.sum
			s.Count = m.h.n
			var cum uint64
			for i, c := range m.h.counts {
				if c == 0 {
					continue
				}
				cum += c
				s.Bucket = append(s.Bucket, BucketCount{UpperBound: BucketBound(i), Count: cum})
			}
		}
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key() < out[j].Key() })
	return out
}
