package telemetry

import (
	"testing"
	"time"
)

// stepClock returns a Clock that advances by step on every reading, starting
// at the Unix epoch. NewRecorder consumes reading 0 for its epoch, so the
// first span start lands at exactly one step.
func stepClock(step time.Duration) Clock {
	var n int64
	base := time.Unix(0, 0)
	return func() time.Time {
		t := base.Add(time.Duration(n) * step)
		n++
		return t
	}
}

func TestSpanNestingDeterministic(t *testing.T) {
	rec := NewRecorder(3, stepClock(time.Millisecond))
	rec.EnableTrace(true)

	// Clock readings (ms): epoch=0, outer.start=1, inner.start=2, inner.end=3,
	// inner2.start=4, inner2.end=5, outer.end=6.
	outer := rec.Start(SpanPP)
	inner := rec.Start(PhasePPComm)
	if d := inner.End(); d != time.Millisecond {
		t.Errorf("inner span = %v, want 1ms", d)
	}
	inner2 := rec.Start(PhasePPTreeConstr)
	if d := inner2.End(); d != time.Millisecond {
		t.Errorf("inner2 span = %v, want 1ms", d)
	}
	if d := outer.End(); d != 5*time.Millisecond {
		t.Errorf("outer span = %v, want 5ms", d)
	}

	if got := rec.PhaseSeconds(SpanPP); got != 0.005 {
		t.Errorf("PP seconds = %v, want 0.005", got)
	}
	if got := rec.PhaseSeconds(PhasePPComm); got != 0.001 {
		t.Errorf("pp/comm seconds = %v, want 0.001", got)
	}
	if got := rec.PhaseSeconds("never/ran"); got != 0 {
		t.Errorf("unrecorded phase = %v, want 0", got)
	}

	evs := rec.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	// Events appear in completion order; depth captures nesting.
	want := []struct {
		name  string
		start time.Duration
		dur   time.Duration
		depth int32
	}{
		{PhasePPComm, 2 * time.Millisecond, time.Millisecond, 1},
		{PhasePPTreeConstr, 4 * time.Millisecond, time.Millisecond, 1},
		{SpanPP, 1 * time.Millisecond, 5 * time.Millisecond, 0},
	}
	for i, w := range want {
		e := evs[i]
		if e.Name != w.name || e.Start != w.start || e.Dur != w.dur || e.Depth != w.depth {
			t.Errorf("event %d = %+v, want %+v", i, e, w)
		}
	}
}

func TestAddPhaseAccumulates(t *testing.T) {
	rec := NewRecorder(0, stepClock(time.Millisecond))
	rec.AddPhase(PhasePPForce, 30*time.Millisecond)
	rec.AddPhase(PhasePPForce, 20*time.Millisecond)
	if got := rec.PhaseSeconds(PhasePPForce); got != 0.05 {
		t.Errorf("pp/force = %v, want 0.05", got)
	}
	// AddPhase must not emit trace events even when tracing.
	rec2 := NewRecorder(0, stepClock(time.Millisecond))
	rec2.EnableTrace(true)
	rec2.AddPhase(PhasePPForce, time.Millisecond)
	if len(rec2.Events()) != 0 {
		t.Errorf("AddPhase emitted %d trace events", len(rec2.Events()))
	}
}

func TestTraceDisabledByDefault(t *testing.T) {
	rec := NewRecorder(0, stepClock(time.Millisecond))
	sp := rec.Start(SpanPM)
	sp.End()
	if len(rec.Events()) != 0 {
		t.Error("events recorded with tracing off")
	}
	if rec.PhaseSeconds(SpanPM) == 0 {
		t.Error("phase accumulator must work with tracing off")
	}
}

func TestNilRecorderSafe(t *testing.T) {
	var rec *Recorder
	sp := rec.Start(SpanPM)
	if d := sp.End(); d != 0 {
		t.Errorf("nil recorder span = %v", d)
	}
	rec.AddPhase(SpanPM, time.Second)
	rec.EnableTrace(true)
	if rec.TraceEnabled() {
		t.Error("nil recorder reports tracing enabled")
	}
	if rec.PhaseSeconds(SpanPM) != 0 || rec.Events() != nil {
		t.Error("nil recorder returned data")
	}
}

func TestPhaseIDInterning(t *testing.T) {
	rec := NewRecorder(0, stepClock(time.Millisecond))
	id := rec.PhaseID(PhasePMFFT)
	if rec.PhaseID(PhasePMFFT) != id {
		t.Error("PhaseID not stable")
	}
	sp := rec.StartID(id)
	sp.End()
	if rec.PhaseSeconds(PhasePMFFT) != 0.001 {
		t.Errorf("StartID did not accumulate: %v", rec.PhaseSeconds(PhasePMFFT))
	}
	names := rec.PhaseNames()
	if len(names) != 1 || names[0] != PhasePMFFT {
		t.Errorf("PhaseNames = %v", names)
	}
}

// TestSpanHistogram checks each span duration lands one observation in the
// per-phase histogram.
func TestSpanHistogram(t *testing.T) {
	rec := NewRecorder(0, stepClock(time.Millisecond))
	for i := 0; i < 4; i++ {
		sp := rec.Start(PhasePMFFT)
		sp.End()
	}
	for _, s := range rec.Registry().Snapshot() {
		if s.Name == spanSecondsMetric {
			if s.Count != 4 {
				t.Errorf("histogram count = %d, want 4", s.Count)
			}
			return
		}
	}
	t.Error("span histogram not registered")
}
