package sim

import (
	"time"

	"greem/internal/mpi"
	"greem/internal/ppkern"
	"greem/internal/telemetry"
	"greem/internal/tree"
	"greem/internal/vec"
)

// computePM evaluates the long-range force for the local particles. The PM
// phase breakdown (pm/density … pm/interp) is recorded by the solver itself,
// on the same recorder; the top-level PM span carries the step-cycle
// structure into the trace.
func (s *Sim) computePM() {
	sp := s.rec.Start(telemetry.SpanPM)
	for i := range s.apx {
		s.apx[i], s.apy[i], s.apz[i] = 0, 0, 0
	}
	s.pm.Accel(s.x, s.y, s.z, s.m, s.apx, s.apy, s.apz)
	s.lastPMCost = sp.End().Seconds()
	if s.cfg.DeterministicCost {
		s.lastPMCost = float64(len(s.x) + 1)
	}
	s.pmFresh = true
}

// computePMPP runs one overlapped PM‖PP window: density assignment, then the
// PM comm+FFT solve on a background goroutine over the duplicated comm while
// computePP runs the full short-range pipeline on this goroutine, joined
// before returning. Both stages read the same (frozen) positions and write
// disjoint accumulators (apx/… vs asx/…), and the PM stages execute exactly
// the code the sequential Accel runs, so the result is bit-identical to
// computePM(); computePP() — asserted by the overlap parity tests.
//
// costEarly preserves the sequential DeterministicCost sequencing: the
// leading (pre-kick) window replaces computePM-then-computePP, where the PM
// cost proxy is set before computePP reads it; the trailing window replaces
// computePP-then-computePM, where computePP reads the previous value.
func (s *Sim) computePMPP(costEarly bool) {
	t0 := time.Now()
	sp := s.rec.Start(telemetry.SpanPM)
	for i := range s.apx {
		s.apx[i], s.apy[i], s.apz[i] = 0, 0, 0
	}
	s.pm.AccelStart(s.x, s.y, s.z, s.m)
	d1 := sp.End()
	if s.cfg.DeterministicCost && costEarly {
		s.lastPMCost = float64(len(s.x) + 1)
	}

	s.computePP()

	// The join. The fault point lets the restart battery kill a rank with a
	// solve in flight; the second PM span keeps the trace's span nesting
	// LIFO (the PP span opened and closed in between).
	s.comm.FaultPoint("overlap/join")
	sp = s.rec.Start(telemetry.SpanPM)
	st := s.pm.AccelWait(s.x, s.y, s.z, s.apx, s.apy, s.apz)
	d2 := sp.End()

	hidden := st.Solve - st.Wait
	if hidden < 0 {
		hidden = 0
	}
	window := time.Since(t0)
	s.rec.AddPhase(telemetry.PhaseOverlapJoin, st.Wait)
	s.rec.AddPhase(telemetry.PhaseOverlapWindow, window)
	s.ctrOverlapHidden.Add(hidden.Seconds())
	s.gaugeOverlapCrit.Set(window.Seconds())

	if s.cfg.DeterministicCost {
		s.lastPMCost = float64(len(s.x) + 1)
	} else {
		// The PM cycle's own cost: both spans plus the background solve,
		// minus the joined wait (already inside d2).
		s.lastPMCost = (d1 + d2 + st.Solve - st.Wait).Seconds()
	}
	s.pmFresh = true
}

// computePP evaluates the short-range (tree) force for the local particles:
// ghost exchange, source/target tree construction, grouped traversal and the
// cutoff kernel. It also updates lastCost for the sampling method.
func (s *Sim) computePP() {
	spAll := s.rec.Start(telemetry.SpanPP)

	srcTree, tgtTree, nGhosts := s.buildSourceTrees()

	for i := range s.asx {
		s.asx[i], s.asy[i], s.asz[i] = 0, 0, 0
	}
	sp := s.rec.Start(telemetry.PhasePPTreeWalk)
	// When no ghosts arrived the single tree must handle periodicity itself,
	// since no ghosts encode the wrap.
	st := s.walker.Accel(srcTree, tgtTree, s.cfg.Ni, s.forceOpts(nGhosts == 0), s.asx, s.asy, s.asz)
	fused := sp.End().Seconds()
	// The walk fuses traversal and force; split it for Table I using the
	// kernel's own clock, and feed the interaction ledger.
	kernel := st.KernelSeconds
	if kernel > fused {
		kernel = fused
	}
	s.rec.AddPhase(telemetry.PhasePPForce, time.Duration(kernel*float64(time.Second)))
	s.rec.AddPhase(telemetry.PhasePPTraverse, time.Duration((fused-kernel)*float64(time.Second)))
	s.ctrGroups.AddUint(uint64(st.Groups))
	s.ctrSumNi.AddUint(st.SumNi)
	s.ctrListP.AddUint(st.ListParticles)
	s.ctrListN.AddUint(st.ListNodes)
	s.ctrInter.AddUint(st.Interactions)
	s.ctrNodes.AddUint(st.NodesVisited)
	s.ctrFlops.AddUint(st.Flops())
	// Per-step Table I gauges (this pass, not the run total).
	s.gaugeNi.Set(st.MeanNi())
	s.gaugeNj.Set(st.MeanNj())

	s.lastCost = spAll.End().Seconds() + s.lastPMCost/float64(s.cfg.Substeps)
	if s.cfg.DeterministicCost {
		s.lastCost = float64(st.Interactions+1) + s.lastPMCost/float64(s.cfg.Substeps)
	}
	s.ppFresh = true
}

func (s *Sim) forceOpts(periodic bool) tree.ForceOpts {
	return tree.ForceOpts{
		G: s.cfg.G, Theta: s.cfg.Theta, Eps2: s.cfg.Eps2,
		Cutoff: true, Rcut: s.cfg.Rcut,
		Periodic: periodic, L: s.cfg.L,
		FastKernel: s.cfg.FastKernel, Float32Kernel: s.cfg.Float32Kernel,
		Workers: s.cfg.Workers,
	}
}

// kickRange is the pooled kick task: a pure per-particle update over a
// disjoint index range, so the parallel kick is trivially bit-identical to
// the serial loop. tkx/tky/tkz alias the acceleration component arrays.
func (s *Sim) kickRange(w, lo, hi int) {
	k := s.tkf
	ax, ay, az := s.tkx, s.tky, s.tkz
	for i := lo; i < hi; i++ {
		s.vx[i] += k * ax[i]
		s.vy[i] += k * ay[i]
		s.vz[i] += k * az[i]
	}
}

// kick applies one kick with the given acceleration arrays over [t, t+dt],
// batched over the rank's worker pool. The "sim/kick" fault point lets
// crash-restart tests kill a rank mid-step, between force evaluation and
// the velocity update.
func (s *Sim) kick(t, dt float64, ax, ay, az []float64) {
	s.comm.FaultPoint("sim/kick")
	s.tkf = s.cfg.Stepper.KickFactor(t, dt)
	s.tkx, s.tky, s.tkz = ax, ay, az
	s.pool.Run(len(s.vx), s.taskKick)
	s.tkx, s.tky, s.tkz = nil, nil, nil
	s.notePool(s.poolBusyKick, s.poolIdleKick)
}

// kickPM applies the long-range kick over [t, t+dt].
func (s *Sim) kickPM(t, dt float64) { s.kick(t, dt, s.apx, s.apy, s.apz) }

// kickPP applies the short-range kick over [t, t+dt].
func (s *Sim) kickPP(t, dt float64) { s.kick(t, dt, s.asx, s.asy, s.asz) }

// driftRange is the pooled drift task (pure per-particle, disjoint ranges).
func (s *Sim) driftRange(w, lo, hi int) {
	d := s.tdf
	l := s.cfg.L
	for i := lo; i < hi; i++ {
		p := vec.Wrap(vec.V3{X: s.x[i] + d*s.vx[i], Y: s.y[i] + d*s.vy[i], Z: s.z[i] + d*s.vz[i]}, l)
		s.x[i], s.y[i], s.z[i] = p.X, p.Y, p.Z
	}
}

// drift advances positions over [t, t+dt] and wraps them into the box.
func (s *Sim) drift(t, dt float64) {
	sp := s.rec.Start(telemetry.PhaseDDPosUpdate)
	s.tdf = s.cfg.Stepper.DriftFactor(t, dt)
	s.pool.Run(len(s.x), s.taskDrift)
	s.time += dt
	sp.End()
	s.notePool(s.poolBusyDrift, s.poolIdleDrift)
	s.pmFresh = false
	s.ppFresh = false
}

// notePool attributes pool time accumulated since the last call to the given
// busy/idle counter pair (no-op for the nil serial pool).
func (s *Sim) notePool(busy, idle *telemetry.Counter) {
	b, id := s.pool.TakeBusy()
	if b == 0 && id == 0 {
		return
	}
	busy.Add(b.Seconds())
	idle.Add(id.Seconds())
}

// Step advances the system by one full step Δ: a half long-range kick, then
// Substeps short-range KDK cycles (each with a fresh domain decomposition and
// short-range force), then the long-range force and the closing half kick —
// the multiple-stepsize symplectic scheme of Duncan, Levison & Lee (1998)
// that the paper adopts ("one step = a cycle of PM and two cycles of PP and
// domain decomposition"). With Config.OverlapPMPP the two points where a PM
// cycle and a PP cycle consume the same positions — the leading stale-force
// pair and the trailing PM with the final substep's PP — run as overlapped
// windows (computePMPP), hiding the PM solve behind the tree walk; forces
// and trajectories are bit-identical either way. Collective over the world
// communicator.
func (s *Sim) Step() error {
	s.comm.FaultPoint("sim/step")
	dt := s.cfg.DT
	sub := s.cfg.Substeps
	delta := dt / float64(sub)
	t0 := s.time

	if s.cfg.OverlapPMPP && !s.pmFresh && !s.ppFresh {
		s.computePMPP(true)
	} else {
		if !s.pmFresh {
			s.computePM()
		}
		if !s.ppFresh {
			s.computePP()
		}
	}
	s.kickPM(t0, dt/2)

	tk := t0
	for k := 0; k < sub; k++ {
		s.kickPP(tk, delta/2)
		s.drift(tk, delta)
		if err := s.domainDecomposition(); err != nil {
			return err
		}
		if s.cfg.OverlapPMPP && k == sub-1 {
			// Final substep: the trailing PM solve rides behind this PP. An
			// in-situ-due step arms the spectrum tap here — the solve sees
			// the step's final positions (only kicks follow).
			s.armInSitu()
			s.computePMPP(false)
		} else {
			s.computePP()
		}
		s.kickPP(tk+delta/2, delta/2)
		tk += delta
	}

	if !s.pmFresh {
		// The sequential path's trailing solve (always reached: drift
		// cleared pmFresh and the substep PP passes don't set it); the
		// in-situ arm rides on whichever trailing solve the mode runs.
		s.armInSitu()
		s.computePM()
	}
	s.kickPM(t0+dt/2, dt/2)
	s.step++
	s.maybeInSitu()
	return nil
}

// Kinetic returns the global kinetic energy (collective).
func (s *Sim) Kinetic() float64 {
	var k float64
	for i := range s.vx {
		k += 0.5 * s.m[i] * (s.vx[i]*s.vx[i] + s.vy[i]*s.vy[i] + s.vz[i]*s.vz[i])
	}
	return globalSum(s, k)
}

// InteractionsPerStep estimates pairwise interactions per full step from the
// accumulated counters (collective).
func (s *Sim) InteractionsPerStep() float64 {
	tot := globalSum(s, s.ctrInter.Value())
	if s.step == 0 {
		return tot
	}
	return tot / float64(s.step)
}

func globalSum(s *Sim, v float64) float64 {
	return mpi.Allreduce(s.comm, []float64{v}, mpi.Sum[float64])[0]
}

// MeanNiNj returns the global ⟨Ni⟩ and ⟨Nj⟩ (collective).
func (s *Sim) MeanNiNj() (ni, nj float64) {
	groups := globalSum(s, s.ctrGroups.Value())
	sumNi := globalSum(s, s.ctrSumNi.Value())
	list := globalSum(s, s.ctrListP.Value()+s.ctrListN.Value())
	if groups == 0 {
		return 0, 0
	}
	return sumNi / groups, list / groups
}

// AccelFor returns a copy of the current total acceleration of local
// particle i (PM + PP), for tests.
func (s *Sim) AccelFor(i int) (ax, ay, az float64) {
	return s.apx[i] + s.asx[i], s.apy[i] + s.asy[i], s.apz[i] + s.asz[i]
}

// ComputeForces evaluates both force components without advancing time (for
// force-accuracy tests). Collective.
func (s *Sim) ComputeForces() {
	if !s.pmFresh {
		s.computePM()
	}
	if !s.ppFresh {
		s.computePP()
	}
}

// ID returns local particle i's identifier.
func (s *Sim) ID(i int) int64 { return s.id[i] }

// potTable is the shared short-range potential shape (rcut-independent).
var potTable = ppkern.NewPotTable(2048)

// PotentialEnergy returns the global potential energy ½·Σ mᵢ·Φᵢ from the
// most recent force evaluation's PM potential mesh plus a short-range tree
// potential pass. Collective; call after ComputeForces or a Step. Like all
// mesh-based energies it carries a small constant self-energy offset, so use
// it for *drift* tracking (its physical use in production runs, where an
// O(N²) Ewald energy is impossible).
func (s *Sim) PotentialEnergy() float64 {
	n := len(s.x)
	// Reused Sim-owned buffer; growFloats doesn't zero and InterpolatePot
	// accumulates, so clear it explicitly.
	s.pot = growFloats(s.pot, n)
	pot := s.pot
	for i := range pot {
		pot[i] = 0
	}
	// Long-range part from the PM potential mesh (current decomposition).
	s.pm.LocalMesh().InterpolatePot(s.x, s.y, s.z, pot)

	// Short-range part: same ghost + tree machinery as the force.
	srcTree, tgtTree, nGhosts := s.buildSourceTrees()
	fo := s.forceOpts(nGhosts == 0)
	tree.PotentialCutoff(srcTree, tgtTree, s.cfg.Ni, fo, potTable, pot)

	var e float64
	for i := 0; i < n; i++ {
		e += 0.5 * s.m[i] * pot[i]
	}
	return globalSum(s, e)
}

// OverlapStats is this rank's overlapped-pipeline accounting: the cumulative
// PM solve seconds hidden behind the concurrent PP computation, and the most
// recent overlapped window's critical-path wall-clock.
type OverlapStats struct {
	HiddenSeconds     float64
	LastWindowSeconds float64
}

// OverlapStats materializes the overlap telemetry from the registry.
func (s *Sim) OverlapStats() OverlapStats {
	return OverlapStats{
		HiddenSeconds:     s.ctrOverlapHidden.Value(),
		LastWindowSeconds: s.gaugeOverlapCrit.Value(),
	}
}
