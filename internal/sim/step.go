package sim

import (
	"time"

	"greem/internal/mpi"
	"greem/internal/pmpar"
	"greem/internal/ppkern"
	"greem/internal/tree"
	"greem/internal/vec"
)

// computePM evaluates the long-range force for the local particles.
func (s *Sim) computePM() {
	for i := range s.apx {
		s.apx[i], s.apy[i], s.apz[i] = 0, 0, 0
	}
	before := s.pm.Times
	s.pm.Accel(s.x, s.y, s.z, s.m, s.apx, s.apy, s.apz)
	s.Timers.PM.Add(subTimings(s.pm.Times, before))
	s.pmFresh = true
}

// subTimings returns a − b fieldwise.
func subTimings(a, b pmpar.Timings) pmpar.Timings {
	return pmpar.Timings{
		Density:   a.Density - b.Density,
		Comm:      a.Comm - b.Comm,
		FFT:       a.FFT - b.FFT,
		MeshForce: a.MeshForce - b.MeshForce,
		Interp:    a.Interp - b.Interp,
	}
}

// computePP evaluates the short-range (tree) force for the local particles:
// ghost exchange, source/target tree construction, grouped traversal and the
// cutoff kernel. It also updates lastCost for the sampling method.
func (s *Sim) computePP() {
	tAll := time.Now()

	t0 := time.Now()
	ghosts := s.exchangeGhosts()
	s.Timers.PPComm += time.Since(t0).Seconds()

	t1 := time.Now()
	// Assemble the source set: local particles plus ghosts.
	n := len(s.x)
	sx := make([]float64, n+len(ghosts))
	sy := make([]float64, n+len(ghosts))
	sz := make([]float64, n+len(ghosts))
	sm := make([]float64, n+len(ghosts))
	copy(sx, s.x)
	copy(sy, s.y)
	copy(sz, s.z)
	copy(sm, s.m)
	for i, g := range ghosts {
		sx[n+i], sy[n+i], sz[n+i], sm[n+i] = g.X, g.Y, g.Z, g.M
	}
	s.Timers.PPLocalTree += time.Since(t1).Seconds()

	t2 := time.Now()
	opts := tree.Options{LeafCap: s.cfg.LeafCap}
	srcTree, err := tree.Build(sx, sy, sz, sm, opts)
	if err != nil {
		panic(err)
	}
	tgtTree := srcTree
	if len(ghosts) > 0 {
		tgtTree, err = tree.Build(s.x, s.y, s.z, s.m, opts)
		if err != nil {
			panic(err)
		}
	}
	s.Timers.PPTreeConstr += time.Since(t2).Seconds()

	for i := range s.asx {
		s.asx[i], s.asy[i], s.asz[i] = 0, 0, 0
	}
	t3 := time.Now()
	var st tree.Stats
	if len(ghosts) > 0 {
		st = tree.Accel(srcTree, tgtTree, s.cfg.Ni, s.forceOpts(false), s.asx, s.asy, s.asz)
	} else {
		// Single-rank (or isolated) case: the tree must handle periodicity
		// itself since no ghosts encode the wrap.
		st = tree.Accel(srcTree, tgtTree, s.cfg.Ni, s.forceOpts(true), s.asx, s.asy, s.asz)
	}
	fused := time.Since(t3).Seconds()
	s.Timers.PPForce += st.KernelSeconds
	s.Timers.PPTraverse += fused - st.KernelSeconds
	s.Counters.Tree.Add(st)

	s.lastCost = time.Since(tAll).Seconds() + s.pm.Times.Total().Seconds()/float64(s.cfg.Substeps)
	s.ppFresh = true
}

func (s *Sim) forceOpts(periodic bool) tree.ForceOpts {
	return tree.ForceOpts{
		G: s.cfg.G, Theta: s.cfg.Theta, Eps2: s.cfg.Eps2,
		Cutoff: true, Rcut: s.cfg.Rcut,
		Periodic: periodic, L: s.cfg.L,
		FastKernel: s.cfg.FastKernel, Workers: s.cfg.Workers,
	}
}

// kickPM applies the long-range kick over [t, t+dt].
func (s *Sim) kickPM(t, dt float64) {
	k := s.cfg.Stepper.KickFactor(t, dt)
	for i := range s.vx {
		s.vx[i] += k * s.apx[i]
		s.vy[i] += k * s.apy[i]
		s.vz[i] += k * s.apz[i]
	}
}

// kickPP applies the short-range kick over [t, t+dt].
func (s *Sim) kickPP(t, dt float64) {
	k := s.cfg.Stepper.KickFactor(t, dt)
	for i := range s.vx {
		s.vx[i] += k * s.asx[i]
		s.vy[i] += k * s.asy[i]
		s.vz[i] += k * s.asz[i]
	}
}

// drift advances positions over [t, t+dt] and wraps them into the box.
func (s *Sim) drift(t, dt float64) {
	t0 := time.Now()
	d := s.cfg.Stepper.DriftFactor(t, dt)
	l := s.cfg.L
	for i := range s.x {
		p := vec.Wrap(vec.V3{X: s.x[i] + d*s.vx[i], Y: s.y[i] + d*s.vy[i], Z: s.z[i] + d*s.vz[i]}, l)
		s.x[i], s.y[i], s.z[i] = p.X, p.Y, p.Z
	}
	s.time += dt
	s.Timers.DDPosUpdate += time.Since(t0).Seconds()
	s.pmFresh = false
	s.ppFresh = false
}

// Step advances the system by one full step Δ: a half long-range kick, then
// Substeps short-range KDK cycles (each with a fresh domain decomposition and
// short-range force), then the long-range force and the closing half kick —
// the multiple-stepsize symplectic scheme of Duncan, Levison & Lee (1998)
// that the paper adopts ("one step = a cycle of PM and two cycles of PP and
// domain decomposition"). Collective over the world communicator.
func (s *Sim) Step() error {
	dt := s.cfg.DT
	sub := s.cfg.Substeps
	delta := dt / float64(sub)
	t0 := s.time

	if !s.pmFresh {
		s.computePM()
	}
	if !s.ppFresh {
		s.computePP()
	}
	s.kickPM(t0, dt/2)

	tk := t0
	for k := 0; k < sub; k++ {
		s.kickPP(tk, delta/2)
		s.drift(tk, delta)
		if err := s.domainDecomposition(); err != nil {
			return err
		}
		s.computePP()
		s.kickPP(tk+delta/2, delta/2)
		tk += delta
	}

	s.computePM()
	s.kickPM(t0+dt/2, dt/2)
	s.step++
	return nil
}

// Kinetic returns the global kinetic energy (collective).
func (s *Sim) Kinetic() float64 {
	var k float64
	for i := range s.vx {
		k += 0.5 * s.m[i] * (s.vx[i]*s.vx[i] + s.vy[i]*s.vy[i] + s.vz[i]*s.vz[i])
	}
	return globalSum(s, k)
}

// InteractionsPerStep estimates pairwise interactions per full step from the
// accumulated counters (collective).
func (s *Sim) InteractionsPerStep() float64 {
	tot := globalSum(s, float64(s.Counters.Tree.Interactions))
	if s.step == 0 {
		return tot
	}
	return tot / float64(s.step)
}

func globalSum(s *Sim, v float64) float64 {
	return mpi.Allreduce(s.comm, []float64{v}, mpi.Sum[float64])[0]
}

func sumAll(s *Sim, v float64) float64 { return globalSum(s, v) }

// MeanNiNj returns the global ⟨Ni⟩ and ⟨Nj⟩ (collective).
func (s *Sim) MeanNiNj() (ni, nj float64) {
	groups := sumAll(s, float64(s.Counters.Tree.Groups))
	sumNi := sumAll(s, float64(s.Counters.Tree.SumNi))
	list := sumAll(s, float64(s.Counters.Tree.ListParticles+s.Counters.Tree.ListNodes))
	if groups == 0 {
		return 0, 0
	}
	return sumNi / groups, list / groups
}

// AccelFor returns a copy of the current total acceleration of local
// particle i (PM + PP), for tests.
func (s *Sim) AccelFor(i int) (ax, ay, az float64) {
	return s.apx[i] + s.asx[i], s.apy[i] + s.asy[i], s.apz[i] + s.asz[i]
}

// ComputeForces evaluates both force components without advancing time (for
// force-accuracy tests). Collective.
func (s *Sim) ComputeForces() {
	if !s.pmFresh {
		s.computePM()
	}
	if !s.ppFresh {
		s.computePP()
	}
}

// ID returns local particle i's identifier.
func (s *Sim) ID(i int) int64 { return s.id[i] }

// potTable is the shared short-range potential shape (rcut-independent).
var potTable = ppkern.NewPotTable(2048)

// PotentialEnergy returns the global potential energy ½·Σ mᵢ·Φᵢ from the
// most recent force evaluation's PM potential mesh plus a short-range tree
// potential pass. Collective; call after ComputeForces or a Step. Like all
// mesh-based energies it carries a small constant self-energy offset, so use
// it for *drift* tracking (its physical use in production runs, where an
// O(N²) Ewald energy is impossible).
func (s *Sim) PotentialEnergy() float64 {
	n := len(s.x)
	pot := make([]float64, n)
	// Long-range part from the PM potential mesh (current decomposition).
	s.pm.LocalMesh().InterpolatePot(s.x, s.y, s.z, pot)

	// Short-range part: same ghost + tree machinery as the force.
	ghosts := s.exchangeGhosts()
	sx := make([]float64, n+len(ghosts))
	sy := make([]float64, n+len(ghosts))
	sz := make([]float64, n+len(ghosts))
	sm := make([]float64, n+len(ghosts))
	copy(sx, s.x)
	copy(sy, s.y)
	copy(sz, s.z)
	copy(sm, s.m)
	for i, g := range ghosts {
		sx[n+i], sy[n+i], sz[n+i], sm[n+i] = g.X, g.Y, g.Z, g.M
	}
	opts := tree.Options{LeafCap: s.cfg.LeafCap}
	srcTree, err := tree.Build(sx, sy, sz, sm, opts)
	if err != nil {
		panic(err)
	}
	tgtTree := srcTree
	if len(ghosts) > 0 {
		if tgtTree, err = tree.Build(s.x, s.y, s.z, s.m, opts); err != nil {
			panic(err)
		}
	}
	fo := s.forceOpts(len(ghosts) == 0)
	tree.PotentialCutoff(srcTree, tgtTree, s.cfg.Ni, fo, potTable, pot)

	var e float64
	for i := 0; i < n; i++ {
		e += 0.5 * s.m[i] * pot[i]
	}
	return globalSum(s, e)
}
