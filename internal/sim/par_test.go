package sim

import (
	"testing"

	"greem/internal/mpi"
	"greem/internal/telemetry"
)

// stepState runs nsteps full steps at the given worker count and returns the
// global position/velocity state indexed by particle ID. Single rank: the
// sampling domain decomposition apportions sample counts by *measured*
// wall-clock cost, so multi-rank state is not run-to-run reproducible by
// design (cost-adaptive, timing-dependent) — on one rank every sample lands
// on rank 0 and the whole step is deterministic, which isolates exactly what
// the worker pool must preserve: the compute kernels.
func stepState(t *testing.T, workers, nsteps int) (x, y, z, vx, vy, vz []float64) {
	t.Helper()
	const n = 150
	parts := makeParticles(17, n, 0.05)
	x = make([]float64, n)
	y = make([]float64, n)
	z = make([]float64, n)
	vx = make([]float64, n)
	vy = make([]float64, n)
	vz = make([]float64, n)
	cfg := baseConfig([3]int{1, 1, 1})
	cfg.Workers = workers
	err := mpi.Run(1, func(c *mpi.Comm) {
		s, err := New(c, cfg, parts)
		if err != nil {
			panic(err)
		}
		defer s.Close()
		for k := 0; k < nsteps; k++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
		}
		for _, p := range s.Particles() {
			x[p.ID], y[p.ID], z[p.ID] = p.X, p.Y, p.Z
			vx[p.ID], vy[p.ID], vz[p.ID] = p.VX, p.VY, p.VZ
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return
}

// TestStepWorkersBitIdentical: a full multi-step integration — PM pipeline,
// tree forces, kicks, drifts, domain decompositions — must produce
// bit-identical positions and velocities at Workers ∈ {1, 2, 7}.
func TestStepWorkersBitIdentical(t *testing.T) {
	const steps = 2
	rx, ry, rz, rvx, rvy, rvz := stepState(t, 1, steps)
	for _, w := range []int{2, 7} {
		x, y, z, vx, vy, vz := stepState(t, w, steps)
		for i := range x {
			if x[i] != rx[i] || y[i] != ry[i] || z[i] != rz[i] {
				t.Fatalf("workers=%d: position of particle %d = (%v, %v, %v), serial (%v, %v, %v)",
					w, i, x[i], y[i], z[i], rx[i], ry[i], rz[i])
			}
			if vx[i] != rvx[i] || vy[i] != rvy[i] || vz[i] != rvz[i] {
				t.Fatalf("workers=%d: velocity of particle %d differs from serial", w, i)
			}
		}
	}
}

// TestPoolTelemetryRecorded: with a parallel pool the per-phase busy
// counters must accumulate (they feed the imb(intra) column of tableone),
// and the serial run must leave them untouched.
func TestPoolTelemetryRecorded(t *testing.T) {
	for _, w := range []int{1, 3} {
		cfg := baseConfig([3]int{1, 1, 1})
		cfg.Workers = w
		parts := makeParticles(23, 120, 0.05)
		var busy float64
		err := mpi.Run(1, func(c *mpi.Comm) {
			rec := telemetry.NewRecorder(0, nil)
			cfg.Recorder = rec
			s, err := New(c, cfg, parts)
			if err != nil {
				panic(err)
			}
			defer s.Close()
			if err := s.Step(); err != nil {
				panic(err)
			}
			for _, snap := range rec.Registry().Snapshot() {
				if snap.Name == telemetry.MetricPoolBusySeconds {
					busy += snap.Value
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if w > 1 && busy <= 0 {
			t.Errorf("workers=%d: no pool busy time recorded", w)
		}
		if w == 1 && busy != 0 {
			t.Errorf("workers=%d: serial run recorded pool busy time %v", w, busy)
		}
	}
}
