package sim

import (
	"math"
	"testing"

	"greem/internal/mpi"
	"greem/internal/tree"
	"greem/internal/vec"
)

// fuzzPointBoxDist is an independent 27-image point-to-box distance: the
// minimum over all periodic images of p of the Euclidean distance to the box
// [lo, hi]. Deliberately not the per-axis BestShift factorization used by the
// exchange, so the two can disagree if either is wrong.
func fuzzPointBoxDist(p, lo, hi vec.V3, l float64) float64 {
	best := math.Inf(1)
	clamp := func(v, a, b float64) float64 { return math.Max(a, math.Min(b, v)) }
	for kx := -1; kx <= 1; kx++ {
		for ky := -1; ky <= 1; ky++ {
			for kz := -1; kz <= 1; kz++ {
				q := vec.V3{X: p.X + float64(kx)*l, Y: p.Y + float64(ky)*l, Z: p.Z + float64(kz)*l}
				dx := q.X - clamp(q.X, lo.X, hi.X)
				dy := q.Y - clamp(q.Y, lo.Y, hi.Y)
				dz := q.Z - clamp(q.Z, lo.Z, hi.Z)
				if d := math.Sqrt(dx*dx + dy*dy + dz*dz); d < best {
					best = d
				}
			}
		}
	}
	return best
}

// fuzzGrids are the process grids the fuzzer cycles through — including thin
// and tall decompositions whose domains are narrower than large rcut values.
var fuzzGrids = [][3]int{
	{1, 1, 1}, {2, 1, 1}, {2, 2, 1}, {2, 2, 2}, {4, 1, 1}, {3, 2, 1},
}

// FuzzGhostSelection drives the ghost exchange (both the raw-particle path
// and the LET walk) over fuzzed particle sets, process grids, and cutoffs,
// and asserts the selection invariant: every source a rank receives lies
// within the path's distance bound of that rank's domain box — rcut for raw
// particles, rcut/(1−√3·θ) for the LET path, whose accepted monopoles may
// stand off from the box by the opening-criterion slack (see
// tree.LETCollector). Shipped masses must be positive and no heavier than the
// whole system.
func FuzzGhostSelection(f *testing.F) {
	f.Add(int64(1), byte(3), byte(80), true)
	f.Add(int64(2), byte(3), byte(80), false)
	f.Add(int64(7), byte(4), byte(255), true) // rcut wider than the 4×1×1 slab
	f.Add(int64(9), byte(0), byte(0), false)  // single rank: nothing may ship
	f.Add(int64(5), byte(5), byte(140), true)

	f.Fuzz(func(t *testing.T, seed int64, gridSel, rcutSel byte, letOn bool) {
		grid := fuzzGrids[int(gridSel)%len(fuzzGrids)]
		p := grid[0] * grid[1] * grid[2]
		rcut := 0.02 + 0.3*float64(rcutSel)/255
		const n = 60
		parts := makeParticles(seed, n, 0)

		cfg := baseConfig(grid)
		cfg.Rcut = rcut
		cfg.LETExchange = letOn
		bound := rcut
		if letOn {
			bound = rcut / (1 - math.Sqrt(3)*cfg.Theta)
		}

		err := mpi.Run(p, func(c *mpi.Comm) {
			s, err := New(c, cfg, sliceFor(parts, c.Rank(), p))
			if err != nil {
				panic(err)
			}
			var lt *tree.Tree
			if letOn {
				if lt, err = tree.Build(s.x, s.y, s.z, s.m, tree.Options{LeafCap: cfg.LeafCap}); err != nil {
					panic(err)
				}
			}
			ghosts := s.exchangeGhosts(lt)
			lo, hi := s.bounds()
			var shipped float64
			for _, g := range ghosts {
				d := fuzzPointBoxDist(vec.V3{X: g.X, Y: g.Y, Z: g.Z}, lo, hi, cfg.L)
				if d > bound+1e-9 {
					t.Errorf("rank %d (let=%v): received source %+v at distance %v > bound %v (rcut %v)",
						c.Rank(), letOn, g, d, bound, rcut)
				}
				if g.M <= 0 {
					t.Errorf("rank %d: non-positive ghost mass %+v", c.Rank(), g)
				}
				shipped += g.M
			}
			// Each rank can receive at most the whole system's mass (every
			// remote particle, each shipped as exactly one image or folded
			// into monopoles of equal total mass).
			if shipped > 1+1e-9 {
				t.Errorf("rank %d: received mass %v exceeds system total 1", c.Rank(), shipped)
			}
			if p == 1 && len(ghosts) != 0 {
				t.Errorf("single rank received %d ghosts", len(ghosts))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}
