package sim

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"

	"greem/internal/analysis"
	"greem/internal/mpi"
)

// clusteredParticles builds a Plummer-like IC: Gaussian clusters (wrapped
// into the periodic box, so halos straddle rank and box boundaries) over a
// uniform background, cold (zero velocities keep the clusters bound over a
// few steps).
func clusteredParticles(seed int64, nclust, perClust, background int) []Particle {
	rng := rand.New(rand.NewSource(seed))
	wrap := func(v float64) float64 {
		v -= math.Floor(v)
		if v >= 1 {
			v = 0
		}
		return v
	}
	var out []Particle
	add := func(x, y, z float64) {
		out = append(out, Particle{X: x, Y: y, Z: z, ID: int64(len(out))})
	}
	for c := 0; c < nclust; c++ {
		cx, cy, cz := rng.Float64(), rng.Float64(), rng.Float64()
		for i := 0; i < perClust; i++ {
			add(wrap(cx+0.02*rng.NormFloat64()), wrap(cy+0.02*rng.NormFloat64()), wrap(cz+0.02*rng.NormFloat64()))
		}
	}
	for i := 0; i < background; i++ {
		add(rng.Float64(), rng.Float64(), rng.Float64())
	}
	n := len(out)
	for i := range out {
		out[i].M = 1.0 / float64(n)
	}
	return out
}

// insituRun steps an 8-rank sim to completion and returns rank 0's last
// in-situ emission plus the gathered, ID-sorted final particle state and
// final time. With resumeAt > 0 the world is torn down mid-run via
// State/Resume to prove the emission is restart-invariant.
func insituRun(t *testing.T, cfg Config, parts []Particle, steps, resumeAt int) (*InSituResult, []Particle, float64) {
	t.Helper()
	var res *InSituResult
	var all []Particle
	var tEnd float64
	err := mpi.Run(8, func(c *mpi.Comm) {
		resume := resumeAt // per-rank copy: the ranks share this closure
		s, err := New(c, cfg, sliceFor(parts, c.Rank(), 8))
		if err != nil {
			panic(err)
		}
		for s.StepIndex() < steps {
			if resume > 0 && s.StepIndex() == resume {
				st := s.State()
				s.Close()
				if s, err = Resume(c, cfg, st); err != nil {
					panic(err)
				}
				resume = 0
			}
			if err := s.Step(); err != nil {
				panic(err)
			}
		}
		got := s.GatherAll(0)
		if c.Rank() == 0 {
			res = s.InSituProducts()
			all = got
			sort.Slice(all, func(i, j int) bool { return all[i].ID < all[j].ID })
			tEnd = s.Time()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return res, all, tEnd
}

// TestDistFoFParity is the sim-level parity gate: the in-situ distributed
// FoF catalog emitted at the final step must be byte-identical to the serial
// finder run post hoc on the gathered, ID-sorted particle state — on
// clustered and uniform ICs, at Workers 1 and 7 (whose trajectories are
// bit-identical), and across a mid-run State/Resume cycle.
func TestDistFoFParity(t *testing.T) {
	const steps = 4
	cfg := baseConfig([3]int{2, 2, 2})
	cfg.DeterministicCost = true
	cfg.LETExchange = true
	cfg.InSituEvery = 2
	cfg.InSituFinalStep = steps
	cfg.InSituLL = 0.03
	cfg.InSituMinSize = 4
	cfg.InSituBins = -1 // this test is about the catalog
	cfg.InSituPix = -1

	for _, tc := range []struct {
		name  string
		parts []Particle
	}{
		{"clustered", clusteredParticles(3, 6, 60, 200)},
		{"uniform", makeParticles(4, 500, 0)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var first []byte
			for _, workers := range []int{1, 7} {
				wcfg := cfg
				wcfg.Workers = workers
				res, all, tEnd := insituRun(t, wcfg, tc.parts, steps, 0)
				if res == nil || res.Catalog == nil {
					t.Fatal("no in-situ catalog emitted")
				}
				if res.Step != steps {
					t.Fatalf("last emission at step %d, want %d", res.Step, steps)
				}

				// Serial oracle on the gathered, ID-sorted state.
				n := len(all)
				x, y, z, m := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
				for i, p := range all {
					x[i], y[i], z[i], m[i] = p.X, p.Y, p.Z, p.M
				}
				groups := analysis.FoF(x, y, z, cfg.L, res.LinkLen, res.MinSize)
				halos := analysis.Catalog(x, y, z, m, cfg.L, groups)
				want, err := analysis.EncodeCatalog(analysis.CatalogFile{
					Format: 1, L: cfg.L, Time: tEnd, Step: uint64(steps),
					LinkingLength: res.LinkLen, MinSize: res.MinSize, Halos: halos,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(want, res.Catalog) {
					t.Fatalf("workers=%d: in-situ catalog differs from serial post-hoc:\nserial:  %s\nin-situ: %s",
						workers, want, res.Catalog)
				}
				if first == nil {
					first = res.Catalog
				} else if !bytes.Equal(first, res.Catalog) {
					t.Fatalf("workers=%d catalog differs from workers=1", workers)
				}
			}

			// Resume leg: tearing the world down at step 2 and resuming must
			// reproduce the same final catalog bit for bit.
			res, _, _ := insituRun(t, cfg, tc.parts, steps, 2)
			if res == nil || !bytes.Equal(first, res.Catalog) {
				t.Fatal("catalog after State/Resume differs from the uninterrupted run")
			}
		})
	}
}

// pkConfig parameterizes one PM layout of the P(k) parity matrix.
func pkConfig(base Config, mode string) Config {
	cfg := base
	switch mode {
	case "relay":
		cfg.Relay = true
		cfg.Groups = 2
		cfg.NFFT = 4 // groups of 4 ranks each hold 4 slabs
	case "pencil":
		cfg.Pencil = true
		cfg.PY = 2
		cfg.PZ = 2
	}
	return cfg
}

// TestInSituPkMatchesPostHoc checks the on-the-fly spectrum against the
// serial post-hoc pipeline on every distributed FFT layout: k bins and mode
// counts bitwise identical, power within 1e-12 relative per bin, and the
// canonical encodings byte-identical (both paths quantize through
// CanonicalP).
func TestInSituPkMatchesPostHoc(t *testing.T) {
	const steps = 2
	parts := makeParticles(9, 400, 0)
	base := baseConfig([3]int{2, 2, 2})
	base.DeterministicCost = true
	base.InSituEvery = steps
	base.InSituFinalStep = steps
	base.InSituLL = -1 // FoF off: this test is about the spectrum
	base.InSituPix = -1
	base.InSituBins = 16

	for _, mode := range []string{"naive", "relay", "pencil"} {
		t.Run(mode, func(t *testing.T) {
			cfg := pkConfig(base, mode)
			res, all, tEnd := insituRun(t, cfg, parts, steps, 0)
			if res == nil || res.Power == nil {
				t.Fatal("no in-situ spectrum emitted")
			}

			n := len(all)
			x, y, z, m := make([]float64, n), make([]float64, n), make([]float64, n), make([]float64, n)
			for i, p := range all {
				x[i], y[i], z[i], m[i] = p.X, p.Y, p.Z, p.M
			}
			ks, ps, counts, err := analysis.PowerSpectrum(x, y, z, m, cfg.NMesh, cfg.L, 16)
			if err != nil {
				t.Fatal(err)
			}
			if len(ks) != len(res.Ks) {
				t.Fatalf("bin count differs: serial %d, in-situ %d", len(ks), len(res.Ks))
			}
			for i := range ks {
				if ks[i] != res.Ks[i] {
					t.Fatalf("bin %d: k differs bitwise: serial %v, in-situ %v", i, ks[i], res.Ks[i])
				}
				if counts[i] != res.Counts[i] {
					t.Fatalf("bin %d: mode count differs: serial %d, in-situ %d", i, counts[i], res.Counts[i])
				}
				if rel := math.Abs(res.Ps[i]-ps[i]) / math.Abs(ps[i]); rel > 1e-12 {
					t.Fatalf("bin %d: P differs by %.3e relative (serial %v, in-situ %v)", i, rel, ps[i], res.Ps[i])
				}
			}
			want, err := analysis.EncodePower(analysis.PowerFile{
				Format: 1, L: cfg.L, Time: tEnd, Step: uint64(steps),
				NMesh: cfg.NMesh, NBins: 16, K: ks, P: analysis.CanonicalP(ps), Count: counts,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, res.Power) {
				t.Fatalf("canonical spectrum encodings differ:\nserial:  %s\nin-situ: %s", want, res.Power)
			}
			if res.Shot != analysis.ShotNoise(cfg.L, int64(n)) {
				t.Fatalf("shot noise %v, want %v", res.Shot, analysis.ShotNoise(cfg.L, int64(n)))
			}
		})
	}
}

// TestInSituPkNoExtraAlltoall asserts the zero-extra-FFT contract on the
// traffic ledger: with only the spectrum tap enabled (FoF and projection
// off), the in-situ pass adds not a single Alltoallv byte over the identical
// run with in-situ analysis disabled — the tap rides the PM solve's own
// transposes; the bin reduction is a tree Allreduce.
func TestInSituPkNoExtraAlltoall(t *testing.T) {
	parts := makeParticles(13, 300, 0)
	run := func(insitu bool) mpi.OpTotals {
		cfg := baseConfig([3]int{2, 2, 2})
		cfg.DeterministicCost = true
		if insitu {
			cfg.InSituEvery = 1
			cfg.InSituFinalStep = 2
			cfg.InSituLL = -1 // FoF legitimately uses all-to-all; keep it out
			cfg.InSituPix = -1
		}
		var tot mpi.OpTotals
		err := mpi.Run(8, func(c *mpi.Comm) {
			s, err := New(c, cfg, sliceFor(parts, c.Rank(), 8))
			if err != nil {
				panic(err)
			}
			for s.StepIndex() < 2 {
				if err := s.Step(); err != nil {
					panic(err)
				}
			}
			c.Barrier()
			if c.Rank() == 0 {
				tot = c.Traffic().TotalsByOp()["Alltoallv"]
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return tot
	}
	off := run(false)
	on := run(true)
	if on.Bytes != off.Bytes || on.Ops != off.Ops {
		t.Fatalf("in-situ P(k) added all-to-all traffic: off %+v, on %+v", off, on)
	}
	if off.Bytes == 0 {
		t.Fatal("baseline recorded no all-to-all traffic — ledger assertion is vacuous")
	}
}
