package sim

import (
	"unsafe"

	"greem/internal/domain"
	"greem/internal/mpi"
	"greem/internal/telemetry"
	"greem/internal/tree"
	"greem/internal/vec"
)

// exchangeParticles sends every local particle to the rank owning its
// position under the current geometry.
func (s *Sim) exchangeParticles() error {
	p := s.comm.Size()
	send := make([][]Particle, p)
	for i := range s.x {
		pos := vec.Wrap(vec.V3{X: s.x[i], Y: s.y[i], Z: s.z[i]}, s.cfg.L)
		dst := s.geo.Find(pos)
		send[dst] = append(send[dst], Particle{
			X: pos.X, Y: pos.Y, Z: pos.Z,
			VX: s.vx[i], VY: s.vy[i], VZ: s.vz[i],
			M: s.m[i], ID: s.id[i],
		})
	}
	recv := mpi.Alltoall(s.comm, send)
	var mine []Particle
	for _, r := range recv {
		mine = append(mine, r...)
	}
	s.setParticles(mine)
	return nil
}

// ghost is the boundary-source wire format: a source-only particle (or
// pruned node monopole) shipped to a neighbour, with its position already
// shifted to the receiver's periodic frame. Aliased to the tree package's
// LET type so the walk emits directly into the staging buffers.
type ghost = tree.LETParticle

// ghostBytes is the wire size of one ghost.
const ghostBytes = int(unsafe.Sizeof(ghost{}))

// TrafficLabelGhosts tags the ghost-exchange alltoall in the mpi traffic
// ledger (Traffic.TotalsByLabel), separating PP boundary bytes from the PM
// mesh and DD migration traffic.
const TrafficLabelGhosts = "pp/ghosts"

// bestShift returns the periodic shift k·L (k ∈ {−1,0,1}) that brings
// coordinate c closest to the interval [lo, hi], and the resulting distance.
// Canonical implementation lives with the LET walk in package tree.
func bestShift(c, lo, hi, l float64) (shift, dist float64) {
	return tree.BestShift(c, lo, hi, l)
}

// boxDistPeriodic returns the minimum periodic distance between two boxes.
func boxDistPeriodic(alo, ahi, blo, bhi vec.V3, l float64) float64 {
	return tree.BoxDistPeriodic(alo, ahi, blo, bhi, l)
}

// exchangeGhosts ships to every near rank the boundary sources lying within
// rcut of that rank's domain, shifted into its frame, and returns the sources
// received. With Config.LETExchange set the local tree lt is walked once per
// neighbour, shipping pruned monopoles where the opening criterion allows
// (GreeM's locally-essential-tree exchange); otherwise every local particle
// is scanned against every near rank and raw particles ship (lt is ignored).
// Collective; the returned slice is owned by the Sim and valid until the
// next exchange.
func (s *Sim) exchangeGhosts(lt *tree.Tree) []ghost {
	if s.cfg.LETExchange {
		return s.exchangeGhostsLET(lt)
	}
	return s.exchangeGhostsRaw()
}

// stagedSend returns the per-destination staging buffers, truncated to
// length zero but with their capacity retained across exchanges.
func (s *Sim) stagedSend(p int) [][]ghost {
	if len(s.ghostSend) != p {
		s.ghostSend = make([][]ghost, p)
	}
	for r := range s.ghostSend {
		s.ghostSend[r] = s.ghostSend[r][:0]
	}
	return s.ghostSend
}

// exchangeGhostsRaw is the particle-ghost baseline (and the LET path's
// parity oracle): an O(n·p_near) scan shipping raw particles.
func (s *Sim) exchangeGhostsRaw() []ghost {
	sp := s.rec.Start(telemetry.PhasePPComm)
	defer sp.End()
	p := s.comm.Size()
	rcut := s.cfg.Rcut
	l := s.cfg.L
	send := s.stagedSend(p)
	mlo, mhi := s.bounds()
	for r := 0; r < p; r++ {
		lo, hi := s.geo.Bounds(r)
		// Quick reject: if even the closest point of my domain is beyond
		// rcut of r's domain (periodically), skip the particle loop.
		if boxDistPeriodic(mlo, mhi, lo, hi, l) > rcut {
			continue
		}
		buf := send[r]
		for i := range s.x {
			sx, dx := bestShift(s.x[i], lo.X, hi.X, l)
			sy, dy := bestShift(s.y[i], lo.Y, hi.Y, l)
			sz, dz := bestShift(s.z[i], lo.Z, hi.Z, l)
			if dx*dx+dy*dy+dz*dz > rcut*rcut {
				continue
			}
			if r == s.comm.Rank() && sx == 0 && sy == 0 && sz == 0 {
				continue // local particles are already targets, not ghosts
			}
			buf = append(buf, ghost{X: s.x[i] + sx, Y: s.y[i] + sy, Z: s.z[i] + sz, M: s.m[i]})
		}
		send[r] = buf
	}
	return s.alltoallGhosts(send)
}

// exchangeGhostsLET walks the local tree lt once per near neighbour against
// that neighbour's (periodic-shifted) domain box, emitting pruned node
// monopoles where size/dist < θ allows and leaf particles where the box is
// close. The walk never visits its own rank: the raw path ships no
// self-images either (an interior particle's best shift is always zero), so
// the two paths stay equivalent. See tree.LETCollector for the error
// contract.
func (s *Sim) exchangeGhostsLET(lt *tree.Tree) []ghost {
	sp := s.rec.Start(telemetry.PhasePPLET)
	p := s.comm.Size()
	rcut := s.cfg.Rcut
	l := s.cfg.L
	send := s.stagedSend(p)
	mlo, mhi := s.bounds()
	self := s.comm.Rank()
	var st tree.LETStats
	for r := 0; r < p; r++ {
		if r == self {
			continue
		}
		lo, hi := s.geo.Bounds(r)
		if boxDistPeriodic(mlo, mhi, lo, hi, l) > rcut {
			continue
		}
		var walk tree.LETStats
		send[r], walk = s.let.Collect(lt, lo, hi, l, rcut, s.cfg.Theta, send[r])
		st.Add(walk)
	}
	s.ctrLETMono.AddUint(st.Monopoles)
	s.ctrLETLeaf.AddUint(st.Leaves)
	s.ctrLETNodes.AddUint(st.NodesVisited)
	sp.End()

	sp = s.rec.Start(telemetry.PhasePPComm)
	defer sp.End()
	return s.alltoallGhosts(send)
}

// alltoallGhosts runs the ghost alltoall over the staged send buffers,
// flattens the receives into the Sim-owned ghost buffer, and feeds the ghost
// traffic counters. Rank 0 labels the ops in the world traffic ledger; the
// label is per-communicator (Comm.SetTrafficLabel), so PM collectives in
// flight on the duplicated comm during the overlapped step never pick it up,
// and it is safe to set here because recording happens inside rank 0's
// Alltoall call, between the collective's two barriers.
func (s *Sim) alltoallGhosts(send [][]ghost) []ghost {
	if s.comm.Rank() == 0 {
		s.comm.SetTrafficLabel(TrafficLabelGhosts)
	}
	recv := mpi.Alltoall(s.comm, send)
	if s.comm.Rank() == 0 {
		s.comm.SetTrafficLabel("")
	}
	var sent int
	for _, b := range send {
		sent += len(b)
	}
	out := s.ghostRecv[:0]
	for _, r := range recv {
		out = append(out, r...)
	}
	s.ghostRecv = out
	s.ctrGhostSent.AddUint(uint64(sent))
	s.ctrGhostRecv.AddUint(uint64(len(out)))
	s.ctrGhostBytes.AddUint(uint64(sent * ghostBytes))
	return out
}

// domainDecomposition runs the sampling method: measure cost, sample
// particles proportionally, rebuild the geometry at the root, smooth it with
// the moving average, broadcast it, and migrate particles.
func (s *Sim) domainDecomposition() error {
	spAll := s.rec.Start(telemetry.SpanDD)
	defer spAll.End()
	sp := s.rec.Start(telemetry.PhaseDDSampling)
	p := s.comm.Size()

	cost := s.lastCost
	if cost <= 0 {
		cost = float64(len(s.x) + 1)
	}
	costs := flatten(mpi.Allgather(s.comm, []float64{cost}))
	counts := make([]int, p)
	for i, c := range mpi.Allgather(s.comm, []int{len(s.x)}) {
		counts[i] = c[0]
	}
	nsamp := domain.SampleCounts(s.cfg.SampleTotal, costs, counts)[s.comm.Rank()]

	samples := make([]float64, 0, 3*nsamp)
	if len(s.x) > 0 {
		for k := 0; k < nsamp; k++ {
			i := s.rng.Intn(len(s.x))
			samples = append(samples, s.x[i], s.y[i], s.z[i])
		}
	}
	gathered := mpi.Gather(s.comm, 0, samples)

	var flatGeo []float64
	if s.comm.Rank() == 0 {
		var pts []vec.V3
		for _, g := range gathered {
			for i := 0; i+2 < len(g); i += 3 {
				pts = append(pts, vec.V3{X: g[i], Y: g[i+1], Z: g[i+2]})
			}
		}
		geo, err := domain.FromSamples(s.cfg.Grid[0], s.cfg.Grid[1], s.cfg.Grid[2], s.cfg.L, pts)
		if err != nil {
			// Not enough samples (e.g. nearly empty ranks): keep the old
			// geometry rather than fail the run.
			geo = s.geo
		}
		s.history = append(s.history, geo)
		if len(s.history) > s.cfg.SmoothSteps {
			s.history = s.history[len(s.history)-s.cfg.SmoothSteps:]
		}
		smoothed, err := domain.MovingAverage(s.history)
		if err != nil {
			smoothed = geo
		}
		flatGeo = smoothed.EncodeFlat()
	}
	flatGeo = mpi.Bcast(s.comm, 0, flatGeo)
	geo, err := domain.DecodeFlat(flatGeo)
	if err != nil {
		return err
	}
	s.geo = geo
	sp.End()

	sp = s.rec.Start(telemetry.PhaseDDExchange)
	if err := s.exchangeParticles(); err != nil {
		sp.End()
		return err
	}
	if err := s.rebuildPM(); err != nil {
		sp.End()
		return err
	}
	sp.End()
	return nil
}

func flatten(in [][]float64) []float64 {
	var out []float64
	for _, v := range in {
		out = append(out, v...)
	}
	return out
}
