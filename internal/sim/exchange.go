package sim

import (
	"math"

	"greem/internal/domain"
	"greem/internal/mpi"
	"greem/internal/telemetry"
	"greem/internal/vec"
)

// exchangeParticles sends every local particle to the rank owning its
// position under the current geometry.
func (s *Sim) exchangeParticles() error {
	p := s.comm.Size()
	send := make([][]Particle, p)
	for i := range s.x {
		pos := vec.Wrap(vec.V3{X: s.x[i], Y: s.y[i], Z: s.z[i]}, s.cfg.L)
		dst := s.geo.Find(pos)
		send[dst] = append(send[dst], Particle{
			X: pos.X, Y: pos.Y, Z: pos.Z,
			VX: s.vx[i], VY: s.vy[i], VZ: s.vz[i],
			M: s.m[i], ID: s.id[i],
		})
	}
	recv := mpi.Alltoall(s.comm, send)
	var mine []Particle
	for _, r := range recv {
		mine = append(mine, r...)
	}
	s.setParticles(mine)
	return nil
}

// ghost is a source-only particle shipped to a neighbour, with its position
// already shifted to the receiver's periodic frame.
type ghost struct {
	X, Y, Z, M float64
}

// bestShift returns the periodic shift k·L (k ∈ {−1,0,1}) that brings
// coordinate c closest to the interval [lo, hi], and the resulting distance.
func bestShift(c, lo, hi, l float64) (shift, dist float64) {
	best := -1.0
	bestShift := 0.0
	for k := -1; k <= 1; k++ {
		cc := c + float64(k)*l
		var d float64
		switch {
		case cc < lo:
			d = lo - cc
		case cc > hi:
			d = cc - hi
		}
		if best < 0 || d < best {
			best = d
			bestShift = float64(k) * l
		}
	}
	return bestShift, best
}

// exchangeGhosts ships to every rank (including images to self) the local
// particles lying within rcut of that rank's domain, shifted into its frame.
// Returns the ghosts received.
func (s *Sim) exchangeGhosts() []ghost {
	p := s.comm.Size()
	rcut := s.cfg.Rcut
	l := s.cfg.L
	send := make([][]ghost, p)
	for r := 0; r < p; r++ {
		lo, hi := s.geo.Bounds(r)
		// Quick reject: if even the closest point of my domain is beyond
		// rcut of r's domain (periodically), skip the particle loop.
		mlo, mhi := s.bounds()
		if boxDistPeriodic(mlo, mhi, lo, hi, l) > rcut {
			continue
		}
		for i := range s.x {
			sx, dx := bestShift(s.x[i], lo.X, hi.X, l)
			sy, dy := bestShift(s.y[i], lo.Y, hi.Y, l)
			sz, dz := bestShift(s.z[i], lo.Z, hi.Z, l)
			if dx*dx+dy*dy+dz*dz > rcut*rcut {
				continue
			}
			if r == s.comm.Rank() && sx == 0 && sy == 0 && sz == 0 {
				continue // local particles are already targets, not ghosts
			}
			send[r] = append(send[r], ghost{X: s.x[i] + sx, Y: s.y[i] + sy, Z: s.z[i] + sz, M: s.m[i]})
		}
	}
	recv := mpi.Alltoall(s.comm, send)
	var out []ghost
	for _, r := range recv {
		out = append(out, r...)
	}
	return out
}

// boxDistPeriodic returns the minimum periodic distance between two boxes.
func boxDistPeriodic(alo, ahi, blo, bhi vec.V3, l float64) float64 {
	d2 := 0.0
	for _, ax := range [3][4]float64{
		{alo.X, ahi.X, blo.X, bhi.X},
		{alo.Y, ahi.Y, blo.Y, bhi.Y},
		{alo.Z, ahi.Z, blo.Z, bhi.Z},
	} {
		best := -1.0
		for k := -1; k <= 1; k++ {
			lo := ax[0] + float64(k)*l
			hi := ax[1] + float64(k)*l
			var d float64
			switch {
			case hi < ax[2]:
				d = ax[2] - hi
			case lo > ax[3]:
				d = lo - ax[3]
			}
			if best < 0 || d < best {
				best = d
			}
		}
		d2 += best * best
	}
	return math.Sqrt(d2)
}

// domainDecomposition runs the sampling method: measure cost, sample
// particles proportionally, rebuild the geometry at the root, smooth it with
// the moving average, broadcast it, and migrate particles.
func (s *Sim) domainDecomposition() error {
	spAll := s.rec.Start(telemetry.SpanDD)
	defer spAll.End()
	sp := s.rec.Start(telemetry.PhaseDDSampling)
	p := s.comm.Size()

	cost := s.lastCost
	if cost <= 0 {
		cost = float64(len(s.x) + 1)
	}
	costs := flatten(mpi.Allgather(s.comm, []float64{cost}))
	counts := make([]int, p)
	for i, c := range mpi.Allgather(s.comm, []int{len(s.x)}) {
		counts[i] = c[0]
	}
	nsamp := domain.SampleCounts(s.cfg.SampleTotal, costs, counts)[s.comm.Rank()]

	samples := make([]float64, 0, 3*nsamp)
	if len(s.x) > 0 {
		for k := 0; k < nsamp; k++ {
			i := s.rng.Intn(len(s.x))
			samples = append(samples, s.x[i], s.y[i], s.z[i])
		}
	}
	gathered := mpi.Gather(s.comm, 0, samples)

	var flatGeo []float64
	if s.comm.Rank() == 0 {
		var pts []vec.V3
		for _, g := range gathered {
			for i := 0; i+2 < len(g); i += 3 {
				pts = append(pts, vec.V3{X: g[i], Y: g[i+1], Z: g[i+2]})
			}
		}
		geo, err := domain.FromSamples(s.cfg.Grid[0], s.cfg.Grid[1], s.cfg.Grid[2], s.cfg.L, pts)
		if err != nil {
			// Not enough samples (e.g. nearly empty ranks): keep the old
			// geometry rather than fail the run.
			geo = s.geo
		}
		s.history = append(s.history, geo)
		if len(s.history) > s.cfg.SmoothSteps {
			s.history = s.history[len(s.history)-s.cfg.SmoothSteps:]
		}
		smoothed, err := domain.MovingAverage(s.history)
		if err != nil {
			smoothed = geo
		}
		flatGeo = smoothed.EncodeFlat()
	}
	flatGeo = mpi.Bcast(s.comm, 0, flatGeo)
	geo, err := domain.DecodeFlat(flatGeo)
	if err != nil {
		return err
	}
	s.geo = geo
	sp.End()

	sp = s.rec.Start(telemetry.PhaseDDExchange)
	if err := s.exchangeParticles(); err != nil {
		sp.End()
		return err
	}
	if err := s.rebuildPM(); err != nil {
		sp.End()
		return err
	}
	sp.End()
	return nil
}

func flatten(in [][]float64) []float64 {
	var out []float64
	for _, v := range in {
		out = append(out, v...)
	}
	return out
}
