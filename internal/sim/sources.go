package sim

import (
	"greem/internal/telemetry"
	"greem/internal/tree"
)

// buildSourceTrees runs the short-range source pipeline shared by computePP
// and PotentialEnergy: ghost exchange, source-set assembly (local particles
// plus received ghosts) into the Sim-owned buffers, and tree construction on
// the Sim-owned builder arenas (srcBuild/tgtBuild — zero steady-state
// allocations). It returns the source tree, the target tree over the local
// particles, and the ghost count; when no ghosts arrived the single tree
// serves both roles and the caller must traverse it periodically
// (nGhosts == 0 ⇒ forceOpts(periodic=true)), since no ghosts encode the
// wrap. Both returned trees alias their builder arenas and are valid until
// the next pass. Collective.
func (s *Sim) buildSourceTrees() (src, tgt *tree.Tree, nGhosts int) {
	opts := tree.Options{LeafCap: s.cfg.LeafCap}

	// The LET exchange walks the local tree, so in that mode the target tree
	// is built first and doubles as the walk input. The raw exchange needs no
	// tree; its target tree is built after, and only when ghosts exist.
	var lt *tree.Tree
	var err error
	if s.cfg.LETExchange {
		sp := s.rec.Start(telemetry.PhasePPTreeConstr)
		if lt, err = s.tgtBuild.Rebuild(s.x, s.y, s.z, s.m, opts); err != nil {
			panic(err)
		}
		sp.End()
	}
	ghosts := s.exchangeGhosts(lt)
	nGhosts = len(ghosts)

	sp := s.rec.Start(telemetry.PhasePPLocalTree)
	s.assembleSources(ghosts)
	sp.End()

	sp = s.rec.Start(telemetry.PhasePPTreeConstr)
	defer sp.End()
	if src, err = s.srcBuild.Rebuild(s.srcX, s.srcY, s.srcZ, s.srcM, opts); err != nil {
		panic(err)
	}
	if nGhosts == 0 {
		return src, src, 0
	}
	if lt == nil {
		if lt, err = s.tgtBuild.Rebuild(s.x, s.y, s.z, s.m, opts); err != nil {
			panic(err)
		}
	}
	return src, lt, nGhosts
}

// assembleSources fills the Sim-owned source buffers with the local
// particles followed by the received ghosts. The buffers are reused across
// calls — zero steady-state allocations, asserted by
// TestAssembleSourcesAllocs — and are only read between here and the source
// tree.Build (which copies into tree order), so reuse is safe.
func (s *Sim) assembleSources(ghosts []ghost) {
	n := len(s.x)
	tot := n + len(ghosts)
	s.srcX = growFloats(s.srcX, tot)
	s.srcY = growFloats(s.srcY, tot)
	s.srcZ = growFloats(s.srcZ, tot)
	s.srcM = growFloats(s.srcM, tot)
	copy(s.srcX, s.x)
	copy(s.srcY, s.y)
	copy(s.srcZ, s.z)
	copy(s.srcM, s.m)
	for i, g := range ghosts {
		s.srcX[n+i], s.srcY[n+i], s.srcZ[n+i], s.srcM[n+i] = g.X, g.Y, g.Z, g.M
	}
}

// growFloats resizes b to length n, reallocating only when capacity is
// insufficient.
func growFloats(b []float64, n int) []float64 {
	if cap(b) < n {
		return make([]float64, n)
	}
	return b[:n]
}
