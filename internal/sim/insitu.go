package sim

import (
	"bytes"
	"math"
	"time"

	"greem/internal/analysis"
	"greem/internal/analysis/dist"
	"greem/internal/mpi"
	"greem/internal/telemetry"
)

// InSituResult is one in-situ analysis emission, materialized on rank 0
// (InSituProducts returns nil on every other rank). Catalog, Power and
// Density are the canonical product encodings — byte-identical to what the
// serial post-hoc pipeline produces for the catalog and (after CanonicalP
// quantization) the spectrum, so the service plane can register them as
// content-addressed products directly.
type InSituResult struct {
	Step int
	Time float64

	Catalog []byte // canonical halo catalog JSON; nil when the FoF pass is disabled
	Power   []byte // canonical power spectrum JSON; nil when the pk tap is disabled
	Density []byte // surface-density PGM; nil when the projection is disabled

	// Shot is the Poisson shot-noise level V/N of the spectrum — reported
	// separately because the canonical PowerFile encoding carries the raw
	// (unsubtracted) spectrum, exactly like the serial PowerSpectrum.
	Shot float64

	// Ks, Ps, Counts are the unquantized spectrum bins behind Power (Ps
	// before the CanonicalP rounding the encoding applies), for consumers
	// that want full precision.
	Ks, Ps []float64
	Counts []int

	// LinkLen and MinSize record the effective FoF parameters of Catalog.
	LinkLen float64
	MinSize int
}

// InSituProducts returns rank 0's most recent in-situ emission (nil before
// the first due step, on other ranks, and when InSituEvery is off).
func (s *Sim) InSituProducts() *InSituResult { return s.insituLast }

// insituDue reports whether the in-situ pass should emit after completing
// the given (1-based) step.
func (s *Sim) insituDue(step int) bool {
	if s.cfg.InSituEvery <= 0 {
		return false
	}
	return step%s.cfg.InSituEvery == 0 || step == s.cfg.InSituFinalStep
}

// insituLinkLen resolves the effective linking length for np particles.
func (s *Sim) insituLinkLen(np int64) float64 {
	if s.cfg.InSituLL != 0 {
		return s.cfg.InSituLL
	}
	return 0.2 * s.cfg.L / math.Cbrt(float64(np))
}

// armInSitu prepares the in-situ pass when the step now finishing is due:
// reduce the global mass and particle count (recomputed at every arm — the
// per-rank partial sums depend only on the restored local particle order,
// so a resumed run reproduces them bitwise), and arm the PM spectrum tap on
// the solver that is about to run the step's trailing solve. Collective
// when due; must be called exactly once per step, immediately before the
// trailing PM solve.
func (s *Sim) armInSitu() {
	if !s.insituDue(s.step + 1) {
		return
	}
	var localM float64
	for _, v := range s.m {
		localM += v
	}
	tot := mpi.Allreduce(s.comm, []float64{localM, float64(len(s.x))}, mpi.Sum[float64])
	s.insituTotM = tot[0]
	s.insituNp = int64(tot[1])
	s.insituArmed = true
	if s.cfg.InSituBins < 0 {
		s.insituBin = nil
		return
	}
	bins := s.cfg.InSituBins
	if bins == 0 {
		bins = 16
	}
	s.insituBin = analysis.NewPkBinner(s.cfg.NMesh, bins, s.cfg.L, s.insituTotM)
	s.pm.ArmSpectrumTap(s.insituBin.Add)
}

// maybeInSitu runs the emission armed by armInSitu, after the step counter
// advanced. Collective when armed. The analysis cost lands under the
// analysis/* telemetry phases; the spectrum visitation inside the solve is
// attributed here too (the solver clocked it on whichever goroutine ran the
// solve).
func (s *Sim) maybeInSitu() {
	if !s.insituArmed {
		return
	}
	s.insituArmed = false
	res := &InSituResult{Step: s.step, Time: s.time}

	// P(k): the tap already binned this rank's share of the spectrum during
	// the trailing solve; reduce the partial sums and finalize on rank 0.
	if s.insituBin != nil {
		s.rec.AddPhase(telemetry.PhaseAnalysisPk, time.Duration(s.pm.TakeTapSeconds()*float64(time.Second)))
		sp := s.rec.Start(telemetry.PhaseAnalysisPk)
		sum := mpi.Allreduce(s.comm, s.insituBin.SumP, mpi.Sum[float64])
		if s.comm.Rank() == 0 {
			copy(s.insituBin.SumP, sum)
			ks, ps, counts := s.insituBin.Finalize()
			res.Ks, res.Ps, res.Counts = ks, ps, counts
			res.Shot = analysis.ShotNoise(s.cfg.L, s.insituNp)
			b, err := analysis.EncodePower(analysis.PowerFile{
				Format: 1, L: s.cfg.L, Time: s.time, Step: uint64(s.step),
				NMesh: s.cfg.NMesh, NBins: len(s.insituBin.SumP),
				K: ks, P: analysis.CanonicalP(ps), Count: counts,
			})
			if err == nil {
				res.Power = b
			}
		}
		s.insituBin = nil
		sp.End()
	}

	// Distributed FoF: local link + ghost import + label stitch, canonical
	// catalog on rank 0.
	if s.cfg.InSituLL >= 0 {
		sp := s.rec.Start(telemetry.PhaseAnalysisFoF)
		ll := s.insituLinkLen(s.insituNp)
		minSize := s.cfg.InSituMinSize
		if minSize == 0 {
			minSize = 8
		}
		halos := dist.FoF(s.comm, dist.Config{L: s.cfg.L, LinkLen: ll, MinSize: minSize},
			s.x, s.y, s.z, s.m, s.id)
		if s.comm.Rank() == 0 {
			b, err := analysis.EncodeCatalog(analysis.CatalogFile{
				Format: 1, L: s.cfg.L, Time: s.time, Step: uint64(s.step),
				LinkingLength: ll, MinSize: minSize, Halos: halos,
			})
			if err == nil {
				res.Catalog = b
				res.LinkLen = ll
				res.MinSize = minSize
			}
		}
		sp.End()
	}

	// Streaming projection: rank-local NGP surface density, summed to rank 0.
	if s.cfg.InSituPix >= 0 {
		sp := s.rec.Start(telemetry.PhaseAnalysisProj)
		npix := s.cfg.InSituPix
		if npix == 0 {
			npix = 64
		}
		flat := make([]float64, npix*npix)
		l := s.cfg.L
		for p := range s.x {
			i := int(s.x[p] / l * float64(npix))
			j := int(s.y[p] / l * float64(npix))
			if i < 0 {
				i = 0
			}
			if i >= npix {
				i = npix - 1
			}
			if j < 0 {
				j = 0
			}
			if j >= npix {
				j = npix - 1
			}
			flat[i*npix+j] += s.m[p]
		}
		sum := mpi.Reduce(s.comm, 0, flat, mpi.Sum[float64])
		if s.comm.Rank() == 0 {
			img := make([][]float64, npix)
			for i := range img {
				img[i] = sum[i*npix : (i+1)*npix]
			}
			var buf bytes.Buffer
			if err := analysis.WritePGM(&buf, img); err == nil {
				res.Density = buf.Bytes()
			}
		}
		sp.End()
	}

	if s.comm.Rank() == 0 {
		s.insituLast = res
	}
}
