package sim

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"greem/internal/ewald"
	"greem/internal/mpi"
	"greem/internal/treepm"
)

// makeParticles builds n random particles with IDs 0..n−1 assigned to ranks
// by slicing (sim redistributes on construction anyway).
func makeParticles(seed int64, n int, vscale float64) []Particle {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Particle, n)
	for i := range out {
		out[i] = Particle{
			X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64(),
			VX: vscale * rng.NormFloat64(), VY: vscale * rng.NormFloat64(), VZ: vscale * rng.NormFloat64(),
			M: 1.0 / float64(n), ID: int64(i),
		}
	}
	return out
}

func sliceFor(parts []Particle, rank, size int) []Particle {
	n := len(parts)
	lo := rank * n / size
	hi := (rank + 1) * n / size
	return parts[lo:hi]
}

func baseConfig(grid [3]int) Config {
	return Config{
		L: 1, G: 1,
		NMesh: 16, Theta: 0.3, Ni: 32, Eps2: 1e-9,
		Grid: grid, DT: 0.01,
	}
}

func TestForcesMatchSerialTreePM(t *testing.T) {
	n := 300
	parts := makeParticles(1, n, 0)
	cfg := baseConfig([3]int{2, 2, 2})

	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	err := mpi.Run(8, func(c *mpi.Comm) {
		s, err := New(c, cfg, sliceFor(parts, c.Rank(), 8))
		if err != nil {
			panic(err)
		}
		s.ComputeForces()
		c.Barrier()
		for i := 0; i < s.NumLocal(); i++ {
			fx, fy, fz := s.AccelFor(i)
			id := s.ID(i)
			ax[id], ay[id], az[id] = fx, fy, fz
		}
	})
	if err != nil {
		t.Fatal(err)
	}

	solver, err := treepm.New(treepm.Config{L: 1, G: 1, NMesh: cfg.NMesh, Theta: cfg.Theta, Ni: cfg.Ni, Eps2: cfg.Eps2})
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, n)
	y := make([]float64, n)
	z := make([]float64, n)
	m := make([]float64, n)
	for _, p := range parts {
		x[p.ID], y[p.ID], z[p.ID], m[p.ID] = p.X, p.Y, p.Z, p.M
	}
	rx := make([]float64, n)
	ry := make([]float64, n)
	rz := make([]float64, n)
	if _, err := solver.Accel(x, y, z, m, rx, ry, rz); err != nil {
		t.Fatal(err)
	}
	var e2, r2 float64
	for i := 0; i < n; i++ {
		dx := ax[i] - rx[i]
		dy := ay[i] - ry[i]
		dz := az[i] - rz[i]
		e2 += dx*dx + dy*dy + dz*dz
		r2 += rx[i]*rx[i] + ry[i]*ry[i] + rz[i]*rz[i]
	}
	rms := math.Sqrt(e2 / r2)
	t.Logf("parallel vs serial TreePM RMS: %.3e", rms)
	// The PM parts are identical; only the tree decomposition differs
	// (local+ghost trees vs one global tree), bounded by the θ-error.
	if rms > 0.01 {
		t.Errorf("parallel forces differ from serial TreePM: RMS %v", rms)
	}
}

func TestSinglevsMultiRankForces(t *testing.T) {
	n := 200
	parts := makeParticles(2, n, 0)
	force := func(p int, grid [3]int) ([]float64, []float64, []float64) {
		cfg := baseConfig(grid)
		ax := make([]float64, n)
		ay := make([]float64, n)
		az := make([]float64, n)
		err := mpi.Run(p, func(c *mpi.Comm) {
			s, err := New(c, cfg, sliceFor(parts, c.Rank(), p))
			if err != nil {
				panic(err)
			}
			s.ComputeForces()
			c.Barrier()
			for i := 0; i < s.NumLocal(); i++ {
				fx, fy, fz := s.AccelFor(i)
				id := s.ID(i)
				ax[id], ay[id], az[id] = fx, fy, fz
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return ax, ay, az
	}
	a1x, a1y, a1z := force(1, [3]int{1, 1, 1})
	a8x, a8y, a8z := force(8, [3]int{2, 2, 2})
	var e2, r2 float64
	for i := 0; i < n; i++ {
		dx := a1x[i] - a8x[i]
		dy := a1y[i] - a8y[i]
		dz := a1z[i] - a8z[i]
		e2 += dx*dx + dy*dy + dz*dz
		r2 += a1x[i]*a1x[i] + a1y[i]*a1y[i] + a1z[i]*a1z[i]
	}
	rms := math.Sqrt(e2 / r2)
	t.Logf("p=1 vs p=8 RMS: %.3e", rms)
	if rms > 0.01 {
		t.Errorf("rank counts disagree: RMS %v", rms)
	}
}

func TestParticleBookkeepingAcrossSteps(t *testing.T) {
	n := 200
	parts := makeParticles(3, n, 0.05)
	cfg := baseConfig([3]int{2, 2, 1})
	cfg.DT = 0.02
	err := mpi.Run(4, func(c *mpi.Comm) {
		s, err := New(c, cfg, sliceFor(parts, c.Rank(), 4))
		if err != nil {
			panic(err)
		}
		for step := 0; step < 3; step++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
		}
		all := s.GatherAll(0)
		if c.Rank() == 0 {
			if len(all) != n {
				t.Errorf("particle count %d, want %d", len(all), n)
			}
			ids := make([]int, 0, len(all))
			for _, p := range all {
				ids = append(ids, int(p.ID))
				if p.X < 0 || p.X >= 1 || p.Y < 0 || p.Y >= 1 || p.Z < 0 || p.Z >= 1 {
					t.Errorf("particle %d outside box: (%v,%v,%v)", p.ID, p.X, p.Y, p.Z)
				}
			}
			sort.Ints(ids)
			for i, id := range ids {
				if id != i {
					t.Fatalf("IDs not a permutation (at %d: %d)", i, id)
				}
			}
		}
		if s.StepIndex() != 3 {
			t.Errorf("StepIndex = %d", s.StepIndex())
		}
		if s.Time() <= cfg.Time {
			t.Errorf("time did not advance: %v", s.Time())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMomentumConservedAcrossSteps(t *testing.T) {
	n := 150
	parts := makeParticles(4, n, 0.02)
	cfg := baseConfig([3]int{2, 2, 1})
	cfg.Eps2 = 1e-8
	err := mpi.Run(4, func(c *mpi.Comm) {
		s, err := New(c, cfg, sliceFor(parts, c.Rank(), 4))
		if err != nil {
			panic(err)
		}
		mom := func() [3]float64 {
			var px, py, pz float64
			for i := range s.vx {
				px += s.m[i] * s.vx[i]
				py += s.m[i] * s.vy[i]
				pz += s.m[i] * s.vz[i]
			}
			return [3]float64{globalSum(s, px), globalSum(s, py), globalSum(s, pz)}
		}
		before := mom()
		for step := 0; step < 3; step++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
		}
		after := mom()
		if c.Rank() == 0 {
			drift := math.Abs(after[0]-before[0]) + math.Abs(after[1]-before[1]) + math.Abs(after[2]-before[2])
			// Scale: typical |a|·dt·Σm ≈ a few; require small drift.
			if drift > 2e-3 {
				t.Errorf("momentum drift %v (before %v after %v)", drift, before, after)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestEnergyConservationStatic(t *testing.T) {
	// KDK leapfrog with the TreePM force in a static box: total energy
	// (kinetic + exact Ewald potential) must be stable over many steps. A
	// perturbed lattice avoids close encounters, so the fixed step size is
	// well inside the stability region and any drift exposes integrator or
	// force-consistency bugs rather than unresolved binaries.
	rng := rand.New(rand.NewSource(5))
	n := 64
	parts := make([]Particle, 0, n)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				parts = append(parts, Particle{
					X:  (float64(i) + 0.5 + 0.2*rng.Float64()) / 4,
					Y:  (float64(j) + 0.5 + 0.2*rng.Float64()) / 4,
					Z:  (float64(k) + 0.5 + 0.2*rng.Float64()) / 4,
					VX: 0.02 * rng.NormFloat64(), VY: 0.02 * rng.NormFloat64(), VZ: 0.02 * rng.NormFloat64(),
					M: 1.0 / float64(n), ID: int64(len(parts)),
				})
			}
		}
	}
	cfg := baseConfig([3]int{2, 1, 1})
	cfg.NMesh = 16
	cfg.Theta = 0.3
	cfg.DT = 0.02
	cfg.Eps2 = 1e-10

	ew := ewald.New(1, 1)
	energyOf := func(all []Particle) float64 {
		x := make([]float64, len(all))
		y := make([]float64, len(all))
		z := make([]float64, len(all))
		m := make([]float64, len(all))
		kin := 0.0
		for i, p := range all {
			x[i], y[i], z[i], m[i] = p.X, p.Y, p.Z, p.M
			kin += 0.5 * p.M * (p.VX*p.VX + p.VY*p.VY + p.VZ*p.VZ)
		}
		return kin + ew.Energy(x, y, z, m)
	}

	var e0, e1 float64
	err := mpi.Run(2, func(c *mpi.Comm) {
		s, err := New(c, cfg, sliceFor(parts, c.Rank(), 2))
		if err != nil {
			panic(err)
		}
		all := s.GatherAll(0)
		if c.Rank() == 0 {
			e0 = energyOf(all)
		}
		for step := 0; step < 10; step++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
		}
		all = s.GatherAll(0)
		if c.Rank() == 0 {
			e1 = energyOf(all)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rel := math.Abs(e1-e0) / math.Abs(e0)
	t.Logf("E0 = %v, E10 = %v, drift %.3e", e0, e1, rel)
	if rel > 0.02 {
		t.Errorf("energy drift %v over 10 steps", rel)
	}
}

func TestTimersAndCountersPopulated(t *testing.T) {
	n := 100
	parts := makeParticles(6, n, 0)
	cfg := baseConfig([3]int{2, 1, 1})
	err := mpi.Run(2, func(c *mpi.Comm) {
		s, err := New(c, cfg, sliceFor(parts, c.Rank(), 2))
		if err != nil {
			panic(err)
		}
		if err := s.Step(); err != nil {
			panic(err)
		}
		tm := s.Timers()
		if tm.PM.Total() <= 0 {
			t.Errorf("rank %d: PM timers empty", c.Rank())
		}
		if tm.PPForce <= 0 || tm.PPTreeConstr <= 0 {
			t.Errorf("rank %d: PP timers empty: %+v", c.Rank(), tm)
		}
		if tm.DDSampling <= 0 || tm.DDExchange <= 0 {
			t.Errorf("rank %d: DD timers empty", c.Rank())
		}
		ni, nj := s.MeanNiNj()
		if ni <= 0 || nj <= 0 {
			t.Errorf("counters empty: ni=%v nj=%v", ni, nj)
		}
		if s.InteractionsPerStep() <= 0 {
			t.Error("no interactions counted")
		}
		if s.Kinetic() < 0 {
			t.Error("negative kinetic energy")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLoadBalanceAdaptsToCluster(t *testing.T) {
	// Strongly clustered distribution: after a few DD cycles the per-rank
	// particle counts must be far more even than under the static uniform
	// decomposition.
	rng := rand.New(rand.NewSource(7))
	n := 2000
	parts := make([]Particle, n)
	for i := range parts {
		var x, y, z float64
		if i%4 == 0 {
			x, y, z = rng.Float64(), rng.Float64(), rng.Float64()
		} else {
			x = math.Mod(0.3+0.03*rng.NormFloat64()+1, 1)
			y = math.Mod(0.7+0.03*rng.NormFloat64()+1, 1)
			z = math.Mod(0.5+0.03*rng.NormFloat64()+1, 1)
		}
		parts[i] = Particle{X: x, Y: y, Z: z, M: 1.0 / float64(n), ID: int64(i)}
	}
	cfg := baseConfig([3]int{2, 2, 2})
	cfg.SampleTotal = 2048
	err := mpi.Run(8, func(c *mpi.Comm) {
		s, err := New(c, cfg, sliceFor(parts, c.Rank(), 8))
		if err != nil {
			panic(err)
		}
		startCounts := mpi.Allgather(c, []int{s.NumLocal()})
		for i := 0; i < 2; i++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
		}
		endCounts := mpi.Allgather(c, []int{s.NumLocal()})
		if c.Rank() == 0 {
			imb := func(cs [][]int) float64 {
				max, sum := 0, 0
				for _, v := range cs {
					if v[0] > max {
						max = v[0]
					}
					sum += v[0]
				}
				return float64(max) * 8 / float64(sum)
			}
			i0, i1 := imb(startCounts), imb(endCounts)
			t.Logf("count imbalance: uniform %.2f → adaptive %.2f", i0, i1)
			if i1 > i0 {
				t.Errorf("decomposition did not improve balance: %v → %v", i0, i1)
			}
			if i1 > 2.0 {
				t.Errorf("adaptive imbalance still %v", i1)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestConfigValidation(t *testing.T) {
	err := mpi.Run(2, func(c *mpi.Comm) {
		bad := baseConfig([3]int{3, 1, 1}) // grid ≠ ranks
		if _, err := New(c, bad, nil); err == nil {
			panic("grid mismatch accepted")
		}
		bad = baseConfig([3]int{2, 1, 1})
		bad.DT = 0
		if _, err := New(c, bad, nil); err == nil {
			panic("DT=0 accepted")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRelayModeMatchesNaiveInSim(t *testing.T) {
	n := 200
	parts := makeParticles(8, n, 0)
	run := func(relay bool) ([]float64, []float64, []float64) {
		cfg := baseConfig([3]int{2, 2, 2})
		cfg.NFFT = 4
		cfg.Relay = relay
		cfg.Groups = 2
		ax := make([]float64, n)
		ay := make([]float64, n)
		az := make([]float64, n)
		err := mpi.Run(8, func(c *mpi.Comm) {
			s, err := New(c, cfg, sliceFor(parts, c.Rank(), 8))
			if err != nil {
				panic(err)
			}
			s.ComputeForces()
			c.Barrier()
			for i := 0; i < s.NumLocal(); i++ {
				fx, fy, fz := s.AccelFor(i)
				ax[s.ID(i)], ay[s.ID(i)], az[s.ID(i)] = fx, fy, fz
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return ax, ay, az
	}
	nx, ny, nz := run(false)
	rx, ry, rz := run(true)
	for i := 0; i < n; i++ {
		if math.Abs(nx[i]-rx[i])+math.Abs(ny[i]-ry[i])+math.Abs(nz[i]-rz[i]) > 1e-9 {
			t.Fatalf("relay and naive disagree at particle %d", i)
		}
	}
}

func TestPencilFFTModeInSim(t *testing.T) {
	// §IV future work wired through the full driver: forces identical to the
	// slab-FFT configuration.
	n := 150
	parts := makeParticles(9, n, 0)
	run := func(pencil bool) ([]float64, []float64, []float64) {
		cfg := baseConfig([3]int{2, 2, 2})
		if pencil {
			cfg.Pencil = true
			cfg.PY, cfg.PZ = 2, 2
		} else {
			cfg.NFFT = 4
		}
		ax := make([]float64, n)
		ay := make([]float64, n)
		az := make([]float64, n)
		err := mpi.Run(8, func(c *mpi.Comm) {
			s, err := New(c, cfg, sliceFor(parts, c.Rank(), 8))
			if err != nil {
				panic(err)
			}
			s.ComputeForces()
			c.Barrier()
			for i := 0; i < s.NumLocal(); i++ {
				fx, fy, fz := s.AccelFor(i)
				ax[s.ID(i)], ay[s.ID(i)], az[s.ID(i)] = fx, fy, fz
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return ax, ay, az
	}
	sx, sy, sz := run(false)
	px, py, pz := run(true)
	for i := 0; i < n; i++ {
		if math.Abs(sx[i]-px[i])+math.Abs(sy[i]-py[i])+math.Abs(sz[i]-pz[i]) > 1e-9 {
			t.Fatalf("pencil and slab FFT disagree at particle %d", i)
		}
	}
}

func TestSubstepsAblation(t *testing.T) {
	// The multiple-stepsize ablation: 1 PP cycle per PM step vs the paper's
	// 2. Both must conserve energy-adjacent invariants (here: momentum and
	// bookkeeping); cost differs (2 substeps evaluate PP twice per step).
	n := 100
	parts := makeParticles(10, n, 0.02)
	for _, sub := range []int{1, 2, 4} {
		cfg := baseConfig([3]int{2, 1, 1})
		cfg.Substeps = sub
		err := mpi.Run(2, func(c *mpi.Comm) {
			s, err := New(c, cfg, sliceFor(parts, c.Rank(), 2))
			if err != nil {
				panic(err)
			}
			if err := s.Step(); err != nil {
				panic(err)
			}
			groups := mpi.Allreduce(c, []int{s.Counters().Tree.Groups}, mpi.Sum[int])[0]
			if groups == 0 {
				t.Errorf("substeps=%d: no PP work recorded", sub)
			}
			if s.Time() <= cfg.Time {
				t.Errorf("substeps=%d: time did not advance", sub)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestWorkersInSimMatchSerial(t *testing.T) {
	n := 200
	parts := makeParticles(11, n, 0)
	run := func(workers int) []float64 {
		cfg := baseConfig([3]int{2, 1, 1})
		cfg.Workers = workers
		ax := make([]float64, n)
		err := mpi.Run(2, func(c *mpi.Comm) {
			s, err := New(c, cfg, sliceFor(parts, c.Rank(), 2))
			if err != nil {
				panic(err)
			}
			s.ComputeForces()
			c.Barrier()
			for i := 0; i < s.NumLocal(); i++ {
				fx, _, _ := s.AccelFor(i)
				ax[s.ID(i)] = fx
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return ax
	}
	a1 := run(1)
	a4 := run(4)
	for i := range a1 {
		if a1[i] != a4[i] {
			t.Fatalf("threaded sim differs at %d", i)
		}
	}
}

func TestPotentialEnergyTracksEwald(t *testing.T) {
	// The O(N log N) diagnostic (tree short-range potential + PM mesh
	// potential) must track the exact Ewald potential energy: the *change*
	// across steps is what matters (the mesh term carries a constant
	// self-energy offset).
	// A strongly evolving random system so the physical ΔU dominates the
	// mesh self-energy jitter (each particle's own-cloud potential varies at
	// the ~0.1% level as it crosses cells — inherent to mesh codes, which is
	// why production codes track energy via drift, not absolute values).
	n := 64
	parts := makeParticles(31, n, 0.15)
	cfg := baseConfig([3]int{2, 1, 1})
	cfg.NMesh = 32
	cfg.Eps2 = 1e-6
	cfg.DT = 0.03

	ew := ewald.New(1, 1)
	exactPot := func(all []Particle) float64 {
		x := make([]float64, len(all))
		y := make([]float64, len(all))
		z := make([]float64, len(all))
		m := make([]float64, len(all))
		for i, p := range all {
			x[i], y[i], z[i], m[i] = p.X, p.Y, p.Z, p.M
		}
		return ew.Energy(x, y, z, m)
	}

	var dDiag, dExact float64
	err := mpi.Run(2, func(c *mpi.Comm) {
		s, err := New(c, cfg, sliceFor(parts, c.Rank(), 2))
		if err != nil {
			panic(err)
		}
		s.ComputeForces()
		u0 := s.PotentialEnergy()
		all0 := s.GatherAll(0)
		for i := 0; i < 8; i++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
		}
		u1 := s.PotentialEnergy()
		all1 := s.GatherAll(0)
		if c.Rank() == 0 {
			dDiag = u1 - u0
			dExact = exactPot(all1) - exactPot(all0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("ΔU diagnostic %.4e vs exact %.4e", dDiag, dExact)
	scale := math.Max(math.Abs(dExact), 1e-4)
	if math.Abs(dDiag-dExact) > 0.2*scale {
		t.Errorf("potential-energy drift mismatch: diagnostic %v vs exact %v", dDiag, dExact)
	}
}

func TestTableIShapeAtLaptopScale(t *testing.T) {
	// The transferable Table I claim: the PP force kernel is the dominant
	// phase of the step, and within PP it dwarfs construction and local
	// bookkeeping — on any machine, at any scale. (Traversal and kernel are
	// machine-dependent in ratio; both must dominate construction.)
	if testing.Short() {
		t.Skip("multi-step run")
	}
	n := 6000
	parts := makeParticles(40, n, 0.02)
	cfg := baseConfig([3]int{2, 2, 1})
	cfg.NMesh = 16
	cfg.Theta = 0.5
	cfg.Ni = 100
	cfg.FastKernel = true
	err := mpi.Run(4, func(c *mpi.Comm) {
		s, err := New(c, cfg, sliceFor(parts, c.Rank(), 4))
		if err != nil {
			panic(err)
		}
		for i := 0; i < 2; i++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
		}
		tm := s.Timers()
		ppWork := tm.PPForce + tm.PPTraverse
		if ppWork <= tm.PPTreeConstr {
			t.Errorf("rank %d: PP force+traversal (%v) should dominate construction (%v)",
				c.Rank(), ppWork, tm.PPTreeConstr)
		}
		if ppWork <= tm.PPLocalTree {
			t.Errorf("rank %d: PP work below local bookkeeping", c.Rank())
		}
		if tm.PPForce <= 0 {
			t.Errorf("rank %d: no kernel time recorded", c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
