package sim

import (
	"math"
	"math/rand"
	"testing"

	"greem/internal/ewald"
	"greem/internal/mpi"
)

// plummerParticles builds a centrally concentrated (clustered) distribution:
// the regime where the LET exchange pays, since whole far subtrees of the
// cluster collapse to single monopoles.
func plummerParticles(seed int64, n int, scale float64) []Particle {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Particle, n)
	for i := range out {
		r := scale / math.Sqrt(math.Pow(rng.Float64()*0.99+1e-6, -2.0/3.0)-1)
		if r > 0.45 {
			r = 0.45 // keep the tails inside the box
		}
		ct := 2*rng.Float64() - 1
		st := math.Sqrt(1 - ct*ct)
		ph := 2 * math.Pi * rng.Float64()
		out[i] = Particle{
			X: 0.5 + r*st*math.Cos(ph),
			Y: 0.5 + r*st*math.Sin(ph),
			Z: 0.5 + r*ct,
			M: 1.0 / float64(n), ID: int64(i),
		}
	}
	return out
}

// letRunForces computes the total force (PM+PP) for every particle on p
// ranks and returns it indexed by particle ID.
func letRunForces(t *testing.T, parts []Particle, cfg Config, p int) (ax, ay, az []float64) {
	t.Helper()
	n := len(parts)
	ax = make([]float64, n)
	ay = make([]float64, n)
	az = make([]float64, n)
	err := mpi.Run(p, func(c *mpi.Comm) {
		s, err := New(c, cfg, sliceFor(parts, c.Rank(), p))
		if err != nil {
			panic(err)
		}
		s.ComputeForces()
		c.Barrier()
		for i := 0; i < s.NumLocal(); i++ {
			fx, fy, fz := s.AccelFor(i)
			id := s.ID(i)
			ax[id], ay[id], az[id] = fx, fy, fz
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return ax, ay, az
}

func rmsDiff(ax, ay, az, bx, by, bz []float64) float64 {
	var e2, r2 float64
	for i := range ax {
		dx, dy, dz := ax[i]-bx[i], ay[i]-by[i], az[i]-bz[i]
		e2 += dx*dx + dy*dy + dz*dz
		r2 += bx[i]*bx[i] + by[i]*by[i] + bz[i]*bz[i]
	}
	return math.Sqrt(e2 / r2)
}

// TestLETForceParity: the LET exchange and the raw particle-ghost exchange
// must agree within the θ-error bound — the same tolerance sim_test applies
// to the parallel-vs-serial tree decomposition, since the LET monopoles are
// accepted by the identical opening criterion evaluated against a distance
// lower bound.
func TestLETForceParity(t *testing.T) {
	for _, tc := range []struct {
		name  string
		parts []Particle
	}{
		{"uniform", makeParticles(5, 300, 0)},
		{"clustered", plummerParticles(6, 300, 0.08)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := baseConfig([3]int{2, 2, 2})
			cfg.LETExchange = false
			rx, ry, rz := letRunForces(t, tc.parts, cfg, 8)
			cfg.LETExchange = true
			lx, ly, lz := letRunForces(t, tc.parts, cfg, 8)
			rms := rmsDiff(lx, ly, lz, rx, ry, rz)
			t.Logf("LET vs raw ghost RMS: %.3e", rms)
			if rms > 0.01 {
				t.Errorf("LET forces diverge from particle-ghost oracle: RMS %v", rms)
			}
		})
	}
}

// letGhostLedger steps a world once and returns the ghost-exchange alltoall
// ledger group (bytes recorded under TrafficLabelGhosts at world rank 0).
func letGhostLedger(t *testing.T, parts []Particle, letOn bool, workers int) mpi.OpTotals {
	t.Helper()
	var tr *mpi.Traffic
	err := mpi.Run(8, func(c *mpi.Comm) {
		cfg := baseConfig([3]int{2, 2, 2})
		cfg.Theta = 0.5 // the production opening angle, where pruning pays
		cfg.DeterministicCost = true
		cfg.LETExchange = letOn
		cfg.Workers = workers
		s, err := New(c, cfg, sliceFor(parts, c.Rank(), 8))
		if err != nil {
			panic(err)
		}
		if err := s.Step(); err != nil {
			panic(err)
		}
		if c.Rank() == 0 {
			tr = c.Traffic()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Read the ledger only after the world has shut down (recording happens
	// on rank 0's goroutine; reading mid-run races it).
	return tr.TotalsByLabel()[TrafficLabelGhosts]
}

// TestGhostTrafficLETvsRaw is the byte-exact traffic regression: on a
// clustered distribution the LET exchange must ship strictly fewer alltoall
// bytes than the particle-ghost baseline, and under DeterministicCost both
// paths' ledgers must reproduce byte-exactly run-to-run.
func TestGhostTrafficLETvsRaw(t *testing.T) {
	parts := plummerParticles(9, 3000, 0.06)
	raw1 := letGhostLedger(t, parts, false, 0)
	raw2 := letGhostLedger(t, parts, false, 0)
	let1 := letGhostLedger(t, parts, true, 0)
	let2 := letGhostLedger(t, parts, true, 0)

	if raw1 != raw2 {
		t.Errorf("raw ghost ledger not reproducible: %+v vs %+v", raw1, raw2)
	}
	if let1 != let2 {
		t.Errorf("LET ghost ledger not reproducible: %+v vs %+v", let1, let2)
	}
	if raw1.Bytes == 0 || let1.Bytes == 0 {
		t.Fatalf("ghost ledger empty: raw %+v, LET %+v", raw1, let1)
	}
	// Demand a real reduction, not a rounding artifact: at this size and θ
	// the pruning saves >20%, and it only grows with N (the 64³ bench in
	// EXPERIMENTS.md); 10% is a safe floor against seed jitter.
	if let1.Bytes >= raw1.Bytes*9/10 {
		t.Errorf("LET exchange must reduce ghost bytes on a clustered run: LET %d B vs raw %d B", let1.Bytes, raw1.Bytes)
	}
	t.Logf("ghost alltoall bytes: raw %d, LET %d (%.1f%%)", raw1.Bytes, let1.Bytes, 100*float64(let1.Bytes)/float64(raw1.Bytes))
}

// TestLETForcesAgainstEwald is the multi-rank force-accuracy oracle: total
// forces from the LET-exchange TreePM on 8 ranks must stay within the
// facade-level tolerance of the exact Ewald reference at Workers ∈ {1, 7},
// with bit-identical results across worker counts, and survive a
// checkpoint-style State/Resume round-trip bit-identically.
func TestLETForcesAgainstEwald(t *testing.T) {
	n := 200
	parts := makeParticles(12, n, 0)
	cfg := baseConfig([3]int{2, 2, 2})
	cfg.LETExchange = true
	cfg.DeterministicCost = true

	type run struct {
		ax, ay, az []float64 // post-step forces by ID
		px, py, pz []float64 // post-step positions by ID
		states     []State
	}
	stepAndCapture := func(workers int) run {
		r := run{
			ax: make([]float64, n), ay: make([]float64, n), az: make([]float64, n),
			px: make([]float64, n), py: make([]float64, n), pz: make([]float64, n),
			states: make([]State, 8),
		}
		c := cfg
		c.Workers = workers
		err := mpi.Run(8, func(cm *mpi.Comm) {
			s, err := New(cm, c, sliceFor(parts, cm.Rank(), 8))
			if err != nil {
				panic(err)
			}
			if err := s.Step(); err != nil {
				panic(err)
			}
			s.ComputeForces()
			cm.Barrier()
			r.states[cm.Rank()] = s.State()
			for i := 0; i < s.NumLocal(); i++ {
				id := s.ID(i)
				r.ax[id], r.ay[id], r.az[id] = s.AccelFor(i)
				p := s.Particles()[i]
				r.px[id], r.py[id], r.pz[id] = p.X, p.Y, p.Z
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	w1 := stepAndCapture(1)
	w7 := stepAndCapture(7)
	for i := 0; i < n; i++ {
		if w1.ax[i] != w7.ax[i] || w1.ay[i] != w7.ay[i] || w1.az[i] != w7.az[i] {
			t.Fatalf("forces differ between Workers=1 and Workers=7 at particle %d", i)
		}
	}

	// Exact periodic reference at the post-step positions.
	ew := ewald.New(1, 1)
	m := make([]float64, n)
	for i := range m {
		m[i] = 1.0 / float64(n)
	}
	ex := make([]float64, n)
	ey := make([]float64, n)
	ez := make([]float64, n)
	ew.Accel(w1.px, w1.py, w1.pz, m, ex, ey, ez)
	rms := rmsDiff(w1.ax, w1.ay, w1.az, ex, ey, ez)
	t.Logf("LET TreePM vs Ewald RMS: %.3e", rms)
	if rms > 0.1 {
		t.Errorf("LET forces diverge from Ewald reference: RMS %v", rms)
	}

	// Resume from the captured states in a fresh world: forces must come back
	// bit-identical (the LET path is part of the restart contract).
	rax := make([]float64, n)
	ray := make([]float64, n)
	raz := make([]float64, n)
	err := mpi.Run(8, func(cm *mpi.Comm) {
		c := cfg
		c.Workers = 1
		s, err := Resume(cm, c, w1.states[cm.Rank()])
		if err != nil {
			panic(err)
		}
		s.ComputeForces()
		cm.Barrier()
		for i := 0; i < s.NumLocal(); i++ {
			id := s.ID(i)
			rax[id], ray[id], raz[id] = s.AccelFor(i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if rax[i] != w1.ax[i] || ray[i] != w1.ay[i] || raz[i] != w1.az[i] {
			t.Fatalf("resumed forces differ at particle %d: (%v,%v,%v) vs (%v,%v,%v)",
				i, rax[i], ray[i], raz[i], w1.ax[i], w1.ay[i], w1.az[i])
		}
	}
}

// TestAssembleSourcesAllocs asserts the deduplicated ghost + source-set
// assembly runs without steady-state allocations once the Sim-owned buffers
// are warm.
func TestAssembleSourcesAllocs(t *testing.T) {
	parts := makeParticles(21, 128, 0)
	err := mpi.Run(1, func(c *mpi.Comm) {
		cfg := baseConfig([3]int{1, 1, 1})
		s, err := New(c, cfg, parts)
		if err != nil {
			panic(err)
		}
		ghosts := make([]ghost, 64)
		for i := range ghosts {
			ghosts[i] = ghost{X: float64(i) / 64, Y: 0.5, Z: 0.5, M: 1}
		}
		s.assembleSources(ghosts) // warm the buffers
		allocs := testing.AllocsPerRun(100, func() {
			s.assembleSources(ghosts)
		})
		if allocs != 0 {
			t.Errorf("warm assembleSources allocates %.1f/run", allocs)
		}
		// The staged send path must be warm-clean too: a second raw exchange
		// with unchanged particles reuses every staging buffer.
		s.exchangeGhostsRaw()
		allocs = testing.AllocsPerRun(20, func() {
			s.stagedSend(c.Size())
		})
		if allocs != 0 {
			t.Errorf("warm stagedSend allocates %.1f/run", allocs)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGhostStatsCounters checks the ghost telemetry plumbing: after a force
// evaluation on a clustered multi-rank world the sent/received/bytes
// counters are populated, and on the LET path the export decomposes into
// monopoles + leaves exactly.
func TestGhostStatsCounters(t *testing.T) {
	parts := plummerParticles(14, 600, 0.08)
	for _, letOn := range []bool{false, true} {
		var stats [8]GhostStats
		err := mpi.Run(8, func(c *mpi.Comm) {
			cfg := baseConfig([3]int{2, 2, 2})
			cfg.LETExchange = letOn
			s, err := New(c, cfg, sliceFor(parts, c.Rank(), 8))
			if err != nil {
				panic(err)
			}
			s.ComputeForces()
			c.Barrier()
			stats[c.Rank()] = s.GhostStats()
		})
		if err != nil {
			t.Fatal(err)
		}
		var tot GhostStats
		for _, st := range stats {
			tot.Sent += st.Sent
			tot.Recv += st.Recv
			tot.Bytes += st.Bytes
			tot.Monopoles += st.Monopoles
			tot.Leaves += st.Leaves
		}
		if tot.Sent == 0 || tot.Recv != tot.Sent {
			t.Errorf("let=%v: global sent %d / recv %d mismatch", letOn, tot.Sent, tot.Recv)
		}
		if tot.Bytes != tot.Sent*uint64(ghostBytes) {
			t.Errorf("let=%v: bytes %d != sent %d × %d", letOn, tot.Bytes, tot.Sent, ghostBytes)
		}
		if letOn && tot.Monopoles+tot.Leaves != tot.Sent {
			t.Errorf("LET composition %d monopoles + %d leaves != %d sent", tot.Monopoles, tot.Leaves, tot.Sent)
		}
		if !letOn && tot.Monopoles+tot.Leaves != 0 {
			t.Errorf("raw path recorded LET composition: %+v", tot)
		}
	}
}
