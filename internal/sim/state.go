package sim

import (
	"fmt"

	"greem/internal/domain"
	"greem/internal/mpi"
)

// State is one rank's complete restartable simulation state: everything that
// feeds back into the trajectory. Particles are in local storage order
// (summation order matters bit-wise), Geo is the current decomposition,
// History the geometry smoothing window (only rank 0 carries one), RNG the
// sampling-PRNG state, and LastCost/LastPMCost the cost-sampling inputs.
// Telemetry is deliberately excluded: counters and timers observe the run
// but never feed back into it.
type State struct {
	Particles  []Particle
	Time       float64
	Step       uint64
	RNG        uint64
	LastCost   float64
	LastPMCost float64
	Geo        []float64   // domain.Geometry.EncodeFlat
	History    [][]float64 // smoothing window, oldest first (rank 0 only)
}

// State captures this rank's restartable state. Local, not collective; the
// checkpoint package calls it on every rank at the same step boundary.
func (s *Sim) State() State {
	st := State{
		Particles:  s.Particles(),
		Time:       s.time,
		Step:       uint64(s.step),
		RNG:        s.rng.state,
		LastCost:   s.lastCost,
		LastPMCost: s.lastPMCost,
		Geo:        s.geo.EncodeFlat(),
	}
	for _, g := range s.history {
		st.History = append(st.History, g.EncodeFlat())
	}
	return st
}

// Resume reconstructs a Sim from a per-rank State captured by State().
// Unlike New it performs no initial uniform-geometry exchange: the particles
// are installed exactly as stored (same owner rank, same local order) and the
// decomposition, smoothing history, sampling-RNG state and cost inputs are
// restored, so with Config.DeterministicCost a resumed run continues
// bit-identically to the run that wrote the state. Collective over c (the PM
// solver rebuild is collective); the rank count must match the one that
// wrote the state.
func Resume(c *mpi.Comm, cfg Config, st State) (*Sim, error) {
	if err := cfg.setDefaults(c.Size()); err != nil {
		return nil, err
	}
	geo, err := domain.DecodeFlat(st.Geo)
	if err != nil {
		return nil, fmt.Errorf("sim: resume geometry: %w", err)
	}
	if geo.NumDomains() != c.Size() {
		return nil, fmt.Errorf("sim: resume geometry has %d domains for %d ranks", geo.NumDomains(), c.Size())
	}
	s := newSim(c, cfg)
	s.geo = geo
	for i, h := range st.History {
		hg, err := domain.DecodeFlat(h)
		if err != nil {
			return nil, fmt.Errorf("sim: resume history entry %d: %w", i, err)
		}
		s.history = append(s.history, hg)
	}
	s.time = st.Time
	s.step = int(st.Step)
	s.rng.state = st.RNG
	s.lastCost = st.LastCost
	s.lastPMCost = st.LastPMCost
	s.setParticles(st.Particles)
	if err := s.rebuildPM(); err != nil {
		return nil, err
	}
	return s, nil
}
