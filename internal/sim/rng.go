package sim

// sampleRNG is the per-rank sampling PRNG behind the domain-decomposition
// sampling method. It is a splitmix64 generator: one word of state, so a
// checkpoint can capture and replay the stream exactly (math/rand hides its
// state, which would force a resumed run onto a different sample sequence
// and hence a different decomposition — breaking bit-identical restart).
type sampleRNG struct {
	state uint64
}

func newSampleRNG(seed int64) sampleRNG { return sampleRNG{state: uint64(seed)} }

func (r *sampleRNG) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a sample index in [0, n). The modulo bias (≤ n/2⁶⁴) is far
// below anything the sampling method could notice.
func (r *sampleRNG) Intn(n int) int { return int(r.next() % uint64(n)) }
