package sim

import (
	"math"
	"testing"

	"greem/internal/mpi"
	"greem/internal/tree"
)

func TestGhostExchangeShiftsAndSelection(t *testing.T) {
	// Both exchange paths must produce the identical selection here: at four
	// particles every LET walk bottoms out in leaves, so the per-particle
	// periodic rcut filter is the whole story in either mode.
	for _, let := range []bool{false, true} {
		t.Run(map[bool]string{false: "raw", true: "let"}[let], func(t *testing.T) {
			testGhostExchangeShiftsAndSelection(t, let)
		})
	}
}

func testGhostExchangeShiftsAndSelection(t *testing.T, let bool) {
	// Two ranks split the unit box at x = 0.5. A particle at x = 0.98 on
	// rank 1 lies within rcut = 0.1 of rank 0's domain only through the
	// periodic boundary, so rank 0 must receive it shifted to x = −0.02.
	parts := []Particle{
		{X: 0.98, Y: 0.5, Z: 0.5, M: 1, ID: 0},   // near the wrap boundary
		{X: 0.52, Y: 0.5, Z: 0.5, M: 2, ID: 1},   // near the internal boundary
		{X: 0.75, Y: 0.5, Z: 0.5, M: 3, ID: 2},   // interior of rank 1
		{X: 0.25, Y: 0.25, Z: 0.25, M: 4, ID: 3}, // interior of rank 0
	}
	err := mpi.Run(2, func(c *mpi.Comm) {
		cfg := baseConfig([3]int{2, 1, 1})
		cfg.NMesh = 16
		cfg.Rcut = 0.1
		cfg.LETExchange = let
		var mine []Particle
		if c.Rank() == 0 {
			mine = parts
		}
		s, err := New(c, cfg, mine)
		if err != nil {
			panic(err)
		}
		var lt *tree.Tree
		if let {
			if lt, err = tree.Build(s.x, s.y, s.z, s.m, tree.Options{LeafCap: cfg.LeafCap}); err != nil {
				panic(err)
			}
		}
		ghosts := s.exchangeGhosts(lt)
		if c.Rank() == 0 {
			// Rank 0 must see ID 0 at x ≈ −0.02 and ID 1 at x = 0.52;
			// ID 2 at 0.75 is farther than rcut from [0, 0.5).
			if len(ghosts) != 2 {
				t.Errorf("rank 0 got %d ghosts: %+v", len(ghosts), ghosts)
			}
			var sawWrapped, sawInternal bool
			for _, g := range ghosts {
				if math.Abs(g.X+0.02) < 1e-12 && g.M == 1 {
					sawWrapped = true
				}
				if math.Abs(g.X-0.52) < 1e-12 && g.M == 2 {
					sawInternal = true
				}
			}
			if !sawWrapped {
				t.Errorf("wrapped ghost missing or unshifted: %+v", ghosts)
			}
			if !sawInternal {
				t.Errorf("internal-boundary ghost missing: %+v", ghosts)
			}
		} else {
			// Rank 1 must see ID 3? x = 0.25 is 0.25 from [0.5, 1) — outside
			// rcut both ways; only the rank-0 boundary region would qualify,
			// and there is none within 0.1 of 0.5 except... ID 3 at 0.25: no.
			for _, g := range ghosts {
				if g.M == 4 {
					t.Errorf("rank 1 received distant particle as ghost: %+v", g)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBestShift(t *testing.T) {
	// Point at 0.98, interval [0, 0.5): the image at −0.02 is closest.
	sh, d := bestShift(0.98, 0, 0.5, 1)
	if sh != -1 || math.Abs(d-0.0) > 1e-12 {
		// −0.02 lies below 0 ⇒ distance 0.02 to the interval start.
		if sh != -1 || math.Abs(d-0.02) > 1e-12 {
			t.Errorf("bestShift(0.98) = %v, %v", sh, d)
		}
	}
	// Point inside the interval: zero shift, zero distance.
	sh, d = bestShift(0.3, 0, 0.5, 1)
	if sh != 0 || d != 0 {
		t.Errorf("bestShift(0.3) = %v, %v", sh, d)
	}
}
