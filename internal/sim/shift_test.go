package sim

import (
	"math"
	"testing"

	"greem/internal/vec"
)

// TestBestShiftEdgeCases locks in the periodic image-selection contract the
// ghost exchange (and now the LET walk) is built on: exactly one image ships
// per source and axis — the closest, with ties broken toward the smallest k
// (−1, 0, +1 scan order with strict improvement). These are behavioural
// pins, not aspirations; the LET walk in package tree reuses the same
// predicate and must keep matching them.
func TestBestShiftEdgeCases(t *testing.T) {
	const l = 1.0
	cases := []struct {
		name      string
		c, lo, hi float64
		wantShift float64
		wantDist  float64
	}{
		// A domain touching the periodic wrap: the closest image of a point
		// just past the origin is the +L one.
		{"wrap-touching domain, point past origin", 0.05, 0.9, 1.0, +l, 0.05},
		{"wrap-touching domain, adjacent point", 0.02, 0.9, 1.0, +l, 0.02},
		// Point inside the domain: zero shift, zero distance — the invariant
		// that keeps a rank from ever shipping itself ghosts.
		{"interior point", 0.95, 0.9, 1.0, 0, 0},
		// Degenerate thin slab (zero-width domain).
		{"thin slab, point to the right", 0.6, 0.5, 0.5, 0, 0.1},
		{"thin slab, point across the wrap", 0.98, 0.0, 0.0, -l, 0.02},
		// A domain spanning more than L/2: both images of a far point are
		// candidates; the tie at equal distance resolves to k = −1 because
		// the scan takes the first strict minimum. Values are binary-exact so
		// the tie is a true tie in float64.
		{"wide domain, equidistant images tie to -L", 0.9375, 0.125, 0.75, -l, 0.1875},
		// A domain spanning the full axis: every point is interior at k = 0,
		// so the shift is zero even though the k = −1 image is also "close".
		{"full-span domain", 0.3, 0.0, 1.0, 0, 0},
		// Narrow domain with both images within reach (the rcut > domain
		// width scenario): still exactly one image ships — the k = 0 one,
		// since the tie at 0.48 resolves to the smaller k.
		{"narrow domain, both images in reach", 0.0, 0.48, 0.52, 0, 0.48},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sh, d := bestShift(tc.c, tc.lo, tc.hi, l)
			if sh != tc.wantShift || math.Abs(d-tc.wantDist) > 1e-12 {
				t.Errorf("bestShift(%v, [%v,%v]) = (%v, %v), want (%v, %v)",
					tc.c, tc.lo, tc.hi, sh, d, tc.wantShift, tc.wantDist)
			}
		})
	}
}

// TestBestShiftWideDomainTie pins the fix-point for the wide-domain tie in
// the table above: the distances really are equal, so the pin is purely
// about scan order.
func TestBestShiftWideDomainTie(t *testing.T) {
	_, dm := bestShift(0.9375-1, 0.125, 0.75, 0) // the k=−1 image, no further wrap
	_, d0 := bestShift(0.9375, 0.125, 0.75, 0)
	if dm != d0 {
		t.Fatalf("tie premise broken: d(-L)=%v d(0)=%v", dm, d0)
	}
}

// TestBoxDistPeriodicEdgeCases locks in the box-to-box periodic distance
// used for the per-rank quick reject and the LET subtree prune.
func TestBoxDistPeriodicEdgeCases(t *testing.T) {
	const l = 1.0
	box := func(x0, y0, z0, x1, y1, z1 float64) (vec.V3, vec.V3) {
		return vec.V3{X: x0, Y: y0, Z: z0}, vec.V3{X: x1, Y: y1, Z: z1}
	}
	type boxCase struct {
		name               string
		alo, ahi, blo, bhi vec.V3
		want               float64
	}
	var cases []boxCase
	add := func(name string, alo, ahi, blo, bhi vec.V3, want float64) {
		cases = append(cases, boxCase{name, alo, ahi, blo, bhi, want})
	}

	// Domains touching only through the periodic wrap: distance zero.
	alo, ahi := box(0, 0, 0, 0.1, 1, 1)
	blo, bhi := box(0.9, 0, 0, 1.0, 1, 1)
	add("wrap-adjacent slabs touch", alo, ahi, blo, bhi, 0)

	// Disjoint along one axis, wrap not closer.
	alo, ahi = box(0, 0, 0, 0.1, 1, 1)
	blo, bhi = box(0.45, 0, 0, 0.55, 1, 1)
	add("interior gap", alo, ahi, blo, bhi, 0.35)

	// Degenerate thin slabs (zero volume on every axis).
	alo, ahi = box(0.2, 0.2, 0.2, 0.2, 0.2, 0.2)
	blo, bhi = box(0.7, 0.2, 0.2, 0.7, 0.2, 0.2)
	add("thin slabs half a box apart", alo, ahi, blo, bhi, 0.5)

	// A domain spanning more than L/2: the short way round wins.
	alo, ahi = box(0.05, 0, 0, 0.95, 1, 1)
	blo, bhi = box(0.96, 0, 0, 0.99, 1, 1)
	add("wide domain, direct gap beats wrap", alo, ahi, blo, bhi, 0.01)

	// Overlap on every axis.
	alo, ahi = box(0.1, 0.1, 0.1, 0.6, 0.6, 0.6)
	blo, bhi = box(0.5, 0.5, 0.5, 0.9, 0.9, 0.9)
	add("overlapping boxes", alo, ahi, blo, bhi, 0)

	// Distances compose per axis (the per-axis minima factorization).
	alo, ahi = box(0, 0, 0, 0.1, 0.1, 0.1)
	blo, bhi = box(0.4, 0.4, 0.1, 0.5, 0.5, 1)
	add("two-axis diagonal", alo, ahi, blo, bhi, math.Sqrt(2*0.3*0.3))

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := boxDistPeriodic(tc.alo, tc.ahi, tc.blo, tc.bhi, l)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("boxDistPeriodic = %v, want %v", got, tc.want)
			}
			// The distance is symmetric under swapping the boxes.
			if rev := boxDistPeriodic(tc.blo, tc.bhi, tc.alo, tc.ahi, l); math.Abs(rev-got) > 1e-12 {
				t.Errorf("asymmetric: %v vs %v", got, rev)
			}
		})
	}
}
