package sim

import (
	"testing"

	"greem/internal/mpi"
)

// overlapRun captures everything the parity tests compare: positions,
// velocities and total forces by particle ID after a multi-step run, the
// per-rank State snapshot taken mid-run, and rank 0's overlap accounting.
type overlapRun struct {
	px, py, pz []float64
	vx, vy, vz []float64
	ax, ay, az []float64
	states     []State
	stats      OverlapStats
}

// runOverlap advances nsteps at 8 ranks with the overlapped pipeline on or
// off, capturing each rank's State after capStep full steps (capStep < 0
// skips the capture).
func runOverlap(t *testing.T, parts []Particle, overlap bool, workers, nsteps, capStep int) overlapRun {
	t.Helper()
	n := len(parts)
	r := overlapRun{
		px: make([]float64, n), py: make([]float64, n), pz: make([]float64, n),
		vx: make([]float64, n), vy: make([]float64, n), vz: make([]float64, n),
		ax: make([]float64, n), ay: make([]float64, n), az: make([]float64, n),
		states: make([]State, 8),
	}
	err := mpi.Run(8, func(cm *mpi.Comm) {
		cfg := baseConfig([3]int{2, 2, 2})
		cfg.DeterministicCost = true
		cfg.LETExchange = true
		cfg.Workers = workers
		cfg.OverlapPMPP = overlap
		s, err := New(cm, cfg, sliceFor(parts, cm.Rank(), 8))
		if err != nil {
			panic(err)
		}
		for k := 0; k < nsteps; k++ {
			if k == capStep {
				cm.Barrier()
				r.states[cm.Rank()] = s.State()
			}
			if err := s.Step(); err != nil {
				panic(err)
			}
		}
		s.ComputeForces()
		cm.Barrier()
		captureByID(s, &r)
		if cm.Rank() == 0 {
			r.stats = s.OverlapStats()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// captureByID scatters a rank's local particles and forces into the ID-indexed
// arrays (each particle lives on exactly one rank, so there are no races).
func captureByID(s *Sim, r *overlapRun) {
	for i := 0; i < s.NumLocal(); i++ {
		id := s.ID(i)
		p := s.Particles()[i]
		r.px[id], r.py[id], r.pz[id] = p.X, p.Y, p.Z
		r.vx[id], r.vy[id], r.vz[id] = p.VX, p.VY, p.VZ
		r.ax[id], r.ay[id], r.az[id] = s.AccelFor(i)
	}
}

// requireSameRun asserts two runs produced bit-identical trajectories and
// forces for every particle.
func requireSameRun(t *testing.T, label string, a, b overlapRun) {
	t.Helper()
	for i := range a.px {
		if a.px[i] != b.px[i] || a.py[i] != b.py[i] || a.pz[i] != b.pz[i] {
			t.Fatalf("%s: position differs at particle %d: (%v,%v,%v) vs (%v,%v,%v)",
				label, i, a.px[i], a.py[i], a.pz[i], b.px[i], b.py[i], b.pz[i])
		}
		if a.vx[i] != b.vx[i] || a.vy[i] != b.vy[i] || a.vz[i] != b.vz[i] {
			t.Fatalf("%s: velocity differs at particle %d", label, i)
		}
		if a.ax[i] != b.ax[i] || a.ay[i] != b.ay[i] || a.az[i] != b.az[i] {
			t.Fatalf("%s: force differs at particle %d: (%v,%v,%v) vs (%v,%v,%v)",
				label, i, a.ax[i], a.ay[i], a.az[i], b.ax[i], b.ay[i], b.az[i])
		}
	}
}

// TestOverlapBitIdentical is the tentpole's correctness oracle: a multi-step
// 8-rank run with the overlapped PM‖PP pipeline must produce trajectories and
// forces exactly == the sequential pipeline, at Workers ∈ {1, 7} (the pool is
// shared between the background solve and the tree walk, so the threaded case
// exercises the single-owner handoff).
func TestOverlapBitIdentical(t *testing.T) {
	parts := makeParticles(31, 240, 0.05)
	for _, workers := range []int{1, 7} {
		seq := runOverlap(t, parts, false, workers, 3, -1)
		ovl := runOverlap(t, parts, true, workers, 3, -1)
		requireSameRun(t, "overlap on vs off", seq, ovl)
		if ovl.stats.HiddenSeconds < 0 {
			t.Fatalf("negative hidden seconds: %v", ovl.stats.HiddenSeconds)
		}
		if ovl.stats.LastWindowSeconds <= 0 {
			t.Fatalf("overlapped run recorded no window critical path (workers=%d)", workers)
		}
		if seq.stats.LastWindowSeconds != 0 {
			t.Fatalf("sequential run must not record overlap windows, got %v", seq.stats.LastWindowSeconds)
		}
	}
}

// TestOverlapResumeCrossMode asserts the overlap knob is a pure scheduling
// choice with no footprint in the checkpoint contract: a State captured
// mid-run under the overlapped pipeline resumes bit-identically whether the
// resuming run overlaps or not, and both end states match the uninterrupted
// runs of either mode.
func TestOverlapResumeCrossMode(t *testing.T) {
	parts := makeParticles(47, 240, 0.05)
	const steps, capAt = 4, 2

	full := runOverlap(t, parts, true, 1, steps, capAt)
	fullSeq := runOverlap(t, parts, false, 1, steps, -1)
	requireSameRun(t, "uninterrupted overlap vs sequential", full, fullSeq)

	resume := func(overlap bool) overlapRun {
		n := len(parts)
		r := overlapRun{
			px: make([]float64, n), py: make([]float64, n), pz: make([]float64, n),
			vx: make([]float64, n), vy: make([]float64, n), vz: make([]float64, n),
			ax: make([]float64, n), ay: make([]float64, n), az: make([]float64, n),
		}
		err := mpi.Run(8, func(cm *mpi.Comm) {
			cfg := baseConfig([3]int{2, 2, 2})
			cfg.DeterministicCost = true
			cfg.LETExchange = true
			cfg.OverlapPMPP = overlap
			s, err := Resume(cm, cfg, full.states[cm.Rank()])
			if err != nil {
				panic(err)
			}
			for k := capAt; k < steps; k++ {
				if err := s.Step(); err != nil {
					panic(err)
				}
			}
			s.ComputeForces()
			cm.Barrier()
			captureByID(s, &r)
		})
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	requireSameRun(t, "resume with overlap on", full, resume(true))
	requireSameRun(t, "resume with overlap off", full, resume(false))
}
