// Package sim is the distributed simulation driver: it composes the domain
// decomposition (package domain), ghost exchange and tree short-range forces
// (package tree), the parallel PM long-range force (package pmpar), and the
// multiple-stepsize KDK integrator into the step cycle of §III — one step is
// one PM cycle plus two PP cycles and two domain-decomposition cycles — with
// the per-phase timers and interaction counters that populate Table I.
package sim

import (
	"fmt"
	"math/rand"

	"greem/internal/domain"
	"greem/internal/mpi"
	"greem/internal/pmpar"
	"greem/internal/tree"
	"greem/internal/vec"
)

// Particle is the migratable per-particle state.
type Particle struct {
	X, Y, Z    float64
	VX, VY, VZ float64
	M          float64
	ID         int64
}

// TimeStepper supplies kick and drift coefficients for the integrator. For
// static (non-expanding) boxes both are just dt; the cosmo package provides
// comoving coefficients.
type TimeStepper interface {
	// KickFactor returns the multiplier applied to accelerations over [t, t+dt].
	KickFactor(t, dt float64) float64
	// DriftFactor returns the multiplier applied to velocities over [t, t+dt].
	DriftFactor(t, dt float64) float64
}

// StaticStepper integrates in a non-expanding box: factors are plain dt.
type StaticStepper struct{}

// KickFactor returns dt.
func (StaticStepper) KickFactor(t, dt float64) float64 { return dt }

// DriftFactor returns dt.
func (StaticStepper) DriftFactor(t, dt float64) float64 { return dt }

// Config parameterizes a distributed simulation.
type Config struct {
	L, G float64 // box side, gravitational constant

	// PM configuration.
	NMesh  int
	NFFT   int
	Relay  bool
	Groups int
	// Pencil selects the 2-D pencil FFT decomposition over a PY×PZ process
	// grid (the paper's §IV future work); NFFT is then PY·PZ.
	Pencil bool
	PY, PZ int
	Rcut   float64 // 0 ⇒ 3·L/NMesh

	// Tree configuration.
	Theta      float64 // 0 ⇒ 0.5
	Ni         int     // group size cap; 0 ⇒ 100
	Eps2       float64
	LeafCap    int // 0 ⇒ 16
	FastKernel bool
	// Workers threads the per-rank tree traversal (OpenMP-style hybrid);
	// 0/1 = serial.
	Workers int

	// Domain decomposition.
	Grid        [3]int // divisions per axis; product must equal comm size
	SampleTotal int    // total sampled particles for the decomposition; 0 ⇒ 64·p
	SmoothSteps int    // moving-average window; 0 ⇒ 5 (the paper's choice)

	// Integration.
	DT      float64     // full (PM) step
	Stepper TimeStepper // nil ⇒ StaticStepper
	Time    float64     // initial time (scale factor in cosmological runs)

	// Substeps is the number of PP cycles per PM cycle; 0 ⇒ 2 (the paper).
	Substeps int
}

func (c *Config) setDefaults(p int) error {
	if c.L <= 0 || c.G <= 0 {
		return fmt.Errorf("sim: L and G must be positive")
	}
	if c.Grid[0]*c.Grid[1]*c.Grid[2] != p {
		return fmt.Errorf("sim: grid %v does not match %d ranks", c.Grid, p)
	}
	if c.NMesh < 2 {
		return fmt.Errorf("sim: NMesh %d too small", c.NMesh)
	}
	if c.NFFT == 0 && !c.Pencil {
		c.NFFT = min(p, c.NMesh)
	}
	if c.Rcut == 0 {
		c.Rcut = 3 * c.L / float64(c.NMesh)
	}
	if c.Theta == 0 {
		c.Theta = 0.5
	}
	if c.Ni == 0 {
		c.Ni = 100
	}
	if c.LeafCap == 0 {
		c.LeafCap = 16
	}
	if c.SampleTotal == 0 {
		c.SampleTotal = 64 * p
	}
	if c.SmoothSteps == 0 {
		c.SmoothSteps = 5
	}
	if c.Stepper == nil {
		c.Stepper = StaticStepper{}
	}
	if c.Substeps == 0 {
		c.Substeps = 2
	}
	if c.DT <= 0 {
		return fmt.Errorf("sim: DT must be positive")
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// Sim is one rank's handle on the distributed simulation.
type Sim struct {
	comm *mpi.Comm
	cfg  Config

	geo     *domain.Geometry
	history []*domain.Geometry
	pm      *pmpar.Solver

	// Local particles (SoA).
	x, y, z    []float64
	vx, vy, vz []float64
	m          []float64
	id         []int64

	// Long- and short-range accelerations for the local particles.
	apx, apy, apz []float64 // PM
	asx, asy, asz []float64 // PP

	pmFresh, ppFresh bool
	time             float64
	step             int

	// lastCost is this rank's measured force time (seconds) used for the
	// cost-proportional sampling rate.
	lastCost float64

	rng *rand.Rand

	Timers   Timers
	Counters Counters
}

// Timers aggregates the per-phase wall-clock of this rank, with the same
// rows as Table I.
type Timers struct {
	PM pmpar.Timings

	PPLocalTree  float64 // assembling the local+ghost source set
	PPComm       float64 // ghost exchange
	PPTreeConstr float64
	PPTraverse   float64 // traversal+force are fused in tree.Accel; split by model below
	PPForce      float64

	DDPosUpdate float64
	DDSampling  float64
	DDExchange  float64
}

// Counters aggregates interaction statistics (⟨Ni⟩, ⟨Nj⟩, #interactions).
type Counters struct {
	Tree tree.Stats
}

// New creates the simulation from an initial particle set. parts holds this
// rank's particles under the *uniform* initial decomposition (they are
// redistributed immediately). Collective over c.
func New(c *mpi.Comm, cfg Config, parts []Particle) (*Sim, error) {
	if err := cfg.setDefaults(c.Size()); err != nil {
		return nil, err
	}
	s := &Sim{
		comm: c, cfg: cfg,
		geo:  domain.Uniform(cfg.Grid[0], cfg.Grid[1], cfg.Grid[2], cfg.L),
		time: cfg.Time,
		rng:  rand.New(rand.NewSource(int64(42 + c.Rank()))),
	}
	s.setParticles(parts)
	// Initial exchange onto the uniform geometry, then build the PM solver.
	if err := s.exchangeParticles(); err != nil {
		return nil, err
	}
	if err := s.rebuildPM(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Sim) setParticles(parts []Particle) {
	n := len(parts)
	s.x = make([]float64, n)
	s.y = make([]float64, n)
	s.z = make([]float64, n)
	s.vx = make([]float64, n)
	s.vy = make([]float64, n)
	s.vz = make([]float64, n)
	s.m = make([]float64, n)
	s.id = make([]int64, n)
	for i, p := range parts {
		s.x[i], s.y[i], s.z[i] = p.X, p.Y, p.Z
		s.vx[i], s.vy[i], s.vz[i] = p.VX, p.VY, p.VZ
		s.m[i], s.id[i] = p.M, p.ID
	}
	s.resizeAccels()
}

func (s *Sim) resizeAccels() {
	n := len(s.x)
	s.apx = make([]float64, n)
	s.apy = make([]float64, n)
	s.apz = make([]float64, n)
	s.asx = make([]float64, n)
	s.asy = make([]float64, n)
	s.asz = make([]float64, n)
}

func (s *Sim) rebuildPM() error {
	lo, hi := s.geo.Bounds(s.comm.Rank())
	pm, err := pmpar.New(s.comm, pmpar.Config{
		N: s.cfg.NMesh, L: s.cfg.L, G: s.cfg.G, Rcut: s.cfg.Rcut,
		NFFT: s.cfg.NFFT, Relay: s.cfg.Relay, Groups: s.cfg.Groups,
		Pencil: s.cfg.Pencil, PY: s.cfg.PY, PZ: s.cfg.PZ, Workers: s.cfg.Workers,
	}, lo, hi)
	if err != nil {
		return err
	}
	s.pm = pm
	return nil
}

// NumLocal returns this rank's particle count.
func (s *Sim) NumLocal() int { return len(s.x) }

// Time returns the current simulation time (or scale factor).
func (s *Sim) Time() float64 { return s.time }

// StepIndex returns the number of completed full steps.
func (s *Sim) StepIndex() int { return s.step }

// Geometry returns the current domain decomposition.
func (s *Sim) Geometry() *domain.Geometry { return s.geo }

// Particles returns a snapshot of the local particles.
func (s *Sim) Particles() []Particle {
	out := make([]Particle, len(s.x))
	for i := range s.x {
		out[i] = Particle{
			X: s.x[i], Y: s.y[i], Z: s.z[i],
			VX: s.vx[i], VY: s.vy[i], VZ: s.vz[i],
			M: s.m[i], ID: s.id[i],
		}
	}
	return out
}

// GatherAll collects every rank's particles at root (nil elsewhere).
func (s *Sim) GatherAll(root int) []Particle {
	gathered := mpi.Gather(s.comm, root, s.Particles())
	if gathered == nil {
		return nil
	}
	var all []Particle
	for _, g := range gathered {
		all = append(all, g...)
	}
	return all
}

// bounds returns this rank's domain.
func (s *Sim) bounds() (vec.V3, vec.V3) { return s.geo.Bounds(s.comm.Rank()) }
