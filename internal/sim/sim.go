// Package sim is the distributed simulation driver: it composes the domain
// decomposition (package domain), ghost exchange and tree short-range forces
// (package tree), the parallel PM long-range force (package pmpar), and the
// multiple-stepsize KDK integrator into the step cycle of §III — one step is
// one PM cycle plus two PP cycles and two domain-decomposition cycles — with
// the per-phase timers and interaction counters that populate Table I.
package sim

import (
	"fmt"
	"time"

	"greem/internal/analysis"
	"greem/internal/domain"
	"greem/internal/mpi"
	"greem/internal/par"
	"greem/internal/pmpar"
	"greem/internal/telemetry"
	"greem/internal/tree"
	"greem/internal/vec"
)

// Particle is the migratable per-particle state.
type Particle struct {
	X, Y, Z    float64
	VX, VY, VZ float64
	M          float64
	ID         int64
}

// TimeStepper supplies kick and drift coefficients for the integrator. For
// static (non-expanding) boxes both are just dt; the cosmo package provides
// comoving coefficients.
type TimeStepper interface {
	// KickFactor returns the multiplier applied to accelerations over [t, t+dt].
	KickFactor(t, dt float64) float64
	// DriftFactor returns the multiplier applied to velocities over [t, t+dt].
	DriftFactor(t, dt float64) float64
}

// StaticStepper integrates in a non-expanding box: factors are plain dt.
type StaticStepper struct{}

// KickFactor returns dt.
func (StaticStepper) KickFactor(t, dt float64) float64 { return dt }

// DriftFactor returns dt.
func (StaticStepper) DriftFactor(t, dt float64) float64 { return dt }

// Config parameterizes a distributed simulation.
type Config struct {
	L, G float64 // box side, gravitational constant

	// PM configuration.
	NMesh  int
	NFFT   int
	Relay  bool
	Groups int
	// Pencil selects the 2-D pencil FFT decomposition over a PY×PZ process
	// grid (the paper's §IV future work); NFFT is then PY·PZ.
	Pencil bool
	PY, PZ int
	Rcut   float64 // 0 ⇒ 3·L/NMesh

	// Tree configuration.
	Theta      float64 // 0 ⇒ 0.5
	Ni         int     // group size cap; 0 ⇒ 100
	Eps2       float64
	LeafCap    int // 0 ⇒ 16
	FastKernel bool
	// Float32Kernel evaluates the PP cutoff kernel in single precision with
	// group-center-relative interaction batches (tree.ForceOpts.Float32Kernel
	// — the Phantom-GRAPE arrangement of §II-A). The float64 kernel remains
	// the parity oracle; the cmd drivers enable float32 by default.
	Float32Kernel bool
	// Workers sizes the rank's intra-node worker pool (the OpenMP-style
	// hybrid of the paper): the per-rank tree traversal, every PM hot loop
	// (TSC assignment, FFT batches, convolution, differencing,
	// interpolation), and the integrator kick/drift loops all run on it.
	// Resolved by par.Resolve — see the par package doc for the knob
	// semantics (0 ⇒ serial, par.Auto ⇒ GOMAXPROCS capped per rank).
	// Results are bit-identical to serial for any worker count.
	Workers int

	// OverlapPMPP runs the step cycle's PM solves concurrently with the PP
	// pipeline wherever both consume the same positions (GreeM's overlap:
	// "the communication for the PM part is overlapped with the force
	// calculation of the PP part", §II-B): the PM comm+FFT stage runs on a
	// background goroutine over a duplicated communicator while the tree
	// walk proceeds, joined before the closing long-range kick. Forces are
	// bit-identical to the sequential path (which remains the parity
	// oracle) at any worker count. The cmd drivers enable it by default.
	OverlapPMPP bool

	// LETExchange selects the locally-essential-tree ghost exchange (GreeM's
	// structure-aware boundary exchange): the local tree is walked once per
	// near neighbour, shipping pruned node monopoles where the opening
	// criterion size/dist < θ allows and raw leaf particles where the
	// neighbour's box is close. False keeps the particle-ghost baseline — an
	// O(n·p_near) scan shipping every nearby particle raw — which serves as
	// the parity/error oracle for the LET path (both agree within the θ-error
	// bound; see TestLETForceParity). The cmd drivers enable LET by default.
	LETExchange bool

	// Domain decomposition.
	Grid        [3]int // divisions per axis; product must equal comm size
	SampleTotal int    // total sampled particles for the decomposition; 0 ⇒ 64·p
	SmoothSteps int    // moving-average window; 0 ⇒ 5 (the paper's choice)

	// Integration.
	DT      float64     // full (PM) step
	Stepper TimeStepper // nil ⇒ StaticStepper
	Time    float64     // initial time (scale factor in cosmological runs)

	// Substeps is the number of PP cycles per PM cycle; 0 ⇒ 2 (the paper).
	Substeps int

	// DeterministicCost replaces the measured wall-clock phase costs that
	// drive the cost-proportional sampling rate (the paper's method) with
	// deterministic proxies — tree interaction counts for PP, local particle
	// counts for PM. Only the sampling *rates* change semantics; the knob
	// makes multi-rank trajectories reproducible run-to-run, which is what
	// the bit-identical checkpoint/restart guarantee (and its tests) needs.
	// Production runs keep the default (measured costs, per the paper).
	DeterministicCost bool

	// Recorder is this rank's telemetry recorder; every phase timer,
	// interaction counter, and (when tracing is enabled) timeline span runs
	// through it. nil ⇒ a private recorder. Recorders are rank-local, so
	// each rank must pass its own.
	Recorder *telemetry.Recorder

	// In-situ analysis (0 ⇒ disabled): every InSituEvery completed steps —
	// and additionally at step InSituFinalStep, so a run's last step always
	// emits regardless of the cadence — the step loop computes analysis
	// products on the distributed data without gathering particles: a
	// distributed FoF halo catalog (analysis/dist), a binned P(k) tapped
	// from the PM solve's density spectrum (zero extra FFTs or all-to-alls),
	// and a surface-density projection reduced across ranks. Rank 0 exposes
	// the canonically encoded products through InSituProducts. None of these
	// fields affect the trajectory, and none participate in the checkpoint
	// fingerprint.
	InSituEvery     int
	InSituFinalStep int
	// InSituLL is the absolute FoF linking length (0 ⇒ 0.2·L/∛N; < 0
	// disables the FoF pass). InSituMinSize is the smallest group reported
	// (0 ⇒ 8).
	InSituLL      float64
	InSituMinSize int
	// InSituBins is the P(k) shell count (0 ⇒ 16; < 0 disables the pk tap).
	InSituBins int
	// InSituPix is the projection image side (0 ⇒ 64; < 0 disables it).
	InSituPix int
}

func (c *Config) setDefaults(p int) error {
	if c.L <= 0 || c.G <= 0 {
		return fmt.Errorf("sim: L and G must be positive")
	}
	if c.Grid[0]*c.Grid[1]*c.Grid[2] != p {
		return fmt.Errorf("sim: grid %v does not match %d ranks", c.Grid, p)
	}
	if c.NMesh < 2 {
		return fmt.Errorf("sim: NMesh %d too small", c.NMesh)
	}
	if c.NFFT == 0 && !c.Pencil {
		c.NFFT = min(p, c.NMesh)
	}
	if c.Rcut == 0 {
		c.Rcut = 3 * c.L / float64(c.NMesh)
	}
	if c.Theta == 0 {
		c.Theta = 0.5
	}
	if c.Ni == 0 {
		c.Ni = 100
	}
	if c.LeafCap == 0 {
		c.LeafCap = 16
	}
	if c.SampleTotal == 0 {
		c.SampleTotal = 64 * p
	}
	if c.SmoothSteps == 0 {
		c.SmoothSteps = 5
	}
	if c.Stepper == nil {
		c.Stepper = StaticStepper{}
	}
	if c.Substeps == 0 {
		c.Substeps = 2
	}
	if c.DT <= 0 {
		return fmt.Errorf("sim: DT must be positive")
	}
	return nil
}

// Sim is one rank's handle on the distributed simulation.
type Sim struct {
	comm *mpi.Comm
	cfg  Config

	geo     *domain.Geometry
	history []*domain.Geometry
	pm      *pmpar.Solver
	// pmComm is the duplicated communicator every PM solver runs on (both
	// overlap modes, so the collective schedule and traffic-ledger comm ids
	// are mode-independent): with OverlapPMPP the background solve's
	// collectives are in flight while PP ghost/LET traffic uses the world
	// comm, and per-comm sequence spaces keep the streams from interleaving.
	pmComm *mpi.Comm

	// Local particles (SoA).
	x, y, z    []float64
	vx, vy, vz []float64
	m          []float64
	id         []int64

	// Long- and short-range accelerations for the local particles.
	apx, apy, apz []float64 // PM
	asx, asy, asz []float64 // PP

	pmFresh, ppFresh bool
	time             float64
	step             int

	// lastCost is this rank's measured force time (seconds) used for the
	// cost-proportional sampling rate; lastPMCost is the most recent PM
	// cycle's cost, amortized over the substeps.
	lastCost   float64
	lastPMCost float64

	rng sampleRNG

	// rec is the rank's telemetry recorder (never nil); the tree-statistics
	// counters below are interned handles into its registry.
	rec                                                         *telemetry.Recorder
	ctrGroups, ctrSumNi, ctrListP, ctrListN, ctrInter, ctrNodes *telemetry.Counter
	ctrFlops                                                    *telemetry.Counter
	// Per-step Table I gauges: the most recent PP pass's mean group size
	// ⟨Ni⟩ and mean interaction-list length ⟨Nj⟩ (the cumulative counters
	// above carry the run totals).
	gaugeNi, gaugeNj *telemetry.Gauge

	// walker owns the grouped tree-walk scratch (interaction-list batches,
	// per-group accumulators, traversal stack), reused across PP passes so
	// the steady-state walk allocates nothing.
	walker *tree.Walker

	// srcBuild and tgtBuild are the reusable tree arenas for the source
	// (local+ghost) and target (local/LET) trees — two builders because both
	// trees are alive at once during a force pass. With them the steady-state
	// substep's tree construction allocates nothing.
	srcBuild, tgtBuild *tree.Builder

	// pot is the reused potential buffer for PotentialEnergy.
	pot []float64

	// Ghost-exchange machinery: the LET walk scratch, per-destination staging
	// buffers, the flattened receive buffer, and the local+ghost source-set
	// arrays are all Sim-owned and reused, so the steady-state exchange and
	// source assembly allocate nothing (see TestAssembleSourcesAllocs).
	let        tree.LETCollector
	ghostSend  [][]ghost
	ghostRecv  []ghost
	srcX, srcY []float64
	srcZ, srcM []float64

	// Ghost traffic and LET composition counters.
	ctrGhostSent, ctrGhostRecv, ctrGhostBytes *telemetry.Counter
	ctrLETMono, ctrLETLeaf, ctrLETNodes       *telemetry.Counter

	// pool is the rank's intra-node worker pool (nil ⇒ serial), shared by
	// the PM solver (injected through pmpar.Config.Pool on every rebuild)
	// and the integrator loops below. Owned — and closed — by the Sim.
	pool *par.Pool

	// Hoisted integrator pool tasks and their per-call state, so kick and
	// drift dispatch with zero steady-state allocation. tk* alias the PM or
	// PP acceleration arrays for the current kick; tkf/tdf are the kick and
	// drift factors.
	taskKick, taskDrift func(w, lo, hi int)
	tkx, tky, tkz       []float64
	tkf, tdf            float64

	// Pool busy/idle counters for the integrator phases (the PM phases are
	// recorded inside pmpar).
	poolBusyKick, poolIdleKick   *telemetry.Counter
	poolBusyDrift, poolIdleDrift *telemetry.Counter

	// Overlap telemetry: PM solve seconds hidden behind the PP walk, and the
	// most recent overlapped window's critical-path wall-clock.
	ctrOverlapHidden *telemetry.Counter
	gaugeOverlapCrit *telemetry.Gauge

	// In-situ analysis state: insituArmed marks a step whose trailing PM
	// solve carries the spectrum tap; insituBin is that tap's binner (only
	// the solve flow touches it between arm and join); insituTotM/insituNp
	// are the globally reduced mass and count of the current arm;
	// insituLast is rank 0's most recent emission.
	insituArmed bool
	insituBin   *analysis.PkBinner
	insituTotM  float64
	insituNp    int64
	insituLast  *InSituResult
}

// PhaseIntegKick labels the integrator kick loops' pool busy/idle counters
// (the kicks have no wall-clock phase of their own in Table I; the label
// exists only under the pool metrics).
const PhaseIntegKick = "integ/kick"

// Timers is the per-rank per-phase wall-clock view, with the same rows as
// Table I. It is derived from the rank's telemetry recorder — the single
// source of truth — so it survives PM-solver rebuilds and stays consistent
// with the exported metrics and traces.
type Timers struct {
	PM pmpar.Timings

	PPLocalTree  float64 // assembling the local+ghost source set
	PPComm       float64 // ghost exchange
	PPLET        float64 // LET walk building each neighbour's source set
	PPTreeConstr float64
	PPTraverse   float64 // traversal+force are fused in tree.Accel; split by kernel clock
	PPForce      float64

	DDPosUpdate float64
	DDSampling  float64
	DDExchange  float64
}

// Timers materializes the Table I phase view from the telemetry registry.
func (s *Sim) Timers() Timers {
	sec := s.rec.PhaseSeconds
	d := func(name string) time.Duration { return time.Duration(sec(name) * float64(time.Second)) }
	return Timers{
		PM: pmpar.Timings{
			Density:   d(telemetry.PhasePMDensity),
			Comm:      d(telemetry.PhasePMComm),
			FFT:       d(telemetry.PhasePMFFT),
			MeshForce: d(telemetry.PhasePMMeshForce),
			Interp:    d(telemetry.PhasePMInterp),
		},
		PPLocalTree:  sec(telemetry.PhasePPLocalTree),
		PPComm:       sec(telemetry.PhasePPComm),
		PPLET:        sec(telemetry.PhasePPLET),
		PPTreeConstr: sec(telemetry.PhasePPTreeConstr),
		PPTraverse:   sec(telemetry.PhasePPTraverse),
		PPForce:      sec(telemetry.PhasePPForce),
		DDPosUpdate:  sec(telemetry.PhaseDDPosUpdate),
		DDSampling:   sec(telemetry.PhaseDDSampling),
		DDExchange:   sec(telemetry.PhaseDDExchange),
	}
}

// Counters is the interaction-statistics view (⟨Ni⟩, ⟨Nj⟩, #interactions),
// likewise derived from the telemetry registry counters.
type Counters struct {
	Tree tree.Stats
}

// Counters materializes the interaction statistics from the registry.
func (s *Sim) Counters() Counters {
	return Counters{Tree: tree.Stats{
		Groups:        int(s.ctrGroups.Value()),
		SumNi:         uint64(s.ctrSumNi.Value()),
		ListParticles: uint64(s.ctrListP.Value()),
		ListNodes:     uint64(s.ctrListN.Value()),
		Interactions:  uint64(s.ctrInter.Value()),
		NodesVisited:  uint64(s.ctrNodes.Value()),
		KernelSeconds: s.rec.PhaseSeconds(telemetry.PhasePPForce),
	}}
}

// Recorder returns the rank's telemetry recorder (for trace export and
// cross-rank aggregation).
func (s *Sim) Recorder() *telemetry.Recorder { return s.rec }

// GhostStats is a rank's accumulated ghost-exchange statistics: sources
// shipped and received, payload bytes sent, and — on the LET path — the
// export's composition (pruned node monopoles vs raw leaf particles).
type GhostStats struct {
	Sent, Recv, Bytes uint64
	Monopoles, Leaves uint64
	LETNodesVisited   uint64
}

// GhostStats materializes the ghost-exchange statistics from the registry.
func (s *Sim) GhostStats() GhostStats {
	return GhostStats{
		Sent:            uint64(s.ctrGhostSent.Value()),
		Recv:            uint64(s.ctrGhostRecv.Value()),
		Bytes:           uint64(s.ctrGhostBytes.Value()),
		Monopoles:       uint64(s.ctrLETMono.Value()),
		Leaves:          uint64(s.ctrLETLeaf.Value()),
		LETNodesVisited: uint64(s.ctrLETNodes.Value()),
	}
}

// New creates the simulation from an initial particle set. parts holds this
// rank's particles under the *uniform* initial decomposition (they are
// redistributed immediately). Collective over c.
func New(c *mpi.Comm, cfg Config, parts []Particle) (*Sim, error) {
	if err := cfg.setDefaults(c.Size()); err != nil {
		return nil, err
	}
	s := newSim(c, cfg)
	s.setParticles(parts)
	// Initial exchange onto the uniform geometry, then build the PM solver.
	if err := s.exchangeParticles(); err != nil {
		return nil, err
	}
	if err := s.rebuildPM(); err != nil {
		return nil, err
	}
	return s, nil
}

// newSim builds the rank-local scaffolding shared by New and Resume: the
// uniform starting geometry, worker pool, telemetry handles and sampling
// RNG. cfg must already have defaults applied.
func newSim(c *mpi.Comm, cfg Config) *Sim {
	rec := cfg.Recorder
	if rec == nil {
		rec = telemetry.NewRecorder(c.Rank(), nil)
	}
	s := &Sim{
		comm: c, cfg: cfg,
		geo:      domain.Uniform(cfg.Grid[0], cfg.Grid[1], cfg.Grid[2], cfg.L),
		time:     cfg.Time,
		rng:      newSampleRNG(int64(42 + c.Rank())),
		rec:      rec,
		walker:   tree.NewWalker(),
		srcBuild: tree.NewBuilder(),
		tgtBuild: tree.NewBuilder(),
		// The PM comm plane. newSim runs on every rank in both New and
		// Resume, and each world's nsplit counters start fresh, so the dup is
		// deterministic and resume-stable.
		pmComm: c.Dup(),
	}
	// One pool per rank, shared by the PM solver (injected on every
	// rebuild) and the integrator loops. par.New returns nil for ≤ 1
	// worker, and a nil pool runs inline, so the serial default costs
	// nothing. Resolve caps Auto by the rank count since the
	// ranks-as-goroutines emulation shares one process.
	s.pool = par.New(par.Resolve(cfg.Workers, c.Size()))
	s.taskKick = s.kickRange
	s.taskDrift = s.driftRange
	reg := rec.Registry()
	s.poolBusyKick = reg.SecondsCounter(telemetry.MetricPoolBusySeconds, telemetry.L("phase", PhaseIntegKick))
	s.poolIdleKick = reg.SecondsCounter(telemetry.MetricPoolIdleSeconds, telemetry.L("phase", PhaseIntegKick))
	s.poolBusyDrift = reg.SecondsCounter(telemetry.MetricPoolBusySeconds, telemetry.L("phase", telemetry.PhaseDDPosUpdate))
	s.poolIdleDrift = reg.SecondsCounter(telemetry.MetricPoolIdleSeconds, telemetry.L("phase", telemetry.PhaseDDPosUpdate))
	s.ctrGroups = reg.Counter("greem_tree_groups_total")
	s.ctrSumNi = reg.Counter("greem_tree_sum_ni_total")
	s.ctrListP = reg.Counter("greem_tree_list_particles_total")
	s.ctrListN = reg.Counter("greem_tree_list_nodes_total")
	s.ctrInter = reg.Counter("greem_tree_interactions_total")
	s.ctrNodes = reg.Counter("greem_tree_nodes_visited_total")
	s.ctrFlops = reg.FlopCounter("greem_pp_kernel_flops_total")
	s.gaugeNi = reg.Gauge("greem_tree_mean_ni")
	s.gaugeNj = reg.Gauge("greem_tree_mean_nj")
	s.ctrGhostSent = reg.Counter(telemetry.MetricGhostSent)
	s.ctrGhostRecv = reg.Counter(telemetry.MetricGhostRecv)
	s.ctrGhostBytes = reg.Counter(telemetry.MetricGhostBytes)
	s.ctrLETMono = reg.Counter(telemetry.MetricLETMonopoles)
	s.ctrLETLeaf = reg.Counter(telemetry.MetricLETLeaves)
	s.ctrLETNodes = reg.Counter(telemetry.MetricLETNodeVisits)
	s.ctrOverlapHidden = reg.SecondsCounter(telemetry.MetricOverlapHidden)
	s.gaugeOverlapCrit = reg.Gauge("greem_overlap_critical_path_seconds")
	return s
}

func (s *Sim) setParticles(parts []Particle) {
	n := len(parts)
	s.x = make([]float64, n)
	s.y = make([]float64, n)
	s.z = make([]float64, n)
	s.vx = make([]float64, n)
	s.vy = make([]float64, n)
	s.vz = make([]float64, n)
	s.m = make([]float64, n)
	s.id = make([]int64, n)
	for i, p := range parts {
		s.x[i], s.y[i], s.z[i] = p.X, p.Y, p.Z
		s.vx[i], s.vy[i], s.vz[i] = p.VX, p.VY, p.VZ
		s.m[i], s.id[i] = p.M, p.ID
	}
	s.resizeAccels()
}

func (s *Sim) resizeAccels() {
	n := len(s.x)
	s.apx = make([]float64, n)
	s.apy = make([]float64, n)
	s.apz = make([]float64, n)
	s.asx = make([]float64, n)
	s.asy = make([]float64, n)
	s.asz = make([]float64, n)
}

func (s *Sim) rebuildPM() error {
	lo, hi := s.geo.Bounds(s.comm.Rank())
	pm, err := pmpar.New(s.pmComm, pmpar.Config{
		N: s.cfg.NMesh, L: s.cfg.L, G: s.cfg.G, Rcut: s.cfg.Rcut,
		NFFT: s.cfg.NFFT, Relay: s.cfg.Relay, Groups: s.cfg.Groups,
		Pencil: s.cfg.Pencil, PY: s.cfg.PY, PZ: s.cfg.PZ,
		// Workers is deliberately left zero: the Sim already resolved the
		// knob into its per-rank pool, and injecting that (possibly nil ⇒
		// serial) pool keeps rebuilds — one per DD substep — from spawning
		// fresh worker goroutines.
		Pool: s.pool, Recorder: s.rec,
	}, lo, hi)
	if err != nil {
		return err
	}
	s.pm = pm
	return nil
}

// Close releases the rank's worker pool. The Sim must not be stepped after
// Close; safe when the pool is nil (serial) and idempotent.
func (s *Sim) Close() {
	s.pool.Close()
	s.pool = nil
}

// NumLocal returns this rank's particle count.
func (s *Sim) NumLocal() int { return len(s.x) }

// Time returns the current simulation time (or scale factor).
func (s *Sim) Time() float64 { return s.time }

// StepIndex returns the number of completed full steps.
func (s *Sim) StepIndex() int { return s.step }

// Geometry returns the current domain decomposition.
func (s *Sim) Geometry() *domain.Geometry { return s.geo }

// Particles returns a snapshot of the local particles.
func (s *Sim) Particles() []Particle {
	out := make([]Particle, len(s.x))
	for i := range s.x {
		out[i] = Particle{
			X: s.x[i], Y: s.y[i], Z: s.z[i],
			VX: s.vx[i], VY: s.vy[i], VZ: s.vz[i],
			M: s.m[i], ID: s.id[i],
		}
	}
	return out
}

// GatherAll collects every rank's particles at root (nil elsewhere).
func (s *Sim) GatherAll(root int) []Particle {
	gathered := mpi.Gather(s.comm, root, s.Particles())
	if gathered == nil {
		return nil
	}
	var all []Particle
	for _, g := range gathered {
		all = append(all, g...)
	}
	return all
}

// bounds returns this rank's domain.
func (s *Sim) bounds() (vec.V3, vec.V3) { return s.geo.Bounds(s.comm.Rank()) }
