package sim

import (
	"math"
	"testing"

	"greem/internal/ewald"
	"greem/internal/mpi"
)

// TestFloat32ForcesAgainstEwald is the accuracy gate for the float32 PP
// kernel (the companion of TestLETForcesAgainstEwald): total forces on 8
// ranks are computed at identical positions with the float64 and the float32
// cutoff kernel and both compared against the exact Ewald reference. The
// float32 path must leave the RMS force error unchanged to within the
// float32 noise floor — the group-center-relative batches keep the kernel's
// single-precision noise orders of magnitude below the tree method's own
// θ-truncation error — and must stay bit-identical across worker counts.
func TestFloat32ForcesAgainstEwald(t *testing.T) {
	n := 200
	parts := makeParticles(31, n, 0)
	cfg := baseConfig([3]int{2, 2, 2})
	cfg.LETExchange = true
	cfg.FastKernel = true
	cfg.DeterministicCost = true

	// Forces at the *initial* positions (no step), so both kernel modes see
	// bit-identical inputs.
	capture := func(f32 bool, workers int) (ax, ay, az, px, py, pz []float64) {
		ax = make([]float64, n)
		ay = make([]float64, n)
		az = make([]float64, n)
		px = make([]float64, n)
		py = make([]float64, n)
		pz = make([]float64, n)
		c := cfg
		c.Float32Kernel = f32
		c.Workers = workers
		err := mpi.Run(8, func(cm *mpi.Comm) {
			s, err := New(cm, c, sliceFor(parts, cm.Rank(), 8))
			if err != nil {
				panic(err)
			}
			s.ComputeForces()
			cm.Barrier()
			for i := 0; i < s.NumLocal(); i++ {
				id := s.ID(i)
				ax[id], ay[id], az[id] = s.AccelFor(i)
				p := s.Particles()[i]
				px[id], py[id], pz[id] = p.X, p.Y, p.Z
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return
	}

	ax64, ay64, az64, px, py, pz := capture(false, 1)
	ax32, ay32, az32, _, _, _ := capture(true, 1)

	// Exact periodic reference at the shared positions.
	ew := ewald.New(1, 1)
	m := make([]float64, n)
	for i := range m {
		m[i] = 1.0 / float64(n)
	}
	ex := make([]float64, n)
	ey := make([]float64, n)
	ez := make([]float64, n)
	ew.Accel(px, py, pz, m, ex, ey, ez)

	rms64 := rmsDiff(ax64, ay64, az64, ex, ey, ez)
	rms32 := rmsDiff(ax32, ay32, az32, ex, ey, ez)
	t.Logf("RMS vs Ewald: float64 kernel %.6e, float32 kernel %.6e", rms64, rms32)
	if rms32 > 0.1 {
		t.Errorf("float32 forces diverge from Ewald reference: RMS %v", rms32)
	}
	// The float32 kernel noise (relative ~1e-6 of the short-range force) is
	// buried under the tree method's θ-truncation error, so the two RMS
	// figures must agree closely.
	if math.Abs(rms32-rms64) > 0.02*rms64 {
		t.Errorf("float32 kernel moved the RMS force error: %v -> %v", rms64, rms32)
	}

	// Bit-identical across worker counts with the float32 kernel.
	ax7, ay7, az7, _, _, _ := capture(true, 7)
	for i := 0; i < n; i++ {
		if ax32[i] != ax7[i] || ay32[i] != ay7[i] || az32[i] != az7[i] {
			t.Fatalf("float32 forces differ between Workers=1 and Workers=7 at particle %d", i)
		}
	}
}
