package ewtab

import (
	"math"
	"math/rand"
	"testing"

	"greem/internal/ewald"
	"greem/internal/ppkern"
	"greem/internal/vec"
)

func TestTableMatchesDirectCorrection(t *testing.T) {
	l := 1.0
	solver := ewald.New(l, 1)
	tab, err := New(l, 32, solver)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	// The correction field scales like 1/L²; trilinear interpolation on a
	// 32-interval octant resolves it to a small absolute error.
	worst := 0.0
	for i := 0; i < 200; i++ {
		d := vec.V3{X: rng.Float64() - 0.5, Y: rng.Float64() - 0.5, Z: rng.Float64() - 0.5}
		got := tab.Correction(d)
		want := solver.PairCorrection(d)
		if e := got.Sub(want).Norm(); e > worst {
			worst = e
		}
	}
	t.Logf("worst interpolation error %.3e (field scale ~π/L² ≈ 3)", worst)
	if worst > 0.05 {
		t.Errorf("interpolation error %v too large", worst)
	}
}

func TestTableSymmetries(t *testing.T) {
	tab, err := New(1, 16, nil)
	if err != nil {
		t.Fatal(err)
	}
	d := vec.V3{X: 0.21, Y: 0.13, Z: 0.34}
	c := tab.Correction(d)
	// c_x odd under x-reflection, even under y/z-reflections.
	cr := tab.Correction(vec.V3{X: -d.X, Y: d.Y, Z: d.Z})
	if math.Abs(cr.X+c.X) > 1e-14 || math.Abs(cr.Y-c.Y) > 1e-14 || math.Abs(cr.Z-c.Z) > 1e-14 {
		t.Errorf("x-reflection symmetry broken: %v vs %v", c, cr)
	}
	// Full inversion flips every component.
	ci := tab.Correction(d.Neg())
	if ci.Add(c).Norm() > 1e-14 {
		t.Errorf("inversion symmetry broken: %v vs %v", c, ci)
	}
	// Zero at the origin.
	if z := tab.Correction(vec.V3{}); z.Norm() != 0 {
		t.Errorf("c(0) = %v", z)
	}
}

func TestTableValidation(t *testing.T) {
	if _, err := New(1, 1, nil); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := New(1, 8, ewald.New(1, 2)); err == nil {
		t.Error("G≠1 solver accepted")
	}
}

func TestAccelKernelMatchesEwaldPairs(t *testing.T) {
	// Kernel over explicit sources = Σ G·m·(Newton + correction) must match
	// ewald.PairAccel for well-separated pairs.
	l := 1.0
	solver := ewald.New(l, 1)
	tab, _ := New(l, 32, solver)
	src := &ppkern.Source{}
	// Source pre-min-imaged relative to the target at the origin region.
	src.Append(0.31, -0.12, 0.22, 2.0)
	ax := make([]float64, 1)
	ay := make([]float64, 1)
	az := make([]float64, 1)
	g := 1.5
	Accel([]float64{0}, []float64{0}, []float64{0}, src, tab, g, 0, ax, ay, az)
	want := solver.PairAccel(vec.V3{X: 0.31, Y: -0.12, Z: 0.22}).Scale(2.0 * g)
	got := vec.V3{X: ax[0], Y: ay[0], Z: az[0]}
	if got.Sub(want).Norm() > 0.1*want.Norm() {
		t.Errorf("kernel %v vs ewald %v", got, want)
	}
	// Tighter absolute bound: the difference is only interpolation error.
	if got.Sub(want).Norm() > 2.0*0.05*g {
		t.Errorf("kernel error %v beyond interpolation budget", got.Sub(want).Norm())
	}
}
