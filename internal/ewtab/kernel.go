package ewtab

import (
	"math"

	"greem/internal/ppkern"
)

// Accel accumulates fully periodic pairwise accelerations: the minimum-image
// Newtonian term plus the tabulated Ewald correction, for every (target,
// source) pair. Displacements are minimum-imaged per pair (positions may be
// any representative within one box length), keeping the Newtonian term and
// the table lookup on the same image. Returns the pair count.
func Accel(xi, yi, zi []float64, src *ppkern.Source, tab *Table, g, eps2 float64, ax, ay, az []float64) uint64 {
	l := tab.L
	half := l / 2
	wrap := func(d float64) float64 {
		if d >= half {
			return d - l
		}
		if d < -half {
			return d + l
		}
		return d
	}
	for i := range xi {
		var fx, fy, fz float64
		for j := range src.X {
			dx := wrap(src.X[j] - xi[i])
			dy := wrap(src.Y[j] - yi[i])
			dz := wrap(src.Z[j] - zi[i])
			r2 := dx*dx + dy*dy + dz*dz + eps2
			if r2 == 0 {
				continue
			}
			gm := g * src.M[j]
			rinv := 1 / math.Sqrt(r2)
			w := gm * rinv * rinv * rinv
			cx, cy, cz := tab.CorrectionXYZ(dx, dy, dz)
			fx += w*dx + gm*cx
			fy += w*dy + gm*cy
			fz += w*dz + gm*cz
		}
		ax[i] += fx
		ay[i] += fy
		az[i] += fz
	}
	return uint64(len(xi)) * uint64(src.Len())
}
