// Package ewtab provides a precomputed, trilinearly interpolated table of
// the periodic-image force correction (the Ewald sum minus the primary
// minimum-image Newtonian term). With it, a plain tree code becomes a *pure
// periodic tree code* — the method the paper contrasts TreePM against: every
// interaction is evaluated as min-image Newton plus a table lookup, so the
// tree must resolve the force at all scales and its interaction lists grow
// accordingly (§I: "for the same level of accuracy, the TreePM algorithm
// requires significantly less operations"; §III-B: ⟨Nj⟩ comparison). This is
// the GADGET-style tabulation.
package ewtab

import (
	"fmt"

	"greem/internal/ewald"
	"greem/internal/vec"
)

// Table holds the correction field c(d) on an (n+1)³ grid over the octant
// d ∈ [0, L/2]³; the full cube follows from the odd/even symmetries of each
// component (c_x is odd in d_x and even in d_y, d_z, etc.).
// Values are stored per unit G and per unit source mass; kernels multiply
// by G·m.
type Table struct {
	L float64
	n int
	h float64 // grid spacing L/(2n)

	cx, cy, cz []float64 // (n+1)³ node values, index (i·(n+1)+j)·(n+1)+k
}

// New builds a correction table with n intervals per octant axis (n+1 nodes;
// 32 is plenty — the correction is smooth on the box scale). Cost is
// (n+1)³ Ewald evaluations, done once. A nil solver selects the default
// tuning; a provided solver must use G = 1 (values are stored per unit G).
func New(l float64, n int, solver *ewald.Solver) (*Table, error) {
	if n < 2 {
		return nil, fmt.Errorf("ewtab: need at least 2 intervals, got %d", n)
	}
	if solver == nil {
		solver = ewald.New(l, 1)
	}
	if solver.G != 1 {
		return nil, fmt.Errorf("ewtab: solver must have G = 1, got %v", solver.G)
	}
	t := &Table{L: l, n: n, h: l / 2 / float64(n)}
	nn := n + 1
	t.cx = make([]float64, nn*nn*nn)
	t.cy = make([]float64, nn*nn*nn)
	t.cz = make([]float64, nn*nn*nn)
	for i := 0; i < nn; i++ {
		for j := 0; j < nn; j++ {
			for k := 0; k < nn; k++ {
				d := vec.V3{X: float64(i) * t.h, Y: float64(j) * t.h, Z: float64(k) * t.h}
				idx := (i*nn+j)*nn + k
				if i == 0 && j == 0 && k == 0 {
					continue // c(0) = 0 by symmetry
				}
				c := solver.PairCorrectionAt(d)
				t.cx[idx] = c.X
				t.cy[idx] = c.Y
				t.cz[idx] = c.Z
			}
		}
	}
	return t, nil
}

// Correction returns the interpolated periodic correction at displacement d
// (any representative; it is minimum-imaged internally).
func (t *Table) Correction(d vec.V3) vec.V3 {
	d = vec.MinImage(vec.V3{}, d, t.L)
	sx, ax := signAbs(d.X)
	sy, ay := signAbs(d.Y)
	sz, az := signAbs(d.Z)
	cx := t.interp(t.cx, ax, ay, az)
	cy := t.interp(t.cy, ax, ay, az)
	cz := t.interp(t.cz, ax, ay, az)
	return vec.V3{X: sx * cx, Y: sy * cy, Z: sz * cz}
}

// CorrectionXYZ is Correction without the vec round trip, for hot loops.
func (t *Table) CorrectionXYZ(dx, dy, dz float64) (float64, float64, float64) {
	c := t.Correction(vec.V3{X: dx, Y: dy, Z: dz})
	return c.X, c.Y, c.Z
}

func signAbs(x float64) (sign, abs float64) {
	if x < 0 {
		return -1, -x
	}
	return 1, x
}

// interp trilinearly interpolates one component over the octant grid.
func (t *Table) interp(c []float64, x, y, z float64) float64 {
	nn := t.n + 1
	fx := x / t.h
	fy := y / t.h
	fz := z / t.h
	i := int(fx)
	j := int(fy)
	k := int(fz)
	if i >= t.n {
		i = t.n - 1
	}
	if j >= t.n {
		j = t.n - 1
	}
	if k >= t.n {
		k = t.n - 1
	}
	ux := fx - float64(i)
	uy := fy - float64(j)
	uz := fz - float64(k)
	at := func(a, b, cc int) float64 { return c[(a*nn+b)*nn+cc] }
	c00 := at(i, j, k)*(1-ux) + at(i+1, j, k)*ux
	c01 := at(i, j, k+1)*(1-ux) + at(i+1, j, k+1)*ux
	c10 := at(i, j+1, k)*(1-ux) + at(i+1, j+1, k)*ux
	c11 := at(i, j+1, k+1)*(1-ux) + at(i+1, j+1, k+1)*ux
	c0 := c00*(1-uy) + c10*uy
	c1 := c01*(1-uy) + c11*uy
	return c0*(1-uz) + c1*uz
}
