// AVX2+FMA port of the Phantom-GRAPE float32 cutoff force loop (§II-A).
// One i-particle against an 8-lane-parallel j-stream: the hardware
// approximate reciprocal square root VRSQRTPS plays the role of HPC-ACE's
// frsqrta (a ≥11-bit seed), refined by the same single third-order step
// h = 1 − r²y², y ← y(1 + h(1/2 + 3h/8)), and the ξ ≥ 2 cutoff region is
// masked with VCMPPS/VANDPS — the literal fcmp/fand idiom the paper
// describes, so beyond-cutoff lanes contribute exactly ±0 while every lane
// executes the identical arithmetic (the 51-op ledger stays exact).
//
// The gravitational constant is factored out: the caller multiplies the
// returned per-tile partial sums by G, so the loop carries only m_j.

#include "textflag.h"

DATA c_one<>+0x00(SB)/8, $0x3f8000003f800000
DATA c_one<>+0x08(SB)/8, $0x3f8000003f800000
DATA c_one<>+0x10(SB)/8, $0x3f8000003f800000
DATA c_one<>+0x18(SB)/8, $0x3f8000003f800000
GLOBL c_one<>(SB), RODATA|NOPTR, $32

DATA c_two<>+0x00(SB)/8, $0x4000000040000000
DATA c_two<>+0x08(SB)/8, $0x4000000040000000
DATA c_two<>+0x10(SB)/8, $0x4000000040000000
DATA c_two<>+0x18(SB)/8, $0x4000000040000000
GLOBL c_two<>(SB), RODATA|NOPTR, $32

DATA c_half<>+0x00(SB)/8, $0x3f0000003f000000
DATA c_half<>+0x08(SB)/8, $0x3f0000003f000000
DATA c_half<>+0x10(SB)/8, $0x3f0000003f000000
DATA c_half<>+0x18(SB)/8, $0x3f0000003f000000
GLOBL c_half<>(SB), RODATA|NOPTR, $32

// 3/8
DATA c_0375<>+0x00(SB)/8, $0x3ec000003ec00000
DATA c_0375<>+0x08(SB)/8, $0x3ec000003ec00000
DATA c_0375<>+0x10(SB)/8, $0x3ec000003ec00000
DATA c_0375<>+0x18(SB)/8, $0x3ec000003ec00000
GLOBL c_0375<>(SB), RODATA|NOPTR, $32

DATA c_zero<>+0x00(SB)/8, $0x0000000000000000
DATA c_zero<>+0x08(SB)/8, $0x0000000000000000
DATA c_zero<>+0x10(SB)/8, $0x0000000000000000
DATA c_zero<>+0x18(SB)/8, $0x0000000000000000
GLOBL c_zero<>(SB), RODATA|NOPTR, $32

// −12/35
DATA c_m1235<>+0x00(SB)/8, $0xbeaf8af9beaf8af9
DATA c_m1235<>+0x08(SB)/8, $0xbeaf8af9beaf8af9
DATA c_m1235<>+0x10(SB)/8, $0xbeaf8af9beaf8af9
DATA c_m1235<>+0x18(SB)/8, $0xbeaf8af9beaf8af9
GLOBL c_m1235<>(SB), RODATA|NOPTR, $32

// 3/20
DATA c_320<>+0x00(SB)/8, $0x3e19999a3e19999a
DATA c_320<>+0x08(SB)/8, $0x3e19999a3e19999a
DATA c_320<>+0x10(SB)/8, $0x3e19999a3e19999a
DATA c_320<>+0x18(SB)/8, $0x3e19999a3e19999a
GLOBL c_320<>(SB), RODATA|NOPTR, $32

// −1/2
DATA c_m05<>+0x00(SB)/8, $0xbf000000bf000000
DATA c_m05<>+0x08(SB)/8, $0xbf000000bf000000
DATA c_m05<>+0x10(SB)/8, $0xbf000000bf000000
DATA c_m05<>+0x18(SB)/8, $0xbf000000bf000000
GLOBL c_m05<>(SB), RODATA|NOPTR, $32

// 8/5
DATA c_85<>+0x00(SB)/8, $0x3fcccccd3fcccccd
DATA c_85<>+0x08(SB)/8, $0x3fcccccd3fcccccd
DATA c_85<>+0x10(SB)/8, $0x3fcccccd3fcccccd
DATA c_85<>+0x18(SB)/8, $0x3fcccccd3fcccccd
GLOBL c_85<>(SB), RODATA|NOPTR, $32

// −8/5
DATA c_m85<>+0x00(SB)/8, $0xbfcccccdbfcccccd
DATA c_m85<>+0x08(SB)/8, $0xbfcccccdbfcccccd
DATA c_m85<>+0x10(SB)/8, $0xbfcccccdbfcccccd
DATA c_m85<>+0x18(SB)/8, $0xbfcccccdbfcccccd
GLOBL c_m85<>(SB), RODATA|NOPTR, $32

// 3/35
DATA c_335<>+0x00(SB)/8, $0x3daf8af93daf8af9
DATA c_335<>+0x08(SB)/8, $0x3daf8af93daf8af9
DATA c_335<>+0x10(SB)/8, $0x3daf8af93daf8af9
DATA c_335<>+0x18(SB)/8, $0x3daf8af93daf8af9
GLOBL c_335<>(SB), RODATA|NOPTR, $32

// 18/35
DATA c_1835<>+0x00(SB)/8, $0x3f03a83b3f03a83b
DATA c_1835<>+0x08(SB)/8, $0x3f03a83b3f03a83b
DATA c_1835<>+0x10(SB)/8, $0x3f03a83b3f03a83b
DATA c_1835<>+0x18(SB)/8, $0x3f03a83b3f03a83b
GLOBL c_1835<>(SB), RODATA|NOPTR, $32

// 1/5
DATA c_15<>+0x00(SB)/8, $0x3e4ccccd3e4ccccd
DATA c_15<>+0x08(SB)/8, $0x3e4ccccd3e4ccccd
DATA c_15<>+0x10(SB)/8, $0x3e4ccccd3e4ccccd
DATA c_15<>+0x18(SB)/8, $0x3e4ccccd3e4ccccd
GLOBL c_15<>(SB), RODATA|NOPTR, $32

// func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
TEXT ·cpuid(SB), NOSPLIT, $0-24
	MOVL eaxIn+0(FP), AX
	MOVL ecxIn+4(FP), CX
	CPUID
	MOVL AX, eax+8(FP)
	MOVL BX, ebx+12(FP)
	MOVL CX, ecx+16(FP)
	MOVL DX, edx+20(FP)
	RET

// func xgetbv() (eax, edx uint32)
TEXT ·xgetbv(SB), NOSPLIT, $0-8
	XORL CX, CX
	XGETBV
	MOVL AX, eax+0(FP)
	MOVL DX, edx+4(FP)
	RET

// func accelTileAVX2(sx, sy, sz, sm *float32, n int64,
//     tx, ty, tz, cinv, eps2 float32, out *[3]float32)
//
// Accumulates the cutoff force on one target at (tx,ty,tz) from n sources
// (n > 0, n % 8 == 0) into out — a float32 tile partial (G not applied).
//
// Register plan: Y7/Y8/Y9 lane accumulators, Y11 cinv, Y12/Y13/Y14 target,
// Y0-Y6, Y10, Y15 per-iteration scratch.
TEXT ·accelTileAVX2(SB), NOSPLIT, $0-72
	MOVQ sx+0(FP), SI
	MOVQ sy+8(FP), R8
	MOVQ sz+16(FP), R9
	MOVQ sm+24(FP), R10
	MOVQ n+32(FP), CX
	VBROADCASTSS tx+40(FP), Y12
	VBROADCASTSS ty+44(FP), Y13
	VBROADCASTSS tz+48(FP), Y14
	VBROADCASTSS cinv+52(FP), Y11
	VXORPS Y7, Y7, Y7
	VXORPS Y8, Y8, Y8
	VXORPS Y9, Y9, Y9
	XORQ BX, BX

loop:
	VMOVUPS (SI)(BX*4), Y0            // dx ← p_jx
	VMOVUPS (R8)(BX*4), Y1
	VMOVUPS (R9)(BX*4), Y2
	VSUBPS Y12, Y0, Y0                // dx = p_jx − tx
	VSUBPS Y13, Y1, Y1
	VSUBPS Y14, Y2, Y2
	VBROADCASTSS eps2+56(FP), Y3      // r² = ε²
	VFMADD231PS Y0, Y0, Y3            // r² += dx²
	VFMADD231PS Y1, Y1, Y3
	VFMADD231PS Y2, Y2, Y3
	VRSQRTPS Y3, Y4                   // y ≈ 1/√r² (hardware seed)
	VMULPS Y4, Y4, Y5                 // y²
	VMOVUPS c_one<>(SB), Y6
	VFNMADD231PS Y5, Y3, Y6           // h = 1 − r²y²
	VMOVUPS c_half<>(SB), Y5
	VFMADD231PS c_0375<>(SB), Y6, Y5  // 1/2 + 3h/8
	VFMADD213PS c_one<>(SB), Y6, Y5   // 1 + h(1/2 + 3h/8)
	VMULPS Y5, Y4, Y4                 // rinv (third-order refined)
	VMULPS Y4, Y3, Y5                 // r = r²·rinv
	VMULPS Y11, Y5, Y5                // ξ = 2r/rcut
	VCMPPS $1, c_two<>(SB), Y5, Y6    // mask: ξ < 2 (LT_OS; NaN → 0)
	VMINPS c_two<>(SB), Y5, Y5        // clamp ξ ≤ 2
	VSUBPS c_one<>(SB), Y5, Y10       // ξ − 1
	VMAXPS c_zero<>(SB), Y10, Y10     // ζ = max(0, ξ−1)
	VMULPS Y10, Y10, Y10              // ζ²
	VMULPS Y10, Y10, Y15              // ζ⁴
	VMULPS Y15, Y10, Y10              // ζ⁶
	VMOVUPS c_1835<>(SB), Y15
	VFMADD231PS c_15<>(SB), Y5, Y15   // 18/35 + ξ/5
	VFMADD213PS c_335<>(SB), Y5, Y15  // 3/35 + ξ(…)
	VMULPS Y15, Y10, Y10              // ζ⁶·tail
	VMOVUPS c_m1235<>(SB), Y15
	VFMADD231PS c_320<>(SB), Y5, Y15  // −12/35 + 3ξ/20
	VFMADD213PS c_m05<>(SB), Y5, Y15  // −1/2 + ξ(…)
	VFMADD213PS c_85<>(SB), Y5, Y15   // 8/5 + ξ(…)
	VMULPS Y5, Y5, Y3                 // ξ²
	VFMADD213PS c_m85<>(SB), Y3, Y15  // −8/5 + ξ²(…)
	VMULPS Y5, Y3, Y3                 // ξ³
	VFMADD213PS c_one<>(SB), Y3, Y15  // poly = 1 + ξ³(…)
	VSUBPS Y10, Y15, Y15              // g(ξ) = poly − ζ⁶·tail
	VMULPS Y4, Y4, Y3                 // rinv²
	VMULPS Y4, Y3, Y3                 // rinv³
	VMULPS Y3, Y15, Y15               // g(ξ)/r³
	VANDPS Y6, Y15, Y15               // ξ ≥ 2 → exactly ±0
	VMOVUPS (R10)(BX*4), Y3           // m_j
	VMULPS Y3, Y15, Y15               // w = m_j·g(ξ)/r³
	VFMADD231PS Y0, Y15, Y7           // fx += w·dx
	VFMADD231PS Y1, Y15, Y8
	VFMADD231PS Y2, Y15, Y9
	ADDQ $8, BX
	CMPQ BX, CX
	JLT loop

	// Horizontal-sum each accumulator and store the three partials.
	MOVQ out+64(FP), DI
	VEXTRACTF128 $1, Y7, X0
	VADDPS X0, X7, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VMOVSS X0, (DI)
	VEXTRACTF128 $1, Y8, X0
	VADDPS X0, X8, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VMOVSS X0, 4(DI)
	VEXTRACTF128 $1, Y9, X0
	VADDPS X0, X9, X0
	VHADDPS X0, X0, X0
	VHADDPS X0, X0, X0
	VMOVSS X0, 8(DI)
	VZEROUPPER
	RET
