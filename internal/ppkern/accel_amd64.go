//go:build amd64

package ppkern

// Runtime dispatch for the AVX2+FMA float32 kernel (accel_amd64.s). The
// pure-Go 4-wide panel remains the portable fallback and the parity
// reference; useAVX2 is a variable so tests can exercise both paths on one
// host.

// cpuid and xgetbv are implemented in accel_amd64.s.
func cpuid(eaxIn, ecxIn uint32) (eax, ebx, ecx, edx uint32)
func xgetbv() (eax, edx uint32)

//go:noescape
func accelTileAVX2(sx, sy, sz, sm *float32, n int64, tx, ty, tz, cinv, eps2 float32, out *[3]float32)

var useAVX2 = detectAVX2()

// detectAVX2 reports whether the CPU and OS support the AVX2+FMA kernel:
// FMA and AVX2 present, and the OS saving XMM+YMM state (OSXSAVE/XGETBV).
func detectAVX2() bool {
	maxID, _, _, _ := cpuid(0, 0)
	if maxID < 7 {
		return false
	}
	_, _, ecx1, _ := cpuid(1, 0)
	const osxsave = 1 << 27
	const fma = 1 << 12
	if ecx1&osxsave == 0 || ecx1&fma == 0 {
		return false
	}
	if lo, _ := xgetbv(); lo&0x6 != 0x6 {
		return false
	}
	_, ebx7, _, _ := cpuid(7, 0)
	return ebx7&(1<<5) != 0
}

// accelCutoff4F32SIMD is the AVX2 micro-panel: each TileJ source tile is
// loaded once and reused across the four targets (the j-stream stays in L1),
// with the 8-lane assembly kernel covering the tile's multiple-of-8 prefix
// and a scalar float32 loop the ragged tail — both feeding the same
// per-tile float32 partial, flushed to float64 between tiles.
func accelCutoff4F32SIMD(xi, yi, zi []float32, src *SourceF32, g, cinv, eps2 float32, ax, ay, az []float64) {
	nj := src.Len()
	gd := float64(g)
	var out [3]float32
	for base := 0; base < nj; base += TileJ {
		end := base + TileJ
		if end > nj {
			end = nj
		}
		n8 := (end - base) &^ 7
		for t := 0; t < 4; t++ {
			var fx, fy, fz float32
			if n8 > 0 {
				accelTileAVX2(&src.X[base], &src.Y[base], &src.Z[base], &src.M[base],
					int64(n8), xi[t], yi[t], zi[t], cinv, eps2, &out)
				fx, fy, fz = out[0], out[1], out[2]
			}
			for j := base + n8; j < end; j++ {
				dx := src.X[j] - xi[t]
				dy := src.Y[j] - yi[t]
				dz := src.Z[j] - zi[t]
				r2 := eps2 + dx*dx + dy*dy + dz*dz
				w := src.M[j] * cutoffW32(r2, cinv)
				fx += w * dx
				fy += w * dy
				fz += w * dz
			}
			ax[t] += gd * float64(fx)
			ay[t] += gd * float64(fy)
			az[t] += gd * float64(fz)
		}
	}
}
