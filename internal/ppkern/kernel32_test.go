package ppkern

import (
	"math"
	"math/rand"
	"testing"
)

func TestRsqrt32SeedAccuracy(t *testing.T) {
	// Magic-constant seed + one Newton step: ≈9-bit accuracy.
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 100000; i++ {
		x := float32(math.Ldexp(1+rng.Float64(), rng.Intn(60)-30))
		got := float64(Rsqrt32Seed(x))
		want := 1 / math.Sqrt(float64(x))
		rel := math.Abs(got-want) / want
		if rel > 1.0/256 {
			t.Fatalf("Rsqrt32Seed(%v): rel err %v > 2^-8", x, rel)
		}
	}
}

func TestRsqrt32RefinedAccuracy(t *testing.T) {
	// One third-order step must land at the float32 rounding floor.
	rng := rand.New(rand.NewSource(22))
	worst := 0.0
	for i := 0; i < 200000; i++ {
		x := float32(math.Ldexp(1+rng.Float64(), rng.Intn(60)-30))
		got := float64(Rsqrt32(x))
		want := 1 / math.Sqrt(float64(x))
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst = rel
		}
	}
	// 2^-22: within two ulps of correctly rounded float32.
	if worst > math.Ldexp(1, -22) {
		t.Errorf("worst relative error %v exceeds 2^-22", worst)
	}
}

// toF32 converts a float64 SoA set to float32.
func toF32(s *Source) *SourceF32 {
	f := &SourceF32{}
	for i := range s.X {
		f.Append(float32(s.X[i]), float32(s.Y[i]), float32(s.Z[i]), float32(s.M[i]))
	}
	return f
}

func maxAbs(vs ...[]float64) float64 {
	m := 0.0
	for _, v := range vs {
		for _, x := range v {
			if a := math.Abs(x); a > m {
				m = a
			}
		}
	}
	return m
}

func TestAccelCutoffF32FastMatchesScalarF32(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for _, nj := range []int{3, 137, 255, 256, 257, 513} {
		src := randomSet(rng, nj, 1.0)
		tgt := randomSet(rng, 29, 1.0) // 29 = 7 panels + remainder of 1
		src32, tgt32 := toF32(src), toF32(tgt)
		rcut, eps2 := float32(0.3), float32(1e-8)
		n := tgt.Len()
		a1, b1, c1 := make([]float64, n), make([]float64, n), make([]float64, n)
		a2, b2, c2 := make([]float64, n), make([]float64, n), make([]float64, n)
		n1 := AccelCutoffF32(tgt32.X, tgt32.Y, tgt32.Z, src32, 1, rcut, eps2, a1, b1, c1)
		n2 := AccelCutoffF32Fast(tgt32.X, tgt32.Y, tgt32.Z, src32, 1, rcut, eps2, a2, b2, c2)
		if n1 != n2 || n1 != uint64(n*nj) {
			t.Fatalf("nj=%d: interaction counts %d, %d, want %d", nj, n1, n2, n*nj)
		}
		scale := maxAbs(a1, b1, c1)
		for i := 0; i < n; i++ {
			for _, p := range [][2]float64{{a1[i], a2[i]}, {b1[i], b2[i]}, {c1[i], c2[i]}} {
				// Scalar accumulates per-pair in float64, fast in float32
				// tiles; agreement is to float32 summation accuracy.
				if math.Abs(p[0]-p[1]) > 3e-6*math.Max(1e-6, scale) {
					t.Fatalf("nj=%d i=%d: scalar %v vs fast %v (scale %v)", nj, i, p[0], p[1], scale)
				}
			}
		}
	}
}

func TestAccelCutoffF32MatchesFloat64Oracle(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	src := randomSet(rng, 211, 1.0)
	tgt := randomSet(rng, 53, 1.0)
	src32, tgt32 := toF32(src), toF32(tgt)
	rcut, eps2 := 0.3, 1e-8
	n := tgt.Len()
	a1, b1, c1 := make([]float64, n), make([]float64, n), make([]float64, n)
	a2, b2, c2 := make([]float64, n), make([]float64, n), make([]float64, n)
	AccelCutoff(tgt.X, tgt.Y, tgt.Z, src, 1, rcut, eps2, a1, b1, c1)
	AccelCutoffF32Fast(tgt32.X, tgt32.Y, tgt32.Z, src32, 1, float32(rcut), float32(eps2), a2, b2, c2)
	scale := maxAbs(a1, b1, c1)
	for i := 0; i < n; i++ {
		for _, p := range [][2]float64{{a1[i], a2[i]}, {b1[i], b2[i]}, {c1[i], c2[i]}} {
			if math.Abs(p[0]-p[1]) > 5e-6*scale {
				t.Fatalf("i=%d: float64 %v vs float32 %v (scale %v)", i, p[0], p[1], scale)
			}
		}
	}
}

func TestAccelCutoffF32MomentumConservation(t *testing.T) {
	// Pairwise antisymmetry survives float32: with all particles as both
	// sources and targets, Σ m_i a_i vanishes to float32 rounding.
	rng := rand.New(rand.NewSource(25))
	all := randomSet(rng, 64, 0.5)
	all32 := toF32(all)
	n := all.Len()
	ax, ay, az := make([]float64, n), make([]float64, n), make([]float64, n)
	AccelCutoffF32Fast(all32.X, all32.Y, all32.Z, all32, 1, 0.4, 1e-8, ax, ay, az)
	var px, py, pz, scale float64
	for i := 0; i < n; i++ {
		m := float64(all32.M[i])
		px += m * ax[i]
		py += m * ay[i]
		pz += m * az[i]
		scale += m * (math.Abs(ax[i]) + math.Abs(ay[i]) + math.Abs(az[i]))
	}
	if math.Abs(px)+math.Abs(py)+math.Abs(pz) > 1e-5*scale {
		t.Errorf("net momentum change (%v,%v,%v) not ~0 (scale %v)", px, py, pz, scale)
	}
}

// TestCutoffMaskBoundary pins the branch-free mask: every kernel variant
// returns exactly zero beyond ξ = 2 and agrees with the scalar skip path
// across a sweep of separations straddling rcut.
func TestCutoffMaskBoundary(t *testing.T) {
	const rcut = 0.25
	cinv := 2 / rcut
	src := &Source{}
	src.Append(0, 0, 0, 1.0)
	src32 := toF32(src)

	for k := -40; k <= 40; k++ {
		r := rcut * (1 + float64(k)*1e-3) // sweep 0.96·rcut … 1.04·rcut
		// cutoffW / cutoffW32 masked exactly to zero beyond the boundary.
		// (1+2e-3 leaves room for the rounded ξ = 2r/rcut to cross 2.)
		if r >= rcut*(1+2e-3) {
			if w := cutoffW(r*r, cinv, false); w != 0 {
				t.Fatalf("cutoffW(r=%v) = %v, want exact 0", r, w)
			}
			if w := cutoffW(r*r, cinv, true); w != 0 {
				t.Fatalf("cutoffW(phantom, r=%v) = %v, want exact 0", r, w)
			}
			if w := cutoffW32(float32(r*r), float32(cinv)); w != 0 {
				t.Fatalf("cutoffW32(r=%v) = %v, want exact 0", r, w)
			}
		}
		// Masked kernels agree with the scalar skip path. Four identical
		// targets exercise the unrolled panel.
		x4 := []float64{r, r, r, r}
		z4 := make([]float64, 4)
		x4f := []float32{float32(r), float32(r), float32(r), float32(r)}
		z4f := make([]float32, 4)
		sc := make([]float64, 4)
		fa := make([]float64, 4)
		s32 := make([]float64, 4)
		f32 := make([]float64, 4)
		junk := make([]float64, 4)
		AccelCutoff(x4, z4, z4, src, 1, rcut, 0, sc, junk, junk)
		AccelCutoffFast(x4, z4, z4, src, 1, rcut, 0, fa, junk, junk)
		AccelCutoffF32(x4f, z4f, z4f, src32, 1, rcut, 0, s32, junk, junk)
		AccelCutoffF32Fast(x4f, z4f, z4f, src32, 1, rcut, 0, f32, junk, junk)
		for i := 0; i < 4; i++ {
			if math.Abs(sc[i]-fa[i]) > 1e-12*(1+math.Abs(sc[i])) {
				t.Fatalf("r=%v: scalar %v vs masked fast %v", r, sc[i], fa[i])
			}
			// Near ξ = 2 the polynomial cancels to ~0 from O(1) terms, so
			// float32 agreement is bounded by rounding noise amplified by
			// 1/r³ — measure against the natural force scale 1/r².
			if math.Abs(s32[i]-f32[i]) > 5e-6/(r*r) {
				t.Fatalf("r=%v: scalar f32 %v vs masked f32 %v", r, s32[i], f32[i])
			}
			// Near ξ = 2 the polynomial cancels to ~0, so the float32
			// absolute error is set by the ~O(1) intermediates times
			// 1/r³ — a loose sanity band, not a precision pin.
			if math.Abs(sc[i]-s32[i]) > 1e-3*(1+math.Abs(sc[i])) {
				t.Fatalf("r=%v: f64 %v vs f32 %v", r, sc[i], s32[i])
			}
		}
		// Beyond the boundary all paths are exactly zero.
		if r >= rcut*(1+2e-3) {
			for i := 0; i < 4; i++ {
				if sc[i] != 0 || fa[i] != 0 || s32[i] != 0 || f32[i] != 0 {
					t.Fatalf("r=%v beyond rcut: forces (%v,%v,%v,%v) not exactly 0",
						r, sc[i], fa[i], s32[i], f32[i])
				}
			}
		}
	}

	// Geometric r = 0 with eps2 > 0: zero numerator, finite weight — the
	// force is exactly zero and never NaN, in every variant.
	eps2 := 1e-8
	z4 := make([]float64, 4)
	z4f := make([]float32, 4)
	for name, f := range map[string]func() []float64{
		"scalar": func() []float64 {
			a := make([]float64, 4)
			AccelCutoff(z4, z4, z4, src, 1, rcut, eps2, a, make([]float64, 4), make([]float64, 4))
			return a
		},
		"fast": func() []float64 {
			a := make([]float64, 4)
			AccelCutoffFast(z4, z4, z4, src, 1, rcut, eps2, a, make([]float64, 4), make([]float64, 4))
			return a
		},
		"phantom": func() []float64 {
			a := make([]float64, 4)
			AccelCutoffPhantom(z4, z4, z4, src, 1, rcut, eps2, a, make([]float64, 4), make([]float64, 4))
			return a
		},
		"f32": func() []float64 {
			a := make([]float64, 4)
			AccelCutoffF32(z4f, z4f, z4f, src32, 1, rcut, float32(eps2), a, make([]float64, 4), make([]float64, 4))
			return a
		},
		"f32fast": func() []float64 {
			a := make([]float64, 4)
			AccelCutoffF32Fast(z4f, z4f, z4f, src32, 1, rcut, float32(eps2), a, make([]float64, 4), make([]float64, 4))
			return a
		},
	} {
		for i, v := range f() {
			if v != 0 || math.IsNaN(v) {
				t.Errorf("%s: coincident target %d with eps2>0: force %v, want exact 0", name, i, v)
			}
		}
	}
}

// TestUnrolledInteractionCountRemainder pins the satellite fix: target
// counts not divisible by 4 must report exactly n × Nj interactions from
// every unrolled kernel (the remainder path's count is composed, not
// recomputed).
func TestUnrolledInteractionCountRemainder(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	for n := 1; n <= 9; n++ {
		for _, nj := range []int{1, 5, 11} {
			src := randomSet(rng, nj, 1.0)
			tgt := randomSet(rng, n, 1.0)
			src32, tgt32 := toF32(src), toF32(tgt)
			want := uint64(n) * uint64(nj)
			a := make([]float64, n)
			b := make([]float64, n)
			c := make([]float64, n)
			if got := AccelCutoffFast(tgt.X, tgt.Y, tgt.Z, src, 1, 0.3, 1e-8, a, b, c); got != want {
				t.Errorf("Fast n=%d nj=%d: count %d, want %d", n, nj, got, want)
			}
			if got := AccelCutoffPhantom(tgt.X, tgt.Y, tgt.Z, src, 1, 0.3, 1e-8, a, b, c); got != want {
				t.Errorf("Phantom n=%d nj=%d: count %d, want %d", n, nj, got, want)
			}
			if got := AccelCutoffF32Fast(tgt32.X, tgt32.Y, tgt32.Z, src32, 1, 0.3, 1e-8, a, b, c); got != want {
				t.Errorf("F32Fast n=%d nj=%d: count %d, want %d", n, nj, got, want)
			}
		}
	}
}

func TestSourceF32ResetAppend(t *testing.T) {
	s := &SourceF32{}
	s.Append(1, 2, 3, 4)
	s.Append(5, 6, 7, 8)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d", s.Len())
	}
	s.Append(9, 9, 9, 9)
	if s.Len() != 1 || s.X[0] != 9 {
		t.Fatalf("Append after Reset broken: %+v", s)
	}
}
