package ppkern

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGP3MEndpoints(t *testing.T) {
	if g := GP3M(0); g != 1 {
		t.Errorf("g(0) = %v, want 1", g)
	}
	if g := GP3M(2); math.Abs(g) > 1e-14 {
		t.Errorf("g(2) = %v, want 0", g)
	}
	if g := GP3M(2.5); g != 0 {
		t.Errorf("g(2.5) = %v, want 0", g)
	}
	if g := GP3M(1e9); g != 0 {
		t.Errorf("g(1e9) = %v, want 0", g)
	}
}

func TestGP3MKnownValue(t *testing.T) {
	// Hand-evaluated from eq. 3: g(1) = 1 − 1/2 − 27/140 = 43/140.
	want := 43.0 / 140.0
	if g := GP3M(1); math.Abs(g-want) > 1e-15 {
		t.Errorf("g(1) = %v, want %v", g, want)
	}
}

func TestGP3MMonotoneDecreasing(t *testing.T) {
	prev := math.Inf(1)
	for i := 0; i <= 2000; i++ {
		xi := 2 * float64(i) / 2000
		g := GP3M(xi)
		if g > prev+1e-12 {
			t.Fatalf("g not monotone at ξ=%v: %v > %v", xi, g, prev)
		}
		if g < -1e-12 || g > 1+1e-12 {
			t.Fatalf("g out of [0,1] at ξ=%v: %v", xi, g)
		}
		prev = g
	}
}

func TestGP3MContinuityAtBranch(t *testing.T) {
	// The ζ = max(0, ξ−1) branch must be C² at ξ = 1 because ζ enters as ζ⁶.
	h := 1e-7
	left := GP3M(1 - h)
	right := GP3M(1 + h)
	if math.Abs(left-right) > 1e-6 {
		t.Errorf("discontinuity at ξ=1: %v vs %v", left, right)
	}
	// First derivative continuity (finite differences).
	dl := (GP3M(1) - GP3M(1-h)) / h
	dr := (GP3M(1+h) - GP3M(1)) / h
	if math.Abs(dl-dr) > 1e-5 {
		t.Errorf("derivative jump at ξ=1: %v vs %v", dl, dr)
	}
}

func TestGP3MSmoothAtCutoff(t *testing.T) {
	// g → 0 with zero slope at ξ = 2 (the S2 force joins smoothly).
	h := 1e-5
	d := (GP3M(2) - GP3M(2-h)) / h
	if math.Abs(d) > 1e-3 {
		t.Errorf("slope at cutoff = %v, want ~0", d)
	}
}

func TestHLong(t *testing.T) {
	if h := HLong(0); h != 0 {
		t.Errorf("h(0) = %v", h)
	}
	if h := HLong(2); math.Abs(h-1) > 1e-14 {
		t.Errorf("h(2) = %v", h)
	}
	f := func(x float64) bool {
		xi := math.Abs(math.Mod(x, 2))
		return math.Abs(GP3M(xi)+HLong(xi)-1) < 1e-14
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// s2Hat is the Fourier transform of the unit-mass S2 density shape,
// S̃2(u) = 12(2 − 2cos u − u sin u)/u⁴ with u = k·rcut/2, with a Taylor
// expansion near u = 0 (S̃2 = 1 − u²/15 + u⁴/560 − …).
func s2Hat(u float64) float64 {
	if u < 1e-2 {
		u2 := u * u
		return 1 - u2/15 + u2*u2/560
	}
	return 12 * (2 - 2*math.Cos(u) - u*math.Sin(u)) / (u * u * u * u)
}

// TestGP3MMatchesS2PairForce validates eq. 3 against its definition: the
// long-range fraction 1−g(ξ) must equal the pair force between two S2-smeared
// unit masses divided by the point-mass force 1/r². With r = ξ·rcut/2 and
// u = k·rcut/2, the k-space radial integral gives
//
//	1 − g(ξ) = (2ξ/π) ∫₀^∞ S̃2(u)² [sinc(uξ) − cos(uξ)] du.
//
// This is an independent derivation (the paper obtained eq. 3 by 6-D spatial
// integration), so agreement pins down both the polynomial and the k-space
// Green's function the PM side uses.
func TestGP3MMatchesS2PairForce(t *testing.T) {
	if testing.Short() {
		t.Skip("quadrature is slow")
	}
	longFrac := func(xi float64) float64 {
		const umax = 400.0
		const du = 0.002
		n := int(umax / du)
		if n%2 == 1 {
			n++
		}
		sum := 0.0
		for i := 0; i <= n; i++ {
			u := float64(i) * du
			var f float64
			if u == 0 {
				f = 0 // sinc(0) − cos(0) = 0
			} else {
				s := s2Hat(u)
				t := u * xi
				f = s * s * (math.Sin(t)/t - math.Cos(t))
			}
			w := 2.0
			if i%2 == 1 {
				w = 4.0
			}
			if i == 0 || i == n {
				w = 1.0
			}
			sum += w * f
		}
		return (2 * xi / math.Pi) * sum * du / 3
	}
	for _, xi := range []float64{0.2, 0.5, 0.8, 1.0, 1.3, 1.7, 1.95} {
		want := HLong(xi)
		got := longFrac(xi)
		if math.Abs(got-want) > 2e-4 {
			t.Errorf("ξ=%v: k-space long fraction %v vs 1−g = %v", xi, got, want)
		}
	}
}
