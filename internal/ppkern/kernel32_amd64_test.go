//go:build amd64

package ppkern

import (
	"math"
	"math/rand"
	"testing"
)

// TestSIMDMatchesPureGoPanel pins the AVX2 assembly panel against the pure-Go
// 4-wide panel by toggling the dispatch flag on the same inputs. Both paths
// use the identical bit-trick-seeded + third-order-refined rsqrt and the same
// polynomial evaluation order, but the hardware VRSQRTPS seed differs from
// the magic-constant seed, so agreement is to float32 noise, not bitwise.
// Serial (mutates useAVX2): must not run in parallel with other tests that
// call AccelCutoffF32Fast.
func TestSIMDMatchesPureGoPanel(t *testing.T) {
	if !useAVX2 {
		t.Skip("host has no AVX2+FMA; SIMD path unreachable")
	}
	defer func() { useAVX2 = true }()

	rng := rand.New(rand.NewSource(99))
	const rcut, eps2 = 0.3, 1e-9
	for _, nj := range []int{5, 8, 64, 255, 256, 257, 1000} {
		src := &SourceF32{}
		for j := 0; j < nj; j++ {
			src.Append(
				float32(rng.Float64()-0.5),
				float32(rng.Float64()-0.5),
				float32(rng.Float64()-0.5),
				float32(rng.Float64()+0.1),
			)
		}
		const ni = 12
		xi := make([]float32, ni)
		yi := make([]float32, ni)
		zi := make([]float32, ni)
		for i := range xi {
			xi[i] = float32(rng.Float64() - 0.5)
			yi[i] = float32(rng.Float64() - 0.5)
			zi[i] = float32(rng.Float64() - 0.5)
		}

		axS := make([]float64, ni)
		ayS := make([]float64, ni)
		azS := make([]float64, ni)
		useAVX2 = true
		nS := AccelCutoffF32Fast(xi, yi, zi, src, 1, rcut, eps2, axS, ayS, azS)

		axG := make([]float64, ni)
		ayG := make([]float64, ni)
		azG := make([]float64, ni)
		useAVX2 = false
		nG := AccelCutoffF32Fast(xi, yi, zi, src, 1, rcut, eps2, axG, ayG, azG)
		useAVX2 = true

		if nS != nG {
			t.Fatalf("nj=%d: interaction counts differ: simd %d, go %d", nj, nS, nG)
		}
		// Random geometry puts pairs near ξ = 2, where the eq. 3 polynomial
		// cancels to ~0 from O(1) Horner terms: float32 noise (~5e-7, and the
		// asm's FMA contraction rounds differently from Go's two-step ops) is
		// amplified by 1/r³ ≈ 1/rcut³, giving per-pair force noise up to
		// ~6e-6 at these masses — same analysis as TestCutoffMaskBoundary.
		// Bound it per source pair; TestSIMDMatchesPureGoPanelInterior pins
		// the tight relative agreement away from the boundary.
		scale := maxAbs(axG, ayG, azG)
		tol := 3e-6*math.Max(1e-6, scale) + 6e-6*float64(nj)
		for i := 0; i < ni; i++ {
			if math.Abs(axS[i]-axG[i]) > tol || math.Abs(ayS[i]-ayG[i]) > tol || math.Abs(azS[i]-azG[i]) > tol {
				t.Errorf("nj=%d target %d: simd (%g,%g,%g) vs go (%g,%g,%g), tol %g",
					nj, i, axS[i], ayS[i], azS[i], axG[i], ayG[i], azG[i], tol)
			}
		}
	}
}

// TestSIMDMatchesPureGoPanelInterior is the tight twin of
// TestSIMDMatchesPureGoPanel: every source sits well inside the cutoff
// (r ≤ 0.6 rcut), away from the ξ = 2 cancellation zone, so the assembly
// must match the pure-Go panel to plain float32 rounding — a wrong lane,
// operand order, or constant in accel_amd64.s shows up as an O(1) error
// here. Serial (mutates useAVX2).
func TestSIMDMatchesPureGoPanelInterior(t *testing.T) {
	if !useAVX2 {
		t.Skip("host has no AVX2+FMA; SIMD path unreachable")
	}
	defer func() { useAVX2 = true }()

	rng := rand.New(rand.NewSource(7))
	const rcut, eps2 = 0.3, 1e-9
	for _, nj := range []int{8, 24, 256, 260} {
		src := &SourceF32{}
		for j := 0; j < nj; j++ {
			// Uniform in a ball of radius 0.25 rcut around the origin.
			for {
				x := float32(rng.Float64()-0.5) * 0.5 * rcut
				y := float32(rng.Float64()-0.5) * 0.5 * rcut
				z := float32(rng.Float64()-0.5) * 0.5 * rcut
				if x*x+y*y+z*z <= 0.25*0.25*rcut*rcut {
					src.Append(x, y, z, float32(rng.Float64()+0.1))
					break
				}
			}
		}
		const ni = 8
		xi := make([]float32, ni)
		yi := make([]float32, ni)
		zi := make([]float32, ni)
		for i := range xi {
			// Targets within 0.35 rcut of the origin: every pair has
			// r ≤ 0.6 rcut, i.e. ξ ≤ 1.2.
			xi[i] = float32(rng.Float64()-0.5) * 0.7 * rcut
			yi[i] = float32(rng.Float64()-0.5) * 0.7 * rcut
			zi[i] = float32(rng.Float64()-0.5) * 0.7 * rcut
		}

		axS := make([]float64, ni)
		ayS := make([]float64, ni)
		azS := make([]float64, ni)
		useAVX2 = true
		AccelCutoffF32Fast(xi, yi, zi, src, 1, rcut, eps2, axS, ayS, azS)

		axG := make([]float64, ni)
		ayG := make([]float64, ni)
		azG := make([]float64, ni)
		useAVX2 = false
		AccelCutoffF32Fast(xi, yi, zi, src, 1, rcut, eps2, axG, ayG, azG)
		useAVX2 = true

		scale := maxAbs(axG, ayG, azG)
		tol := 2e-6 * math.Max(1e-6, scale)
		for i := 0; i < ni; i++ {
			if math.Abs(axS[i]-axG[i]) > tol || math.Abs(ayS[i]-ayG[i]) > tol || math.Abs(azS[i]-azG[i]) > tol {
				t.Errorf("nj=%d target %d: simd (%g,%g,%g) vs go (%g,%g,%g), tol %g",
					nj, i, axS[i], ayS[i], azS[i], axG[i], ayG[i], azG[i], tol)
			}
		}
	}
}

// TestSIMDMaskBoundary verifies the assembly VCMPPS/VANDPS mask returns
// exactly zero force beyond the cutoff and no NaN at r = 0 with softening —
// the same guarantees TestCutoffMaskBoundary pins for the Go kernels.
func TestSIMDMaskBoundary(t *testing.T) {
	if !useAVX2 {
		t.Skip("host has no AVX2+FMA; SIMD path unreachable")
	}
	const rcut = 0.25

	// 8 sources all beyond the cutoff (one full SIMD lane-set), 4 targets at
	// the origin: every force component must be exactly zero.
	src := &SourceF32{}
	for j := 0; j < 8; j++ {
		src.Append(rcut*1.5+float32(j)*0.01, 0, 0, 1)
	}
	xi := make([]float32, 4)
	yi := make([]float32, 4)
	zi := make([]float32, 4)
	ax := make([]float64, 4)
	ay := make([]float64, 4)
	az := make([]float64, 4)
	AccelCutoffF32Fast(xi, yi, zi, src, 1, rcut, 0, ax, ay, az)
	for i := 0; i < 4; i++ {
		if ax[i] != 0 || ay[i] != 0 || az[i] != 0 {
			t.Errorf("beyond-cutoff target %d: force (%g,%g,%g), want exact 0", i, ax[i], ay[i], az[i])
		}
	}

	// Self-interaction lanes (r = 0) with positive softening: finite, no NaN.
	src2 := &SourceF32{}
	for j := 0; j < 8; j++ {
		src2.Append(0, 0, 0, 1)
	}
	for i := range ax {
		ax[i], ay[i], az[i] = 0, 0, 0
	}
	AccelCutoffF32Fast(xi, yi, zi, src2, 1, rcut, 1e-8, ax, ay, az)
	for i := 0; i < 4; i++ {
		if math.IsNaN(ax[i]) || math.IsNaN(ay[i]) || math.IsNaN(az[i]) {
			t.Errorf("r=0 target %d: NaN force (%g,%g,%g)", i, ax[i], ay[i], az[i])
		}
		if ax[i] != 0 || ay[i] != 0 || az[i] != 0 {
			t.Errorf("r=0 target %d: force (%g,%g,%g), want exact 0 (dx=0)", i, ax[i], ay[i], az[i])
		}
	}
}
