package ppkern

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRsqrtSeedAccuracy(t *testing.T) {
	// frsqrta emulation: 8-bit-class accuracy means relative error < 2⁻⁸.
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100000; i++ {
		// Wide dynamic range, including odd/even exponents.
		x := math.Ldexp(1+rng.Float64(), rng.Intn(120)-60)
		got := RsqrtSeed(x)
		want := 1 / math.Sqrt(x)
		rel := math.Abs(got-want) / want
		if rel > 1.0/256 {
			t.Fatalf("RsqrtSeed(%v): rel err %v > 2^-8", x, rel)
		}
	}
}

func TestRsqrtRefinedAccuracy(t *testing.T) {
	// One third-order step must reach ≈24-bit accuracy (paper §II-A).
	rng := rand.New(rand.NewSource(2))
	worst := 0.0
	for i := 0; i < 200000; i++ {
		x := math.Ldexp(1+rng.Float64(), rng.Intn(200)-100)
		got := Rsqrt(x)
		want := 1 / math.Sqrt(x)
		rel := math.Abs(got-want) / want
		if rel > worst {
			worst = rel
		}
	}
	if worst > math.Ldexp(1, -24) {
		t.Errorf("worst relative error %v exceeds 2^-24", worst)
	}
}

func TestRsqrtExactPowersOfFour(t *testing.T) {
	for _, x := range []float64{0.25, 1, 4, 16, 1024 * 1024} {
		got := Rsqrt(x)
		want := 1 / math.Sqrt(x)
		if math.Abs(got-want)/want > 1e-7 {
			t.Errorf("Rsqrt(%v) = %v, want %v", x, got, want)
		}
	}
}

func randomSet(rng *rand.Rand, n int, span float64) *Source {
	s := &Source{}
	for i := 0; i < n; i++ {
		s.Append(span*rng.Float64(), span*rng.Float64(), span*rng.Float64(), rng.Float64()+0.5)
	}
	return s
}

func TestAccelCutoffFastMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	src := randomSet(rng, 137, 1.0)
	tgt := randomSet(rng, 29, 1.0)
	rcut, eps2, g := 0.3, 1e-8, 1.0

	n := tgt.Len()
	ax1 := make([]float64, n)
	ay1 := make([]float64, n)
	az1 := make([]float64, n)
	ax2 := make([]float64, n)
	ay2 := make([]float64, n)
	az2 := make([]float64, n)

	n1 := AccelCutoff(tgt.X, tgt.Y, tgt.Z, src, g, rcut, eps2, ax1, ay1, az1)
	n2 := AccelCutoffFast(tgt.X, tgt.Y, tgt.Z, src, g, rcut, eps2, ax2, ay2, az2)
	if n1 != n2 {
		t.Fatalf("interaction counts differ: %d vs %d", n1, n2)
	}
	if n1 != uint64(137*29) {
		t.Fatalf("interaction count = %d, want %d", n1, 137*29)
	}
	for i := 0; i < n; i++ {
		for _, p := range [][2]float64{{ax1[i], ax2[i]}, {ay1[i], ay2[i]}, {az1[i], az2[i]}} {
			scale := math.Max(1, math.Abs(p[0]))
			if math.Abs(p[0]-p[1])/scale > 1e-6 {
				t.Fatalf("i=%d: scalar %v vs fast %v", i, p[0], p[1])
			}
		}
	}
}

func TestAccelCutoffZeroBeyondRcut(t *testing.T) {
	src := &Source{}
	src.Append(0, 0, 0, 1)
	rcut := 0.1
	ax := make([]float64, 1)
	ay := make([]float64, 1)
	az := make([]float64, 1)
	// Target just beyond the cutoff radius.
	AccelCutoff([]float64{rcut * 1.001}, []float64{0}, []float64{0}, src, 1, rcut, 0, ax, ay, az)
	if ax[0] != 0 || ay[0] != 0 || az[0] != 0 {
		t.Errorf("force beyond rcut = (%v,%v,%v), want 0", ax[0], ay[0], az[0])
	}
	// And the fast kernel agrees (pad to 4 targets).
	x := []float64{rcut * 1.001, rcut * 2, rcut * 5, rcut * 1.0001}
	z4 := make([]float64, 4)
	ax4 := make([]float64, 4)
	ay4 := make([]float64, 4)
	az4 := make([]float64, 4)
	AccelCutoffFast(x, z4, z4, src, 1, rcut, 1e-20, ax4, ay4, az4)
	for i := range ax4 {
		if ax4[i] != 0 || ay4[i] != 0 || az4[i] != 0 {
			t.Errorf("fast kernel force beyond rcut at i=%d: (%v,%v,%v)", i, ax4[i], ay4[i], az4[i])
		}
	}
}

func TestAccelCutoffNewtonianLimit(t *testing.T) {
	// Deep inside the cutoff (ξ → 0) the force must approach G m/r².
	src := &Source{}
	src.Append(0, 0, 0, 2.5)
	rcut := 10.0
	r := 1e-3 // ξ = 2e-4
	ax := make([]float64, 1)
	AccelCutoff([]float64{r}, []float64{0}, []float64{0}, src, 1, rcut, 0, ax, make([]float64, 1), make([]float64, 1))
	want := -2.5 / (r * r) // force points from target at +x toward origin
	if math.Abs(ax[0]-want)/math.Abs(want) > 1e-6 {
		t.Errorf("Newtonian limit: got %v, want %v", ax[0], want)
	}
}

func TestAccelCutoffSelfInteraction(t *testing.T) {
	// A particle in its own source list must receive zero force, both with
	// zero softening (scalar guard) and positive softening (zero numerator).
	src := &Source{}
	src.Append(0.5, 0.5, 0.5, 1)
	ax := make([]float64, 1)
	ay := make([]float64, 1)
	az := make([]float64, 1)
	AccelCutoff([]float64{0.5}, []float64{0.5}, []float64{0.5}, src, 1, 0.2, 0, ax, ay, az)
	if ax[0] != 0 || ay[0] != 0 || az[0] != 0 {
		t.Errorf("self force (eps=0) = (%v,%v,%v)", ax[0], ay[0], az[0])
	}
	AccelCutoff([]float64{0.5}, []float64{0.5}, []float64{0.5}, src, 1, 0.2, 1e-8, ax, ay, az)
	if ax[0] != 0 || ay[0] != 0 || az[0] != 0 {
		t.Errorf("self force (eps>0) = (%v,%v,%v)", ax[0], ay[0], az[0])
	}
}

func TestAccelCutoffMomentumConservation(t *testing.T) {
	// Pairwise antisymmetry: with all particles as both sources and targets,
	// Σ m_i a_i = 0.
	rng := rand.New(rand.NewSource(4))
	all := randomSet(rng, 64, 0.5)
	n := all.Len()
	ax := make([]float64, n)
	ay := make([]float64, n)
	az := make([]float64, n)
	AccelCutoff(all.X, all.Y, all.Z, all, 1, 0.4, 1e-8, ax, ay, az)
	var px, py, pz, scale float64
	for i := 0; i < n; i++ {
		px += all.M[i] * ax[i]
		py += all.M[i] * ay[i]
		pz += all.M[i] * az[i]
		scale += all.M[i] * (math.Abs(ax[i]) + math.Abs(ay[i]) + math.Abs(az[i]))
	}
	if math.Abs(px)+math.Abs(py)+math.Abs(pz) > 1e-12*scale {
		t.Errorf("net momentum change (%v,%v,%v) not ~0 (scale %v)", px, py, pz, scale)
	}
}

func TestAccelPlainTwoBody(t *testing.T) {
	src := &Source{}
	src.Append(1, 0, 0, 3)
	ax := make([]float64, 1)
	AccelPlain([]float64{0}, []float64{0}, []float64{0}, src, 2, 0, ax, make([]float64, 1), make([]float64, 1))
	if math.Abs(ax[0]-6) > 1e-12 { // G m / r² = 2·3/1
		t.Errorf("two-body accel = %v, want 6", ax[0])
	}
}

func TestPotPlainTwoBody(t *testing.T) {
	src := &Source{}
	src.Append(2, 0, 0, 4)
	pot := make([]float64, 1)
	PotPlain([]float64{0}, []float64{0}, []float64{0}, src, 1, 0, pot)
	if math.Abs(pot[0]+2) > 1e-12 { // −G m/r = −4/2
		t.Errorf("pot = %v, want -2", pot[0])
	}
}

func TestPotCutoffDerivativeIsForce(t *testing.T) {
	// dφ_short/dr must equal g(2r/rcut)/r² (as dφ/dr = 1/r² for φ = −1/r).
	rcut := 1.0
	for _, r := range []float64{0.05, 0.1, 0.2, 0.3, 0.45} {
		h := 1e-6
		dphi := (PotCutoffAt(r+h, rcut) - PotCutoffAt(r-h, rcut)) / (2 * h)
		want := GP3M(2*r/rcut) / (r * r)
		if math.Abs(dphi-want)/want > 1e-4 {
			t.Errorf("r=%v: dφ/dr = %v, want %v", r, dphi, want)
		}
	}
}

func TestPotCutoffVanishesBeyondRcut(t *testing.T) {
	if p := PotCutoffAt(1.0, 1.0); p != 0 {
		t.Errorf("φ_short at rcut = %v, want 0", p)
	}
	if p := PotCutoffAt(2.0, 1.0); p != 0 {
		t.Errorf("φ_short beyond rcut = %v, want 0", p)
	}
}

func TestSourceResetAppend(t *testing.T) {
	s := &Source{}
	s.Append(1, 2, 3, 4)
	s.Append(5, 6, 7, 8)
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	s.Reset()
	if s.Len() != 0 {
		t.Fatalf("Len after Reset = %d", s.Len())
	}
	s.Append(9, 9, 9, 9)
	if s.Len() != 1 || s.X[0] != 9 {
		t.Fatalf("Append after Reset broken: %+v", s)
	}
}

func TestCutoffWProperty(t *testing.T) {
	// cutoffW(r², 2/rcut) must equal g(2r/rcut)/r³ for r in (0, rcut).
	f := func(raw float64) bool {
		r := 0.01 + math.Abs(math.Mod(raw, 0.99))
		rcut := 1.0
		got := cutoffW(r*r, 2/rcut, true)
		want := GP3M(2*r/rcut) / (r * r * r)
		return math.Abs(got-want) <= 1e-6*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAccelCutoffPhantomMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := randomSet(rng, 101, 1.0)
	tgt := randomSet(rng, 24, 1.0)
	rcut, eps2 := 0.3, 1e-8
	n := tgt.Len()
	a1 := make([]float64, n)
	b1 := make([]float64, n)
	c1 := make([]float64, n)
	a2 := make([]float64, n)
	b2 := make([]float64, n)
	c2 := make([]float64, n)
	AccelCutoff(tgt.X, tgt.Y, tgt.Z, src, 1, rcut, eps2, a1, b1, c1)
	AccelCutoffPhantom(tgt.X, tgt.Y, tgt.Z, src, 1, rcut, eps2, a2, b2, c2)
	for i := 0; i < n; i++ {
		// The ≈24-bit rsqrt bounds the relative error near 1e-6.
		if math.Abs(a1[i]-a2[i]) > 1e-5*(1+math.Abs(a1[i])) {
			t.Fatalf("phantom kernel differs at %d: %v vs %v", i, a1[i], a2[i])
		}
	}
}

func TestPotTableMatchesQuadrature(t *testing.T) {
	tab := NewPotTable(512)
	rcut := 0.8
	for _, r := range []float64{0.01, 0.1, 0.25, 0.39, 0.6, 0.79} {
		want := PotCutoffAt(r, rcut)
		got := -tab.P(2*r/rcut) / r
		if want == 0 {
			if got != 0 {
				t.Errorf("r=%v: table %v, want 0", r, got)
			}
			continue
		}
		if math.Abs(got-want) > 1e-4*math.Abs(want)+1e-10 {
			t.Errorf("r=%v: table %v, quadrature %v", r, got, want)
		}
	}
	if p := tab.P(0); p != 1 {
		t.Errorf("p(0) = %v", p)
	}
	if p := tab.P(2.5); p != 0 {
		t.Errorf("p(2.5) = %v", p)
	}
}

func TestPotCutoffKernel(t *testing.T) {
	tab := NewPotTable(512)
	src := &Source{}
	src.Append(0.1, 0, 0, 2)
	pot := make([]float64, 1)
	rcut := 0.5
	PotCutoff([]float64{0}, []float64{0}, []float64{0}, src, tab, 1.5, rcut, 0, pot)
	want := 1.5 * 2 * PotCutoffAt(0.1, rcut)
	if math.Abs(pot[0]-want)/math.Abs(want) > 1e-4 {
		t.Errorf("kernel pot %v, want %v", pot[0], want)
	}
	// Self-interaction guarded.
	pot[0] = 0
	PotCutoff([]float64{0.1}, []float64{0}, []float64{0}, src, tab, 1, rcut, 0, pot)
	if pot[0] != 0 {
		t.Errorf("self potential = %v", pot[0])
	}
}
