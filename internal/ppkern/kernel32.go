package ppkern

import "math"

// Float32 kernel family — the Phantom-GRAPE single-precision force loop
// (§II-A; Ishiyama, Nitadori & Makino 2012). The short-range force is
// evaluated entirely in float32: the tree walk emits interaction lists with
// positions *relative to the target group's center*, so every coordinate the
// kernel sees is bounded by rcut plus the group radius — tiny compared to
// the box — and float32 resolution is spent where the force lives. The PM
// part carries the long-range signal, so single precision here does not
// touch the large-scale dynamics (the GreeM argument; Ishiyama, Fukushige &
// Makino 2009).
//
// Per-target partial forces are accumulated in float32 only within a fixed
// TileJ-source tile and flushed into float64 accumulators between tiles,
// bounding the float32 summation length; the caller-visible accumulation is
// float64. The float64 kernels in kernel.go remain the parity oracle.

// TileJ is the j-batch tile size of the unrolled float32 kernel: partial
// sums are flushed to float64 every TileJ sources, and a tile of four SoA
// float32 streams (x, y, z, m) occupies 4 KiB — resident in L1 while it is
// reused across the 4-target micro-panel.
const TileJ = 256

// SourceF32 is a j-particle set in float32 SoA layout, positions relative
// to a reference point chosen by the caller (the group center).
type SourceF32 struct {
	X, Y, Z, M []float32
}

// Len returns the number of j-particles.
func (s *SourceF32) Len() int { return len(s.X) }

// Append adds one j-particle.
func (s *SourceF32) Append(x, y, z, m float32) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
	s.Z = append(s.Z, z)
	s.M = append(s.M, m)
}

// Reset empties the set, retaining capacity.
func (s *SourceF32) Reset() {
	s.X = s.X[:0]
	s.Y = s.Y[:0]
	s.Z = s.Z[:0]
	s.M = s.M[:0]
}

// gp3mPoly32 is gp3mPoly with float32 arithmetic: the identical eq. 3
// polynomial, valid on [0,2]; callers mask ξ ≥ 2 themselves.
func gp3mPoly32(xi float32) float32 {
	zeta := xi - 1
	if zeta < 0 {
		zeta = 0
	}
	z2 := zeta * zeta
	z6 := z2 * z2 * z2
	inner := float32(-12.0/35.0) + xi*float32(3.0/20.0)
	inner = -0.5 + xi*inner
	inner = 8.0/5.0 + xi*inner
	inner = -8.0/5.0 + xi*xi*inner
	poly := 1 + xi*xi*xi*inner
	tail := float32(3.0/35.0) + xi*(float32(18.0/35.0)+xi*float32(1.0/5.0))
	return poly - z6*tail
}

// cutoffW32 returns g_P3M(ξ)/r³ for r² = r2 (softened) in float32, with the
// ξ ≥ 2 region masked to exactly zero — branch-free in the fcmp/fand sense:
// the polynomial is still evaluated (at the clamped ξ = 2) and multiplied by
// a zero mask, so the arithmetic per interaction is constant.
func cutoffW32(r2, cinv float32) float32 {
	rinv := Rsqrt32(r2)
	xi2 := r2 * rinv * cinv
	mask := float32(1)
	if xi2 >= 2 {
		mask = 0
		xi2 = 2
	}
	return mask * gp3mPoly32(xi2) * rinv * rinv * rinv
}

// AccelCutoffF32 is the reference scalar float32 kernel: same contract as
// AccelCutoff (targets xi/yi/zi, sources src, cutoff rcut, softening eps2,
// returns n × src.Len() interactions) but with float32 coordinates and
// arithmetic and float64 accumulation into (ax, ay, az). Coordinates are
// expected relative to the group center. Like AccelCutoff it skips ξ ≥ 2
// and exact zero separations by branch; AccelCutoffF32Fast is the
// optimized branch-free kernel.
func AccelCutoffF32(xi, yi, zi []float32, src *SourceF32, g, rcut, eps2 float32, ax, ay, az []float64) uint64 {
	cinv := 2 / rcut
	for i := range xi {
		var fx, fy, fz float64
		for j := range src.X {
			dx := src.X[j] - xi[i]
			dy := src.Y[j] - yi[i]
			dz := src.Z[j] - zi[i]
			r2 := dx*dx + dy*dy + dz*dz + eps2
			if r2 == 0 {
				continue // self-interaction with zero softening
			}
			rinv := 1 / float32(math.Sqrt(float64(r2)))
			xi2 := r2 * rinv * cinv
			if xi2 >= 2 {
				continue
			}
			w := g * src.M[j] * gp3mPoly32(xi2) * rinv * rinv * rinv
			fx += float64(w * dx)
			fy += float64(w * dy)
			fz += float64(w * dz)
		}
		ax[i] += fx
		ay[i] += fy
		az[i] += fz
	}
	return interactions(len(xi), src.Len())
}

// AccelCutoffF32Fast is the optimized float32 force loop: 4-target
// micro-panels over TileJ-sized source tiles (each tile reused across the
// panel so the j-stream stays in L1), float32 tile partials flushed to
// float64 between tiles, fast reciprocal square root (hardware or bit-trick
// seed + third-order refinement) instead of a sqrt+divide chain, and the
// ξ ≥ 2 cutoff applied as a branch-free mask so the 51-op ledger stays
// exact. On amd64 with AVX2+FMA the panel runs 8 interactions per
// instruction stream step in hand-written assembly (accel_amd64.s); the
// pure-Go panel accelCutoff4F32 is the portable fallback. eps2 must be
// positive if the source set can contain a target (the usual case in
// Barnes' modified algorithm, where a group's own particles appear in its
// interaction list).
//
// Note the scalar-skip parity caveat: exactly at the softened ξ = 2
// boundary the scalar kernels skip (ξ computed ≥ 2) while this kernel
// multiplies by a zero mask — identical results, different control flow.
func AccelCutoffF32Fast(xi, yi, zi []float32, src *SourceF32, g, rcut, eps2 float32, ax, ay, az []float64) uint64 {
	cinv := 2 / rcut
	n := len(xi)
	i := 0
	for ; i+4 <= n; i += 4 {
		if useAVX2 {
			accelCutoff4F32SIMD(xi[i:i+4], yi[i:i+4], zi[i:i+4], src, g, cinv, eps2, ax[i:i+4], ay[i:i+4], az[i:i+4])
		} else {
			accelCutoff4F32(xi[i:i+4], yi[i:i+4], zi[i:i+4], src, g, cinv, eps2, ax[i:i+4], ay[i:i+4], az[i:i+4])
		}
	}
	inter := interactions(i, src.Len())
	if i < n {
		inter += AccelCutoffF32(xi[i:], yi[i:], zi[i:], src, g, rcut, eps2, ax[i:], ay[i:], az[i:])
	}
	return inter
}

// accelCutoff4F32 computes cutoff forces on exactly four targets, tiling the
// source stream by TileJ. The per-source math — bit-trick rsqrt seed, Newton
// step, third-order refinement, eq. 3 polynomial, ξ ≥ 2 mask — is written
// out by hand for all four targets: as one function it costs ~180 inliner
// nodes, over twice the budget, so factoring it through cutoffW32 would put
// a function call (and a register spill) inside the hot loop. cutoffW32 is
// the readable twin the tests pin this against.
//
// The loop body is genuinely branch-free, the scalar equivalent of the SIMD
// fcmp/fand: the ξ ≥ 2 mask is the sign bit of ξ−2 AND-ed onto the weight
// (exactly zero beyond the cutoff), and the ξ/ζ clamps use the min/max
// builtins, which compile to MINSS/MAXSS — with beyond-cutoff sources mixed
// into the stream, per-lane branches would mispredict constantly. Tile
// slices are re-sliced to a common length so bounds checks drop out.
func accelCutoff4F32(xi, yi, zi []float32, src *SourceF32, g, cinv, eps2 float32, ax, ay, az []float64) {
	x0, x1, x2, x3 := xi[0], xi[1], xi[2], xi[3]
	y0, y1, y2, y3 := yi[0], yi[1], yi[2], yi[3]
	z0, z1, z2, z3 := zi[0], zi[1], zi[2], zi[3]
	var fx0d, fx1d, fx2d, fx3d float64
	var fy0d, fy1d, fy2d, fy3d float64
	var fz0d, fz1d, fz2d, fz3d float64
	nj := src.Len()
	for base := 0; base < nj; base += TileJ {
		end := base + TileJ
		if end > nj {
			end = nj
		}
		sx := src.X[base:end]
		sy := src.Y[base:end][:len(sx)]
		sz := src.Z[base:end][:len(sx)]
		sm := src.M[base:end][:len(sx)]
		var fx0, fx1, fx2, fx3 float32
		var fy0, fy1, fy2, fy3 float32
		var fz0, fz1, fz2, fz3 float32
		for j := range sx {
			pjx, pjy, pjz := sx[j], sy[j], sz[j]
			gm := g * sm[j]

			dx0 := pjx - x0
			dy0 := pjy - y0
			dz0 := pjz - z0
			r20 := eps2 + dx0*dx0 + dy0*dy0 + dz0*dz0
			u0 := math.Float32frombits(0x5f375a86 - math.Float32bits(r20)>>1)
			u0 = u0 * (1.5 - 0.5*r20*u0*u0)
			h0 := 1 - r20*u0*u0
			ri0 := u0 * (1 + h0*(0.5+h0*0.375))
			q0 := r20 * ri0 * cinv
			sel0 := uint32(int32(math.Float32bits(q0-2)) >> 31)
			q0 = min(q0, 2)
			zt0 := max(q0-1, 0)
			z20 := zt0 * zt0
			p0 := float32(-12.0/35.0) + q0*float32(3.0/20.0)
			p0 = -0.5 + q0*p0
			p0 = 8.0/5.0 + q0*p0
			p0 = -8.0/5.0 + q0*q0*p0
			p0 = 1 + q0*q0*q0*p0
			tl0 := float32(3.0/35.0) + q0*(float32(18.0/35.0)+q0*float32(1.0/5.0))
			v0 := (p0 - z20*z20*z20*tl0) * ri0 * ri0 * ri0
			w0 := gm * math.Float32frombits(math.Float32bits(v0)&sel0)
			fx0 += w0 * dx0
			fy0 += w0 * dy0
			fz0 += w0 * dz0

			dx1 := pjx - x1
			dy1 := pjy - y1
			dz1 := pjz - z1
			r21 := eps2 + dx1*dx1 + dy1*dy1 + dz1*dz1
			u1 := math.Float32frombits(0x5f375a86 - math.Float32bits(r21)>>1)
			u1 = u1 * (1.5 - 0.5*r21*u1*u1)
			h1 := 1 - r21*u1*u1
			ri1 := u1 * (1 + h1*(0.5+h1*0.375))
			q1 := r21 * ri1 * cinv
			sel1 := uint32(int32(math.Float32bits(q1-2)) >> 31)
			q1 = min(q1, 2)
			zt1 := max(q1-1, 0)
			z21 := zt1 * zt1
			p1 := float32(-12.0/35.0) + q1*float32(3.0/20.0)
			p1 = -0.5 + q1*p1
			p1 = 8.0/5.0 + q1*p1
			p1 = -8.0/5.0 + q1*q1*p1
			p1 = 1 + q1*q1*q1*p1
			tl1 := float32(3.0/35.0) + q1*(float32(18.0/35.0)+q1*float32(1.0/5.0))
			v1 := (p1 - z21*z21*z21*tl1) * ri1 * ri1 * ri1
			w1 := gm * math.Float32frombits(math.Float32bits(v1)&sel1)
			fx1 += w1 * dx1
			fy1 += w1 * dy1
			fz1 += w1 * dz1

			dx2 := pjx - x2
			dy2 := pjy - y2
			dz2 := pjz - z2
			r22 := eps2 + dx2*dx2 + dy2*dy2 + dz2*dz2
			u2 := math.Float32frombits(0x5f375a86 - math.Float32bits(r22)>>1)
			u2 = u2 * (1.5 - 0.5*r22*u2*u2)
			h2 := 1 - r22*u2*u2
			ri2 := u2 * (1 + h2*(0.5+h2*0.375))
			q2 := r22 * ri2 * cinv
			sel2 := uint32(int32(math.Float32bits(q2-2)) >> 31)
			q2 = min(q2, 2)
			zt2 := max(q2-1, 0)
			z22 := zt2 * zt2
			p2 := float32(-12.0/35.0) + q2*float32(3.0/20.0)
			p2 = -0.5 + q2*p2
			p2 = 8.0/5.0 + q2*p2
			p2 = -8.0/5.0 + q2*q2*p2
			p2 = 1 + q2*q2*q2*p2
			tl2 := float32(3.0/35.0) + q2*(float32(18.0/35.0)+q2*float32(1.0/5.0))
			v2 := (p2 - z22*z22*z22*tl2) * ri2 * ri2 * ri2
			w2 := gm * math.Float32frombits(math.Float32bits(v2)&sel2)
			fx2 += w2 * dx2
			fy2 += w2 * dy2
			fz2 += w2 * dz2

			dx3 := pjx - x3
			dy3 := pjy - y3
			dz3 := pjz - z3
			r23 := eps2 + dx3*dx3 + dy3*dy3 + dz3*dz3
			u3 := math.Float32frombits(0x5f375a86 - math.Float32bits(r23)>>1)
			u3 = u3 * (1.5 - 0.5*r23*u3*u3)
			h3 := 1 - r23*u3*u3
			ri3 := u3 * (1 + h3*(0.5+h3*0.375))
			q3 := r23 * ri3 * cinv
			sel3 := uint32(int32(math.Float32bits(q3-2)) >> 31)
			q3 = min(q3, 2)
			zt3 := max(q3-1, 0)
			z23 := zt3 * zt3
			p3 := float32(-12.0/35.0) + q3*float32(3.0/20.0)
			p3 = -0.5 + q3*p3
			p3 = 8.0/5.0 + q3*p3
			p3 = -8.0/5.0 + q3*q3*p3
			p3 = 1 + q3*q3*q3*p3
			tl3 := float32(3.0/35.0) + q3*(float32(18.0/35.0)+q3*float32(1.0/5.0))
			v3 := (p3 - z23*z23*z23*tl3) * ri3 * ri3 * ri3
			w3 := gm * math.Float32frombits(math.Float32bits(v3)&sel3)
			fx3 += w3 * dx3
			fy3 += w3 * dy3
			fz3 += w3 * dz3
		}
		fx0d += float64(fx0)
		fx1d += float64(fx1)
		fx2d += float64(fx2)
		fx3d += float64(fx3)
		fy0d += float64(fy0)
		fy1d += float64(fy1)
		fy2d += float64(fy2)
		fy3d += float64(fy3)
		fz0d += float64(fz0)
		fz1d += float64(fz1)
		fz2d += float64(fz2)
		fz3d += float64(fz3)
	}
	ax[0] += fx0d
	ax[1] += fx1d
	ax[2] += fx2d
	ax[3] += fx3d
	ay[0] += fy0d
	ay[1] += fy1d
	ay[2] += fy2d
	ay[3] += fy3d
	az[0] += fz0d
	az[1] += fz1d
	az[2] += fz2d
	az[3] += fz3d
}
