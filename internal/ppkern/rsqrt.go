package ppkern

import "math"

// The HPC-ACE architecture of K computer provides frsqrta, an approximate
// inverse-square-root instruction with 8-bit accuracy. The paper refines it
// to 24-bit accuracy with one third-order (Householder) step
//
//	y0 ≈ 1/√x,  h0 = 1 − x·y0²,  y1 = y0·(1 + h0/2 + 3h0²/8)
//
// and deliberately stops there: full convergence to double precision would
// increase both CPU time and the flops count without improving the accuracy
// of scientific results. We emulate frsqrta with a 512-entry table indexed by
// the exponent parity and the top 8 mantissa bits, which yields a relative
// seed error below 2⁻⁹ and a refined error below 10⁻⁸ (≈ 26 bits).

// rsqrtTab[p*256+i] holds 1/√v at the midpoint of the i-th mantissa interval
// for normalized significand v ∈ [1,2) (p=0) or v ∈ [2,4) (p=1).
var rsqrtTab [512]float64

func init() {
	for p := 0; p < 2; p++ {
		base := 1.0
		if p == 1 {
			base = 2.0
		}
		for i := 0; i < 256; i++ {
			v := base * (1 + (float64(i)+0.5)/256)
			rsqrtTab[p*256+i] = 1 / math.Sqrt(v)
		}
	}
}

// RsqrtSeed returns an approximation to 1/√x accurate to about 9 bits, the
// software stand-in for the frsqrta instruction. x must be positive, finite
// and normal.
func RsqrtSeed(x float64) float64 {
	b := math.Float64bits(x)
	exp := int(b>>52) & 0x7FF
	k := exp - 1023
	parity := k & 1 // 0 or 1 even for negative k (two's complement)
	idx := parity<<8 | int(b>>44)&0xFF
	// x = v · 2^k2 with k2 even and v ∈ [1,4).
	k2 := k - parity
	return math.Ldexp(rsqrtTab[idx], -k2/2)
}

// Rsqrt returns 1/√x to ≈24-bit accuracy using the seeded approximation plus
// one third-order refinement, exactly as the K computer kernel does.
func Rsqrt(x float64) float64 {
	y := RsqrtSeed(x)
	h := 1 - x*y*y
	return y * (1 + h*(0.5+h*0.375))
}
