package ppkern

import "math"

// Single-precision fast reciprocal square root for the float32 kernel
// family. Unlike the float64 Rsqrt (which emulates HPC-ACE's frsqrta with a
// 512-entry table), the float32 seed uses the classic bit-trick
// approximation followed by one Newton step — no table, no Ldexp, nothing
// the compiler cannot keep in registers inside the force loop. The seed
// reaches ≈9-bit accuracy, and a single third-order (Householder) step
//
//	h = 1 − x·y²,  y ← y·(1 + h/2 + 3h²/8)
//
// cubes the relative error to ~5·10⁻⁹, below the float32 rounding floor —
// the same "stop once the science stops improving" refinement budget the
// paper applies on HPC-ACE (§II-A).

// Rsqrt32Seed returns an approximation to 1/√x accurate to about 9 bits:
// the magic-constant bit shift (Blinn/Lomont) plus one Newton step. x must
// be positive, finite and normal.
func Rsqrt32Seed(x float32) float32 {
	y := math.Float32frombits(0x5f375a86 - math.Float32bits(x)>>1)
	return y * (1.5 - 0.5*x*y*y)
}

// Rsqrt32 returns 1/√x to full float32 accuracy (relative error below one
// ulp-scale bound of ~2⁻²³) using the seeded approximation plus one
// third-order refinement.
func Rsqrt32(x float32) float32 {
	y := Rsqrt32Seed(x)
	h := 1 - x*y*y
	return y * (1 + h*(0.5+h*0.375))
}
