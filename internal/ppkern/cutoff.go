// Package ppkern implements the short-range (particle-particle) gravity
// kernel of the TreePM force split, following §II-A of Ishiyama, Nitadori &
// Makino (SC12).
//
// The density of a point mass is split into a long-range part ρ_PM — the
// linearly decreasing S2 shape of Hockney & Eastwood with radius a = rcut/2
// (paper eq. 1) — and a short-range remainder. The resulting pairwise
// short-range force is
//
//	f_i = Σ_j G m_j (r_j - r_i)/|r_j - r_i|³ · g(2|r_j - r_i|/rcut)
//
// where g is the polynomial cutoff function of paper eq. 3, obtained by
// six-dimensional integration of the S2×S2 pair force. g(0) = 1 and
// g(ξ) = 0 for ξ ≥ 2, so the particle-particle interaction vanishes outside
// the finite radius rcut (Newton's second theorem).
//
// The package provides a straightforward scalar kernel, a hand-unrolled
// kernel in the style of Phantom-GRAPE (4 targets × blocked sources, fast
// approximate inverse square root with a third-order refinement), and the
// 51-operations-per-interaction ledger the paper uses to report Pflops.
package ppkern

// FlopsPerInteraction is the floating-point operation count per pairwise
// interaction used by the paper to compute flops: the inner loop consists of
// 17 FMA and 17 non-FMA operations per two (one SIMD) interactions, i.e.
// (17·2 + 17) = 51 flops each.
const FlopsPerInteraction = 51

// GP3M is the cutoff function of paper eq. 3 with ξ = 2r/rcut:
//
//	g(ξ) = 1 + ξ³(−8/5 + ξ²(8/5 + ξ(−1/2 + ξ(−12/35 + ξ·3/20))))
//	         − ζ⁶(3/35 + ξ(18/35 + ξ/5)),   ζ = max(0, ξ−1)
//
// for 0 ≤ ξ ≤ 2, and 0 for ξ > 2. The form has a branch at ξ = 1 expressed
// through ζ so it can be evaluated branch-free on FMA SIMD hardware; we keep
// the identical arithmetic.
func GP3M(xi float64) float64 {
	if xi >= 2 {
		return 0
	}
	return gp3mPoly(xi)
}

// gp3mPoly evaluates the eq. 3 polynomial without the ξ>2 guard. It is only
// valid on [0,2]; callers mask ξ ≥ 2 themselves (as the SIMD kernel does with
// fcmp/fand).
func gp3mPoly(xi float64) float64 {
	zeta := xi - 1
	if zeta < 0 {
		zeta = 0
	}
	z2 := zeta * zeta
	z6 := z2 * z2 * z2
	inner := -12.0/35.0 + xi*(3.0/20.0)
	inner = -0.5 + xi*inner
	inner = 8.0/5.0 + xi*inner
	inner = -8.0/5.0 + xi*xi*inner
	poly := 1 + xi*xi*xi*inner
	tail := 3.0/35.0 + xi*(18.0/35.0+xi*(1.0/5.0))
	return poly - z6*tail
}

// HLong is the long-range complement 1 − g(ξ): the fraction of the 1/r² pair
// force carried by the PM part at separation r = ξ·rcut/2. It is exposed so
// the mesh Green's function can be validated against eq. 3 directly.
func HLong(xi float64) float64 { return 1 - GP3M(xi) }
