package ppkern

import "math"

// QuadSource is a set of multipole sources carrying monopole and traceless
// quadrupole moments, Q_ij = Σ_k m_k (3 x̃_i x̃_j − δ_ij |x̃|²) with x̃
// relative to the center of mass. The tree's quadrupole extension (an
// accuracy/cost ablation over the paper's monopole-only configuration)
// evaluates accepted nodes through this kernel.
type QuadSource struct {
	X, Y, Z, M             []float64
	XX, YY, ZZ, XY, XZ, YZ []float64
}

// Len returns the number of sources.
func (s *QuadSource) Len() int { return len(s.X) }

// Append adds one source.
func (s *QuadSource) Append(x, y, z, m, xx, yy, zz, xy, xz, yz float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
	s.Z = append(s.Z, z)
	s.M = append(s.M, m)
	s.XX = append(s.XX, xx)
	s.YY = append(s.YY, yy)
	s.ZZ = append(s.ZZ, zz)
	s.XY = append(s.XY, xy)
	s.XZ = append(s.XZ, xz)
	s.YZ = append(s.YZ, yz)
}

// Reset empties the set, retaining capacity.
func (s *QuadSource) Reset() {
	s.X = s.X[:0]
	s.Y = s.Y[:0]
	s.Z = s.Z[:0]
	s.M = s.M[:0]
	s.XX = s.XX[:0]
	s.YY = s.YY[:0]
	s.ZZ = s.ZZ[:0]
	s.XY = s.XY[:0]
	s.XZ = s.XZ[:0]
	s.YZ = s.YZ[:0]
}

// AccelQuad accumulates monopole + quadrupole accelerations from the
// sources onto the targets:
//
//	a = G·M·d/r³ + G·[ −Q·d/r⁵ + (5/2)·(d·Q·d)·d/r⁷ ]
//
// with d pointing from the target to the source's center of mass (so the
// monopole term is attractive), matching the expansion
// φ = −GM/r − G(d·Q·d)/(2r⁵). Softening applies to the monopole only (the
// quadrupole is used for well-separated cells where ε is negligible).
func AccelQuad(xi, yi, zi []float64, src *QuadSource, g, eps2 float64, ax, ay, az []float64) uint64 {
	for i := range xi {
		var fx, fy, fz float64
		for j := range src.X {
			dx := src.X[j] - xi[i]
			dy := src.Y[j] - yi[i]
			dz := src.Z[j] - zi[i]
			r2 := dx*dx + dy*dy + dz*dz
			if r2 == 0 {
				continue
			}
			rinv := 1 / math.Sqrt(r2+eps2)
			rinv2 := rinv * rinv
			rinv3 := rinv2 * rinv
			rinv5 := rinv3 * rinv2
			rinv7 := rinv5 * rinv2
			gm := g * src.M[j]
			// Monopole.
			fx += gm * rinv3 * dx
			fy += gm * rinv3 * dy
			fz += gm * rinv3 * dz
			// Quadrupole.
			qdx := src.XX[j]*dx + src.XY[j]*dy + src.XZ[j]*dz
			qdy := src.XY[j]*dx + src.YY[j]*dy + src.YZ[j]*dz
			qdz := src.XZ[j]*dx + src.YZ[j]*dy + src.ZZ[j]*dz
			dqd := dx*qdx + dy*qdy + dz*qdz
			fx += g * (-qdx*rinv5 + 2.5*dqd*dx*rinv7)
			fy += g * (-qdy*rinv5 + 2.5*dqd*dy*rinv7)
			fz += g * (-qdz*rinv5 + 2.5*dqd*dz*rinv7)
		}
		ax[i] += fx
		ay[i] += fy
		az[i] += fz
	}
	return interactions(len(xi), src.Len())
}
