package ppkern

import "math"

// The kernels below operate on structure-of-arrays data: the i-particles
// (targets) and j-particles (sources) are given as separate coordinate and
// mass slices, mirroring the Phantom-GRAPE API (which is itself API-
// compatible with GRAPE-5: load a j-particle set, then evaluate forces on
// batches of i-particles).
//
// Periodicity is the caller's concern: interaction lists are built with
// minimum-image shifted coordinates, so the kernels are purely Newtonian
// with a finite cutoff.

// Source is a j-particle set in SoA layout.
type Source struct {
	X, Y, Z, M []float64
}

// Len returns the number of j-particles.
func (s *Source) Len() int { return len(s.X) }

// Append adds one j-particle.
func (s *Source) Append(x, y, z, m float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
	s.Z = append(s.Z, z)
	s.M = append(s.M, m)
}

// Reset empties the set, retaining capacity.
func (s *Source) Reset() {
	s.X = s.X[:0]
	s.Y = s.Y[:0]
	s.Z = s.Z[:0]
	s.M = s.M[:0]
}

// AccelCutoff accumulates into (ax, ay, az) the short-range accelerations on
// the n = len(xi) targets from the sources, using the eq. 2 force with the
// eq. 3 cutoff at radius rcut, Plummer softening ε² = eps2, and gravitational
// constant g. It returns the number of pairwise interactions evaluated
// (n × src.Len()), the quantity the paper multiplies by 51 to count flops.
//
// This is the reference scalar implementation; AccelCutoffFast is the
// optimized kernel.
func AccelCutoff(xi, yi, zi []float64, src *Source, g, rcut, eps2 float64, ax, ay, az []float64) uint64 {
	cinv := 2 / rcut
	for i := range xi {
		var fx, fy, fz float64
		for j := range src.X {
			dx := src.X[j] - xi[i]
			dy := src.Y[j] - yi[i]
			dz := src.Z[j] - zi[i]
			r2 := dx*dx + dy*dy + dz*dz + eps2
			if r2 == 0 {
				continue // self-interaction with zero softening
			}
			rinv := 1 / math.Sqrt(r2)
			xi2 := r2 * rinv * cinv // ξ = 2r/rcut with softened r
			if xi2 >= 2 {
				continue
			}
			w := g * src.M[j] * gp3mPoly(xi2) * rinv * rinv * rinv
			fx += w * dx
			fy += w * dy
			fz += w * dz
		}
		ax[i] += fx
		ay[i] += fy
		az[i] += fz
	}
	return interactions(len(xi), src.Len())
}

// AccelCutoffFast is the optimized force loop: the i-loop is unrolled four
// ways (the K kernel evaluates forces from 4 particles on 4 particles per
// iteration of its 8× unrolled SIMD loop). On amd64, math.Sqrt compiles to a
// hardware instruction that beats a software-emulated frsqrta, so this
// variant uses 1/√ directly; AccelCutoffPhantom is the faithful HPC-ACE
// port with the approximate reciprocal square root and third-order
// refinement. eps2 must be positive if the source set can contain a target
// (the usual case in Barnes' modified algorithm, where a group's own
// particles appear in its interaction list).
//
// The cutoff is applied branch-free via a mask, as the SIMD code does with
// fcmp/fand: beyond ξ = 2 the polynomial is multiplied by zero rather than
// skipped, so the arithmetic per interaction is constant — that is what
// makes the 51-op ledger exact.
func AccelCutoffFast(xi, yi, zi []float64, src *Source, g, rcut, eps2 float64, ax, ay, az []float64) uint64 {
	return accelCutoffUnrolled(xi, yi, zi, src, g, rcut, eps2, ax, ay, az, false)
}

// AccelCutoffPhantom is the algorithmically faithful Phantom-GRAPE port:
// identical to AccelCutoffFast but computing 1/√r² the HPC-ACE way — an
// 8-bit approximate seed (frsqrta) refined by one third-order step,
// delivering ≈24-bit accuracy (§II-A).
func AccelCutoffPhantom(xi, yi, zi []float64, src *Source, g, rcut, eps2 float64, ax, ay, az []float64) uint64 {
	return accelCutoffUnrolled(xi, yi, zi, src, g, rcut, eps2, ax, ay, az, true)
}

// interactions is the pairwise-interaction ledger entry for n targets
// against nj sources — the single place the count is defined, so unrolled
// kernels compose it from their panel and remainder contributions instead
// of recomputing it.
func interactions(n, nj int) uint64 { return uint64(n) * uint64(nj) }

func accelCutoffUnrolled(xi, yi, zi []float64, src *Source, g, rcut, eps2 float64, ax, ay, az []float64, phantom bool) uint64 {
	cinv := 2 / rcut
	n := len(xi)
	i := 0
	for ; i+4 <= n; i += 4 {
		accelCutoff4(xi[i:i+4], yi[i:i+4], zi[i:i+4], src, g, cinv, eps2, ax[i:i+4], ay[i:i+4], az[i:i+4], phantom)
	}
	inter := interactions(i, src.Len())
	if i < n {
		inter += AccelCutoff(xi[i:], yi[i:], zi[i:], src, g, rcut, eps2, ax[i:], ay[i:], az[i:])
	}
	return inter
}

// accelCutoff4 computes cutoff forces on exactly four targets.
func accelCutoff4(xi, yi, zi []float64, src *Source, g, cinv, eps2 float64, ax, ay, az []float64, phantom bool) {
	x0, x1, x2, x3 := xi[0], xi[1], xi[2], xi[3]
	y0, y1, y2, y3 := yi[0], yi[1], yi[2], yi[3]
	z0, z1, z2, z3 := zi[0], zi[1], zi[2], zi[3]
	var fx0, fx1, fx2, fx3 float64
	var fy0, fy1, fy2, fy3 float64
	var fz0, fz1, fz2, fz3 float64
	sx, sy, sz, sm := src.X, src.Y, src.Z, src.M
	for j := range sx {
		pjx, pjy, pjz := sx[j], sy[j], sz[j]
		gm := g * sm[j]

		dx0 := pjx - x0
		dy0 := pjy - y0
		dz0 := pjz - z0
		r20 := eps2 + dx0*dx0 + dy0*dy0 + dz0*dz0
		w0 := gm * cutoffW(r20, cinv, phantom)
		fx0 += w0 * dx0
		fy0 += w0 * dy0
		fz0 += w0 * dz0

		dx1 := pjx - x1
		dy1 := pjy - y1
		dz1 := pjz - z1
		r21 := eps2 + dx1*dx1 + dy1*dy1 + dz1*dz1
		w1 := gm * cutoffW(r21, cinv, phantom)
		fx1 += w1 * dx1
		fy1 += w1 * dy1
		fz1 += w1 * dz1

		dx2 := pjx - x2
		dy2 := pjy - y2
		dz2 := pjz - z2
		r22 := eps2 + dx2*dx2 + dy2*dy2 + dz2*dz2
		w2 := gm * cutoffW(r22, cinv, phantom)
		fx2 += w2 * dx2
		fy2 += w2 * dy2
		fz2 += w2 * dz2

		dx3 := pjx - x3
		dy3 := pjy - y3
		dz3 := pjz - z3
		r23 := eps2 + dx3*dx3 + dy3*dy3 + dz3*dz3
		w3 := gm * cutoffW(r23, cinv, phantom)
		fx3 += w3 * dx3
		fy3 += w3 * dy3
		fz3 += w3 * dz3
	}
	ax[0] += fx0
	ax[1] += fx1
	ax[2] += fx2
	ax[3] += fx3
	ay[0] += fy0
	ay[1] += fy1
	ay[2] += fy2
	ay[3] += fy3
	az[0] += fz0
	az[1] += fz1
	az[2] += fz2
	az[3] += fz3
}

// cutoffW returns g_P3M(ξ)/r³ for r² = r2 (softened), with the ξ ≥ 2 region
// masked to zero. phantom selects the emulated HPC-ACE reciprocal square
// root; otherwise the hardware square-root instruction is used.
func cutoffW(r2, cinv float64, phantom bool) float64 {
	var rinv float64
	if phantom {
		rinv = Rsqrt(r2)
	} else {
		rinv = 1 / math.Sqrt(r2)
	}
	xi2 := r2 * rinv * cinv
	mask := 1.0
	if xi2 >= 2 {
		mask = 0
		xi2 = 2
	}
	return mask * gp3mPoly(xi2) * rinv * rinv * rinv
}

// AccelPlain accumulates plain Newtonian (no cutoff) accelerations; used by
// the open-boundary tree and direct-summation baselines.
func AccelPlain(xi, yi, zi []float64, src *Source, g, eps2 float64, ax, ay, az []float64) uint64 {
	for i := range xi {
		var fx, fy, fz float64
		for j := range src.X {
			dx := src.X[j] - xi[i]
			dy := src.Y[j] - yi[i]
			dz := src.Z[j] - zi[i]
			r2 := dx*dx + dy*dy + dz*dz + eps2
			if r2 == 0 {
				continue
			}
			rinv := 1 / math.Sqrt(r2)
			w := g * src.M[j] * rinv * rinv * rinv
			fx += w * dx
			fy += w * dy
			fz += w * dz
		}
		ax[i] += fx
		ay[i] += fy
		az[i] += fz
	}
	return interactions(len(xi), src.Len())
}

// PotPlain accumulates plain Newtonian potentials Φ_i = −Σ_j G m_j/|r_ij|
// (softened); used for energy-conservation diagnostics.
func PotPlain(xi, yi, zi []float64, src *Source, g, eps2 float64, pot []float64) {
	for i := range xi {
		var p float64
		for j := range src.X {
			dx := src.X[j] - xi[i]
			dy := src.Y[j] - yi[i]
			dz := src.Z[j] - zi[i]
			r2 := dx*dx + dy*dy + dz*dz + eps2
			if r2 == 0 {
				continue
			}
			p -= g * src.M[j] / math.Sqrt(r2)
		}
		pot[i] += p
	}
}

// PotCutoffAt returns the short-range pair potential per unit (G·m) at
// separation r, i.e. φ_short(r) = −(2/rcut)·∫_ξ^2 g(u)/u² du with ξ = 2r/rcut,
// evaluated by adaptive Simpson quadrature. It is a diagnostic (energy
// bookkeeping and kernel validation), not part of the force loop.
func PotCutoffAt(r, rcut float64) float64 {
	xi := 2 * r / rcut
	if xi >= 2 {
		return 0
	}
	f := func(u float64) float64 { return gp3mPoly(u) / (u * u) }
	return -(2 / rcut) * simpsonAdaptive(f, xi, 2, 1e-12, 30)
}

func simpsonAdaptive(f func(float64) float64, a, b, tol float64, depth int) float64 {
	c := (a + b) / 2
	fa, fb, fc := f(a), f(b), f(c)
	s := (b - a) / 6 * (fa + 4*fc + fb)
	return simpsonStep(f, a, b, fa, fb, fc, s, tol, depth)
}

func simpsonStep(f func(float64) float64, a, b, fa, fb, fc, s, tol float64, depth int) float64 {
	c := (a + b) / 2
	d := (a + c) / 2
	e := (c + b) / 2
	fd, fe := f(d), f(e)
	sl := (c - a) / 6 * (fa + 4*fd + fc)
	sr := (b - c) / 6 * (fc + 4*fe + fb)
	if depth <= 0 || math.Abs(sl+sr-s) < 15*tol {
		return sl + sr + (sl+sr-s)/15
	}
	return simpsonStep(f, a, c, fa, fc, fd, sl, tol/2, depth-1) +
		simpsonStep(f, c, b, fc, fb, fe, sr, tol/2, depth-1)
}

// PotTable tabulates the short-range pair potential shape p(ξ) with
// φ_short(r) = −(G·m/r)·p(2r/rcut), p(0) = 1, p(ξ ≥ 2) = 0, so energy
// diagnostics can run at kernel speed instead of per-pair quadrature.
type PotTable struct {
	vals []float64 // p at ξ = i·dξ
	dxi  float64
}

// NewPotTable builds the table with n intervals over ξ ∈ [0, 2].
func NewPotTable(n int) *PotTable {
	t := &PotTable{vals: make([]float64, n+1), dxi: 2 / float64(n)}
	for i := 0; i <= n; i++ {
		xi := float64(i) * t.dxi
		// φ_short(r) = −(2/rcut)∫_ξ² g/u² du = −(1/r)·p(ξ) with
		// p(ξ) = ξ·∫_ξ² g(u)/u² du (rcut-independent shape).
		if xi == 0 {
			t.vals[i] = 1 // lim ξ→0 of ξ·(1/ξ − …) = 1
			continue
		}
		if xi >= 2 {
			t.vals[i] = 0
			continue
		}
		integral := simpsonAdaptive(func(u float64) float64 { return gp3mPoly(u) / (u * u) }, xi, 2, 1e-12, 30)
		t.vals[i] = xi * integral
	}
	return t
}

// P returns the interpolated shape p(ξ).
func (t *PotTable) P(xi float64) float64 {
	if xi >= 2 {
		return 0
	}
	if xi <= 0 {
		return 1
	}
	f := xi / t.dxi
	i := int(f)
	if i >= len(t.vals)-1 {
		return 0
	}
	u := f - float64(i)
	return t.vals[i]*(1-u) + t.vals[i+1]*u
}

// PotCutoff accumulates short-range potentials Φ_i += −Σ_j G·m_j·p(ξ)/r
// into pot using the table.
func PotCutoff(xi, yi, zi []float64, src *Source, tab *PotTable, g, rcut, eps2 float64, pot []float64) uint64 {
	cinv := 2 / rcut
	for i := range xi {
		var p float64
		for j := range src.X {
			dx := src.X[j] - xi[i]
			dy := src.Y[j] - yi[i]
			dz := src.Z[j] - zi[i]
			r2 := dx*dx + dy*dy + dz*dz + eps2
			if r2 == 0 {
				continue
			}
			rinv := 1 / math.Sqrt(r2)
			x2 := r2 * rinv * cinv
			if x2 >= 2 {
				continue
			}
			p -= g * src.M[j] * rinv * tab.P(x2)
		}
		pot[i] += p
	}
	return interactions(len(xi), src.Len())
}
