//go:build !amd64

package ppkern

// Non-amd64 hosts always use the pure-Go 4-wide float32 panel.
const useAVX2 = false

func accelCutoff4F32SIMD(xi, yi, zi []float32, src *SourceF32, g, cinv, eps2 float32, ax, ay, az []float64) {
	panic("ppkern: SIMD kernel unavailable on this architecture")
}
