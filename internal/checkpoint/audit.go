package checkpoint

import (
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Audit is the verifiable-run-integrity walk behind the service plane's
// GET /runs/{id}/integrity: it re-validates every checkpoint present under
// cfg.Dir in full — manifest frame CRC, config fingerprint, geometry, and
// every shard's size, CRC32C and verified snapshot payload — and re-walks
// the SHA-256 manifest hash chain across them. Unlike Latest, which skips
// damaged checkpoints looking for a usable one, Audit is strict: any
// ckpt_* directory whose manifest is missing, torn or inconsistent fails
// the audit, because a tampered or rotted run must be rejected, not
// silently routed around. Returns the audited steps, oldest first.
func Audit(cfg Config, ranks int) (steps []uint64, err error) {
	cfg = cfg.withDefaults()
	entries, err := cfg.FS.ReadDir(cfg.Dir)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: audit %s: %w", cfg.Dir, err)
	}
	var scans []scanned
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "ckpt_") {
			continue
		}
		step, perr := strconv.ParseUint(strings.TrimPrefix(e.Name(), "ckpt_"), 10, 64)
		if perr != nil {
			return nil, fmt.Errorf("checkpoint: audit: %s: unparseable step in name", e.Name())
		}
		dir := filepath.Join(cfg.Dir, e.Name())
		b, rerr := cfg.FS.ReadFile(filepath.Join(dir, manifestName))
		if rerr != nil {
			return nil, fmt.Errorf("checkpoint: audit: %s: manifest unreadable: %w", e.Name(), rerr)
		}
		m, payload, derr := decodeManifest(b)
		if derr != nil {
			return nil, fmt.Errorf("checkpoint: audit: %s: %w", e.Name(), derr)
		}
		if m.Step != step {
			return nil, fmt.Errorf("checkpoint: audit: %s: manifest claims step %d", e.Name(), m.Step)
		}
		scans = append(scans, scanned{dir: dir, m: m, payload: payload})
	}
	sort.Slice(scans, func(i, j int) bool { return scans[i].m.Step < scans[j].m.Step })
	for i, sc := range scans {
		if err := validate(cfg, sc, ranks); err != nil {
			return nil, fmt.Errorf("checkpoint: audit: %s: %w", filepath.Base(sc.dir), err)
		}
		if i > 0 {
			if want := manifestHash(scans[i-1].payload); sc.m.PrevHash != want {
				return nil, fmt.Errorf("checkpoint: audit: chain broken: %s records prev_hash %.12s…, but %s hashes to %.12s…",
					filepath.Base(sc.dir), sc.m.PrevHash, filepath.Base(scans[i-1].dir), want)
			}
		}
		steps = append(steps, sc.m.Step)
	}
	if len(steps) == 0 {
		return nil, ErrNoCheckpoint
	}
	return steps, nil
}
