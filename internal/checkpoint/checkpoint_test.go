package checkpoint

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"greem/internal/mpi"
	"greem/internal/sim"
)

func makeParticles(seed int64, n int, vscale float64) []sim.Particle {
	rng := rand.New(rand.NewSource(seed))
	out := make([]sim.Particle, n)
	for i := range out {
		out[i] = sim.Particle{
			X: rng.Float64(), Y: rng.Float64(), Z: rng.Float64(),
			VX: vscale * rng.NormFloat64(), VY: vscale * rng.NormFloat64(), VZ: vscale * rng.NormFloat64(),
			M: 1.0 / float64(n), ID: int64(i),
		}
	}
	return out
}

func sliceFor(parts []sim.Particle, rank, size int) []sim.Particle {
	n := len(parts)
	return parts[rank*n/size : (rank+1)*n/size]
}

// testSimConfig is the deterministic two-rank configuration the checkpoint
// tests run under: DeterministicCost replaces wall-clock cost sampling so
// interrupted and uninterrupted runs are comparable bit for bit.
func testSimConfig() sim.Config {
	return sim.Config{
		L: 1, G: 1, NMesh: 16, Theta: 0.3, Ni: 32, Eps2: 1e-9,
		Grid: [3]int{2, 1, 1}, DT: 0.01, DeterministicCost: true,
	}
}

// testLogf returns a concurrency-safe capture of checkpoint diagnostics and
// a reader for them.
func testLogf() (func(string, ...any), func() string) {
	var mu sync.Mutex
	var sb strings.Builder
	logf := func(format string, args ...any) {
		mu.Lock()
		fmt.Fprintf(&sb, format+"\n", args...)
		mu.Unlock()
	}
	read := func() string {
		mu.Lock()
		defer mu.Unlock()
		return sb.String()
	}
	return logf, read
}

func byID(parts []sim.Particle) []sim.Particle {
	out := append([]sim.Particle(nil), parts...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

func TestWriteRestoreRoundtrip(t *testing.T) {
	const ranks, steps = 2, 3
	parts := makeParticles(1, 200, 0.05)
	cfg := testSimConfig()
	dir := t.TempDir()
	logf, logs := testLogf()
	ckCfg := Config{Dir: dir, Sim: cfg, Logf: logf}

	err := mpi.Run(ranks, func(c *mpi.Comm) {
		s, err := sim.New(c, cfg, sliceFor(parts, c.Rank(), ranks))
		if err != nil {
			panic(err)
		}
		for i := 0; i < steps; i++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
		}
		if _, err := Write(c, ckCfg, s); err != nil {
			panic(err)
		}

		r, err := Restore(c, ckCfg)
		if err != nil {
			panic(err)
		}
		if r.StepIndex() != steps {
			t.Errorf("restored StepIndex = %d, want %d", r.StepIndex(), steps)
		}
		if r.Time() != s.Time() {
			t.Errorf("restored Time = %v, want %v", r.Time(), s.Time())
		}
		// The restored rank must hold exactly the same particles in exactly
		// the same local order — that order is the FP summation order.
		sp, rp := s.Particles(), r.Particles()
		if len(sp) != len(rp) {
			t.Fatalf("rank %d: restored %d particles, had %d", c.Rank(), len(rp), len(sp))
		}
		for i := range sp {
			if sp[i] != rp[i] {
				t.Fatalf("rank %d: particle %d differs after restore", c.Rank(), i)
			}
		}

		// Continue both sims one step: the trajectories must stay identical
		// bit for bit (the restored sim recomputes forces from the same
		// positions, geometry and RNG state).
		if err := s.Step(); err != nil {
			panic(err)
		}
		if err := r.Step(); err != nil {
			panic(err)
		}
		sa, ra := byID(s.GatherAll(0)), byID(r.GatherAll(0))
		if c.Rank() == 0 {
			for i := range sa {
				if sa[i] != ra[i] {
					t.Fatalf("trajectories diverge at particle %d after resume: %+v vs %+v", i, sa[i], ra[i])
				}
			}
		}
	})
	if err != nil {
		t.Fatalf("%v (logs: %s)", err, logs())
	}
	if err := ValidateChain(ckCfg); err != nil {
		t.Errorf("chain: %v", err)
	}
}

func TestRestoreWithoutCheckpoint(t *testing.T) {
	cfg := testSimConfig()
	ckCfg := Config{Dir: t.TempDir(), Sim: cfg}
	err := mpi.Run(2, func(c *mpi.Comm) {
		if _, err := Restore(c, ckCfg); !errors.Is(err, ErrNoCheckpoint) {
			t.Errorf("rank %d: err = %v, want ErrNoCheckpoint", c.Rank(), err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// writeCheckpoints steps a 2-rank sim and checkpoints every `every` steps.
func writeCheckpoints(t *testing.T, ckCfg Config, steps, every int) {
	t.Helper()
	parts := makeParticles(2, 120, 0.05)
	err := mpi.Run(2, func(c *mpi.Comm) {
		s, err := sim.New(c, ckCfg.Sim, sliceFor(parts, c.Rank(), 2))
		if err != nil {
			panic(err)
		}
		for i := 1; i <= steps; i++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
			if i%every == 0 {
				if _, err := Write(c, ckCfg, s); err != nil {
					panic(err)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestKeepPrunesOldCheckpoints(t *testing.T) {
	dir := t.TempDir()
	ckCfg := Config{Dir: dir, Sim: testSimConfig(), Keep: 2}
	writeCheckpoints(t, ckCfg, 4, 1) // writes steps 1..4, Keep 2
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	sort.Strings(names)
	want := []string{dirName(3), dirName(4)}
	if len(names) != len(want) || names[0] != want[0] || names[1] != want[1] {
		t.Fatalf("after pruning: %v, want %v", names, want)
	}
	// The survivors are a contiguous chain suffix: the chain must verify.
	if err := ValidateChain(ckCfg); err != nil {
		t.Errorf("chain after pruning: %v", err)
	}
	if _, m, err := Latest(ckCfg, 2); err != nil || m.Step != 4 {
		t.Errorf("Latest after pruning: step %v, err %v", m, err)
	}
}

func TestHashChainLinksCheckpoints(t *testing.T) {
	dir := t.TempDir()
	ckCfg := Config{Dir: dir, Sim: testSimConfig()}
	writeCheckpoints(t, ckCfg, 2, 1)
	scans := scanManifests(ckCfg.withDefaults()) // newest first
	if len(scans) != 2 {
		t.Fatalf("%d checkpoints", len(scans))
	}
	if scans[1].m.PrevHash != "" {
		t.Errorf("first checkpoint PrevHash = %q, want empty", scans[1].m.PrevHash)
	}
	if want := manifestHash(scans[1].payload); scans[0].m.PrevHash != want {
		t.Errorf("second checkpoint PrevHash = %q, want %q", scans[0].m.PrevHash, want)
	}
	if err := ValidateChain(ckCfg); err != nil {
		t.Fatal(err)
	}

	// Rewrite the older manifest (valid frame, different payload): every
	// later checkpoint's link must break.
	m := scans[1].m
	m.Time += 1e-9
	frame, _, err := encodeManifest(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(scans[1].dir, manifestName), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	err = ValidateChain(ckCfg)
	if err == nil {
		t.Fatal("tampered history passed chain validation")
	}
	if !strings.Contains(err.Error(), "chain broken") {
		t.Errorf("want chain-broken error, got: %v", err)
	}
}

func TestFingerprintRefusesDifferentConfig(t *testing.T) {
	dir := t.TempDir()
	ckCfg := Config{Dir: dir, Sim: testSimConfig()}
	writeCheckpoints(t, ckCfg, 1, 1)

	other := testSimConfig()
	other.Theta = 0.7 // different physics: restart would silently diverge
	logf, logs := testLogf()
	if _, _, err := Latest(Config{Dir: dir, Sim: other, Logf: logf}, 2); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("config mismatch: err = %v, want ErrNoCheckpoint", err)
	}
	if !strings.Contains(logs(), "fingerprint") {
		t.Errorf("skip reason should mention the fingerprint, got: %s", logs())
	}

	// Workers must NOT participate: results are identical at any worker
	// count, so a resume on different intra-rank parallelism is legitimate.
	workers := testSimConfig()
	workers.Workers = 7
	if _, m, err := Latest(Config{Dir: dir, Sim: workers}, 2); err != nil || m.Step != 1 {
		t.Errorf("worker-count change refused: %v", err)
	}
}

func TestWrongRankCountRefused(t *testing.T) {
	dir := t.TempDir()
	ckCfg := Config{Dir: dir, Sim: testSimConfig()}
	writeCheckpoints(t, ckCfg, 1, 1)
	logf, logs := testLogf()
	if _, _, err := Latest(Config{Dir: dir, Sim: testSimConfig(), Logf: logf}, 4); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("rank-count mismatch: err = %v, want ErrNoCheckpoint", err)
	}
	if !strings.Contains(logs(), "ranks") {
		t.Errorf("skip reason should mention ranks, got: %s", logs())
	}
}

func TestTransientFailureRetried(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	fails := 2
	ffs.OnRename = func(oldpath, newpath string) error {
		if fails > 0 && strings.Contains(oldpath, "shard") {
			fails--
			return errors.New("injected transient rename failure")
		}
		return nil
	}
	logf, logs := testLogf()
	ckCfg := Config{Dir: dir, Sim: testSimConfig(), FS: ffs, Backoff: 1, Logf: logf}
	writeCheckpoints(t, ckCfg, 1, 1) // panics (fails the test) if Write errors
	if fails != 0 {
		t.Fatalf("injected failures not consumed: %d left", fails)
	}
	if !strings.Contains(logs(), "attempt") {
		t.Errorf("retries should be logged, got: %s", logs())
	}
	if _, m, err := Latest(Config{Dir: dir, Sim: testSimConfig()}, 2); err != nil || m.Step != 1 {
		t.Fatalf("checkpoint not valid after retried write: %v", err)
	}
}

func TestPersistentFailureFailsAllRanks(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	ffs.OnSync = func(path string) error {
		if strings.Contains(path, shardName(1)) {
			return errors.New("injected persistent sync failure")
		}
		return nil
	}
	parts := makeParticles(3, 80, 0)
	cfg := testSimConfig()
	ckCfg := Config{Dir: dir, Sim: cfg, FS: ffs, Retries: 1, Backoff: 1}
	var errs [2]error
	err := mpi.Run(2, func(c *mpi.Comm) {
		s, err := sim.New(c, cfg, sliceFor(parts, c.Rank(), 2))
		if err != nil {
			panic(err)
		}
		if err := s.Step(); err != nil {
			panic(err)
		}
		_, errs[c.Rank()] = Write(c, ckCfg, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	// The failure was on rank 1's shard only, but the collective contract
	// says every rank must see the checkpoint as not committed.
	for rank, werr := range errs {
		if werr == nil {
			t.Errorf("rank %d: Write succeeded despite failed shard", rank)
		} else if !strings.Contains(werr.Error(), "not committed") {
			t.Errorf("rank %d: %v", rank, werr)
		}
	}
	if _, _, err := Latest(Config{Dir: dir, Sim: cfg}, 2); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("failed checkpoint should not validate: %v", err)
	}
}

func TestTornShardWriteNeverCommits(t *testing.T) {
	// A write that lands only partially (torn) must either be retried to
	// success or leave the checkpoint uncommitted — never a manifest pointing
	// at a short shard.
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	ffs.OnWrite = func(path string, written int64, p []byte) (int, error) {
		if strings.Contains(path, shardName(0)) && written == 0 && len(p) > 16 {
			return len(p) / 2, errors.New("injected torn write")
		}
		return len(p), nil
	}
	parts := makeParticles(4, 80, 0)
	cfg := testSimConfig()
	ckCfg := Config{Dir: dir, Sim: cfg, FS: ffs, Retries: 1, Backoff: 1}
	var errs [2]error
	err := mpi.Run(2, func(c *mpi.Comm) {
		s, err := sim.New(c, cfg, sliceFor(parts, c.Rank(), 2))
		if err != nil {
			panic(err)
		}
		if err := s.Step(); err != nil {
			panic(err)
		}
		_, errs[c.Rank()] = Write(c, ckCfg, s)
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, werr := range errs {
		if werr == nil {
			t.Errorf("rank %d: torn shard write committed", rank)
		}
	}
	if _, _, err := Latest(Config{Dir: dir, Sim: cfg}, 2); !errors.Is(err, ErrNoCheckpoint) {
		t.Errorf("torn checkpoint should not validate: %v", err)
	}
}
