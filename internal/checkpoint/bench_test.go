package checkpoint

import (
	"fmt"
	"testing"

	"greem/internal/mpi"
	"greem/internal/sim"
)

// BenchmarkCheckpointWrite measures one full collective checkpoint commit
// (shard serialization + CRC + atomic write + manifest) for a 2-rank world,
// per particle count. The per-step overhead budget in EXPERIMENTS.md comes
// from relating this to the measured step time.
func BenchmarkCheckpointWrite(b *testing.B) {
	for _, n := range []int{10_000, 100_000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			cfg := testSimConfig()
			dir := b.TempDir()
			parts := makeParticles(5, n, 0.05)
			err := mpi.Run(2, func(c *mpi.Comm) {
				s, err := sim.New(c, cfg, sliceFor(parts, c.Rank(), 2))
				if err != nil {
					panic(err)
				}
				if err := s.Step(); err != nil {
					panic(err)
				}
				ckCfg := Config{Dir: dir, Sim: cfg, Keep: 2}
				c.Barrier()
				if c.Rank() == 0 {
					b.ResetTimer()
				}
				for i := 0; i < b.N; i++ {
					if _, err := Write(c, ckCfg, s); err != nil {
						panic(err)
					}
				}
			})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(n * 64))
		})
	}
}
