package checkpoint

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"greem/internal/mpi"
	"greem/internal/sim"
)

// The crash-restart determinism suite: a run killed mid-step (or mid-
// checkpoint-write) and resumed from its last valid checkpoint must land on
// exactly (==) the particle state of a run that was never interrupted.
// DeterministicCost makes the load balancer's cost inputs reproducible, so
// this holds bit for bit at any worker count.

const (
	rsRanks = 2
	rsSteps = 6
	rsEvery = 2 // checkpoint every 2 steps → ckpt_2, ckpt_4, ckpt_6
)

func restartConfig(workers int) sim.Config {
	cfg := testSimConfig()
	cfg.Workers = workers
	return cfg
}

// runToEnd runs the full rsSteps uninterrupted (no checkpointing) and
// returns the final particle set sorted by ID.
func runToEnd(t *testing.T, cfg sim.Config, parts []sim.Particle) []sim.Particle {
	t.Helper()
	var final []sim.Particle
	err := mpi.Run(rsRanks, func(c *mpi.Comm) {
		s, err := sim.New(c, cfg, sliceFor(parts, c.Rank(), rsRanks))
		if err != nil {
			panic(err)
		}
		for i := 0; i < rsSteps; i++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
		}
		all := s.GatherAll(0)
		if c.Rank() == 0 {
			final = byID(all)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return final
}

// runUntilKilled runs the checkpointing loop under the given kill hook until
// the world aborts; the returned error must satisfy mpi.IsAborted.
func runUntilKilled(t *testing.T, cfg sim.Config, ckCfg Config, parts []sim.Particle, hook mpi.KillHook) {
	t.Helper()
	err := mpi.RunWithKillHook(rsRanks, hook, func(c *mpi.Comm) {
		s, err := sim.New(c, cfg, sliceFor(parts, c.Rank(), rsRanks))
		if err != nil {
			panic(err)
		}
		for s.StepIndex() < rsSteps {
			if err := s.Step(); err != nil {
				panic(err)
			}
			if s.StepIndex()%rsEvery == 0 {
				if _, err := Write(c, ckCfg, s); err != nil {
					panic(err)
				}
			}
		}
	})
	if err == nil {
		t.Fatal("interrupted run finished cleanly — kill hook never fired")
	}
	if !mpi.IsAborted(err) {
		t.Fatalf("world died of something other than the injected kill: %v", err)
	}
}

// resumeToEnd restores from the newest valid checkpoint, checks it resumed
// at wantStep, finishes the run (checkpointing as the original did), and
// returns the final particle set sorted by ID.
func resumeToEnd(t *testing.T, cfg sim.Config, ckCfg Config, wantStep int) []sim.Particle {
	t.Helper()
	var final []sim.Particle
	err := mpi.Run(rsRanks, func(c *mpi.Comm) {
		s, err := Restore(c, ckCfg)
		if err != nil {
			panic(err)
		}
		if s.StepIndex() != wantStep {
			t.Errorf("resumed at step %d, want %d", s.StepIndex(), wantStep)
		}
		for s.StepIndex() < rsSteps {
			if err := s.Step(); err != nil {
				panic(err)
			}
			if s.StepIndex()%rsEvery == 0 {
				if _, err := Write(c, ckCfg, s); err != nil {
					panic(err)
				}
			}
		}
		all := s.GatherAll(0)
		if c.Rank() == 0 {
			final = byID(all)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return final
}

func requireIdentical(t *testing.T, want, got []sim.Particle, scenario string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d particles, want %d", scenario, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: particle ID %d differs after resume:\n  uninterrupted %+v\n  resumed       %+v",
				scenario, want[i].ID, want[i], got[i])
		}
	}
}

// killRank1MidKick fires at rank 1's first velocity kick of the step after
// killStep completed steps — mid-integration, forces already applied.
func killRank1MidKick(afterSteps int) mpi.KillHook {
	var mu sync.Mutex
	steps, fired := 0, false
	return func(rank int, point string) bool {
		if rank != 1 {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		if point == "sim/step" {
			steps++
		}
		if !fired && point == "sim/kick" && steps == afterSteps+1 {
			fired = true
			return true
		}
		return false
	}
}

// killRank1AtOverlapJoin fires at rank 1's overlap-join point of the step
// after afterSteps completed steps — the PM solve is in flight on the
// duplicated communicator's background goroutine when the rank dies, so the
// abort must also unblock and drain that goroutine's collectives.
func killRank1AtOverlapJoin(afterSteps int) mpi.KillHook {
	var mu sync.Mutex
	steps, fired := 0, false
	return func(rank int, point string) bool {
		if rank != 1 {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		if point == "sim/step" {
			steps++
		}
		if !fired && point == "overlap/join" && steps == afterSteps+1 {
			fired = true
			return true
		}
		return false
	}
}

// killRank1NthShardWrite fires between rank 1's n-th checkpoint shard hitting
// the temp file and its rename — the shard is fully on disk but the
// checkpoint is not committed.
func killRank1NthShardWrite(n int) mpi.KillHook {
	var mu sync.Mutex
	writes := 0
	return func(rank int, point string) bool {
		if rank != 1 || point != "ckpt/shard-write" {
			return false
		}
		mu.Lock()
		defer mu.Unlock()
		writes++
		return writes == n
	}
}

func TestCrashRestartBitIdentical(t *testing.T) {
	for _, workers := range []int{1, 7} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			cfg := restartConfig(workers)
			parts := makeParticles(21, 200, 0.05)
			want := runToEnd(t, cfg, parts)

			t.Run("kill-mid-kick", func(t *testing.T) {
				logf, logs := testLogf()
				ckCfg := Config{Dir: t.TempDir(), Sim: cfg, Logf: logf}
				// Rank 1 dies mid-step-5; checkpoints at steps 2 and 4 are
				// committed, so the run resumes at 4.
				runUntilKilled(t, cfg, ckCfg, parts, killRank1MidKick(4))
				got := resumeToEnd(t, cfg, ckCfg, 4)
				requireIdentical(t, want, got, "kill mid-kick")
				if err := ValidateChain(ckCfg); err != nil {
					t.Errorf("chain after resume: %v (logs: %s)", err, logs())
				}
			})

			t.Run("kill-mid-checkpoint-write", func(t *testing.T) {
				logf, logs := testLogf()
				ckCfg := Config{Dir: t.TempDir(), Sim: cfg, Logf: logf}
				// Rank 1 dies during the *second* checkpoint (step 4), after
				// writing its shard temp file but before committing it: the
				// step-4 directory must be skipped as uncommitted and the run
				// resumes from step 2.
				runUntilKilled(t, cfg, ckCfg, parts, killRank1NthShardWrite(2))
				got := resumeToEnd(t, cfg, ckCfg, 2)
				requireIdentical(t, want, got, "kill mid-checkpoint-write")
				if !strings.Contains(logs(), dirName(4)) {
					t.Errorf("partial %s should be skipped with a logged reason; logs: %s", dirName(4), logs())
				}
			})
		})
	}
}

// TestCrashRestartOverlapJoin kills rank 1 at the overlapped pipeline's join
// point — a PM solve in flight on the dup-comm background goroutine — and
// requires the resumed run (which itself overlaps) to land bit-identically on
// both the uninterrupted overlapped run and the uninterrupted sequential run:
// the overlap knob must leave no footprint in the checkpoint contract.
func TestCrashRestartOverlapJoin(t *testing.T) {
	parts := makeParticles(23, 200, 0.05)
	seq := restartConfig(1)
	want := runToEnd(t, seq, parts)

	ovl := seq
	ovl.OverlapPMPP = true
	wantOvl := runToEnd(t, ovl, parts)
	requireIdentical(t, want, wantOvl, "uninterrupted overlap vs sequential")

	ckCfg := Config{Dir: t.TempDir(), Sim: ovl}
	// Rank 1 dies at step 5's join with the solve in flight; checkpoints at
	// steps 2 and 4 are committed, so the run resumes at 4 (and re-enters the
	// overlapped pipeline on its first resumed step).
	runUntilKilled(t, ovl, ckCfg, parts, killRank1AtOverlapJoin(4))
	got := resumeToEnd(t, ovl, ckCfg, 4)
	requireIdentical(t, want, got, "kill at overlap join")
	if err := ValidateChain(ckCfg); err != nil {
		t.Errorf("chain after resume: %v", err)
	}
}

// TestRestartAcrossWorkerCounts: a checkpoint written by a serial run resumes
// bit-identically under a threaded one — worker count is explicitly outside
// the configuration fingerprint.
func TestRestartAcrossWorkerCounts(t *testing.T) {
	parts := makeParticles(22, 200, 0.05)
	serial := restartConfig(1)
	want := runToEnd(t, serial, parts)

	ckCfg := Config{Dir: t.TempDir(), Sim: serial}
	runUntilKilled(t, serial, ckCfg, parts, killRank1MidKick(4))

	threaded := restartConfig(7)
	got := resumeToEnd(t, threaded, Config{Dir: ckCfg.Dir, Sim: threaded}, 4)
	requireIdentical(t, want, got, "serial checkpoint, threaded resume")
}
