package checkpoint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"greem/internal/sim"
)

// Manifest is the commit record of one checkpoint: a checkpoint exists iff
// its manifest is fully present and self-consistent, so the atomic rename of
// the manifest file is the commit point for the whole per-rank shard set.
// Manifests are hash-chained: each carries the SHA-256 of its predecessor's
// canonical (JSON) bytes, making silent history rewrites detectable as long
// as any later manifest survives.
type Manifest struct {
	Format     int     `json:"format"`
	Step       uint64  `json:"step"`
	Time       float64 `json:"time"`
	Ranks      int     `json:"ranks"`
	ConfigHash string  `json:"config_hash"` // Fingerprint of the sim.Config
	PrevHash   string  `json:"prev_hash"`   // SHA-256 of the previous manifest's JSON; "" for the first
	Shards     []Shard `json:"shards"`
	// Geo is the domain decomposition at the checkpointed step
	// (domain.Geometry.EncodeFlat); History is rank 0's geometry smoothing
	// window. encoding/json round-trips float64 exactly (shortest form).
	Geo     []float64   `json:"geo"`
	History [][]float64 `json:"history,omitempty"`
}

// Shard records one rank's particle file plus the scalar integrator state
// that rides in the manifest rather than the shard (the shard file itself is
// a plain verifiable snapshot, so existing tooling can read it).
type Shard struct {
	Rank       int     `json:"rank"`
	File       string  `json:"file"`
	Bytes      int64   `json:"bytes"`
	CRC32C     uint32  `json:"crc32c"`
	N          uint64  `json:"n"`
	RNG        uint64  `json:"rng"`
	LastCost   float64 `json:"last_cost"`
	LastPMCost float64 `json:"last_pm_cost"`
}

// manifestFormat is the current manifest format number.
const manifestFormat = 1

// manifestMagic frames manifest files ("GRMMANI1"): magic, uint32 payload
// length, JSON payload, uint32 CRC32C of the payload. The frame makes torn
// or bit-flipped manifests detectable without trusting the JSON parser.
var manifestMagic = [8]byte{'G', 'R', 'M', 'M', 'A', 'N', 'I', '1'}

// maxManifestBytes caps the framed length field so a corrupt header cannot
// demand an OOM-sized allocation (a manifest is a few KB of JSON plus the
// geometry planes; 64 MiB is orders of magnitude of headroom).
const maxManifestBytes = 64 << 20

// encodeManifest frames m for disk and returns (frame, payload): the payload
// bytes are what the next checkpoint's PrevHash chains over.
func encodeManifest(m *Manifest) (frame, payload []byte, err error) {
	payload, err = json.Marshal(m)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: marshal manifest: %w", err)
	}
	return FrameRecord(manifestMagic, payload), payload, nil
}

// decodeManifest parses and verifies a framed manifest file, returning the
// manifest and its canonical payload bytes (for hash chaining).
func decodeManifest(b []byte) (*Manifest, []byte, error) {
	payload, err := UnframeRecord(manifestMagic, maxManifestBytes, b)
	if err != nil {
		return nil, nil, fmt.Errorf("checkpoint: manifest: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(payload, &m); err != nil {
		return nil, nil, fmt.Errorf("checkpoint: manifest JSON: %w", err)
	}
	if m.Format != manifestFormat {
		return nil, nil, fmt.Errorf("checkpoint: unsupported manifest format %d", m.Format)
	}
	// The payload slice aliases b; copy so callers can hold it.
	return &m, append([]byte(nil), payload...), nil
}

// manifestHash is the chain link: SHA-256 over the canonical payload bytes.
func manifestHash(payload []byte) string {
	h := sha256.Sum256(payload)
	return hex.EncodeToString(h[:])
}

// Fingerprint is the RNG-free configuration fingerprint stored in every
// manifest: it covers exactly the sim.Config fields that shape the
// trajectory, and deliberately excludes Workers (results are bit-identical
// at any worker count), Time (it advances), and the Recorder (observability
// never feeds back). A resume under a different fingerprint is refused —
// restarting a run with, say, a different opening angle would silently
// change the physics.
func Fingerprint(cfg sim.Config) string {
	s := fmt.Sprintf(
		"v3 L=%v G=%v NMesh=%d NFFT=%d Relay=%v Groups=%d Pencil=%v PY=%d PZ=%d Rcut=%v Theta=%v Ni=%d Eps2=%v LeafCap=%d FastKernel=%v F32=%v LET=%v Grid=%v SampleTotal=%d SmoothSteps=%d DT=%v Substeps=%d DetCost=%v Stepper=%+v",
		cfg.L, cfg.G, cfg.NMesh, cfg.NFFT, cfg.Relay, cfg.Groups, cfg.Pencil, cfg.PY, cfg.PZ,
		cfg.Rcut, cfg.Theta, cfg.Ni, cfg.Eps2, cfg.LeafCap, cfg.FastKernel, cfg.Float32Kernel, cfg.LETExchange, cfg.Grid,
		cfg.SampleTotal, cfg.SmoothSteps, cfg.DT, cfg.Substeps, cfg.DeterministicCost, cfg.Stepper,
	)
	h := sha256.Sum256([]byte(s))
	return hex.EncodeToString(h[:])
}
