package checkpoint

import (
	"io"
	"io/fs"
	"os"
	"sync"
)

// File is the writable handle the checkpoint writer needs: stream, fsync,
// close. Kept minimal so fault-injecting implementations stay small.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations checkpointing uses, so tests can
// inject torn writes, failed renames and transient errors without touching
// a real disk's failure modes. The production implementation is OS.
type FS interface {
	MkdirAll(path string, perm fs.FileMode) error
	Create(path string) (File, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	RemoveAll(path string) error
	ReadDir(path string) ([]fs.DirEntry, error)
	ReadFile(path string) ([]byte, error)
	Stat(path string) (fs.FileInfo, error)
}

// OS is the real filesystem.
var OS FS = osFS{}

type osFS struct{}

func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Create(path string) (File, error)             { return os.Create(path) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                     { return os.Remove(path) }
func (osFS) RemoveAll(path string) error                  { return os.RemoveAll(path) }
func (osFS) ReadDir(path string) ([]fs.DirEntry, error)   { return os.ReadDir(path) }
func (osFS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (osFS) Stat(path string) (fs.FileInfo, error)        { return os.Stat(path) }

// FaultFS wraps a base FS with injectable failures. Each On* hook, when
// non-nil, is consulted before the corresponding operation; returning an
// error makes the operation fail without touching the base FS (except
// OnWrite, which can model a *torn* write — see its contract). Hooks are
// called under an internal mutex, so stateful hooks ("fail the first two
// renames") need no locking of their own.
type FaultFS struct {
	Base FS

	mu       sync.Mutex
	OnCreate func(path string) error
	// OnWrite is consulted per Write call with the path, the bytes already
	// written to that file, and the chunk about to be written. It returns
	// how many bytes of the chunk to actually write and an error to report
	// afterwards: (len(p), nil) passes through, (k, err) with k < len(p)
	// models a torn write — k bytes land on disk, then the writer sees err.
	OnWrite  func(path string, written int64, p []byte) (int, error)
	OnSync   func(path string) error
	OnRename func(oldpath, newpath string) error
}

// NewFaultFS wraps base (nil ⇒ OS) with no failures installed; set the
// hooks before handing it to checkpoint code.
func NewFaultFS(base FS) *FaultFS {
	if base == nil {
		base = OS
	}
	return &FaultFS{Base: base}
}

func (f *FaultFS) MkdirAll(path string, perm fs.FileMode) error { return f.Base.MkdirAll(path, perm) }

func (f *FaultFS) Create(path string) (File, error) {
	f.mu.Lock()
	var herr error
	if f.OnCreate != nil {
		herr = f.OnCreate(path)
	}
	f.mu.Unlock()
	if herr != nil {
		return nil, herr
	}
	base, err := f.Base.Create(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, path: path, f: base}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	f.mu.Lock()
	var herr error
	if f.OnRename != nil {
		herr = f.OnRename(oldpath, newpath)
	}
	f.mu.Unlock()
	if herr != nil {
		return herr
	}
	return f.Base.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(path string) error                   { return f.Base.Remove(path) }
func (f *FaultFS) RemoveAll(path string) error                { return f.Base.RemoveAll(path) }
func (f *FaultFS) ReadDir(path string) ([]fs.DirEntry, error) { return f.Base.ReadDir(path) }
func (f *FaultFS) ReadFile(path string) ([]byte, error)       { return f.Base.ReadFile(path) }
func (f *FaultFS) Stat(path string) (fs.FileInfo, error)      { return f.Base.Stat(path) }

type faultFile struct {
	fs      *FaultFS
	path    string
	f       File
	written int64
}

func (w *faultFile) Write(p []byte) (int, error) {
	allow, ferr := len(p), error(nil)
	w.fs.mu.Lock()
	if w.fs.OnWrite != nil {
		allow, ferr = w.fs.OnWrite(w.path, w.written, p)
		if allow > len(p) {
			allow = len(p)
		}
		if allow < 0 {
			allow = 0
		}
	}
	w.fs.mu.Unlock()
	n, err := w.f.Write(p[:allow])
	w.written += int64(n)
	if err != nil {
		return n, err
	}
	if ferr != nil {
		return n, ferr
	}
	if n < len(p) {
		return n, io.ErrShortWrite
	}
	return n, nil
}

func (w *faultFile) Sync() error {
	w.fs.mu.Lock()
	var herr error
	if w.fs.OnSync != nil {
		herr = w.fs.OnSync(w.path)
	}
	w.fs.mu.Unlock()
	if herr != nil {
		return herr
	}
	return w.f.Sync()
}

func (w *faultFile) Close() error { return w.f.Close() }
