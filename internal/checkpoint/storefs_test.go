package checkpoint

import (
	"errors"
	"testing"

	"greem/internal/mpi"
	"greem/internal/sim"
	"greem/internal/store"
)

// runAndCheckpoint runs a small deterministic 2-rank simulation, writing a
// checkpoint every step through the given FS, and returns the final
// particle state (rank-major, ID-sorted).
func runAndCheckpoint(t *testing.T, fsys FS, dir string, steps int) []sim.Particle {
	t.Helper()
	cfg := testSimConfig()
	parts := makeParticles(7, 160, 0.05)
	ckCfg := Config{Dir: dir, Sim: cfg, FS: fsys}
	var final []sim.Particle
	err := mpi.Run(2, func(c *mpi.Comm) {
		s, err := sim.New(c, cfg, sliceFor(parts, c.Rank(), 2))
		if err != nil {
			panic(err)
		}
		for i := 0; i < steps; i++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
			if _, err := Write(c, ckCfg, s); err != nil {
				panic(err)
			}
		}
		all := s.GatherAll(0)
		if c.Rank() == 0 {
			final = byID(all)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return final
}

// TestStoreFSWriteRestore drives the full checkpoint plane through a
// content-addressed store instead of a real filesystem: write, validate,
// chain-check, restore, and confirm the restored trajectory matches.
func TestStoreFSWriteRestore(t *testing.T) {
	st := store.NewMem()
	fsys := StoreFS(st)
	const dir = "runs/job1/ckpt"
	final := runAndCheckpoint(t, fsys, dir, 3)

	cfg := testSimConfig()
	ckCfg := Config{Dir: dir, Sim: cfg, FS: fsys}
	if err := ValidateChain(ckCfg); err != nil {
		t.Fatalf("chain through store: %v", err)
	}
	steps, err := Audit(ckCfg, 2)
	if err != nil {
		t.Fatalf("audit: %v", err)
	}
	if len(steps) != 3 || steps[0] != 1 || steps[2] != 3 {
		t.Fatalf("audited steps %v, want [1 2 3]", steps)
	}
	// Every blob in the store must hash to its ref.
	if n, err := store.VerifyNamed(st, dir+"/"); err != nil || n == 0 {
		t.Fatalf("store verify: %d blobs, err %v", n, err)
	}

	// Restore from the store and run to the same endpoint as a fresh run
	// that never stopped.
	var resumed []sim.Particle
	err = mpi.Run(2, func(c *mpi.Comm) {
		s, err := Restore(c, ckCfg)
		if err != nil {
			panic(err)
		}
		all := s.GatherAll(0)
		if c.Rank() == 0 {
			resumed = byID(all)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(resumed) != len(final) {
		t.Fatalf("resumed %d particles, want %d", len(resumed), len(final))
	}
	for i := range resumed {
		if resumed[i] != final[i] {
			t.Fatalf("particle %d differs after store restore:\n got %+v\nwant %+v", i, resumed[i], final[i])
		}
	}
}

// TestStoreFSAuditRejectsFlippedBit is the acceptance property of the
// integrity endpoint: one flipped bit in any stored checkpoint blob must
// fail the audit (via the manifest CRC accounting) and the store-level
// re-hash (ref no longer matches content).
func TestStoreFSAuditRejectsFlippedBit(t *testing.T) {
	st := store.NewMem()
	fsys := StoreFS(st)
	const dir = "runs/job1/ckpt"
	runAndCheckpoint(t, fsys, dir, 2)

	ckCfg := Config{Dir: dir, Sim: testSimConfig(), FS: fsys}
	if _, err := Audit(ckCfg, 2); err != nil {
		t.Fatalf("untampered audit: %v", err)
	}

	ref, err := st.Resolve(dir + "/ckpt_00000001/shard_0000.bin")
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Mutate(ref, func(b []byte) { b[100] ^= 0x01 }); err != nil {
		t.Fatal(err)
	}
	if _, err := Audit(ckCfg, 2); err == nil {
		t.Fatal("audit accepted a flipped bit in a shard blob")
	}
	if _, err := store.VerifyNamed(st, dir+"/"); err == nil {
		t.Fatal("store verify accepted a flipped bit")
	}
}

// TestStoreFSAuditStrictOnMissingManifest: unlike Latest (which skips),
// Audit must fail when a checkpoint directory has shards but no manifest.
func TestStoreFSAuditStrictOnMissingManifest(t *testing.T) {
	st := store.NewMem()
	fsys := StoreFS(st)
	const dir = "runs/job1/ckpt"
	runAndCheckpoint(t, fsys, dir, 2)

	if err := fsys.Remove(dir + "/ckpt_00000002/MANIFEST"); err != nil {
		t.Fatal(err)
	}
	if _, err := Audit(Config{Dir: dir, Sim: testSimConfig(), FS: fsys}, 2); err == nil {
		t.Fatal("audit accepted a checkpoint with a missing manifest")
	}
}

// TestStoreFSPrune: Keep through the store adapter removes the oldest
// links, and the surviving manifests still chain.
func TestStoreFSPrune(t *testing.T) {
	st := store.NewMem()
	fsys := StoreFS(st)
	const dir = "runs/job1/ckpt"
	cfg := testSimConfig()
	parts := makeParticles(9, 120, 0.05)
	ckCfg := Config{Dir: dir, Sim: cfg, FS: fsys, Keep: 2}
	err := mpi.Run(2, func(c *mpi.Comm) {
		s, err := sim.New(c, cfg, sliceFor(parts, c.Rank(), 2))
		if err != nil {
			panic(err)
		}
		for i := 0; i < 4; i++ {
			if err := s.Step(); err != nil {
				panic(err)
			}
			if _, err := Write(c, ckCfg, s); err != nil {
				panic(err)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	steps, err := Audit(ckCfg, 2)
	if err != nil {
		t.Fatalf("audit after prune: %v", err)
	}
	if len(steps) != 2 || steps[0] != 3 || steps[1] != 4 {
		t.Fatalf("surviving steps %v, want [3 4]", steps)
	}
	if names, _ := st.List(dir + "/ckpt_00000001/"); len(names) != 0 {
		t.Fatalf("pruned checkpoint still linked: %v", names)
	}
}

func TestAuditNoCheckpoints(t *testing.T) {
	st := store.NewMem()
	if _, err := Audit(Config{Dir: "runs/none/ckpt", Sim: testSimConfig(), FS: StoreFS(st)}, 2); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", err)
	}
}
