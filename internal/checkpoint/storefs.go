package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"io/fs"
	"path"
	"sort"
	"strings"
	"time"

	"greem/internal/store"
)

// StoreFS adapts a content-addressed store.Store to the FS interface the
// checkpoint writer and reader use, so checkpoints write through the
// service plane's blob store instead of bare files: shard and manifest
// bytes become immutable content-addressed blobs, and the checkpoint's
// file names become mutable links onto them. The temp-write + rename
// protocol the writer already speaks maps onto link operations (Create
// buffers in memory; Close commits the blob under the temp name; Rename
// relinks), so the manifest-rename commit point and every fault-injection
// test above this layer keep their meaning.
//
// Two integrity layers stack: the manifest's CRC32C/size accounting and
// SHA-256 hash chain (semantic: "these are the shards this run wrote"),
// and the store's ref-equals-hash invariant (physical: "these bytes are
// the ones some writer stored"). The run-integrity endpoint in
// internal/serve re-walks both.
func StoreFS(st store.Store) FS { return &storeFS{st: st} }

type storeFS struct{ st store.Store }

// norm maps the slash paths the checkpoint layer builds with filepath.Join
// onto store names.
func norm(p string) string { return path.Clean(strings.TrimPrefix(p, "./")) }

func (s *storeFS) MkdirAll(string, fs.FileMode) error { return nil }

func (s *storeFS) Create(p string) (File, error) {
	return &storeFile{fs: s, name: norm(p)}, nil
}

func (s *storeFS) Rename(oldpath, newpath string) error {
	ref, err := s.st.Resolve(norm(oldpath))
	if err != nil {
		return err
	}
	if err := s.st.Link(norm(newpath), ref); err != nil {
		return err
	}
	return s.st.Unlink(norm(oldpath))
}

func (s *storeFS) Remove(p string) error { return s.st.Unlink(norm(p)) }

func (s *storeFS) RemoveAll(p string) error {
	names, err := s.st.List(norm(p) + "/")
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := s.st.Unlink(name); err != nil && !errors.Is(err, store.ErrNotFound) {
			return err
		}
	}
	return nil
}

// ReadDir lists the immediate children of p: deeper-nested names appear as
// synthetic directories (a store has no directories of its own, but the
// checkpoint scanner expects ckpt_<step> to look like one).
func (s *storeFS) ReadDir(p string) ([]fs.DirEntry, error) {
	prefix := norm(p) + "/"
	names, err := s.st.List(prefix)
	if err != nil {
		return nil, err
	}
	children := make(map[string]bool) // name → is directory
	for _, name := range names {
		rest := strings.TrimPrefix(name, prefix)
		if i := strings.IndexByte(rest, '/'); i >= 0 {
			children[rest[:i]] = true
		} else if !children[rest] {
			children[rest] = false
		}
	}
	out := make([]fs.DirEntry, 0, len(children))
	for name, isDir := range children {
		out = append(out, storeDirEntry{name: name, dir: isDir})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

func (s *storeFS) ReadFile(p string) ([]byte, error) {
	ref, err := s.st.Resolve(norm(p))
	if err != nil {
		return nil, err
	}
	return s.st.Get(ref)
}

func (s *storeFS) Stat(p string) (fs.FileInfo, error) {
	b, err := s.ReadFile(p)
	if err != nil {
		return nil, err
	}
	return storeFileInfo{name: path.Base(norm(p)), size: int64(len(b))}, nil
}

// storeFile buffers writes and commits them as one content-addressed blob
// on Close. Sync is a no-op: durability is the backing store's rename
// discipline, and the commit point above this layer is the manifest link.
type storeFile struct {
	fs   *storeFS
	name string
	buf  bytes.Buffer
}

func (f *storeFile) Write(p []byte) (int, error) { return f.buf.Write(p) }
func (f *storeFile) Sync() error                 { return nil }

func (f *storeFile) Close() error {
	_, err := f.fs.st.PutNamed(f.name, f.buf.Bytes())
	return err
}

type storeDirEntry struct {
	name string
	dir  bool
}

func (e storeDirEntry) Name() string { return e.name }
func (e storeDirEntry) IsDir() bool  { return e.dir }
func (e storeDirEntry) Type() fs.FileMode {
	if e.dir {
		return fs.ModeDir
	}
	return 0
}
func (e storeDirEntry) Info() (fs.FileInfo, error) {
	return nil, fmt.Errorf("checkpoint: store entries carry no FileInfo")
}

type storeFileInfo struct {
	name string
	size int64
}

func (i storeFileInfo) Name() string       { return i.name }
func (i storeFileInfo) Size() int64        { return i.size }
func (i storeFileInfo) Mode() fs.FileMode  { return 0o644 }
func (i storeFileInfo) ModTime() time.Time { return time.Time{} }
func (i storeFileInfo) IsDir() bool        { return false }
func (i storeFileInfo) Sys() any           { return nil }
