// Package checkpoint implements crash-safe, CRC-verified, per-rank-sharded
// checkpoint/restart for the distributed simulation — the operability layer
// a multi-day production run needs (the paper's trillion-body run occupies
// 82,944 nodes for days; at that scale interrupted runs are routine and the
// GreeM lineage survives them by resuming from periodic snapshots).
//
// # Layout and atomicity argument
//
// A checkpoint at step k is a directory <dir>/ckpt_<k>/ holding one particle
// shard per rank (shard_<rank>.bin — a plain verifiable snapshot file, so
// existing tooling can read it) plus a MANIFEST. Every file is written to a
// temp name and renamed into place, so no file is ever visible half-written;
// the manifest is written last, by rank 0, after every shard has been
// gathered and accounted, so the *manifest rename is the commit point*: a
// checkpoint with a valid manifest has every shard present with matching
// size and CRC32C, and a crash at any earlier moment leaves a directory
// without a (valid) manifest, which Latest skips with a logged reason.
// Manifests are hash-chained (each carries the SHA-256 of its predecessor's
// canonical bytes), so a silently rewritten or swapped-out checkpoint breaks
// the chain of every later one.
//
// # Bit-identical restart
//
// The shard plus manifest capture everything that feeds back into the
// trajectory: particles in local storage order, the decomposition and its
// smoothing history, the sampling-RNG state and the cost-sampling inputs.
// With sim.Config.DeterministicCost set, a run interrupted at step k and
// resumed from the last checkpoint produces exactly (==) the particle state
// an uninterrupted run produces; without it the cost sampling follows
// measured wall-clock (the paper's method) and restart is exact only up to
// the decomposition's timing sensitivity.
package checkpoint

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"greem/internal/domain"
	"greem/internal/mpi"
	"greem/internal/sim"
	"greem/internal/snapshot"
	"greem/internal/telemetry"
)

// Metric names for the checkpoint plane (per-rank registries).
const (
	// MetricBytes counts bytes committed to checkpoint files (shards on
	// every rank, the manifest on rank 0).
	MetricBytes = "greem_checkpoint_bytes_total"
	// MetricFailures counts failed write attempts (transient, retried ones
	// included), so operators can spot a flaky filesystem before it eats a
	// checkpoint window.
	MetricFailures = "greem_checkpoint_failures_total"
)

// ErrNoCheckpoint reports that the checkpoint directory holds no checkpoint
// that is fully valid for the given configuration and rank count.
var ErrNoCheckpoint = errors.New("checkpoint: no valid checkpoint found")

// castagnoli is the CRC32C table shared by shard and manifest checksums.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Config parameterizes the checkpoint plane of one rank.
type Config struct {
	// Dir is the checkpoint root; each checkpoint is a ckpt_<step>
	// subdirectory of it.
	Dir string
	// Sim is the simulation configuration: fingerprinted into every
	// manifest (a resume under a different physics configuration is
	// refused) and the source of the shard headers' L and G. Must be the
	// same configuration on every rank, except for the per-rank Recorder.
	Sim sim.Config
	// FS abstracts the filesystem; nil ⇒ the real one. Tests inject
	// FaultFS to model torn writes and transient failures.
	FS FS
	// Retries bounds the write attempts per file (0 ⇒ 3); Backoff is the
	// initial retry delay, doubling per attempt (0 ⇒ 5ms).
	Retries int
	Backoff time.Duration
	// Keep prunes all but the newest Keep committed checkpoints after each
	// successful write (0 ⇒ keep everything). Pruning removes the oldest
	// first, so the surviving manifests remain a contiguous chain suffix.
	Keep int
	// Recorder, when non-nil, receives the ckpt/write and ckpt/verify
	// phase timers plus the byte and failure counters.
	Recorder *telemetry.Recorder
	// Logf receives skip/degrade diagnostics ("skipping ckpt_00000004:
	// shard 1: CRC mismatch"); nil discards them.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.FS == nil {
		c.FS = OS
	}
	if c.Retries == 0 {
		c.Retries = 3
	}
	if c.Backoff == 0 {
		c.Backoff = 5 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

func dirName(step uint64) string { return fmt.Sprintf("ckpt_%08d", step) }
func shardName(rank int) string  { return fmt.Sprintf("shard_%04d.bin", rank) }

const manifestName = "MANIFEST"

// writeFileAtomic writes data to path via temp-file + rename, with bounded
// retry/backoff around transient failures. Between the completed temp write
// and the rename it passes the named mpi fault point, so tests can kill a
// rank at the most interesting instant: payload fully on disk, commit not
// yet visible.
func writeFileAtomic(c *mpi.Comm, cfg Config, failures *telemetry.Counter, path string, data []byte, faultPoint string) error {
	tmp := path + ".tmp"
	var err error
	for attempt := 0; attempt <= cfg.Retries; attempt++ {
		if attempt > 0 {
			time.Sleep(cfg.Backoff << min(attempt-1, 6))
		}
		err = func() error {
			f, cerr := cfg.FS.Create(tmp)
			if cerr != nil {
				return cerr
			}
			if _, werr := f.Write(data); werr != nil {
				f.Close()
				return werr
			}
			if serr := f.Sync(); serr != nil {
				f.Close()
				return serr
			}
			return f.Close()
		}()
		if err == nil {
			c.FaultPoint(faultPoint)
			err = cfg.FS.Rename(tmp, path)
			if err == nil {
				return nil
			}
		}
		cfg.FS.Remove(tmp)
		if failures != nil {
			failures.Add(1)
		}
		cfg.Logf("checkpoint: write %s attempt %d/%d failed: %v", path, attempt+1, cfg.Retries+1, err)
	}
	return fmt.Errorf("checkpoint: write %s: giving up after %d attempts: %w", path, cfg.Retries+1, err)
}

// shardWire is the per-rank accounting gathered at rank 0 for the manifest.
// Scalars only, so it crosses the in-process Gather cleanly.
type shardWire struct {
	OK         int64 // 1 = shard committed
	Bytes      int64
	CRC        uint64
	N          uint64
	RNG        uint64
	LastCost   float64
	LastPMCost float64
}

// Write commits one checkpoint of s. Collective over c: every rank
// serializes and atomically writes its shard, rank 0 gathers the per-shard
// accounting, commits the hash-chained manifest, and broadcasts the outcome,
// so either every rank returns nil and the checkpoint is fully valid on
// disk, or every rank returns the same error and the partial directory is
// ignorable garbage that Latest will skip.
func Write(c *mpi.Comm, cfg Config, s *sim.Sim) (string, error) {
	cfg = cfg.withDefaults()
	var bytesCtr, failCtr *telemetry.Counter
	if cfg.Recorder != nil {
		sp := cfg.Recorder.Start(telemetry.PhaseCkptWrite)
		defer sp.End()
		reg := cfg.Recorder.Registry()
		bytesCtr = reg.ByteCounter(MetricBytes)
		failCtr = reg.Counter(MetricFailures)
	}

	st := s.State()
	dir := filepath.Join(cfg.Dir, dirName(st.Step))
	w := shardWire{N: uint64(len(st.Particles)), RNG: st.RNG, LastCost: st.LastCost, LastPMCost: st.LastPMCost}
	var buf bytes.Buffer
	err := cfg.FS.MkdirAll(dir, 0o755)
	if err == nil {
		err = snapshot.Write(&buf, snapshot.Header{
			L: cfg.Sim.L, Time: st.Time, G: cfg.Sim.G, StepIdx: st.Step,
		}, st.Particles)
	}
	if err == nil {
		err = writeFileAtomic(c, cfg, failCtr, filepath.Join(dir, shardName(c.Rank())), buf.Bytes(), "ckpt/shard-write")
	}
	if err == nil {
		w.OK = 1
		w.Bytes = int64(buf.Len())
		w.CRC = uint64(crc32.Checksum(buf.Bytes(), castagnoli))
		if bytesCtr != nil {
			bytesCtr.AddUint(uint64(buf.Len()))
		}
	} else {
		cfg.Logf("checkpoint: rank %d shard for step %d failed: %v", c.Rank(), st.Step, err)
	}

	gathered := mpi.Gather(c, 0, []shardWire{w})
	var failMsg string
	if c.Rank() == 0 {
		failMsg = commitManifest(c, cfg, failCtr, bytesCtr, dir, st, gathered)
	}
	res := mpi.Bcast(c, 0, []byte(failMsg))
	if len(res) > 0 {
		return dir, fmt.Errorf("checkpoint: step %d not committed: %s", st.Step, string(res))
	}
	return dir, nil
}

// commitManifest is rank 0's half of Write: account every shard, link the
// hash chain, commit the manifest, prune. Returns "" on success or the
// failure reason to broadcast.
func commitManifest(c *mpi.Comm, cfg Config, failCtr, bytesCtr *telemetry.Counter, dir string, st sim.State, gathered [][]shardWire) string {
	m := &Manifest{
		Format:     manifestFormat,
		Step:       st.Step,
		Time:       st.Time,
		Ranks:      c.Size(),
		ConfigHash: Fingerprint(cfg.Sim),
		Geo:        st.Geo,
		History:    st.History,
	}
	for rank, g := range gathered {
		sw := g[0]
		if sw.OK != 1 {
			return fmt.Sprintf("rank %d shard write failed", rank)
		}
		m.Shards = append(m.Shards, Shard{
			Rank: rank, File: shardName(rank), Bytes: sw.Bytes, CRC32C: uint32(sw.CRC),
			N: sw.N, RNG: sw.RNG, LastCost: sw.LastCost, LastPMCost: sw.LastPMCost,
		})
	}
	// Chain to the newest older manifest present (parse-valid is enough to
	// link; full shard validity is a restore-time question). The scan is
	// silenced: it runs while this checkpoint's own directory is still
	// legitimately uncommitted, which is not worth a diagnostic.
	scanCfg := cfg
	scanCfg.Logf = func(string, ...any) {}
	for _, prev := range scanManifests(scanCfg) {
		if prev.m.Step < st.Step {
			m.PrevHash = manifestHash(prev.payload)
			break
		}
	}
	frame, _, err := encodeManifest(m)
	if err != nil {
		return err.Error()
	}
	if err := writeFileAtomic(c, cfg, failCtr, filepath.Join(dir, manifestName), frame, "ckpt/manifest-write"); err != nil {
		return err.Error()
	}
	if bytesCtr != nil {
		bytesCtr.AddUint(uint64(len(frame)))
	}
	prune(cfg, st.Step)
	return ""
}

// prune removes all but the newest cfg.Keep committed checkpoints (best
// effort; failures are logged, not fatal).
func prune(cfg Config, justWrote uint64) {
	if cfg.Keep <= 0 {
		return
	}
	scans := scanManifests(cfg) // newest first; includes the one just written
	for i, sc := range scans {
		if i < cfg.Keep {
			continue
		}
		if sc.m.Step >= justWrote {
			continue
		}
		if err := cfg.FS.RemoveAll(sc.dir); err != nil {
			cfg.Logf("checkpoint: pruning %s: %v", sc.dir, err)
		}
	}
}

// scanned is one checkpoint directory whose manifest parsed and
// CRC-verified; shards are not yet checked.
type scanned struct {
	dir     string
	m       *Manifest
	payload []byte
}

// scanManifests returns the parse-valid checkpoints under cfg.Dir, newest
// first. Directories with missing, torn or corrupt manifests are reported
// through cfg.Logf and skipped.
func scanManifests(cfg Config) []scanned {
	entries, err := cfg.FS.ReadDir(cfg.Dir)
	if err != nil {
		return nil
	}
	var out []scanned
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), "ckpt_") {
			continue
		}
		step, err := strconv.ParseUint(strings.TrimPrefix(e.Name(), "ckpt_"), 10, 64)
		if err != nil {
			cfg.Logf("checkpoint: skipping %s: unparseable step in name", e.Name())
			continue
		}
		dir := filepath.Join(cfg.Dir, e.Name())
		b, err := cfg.FS.ReadFile(filepath.Join(dir, manifestName))
		if err != nil {
			cfg.Logf("checkpoint: skipping %s: no readable manifest (uncommitted or torn): %v", e.Name(), err)
			continue
		}
		m, payload, err := decodeManifest(b)
		if err != nil {
			cfg.Logf("checkpoint: skipping %s: %v", e.Name(), err)
			continue
		}
		if m.Step != step {
			cfg.Logf("checkpoint: skipping %s: manifest claims step %d", e.Name(), m.Step)
			continue
		}
		out = append(out, scanned{dir: dir, m: m, payload: payload})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].m.Step > out[j].m.Step })
	return out
}

// readShard reads and fully verifies one shard file against its manifest
// entry: size, CRC32C, verified snapshot footer, particle count and step.
func readShard(cfg Config, dir string, m *Manifest, sh Shard) ([]sim.Particle, error) {
	path := filepath.Join(dir, sh.File)
	fi, err := cfg.FS.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", sh.Rank, err)
	}
	if fi.Size() != sh.Bytes {
		return nil, fmt.Errorf("shard %d: size %d, manifest records %d (torn write)", sh.Rank, fi.Size(), sh.Bytes)
	}
	b, err := cfg.FS.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", sh.Rank, err)
	}
	if got := crc32.Checksum(b, castagnoli); got != sh.CRC32C {
		return nil, fmt.Errorf("shard %d: CRC32C %#08x, manifest records %#08x (corrupt)", sh.Rank, got, sh.CRC32C)
	}
	hdr, parts, ver, err := snapshot.ReadSizedVerified(bytes.NewReader(b), int64(len(b)))
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", sh.Rank, err)
	}
	if ver != snapshot.Verified {
		return nil, fmt.Errorf("shard %d: %s snapshot; checkpoints require a verified footer", sh.Rank, ver)
	}
	if hdr.N != sh.N {
		return nil, fmt.Errorf("shard %d: holds %d particles, manifest records %d", sh.Rank, hdr.N, sh.N)
	}
	if hdr.StepIdx != m.Step {
		return nil, fmt.Errorf("shard %d: snapshot step %d, manifest step %d", sh.Rank, hdr.StepIdx, m.Step)
	}
	return parts, nil
}

// validate fully checks one scanned checkpoint for the given configuration
// and rank count: fingerprint, rank/shard accounting, geometry, and every
// shard's size, CRC and verified snapshot payload.
func validate(cfg Config, sc scanned, ranks int) error {
	m := sc.m
	if m.Ranks != ranks {
		return fmt.Errorf("written by %d ranks, resuming on %d", m.Ranks, ranks)
	}
	if m.ConfigHash != Fingerprint(cfg.Sim) {
		return fmt.Errorf("config fingerprint %.12s… does not match this run's %.12s…", m.ConfigHash, Fingerprint(cfg.Sim))
	}
	if len(m.Shards) != ranks {
		return fmt.Errorf("manifest lists %d shards for %d ranks", len(m.Shards), ranks)
	}
	if err := checkGeometry(m.Geo, ranks); err != nil {
		return err
	}
	for rank, sh := range m.Shards {
		if sh.Rank != rank {
			return fmt.Errorf("shard list out of order at %d (rank %d)", rank, sh.Rank)
		}
		if _, err := readShard(cfg, sc.dir, m, sh); err != nil {
			return err
		}
	}
	return nil
}

// Latest returns the newest checkpoint under cfg.Dir that is fully valid
// for this configuration and rank count, after verifying every shard.
// Invalid or partial checkpoints are skipped with a reason through cfg.Logf.
// Local (non-collective); Restore runs it on rank 0 and broadcasts the
// outcome.
func Latest(cfg Config, ranks int) (dir string, m *Manifest, err error) {
	cfg = cfg.withDefaults()
	for _, sc := range scanManifests(cfg) {
		if verr := validate(cfg, sc, ranks); verr != nil {
			cfg.Logf("checkpoint: skipping %s: %v", filepath.Base(sc.dir), verr)
			continue
		}
		return sc.dir, sc.m, nil
	}
	return "", nil, ErrNoCheckpoint
}

// LatestStep is Latest reduced to the step index, for drivers that only
// need to know whether (and where) a resume is possible.
func LatestStep(cfg Config, ranks int) (uint64, bool) {
	_, m, err := Latest(cfg, ranks)
	if err != nil {
		return 0, false
	}
	return m.Step, true
}

// ValidateChain verifies the manifest hash chain across the checkpoints
// present under cfg.Dir: every manifest's PrevHash must equal the SHA-256 of
// the next-older present manifest (pruning removes oldest-first, so the
// survivors form a contiguous chain suffix). A mismatch means history was
// rewritten or restored from the wrong lineage.
func ValidateChain(cfg Config) error {
	cfg = cfg.withDefaults()
	scans := scanManifests(cfg) // newest first
	for i := 0; i+1 < len(scans); i++ {
		newer, older := scans[i], scans[i+1]
		if want := manifestHash(older.payload); newer.m.PrevHash != want {
			return fmt.Errorf("checkpoint: chain broken: %s records prev_hash %.12s…, but %s hashes to %.12s…",
				filepath.Base(newer.dir), newer.m.PrevHash, filepath.Base(older.dir), want)
		}
	}
	return nil
}

func checkGeometry(flat []float64, ranks int) error {
	g, err := domain.DecodeFlat(flat)
	if err != nil {
		return fmt.Errorf("geometry: %w", err)
	}
	if g.NumDomains() != ranks {
		return fmt.Errorf("geometry covers %d domains for %d ranks", g.NumDomains(), ranks)
	}
	return nil
}

// Restore resumes the simulation from the newest fully valid checkpoint
// under cfg.Dir. Collective over c: rank 0 scans and validates (skipping
// corrupt or partial checkpoints with a logged reason), broadcasts the
// chosen manifest, then every rank loads and re-verifies its own shard and
// the ranks jointly rebuild the simulation via sim.Resume. Returns
// ErrNoCheckpoint on every rank when nothing valid exists.
func Restore(c *mpi.Comm, cfg Config) (*sim.Sim, error) {
	cfg = cfg.withDefaults()
	if cfg.Recorder != nil {
		sp := cfg.Recorder.Start(telemetry.PhaseCkptVerify)
		defer sp.End()
	}
	var chosen []byte
	if c.Rank() == 0 {
		if _, m, err := Latest(cfg, c.Size()); err == nil {
			frame, _, eerr := encodeManifest(m)
			if eerr == nil {
				chosen = frame
			} else {
				cfg.Logf("checkpoint: re-encoding chosen manifest: %v", eerr)
			}
		}
	}
	chosen = mpi.Bcast(c, 0, chosen)
	if len(chosen) == 0 {
		return nil, ErrNoCheckpoint
	}
	m, _, err := decodeManifest(chosen)
	var errMsg string
	var parts []sim.Particle
	if err != nil {
		errMsg = err.Error()
	} else {
		parts, err = readShard(cfg, filepath.Join(cfg.Dir, dirName(m.Step)), m, m.Shards[c.Rank()])
		if err != nil {
			errMsg = fmt.Sprintf("rank %d: %v", c.Rank(), err)
		}
	}
	// Agree on the outcome before entering sim.Resume's collectives: either
	// every rank resumes or every rank reports the same first failure.
	for rank, g := range mpi.Allgather(c, []string{errMsg}) {
		if g[0] != "" {
			return nil, fmt.Errorf("checkpoint: restore step %d (rank %d): %s", m.Step, rank, g[0])
		}
	}
	sh := m.Shards[c.Rank()]
	st := sim.State{
		Particles:  parts,
		Time:       m.Time,
		Step:       m.Step,
		RNG:        sh.RNG,
		LastCost:   sh.LastCost,
		LastPMCost: sh.LastPMCost,
		Geo:        m.Geo,
	}
	if c.Rank() == 0 {
		st.History = m.History
	}
	s, err := sim.Resume(c, cfg.Sim, st)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: resume step %d: %w", m.Step, err)
	}
	cfg.Logf("checkpoint: rank %d resumed from %s (step %d, t=%v)", c.Rank(), dirName(m.Step), m.Step, m.Time)
	return s, nil
}
