package checkpoint

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// This file is the framed-record codec shared by every append-only record
// this repo persists: checkpoint manifests and the service plane's job
// journal (internal/serve). A frame is
//
//	magic[8] | uint32 payload length | payload | uint32 CRC32C(payload)
//
// little-endian, Castagnoli polynomial. The frame makes torn and
// bit-flipped records detectable without trusting the payload parser: a
// reader rejects a bad magic, an over-long or truncated length, and any
// CRC mismatch before a byte of payload is interpreted.

// FrameRecord frames payload under magic for durable storage.
func FrameRecord(magic [8]byte, payload []byte) []byte {
	frame := make([]byte, 0, len(magic)+8+len(payload))
	frame = append(frame, magic[:]...)
	frame = binary.LittleEndian.AppendUint32(frame, uint32(len(payload)))
	frame = append(frame, payload...)
	frame = binary.LittleEndian.AppendUint32(frame, crc32.Checksum(payload, castagnoli))
	return frame
}

// UnframeRecord validates a frame written by FrameRecord and returns its
// payload. maxPayload caps the framed length field so a corrupt header
// cannot demand an OOM-sized allocation. The returned slice aliases b;
// callers that outlive b must copy.
func UnframeRecord(magic [8]byte, maxPayload int, b []byte) ([]byte, error) {
	if len(b) < len(magic)+8 {
		return nil, fmt.Errorf("checkpoint: record truncated (%d bytes)", len(b))
	}
	if string(b[:len(magic)]) != string(magic[:]) {
		return nil, fmt.Errorf("checkpoint: bad record magic %q (want %q)", b[:len(magic)], magic[:])
	}
	n := binary.LittleEndian.Uint32(b[len(magic):])
	if uint64(n) > uint64(maxPayload) {
		return nil, fmt.Errorf("checkpoint: record claims %d payload bytes (cap %d)", n, maxPayload)
	}
	body := b[len(magic)+4:]
	if uint64(len(body)) < uint64(n)+4 {
		return nil, fmt.Errorf("checkpoint: record truncated: frame wants %d payload bytes, file holds %d", n, len(body)-4)
	}
	payload := body[:n]
	want := binary.LittleEndian.Uint32(body[n : n+4])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("checkpoint: record CRC32C mismatch: payload %#08x, frame %#08x (corrupt)", got, want)
	}
	return payload, nil
}
