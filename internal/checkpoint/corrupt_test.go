package checkpoint

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"greem/internal/mpi"
	"greem/internal/sim"
)

// buildTemplateCheckpoint runs a tiny single-rank sim to one committed
// checkpoint and returns the raw shard and manifest bytes.
func buildTemplateCheckpoint(t *testing.T, cfg sim.Config) (shard, manifest []byte) {
	t.Helper()
	dir := t.TempDir()
	parts := makeParticles(9, 24, 0.05)
	err := mpi.Run(1, func(c *mpi.Comm) {
		s, err := sim.New(c, cfg, parts)
		if err != nil {
			panic(err)
		}
		if err := s.Step(); err != nil {
			panic(err)
		}
		if _, err := Write(c, Config{Dir: dir, Sim: cfg}, s); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ckdir := filepath.Join(dir, dirName(1))
	shard, err = os.ReadFile(filepath.Join(ckdir, shardName(0)))
	if err != nil {
		t.Fatal(err)
	}
	manifest, err = os.ReadFile(filepath.Join(ckdir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	return shard, manifest
}

// corruptionHarness rebuilds one on-disk checkpoint from the given bytes and
// reports what Latest makes of it. The same directory is reused across
// thousands of corruption variants.
type corruptionHarness struct {
	t     *testing.T
	root  string
	cfg   sim.Config
	logs  *strings.Builder
	ckdir string
}

func newCorruptionHarness(t *testing.T, cfg sim.Config) *corruptionHarness {
	root := t.TempDir()
	ckdir := filepath.Join(root, dirName(1))
	if err := os.MkdirAll(ckdir, 0o755); err != nil {
		t.Fatal(err)
	}
	return &corruptionHarness{t: t, root: root, cfg: cfg, logs: &strings.Builder{}, ckdir: ckdir}
}

// latest installs the given shard/manifest bytes and runs Latest over them.
// It must never panic, whatever the bytes are; the harness returns the error
// and the logged skip reason.
func (h *corruptionHarness) latest(shard, manifest []byte) (error, string) {
	h.t.Helper()
	if err := os.WriteFile(filepath.Join(h.ckdir, shardName(0)), shard, 0o644); err != nil {
		h.t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(h.ckdir, manifestName), manifest, 0o644); err != nil {
		h.t.Fatal(err)
	}
	h.logs.Reset()
	logf := func(format string, args ...any) {
		h.logs.WriteString(strings.TrimSpace(format) + "\n")
	}
	_, _, err := Latest(Config{Dir: h.root, Sim: h.cfg, Logf: logf}, 1)
	return err, h.logs.String()
}

// expectSkipped asserts the corrupted checkpoint was refused with a logged
// reason — the never-panic, never-OOM, always-descriptive contract.
func (h *corruptionHarness) expectSkipped(what string, i int, err error, logs string) {
	h.t.Helper()
	if !errors.Is(err, ErrNoCheckpoint) {
		h.t.Fatalf("%s at %d: err = %v, want ErrNoCheckpoint", what, i, err)
	}
	if !strings.Contains(logs, "skipping") {
		h.t.Fatalf("%s at %d: no skip reason logged", what, i)
	}
}

func TestCorruptionSweepShard(t *testing.T) {
	cfg := testSimConfig()
	cfg.Grid = [3]int{1, 1, 1}
	shard, manifest := buildTemplateCheckpoint(t, cfg)
	h := newCorruptionHarness(t, cfg)

	// Sanity: the pristine bytes validate.
	if err, logs := h.latest(shard, manifest); err != nil {
		t.Fatalf("pristine checkpoint invalid: %v (%s)", err, logs)
	}

	// Truncation at every byte boundary, including the empty file.
	for n := 0; n < len(shard); n++ {
		err, logs := h.latest(shard[:n], manifest)
		h.expectSkipped("shard truncated", n, err, logs)
	}

	// A single bit flipped in every byte: the manifest's whole-file CRC32C
	// must catch each one.
	for i := 0; i < len(shard); i++ {
		mut := append([]byte(nil), shard...)
		mut[i] ^= 0x40
		err, logs := h.latest(mut, manifest)
		h.expectSkipped("shard bit-flipped", i, err, logs)
	}

	// Zero-filled file of the recorded size: right length, dead payload.
	err, logs := h.latest(make([]byte, len(shard)), manifest)
	h.expectSkipped("shard zero-filled", 0, err, logs)

	// Shard removed entirely.
	if err := os.Remove(filepath.Join(h.ckdir, shardName(0))); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(h.ckdir, manifestName), manifest, 0o644); err != nil {
		t.Fatal(err)
	}
	h.logs.Reset()
	logf := func(format string, args ...any) { h.logs.WriteString(format + "\n") }
	if _, _, err := Latest(Config{Dir: h.root, Sim: cfg, Logf: logf}, 1); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("missing shard: %v", err)
	}
}

func TestCorruptionSweepManifest(t *testing.T) {
	cfg := testSimConfig()
	cfg.Grid = [3]int{1, 1, 1}
	shard, manifest := buildTemplateCheckpoint(t, cfg)
	h := newCorruptionHarness(t, cfg)

	// Truncation at every byte boundary (0 = empty MANIFEST file).
	for n := 0; n < len(manifest); n++ {
		err, logs := h.latest(shard, manifest[:n])
		h.expectSkipped("manifest truncated", n, err, logs)
	}

	// A flipped bit in every byte. Flips in the length field may claim
	// gigabytes of payload: the frame cap must refuse the allocation.
	for i := 0; i < len(manifest); i++ {
		mut := append([]byte(nil), manifest...)
		mut[i] ^= 0x40
		err, logs := h.latest(shard, mut)
		h.expectSkipped("manifest bit-flipped", i, err, logs)
	}

	// Zero-filled manifest.
	err, logs := h.latest(shard, make([]byte, len(manifest)))
	h.expectSkipped("manifest zero-filled", 0, err, logs)
}

func TestManifestLengthFieldCannotForceOOM(t *testing.T) {
	// Hand-craft a frame whose length field demands far more than the cap:
	// decode must refuse by arithmetic, not by attempting the allocation.
	frame := append([]byte(nil), manifestMagic[:]...)
	frame = append(frame, 0xFF, 0xFF, 0xFF, 0xFF) // ~4 GiB claimed
	frame = append(frame, make([]byte, 64)...)
	_, _, err := decodeManifest(frame)
	if err == nil {
		t.Fatal("absurd length field accepted")
	}
	if !strings.Contains(err.Error(), "cap") {
		t.Errorf("want cap error, got: %v", err)
	}
}
