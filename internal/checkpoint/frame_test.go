package checkpoint

import (
	"strings"
	"testing"
)

var testMagic = [8]byte{'T', 'E', 'S', 'T', 'M', 'A', 'G', '1'}

func TestFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, {}, []byte("x"), make([]byte, 4096)} {
		frame := FrameRecord(testMagic, payload)
		got, err := UnframeRecord(testMagic, 1<<20, frame)
		if err != nil {
			t.Fatalf("payload %d bytes: %v", len(payload), err)
		}
		if len(got) != len(payload) || string(got) != string(payload) {
			t.Fatalf("payload %d bytes: round trip returned %d bytes", len(payload), len(got))
		}
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	frame := FrameRecord(testMagic, []byte("a small but honest payload"))

	// Every truncation point fails.
	for n := 0; n < len(frame); n++ {
		if _, err := UnframeRecord(testMagic, 1<<20, frame[:n]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", n)
		}
	}
	// Every single flipped bit fails (magic, length, payload, or CRC).
	for i := 0; i < len(frame); i++ {
		mut := append([]byte(nil), frame...)
		mut[i] ^= 0x10
		if _, err := UnframeRecord(testMagic, 1<<20, mut); err == nil {
			t.Fatalf("bit flip at byte %d accepted", i)
		}
	}
	// A wrong magic fails even with a valid body.
	other := [8]byte{'O', 'T', 'H', 'E', 'R', 'M', 'G', '1'}
	if _, err := UnframeRecord(other, 1<<20, frame); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("wrong magic: %v", err)
	}
	// A forged huge length is rejected by the cap, not by allocation.
	if _, err := UnframeRecord(testMagic, 8, frame); err == nil || !strings.Contains(err.Error(), "cap") {
		t.Fatalf("over-cap length: %v", err)
	}
}
