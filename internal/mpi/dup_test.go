package mpi

import (
	"sync"
	"testing"
)

func TestDupSemantics(t *testing.T) {
	err := Run(6, func(c *Comm) {
		d := c.Dup()
		if d.Rank() != c.Rank() || d.Size() != c.Size() {
			t.Errorf("dup rank/size %d/%d, want %d/%d", d.Rank(), d.Size(), c.Rank(), c.Size())
		}
		if d.WorldRank() != c.WorldRank() {
			t.Error("dup world-rank mapping differs")
		}
		// Collectives on the dup behave exactly like on the parent.
		got := Allreduce(d, []int{d.Rank()}, Sum[int])
		if got[0] != 15 {
			t.Errorf("dup Allreduce = %d, want 15", got[0])
		}
		// Two successive Dups are distinct communicators: a collective on
		// one must not satisfy a collective on the other. Run them in
		// program order on both and check isolation via payload identity.
		d2 := c.Dup()
		a := Bcast(d, 0, []int{100 + c.Rank()})
		b := Bcast(d2, 0, []int{200 + c.Rank()})
		if a[0] != 100 || b[0] != 200 {
			t.Errorf("dup isolation broken: got %d, %d", a[0], b[0])
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDupConcurrentWithWorld drives collectives on the duplicated comm from a
// background goroutine while the rank's main goroutine runs collectives on
// the world comm — the overlapped PM/PP pattern. Sequence spaces are
// per-communicator, so neither stream can consume the other's slots.
func TestDupConcurrentWithWorld(t *testing.T) {
	const rounds = 50
	err := Run(8, func(c *Comm) {
		d := c.Dup()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				got := Allreduce(d, []int{i * (d.Rank() + 1)}, Sum[int])
				want := i * 36 // Σ (rank+1) over 8 ranks = 36
				if got[0] != want {
					t.Errorf("dup round %d: got %d, want %d", i, got[0], want)
					return
				}
			}
		}()
		for i := 0; i < rounds; i++ {
			got := Allreduce(c, []int{i + c.Rank()}, Sum[int])
			want := 8*i + 28
			if got[0] != want {
				t.Errorf("world round %d: got %d, want %d", i, got[0], want)
				break
			}
		}
		wg.Wait()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestTrafficLabelPerComm pins label isolation: a label set on the world comm
// tags only world ops, and a label set on a dup tags only that dup's ops,
// even when the two streams run concurrently.
func TestTrafficLabelPerComm(t *testing.T) {
	var traffic *Traffic
	err := Run(4, func(c *Comm) {
		d := c.Dup()
		if c.Rank() == 0 {
			traffic = c.Traffic()
			c.SetTrafficLabel("world/phase")
			d.SetTrafficLabel("dup/phase")
		}
		c.Barrier()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				Allreduce(d, []int{1}, Sum[int])
			}
		}()
		for i := 0; i < 20; i++ {
			Allreduce(c, []int{1}, Sum[int])
		}
		wg.Wait()
		c.Barrier()
		if c.Rank() == 0 {
			c.SetTrafficLabel("")
			d.SetTrafficLabel("")
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	by := traffic.TotalsByLabel()
	if by["world/phase"].Ops == 0 || by["dup/phase"].Ops == 0 {
		t.Fatalf("missing labeled ops: %+v", by)
	}
	// Nothing may carry the wrong label: every op recorded between the two
	// barriers ran on exactly one of the two comms. The trailing barriers
	// and label clears land under "".
	for label := range by {
		switch label {
		case "world/phase", "dup/phase", "":
		default:
			t.Errorf("unexpected label %q", label)
		}
	}
}
