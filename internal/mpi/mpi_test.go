package mpi

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
)

func TestRunBasics(t *testing.T) {
	var count int64
	err := Run(8, func(c *Comm) {
		if c.Size() != 8 {
			t.Errorf("Size = %d", c.Size())
		}
		atomic.AddInt64(&count, int64(c.Rank()))
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != 28 {
		t.Errorf("rank sum = %d, want 28", count)
	}
}

func TestRunRejectsZeroRanks(t *testing.T) {
	if err := Run(0, func(*Comm) {}); err == nil {
		t.Error("accepted 0 ranks")
	}
}

func TestRunPropagatesPanic(t *testing.T) {
	err := Run(4, func(c *Comm) {
		if c.Rank() == 2 {
			panic("boom")
		}
		// Other ranks block in a collective; abort must unblock them.
		defer func() { recover() }()
		c.Barrier()
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v", err)
	}
}

func TestBarrierOrdering(t *testing.T) {
	const p = 16
	var before, after int64
	err := Run(p, func(c *Comm) {
		atomic.AddInt64(&before, 1)
		c.Barrier()
		if atomic.LoadInt64(&before) != p {
			t.Errorf("rank %d passed barrier before all arrived", c.Rank())
		}
		atomic.AddInt64(&after, 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if after != p {
		t.Errorf("after = %d", after)
	}
}

func TestBcast(t *testing.T) {
	res, err := RunCollect(7, func(c *Comm) []float64 {
		var data []float64
		if c.Rank() == 3 {
			data = []float64{1, 2, 3}
		}
		return Bcast(c, 3, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range res {
		if len(v) != 3 || v[0] != 1 || v[2] != 3 {
			t.Errorf("rank %d got %v", r, v)
		}
	}
}

func TestBcastReturnsPrivateCopies(t *testing.T) {
	res, err := RunCollect(4, func(c *Comm) []int {
		var data []int
		if c.Rank() == 0 {
			data = []int{42}
		}
		out := Bcast(c, 0, data)
		out[0] += c.Rank() // must not affect other ranks
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, v := range res {
		if v[0] != 42+r {
			t.Errorf("rank %d sees shared mutation: %v", r, v)
		}
	}
}

func TestGatherAllgather(t *testing.T) {
	err := Run(5, func(c *Comm) {
		mine := []int{c.Rank() * 10, c.Rank()}
		g := Gather(c, 2, mine)
		if c.Rank() == 2 {
			for i := 0; i < 5; i++ {
				if g[i][0] != i*10 || g[i][1] != i {
					t.Errorf("Gather[%d] = %v", i, g[i])
				}
			}
		} else if g != nil {
			t.Errorf("non-root got %v", g)
		}
		ag := Allgather(c, mine)
		for i := 0; i < 5; i++ {
			if ag[i][0] != i*10 {
				t.Errorf("Allgather[%d] = %v", i, ag[i])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallVaryingLengths(t *testing.T) {
	// Rank i sends i copies of value i·100+j to rank j.
	const p = 6
	err := Run(p, func(c *Comm) {
		send := make([][]int, p)
		for j := 0; j < p; j++ {
			for k := 0; k < c.Rank(); k++ {
				send[j] = append(send[j], c.Rank()*100+j)
			}
		}
		got := Alltoall(c, send)
		for i := 0; i < p; i++ {
			if len(got[i]) != i {
				t.Errorf("rank %d: from %d got %d items, want %d", c.Rank(), i, len(got[i]), i)
			}
			for _, v := range got[i] {
				if v != i*100+c.Rank() {
					t.Errorf("rank %d: bad value %d from %d", c.Rank(), v, i)
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceAllreduce(t *testing.T) {
	err := Run(9, func(c *Comm) {
		data := []float64{float64(c.Rank()), 1}
		r := Reduce(c, 0, data, Sum[float64])
		if c.Rank() == 0 {
			if r[0] != 36 || r[1] != 9 {
				t.Errorf("Reduce = %v", r)
			}
		} else if r != nil {
			t.Errorf("non-root Reduce = %v", r)
		}
		ar := Allreduce(c, []int{c.Rank()}, Max[int])
		if ar[0] != 8 {
			t.Errorf("Allreduce max = %v", ar)
		}
		mn := Allreduce(c, []int{c.Rank() + 5}, Min[int])
		if mn[0] != 5 {
			t.Errorf("Allreduce min = %v", mn)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecv(t *testing.T) {
	err := Run(4, func(c *Comm) {
		// Ring: each rank sends to (rank+1)%4.
		next := (c.Rank() + 1) % 4
		prev := (c.Rank() + 3) % 4
		Send(c, next, 7, []float64{float64(c.Rank())})
		got := Recv[float64](c, prev, 7)
		if got[0] != float64(prev) {
			t.Errorf("rank %d got %v from %d", c.Rank(), got, prev)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSendRecvTagMatching(t *testing.T) {
	err := Run(2, func(c *Comm) {
		if c.Rank() == 0 {
			Send(c, 1, 1, []int{111})
			Send(c, 1, 2, []int{222})
		} else {
			// Receive in reverse tag order; tags must match.
			b := Recv[int](c, 0, 2)
			a := Recv[int](c, 0, 1)
			if a[0] != 111 || b[0] != 222 {
				t.Errorf("tag matching broken: %v %v", a, b)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitSemantics(t *testing.T) {
	// 12 ranks, 3 colors by rank%3; key = −rank to reverse ordering.
	err := Run(12, func(c *Comm) {
		sub := c.Split(c.Rank()%3, -c.Rank())
		if sub.Size() != 4 {
			t.Errorf("subcomm size %d", sub.Size())
		}
		// With key = −rank, the highest parent rank gets child rank 0.
		wantRank := 3 - c.Rank()/3
		if sub.Rank() != wantRank {
			t.Errorf("parent %d: child rank %d, want %d", c.Rank(), sub.Rank(), wantRank)
		}
		// Collectives on the child work and are isolated per color.
		sum := Allreduce(sub, []int{c.Rank()}, Sum[int])
		want := 0
		for i := 0; i < 12; i++ {
			if i%3 == c.Rank()%3 {
				want += i
			}
		}
		if sum[0] != want {
			t.Errorf("color %d sum = %d, want %d", c.Rank()%3, sum[0], want)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitThenWorldCollectivesInterleave(t *testing.T) {
	err := Run(8, func(c *Comm) {
		sub := c.Split(c.Rank()/4, c.Rank())
		for it := 0; it < 5; it++ {
			s1 := Allreduce(sub, []int{1}, Sum[int])
			if s1[0] != 4 {
				t.Errorf("sub sum = %d", s1[0])
			}
			s2 := Allreduce(c, []int{1}, Sum[int])
			if s2[0] != 8 {
				t.Errorf("world sum = %d", s2[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNestedSplit(t *testing.T) {
	err := Run(8, func(c *Comm) {
		half := c.Split(c.Rank()/4, c.Rank())
		pair := half.Split(half.Rank()/2, half.Rank())
		if pair.Size() != 2 {
			t.Errorf("pair size %d", pair.Size())
		}
		sum := Allreduce(pair, []int{c.WorldRank()}, Sum[int])
		// Pairs are (0,1),(2,3),(4,5),(6,7) in world ranks.
		base := (c.WorldRank() / 2) * 2
		if sum[0] != base+base+1 {
			t.Errorf("pair sum = %d for world rank %d", sum[0], c.WorldRank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldRankMapping(t *testing.T) {
	err := Run(6, func(c *Comm) {
		sub := c.Split(0, 100-c.Rank()) // reversed order, single color
		if sub.Members()[sub.Rank()] != c.Rank() {
			t.Errorf("member mapping broken: %v at %d, world %d", sub.Members(), sub.Rank(), c.Rank())
		}
		if sub.WorldRank() != c.Rank() {
			t.Errorf("WorldRank %d != %d", sub.WorldRank(), c.Rank())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTrafficLedgerAlltoall(t *testing.T) {
	var total int64
	var nmsg int64
	err := Run(4, func(c *Comm) {
		send := make([][]float64, 4)
		for j := range send {
			if j != c.Rank() {
				send[j] = make([]float64, 10)
			}
		}
		Alltoall(c, send)
		c.Barrier()
		if c.Rank() == 0 {
			total = c.Traffic().TotalBytes()
			nmsg = c.Traffic().TotalMessages()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 ranks × 3 peers × 10 float64 = 960 bytes, 12 messages.
	if total != 960 {
		t.Errorf("TotalBytes = %d, want 960", total)
	}
	if nmsg != 12 {
		t.Errorf("TotalMessages = %d, want 12", nmsg)
	}
}

func TestTrafficTreeShape(t *testing.T) {
	var ops []Op
	err := Run(8, func(c *Comm) {
		Reduce(c, 3, []float64{1}, Sum[float64])
		c.Barrier()
		if c.Rank() == 0 {
			ops = c.Traffic().Ops()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var reduceOp *Op
	for i := range ops {
		if ops[i].Name == "Reduce" {
			reduceOp = &ops[i]
		}
	}
	if reduceOp == nil {
		t.Fatal("no Reduce op recorded")
	}
	// Binomial tree on 8 ranks = 7 messages, all eventually reaching root 3.
	if len(reduceOp.Msgs) != 7 {
		t.Errorf("tree messages = %d, want 7", len(reduceOp.Msgs))
	}
	dsts := map[int]int{}
	for _, m := range reduceOp.Msgs {
		dsts[m.Dst]++
		if m.Src == m.Dst {
			t.Errorf("self message %+v", m)
		}
	}
	if dsts[3] != 3 { // root of an 8-leaf binomial tree has log2(8)=3 children
		t.Errorf("root received %d messages, want 3", dsts[3])
	}
}

func TestManyRanksStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	const p = 128
	err := Run(p, func(c *Comm) {
		rng := rand.New(rand.NewSource(int64(c.Rank())))
		for it := 0; it < 20; it++ {
			n := rng.Intn(50)
			data := make([]float64, n)
			Allgather(c, data)
			s := Allreduce(c, []int{1}, Sum[int])
			if s[0] != p {
				t.Errorf("sum = %d", s[0])
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallPanicsOnBadLength(t *testing.T) {
	err := Run(3, func(c *Comm) {
		if c.Rank() == 0 {
			Alltoall(c, make([][]int, 2)) // wrong entry count: panics
			return
		}
		// Peers block in a collective; the abort must unblock them (they
		// panic too, which Run converts to the returned error).
		c.Barrier()
	})
	if err == nil {
		t.Error("expected error from panicking ranks")
	}
}

func TestDeterministicReduceOrder(t *testing.T) {
	// Floating-point reduce combines in rank order, so results are
	// bit-reproducible across runs.
	vals := make([]float64, 16)
	rng := rand.New(rand.NewSource(7))
	for i := range vals {
		vals[i] = rng.NormFloat64() * 1e10
	}
	run := func() float64 {
		res, err := RunCollect(16, func(c *Comm) float64 {
			return Allreduce(c, []float64{vals[c.Rank()]}, Sum[float64])[0]
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, v := range res[1:] {
			if v != res[0] {
				t.Fatalf("ranks disagree: %v", res)
			}
		}
		return res[0]
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic reduce: %v vs %v", a, b)
	}
}

func TestSortStability(t *testing.T) {
	// Split ties on key must order by parent rank (MPI semantics).
	res, err := RunCollect(6, func(c *Comm) string {
		sub := c.Split(0, 0) // all same color, same key
		return fmt.Sprintf("%d→%d", c.Rank(), sub.Rank())
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(res)
	want := []string{"0→0", "1→1", "2→2", "3→3", "4→4", "5→5"}
	for i := range want {
		if res[i] != want[i] {
			t.Errorf("tie-break order: got %v", res)
			break
		}
	}
}

func TestSendRecvFIFOOrdering(t *testing.T) {
	// Messages on the same (src, dst, tag) edge arrive in send order.
	err := Run(2, func(c *Comm) {
		const k = 100
		if c.Rank() == 0 {
			for i := 0; i < k; i++ {
				Send(c, 1, 5, []int{i})
			}
		} else {
			for i := 0; i < k; i++ {
				got := Recv[int](c, 0, 5)
				if got[0] != i {
					t.Errorf("message %d arrived as %d", i, got[0])
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMixedTypeCollectivesInterleave(t *testing.T) {
	// Different element types through the same comm in lock-step.
	err := Run(3, func(c *Comm) {
		type pair struct{ A, B int32 }
		for it := 0; it < 5; it++ {
			fs := Allgather(c, []float64{float64(c.Rank())})
			ps := Allgather(c, []pair{{int32(c.Rank()), int32(it)}})
			for r := 0; r < 3; r++ {
				if fs[r][0] != float64(r) || ps[r][0].A != int32(r) || ps[r][0].B != int32(it) {
					t.Errorf("mixed-type allgather corrupted at iter %d", it)
					return
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
