// Package mpi is an in-process message-passing runtime that stands in for
// MPI on K computer: ranks are goroutines, communicators support the
// collectives GreeM uses (Barrier, Bcast, Reduce, Allreduce, Gather,
// Allgather, Alltoall/Alltoallv, Comm_split), and every operation is
// recorded in a traffic ledger so the perfmodel package can replay the
// communication pattern against a modeled interconnect.
//
// Semantics mirror MPI: all ranks of a communicator must call collectives in
// the same order; Split must be called by every rank of the parent. Data
// returned from collectives is always a private copy.
//
// # Abort contract
//
// When any rank panics (including an injected kill at a Comm.FaultPoint), the
// world aborts: every collective or Recv that is blocked, or is subsequently
// entered, panics with the typed value ErrAborted instead of deadlocking.
// Run recovers each rank's panic and returns the first one as an error with
// %w wrapping, so callers can test the outcome with IsAborted — true for a
// peer-failure cascade (degradable: resume from a checkpoint), false for a
// genuine programming error that must be surfaced. A rank that wants to
// clean up on a peer's death can recover() and check IsAborted itself; the
// world stays aborted, so it must not attempt further communication.
package mpi

import (
	"fmt"
	"sort"
	"sync"
	"unsafe"
)

// Run executes body on n ranks (goroutines) sharing one world. It returns
// the first panic converted to an error, after all ranks have finished or
// the panicking rank has unwound. A panicking rank closes the world so
// blocked peers fail fast rather than deadlock.
func Run(n int, body func(c *Comm)) error { return RunWithKillHook(n, nil, body) }

// RunWithKillHook is Run with a fault-injection hook: hook is consulted at
// every Comm.FaultPoint a rank passes and may elect to kill it there (see
// KillHook). A nil hook is exactly Run. Used by crash-restart tests to die
// mid-step or mid-checkpoint-write.
func RunWithKillHook(n int, hook KillHook, body func(c *Comm)) error {
	if n < 1 {
		return fmt.Errorf("mpi: need at least one rank, got %d", n)
	}
	w := &world{
		size:    n,
		boards:  make(map[boardKey]*board),
		mail:    make(map[mailKey]*mailbox),
		Traffic: &Traffic{},
		kill:    hook,
	}
	var wg sync.WaitGroup
	var errMu sync.Mutex
	var firstErr error
	for r := 0; r < n; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					err, ok := p.(error)
					if ok {
						err = fmt.Errorf("mpi: rank %d panicked: %w", rank, err)
					} else {
						err = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					}
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					w.abort()
				}
			}()
			members := make([]int, n)
			for i := range members {
				members[i] = i
			}
			body(&Comm{world: w, id: commID{}, rank: rank, size: n, members: members})
		}(r)
	}
	wg.Wait()
	return firstErr
}

// RunCollect is Run plus a per-rank result slice: body's return value for
// rank r lands in out[r].
func RunCollect[T any](n int, body func(c *Comm) T) ([]T, error) {
	out := make([]T, n)
	err := Run(n, func(c *Comm) {
		out[c.Rank()] = body(c)
	})
	return out, err
}

type commID struct {
	parent uint64 // hash-chained id; world = 0
	seq    int    // split sequence number within parent
	color  int
}

type boardKey struct {
	id  commID
	seq int // collective sequence number within the comm
}

type mailKey struct {
	id       commID
	src, dst int
	tag      int
}

type world struct {
	size    int
	mu      sync.Mutex
	boards  map[boardKey]*board
	mail    map[mailKey]*mailbox
	aborted bool
	abortCh chan struct{}
	Traffic *Traffic
	kill    KillHook // fault-injection hook; nil in production runs
}

func (w *world) abort() {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.aborted {
		w.aborted = true
		if w.abortCh != nil {
			close(w.abortCh)
		}
	}
	for _, b := range w.boards {
		b.abort()
	}
	for _, m := range w.mail {
		m.abort()
	}
}

func (w *world) getBoard(k boardKey, size int) *board {
	w.mu.Lock()
	defer w.mu.Unlock()
	b, ok := w.boards[k]
	if !ok {
		b = newBoard(size, w.aborted)
		w.boards[k] = b
	}
	return b
}

func (w *world) dropBoard(k boardKey) {
	w.mu.Lock()
	delete(w.boards, k)
	w.mu.Unlock()
}

func (w *world) getMailbox(k mailKey) *mailbox {
	w.mu.Lock()
	defer w.mu.Unlock()
	m, ok := w.mail[k]
	if !ok {
		m = newMailbox(w.aborted)
		w.mail[k] = m
	}
	return m
}

// Comm is a communicator handle held by one rank.
type Comm struct {
	world   *world
	id      commID
	rank    int
	size    int
	members []int // world ranks of the members, indexed by comm rank
	seq     int   // next collective sequence number
	nsplit  int
}

// Rank returns this process's rank within the communicator.
func (c *Comm) Rank() int { return c.rank }

// Size returns the number of ranks in the communicator.
func (c *Comm) Size() int { return c.size }

// WorldRank returns this process's rank in the world communicator.
func (c *Comm) WorldRank() int { return c.members[c.rank] }

// Members returns the world ranks of the communicator's members (comm rank
// order). The returned slice must not be modified.
func (c *Comm) Members() []int { return c.members }

// Traffic returns the world-wide traffic ledger.
func (c *Comm) Traffic() *Traffic { return c.world.Traffic }

// nextBoard returns this comm's board for the next collective. Every member
// calls it in lock-step (collective ordering contract).
func (c *Comm) nextBoard() (*board, boardKey) {
	k := boardKey{id: c.id, seq: c.seq}
	c.seq++
	return c.world.getBoard(k, c.size), k
}

func elemSize[T any]() int {
	var z T
	return int(unsafe.Sizeof(z))
}

// Barrier blocks until every rank of the communicator has entered it.
func (c *Comm) Barrier() {
	b, k := c.nextBoard()
	b.await()
	b.await()
	if c.rank == 0 {
		c.world.dropBoard(k)
	}
}

// Bcast distributes root's data to every rank; each rank receives a copy.
// Non-root ranks pass their (ignored) local value, typically nil.
func Bcast[T any](c *Comm, root int, data []T) []T {
	b, k := c.nextBoard()
	if c.rank == root {
		b.slots[c.rank] = data
	}
	b.await()
	src := b.slots[root].([]T)
	out := append([]T(nil), src...)
	if c.rank == root {
		// Model a binomial broadcast tree: log₂(p) rounds.
		c.world.Traffic.recordTree(c, root, len(src)*elemSize[T](), "Bcast", false)
	}
	b.await()
	if c.rank == 0 {
		c.world.dropBoard(k)
	}
	return out
}

// Gather collects each rank's data at root; returns per-rank slices at root
// and nil elsewhere.
func Gather[T any](c *Comm, root int, data []T) [][]T {
	b, k := c.nextBoard()
	b.slots[c.rank] = data
	b.await()
	var out [][]T
	if c.rank == root {
		out = make([][]T, c.size)
		var msgs []Message
		for i := 0; i < c.size; i++ {
			s := b.slots[i].([]T)
			out[i] = append([]T(nil), s...)
			if i != root {
				msgs = append(msgs, Message{Src: c.members[i], Dst: c.members[root], Bytes: len(s) * elemSize[T]()})
			}
		}
		c.world.Traffic.record(Op{Name: "Gather", Comm: c.id, CommSize: c.size, Msgs: msgs})
	}
	b.await()
	if c.rank == 0 {
		c.world.dropBoard(k)
	}
	return out
}

// Allgather collects every rank's data everywhere.
func Allgather[T any](c *Comm, data []T) [][]T {
	b, k := c.nextBoard()
	b.slots[c.rank] = data
	b.await()
	out := make([][]T, c.size)
	var msgs []Message
	for i := 0; i < c.size; i++ {
		s := b.slots[i].([]T)
		out[i] = append([]T(nil), s...)
		if c.rank == 0 {
			for j := 0; j < c.size; j++ {
				if i != j {
					msgs = append(msgs, Message{Src: c.members[i], Dst: c.members[j], Bytes: len(s) * elemSize[T]()})
				}
			}
		}
	}
	if c.rank == 0 {
		c.world.Traffic.record(Op{Name: "Allgather", Comm: c.id, CommSize: c.size, Msgs: msgs})
	}
	b.await()
	if c.rank == 0 {
		c.world.dropBoard(k)
	}
	return out
}

// Alltoall delivers send[j] from each rank to rank j; the result's element i
// is what rank i sent to this rank. Slices may have arbitrary per-pair
// lengths, so this doubles as MPI_Alltoallv.
func Alltoall[T any](c *Comm, send [][]T) [][]T {
	if len(send) != c.size {
		panic(fmt.Sprintf("mpi: Alltoall send has %d entries for %d ranks", len(send), c.size))
	}
	b, k := c.nextBoard()
	b.slots[c.rank] = send
	b.await()
	out := make([][]T, c.size)
	for i := 0; i < c.size; i++ {
		s := b.slots[i].([][]T)[c.rank]
		out[i] = append([]T(nil), s...)
	}
	if c.rank == 0 {
		var msgs []Message
		for i := 0; i < c.size; i++ {
			si := b.slots[i].([][]T)
			for j := 0; j < c.size; j++ {
				if i == j || len(si[j]) == 0 {
					continue
				}
				msgs = append(msgs, Message{Src: c.members[i], Dst: c.members[j], Bytes: len(si[j]) * elemSize[T]()})
			}
		}
		c.world.Traffic.record(Op{Name: "Alltoallv", Comm: c.id, CommSize: c.size, Msgs: msgs})
	}
	b.await()
	if c.rank == 0 {
		c.world.dropBoard(k)
	}
	return out
}

// Reduce combines equal-length slices element-wise with op, leaving the
// result at root (nil elsewhere). The combine order is fixed (rank 0..p−1)
// for determinism.
func Reduce[T any](c *Comm, root int, data []T, op func(a, b T) T) []T {
	b, k := c.nextBoard()
	b.slots[c.rank] = data
	b.await()
	var out []T
	if c.rank == root {
		out = append([]T(nil), b.slots[0].([]T)...)
		for i := 1; i < c.size; i++ {
			s := b.slots[i].([]T)
			if len(s) != len(out) {
				panic("mpi: Reduce length mismatch")
			}
			for j := range out {
				out[j] = op(out[j], s[j])
			}
		}
		c.world.Traffic.recordTree(c, root, len(out)*elemSize[T](), "Reduce", true)
	}
	b.await()
	if c.rank == 0 {
		c.world.dropBoard(k)
	}
	return out
}

// Allreduce is Reduce delivered to every rank.
func Allreduce[T any](c *Comm, data []T, op func(a, b T) T) []T {
	b, k := c.nextBoard()
	b.slots[c.rank] = data
	b.await()
	out := append([]T(nil), b.slots[0].([]T)...)
	for i := 1; i < c.size; i++ {
		s := b.slots[i].([]T)
		if len(s) != len(out) {
			panic("mpi: Allreduce length mismatch")
		}
		for j := range out {
			out[j] = op(out[j], s[j])
		}
	}
	if c.rank == 0 {
		c.world.Traffic.recordTree(c, 0, len(out)*elemSize[T](), "Allreduce", true)
	}
	b.await()
	if c.rank == 0 {
		c.world.dropBoard(k)
	}
	return out
}

// Sum is the addition reducer for Reduce/Allreduce.
func Sum[T int | int64 | float64](a, b T) T { return a + b }

// Max is the maximum reducer.
func Max[T int | int64 | float64](a, b T) T {
	if a > b {
		return a
	}
	return b
}

// Min is the minimum reducer.
func Min[T int | int64 | float64](a, b T) T {
	if a < b {
		return a
	}
	return b
}

// Split partitions the communicator by color, ordering ranks within each
// child by (key, parent rank), exactly like MPI_Comm_split. Every rank of
// the parent must call Split; each receives its own child communicator.
func (c *Comm) Split(color, key int) *Comm {
	type ck struct{ Color, Key, Rank int }
	all := Allgather(c, []ck{{color, key, c.rank}})
	var mine []ck
	for _, s := range all {
		if s[0].Color == color {
			mine = append(mine, s[0])
		}
	}
	sort.Slice(mine, func(i, j int) bool {
		if mine[i].Key != mine[j].Key {
			return mine[i].Key < mine[j].Key
		}
		return mine[i].Rank < mine[j].Rank
	})
	newRank := -1
	members := make([]int, len(mine))
	for i, s := range mine {
		members[i] = c.members[s.Rank]
		if s.Rank == c.rank {
			newRank = i
		}
	}
	child := &Comm{
		world:   c.world,
		id:      commID{parent: hashID(c.id), seq: c.nsplit, color: color},
		rank:    newRank,
		size:    len(mine),
		members: members,
	}
	c.nsplit++
	return child
}

// dupColor marks communicators produced by Dup in their commID, so a Dup can
// never collide with a Split child (user colors are plain ints; Split children
// of the same call share the parent's nsplit value, which Dup also consumes).
const dupColor = int(^uint(0)>>1)&^0xffff | 0xd0b

// Dup returns a duplicate communicator: the same members, ranks and world,
// but a fresh communication context — collectives on the duplicate use their
// own board space and never match collectives on the parent, exactly like
// MPI_Comm_dup. This is what lets one rank drive two concurrent collective
// streams (e.g. the async PM solve against the PP ghost exchange) from two
// goroutines without interleaving.
//
// Dup is collective by contract: every rank of the parent must call it, in
// the same order relative to other Dup/Split calls on the same parent (it
// consumes the parent's split-sequence counter). No communication happens.
func (c *Comm) Dup() *Comm {
	d := &Comm{
		world:   c.world,
		id:      commID{parent: hashID(c.id), seq: c.nsplit, color: dupColor},
		rank:    c.rank,
		size:    c.size,
		members: c.members,
	}
	c.nsplit++
	return d
}

// SetTrafficLabel tags ops subsequently recorded on THIS communicator in the
// world traffic ledger with a phase label (e.g. "pp/ghosts"); the empty
// string clears it. Labels are per-communicator, so a label set around a
// world-comm phase never leaks onto ops another goroutine records on a
// duplicated or split communicator at the same time. Call from a single rank
// around the communication phase.
func (c *Comm) SetTrafficLabel(label string) {
	c.world.Traffic.setLabel(c.id, label)
}

func hashID(id commID) uint64 {
	h := id.parent*1000003 + uint64(id.seq)*8191 + uint64(int64(id.color))*131
	return h*2654435761 + 1
}

// Send delivers data to dst (comm rank) with a tag; it does not block on the
// receiver (buffered, like MPI_Isend + eventual completion).
func Send[T any](c *Comm, dst, tag int, data []T) {
	k := mailKey{id: c.id, src: c.rank, dst: dst, tag: tag}
	m := c.world.getMailbox(k)
	m.put(append([]T(nil), data...))
	c.world.Traffic.record(Op{Name: "Send", Comm: c.id, CommSize: c.size, Msgs: []Message{
		{Src: c.members[c.rank], Dst: c.members[dst], Bytes: len(data) * elemSize[T]()},
	}})
}

// Recv blocks until a message with the given source and tag arrives and
// returns it.
func Recv[T any](c *Comm, src, tag int) []T {
	k := mailKey{id: c.id, src: src, dst: c.rank, tag: tag}
	m := c.world.getMailbox(k)
	v := m.take()
	if v == nil {
		panic(ErrAborted)
	}
	return v.([]T)
}

// --- synchronization primitives ---

// board is a slot array plus a reusable barrier for one collective.
type board struct {
	slots []any
	mu    sync.Mutex
	cond  *sync.Cond
	count int
	gen   int
	size  int
	dead  bool
}

func newBoard(size int, dead bool) *board {
	b := &board{slots: make([]any, size), size: size, dead: dead}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *board) abort() {
	b.mu.Lock()
	b.dead = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

func (b *board) await() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.dead {
		panic(ErrAborted)
	}
	gen := b.gen
	b.count++
	if b.count == b.size {
		b.count = 0
		b.gen++
		b.cond.Broadcast()
		return
	}
	for gen == b.gen && !b.dead {
		b.cond.Wait()
	}
	if b.dead {
		panic(ErrAborted)
	}
}

// mailbox is an unbounded FIFO queue for one (comm, src, dst, tag) edge.
type mailbox struct {
	mu   sync.Mutex
	cond *sync.Cond
	q    []any
	dead bool
}

func newMailbox(dead bool) *mailbox {
	m := &mailbox{dead: dead}
	m.cond = sync.NewCond(&m.mu)
	return m
}

func (m *mailbox) abort() {
	m.mu.Lock()
	m.dead = true
	m.cond.Broadcast()
	m.mu.Unlock()
}

func (m *mailbox) put(v any) {
	m.mu.Lock()
	m.q = append(m.q, v)
	m.cond.Signal()
	m.mu.Unlock()
}

func (m *mailbox) take() any {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.q) == 0 && !m.dead {
		m.cond.Wait()
	}
	if len(m.q) == 0 {
		return nil
	}
	v := m.q[0]
	m.q = m.q[1:]
	return v
}
